(* Tests for the evaluation workloads: the OLTP model (Figs. 1 and 8), the
   driver-isolation model (Fig. 7) and the Sec. 7.5 sensitivity models. *)

module O = Dipc_workloads.Oltp
module N = Dipc_workloads.Netpipe
module S = Dipc_workloads.Sensitivity
module M = Dipc_workloads.Microbench

(* Short OLTP runs keep the suite fast while preserving ordering. *)
let quick_params ~db_mode ~threads =
  {
    (O.default_params ~db_mode ~threads) with
    O.warmup = 150_000_000.;
    duration = 350_000_000.;
  }

let run_quick ~config ~db_mode ~threads =
  O.run
    ~params_override:(Some (quick_params ~db_mode ~threads))
    ~config ~db_mode ~threads ()

let test_oltp_ordering_in_memory () =
  let threads = 16 in
  let lx = run_quick ~config:O.Linux ~db_mode:O.In_memory ~threads in
  let dp = run_quick ~config:O.Dipc ~db_mode:O.In_memory ~threads in
  let id = run_quick ~config:O.Ideal ~db_mode:O.In_memory ~threads in
  Alcotest.(check bool) "dIPC much faster than Linux" true
    (dp.O.r_throughput_opm > 2.5 *. lx.O.r_throughput_opm);
  Alcotest.(check bool) "dIPC at least 90% of ideal" true
    (dp.O.r_throughput_opm > 0.90 *. id.O.r_throughput_opm);
  Alcotest.(check bool) "ideal not slower than dIPC - noise" true
    (id.O.r_throughput_opm > 0.95 *. dp.O.r_throughput_opm)

let test_oltp_idle_collapse () =
  (* Sec. 7.4: idle time drops dramatically (24% -> 1% in the paper). *)
  let threads = 16 in
  let lx = run_quick ~config:O.Linux ~db_mode:O.In_memory ~threads in
  let dp = run_quick ~config:O.Dipc ~db_mode:O.In_memory ~threads in
  Alcotest.(check bool) "Linux idles" true (lx.O.r_idle_frac > 0.15);
  Alcotest.(check bool) "dIPC nearly idle-free" true (dp.O.r_idle_frac < 0.05)

let test_oltp_linux_scales_with_threads () =
  (* The baseline needs many threads to fill the system (Fig. 8). *)
  let lo = run_quick ~config:O.Linux ~db_mode:O.In_memory ~threads:16 in
  let hi = run_quick ~config:O.Linux ~db_mode:O.In_memory ~threads:256 in
  Alcotest.(check bool) "more threads help Linux" true
    (hi.O.r_throughput_opm > 1.5 *. lo.O.r_throughput_opm)

let test_oltp_dipc_peaks_early () =
  (* dIPC reaches its peak with little concurrency. *)
  let at4 = run_quick ~config:O.Dipc ~db_mode:O.In_memory ~threads:4 in
  let at16 = run_quick ~config:O.Dipc ~db_mode:O.In_memory ~threads:16 in
  Alcotest.(check bool) "near peak by 4-16 threads" true
    (at4.O.r_throughput_opm > 0.85 *. at16.O.r_throughput_opm)

let test_oltp_on_disk_lower () =
  let threads = 16 in
  let mem = run_quick ~config:O.Dipc ~db_mode:O.In_memory ~threads in
  let disk = run_quick ~config:O.Dipc ~db_mode:O.On_disk ~threads in
  Alcotest.(check bool) "disk-bound is slower" true
    (disk.O.r_throughput_opm < mem.O.r_throughput_opm)

let test_oltp_breakdown_sane () =
  let r = run_quick ~config:O.Linux ~db_mode:O.In_memory ~threads:16 in
  let total = r.O.r_user_frac +. r.O.r_kernel_frac +. r.O.r_idle_frac in
  Alcotest.(check bool) "fractions sum to ~1" true (Float.abs (total -. 1.) < 0.05);
  Alcotest.(check bool) "latency measured" true (r.O.r_latency_ns.Dipc_sim.Stats.s_count > 0);
  Alcotest.(check bool) "ops counted" true (r.O.r_ops > 10)

let test_oltp_crossings_per_op () =
  (* The operation structure matches the paper's 211 crossings (Sec. 7.5),
     within rounding. *)
  let p = O.default_params ~db_mode:O.In_memory ~threads:4 in
  let crossings = O.crossings_per_op p in
  Alcotest.(check bool) "~211 crossings" true (crossings >= 200 && crossings <= 220)

(* --- netpipe / Fig. 7 --- *)

let measured_costs () =
  (* Use the calibrated kernel-model numbers; measuring live in the test
     keeps the check honest. *)
  let sem = (M.run ~warmup:10 ~iters:40 ~same_cpu:true M.Sem).M.mean_ns in
  let pipe = (M.run ~warmup:10 ~iters:40 ~same_cpu:true M.Pipe).M.mean_ns in
  {
    N.sem_roundtrip = sem;
    pipe_roundtrip = pipe;
    dipc_proc_call = 105.;
    dipc_same_call = 14.;
  }

let test_netpipe_latency_ordering () =
  let c = measured_costs () in
  let at bytes mech = N.latency_overhead_pct c mech ~bytes in
  List.iter
    (fun bytes ->
      let dipc = at bytes N.Dipc_same
      and dproc = at bytes N.Dipc_proc
      and kern = at bytes N.Kernel_driver
      and sem = at bytes N.Sem_ipc
      and pipe = at bytes N.Pipe_ipc in
      Alcotest.(check bool) "dIPC < dIPC+proc" true (dipc < dproc);
      Alcotest.(check bool) "dIPC+proc < kernel" true (dproc < kern);
      Alcotest.(check bool) "kernel < sem" true (kern < sem);
      Alcotest.(check bool) "sem < pipe" true (sem < pipe))
    [ 1; 64; 1024; 4096 ]

let test_netpipe_paper_bands () =
  let c = measured_costs () in
  (* Sec. 7.3: dIPC ~1%, syscalls ~10%, IPC >100% latency overhead. *)
  let dipc = N.latency_overhead_pct c N.Dipc_same ~bytes:1 in
  let kern = N.latency_overhead_pct c N.Kernel_driver ~bytes:1 in
  let sem = N.latency_overhead_pct c N.Sem_ipc ~bytes:1 in
  Alcotest.(check bool) "dIPC ~1%" true (dipc < 2.5);
  Alcotest.(check bool) "kernel ~10%" true (kern > 4. && kern < 16.);
  Alcotest.(check bool) "IPC >= ~100%" true (sem > 60.)

let test_netpipe_bandwidth_overheads () =
  let c = measured_costs () in
  (* "overheads above 60% for a 4KB transfer in the IPC scenarios". *)
  let sem = N.bandwidth_overhead_pct c N.Sem_ipc ~bytes:4096 in
  let dipc = N.bandwidth_overhead_pct c N.Dipc_same ~bytes:4096 in
  Alcotest.(check bool) "IPC bandwidth loss > 40%" true (sem > 40.);
  Alcotest.(check bool) "dIPC bandwidth loss tiny" true (dipc < 5.)

(* --- sensitivity (Sec. 7.5) --- *)

let test_sensitivity_crossing_margin () =
  (* With the paper's numbers, the margin is ~14x. *)
  let a =
    S.crossing ~calls_per_op:211 ~call_ns:252.
      ~linux_op_ns:(3.2e6 *. 2.13) (* average speedup over Linux *)
      ~dipc_op_ns:3.2e6
  in
  Alcotest.(check bool) "margin an order of magnitude" true
    (a.S.ca_slowdown_margin > 5. && a.S.ca_slowdown_margin < 100.);
  Alcotest.(check bool) "max call cost above current" true
    (a.S.ca_max_call_ns > a.S.ca_call_ns)

let test_sensitivity_capability_loads () =
  let a =
    S.capability_loads ~cross_access_frac:0.02 ~accesses_per_op:1.5e6
      ~dipc_op_ns:3.2e6 ~speedup:1.81
  in
  Alcotest.(check bool) "overhead in band (~12%)" true
    (a.S.cl_overhead_frac > 0.005 && a.S.cl_overhead_frac < 0.30);
  Alcotest.(check bool) "speedup survives (paper: 1.59x)" true
    (a.S.cl_residual_speedup > 1.2)

let suites =
  [
    ( "workloads.oltp",
      [
        Alcotest.test_case "ordering in-memory (Fig. 8)" `Slow test_oltp_ordering_in_memory;
        Alcotest.test_case "idle collapse (Fig. 1)" `Slow test_oltp_idle_collapse;
        Alcotest.test_case "Linux scales with threads" `Slow test_oltp_linux_scales_with_threads;
        Alcotest.test_case "dIPC peaks early" `Slow test_oltp_dipc_peaks_early;
        Alcotest.test_case "on-disk slower" `Slow test_oltp_on_disk_lower;
        Alcotest.test_case "breakdown sane" `Slow test_oltp_breakdown_sane;
        Alcotest.test_case "crossings per op" `Quick test_oltp_crossings_per_op;
      ] );
    ( "workloads.netpipe",
      [
        Alcotest.test_case "latency ordering (Fig. 7)" `Quick test_netpipe_latency_ordering;
        Alcotest.test_case "paper bands (Fig. 7)" `Quick test_netpipe_paper_bands;
        Alcotest.test_case "bandwidth overheads (Fig. 7)" `Quick test_netpipe_bandwidth_overheads;
      ] );
    ( "workloads.sensitivity",
      [
        Alcotest.test_case "crossing margin (Sec. 7.5)" `Quick test_sensitivity_crossing_margin;
        Alcotest.test_case "capability loads (Sec. 7.5)" `Quick test_sensitivity_capability_loads;
      ] );
  ]
