(* Tests for the OS kernel model: CPU tokens, scheduling, cost accounting,
   futexes, pipes and UNIX sockets. *)

module Engine = Dipc_sim.Engine
module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Kernel = Dipc_kernel.Kernel
module Futex = Dipc_kernel.Futex
module Pipe = Dipc_kernel.Pipe
module Unix_socket = Dipc_kernel.Unix_socket

let make ?(ncpus = 2) () =
  let e = Engine.create () in
  (e, Kernel.create e ~ncpus)

let test_consume_advances_time () =
  let e, k = make () in
  let p = Kernel.create_process k ~name:"p" in
  let finished = ref 0. in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"t" (fun th ->
         Kernel.consume k th Breakdown.User_code 1000.;
         finished := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "time advanced" 1000. !finished

let test_cpu_token_serializes () =
  let e, k = make ~ncpus:1 () in
  let p = Kernel.create_process k ~name:"p" in
  let order = ref [] in
  for i = 1 to 2 do
    ignore
      (Kernel.spawn ~cpu:0 k p ~name:"t" (fun th ->
           Kernel.consume k th Breakdown.User_code 50.;
           order := (i, Engine.now e) :: !order))
  done;
  Engine.run e;
  match List.rev !order with
  | [ (1, t1); (2, t2) ] ->
      Alcotest.(check bool) "serialized" true (t2 >= t1 +. 50.)
  | _ -> Alcotest.fail "wrong completion order"

let test_parallel_cpus () =
  let e, k = make ~ncpus:2 () in
  let p = Kernel.create_process k ~name:"p" in
  let times = ref [] in
  for i = 0 to 1 do
    ignore
      (Kernel.spawn ~cpu:i k p ~name:"t" (fun th ->
           Kernel.consume k th Breakdown.User_code 100.;
           times := Engine.now e :: !times))
  done;
  Engine.run e;
  List.iter
    (fun t -> Alcotest.(check (float 1e-9)) "ran in parallel" 100. t)
    !times

let test_preemption_quantum () =
  (* Two CPU-bound threads on one CPU interleave at quantum granularity
     rather than running to completion. *)
  let e, k = make ~ncpus:1 () in
  let p = Kernel.create_process k ~name:"p" in
  let first_done = ref 0. and second_started = ref infinity in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"a" (fun th ->
         Kernel.consume k th Breakdown.User_code 500_000.;
         first_done := Engine.now e));
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"b" (fun th ->
         second_started := Engine.now e;
         Kernel.consume k th Breakdown.User_code 500_000.));
  Engine.run e;
  Alcotest.(check bool) "b started before a finished" true
    (!second_started < !first_done)

let test_futex_wait_wake () =
  let e, k = make ~ncpus:2 () in
  let p = Kernel.create_process k ~name:"p" in
  let word = ref 0 in
  let f = Futex.create k ~value:word in
  let woken_at = ref 0. in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"waiter" (fun th ->
         Futex.wait f th ~expected:0;
         woken_at := Engine.now e));
  ignore
    (Kernel.spawn ~cpu:1 ~at:(Some 10_000.) k p ~name:"waker" (fun th ->
         word := 1;
         ignore (Futex.wake f th ~n:1)));
  Engine.run e;
  Alcotest.(check bool) "woken after the wake" true (!woken_at >= 10_000.)

let test_futex_value_mismatch_returns () =
  let e, k = make () in
  let p = Kernel.create_process k ~name:"p" in
  let word = ref 5 in
  let f = Futex.create k ~value:word in
  let returned = ref false in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"t" (fun th ->
         Futex.wait f th ~expected:0;
         returned := true));
  Engine.run e;
  Alcotest.(check bool) "EAGAIN path" true !returned

let test_pipe_blocking_and_bytes () =
  let e, k = make ~ncpus:2 () in
  let p = Kernel.create_process k ~name:"p" in
  let pipe = Pipe.create ~capacity:1024 k in
  let read_done = ref 0. and write_done = ref 0. in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"reader" (fun th ->
         Pipe.read pipe th ~bytes:2048;
         read_done := Engine.now e));
  ignore
    (Kernel.spawn ~cpu:1 ~at:(Some 1000.) k p ~name:"writer" (fun th ->
         Pipe.write pipe th ~bytes:2048;
         write_done := Engine.now e));
  Engine.run e;
  Alcotest.(check bool) "reader finished" true (!read_done > 0.);
  Alcotest.(check int) "buffer drained" 0 (Pipe.buffered pipe)

let test_pipe_writer_blocks_when_full () =
  let e, k = make ~ncpus:2 () in
  let p = Kernel.create_process k ~name:"p" in
  let pipe = Pipe.create ~capacity:100 k in
  let write_done = ref infinity in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"writer" (fun th ->
         Pipe.write pipe th ~bytes:300;
         write_done := Engine.now e));
  ignore
    (Kernel.spawn ~cpu:1 ~at:(Some 50_000.) k p ~name:"reader" (fun th ->
         Pipe.read pipe th ~bytes:300));
  Engine.run e;
  Alcotest.(check bool) "writer had to wait for the reader" true
    (!write_done >= 50_000.)

let test_unix_socket_order () =
  let e, k = make ~ncpus:2 () in
  let p = Kernel.create_process k ~name:"p" in
  let sock = Unix_socket.create k in
  let got = ref [] in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"rx" (fun th ->
         for _ = 1 to 3 do
           let v, _ = Unix_socket.recv sock th in
           got := v :: !got
         done));
  ignore
    (Kernel.spawn ~cpu:1 ~at:(Some 100.) k p ~name:"tx" (fun th ->
         List.iter (fun v -> Unix_socket.send sock th ~size:8 v) [ 1; 2; 3 ]));
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_idle_accounting () =
  let e, k = make ~ncpus:1 () in
  let p = Kernel.create_process k ~name:"p" in
  ignore
    (Kernel.spawn ~cpu:0 ~at:(Some 10_000.) k p ~name:"t" (fun th ->
         Kernel.consume k th Breakdown.User_code 100.));
  Engine.run e;
  Alcotest.(check bool) "idle before first thread" true
    (Kernel.cpu_idle_total k 0 >= 10_000.)

let test_cross_cpu_wake_charges_ipi () =
  let e, k = make ~ncpus:2 () in
  let p = Kernel.create_process k ~name:"p" in
  let q = Kernel.Sleepq.create () in
  ignore
    (Kernel.spawn ~cpu:1 k p ~name:"sleeper" (fun th -> Kernel.block_on k th q));
  ignore
    (Kernel.spawn ~cpu:0 ~at:(Some 1_000.) k p ~name:"waker" (fun th ->
         ignore (Kernel.wake_one k ~waker:th q ())));
  Engine.run e;
  let kernel0 = Breakdown.get (Kernel.cpu_breakdown k 0) Breakdown.Kernel in
  let kernel1 = Breakdown.get (Kernel.cpu_breakdown k 1) Breakdown.Kernel in
  Alcotest.(check bool) "IPI send on waker CPU" true (kernel0 >= Costs.ipi_send);
  Alcotest.(check bool) "IPI handling on target CPU" true (kernel1 >= Costs.ipi_handle)

let test_page_table_switch_on_process_change () =
  let e, k = make ~ncpus:1 () in
  let p1 = Kernel.create_process k ~name:"p1" in
  let p2 = Kernel.create_process k ~name:"p2" in
  ignore
    (Kernel.spawn ~cpu:0 k p1 ~name:"a" (fun th ->
         Kernel.consume k th Breakdown.User_code 10.));
  ignore
    (Kernel.spawn ~cpu:0 k p2 ~name:"b" (fun th ->
         Kernel.consume k th Breakdown.User_code 10.));
  Engine.run e;
  Alcotest.(check bool) "page-table switch charged" true
    (Breakdown.get (Kernel.cpu_breakdown k 0) Breakdown.Page_table
    >= Costs.page_table_switch)

let test_shared_address_space_no_pt_switch () =
  let e, k = make ~ncpus:1 () in
  let p1 = Kernel.create_process k ~name:"p1" in
  let p2 = Kernel.create_process k ~name:"p2" in
  Kernel.share_address_space ~target:p2 ~with_:p1;
  ignore
    (Kernel.spawn ~cpu:0 k p1 ~name:"a" (fun th ->
         Kernel.consume k th Breakdown.User_code 10.));
  ignore
    (Kernel.spawn ~cpu:0 k p2 ~name:"b" (fun th ->
         Kernel.consume k th Breakdown.User_code 10.));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "no page-table switch in a shared space" 0.
    (Breakdown.get (Kernel.cpu_breakdown k 0) Breakdown.Page_table)

let test_syscall_overhead_categories () =
  let e, k = make ~ncpus:1 () in
  let p = Kernel.create_process k ~name:"p" in
  ignore
    (Kernel.spawn ~cpu:0 k p ~name:"t" (fun th -> Kernel.syscall_overhead k th));
  Engine.run e;
  let bd = Kernel.cpu_breakdown k 0 in
  Alcotest.(check (float 1e-9)) "entry/exit" Costs.syscall_entry_exit
    (Breakdown.get bd Breakdown.Syscall_entry);
  Alcotest.(check (float 1e-9)) "dispatch" Costs.syscall_dispatch
    (Breakdown.get bd Breakdown.Dispatch)

let test_fd_table () =
  let _, k = make () in
  let p = Kernel.create_process k ~name:"p" in
  let fd1 = Kernel.alloc_fd p "socket" in
  let fd2 = Kernel.alloc_fd p "file" in
  Alcotest.(check bool) "distinct fds" true (fd1 <> fd2);
  Alcotest.(check bool) "fds start after stdio" true (fd1 >= 3)

let suites =
  [
    ( "kernel.sched",
      [
        Alcotest.test_case "consume advances time" `Quick test_consume_advances_time;
        Alcotest.test_case "cpu token serializes" `Quick test_cpu_token_serializes;
        Alcotest.test_case "parallel cpus" `Quick test_parallel_cpus;
        Alcotest.test_case "preemption quantum" `Quick test_preemption_quantum;
        Alcotest.test_case "idle accounting" `Quick test_idle_accounting;
        Alcotest.test_case "cross-cpu wake IPIs" `Quick test_cross_cpu_wake_charges_ipi;
        Alcotest.test_case "page-table switch" `Quick test_page_table_switch_on_process_change;
        Alcotest.test_case "shared aspace skips pt switch" `Quick
          test_shared_address_space_no_pt_switch;
        Alcotest.test_case "syscall categories" `Quick test_syscall_overhead_categories;
        Alcotest.test_case "fd table" `Quick test_fd_table;
      ] );
    ( "kernel.futex",
      [
        Alcotest.test_case "wait/wake" `Quick test_futex_wait_wake;
        Alcotest.test_case "value mismatch" `Quick test_futex_value_mismatch_returns;
      ] );
    ( "kernel.pipe",
      [
        Alcotest.test_case "blocking + bytes" `Quick test_pipe_blocking_and_bytes;
        Alcotest.test_case "writer blocks when full" `Quick test_pipe_writer_blocks_when_full;
      ] );
    ( "kernel.unix_socket",
      [ Alcotest.test_case "fifo order" `Quick test_unix_socket_order ] );
  ]
