(* Tests for the compatibility and robustness extensions: fork/exec
   semantics (Sec. 6.1.3), asynchronous calls (Sec. 5.4), APL-cache
   pressure beyond 32 domains, generator invariants, and a fuzzing
   property over the machine's isolation. *)

module Perm = Dipc_hw.Perm
module Layout = Dipc_hw.Layout
module Machine = Dipc_hw.Machine
module Memory = Dipc_hw.Memory
module Page_table = Dipc_hw.Page_table
module Apl = Dipc_hw.Apl
module Apl_cache = Dipc_hw.Apl_cache
module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault
module Sys_ = Dipc_core.System
module Types = Dipc_core.Types
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver
module Call = Dipc_core.Call
module Entry = Dipc_core.Entry
module Proxy = Dipc_core.Proxy
module Asm = Dipc_core.Asm

(* --- fork/exec (Sec. 6.1.3) --- *)

let test_fork_disables_dipc () =
  let t = Sys_.create () in
  let parent = Sys_.create_process t ~name:"parent" in
  let child = Sys_.fork_process t parent ~name:"child" in
  Alcotest.(check bool) "child starts without dIPC" false child.Sys_.dipc_enabled;
  let img = Annot.image t child in
  ignore (Annot.declare_function t img ~name:"fn" [ Isa.Ret ]);
  Alcotest.(check bool) "entry_register denied before exec" true
    (try
       ignore
         (Annot.declare_entries t img ~name:"e"
            [ ("fn", Types.signature (), Types.props_none) ]);
       false
     with Sys_.Denied _ -> true);
  (* exec re-enables dIPC. *)
  Sys_.exec_process t child;
  ignore
    (Annot.declare_entries t img ~name:"e"
       [ ("fn", Types.signature (), Types.props_none) ])

let test_forked_child_cannot_request_entries () =
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let server = Sys_.create_process t ~name:"server" in
  let simg = Annot.image t server in
  ignore (Annot.declare_function t simg ~name:"fn" [ Isa.Ret ]);
  let handle =
    Annot.declare_entries t simg ~name:"svc"
      [ ("fn", Types.signature (), Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/svc" handle;
  let parent = Sys_.create_process t ~name:"parent" in
  let child = Sys_.fork_process t parent ~name:"child" in
  let cimg = Annot.image t child in
  let sym =
    Annot.import cimg ~path:"/svc" ~sig_:(Types.signature ()) ~props:Types.props_none ()
  in
  Alcotest.(check bool) "resolve denied before exec" true
    (try
       ignore (Annot.resolve t resolver sym);
       false
     with Sys_.Denied _ -> true)

(* --- asynchronous calls (Sec. 5.4) --- *)

let test_async_call () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let img = Annot.image t p in
  let fn =
    Annot.declare_function t img ~name:"fn" [ Isa.Add (0, 0, 1); Isa.Ret ]
  in
  let a = Call.exec_async t p ~fn ~args:[ 30; 12 ] in
  let b = Call.exec_async t p ~fn ~args:[ 1; 1 ] in
  (match Call.await t a with
  | Ok v -> Alcotest.(check int) "first async" 42 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f));
  match Call.await t b with
  | Ok v -> Alcotest.(check int) "second async" 2 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_async_threads_are_independent () =
  (* A crash on the async thread leaves other threads untouched. *)
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let img = Annot.image t p in
  let boom = Annot.declare_function t img ~name:"boom" [ Isa.Trap 1 ] in
  let ok = Annot.declare_function t img ~name:"ok" [ Isa.Const (0, 9); Isa.Ret ] in
  let a = Call.exec_async t p ~fn:boom ~args:[] in
  let b = Call.exec_async t p ~fn:ok ~args:[] in
  Alcotest.(check bool) "crash isolated to its thread" true
    (Result.is_error (Call.await t a));
  match Call.await t b with
  | Ok v -> Alcotest.(check int) "other thread unaffected" 9 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

(* --- APL cache pressure --- *)

let test_apl_cache_pressure_beyond_capacity () =
  (* More frequently-running domains than cache entries: misses occur on
     every lap (the paper notes its benchmarks stay below 32; this checks
     the machinery handles the overflow case). *)
  let m = Machine.create () in
  let apl = m.Machine.apl in
  let n = Apl_cache.capacity + 8 in
  let tags = Array.init n (fun _ -> Apl.fresh_tag apl) in
  let bases = Array.init n (fun i -> 0x1000000 + (i * Layout.page_size)) in
  Array.iteri
    (fun i base ->
      Page_table.map m.Machine.page_table ~addr:base ~count:1 ~tag:tags.(i)
        ~writable:false ~executable:true ();
      (* Each domain jumps to the next; the last halts. *)
      let instr =
        if i = n - 1 then [ Isa.Halt ] else [ Isa.Jmp bases.(i + 1) ]
      in
      ignore (Memory.place_code m.Machine.mem ~addr:base instr);
      if i < n - 1 then Apl.grant apl ~src:tags.(i) ~dst:tags.(i + 1) Perm.Read)
    bases;
  let ctx = Machine.new_ctx m ~pc:bases.(0) ~sp_value:0 in
  Machine.run m ctx;
  let _, misses, refills = Apl_cache.stats ctx.Machine.apl_cache in
  Alcotest.(check bool) "every domain missed once" true (misses >= n - 1);
  Alcotest.(check bool) "refills happened" true (refills >= n - 1);
  Alcotest.(check bool) "kernel time charged for refills" true
    (Dipc_sim.Breakdown.get ctx.Machine.breakdown Dipc_sim.Breakdown.Kernel > 0.)

(* --- assembler invariants --- *)

let test_asm_labels_and_alignment () =
  let a = Asm.create () in
  let l = Asm.label "target" in
  Asm.ins a Isa.Nop;
  Asm.branch a (fun t -> Isa.Jmp t) l;
  Asm.align a 64;
  Asm.bind a l;
  Asm.ins a Isa.Halt;
  let code, last = Asm.assemble a ~base:0x1000 in
  Alcotest.(check bool) "label aligned" true (Asm.target l mod 64 = 0);
  (match List.assoc_opt 0x1004 code with
  | Some (Isa.Jmp t) -> Alcotest.(check int) "branch resolved" (Asm.target l) t
  | _ -> Alcotest.fail "expected a Jmp at 0x1004");
  Alcotest.(check bool) "last past label" true (last > Asm.target l)

let prop_asm_relocatable =
  QCheck.Test.make ~name:"assembled size is base-independent" ~count:100
    QCheck.(pair (int_range 0 30) (int_range 0 63))
    (fun (n_instrs, _) ->
      let build () =
        let a = Asm.create () in
        let l = Asm.label "l" in
        Asm.align a 64;
        for _ = 1 to n_instrs do
          Asm.ins a Isa.Nop
        done;
        Asm.branch a (fun t -> Isa.Jmp t) l;
        Asm.align a 64;
        Asm.bind a l;
        Asm.ins a Isa.Halt;
        a
      in
      let s1 = Asm.size (build ()) ~base:0x1000 in
      let s2 = Asm.size (build ()) ~base:0x40000 in
      s1 = s2)

(* --- proxy generator invariants --- *)

let gen config =
  let mem = Memory.create () in
  let cache = Proxy.cache_create () in
  Proxy.generate cache ~mem ~base:0x10000 ~target_addr:0xbeef00 ~target_tag:9 config

let test_proxy_entry_alignment () =
  List.iter
    (fun (eff, cross) ->
      let g =
        gen
          {
            Proxy.sig_ = Types.signature ~args:2 ~rets:1 ();
            eff;
            cross_process = cross;
            tls_switch = cross;
          }
      in
      Alcotest.(check bool) "entry aligned" true
        (Layout.is_aligned g.Proxy.g_entry Layout.entry_align);
      Alcotest.(check bool) "return path aligned" true
        (Layout.is_aligned g.Proxy.g_ret Layout.entry_align))
    [
      (Types.props_none, false);
      (Types.props_none, true);
      (Types.props_high, false);
      (Types.props_high, true);
    ]

let test_proxy_size_scales_with_policy () =
  let size eff cross =
    (gen
       {
         Proxy.sig_ = Types.signature ~args:2 ~rets:1 ();
         eff;
         cross_process = cross;
         tls_switch = cross;
       })
      .Proxy.g_bytes
  in
  let lean = size Types.props_none false in
  let full_low = size Types.props_none true in
  let full_high = size Types.props_high true in
  Alcotest.(check bool) "lean smallest" true (lean < full_low);
  Alcotest.(check bool) "high policy adds code" true (full_low < full_high)

let test_proxy_stack_args_unrolled () =
  let size stack_bytes =
    (gen
       {
         Proxy.sig_ = Types.signature ~args:2 ~rets:1 ~stack_bytes ();
         eff = Types.props_high;
         cross_process = true;
         tls_switch = true;
       })
      .Proxy.g_bytes
  in
  Alcotest.(check bool) "stack-arg copy grows the template" true
    (size 64 > size 0)

(* --- machine isolation fuzzing --- *)

(* Random programs running in domain A must never corrupt domain B.  The
   generator is adversarial: it produces loads, stores, jumps, calls and
   capability operations with addresses biased around B's pages. *)
let prop_fuzz_isolation =
  let open QCheck in
  let instr_gen ~data_b ~code_b =
    let addr =
      Gen.oneof
        [
          Gen.return data_b;
          Gen.return (data_b + 8);
          Gen.return (data_b - 8);
          Gen.return code_b;
          Gen.map (fun o -> data_b + (o * 8)) (Gen.int_range 0 511);
          Gen.map (fun o -> code_b + (o * 4)) (Gen.int_range 0 64);
        ]
    in
    Gen.frequency
      [
        (3, Gen.map (fun v -> Isa.Const (1, v)) addr);
        (2, Gen.return (Isa.Load (0, 1, 0)));
        (2, Gen.return (Isa.Store (1, 0, 0)));
        (1, Gen.return (Isa.Jmpr 1));
        (1, Gen.return (Isa.Callr 1));
        (1, Gen.map (fun v -> Isa.Jmp v) addr);
        (1, Gen.return (Isa.CapAplDerive (0, 1, 2, Dipc_hw.Perm.Write)));
        (1, Gen.return (Isa.CapPush 0));
        (1, Gen.return (Isa.CapPop 0));
        (1, Gen.return (Isa.Add (0, 0, 1)));
        (1, Gen.return Isa.Ret);
      ]
  in
  Test.make ~name:"random programs cannot corrupt another domain" ~count:300
    (make
       Gen.(
         list_size (1 -- 25)
           (instr_gen ~data_b:0x400000 ~code_b:0x200000)))
    (fun instrs ->
      let m = Machine.create () in
      let apl = m.Machine.apl in
      let tag_a = Apl.fresh_tag apl and tag_b = Apl.fresh_tag apl in
      let pt = m.Machine.page_table in
      Page_table.map pt ~addr:0x100000 ~count:1 ~tag:tag_a ~writable:false
        ~executable:true ();
      Page_table.map pt ~addr:0x200000 ~count:1 ~tag:tag_b ~writable:false
        ~executable:true ();
      Page_table.map pt ~addr:0x300000 ~count:1 ~tag:tag_a ();
      Page_table.map pt ~addr:0x400000 ~count:1 ~tag:tag_b ();
      (* Sentinel values in B's data and a victim function in B's code. *)
      for i = 0 to 511 do
        Memory.store_word m.Machine.mem (0x400000 + (i * 8)) 0xB0B0
      done;
      ignore (Memory.place_code m.Machine.mem ~addr:0x200000 [ Isa.Ret ]);
      ignore
        (Memory.place_code m.Machine.mem ~addr:0x100000 (instrs @ [ Isa.Halt ]));
      let ctx = Machine.new_ctx m ~pc:0x100000 ~sp_value:(0x300000 + 0x1000) in
      (* A's own stack capability. *)
      ctx.Machine.cregs.(6) <-
        Some
          {
            Dipc_hw.Capability.base = 0x300000;
            length = 0x1000;
            perm = Dipc_hw.Perm.Write;
            scope =
              Dipc_hw.Capability.Asynchronous
                { owner_tag = tag_a; counter = 0; value = 0 };
          };
      (match Machine.run ~fuel:2000 m ctx with
      | () -> ()
      | exception Fault.Fault _ -> ()
      | exception Machine.Out_of_fuel -> ());
      (* Isolation invariant: B's data is intact. *)
      let intact = ref true in
      for i = 0 to 511 do
        if Memory.load_word m.Machine.mem (0x400000 + (i * 8)) <> 0xB0B0 then
          intact := false
      done;
      !intact)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "ext.fork_exec",
      [
        Alcotest.test_case "fork disables dIPC" `Quick test_fork_disables_dipc;
        Alcotest.test_case "forked child cannot import" `Quick
          test_forked_child_cannot_request_entries;
      ] );
    ( "ext.async",
      [
        Alcotest.test_case "async calls" `Quick test_async_call;
        Alcotest.test_case "async crash isolation" `Quick
          test_async_threads_are_independent;
      ] );
    ( "ext.apl_cache",
      [
        Alcotest.test_case "pressure beyond capacity" `Quick
          test_apl_cache_pressure_beyond_capacity;
      ] );
    ( "ext.asm",
      [ Alcotest.test_case "labels + alignment" `Quick test_asm_labels_and_alignment ]
      @ qsuite [ prop_asm_relocatable ] );
    ( "ext.proxy",
      [
        Alcotest.test_case "entry alignment" `Quick test_proxy_entry_alignment;
        Alcotest.test_case "size scales with policy" `Quick
          test_proxy_size_scales_with_policy;
        Alcotest.test_case "stack args unrolled" `Quick test_proxy_stack_args_unrolled;
      ] );
    ("ext.fuzz", qsuite [ prop_fuzz_isolation ]);
  ]
