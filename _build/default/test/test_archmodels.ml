(* Tests for the functional baseline-architecture models (Table 1's
   comparison points) and the TCP RPC baseline (footnote 1). *)

module Cheri = Dipc_hw.Minicheri
module Mmp = Dipc_hw.Minimmp
module M = Dipc_workloads.Microbench

(* --- mini-CHERI --- *)

let authority = { Cheri.c_base = 0; c_len = 100; c_perm = Cheri.Data; c_sealed = None }

let code_cap = Cheri.cap ~base:0x1000 ~len:0x100 ~perm:Cheri.Exec

let data_cap = Cheri.cap ~base:0x2000 ~len:0x100 ~perm:Cheri.Data

let test_cheri_sealing () =
  (match Cheri.seal ~authority ~otype:7 code_cap with
  | Ok sealed -> begin
      Alcotest.(check bool) "sealed" true (Cheri.is_sealed sealed);
      (* Sealed capabilities confer no authority. *)
      Alcotest.(check bool) "no access while sealed" false
        (Cheri.can_access sealed ~addr:0x1000);
      match Cheri.seal ~authority ~otype:7 sealed with
      | Ok _ -> Alcotest.fail "double sealing must fail"
      | Error _ -> ()
    end
  | Error e -> Alcotest.fail e);
  match Cheri.seal ~authority ~otype:9999 code_cap with
  | Ok _ -> Alcotest.fail "otype outside authority must fail"
  | Error _ -> ()

let test_cheri_ccall_roundtrip () =
  let domain =
    match Cheri.make_domain ~authority ~otype:3 ~code:code_cap ~data:data_cap with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let cpu =
    Cheri.cpu
      ~pcc:(Cheri.cap ~base:0x9000 ~len:0x100 ~perm:Cheri.Exec)
      ~idc:(Cheri.cap ~base:0xa000 ~len:0x100 ~perm:Cheri.Data)
  in
  (match Cheri.ccall cpu domain with
  | Ok () ->
      Alcotest.(check bool) "pcc switched and unsealed" true
        (Cheri.can_access cpu.Cheri.pcc ~addr:0x1000);
      Alcotest.(check bool) "idc switched" true
        (Cheri.can_access cpu.Cheri.idc ~addr:0x2000)
  | Error e -> Alcotest.fail e);
  (match Cheri.creturn cpu with
  | Ok () ->
      Alcotest.(check bool) "caller pcc restored" true
        (Cheri.can_access cpu.Cheri.pcc ~addr:0x9000)
  | Error e -> Alcotest.fail e);
  (* Every crossing trapped. *)
  Alcotest.(check int) "two exceptions per round trip" 2 cpu.Cheri.exceptions;
  match Cheri.creturn cpu with
  | Ok () -> Alcotest.fail "empty trusted stack must fail"
  | Error _ -> ()

let test_cheri_otype_mismatch () =
  let code = Result.get_ok (Cheri.seal ~authority ~otype:1 code_cap) in
  let data = Result.get_ok (Cheri.seal ~authority ~otype:2 data_cap) in
  let domain = { Cheri.d_code = code; d_data = data; d_otype = 1 } in
  let cpu =
    Cheri.cpu
      ~pcc:(Cheri.cap ~base:0x9000 ~len:0x10 ~perm:Cheri.Exec)
      ~idc:(Cheri.cap ~base:0xa000 ~len:0x10 ~perm:Cheri.Data)
  in
  match Cheri.ccall cpu domain with
  | Ok () -> Alcotest.fail "mismatched otypes must be rejected"
  | Error _ -> ()

(* --- mini-MMP --- *)

let test_mmp_permission_table () =
  let pd = Mmp.pd ~id:1 in
  Alcotest.(check bool) "empty table denies" false
    (Mmp.can_access pd ~addr:0x1000 ~perm:Mmp.Read_only);
  Mmp.grant pd ~base:0x1000 ~len:0x100 ~perm:Mmp.Read_only;
  Alcotest.(check bool) "granted read" true
    (Mmp.can_access pd ~addr:0x1080 ~perm:Mmp.Read_only);
  Alcotest.(check bool) "read grant denies write" false
    (Mmp.can_access pd ~addr:0x1080 ~perm:Mmp.Read_write);
  Mmp.revoke pd ~base:0x1000 ~len:0x100;
  Alcotest.(check bool) "revoked" false
    (Mmp.can_access pd ~addr:0x1080 ~perm:Mmp.Read_only);
  Alcotest.(check int) "table writes counted" 2 pd.Mmp.table_writes

let test_mmp_gates () =
  let a = Mmp.pd ~id:1 and b = Mmp.pd ~id:2 in
  let cpu = Mmp.cpu ~initial:a in
  Mmp.add_domain cpu b;
  Mmp.add_gate cpu ~addr:0x4000 ~from_pd:1 ~to_pd:2;
  (match Mmp.call_gate cpu ~addr:0x4000 with
  | Ok () -> Alcotest.(check int) "switched to b" 2 cpu.Mmp.current.Mmp.pd_id
  | Error e -> Alcotest.fail e);
  (* Only the gate's source domain may use it. *)
  (match Mmp.call_gate cpu ~addr:0x4000 with
  | Ok () -> Alcotest.fail "b is not the gate's source"
  | Error _ -> ());
  (match Mmp.return_gate cpu with
  | Ok () -> Alcotest.(check int) "returned to a" 1 cpu.Mmp.current.Mmp.pd_id
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "pipeline flushes counted" 2 cpu.Mmp.pipeline_flushes;
  match Mmp.return_gate cpu with
  | Ok () -> Alcotest.fail "nothing to return from"
  | Error _ -> ()

let test_mmp_not_a_gate () =
  let a = Mmp.pd ~id:1 in
  let cpu = Mmp.cpu ~initial:a in
  match Mmp.call_gate cpu ~addr:0x9999 with
  | Ok () -> Alcotest.fail "arbitrary address is not a gate"
  | Error _ -> ()

let test_mmp_sharing_cost_scales () =
  Alcotest.(check bool) "per-page table writes" true
    (Mmp.share_cost_ns ~bytes:65536 > 10. *. Mmp.share_cost_ns ~bytes:4096)

(* --- TCP RPC baseline (footnote 1) --- *)

let test_tcp_slower_than_unix_rpc () =
  let tcp = (M.run ~warmup:10 ~iters:60 ~same_cpu:true M.Tcp_rpc_prim).M.mean_ns in
  let unix = (M.run ~warmup:10 ~iters:60 ~same_cpu:true M.Local_rpc).M.mean_ns in
  Alcotest.(check bool) "TCP slower (header processing + extra copies)" true
    (tcp > 1.1 *. unix)

let test_tcp_segmentation_grows_with_size () =
  let small = (M.run ~bytes:64 ~warmup:5 ~iters:40 ~same_cpu:true M.Tcp_rpc_prim).M.mean_ns in
  let big = (M.run ~bytes:65536 ~warmup:5 ~iters:40 ~same_cpu:true M.Tcp_rpc_prim).M.mean_ns in
  (* 64 KiB = ~46 segments, each paying header processing. *)
  Alcotest.(check bool) "segment costs visible" true (big > small +. 15_000.)

let suites =
  [
    ( "arch.minicheri",
      [
        Alcotest.test_case "sealing" `Quick test_cheri_sealing;
        Alcotest.test_case "ccall/creturn" `Quick test_cheri_ccall_roundtrip;
        Alcotest.test_case "otype mismatch" `Quick test_cheri_otype_mismatch;
      ] );
    ( "arch.minimmp",
      [
        Alcotest.test_case "permission table" `Quick test_mmp_permission_table;
        Alcotest.test_case "gates" `Quick test_mmp_gates;
        Alcotest.test_case "not a gate" `Quick test_mmp_not_a_gate;
        Alcotest.test_case "sharing cost" `Quick test_mmp_sharing_cost_scales;
      ] );
    ( "arch.tcp_rpc",
      [
        Alcotest.test_case "slower than UNIX RPC" `Quick test_tcp_slower_than_unix_rpc;
        Alcotest.test_case "segmentation" `Quick test_tcp_segmentation_grows_with_size;
      ] );
  ]
