(* Tests for the CODOMs machine model: permissions, tagged page table,
   APLs and the APL cache, capabilities (incl. revocation and synchronous
   scope), the DCS, the instruction interpreter and its protection
   checks, and the Table 1 architecture comparison. *)

module Perm = Dipc_hw.Perm
module Layout = Dipc_hw.Layout
module Page_table = Dipc_hw.Page_table
module Apl = Dipc_hw.Apl
module Apl_cache = Dipc_hw.Apl_cache
module Capability = Dipc_hw.Capability
module Dcs = Dipc_hw.Dcs
module Memory = Dipc_hw.Memory
module Machine = Dipc_hw.Machine
module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault
module Archcmp = Dipc_hw.Archcmp

(* --- perm --- *)

let test_perm_lattice () =
  Alcotest.(check bool) "write includes read" true (Perm.includes Perm.Write Perm.Read);
  Alcotest.(check bool) "read includes call" true (Perm.includes Perm.Read Perm.Call);
  Alcotest.(check bool) "call excludes read" false (Perm.includes Perm.Call Perm.Read);
  Alcotest.(check bool) "nil includes nothing" false (Perm.includes Perm.Nil Perm.Call);
  Alcotest.(check bool) "owner maps to write" true
    (Perm.equal (Perm.to_hardware Perm.Owner) Perm.Write)

let prop_perm_includes_transitive =
  let perms = [ Perm.Nil; Perm.Call; Perm.Read; Perm.Write; Perm.Owner ] in
  QCheck.Test.make ~name:"perm includes is transitive" ~count:200
    QCheck.(triple (int_range 0 4) (int_range 0 4) (int_range 0 4))
    (fun (a, b, c) ->
      let pa = List.nth perms a and pb = List.nth perms b and pc = List.nth perms c in
      (not (Perm.includes pa pb && Perm.includes pb pc)) || Perm.includes pa pc)

(* --- page table --- *)

let test_page_table_map_unmap () =
  let pt = Page_table.create () in
  Page_table.map pt ~addr:0x10000 ~count:2 ~tag:3 ();
  Alcotest.(check bool) "mapped" true (Page_table.is_mapped pt 0x10000);
  Alcotest.(check bool) "second page" true (Page_table.is_mapped pt 0x11000);
  Alcotest.(check bool) "beyond" false (Page_table.is_mapped pt 0x12000);
  Page_table.unmap pt ~addr:0x10000 ~count:2;
  Alcotest.(check bool) "unmapped" false (Page_table.is_mapped pt 0x10000)

let test_page_table_double_map_rejected () =
  let pt = Page_table.create () in
  Page_table.map pt ~addr:0x10000 ~count:1 ~tag:1 ();
  Alcotest.(check bool) "double map raises" true
    (try
       Page_table.map pt ~addr:0x10000 ~count:1 ~tag:2 ();
       false
     with Invalid_argument _ -> true)

let test_page_table_retag () =
  let pt = Page_table.create () in
  Page_table.map pt ~addr:0x10000 ~count:2 ~tag:1 ();
  Page_table.retag pt ~addr:0x10000 ~count:2 ~from_tag:1 ~to_tag:9;
  (match Page_table.find pt 0x10000 with
  | Some p -> Alcotest.(check int) "retagged" 9 p.Page_table.tag
  | None -> Alcotest.fail "page lost");
  Alcotest.(check bool) "wrong source tag rejected" true
    (try
       Page_table.retag pt ~addr:0x10000 ~count:1 ~from_tag:1 ~to_tag:2;
       false
     with Invalid_argument _ -> true)

(* --- apl --- *)

let test_apl_grants () =
  let apl = Apl.create () in
  let a = Apl.fresh_tag apl and b = Apl.fresh_tag apl in
  Alcotest.(check bool) "implicit self write" true
    (Perm.equal (Apl.permission apl ~src:a ~dst:a) Perm.Write);
  Alcotest.(check bool) "default nil" true
    (Perm.equal (Apl.permission apl ~src:a ~dst:b) Perm.Nil);
  Apl.grant apl ~src:a ~dst:b Perm.Read;
  Alcotest.(check bool) "granted read" true
    (Perm.equal (Apl.permission apl ~src:a ~dst:b) Perm.Read);
  Alcotest.(check bool) "asymmetric" true
    (Perm.equal (Apl.permission apl ~src:b ~dst:a) Perm.Nil);
  Apl.revoke apl ~src:a ~dst:b;
  Alcotest.(check bool) "revoked" true
    (Perm.equal (Apl.permission apl ~src:a ~dst:b) Perm.Nil)

let test_apl_drop_tag () =
  let apl = Apl.create () in
  let a = Apl.fresh_tag apl and b = Apl.fresh_tag apl and c = Apl.fresh_tag apl in
  Apl.grant apl ~src:a ~dst:b Perm.Read;
  Apl.grant apl ~src:b ~dst:c Perm.Call;
  Apl.drop_tag apl b;
  Alcotest.(check bool) "grants to dropped tag gone" true
    (Perm.equal (Apl.permission apl ~src:a ~dst:b) Perm.Nil);
  Alcotest.(check bool) "grants from dropped tag gone" true
    (Perm.equal (Apl.permission apl ~src:b ~dst:c) Perm.Nil)

(* --- apl cache --- *)

let test_apl_cache_hit_miss () =
  let c = Apl_cache.create () in
  Alcotest.(check bool) "initial miss" true (Apl_cache.lookup c 7 = None);
  let hw, hit = Apl_cache.ensure c 7 in
  Alcotest.(check bool) "installed" false hit;
  let hw', hit' = Apl_cache.ensure c 7 in
  Alcotest.(check bool) "hit" true hit';
  Alcotest.(check int) "stable hardware tag" hw hw'

let test_apl_cache_capacity_lru () =
  let c = Apl_cache.create () in
  for tag = 1 to Apl_cache.capacity do
    ignore (Apl_cache.install c tag)
  done;
  (* Touch tag 1 so it is recently used, then overflow. *)
  ignore (Apl_cache.lookup c 1);
  ignore (Apl_cache.install c 1000);
  Alcotest.(check bool) "recently used survives" true (Apl_cache.lookup c 1 <> None);
  Alcotest.(check int) "still at capacity" Apl_cache.capacity
    (List.length (Apl_cache.resident_tags c))

let test_apl_cache_hw_tag_range () =
  let c = Apl_cache.create () in
  for tag = 100 to 200 do
    let hw = Apl_cache.install c tag in
    Alcotest.(check bool) "5-bit hardware tag" true (hw >= 0 && hw < 32)
  done

(* --- capabilities --- *)

let sync_scope = Capability.Synchronous { thread = 0; depth = 0; epoch = 0 }

let test_capability_covers () =
  let cap = { Capability.base = 0x1000; length = 0x100; perm = Perm.Read; scope = sync_scope } in
  Alcotest.(check bool) "inside" true (Capability.covers cap ~addr:0x1000 ~len:8);
  Alcotest.(check bool) "end" true (Capability.covers cap ~addr:0x10f8 ~len:8);
  Alcotest.(check bool) "past end" false (Capability.covers cap ~addr:0x10f9 ~len:8);
  Alcotest.(check bool) "before" false (Capability.covers cap ~addr:0xfff ~len:8)

let test_capability_restrict_no_amplify () =
  let cap = { Capability.base = 0x1000; length = 0x100; perm = Perm.Read; scope = sync_scope } in
  (match Capability.restrict cap ~base:0x1000 ~length:0x10 ~perm:Perm.Read with
  | Ok c -> Alcotest.(check int) "narrowed" 0x10 c.Capability.length
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "cannot widen range" true
    (Result.is_error (Capability.restrict cap ~base:0x0fff ~length:0x10 ~perm:Perm.Read));
  Alcotest.(check bool) "cannot amplify perm" true
    (Result.is_error (Capability.restrict cap ~base:0x1000 ~length:0x10 ~perm:Perm.Write))

let prop_capability_restrict_shrinks =
  QCheck.Test.make ~name:"restrict never expands authority" ~count:300
    QCheck.(quad (int_range 0 1000) (int_range 1 1000) (int_range 0 2000) (int_range 1 1000))
    (fun (base, len, b2, l2) ->
      let cap = { Capability.base; length = len; perm = Perm.Write; scope = sync_scope } in
      match Capability.restrict cap ~base:b2 ~length:l2 ~perm:Perm.Write with
      | Ok c ->
          c.Capability.base >= cap.Capability.base
          && c.Capability.base + c.Capability.length
             <= cap.Capability.base + cap.Capability.length
      | Error _ -> true)

let test_revocation () =
  let t = Capability.Revocation.create () in
  Alcotest.(check int) "initial" 0 (Capability.Revocation.value t ~tag:1 ~counter:0);
  Capability.Revocation.revoke t ~tag:1 ~counter:0;
  Alcotest.(check int) "bumped" 1 (Capability.Revocation.value t ~tag:1 ~counter:0);
  Alcotest.(check int) "independent counters" 0
    (Capability.Revocation.value t ~tag:1 ~counter:1)

(* --- DCS --- *)

let dummy_cap = { Capability.base = 0; length = 8; perm = Perm.Read; scope = sync_scope }

let test_dcs_push_pop () =
  let d = Dcs.create () in
  Dcs.push d ~pc:0 dummy_cap;
  Dcs.push d ~pc:0 { dummy_cap with Capability.base = 8 };
  Alcotest.(check int) "depth" 2 (Dcs.depth d);
  let c = Dcs.pop d ~pc:0 in
  Alcotest.(check int) "lifo" 8 c.Capability.base

let test_dcs_base_protection () =
  let d = Dcs.create () in
  Dcs.push d ~pc:0 dummy_cap;
  Dcs.set_base d ~pc:0 1;
  Alcotest.check_raises "pop below base faults"
    (Fault.Fault { Fault.kind = Fault.Dcs_bounds "pop below base"; pc = 0; addr = None })
    (fun () -> ignore (Dcs.pop d ~pc:0))

let test_dcs_switch_restore () =
  let d = Dcs.create () in
  Dcs.push d ~pc:0 dummy_cap;
  Dcs.push d ~pc:0 { dummy_cap with Capability.base = 8 };
  (* Switch copying 1 argument entry. *)
  let saved = Dcs.switch d ~pc:0 ~args:1 in
  Alcotest.(check int) "fresh stack has the argument" 1 (Dcs.depth d);
  let arg = Dcs.pop d ~pc:0 in
  Alcotest.(check int) "argument is the top entry" 8 arg.Capability.base;
  Dcs.push d ~pc:0 { dummy_cap with Capability.base = 16 };
  Dcs.restore d ~pc:0 ~rets:1 saved;
  Alcotest.(check int) "restored + result" 3 (Dcs.depth d);
  let result = Dcs.pop d ~pc:0 in
  Alcotest.(check int) "result copied back" 16 result.Capability.base

let test_dcs_overflow () =
  let d = Dcs.create ~capacity:2 () in
  Dcs.push d ~pc:0 dummy_cap;
  Dcs.push d ~pc:0 dummy_cap;
  Alcotest.check_raises "overflow"
    (Fault.Fault { Fault.kind = Fault.Dcs_bounds "overflow"; pc = 0; addr = None })
    (fun () -> Dcs.push d ~pc:0 dummy_cap)

(* --- machine: a small two-domain world --- *)

type world = {
  m : Machine.t;
  tag_a : int;
  tag_b : int;
  tag_s : int; (* the stacks domain: reachable only through capabilities *)
  code_a : int; (* page base for A's code *)
  code_b : int;
  data_a : int;
  data_b : int;
  stack_page : int;
  stack_a : int; (* top *)
}

let build_world () =
  let m = Machine.create () in
  let apl = m.Machine.apl in
  let tag_a = Apl.fresh_tag apl and tag_b = Apl.fresh_tag apl in
  let tag_s = Apl.fresh_tag apl in
  let pt = m.Machine.page_table in
  let code_a = 0x100000 and code_b = 0x200000 in
  let data_a = 0x300000 and data_b = 0x400000 in
  let stack_page = 0x500000 in
  Page_table.map pt ~addr:code_a ~count:1 ~tag:tag_a ~writable:false ~executable:true ();
  Page_table.map pt ~addr:code_b ~count:1 ~tag:tag_b ~writable:false ~executable:true ();
  Page_table.map pt ~addr:data_a ~count:1 ~tag:tag_a ();
  Page_table.map pt ~addr:data_b ~count:1 ~tag:tag_b ();
  Page_table.map pt ~addr:stack_page ~count:1 ~tag:tag_s ();
  { m; tag_a; tag_b; tag_s; code_a; code_b; data_a; data_b; stack_page;
    stack_a = stack_page + 0x1000 }

(* The thread-private stack capability, like dIPC's c6 convention: the
   stack travels with the thread across domains. *)
let install_stack_cap w ctx =
  ctx.Machine.cregs.(6) <-
    Some
      {
        Capability.base = w.stack_page;
        length = 0x1000;
        perm = Perm.Write;
        scope = Capability.Asynchronous { owner_tag = w.tag_s; counter = 0; value = 0 };
      }

(* Run instructions placed in A's code page; the program must end with
   Halt. *)
let run_in_a ?(setup = fun _ -> ()) w instrs =
  ignore (Memory.place_code w.m.Machine.mem ~addr:w.code_a instrs);
  let ctx = Machine.new_ctx w.m ~pc:w.code_a ~sp_value:w.stack_a in
  install_stack_cap w ctx;
  setup ctx;
  Machine.run w.m ctx;
  ctx

let expect_fault w instrs kind_check =
  ignore (Memory.place_code w.m.Machine.mem ~addr:w.code_a instrs);
  let ctx = Machine.new_ctx w.m ~pc:w.code_a ~sp_value:w.stack_a in
  install_stack_cap w ctx;
  match Machine.run w.m ctx with
  | () -> Alcotest.fail "expected a fault"
  | exception Fault.Fault f ->
      if not (kind_check f.Fault.kind) then
        Alcotest.failf "unexpected fault: %s" (Fault.to_string f)

let test_machine_arithmetic () =
  let w = build_world () in
  let ctx =
    run_in_a w
      [
        Isa.Const (0, 6);
        Isa.Const (1, 7);
        Isa.Mul (2, 0, 1);
        Isa.Addi (2, 2, 8);
        Isa.Shli (2, 2, 1);
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "result" 100 ctx.Machine.regs.(2)

let test_machine_load_store_own_domain () =
  let w = build_world () in
  let ctx =
    run_in_a w
      [
        Isa.Const (1, w.data_a);
        Isa.Const (0, 1234);
        Isa.Store (1, 0, 0);
        Isa.Load (2, 1, 0);
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "round trip" 1234 ctx.Machine.regs.(2)

let test_machine_denied_cross_domain_store () =
  let w = build_world () in
  expect_fault w
    [ Isa.Const (1, w.data_b); Isa.Const (0, 1); Isa.Store (1, 0, 0); Isa.Halt ]
    (function Fault.No_permission _ -> true | _ -> false)

let test_machine_apl_read_grant () =
  let w = build_world () in
  Apl.grant w.m.Machine.apl ~src:w.tag_a ~dst:w.tag_b Perm.Read;
  Machine.poke_words w.m ~addr:w.data_b [| 77 |];
  let ctx = run_in_a w [ Isa.Const (1, w.data_b); Isa.Load (0, 1, 0); Isa.Halt ] in
  Alcotest.(check int) "read allowed" 77 ctx.Machine.regs.(0);
  (* Read grant still forbids writing. *)
  expect_fault w
    [ Isa.Const (1, w.data_b); Isa.Store (1, 0, 1); Isa.Halt ]
    (function Fault.No_permission p -> Perm.equal p Perm.Write | _ -> false)

let test_machine_page_protection_honored () =
  let w = build_world () in
  (* APL write to B, but B's page is read-only: per-page bits win. *)
  Apl.grant w.m.Machine.apl ~src:w.tag_a ~dst:w.tag_b Perm.Write;
  Page_table.set_protection w.m.Machine.page_table ~addr:w.data_b ~count:1
    ~writable:false ();
  expect_fault w
    [ Isa.Const (1, w.data_b); Isa.Store (1, 0, 1); Isa.Halt ]
    (function Fault.Write_to_readonly -> true | _ -> false)

let test_machine_unmapped () =
  let w = build_world () in
  expect_fault w
    [ Isa.Const (1, 0x9999000); Isa.Load (0, 1, 0); Isa.Halt ]
    (function Fault.Unmapped -> true | _ -> false)

let test_machine_cross_domain_call_alignment () =
  let w = build_world () in
  Apl.grant w.m.Machine.apl ~src:w.tag_a ~dst:w.tag_b Perm.Call;
  (* The return path B->A needs its own authority (dIPC proxies hand the
     callee a return capability; here a plain APL grant suffices). *)
  Apl.grant w.m.Machine.apl ~src:w.tag_b ~dst:w.tag_a Perm.Read;
  (* An aligned entry point in B returns 55; a misaligned one exists 4
     bytes later. *)
  ignore
    (Memory.place_code w.m.Machine.mem ~addr:w.code_b
       [ Isa.Const (0, 55); Isa.Ret ]);
  let ctx =
    run_in_a w [ Isa.Call w.code_b; Isa.Halt ]
  in
  Alcotest.(check int) "entered through entry point" 55 ctx.Machine.regs.(0);
  expect_fault w
    [ Isa.Call (w.code_b + Isa.instr_bytes); Isa.Halt ]
    (function Fault.Not_entry_point -> true | _ -> false)

let test_machine_read_grant_allows_arbitrary_jump () =
  let w = build_world () in
  Apl.grant w.m.Machine.apl ~src:w.tag_a ~dst:w.tag_b Perm.Read;
  Apl.grant w.m.Machine.apl ~src:w.tag_b ~dst:w.tag_a Perm.Read;
  ignore
    (Memory.place_code w.m.Machine.mem ~addr:w.code_b
       [ Isa.Nop; Isa.Const (0, 9); Isa.Ret ]);
  (* Jump into the middle of B: fine with read. *)
  let ctx = run_in_a w [ Isa.Call (w.code_b + Isa.instr_bytes); Isa.Halt ] in
  Alcotest.(check int) "jumped mid-domain" 9 ctx.Machine.regs.(0)

let test_machine_no_call_no_entry () =
  let w = build_world () in
  ignore (Memory.place_code w.m.Machine.mem ~addr:w.code_b [ Isa.Ret ]);
  expect_fault w
    [ Isa.Call w.code_b; Isa.Halt ]
    (function Fault.No_permission _ -> true | _ -> false)

let test_machine_exec_violation () =
  let w = build_world () in
  expect_fault w
    [ Isa.Jmp w.data_a ]
    (function Fault.Exec_violation -> true | _ -> false)

let test_machine_privileged_instruction () =
  let w = build_world () in
  (* RdTp from an unprivileged page faults. *)
  expect_fault w
    [ Isa.RdTp 0; Isa.Halt ]
    (function Fault.Privilege_required -> true | _ -> false);
  (* Flip the privileged-capability bit: now allowed, no mode switch. *)
  (match Page_table.find w.m.Machine.page_table w.code_a with
  | Some p -> p.Page_table.priv_cap <- true
  | None -> Alcotest.fail "code page missing");
  let ctx =
    run_in_a w
      ~setup:(fun ctx -> ctx.Machine.tp <- 0xbeef0)
      [ Isa.RdTp 0; Isa.Halt ]
  in
  Alcotest.(check int) "tp read" 0xbeef0 ctx.Machine.regs.(0)

let test_machine_capability_data_access () =
  let w = build_world () in
  Machine.poke_words w.m ~addr:w.data_b [| 31337 |];
  (* No APL grant; hand the context a capability instead. *)
  let cap =
    { Capability.base = w.data_b; length = 64; perm = Perm.Read; scope = sync_scope }
  in
  let ctx0 = Machine.new_ctx w.m ~pc:w.code_a ~sp_value:w.stack_a in
  (* scope thread must match the context that uses it *)
  let cap = { cap with Capability.scope = Capability.Synchronous { thread = ctx0.Machine.id; depth = 0; epoch = 0 } } in
  ctx0.Machine.cregs.(0) <- Some cap;
  ignore
    (Memory.place_code w.m.Machine.mem ~addr:w.code_a
       [ Isa.Const (1, w.data_b); Isa.Load (0, 1, 0); Isa.Halt ]);
  Machine.run w.m ctx0;
  Alcotest.(check int) "capability authorised the load" 31337 ctx0.Machine.regs.(0)

let test_machine_capability_bounds () =
  let w = build_world () in
  let ctx0 = Machine.new_ctx w.m ~pc:w.code_a ~sp_value:w.stack_a in
  ctx0.Machine.cregs.(0) <-
    Some
      {
        Capability.base = w.data_b;
        length = 8;
        perm = Perm.Read;
        scope = Capability.Synchronous { thread = ctx0.Machine.id; depth = 0; epoch = 0 };
      };
  ignore
    (Memory.place_code w.m.Machine.mem ~addr:w.code_a
       [ Isa.Const (1, w.data_b + 8); Isa.Load (0, 1, 0); Isa.Halt ]);
  (match Machine.run w.m ctx0 with
  | () -> Alcotest.fail "expected out-of-bounds fault"
  | exception Fault.Fault f ->
      Alcotest.(check bool) "bounds fault" true
        (match f.Fault.kind with Fault.No_permission _ -> true | _ -> false))

let test_machine_cap_derive_and_use () =
  let w = build_world () in
  (* Derive a capability from the APL and use it after the grant would no
     longer be needed. *)
  Apl.grant w.m.Machine.apl ~src:w.tag_a ~dst:w.tag_b Perm.Write;
  let ctx =
    run_in_a w
      [
        Isa.Const (1, w.data_b);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Write);
        Isa.Const (0, 99);
        Isa.Store (1, 0, 0);
        Isa.Load (3, 1, 0);
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "store through derived cap" 99 ctx.Machine.regs.(3)

let test_machine_cap_derive_requires_apl () =
  let w = build_world () in
  expect_fault w
    [
      Isa.Const (1, w.data_b);
      Isa.Const (2, 64);
      Isa.CapAplDerive (0, 1, 2, Perm.Write);
      Isa.Halt;
    ]
    (function Fault.No_permission _ -> true | _ -> false)

let test_machine_sync_cap_dies_with_frame () =
  let w = build_world () in
  (* A function in A derives a capability, returns; the capability must be
     dead afterwards. *)
  let fn = w.code_a + 0x100 in
  ignore
    (Memory.place_code w.m.Machine.mem ~addr:fn
       [
         Isa.Const (1, w.data_a);
         Isa.Const (2, 64);
         Isa.CapAplDerive (0, 1, 2, Perm.Write);
         Isa.Ret;
       ]);
  expect_fault w
    [
      Isa.Call fn;
      (* back home: the sync cap in c0 is now dead; CapPush must fault *)
      Isa.CapPush 0;
      Isa.Halt;
    ]
    (function Fault.Cap_invalid -> true | _ -> false)

let test_machine_async_cap_revocation () =
  let w = build_world () in
  let ctx =
    run_in_a w
      [
        Isa.Const (1, w.data_a);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Write);
        Isa.Const (3, 5) (* revocation counter index *);
        Isa.CapAsync (1, 0, 3);
        (* still valid: store through it *)
        Isa.Const (0, 11);
        Isa.Store (1, 0, 0);
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "async cap worked" 11 (Machine.peek_word w.m ~addr:w.data_a);
  ignore ctx;
  (* Now revoke counter 5 and try to use a fresh context with the same
     stored capability. *)
  let ctx2 = Machine.new_ctx w.m ~pc:w.code_a ~sp_value:w.stack_a in
  ctx2.Machine.cregs.(1) <-
    Some
      {
        Capability.base = w.data_a;
        length = 64;
        perm = Perm.Write;
        scope = Capability.Asynchronous { owner_tag = w.tag_a; counter = 5; value = 0 };
      };
  Capability.Revocation.revoke w.m.Machine.revocation ~tag:w.tag_a ~counter:5;
  ignore
    (Memory.place_code w.m.Machine.mem ~addr:w.code_b [ Isa.Halt ]);
  ignore
    (Memory.place_code w.m.Machine.mem ~addr:w.code_a
       [ Isa.Const (1, w.data_b); Isa.Store (1, 0, 0); Isa.Halt ]);
  (match Machine.run w.m ctx2 with
  | () -> Alcotest.fail "expected revoked-capability fault"
  | exception Fault.Fault f ->
      Alcotest.(check bool) "revoked" true
        (match f.Fault.kind with Fault.No_permission _ -> true | _ -> false))

let test_machine_cap_storage_bit () =
  let w = build_world () in
  let cap_page = 0x600000 in
  Page_table.map w.m.Machine.page_table ~addr:cap_page ~count:1 ~tag:w.tag_a
    ~cap_store:true ();
  (* Regular stores to a capability page fault. *)
  expect_fault w
    [ Isa.Const (1, cap_page); Isa.Store (1, 0, 0); Isa.Halt ]
    (function Fault.Cap_storage _ -> true | _ -> false);
  (* Capability store/load round trip works there, and capability access
     to a regular page faults. *)
  let ctx =
    run_in_a w
      [
        Isa.Const (1, w.data_a);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Write);
        Isa.Const (3, cap_page);
        Isa.CapStore (3, 0, 0);
        Isa.CapLoad (4, 3, 0);
        Isa.Halt;
      ]
  in
  Alcotest.(check bool) "cap round-tripped" true (ctx.Machine.cregs.(4) <> None);
  expect_fault w
    [
      Isa.Const (1, w.data_a);
      Isa.Const (2, 64);
      Isa.CapAplDerive (0, 1, 2, Perm.Write);
      Isa.Const (3, w.data_a);
      Isa.CapStore (3, 0, 0);
      Isa.Halt;
    ]
    (function Fault.Cap_storage _ -> true | _ -> false)

let test_machine_costs_accumulate () =
  let w = build_world () in
  let ctx = run_in_a w [ Isa.Nop; Isa.Nop; Isa.Halt ] in
  Alcotest.(check int) "instret" 3 ctx.Machine.instret;
  Alcotest.(check bool) "cost positive" true (ctx.Machine.cost > 0.)

let test_machine_apl_cache_counts () =
  let w = build_world () in
  Apl.grant w.m.Machine.apl ~src:w.tag_a ~dst:w.tag_b Perm.Call;
  Apl.grant w.m.Machine.apl ~src:w.tag_b ~dst:w.tag_a Perm.Read;
  ignore (Memory.place_code w.m.Machine.mem ~addr:w.code_b [ Isa.Ret ]);
  let ctx =
    run_in_a w [ Isa.Call w.code_b; Isa.Call w.code_b; Isa.Halt ]
  in
  let _, misses, _ = Apl_cache.stats ctx.Machine.apl_cache in
  (* First touch of each domain misses; afterwards everything hits. *)
  Alcotest.(check bool) "at most 2 misses" true (misses <= 2)

(* --- archcmp (Table 1) --- *)

let test_archcmp_rows () =
  let rows = Archcmp.table ~bytes:4096 in
  Alcotest.(check int) "four architectures" 4 (List.length rows);
  let cost arch =
    let r = List.find (fun r -> r.Archcmp.row_arch = arch) rows in
    r.Archcmp.switch_cost
  in
  Alcotest.(check bool) "codoms cheapest switch" true
    (cost Archcmp.Codoms < cost Archcmp.Mmp
    && cost Archcmp.Mmp < cost Archcmp.Conventional
    && cost Archcmp.Codoms < cost Archcmp.Cheri)

let test_archcmp_data () =
  let rows = Archcmp.table ~bytes:65536 in
  let data arch =
    let r = List.find (fun r -> r.Archcmp.row_arch = arch) rows in
    r.Archcmp.data_cost
  in
  Alcotest.(check bool) "capability setup beats memcpy" true
    (data Archcmp.Codoms < data Archcmp.Conventional);
  Alcotest.(check bool) "codoms == cheri for data" true
    (data Archcmp.Codoms = data Archcmp.Cheri)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "hw.perm",
      [ Alcotest.test_case "lattice" `Quick test_perm_lattice ]
      @ qsuite [ prop_perm_includes_transitive ] );
    ( "hw.page_table",
      [
        Alcotest.test_case "map/unmap" `Quick test_page_table_map_unmap;
        Alcotest.test_case "double map" `Quick test_page_table_double_map_rejected;
        Alcotest.test_case "retag" `Quick test_page_table_retag;
      ] );
    ( "hw.apl",
      [
        Alcotest.test_case "grants" `Quick test_apl_grants;
        Alcotest.test_case "drop tag" `Quick test_apl_drop_tag;
      ] );
    ( "hw.apl_cache",
      [
        Alcotest.test_case "hit/miss" `Quick test_apl_cache_hit_miss;
        Alcotest.test_case "capacity + LRU" `Quick test_apl_cache_capacity_lru;
        Alcotest.test_case "hw tag range" `Quick test_apl_cache_hw_tag_range;
      ] );
    ( "hw.capability",
      [
        Alcotest.test_case "covers" `Quick test_capability_covers;
        Alcotest.test_case "restrict" `Quick test_capability_restrict_no_amplify;
        Alcotest.test_case "revocation" `Quick test_revocation;
      ]
      @ qsuite [ prop_capability_restrict_shrinks ] );
    ( "hw.dcs",
      [
        Alcotest.test_case "push/pop" `Quick test_dcs_push_pop;
        Alcotest.test_case "base protection" `Quick test_dcs_base_protection;
        Alcotest.test_case "switch/restore" `Quick test_dcs_switch_restore;
        Alcotest.test_case "overflow" `Quick test_dcs_overflow;
      ] );
    ( "hw.machine",
      [
        Alcotest.test_case "arithmetic" `Quick test_machine_arithmetic;
        Alcotest.test_case "load/store own domain" `Quick test_machine_load_store_own_domain;
        Alcotest.test_case "cross-domain store denied" `Quick test_machine_denied_cross_domain_store;
        Alcotest.test_case "APL read grant" `Quick test_machine_apl_read_grant;
        Alcotest.test_case "page bits honored" `Quick test_machine_page_protection_honored;
        Alcotest.test_case "unmapped" `Quick test_machine_unmapped;
        Alcotest.test_case "entry-point alignment" `Quick test_machine_cross_domain_call_alignment;
        Alcotest.test_case "read allows arbitrary jump" `Quick test_machine_read_grant_allows_arbitrary_jump;
        Alcotest.test_case "no perm, no entry" `Quick test_machine_no_call_no_entry;
        Alcotest.test_case "exec violation" `Quick test_machine_exec_violation;
        Alcotest.test_case "privileged capability bit" `Quick test_machine_privileged_instruction;
        Alcotest.test_case "capability data access" `Quick test_machine_capability_data_access;
        Alcotest.test_case "capability bounds" `Quick test_machine_capability_bounds;
        Alcotest.test_case "derive + use" `Quick test_machine_cap_derive_and_use;
        Alcotest.test_case "derive requires APL" `Quick test_machine_cap_derive_requires_apl;
        Alcotest.test_case "sync cap dies with frame" `Quick test_machine_sync_cap_dies_with_frame;
        Alcotest.test_case "async cap revocation" `Quick test_machine_async_cap_revocation;
        Alcotest.test_case "capability storage bit" `Quick test_machine_cap_storage_bit;
        Alcotest.test_case "cost accounting" `Quick test_machine_costs_accumulate;
        Alcotest.test_case "apl cache counts" `Quick test_machine_apl_cache_counts;
      ] );
    ( "hw.archcmp",
      [
        Alcotest.test_case "switch costs (Table 1)" `Quick test_archcmp_rows;
        Alcotest.test_case "data costs (Table 1)" `Quick test_archcmp_data;
      ] );
  ]
