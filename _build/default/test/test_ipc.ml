(* Tests for the baseline IPC primitives and their calibration against the
   paper's measurements (Figures 2 and 5). *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Xdr = Dipc_ipc.Xdr
module M = Dipc_workloads.Microbench

(* --- XDR codec --- *)

let test_xdr_roundtrip () =
  let e = Xdr.encoder () in
  Xdr.enc_int e 42;
  Xdr.enc_string e "hello";
  Xdr.enc_bool e true;
  Xdr.enc_list e Xdr.enc_int [ 1; 2; 3 ];
  let d = Xdr.decoder (Xdr.to_string e) in
  Alcotest.(check int) "int" 42 (Xdr.dec_int d);
  Alcotest.(check string) "string" "hello" (Xdr.dec_string d);
  Alcotest.(check bool) "bool" true (Xdr.dec_bool d);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Xdr.dec_list d Xdr.dec_int)

let test_xdr_padding () =
  (* Opaque data pads to 4-byte multiples like real XDR. *)
  let e = Xdr.encoder () in
  Xdr.enc_opaque e "abc";
  Xdr.enc_int e 7;
  let s = Xdr.to_string e in
  Alcotest.(check int) "length includes pad" (4 + 3 + 1 + 8) (String.length s);
  let d = Xdr.decoder s in
  Alcotest.(check string) "opaque" "abc" (Xdr.dec_opaque d);
  Alcotest.(check int) "aligned follower" 7 (Xdr.dec_int d)

let test_xdr_short_buffer () =
  let d = Xdr.decoder "\000\000" in
  Alcotest.(check bool) "short buffer raises" true
    (try
       ignore (Xdr.dec_int d);
       false
     with Xdr.Decode_error _ -> true)

let prop_xdr_string_roundtrip =
  QCheck.Test.make ~name:"xdr opaque round-trips any string" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let e = Xdr.encoder () in
      Xdr.enc_opaque e s;
      let d = Xdr.decoder (Xdr.to_string e) in
      Xdr.dec_opaque d = s)

let prop_xdr_int_list_roundtrip =
  QCheck.Test.make ~name:"xdr int list round-trips" ~count:200
    QCheck.(list_of_size Gen.(0 -- 50) int)
    (fun xs ->
      let e = Xdr.encoder () in
      Xdr.enc_list e Xdr.enc_int xs;
      let d = Xdr.decoder (Xdr.to_string e) in
      Xdr.dec_list d Xdr.dec_int = xs)

(* --- calibration against the paper (Figure 5, x of a 2 ns call) ---

   Band checks: the measured round-trip must land within a factor band of
   the paper's value, wide enough to tolerate model evolution but tight
   enough that the figure keeps its shape. *)

let band name ~paper ~lo ~hi actual =
  if actual < paper *. lo || actual > paper *. hi then
    Alcotest.failf "%s: %.0f ns outside [%.0f, %.0f] (paper %.0f)" name actual
      (paper *. lo) (paper *. hi) paper

let run ?bytes prim ~same_cpu = (M.run ?bytes ~warmup:10 ~iters:60 ~same_cpu prim).M.mean_ns

let test_sem_calibration () =
  band "Sem =CPU" ~paper:1514. ~lo:0.6 ~hi:1.6 (run M.Sem ~same_cpu:true);
  band "Sem !=CPU" ~paper:4518. ~lo:0.6 ~hi:1.6 (run M.Sem ~same_cpu:false)

let test_pipe_calibration () =
  band "Pipe =CPU" ~paper:2032. ~lo:0.6 ~hi:1.6 (run M.Pipe ~same_cpu:true);
  band "Pipe !=CPU" ~paper:4514. ~lo:0.6 ~hi:1.6 (run M.Pipe ~same_cpu:false)

let test_l4_calibration () =
  (* L4 (=CPU) is 474x a function call in the paper. *)
  band "L4 =CPU" ~paper:948. ~lo:0.6 ~hi:1.6 (run M.L4 ~same_cpu:true)

let test_rpc_calibration () =
  band "RPC =CPU" ~paper:6856. ~lo:0.6 ~hi:1.6 (run M.Local_rpc ~same_cpu:true);
  band "RPC !=CPU" ~paper:8442. ~lo:0.6 ~hi:1.6 (run M.Local_rpc ~same_cpu:false)

let test_user_rpc_calibration () =
  (* "almost twice as fast as RPC" (Sec. 7.2). *)
  let user_rpc = run M.User_rpc_prim ~same_cpu:false in
  let rpc = run M.Local_rpc ~same_cpu:false in
  band "User RPC !=CPU" ~paper:4822. ~lo:0.6 ~hi:1.6 user_rpc;
  Alcotest.(check bool) "user RPC well below socket RPC" true
    (user_rpc < 0.7 *. rpc)

let test_cross_cpu_slower () =
  List.iter
    (fun prim ->
      let same = run prim ~same_cpu:true and cross = run prim ~same_cpu:false in
      if cross <= same then
        Alcotest.failf "%s: cross-CPU (%.0f) should exceed same-CPU (%.0f)"
          (M.primitive_name prim) cross same)
    [ M.Sem; M.Pipe; M.L4 ]

let test_all_orders_of_magnitude_above_call () =
  (* "In all cases, traditional IPC is orders of magnitude slower than a
     function call" (Sec. 2.2). *)
  List.iter
    (fun prim ->
      let t = run prim ~same_cpu:true in
      Alcotest.(check bool) "100x a function call" true
        (t > 100. *. Costs.function_call))
    [ M.Sem; M.Pipe; M.L4; M.Local_rpc ]

let test_breakdown_structure () =
  let r = M.run ~warmup:10 ~iters:50 ~same_cpu:true M.Sem in
  let bd = r.M.total_breakdown in
  Alcotest.(check bool) "has syscall entry time" true
    (Breakdown.get bd Breakdown.Syscall_entry > 0.);
  Alcotest.(check bool) "has kernel time" true (Breakdown.get bd Breakdown.Kernel > 0.);
  Alcotest.(check bool) "has schedule time" true
    (Breakdown.get bd Breakdown.Schedule > 0.);
  (* Per-CPU breakdown should roughly sum to the measured mean. *)
  let total = Breakdown.total bd in
  Alcotest.(check bool) "breakdown ~= wall time" true
    (Float.abs (total -. r.M.mean_ns) /. r.M.mean_ns < 0.35)

let test_rpc_breakdown_user_heavy () =
  (* The rpcgen stubs put serious time in user code (Fig. 2 block 1). *)
  let r = M.run ~warmup:10 ~iters:50 ~same_cpu:true M.Local_rpc in
  let user = Breakdown.get r.M.total_breakdown Breakdown.User_code in
  Alcotest.(check bool) "user code > 25% of RPC" true (user > 0.25 *. r.M.mean_ns)

(* --- Figure 6 growth shapes --- *)

let added prim ~bytes =
  let t = run ~bytes prim ~same_cpu:false in
  t -. M.baseline_payload_ns bytes

let test_size_growth_pipe_vs_sem () =
  (* Pipes copy through the kernel twice; semaphores only pay the shared
     buffer population, so pipes grow faster with size. *)
  let pipe_small = added M.Pipe ~bytes:64 and pipe_big = added M.Pipe ~bytes:65536 in
  let sem_small = added M.Sem ~bytes:64 and sem_big = added M.Sem ~bytes:65536 in
  Alcotest.(check bool) "pipe grows" true (pipe_big > pipe_small +. 1000.);
  Alcotest.(check bool) "pipe grows faster than sem" true
    (pipe_big -. pipe_small > sem_big -. sem_small)

let test_size_growth_rpc_worst () =
  (* RPC adds marshalling copies on top of the socket copies. *)
  let rpc = added M.Local_rpc ~bytes:65536 in
  let pipe = added M.Pipe ~bytes:65536 in
  Alcotest.(check bool) "rpc > pipe at 64KB" true (rpc > pipe)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "ipc.xdr",
      [
        Alcotest.test_case "roundtrip" `Quick test_xdr_roundtrip;
        Alcotest.test_case "padding" `Quick test_xdr_padding;
        Alcotest.test_case "short buffer" `Quick test_xdr_short_buffer;
      ]
      @ qsuite [ prop_xdr_string_roundtrip; prop_xdr_int_list_roundtrip ] );
    ( "ipc.calibration",
      [
        Alcotest.test_case "sem (Fig. 5)" `Quick test_sem_calibration;
        Alcotest.test_case "pipe (Fig. 5)" `Quick test_pipe_calibration;
        Alcotest.test_case "l4 (Fig. 5)" `Quick test_l4_calibration;
        Alcotest.test_case "rpc (Fig. 5)" `Quick test_rpc_calibration;
        Alcotest.test_case "user rpc (Fig. 5)" `Quick test_user_rpc_calibration;
        Alcotest.test_case "cross-CPU slower" `Quick test_cross_cpu_slower;
        Alcotest.test_case "IPC >> function call" `Quick
          test_all_orders_of_magnitude_above_call;
      ] );
    ( "ipc.breakdown",
      [
        Alcotest.test_case "sem structure (Fig. 2)" `Quick test_breakdown_structure;
        Alcotest.test_case "rpc user-heavy (Fig. 2)" `Quick test_rpc_breakdown_user_heavy;
      ] );
    ( "ipc.sizes",
      [
        Alcotest.test_case "pipe vs sem growth (Fig. 6)" `Quick test_size_growth_pipe_vs_sem;
        Alcotest.test_case "rpc worst growth (Fig. 6)" `Quick test_size_growth_rpc_worst;
      ] );
  ]
