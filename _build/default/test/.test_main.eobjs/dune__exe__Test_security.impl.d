test/test_security.ml: Alcotest Array Dipc_core Dipc_hw
