test/test_sim.ml: Alcotest Array Dipc_sim Float Gen List QCheck QCheck_alcotest
