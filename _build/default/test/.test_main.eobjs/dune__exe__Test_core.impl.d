test/test_core.ml: Alcotest Dipc_core Dipc_hw Dipc_sim Dipc_workloads Gen List QCheck QCheck_alcotest Result
