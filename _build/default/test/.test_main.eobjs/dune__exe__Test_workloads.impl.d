test/test_workloads.ml: Alcotest Dipc_sim Dipc_workloads Float List
