test/test_ipc.ml: Alcotest Dipc_ipc Dipc_sim Dipc_workloads Float Gen List QCheck QCheck_alcotest String
