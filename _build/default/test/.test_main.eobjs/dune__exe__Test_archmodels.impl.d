test/test_archmodels.ml: Alcotest Dipc_hw Dipc_workloads Result
