test/test_advanced.ml: Alcotest Dipc_core Dipc_hw Printf
