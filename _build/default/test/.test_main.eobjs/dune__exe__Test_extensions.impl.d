test/test_extensions.ml: Alcotest Array Dipc_core Dipc_hw Dipc_sim Gen List QCheck QCheck_alcotest Result Test
