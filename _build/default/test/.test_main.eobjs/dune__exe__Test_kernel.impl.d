test/test_kernel.ml: Alcotest Dipc_kernel Dipc_sim List
