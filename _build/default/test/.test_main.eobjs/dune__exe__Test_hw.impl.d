test/test_hw.ml: Alcotest Array Dipc_hw List QCheck QCheck_alcotest Result
