test/test_lang.ml: Alcotest Array Dipc_core Dipc_hw
