(* Deeper end-to-end behaviours: capability arguments travelling over the
   DCS (Sec. 5.2.3), DCS integrity against a thieving callee, deep
   cross-process recursion up to KCS exhaustion, grant revocation taking
   effect immediately, and multi-entry handles. *)

module Perm = Dipc_hw.Perm
module Machine = Dipc_hw.Machine
module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault
module Sys_ = Dipc_core.System
module Types = Dipc_core.Types
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver
module Call = Dipc_core.Call

(* --- capability arguments over the DCS --- *)

(* The caller derives a capability over a private buffer, pushes it on the
   DCS as the entry's capability argument; the callee pops it and writes
   through it — the "use capabilities instead of copies" pattern of
   Sec. 4.2/5.2.2. *)
let cap_arg_scenario ~callee_props =
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let cimg = Annot.image t callee in
  (* Callee body: pop the capability argument into c0, store r0 through
     it, return the value written. *)
  ignore
    (Annot.declare_function t cimg ~name:"fill"
       [
         Isa.CapPop 0;
         Isa.Const (1, 0) (* address register set below via the cap base *);
         (* The callee does not know the buffer address: the capability
            carries it.  We model "writing through the capability" by
            having the caller pass the address in r1 as well; the
            *authority* still comes from the capability in c0. *)
         Isa.Store (2, 0, 0);
         Isa.Mov (0, 0);
         Isa.Ret;
       ]);
  let sig_ = Types.signature ~args:3 ~rets:1 ~cap_args:1 () in
  let handle =
    Annot.declare_entries t cimg ~name:"svc" [ ("fill", sig_, callee_props) ]
  in
  Resolver.publish resolver ~path:"/svc" handle;
  let caller = Sys_.create_process t ~name:"caller" in
  let img = Annot.image t caller in
  let sym = Annot.import img ~path:"/svc" ~sig_ ~props:Types.props_none () in
  let stub = Annot.resolve t resolver sym in
  (* A private buffer in a dedicated domain of the caller. *)
  let buf_dom = Sys_.dom_create t caller in
  let buf = Sys_.dom_mmap t buf_dom ~bytes:4096 () in
  (* The caller's default domain needs access to derive the capability. *)
  ignore
    (Sys_.grant_create t ~src:(Sys_.dom_default caller)
       ~dst:(Sys_.dom_copy buf_dom Perm.Write));
  let wrapper =
    Annot.declare_function t img ~name:"wrapper"
      [
        (* c0 <- cap over the buffer; push as the capability argument *)
        Isa.Const (12, buf);
        Isa.Const (13, 64);
        Isa.CapAplDerive (0, 12, 13, Perm.Write);
        Isa.CapPush 0;
        Isa.Mov (2, 12) (* r2 = buffer address for the callee's store *);
        Isa.Call stub;
        Isa.Ret;
      ]
  in
  let th = Sys_.create_thread t caller in
  (t, th, wrapper, buf, stub, img)

let test_cap_argument_authorises_write () =
  let t, th, wrapper, buf, _, _ = cap_arg_scenario ~callee_props:Types.props_none in
  (match Call.exec t th ~fn:wrapper ~args:[ 777 ] with
  | Ok v -> Alcotest.(check int) "callee returned the value" 777 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f));
  Alcotest.(check int) "callee wrote through the capability" 777
    (Sys_.load t buf)

let test_cap_argument_without_push_fails () =
  (* Same callee, but the caller pushes no capability: the callee's
     CapPop underflows the DCS; the fault is flagged back and the caller
     survives. *)
  let t, th, _, buf, stub, img = cap_arg_scenario ~callee_props:Types.props_none in
  let bad_wrapper =
    Annot.declare_function t img ~name:"bad_wrapper"
      [ Isa.Const (2, buf); Isa.Call stub; Isa.Ret ]
  in
  (match Call.exec t th ~fn:bad_wrapper ~args:[ 1 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "caller must survive: %s" (Fault.to_string f));
  Alcotest.(check int) "DCS underflow flagged" Types.err_callee_fault
    (Sys_.errno t th)

(* --- DCS integrity: the callee cannot pop beyond its arguments --- *)

let test_dcs_integrity_blocks_theft () =
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let cimg = Annot.image t callee in
  (* A thieving callee: pops its argument, then pops again to steal the
     caller's non-argument entry. *)
  ignore
    (Annot.declare_function t cimg ~name:"thief"
       [ Isa.CapPop 0; Isa.CapPop 1; Isa.Const (0, 1); Isa.Ret ]);
  let sig_ = Types.signature ~args:1 ~rets:1 ~cap_args:1 () in
  let handle =
    Annot.declare_entries t cimg ~name:"svc" [ ("thief", sig_, Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/svc" handle;
  let caller = Sys_.create_process t ~name:"caller" in
  let img = Annot.image t caller in
  (* The caller requests DCS integrity: non-argument entries protected. *)
  let props = { Types.props_none with Types.dcs_integrity = true } in
  let sym = Annot.import img ~path:"/svc" ~sig_ ~props () in
  let stub = Annot.resolve t resolver sym in
  let secret_dom = Sys_.dom_create t caller in
  let secret = Sys_.dom_mmap t secret_dom ~bytes:4096 () in
  ignore
    (Sys_.grant_create t ~src:(Sys_.dom_default caller)
       ~dst:(Sys_.dom_copy secret_dom Perm.Write));
  let wrapper =
    Annot.declare_function t img ~name:"wrapper"
      [
        (* Push a private capability (NOT an argument), then the actual
           capability argument on top. *)
        Isa.Const (12, secret);
        Isa.Const (13, 64);
        Isa.CapAplDerive (0, 12, 13, Perm.Write);
        Isa.CapPush 0 (* the caller's secret entry *);
        Isa.CapPush 0 (* the one argument *);
        Isa.Call stub;
        Isa.Ret;
      ]
  in
  let th = Sys_.create_thread t caller in
  (* The theft attempt faults inside the callee (pop below base) and the
     caller resumes with errno set. *)
  (match Call.exec t th ~fn:wrapper ~args:[] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "caller must survive: %s" (Fault.to_string f));
  Alcotest.(check int) "theft flagged" Types.err_callee_fault (Sys_.errno t th)

let test_no_dcs_integrity_allows_pops () =
  (* Without DCS integrity the same pop succeeds — that is the documented
     contract of the minimal policy. *)
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let cimg = Annot.image t callee in
  ignore
    (Annot.declare_function t cimg ~name:"popper"
       [ Isa.CapPop 0; Isa.CapPop 1; Isa.Const (0, 1); Isa.Ret ]);
  let sig_ = Types.signature ~args:1 ~rets:1 ~cap_args:1 () in
  let handle =
    Annot.declare_entries t cimg ~name:"svc" [ ("popper", sig_, Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/svc" handle;
  let caller = Sys_.create_process t ~name:"caller" in
  let img = Annot.image t caller in
  let sym = Annot.import img ~path:"/svc" ~sig_ ~props:Types.props_none () in
  let stub = Annot.resolve t resolver sym in
  let wrapper =
    Annot.declare_function t img ~name:"wrapper"
      [
        Isa.Const (12, 0x100000) (* any address the caller may cover: its stack *);
        Isa.Mov (12, Isa.sp);
        Isa.Const (13, 8);
        Isa.CapRestrict (0, 6, 12, 13, Perm.Read);
        Isa.CapPush 0;
        Isa.CapPush 0;
        Isa.Call stub;
        Isa.Ret;
      ]
  in
  let th = Sys_.create_thread t caller in
  (match Call.exec t th ~fn:wrapper ~args:[] with
  | Ok v -> Alcotest.(check int) "both pops succeeded" 1 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f));
  Alcotest.(check int) "no fault flagged" Types.err_none (Sys_.errno t th)

(* --- deep cross-process recursion: KCS bounds --- *)

let test_deep_recursion_exhausts_kcs () =
  (* Two processes call each other recursively; each crossing pushes a KCS
     entry, and the 32-entry KCS must eventually trap — cleanly. *)
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let sig_ = Types.signature ~args:1 ~rets:1 () in
  let a = Sys_.create_process t ~name:"a" in
  let b = Sys_.create_process t ~name:"b" in
  let aimg = Annot.image t a and bimg = Annot.image t b in
  (* Declare entries with placeholder bodies first so both sides can
     import, then patch the bodies with the resolved stubs. *)
  let mem = t.Sys_.machine.Sys_.Machine.mem in
  let a_fn = Annot.declare_function t aimg ~name:"ping" [ Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop; Isa.Ret ] in
  let b_fn = Annot.declare_function t bimg ~name:"pong" [ Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop; Isa.Ret ] in
  let a_handle = Annot.declare_entries t aimg ~name:"a" [ ("ping", sig_, Types.props_none) ] in
  let b_handle = Annot.declare_entries t bimg ~name:"b" [ ("pong", sig_, Types.props_none) ] in
  Resolver.publish resolver ~path:"/a" a_handle;
  Resolver.publish resolver ~path:"/b" b_handle;
  let a_sym = Annot.import aimg ~path:"/b" ~sig_ ~props:Types.props_none () in
  let b_sym = Annot.import bimg ~path:"/a" ~sig_ ~props:Types.props_none () in
  let b_stub = Annot.resolve t resolver a_sym in
  let a_stub = Annot.resolve t resolver b_sym in
  (* ping(n): if n = 0 return 42 else pong(n-1); and vice versa. *)
  let body ~self ~other_stub =
    [
      Isa.Bnez (0, self + (3 * Isa.instr_bytes));
      Isa.Const (0, 42);
      Isa.Ret;
      Isa.Addi (0, 0, -1);
      Isa.Call other_stub;
      Isa.Ret;
    ]
  in
  ignore (Dipc_hw.Memory.place_code mem ~addr:a_fn (body ~self:a_fn ~other_stub:b_stub));
  ignore (Dipc_hw.Memory.place_code mem ~addr:b_fn (body ~self:b_fn ~other_stub:a_stub));
  let driver = Sys_.create_process t ~name:"driver" in
  let dimg = Annot.image t driver in
  let d_sym = Annot.import dimg ~path:"/a" ~sig_ ~props:Types.props_none () in
  let th = Sys_.create_thread t driver in
  (* Shallow recursion completes. *)
  (match Annot.call t resolver th d_sym ~args:[ 6 ] with
  | Ok v -> Alcotest.(check int) "depth 6 returns" 42 v
  | Error f -> Alcotest.failf "fault at depth 6: %s" (Fault.to_string f));
  (* Deep recursion exhausts the 32-entry KCS; every caller in the chain
     is alive, so the fault is flagged and the driver survives. *)
  (match Annot.call t resolver th d_sym ~args:[ 100 ] with
  | Ok _ -> Alcotest.(check int) "errno flags the overflow" Types.err_callee_fault (Sys_.errno t th)
  | Error f ->
      Alcotest.failf "driver should have been resumed: %s" (Fault.to_string f));
  (* And the system still works afterwards. *)
  match Annot.call t resolver th d_sym ~args:[ 2 ] with
  | Ok v -> Alcotest.(check int) "usable after overflow" 42 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

(* --- grant revocation takes effect immediately --- *)

let test_grant_revocation_immediate () =
  let t = Sys_.create () in
  let owner = Sys_.create_process t ~name:"owner" in
  let reader = Sys_.create_process t ~name:"reader" in
  let data_dom = Sys_.dom_create t owner in
  let data = Sys_.dom_mmap t data_dom ~bytes:4096 () in
  Sys_.store t data 5;
  let g =
    Sys_.grant_create t ~src:(Sys_.dom_default reader)
      ~dst:(Sys_.dom_copy data_dom Perm.Read)
  in
  let rimg = Annot.image t reader in
  let read_fn =
    Annot.declare_function t rimg ~name:"read"
      [ Isa.Const (1, data); Isa.Load (0, 1, 0); Isa.Ret ]
  in
  let th = Sys_.create_thread t reader in
  (match Call.exec t th ~fn:read_fn ~args:[] with
  | Ok v -> Alcotest.(check int) "read while granted" 5 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f));
  Sys_.grant_revoke t g;
  match Call.exec t th ~fn:read_fn ~args:[] with
  | Ok _ -> Alcotest.fail "read after revocation must fault"
  | Error f ->
      Alcotest.(check bool) "revoked" true
        (match f.Fault.kind with Fault.No_permission _ -> true | _ -> false)

(* --- multi-entry handles --- *)

let test_multi_entry_handle () =
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let img = Annot.image t callee in
  ignore (Annot.declare_function t img ~name:"add" [ Isa.Add (0, 0, 1); Isa.Ret ]);
  ignore (Annot.declare_function t img ~name:"mul" [ Isa.Mul (0, 0, 1); Isa.Ret ]);
  ignore (Annot.declare_function t img ~name:"sub" [ Isa.Sub (0, 0, 1); Isa.Ret ]);
  let sig_ = Types.signature ~args:2 ~rets:1 () in
  let handle =
    Annot.declare_entries t img ~name:"math"
      [
        ("add", sig_, Types.props_none);
        ("mul", sig_, Types.props_high);
        ("sub", sig_, Types.props_none);
      ]
  in
  Resolver.publish resolver ~path:"/math" handle;
  let caller = Sys_.create_process t ~name:"caller" in
  let cimg = Annot.image t caller in
  let th = Sys_.create_thread t caller in
  let call_entry index expected args =
    let sym = Annot.import cimg ~path:"/math" ~index ~sig_ ~props:Types.props_none () in
    match Annot.call t resolver th sym ~args with
    | Ok v -> Alcotest.(check int) (Printf.sprintf "entry %d" index) expected v
    | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  in
  call_entry 0 13 [ 6; 7 ];
  call_entry 1 42 [ 6; 7 ];
  call_entry 2 (-1) [ 6; 7 ]

let suites =
  [
    ( "adv.capabilities",
      [
        Alcotest.test_case "cap argument over the DCS" `Quick
          test_cap_argument_authorises_write;
        Alcotest.test_case "missing cap argument" `Quick
          test_cap_argument_without_push_fails;
        Alcotest.test_case "DCS integrity blocks theft" `Quick
          test_dcs_integrity_blocks_theft;
        Alcotest.test_case "no DCS integrity allows pops" `Quick
          test_no_dcs_integrity_allows_pops;
      ] );
    ( "adv.depth",
      [
        Alcotest.test_case "deep recursion exhausts KCS" `Quick
          test_deep_recursion_exhausts_kcs;
      ] );
    ( "adv.grants",
      [
        Alcotest.test_case "revocation immediate" `Quick test_grant_revocation_immediate;
        Alcotest.test_case "multi-entry handle" `Quick test_multi_entry_handle;
      ] );
  ]
