(* Tests for dipcc, the image-description front-end that plays the
   paper's compiler-pass role (Secs. 3.3, 5.3, 6.2). *)

module Sys_ = Dipc_core.System
module Dipcc = Dipc_core.Dipcc
module Annot = Dipc_core.Annot
module Types = Dipc_core.Types
module Fault = Dipc_hw.Fault

let two_process_source =
  {|
# the paper's running example, as dipcc text
process database
  domain service
  func query @service
    add r0, r0, r1
    ret
  end
  entry db = query@service sig(args=2, rets=1) policy(reg-conf)
  publish db /run/db.sock

process web
  import q /run/db.sock sig(args=2, rets=1) policy(reg-int)
|}

let test_two_process_image () =
  let t = Sys_.create () in
  let loaded = Dipcc.load t two_process_source in
  let web = (Dipcc.image loaded ~proc:"web").Annot.img_proc in
  let th = Sys_.create_thread t web in
  match Dipcc.call t loaded th ~proc:"web" ~name:"q" ~args:[ 40; 2 ] with
  | Ok v -> Alcotest.(check int) "query(40,2) through the DSL" 42 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_labels_and_loops () =
  let t = Sys_.create () in
  let source =
    {|
process math
  func sum_to_n
    const r1, 0
    loop:
    beqz r0, done
    add r1, r1, r0
    addi r0, r0, -1
    jmp loop
    done:
    mov r0, r1
    ret
  end
  entry api = sum_to_n sig(args=1, rets=1)
  publish api /math

process client
  import sum /math sig(args=1, rets=1)
|}
  in
  let loaded = Dipcc.load t source in
  let client = (Dipcc.image loaded ~proc:"client").Annot.img_proc in
  let th = Sys_.create_thread t client in
  match Dipcc.call t loaded th ~proc:"client" ~name:"sum" ~args:[ 10 ] with
  | Ok v -> Alcotest.(check int) "sum 1..10" 55 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_local_calls () =
  let t = Sys_.create () in
  let source =
    {|
process p
  func double
    add r0, r0, r0
    ret
  end
  func quad
    call double
    call double
    ret
  end
  entry api = quad sig(args=1, rets=1)
  publish api /quad

process c
  import quad /quad sig(args=1, rets=1)
|}
  in
  let loaded = Dipcc.load t source in
  let c = (Dipcc.image loaded ~proc:"c").Annot.img_proc in
  let th = Sys_.create_thread t c in
  match Dipcc.call t loaded th ~proc:"c" ~name:"quad" ~args:[ 3 ] with
  | Ok v -> Alcotest.(check int) "3*4" 12 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_parse_errors () =
  let t = Sys_.create () in
  let expect_error source =
    match Dipcc.load t source with
    | exception Dipcc.Parse_error _ -> ()
    | exception Sys_.Denied _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_error "bogus directive";
  expect_error "process p\nfunc f\n  frobnicate r0\nend";
  expect_error "process p\nfunc f\n  ret"; (* missing end *)
  expect_error "process p\nentry e = nosuch sig(args=0, rets=0)";
  expect_error "process p\nimport x /nope"; (* missing sig *)
  expect_error "process p\nfunc f\n  const r99, 1\nend"

let test_policy_parsing () =
  let t = Sys_.create () in
  let source =
    {|
process s
  func f
    ret
  end
  entry e = f sig(args=0, rets=0) policy(reg-int, stack-conf, dcs-int)
  publish e /s
|}
  in
  ignore (Dipcc.load t source);
  (* The policy made it into the handle. *)
  let loaded = Dipcc.load t {|
process s2
  func f
    ret
  end
  entry e = f sig(args=0, rets=0) policy(high)
  publish e /s2
|} in
  let img = Dipcc.image loaded ~proc:"s2" in
  let handle = Annot.entry_handle img "e" in
  Alcotest.(check bool) "high policy propagated" true
    (handle.Dipc_core.Entry.eh_entries.(0).Dipc_core.Entry.e_policy
    = Types.props_high)

let suites =
  [
    ( "lang.dipcc",
      [
        Alcotest.test_case "two-process image" `Quick test_two_process_image;
        Alcotest.test_case "labels and loops" `Quick test_labels_and_loops;
        Alcotest.test_case "local calls" `Quick test_local_calls;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "policy parsing" `Quick test_policy_parsing;
      ] );
  ]
