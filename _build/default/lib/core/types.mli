(** Shared dIPC types: entry-point signatures and isolation properties
    (Table 2 and Sec. 5.2.3). *)

(** Entry point signature: register/stack/capability argument counts. *)
type signature = {
  args : int;  (** argument registers, passed in r0..r7 *)
  rets : int;  (** result registers, r0.. *)
  stack_bytes : int;  (** in-stack argument bytes (8-aligned) *)
  cap_args : int;  (** capability arguments passed on the DCS *)
  cap_rets : int;  (** capability results returned on the DCS *)
}

(** Smart constructor; validates register counts and stack alignment. *)
val signature :
  ?args:int ->
  ?rets:int ->
  ?stack_bytes:int ->
  ?cap_args:int ->
  ?cap_rets:int ->
  unit ->
  signature

val signature_equal : signature -> signature -> bool

val pp_signature : Format.formatter -> signature -> unit

(** Isolation properties (Sec. 5.2.3), independently requested by caller
    and callee. *)
type props = {
  reg_integrity : bool;  (** save/restore live registers (user stub) *)
  reg_confidentiality : bool;  (** zero non-argument/result registers *)
  stack_integrity : bool;  (** capabilities over stack args + unused area *)
  stack_confidentiality : bool;  (** split stacks (proxy) *)
  dcs_integrity : bool;  (** raise the DCS base (proxy) *)
  dcs_confidentiality : bool;  (** separate DCS per domain (proxy) *)
}

val props_none : props

(** The paper's "Low" policy: calls still go through proxies (P2/P3), no
    state isolation requested. *)
val props_low : props

(** The paper's "High" policy: full mutual process-style isolation. *)
val props_high : props

val props_union : props -> props -> props

val pp_props : Format.formatter -> props -> unit

(** Error codes delivered on fault unwinding (thread-struct errno). *)
val err_none : int

val err_callee_fault : int

val err_callee_killed : int

val err_timeout : int
