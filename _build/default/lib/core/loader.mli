(** Program loader: places generated code into a domain's executable
    pages (the role of the paper's modified application loader,
    Sec. 5.3.2). *)

(** Allocate executable pages in [dom], place the assembled program, and
    return the address of its entry label. *)
val place_program : System.t -> dom:System.domain_handle -> Asm.t * Asm.label -> int

(** Place one straight-line function; returns its (entry-aligned)
    address. *)
val place_fn : System.t -> dom:System.domain_handle -> Dipc_hw.Isa.instr list -> int
