(* Tiny two-pass assembler for generating proxies and stubs.

   Proxy templates need forward branches (to the trap exit) and alignment
   directives (entry points must sit on 64-byte boundaries, Sec. 4.1), so
   code is built as a list of items with symbolic labels and resolved in a
   second pass once the base address is known. *)

module Isa = Dipc_hw.Isa
module Layout = Dipc_hw.Layout

type label = { mutable resolved : int option; lname : string }

let label name = { resolved = None; lname = name }

type item =
  | Ins of Isa.instr
  | Branch of (int -> Isa.instr) * label (* instruction taking the target *)
  | Bind of label (* define the label here *)
  | Align of int (* pad with Nop to the given alignment *)

type t = { mutable items : item list (* reversed *) }

let create () = { items = [] }

let ins a i = a.items <- Ins i :: a.items

let branch a f l = a.items <- Branch (f, l) :: a.items

let bind a l = a.items <- Bind l :: a.items

let align a n = a.items <- Align n :: a.items

let emit_all a items = List.iter (ins a) items

(* Number of instruction slots an item list occupies from [addr]. *)
let rec layout addr = function
  | [] -> addr
  | Ins _ :: rest | Branch _ :: rest -> layout (addr + Isa.instr_bytes) rest
  | Bind l :: rest ->
      l.resolved <- Some addr;
      layout addr rest
  | Align n :: rest -> layout (Layout.align_up addr n) rest

let target l =
  match l.resolved with
  | Some addr -> addr
  | None -> invalid_arg ("Asm: unbound label " ^ l.lname)

(* Assemble at [base]; returns the (address, instruction) pairs and the
   first address past the code. *)
let assemble a ~base =
  let items = List.rev a.items in
  let last = layout base items in
  let out = ref [] in
  let addr = ref base in
  List.iter
    (fun item ->
      match item with
      | Ins i ->
          out := (!addr, i) :: !out;
          addr := !addr + Isa.instr_bytes
      | Branch (f, l) ->
          out := (!addr, f (target l)) :: !out;
          addr := !addr + Isa.instr_bytes
      | Bind _ -> ()
      | Align n ->
          let aligned = Layout.align_up !addr n in
          while !addr < aligned do
            out := (!addr, Isa.Nop) :: !out;
            addr := !addr + Isa.instr_bytes
          done)
    items;
  (List.rev !out, last)

(* Instruction count (padding included) when assembled at [base]. *)
let size a ~base =
  let code, last = assemble a ~base in
  ignore code;
  last - base
