lib/core/types.ml: Fmt List String
