lib/core/gvas.mli:
