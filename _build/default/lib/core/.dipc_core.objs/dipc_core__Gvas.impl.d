lib/core/gvas.ml: Dipc_hw List
