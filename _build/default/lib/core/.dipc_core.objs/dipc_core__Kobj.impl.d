lib/core/kobj.ml: Dipc_hw
