lib/core/entry.mli: Proxy System Types
