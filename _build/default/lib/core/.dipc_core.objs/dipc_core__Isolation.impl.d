lib/core/isolation.ml: Asm Dipc_hw Dipc_sim List System Types
