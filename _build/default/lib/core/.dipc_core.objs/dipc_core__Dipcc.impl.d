lib/core/dipcc.ml: Annot Asm Dipc_hw Fmt Hashtbl List Loader Resolver String System Types
