lib/core/asm.mli: Dipc_hw
