lib/core/call.mli: Dipc_hw System
