lib/core/isolation.mli: Asm Dipc_hw Types
