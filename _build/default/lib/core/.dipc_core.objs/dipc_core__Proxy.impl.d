lib/core/proxy.ml: Asm Dipc_hw Hashtbl Kobj List System Types
