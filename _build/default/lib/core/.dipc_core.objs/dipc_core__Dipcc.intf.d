lib/core/dipcc.mli: Annot Dipc_hw Resolver System
