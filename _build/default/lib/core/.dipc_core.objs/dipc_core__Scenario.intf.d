lib/core/scenario.mli: Annot Dipc_hw Dipc_sim Resolver System Types
