lib/core/loader.mli: Asm Dipc_hw System
