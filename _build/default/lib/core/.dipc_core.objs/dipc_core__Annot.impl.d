lib/core/annot.ml: Array Call Dipc_hw Entry Hashtbl Isolation List Loader Resolver System Types
