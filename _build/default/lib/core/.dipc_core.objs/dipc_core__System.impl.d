lib/core/system.ml: Array Dipc_hw Dipc_sim Fmt Gvas Hashtbl Kobj Types
