lib/core/entry.ml: Array Dipc_hw Gvas Hashtbl Proxy System Types
