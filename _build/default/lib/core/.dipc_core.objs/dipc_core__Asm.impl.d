lib/core/asm.ml: Dipc_hw List
