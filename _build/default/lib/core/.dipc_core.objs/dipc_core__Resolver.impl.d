lib/core/resolver.ml: Entry Hashtbl Printf System
