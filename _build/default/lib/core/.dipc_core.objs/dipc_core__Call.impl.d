lib/core/call.ml: Array Dipc_hw Hashtbl Kobj List Option System Types
