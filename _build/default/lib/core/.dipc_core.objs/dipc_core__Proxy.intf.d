lib/core/proxy.mli: Dipc_hw Types
