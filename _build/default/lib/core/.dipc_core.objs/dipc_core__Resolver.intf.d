lib/core/resolver.mli: Entry System
