lib/core/annot.mli: Dipc_hw Entry Hashtbl Resolver System Types
