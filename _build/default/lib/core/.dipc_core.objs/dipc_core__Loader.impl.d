lib/core/loader.ml: Asm Dipc_hw List System
