lib/core/scenario.ml: Annot Call Dipc_hw Dipc_sim Printf Resolver System Types
