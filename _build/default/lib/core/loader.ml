(* Program loader: places generated code into a domain's executable pages
   (the role the paper's modified application loader plays, Sec. 5.3.2). *)

module Layout = Dipc_hw.Layout

(* Allocate executable pages in [dom] and place the assembled program;
   returns the address of [entry]. *)
let place_program t ~dom (a, entry) =
  let bytes = max Layout.page_size (Asm.size a ~base:0) in
  let addr =
    System.dom_mmap t dom ~bytes ~writable:false ~executable:true ()
  in
  let code, _last = Asm.assemble a ~base:addr in
  List.iter
    (fun (i_addr, i) ->
      ignore
        (Dipc_hw.Memory.place_code t.System.machine.System.Machine.mem ~addr:i_addr
           [ i ]))
    code;
  Asm.target entry

(* Place a raw instruction list (one simple function); returns its
   address. *)
let place_fn t ~dom instrs =
  let a = Asm.create () in
  let entry = Asm.label "fn" in
  Asm.align a Layout.entry_align;
  Asm.bind a entry;
  List.iter (Asm.ins a) instrs;
  place_program t ~dom (a, entry)
