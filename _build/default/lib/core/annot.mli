(** The annotation / loader layer (Secs. 3.3, 5.3, 6.2): what the paper's
    compiler pass and loader produce — domains, direct permissions,
    exported entries wrapped in callee stubs, and imported symbols that
    resolve lazily into proxies + caller stubs on first use. *)

module Isa = Dipc_hw.Isa
module Perm = Dipc_hw.Perm

type image = {
  img_proc : System.process;
  img_domains : (string, System.domain_handle) Hashtbl.t;
  img_functions : (string, int) Hashtbl.t;  (** name -> address *)
  img_entries : (string, Entry.entry_handle) Hashtbl.t;
}

(** Start building a process image; "default" names its default domain. *)
val image : System.t -> System.process -> image

val domain_handle : image -> string -> System.domain_handle

(** #pragma dipc dom *)
val declare_domain : System.t -> image -> string -> System.domain_handle

(** Place a function's code into a domain. *)
val declare_function :
  System.t -> image -> name:string -> ?dom:string -> Isa.instr list -> int

val function_addr : image -> string -> int

(** #pragma dipc perm: direct cross-domain permission inside the image. *)
val declare_perm : System.t -> image -> src:string -> dst:string -> Perm.t -> unit

(** #pragma dipc entry + iso_callee: wrap each function in a callee stub
    and register the stub addresses as an entry handle. *)
val declare_entries :
  System.t ->
  image ->
  name:string ->
  ?dom:string ->
  (string * Types.signature * Types.props) list ->
  Entry.entry_handle

val entry_handle : image -> string -> Entry.entry_handle

(** An imported symbol, resolved lazily like a dynamic symbol
    (Sec. 3.2). *)
type symbol

val import :
  image ->
  path:string ->
  ?index:int ->
  ?dom:string ->
  sig_:Types.signature ->
  props:Types.props ->
  unit ->
  symbol

(** First-use resolution (steps A-B of Fig. 3): fetch the handle, request
    proxies, build and place the caller stub; returns its address and
    memoises it. *)
val resolve : System.t -> Resolver.t -> symbol -> int

(** Call an imported symbol as a fresh top-level invocation of [th]. *)
val call :
  System.t ->
  Resolver.t ->
  System.thread ->
  symbol ->
  args:int list ->
  (int, Dipc_hw.Fault.t) result
