(** Thread flow across processes (Secs. 5.2.1, 5.4): running cross-domain
    calls, fault notification with KCS unwinding, process-kill delivery,
    asynchronous calls, and call time-outs via thread splitting. *)

module Machine = Dipc_hw.Machine
module Fault = Dipc_hw.Fault

(** Prepare [th] to run the function at [fn] with register arguments;
    its final Ret lands on the runtime's halt trampoline. *)
val setup : System.t -> System.thread -> fn:int -> args:int list -> unit

(** Unwind the thread's KCS after a fault or kill: pop entries until one
    whose calling process is alive, flag [code] as errno, and resume at
    that proxy's return path.  [`Dead] when no living caller remains. *)
val unwind : System.t -> System.thread -> code:int -> [ `Resumed | `Dead ]

(** Run to completion with fault notification applied; [Error] only when
    the thread dies with no living caller.  Raises
    {!Machine.Out_of_fuel} when the fuel budget runs out mid-execution
    (the thread can be resumed with another [run]). *)
val run :
  System.t -> System.thread -> ?fuel:int -> unit -> (int, Fault.t) result

(** [setup] + [run]. *)
val exec :
  System.t -> System.thread -> fn:int -> args:int list -> (int, Fault.t) result

(** Deliver a process kill to a thread with the killed process's frames
    live on its KCS (Sec. 5.2.1). *)
val deliver_kill : System.t -> System.thread -> [ `Resumed | `Dead ]

(** An in-flight asynchronous call (Sec. 5.4: extra threads). *)
type async

(** Start [fn] on a fresh thread of [proc]. *)
val exec_async : System.t -> System.process -> fn:int -> args:int list -> async

val await : System.t -> async -> (int, Fault.t) result

(** Split [th] at its topmost stack-switched KCS entry (Sec. 5.4): the
    caller resumes with a time-out error; the returned callee-side thread
    keeps running and exits when it returns into the splitting proxy.
    Requires stack confidentiality on the timed-out entry. *)
val split_timeout : System.t -> System.thread -> (System.thread, string) result
