(* Shared dIPC types: entry-point signatures and isolation properties
   (Table 2 and Sec. 5.2.3). *)

(* Signature of an entry point: "number of input/output registers and stack
   size" (Table 2), extended with capability-argument counts since the DCS
   properties need them. *)
type signature = {
  args : int; (* argument registers, passed in r0..r7 *)
  rets : int; (* result registers, r0.. *)
  stack_bytes : int; (* in-stack argument bytes (8-aligned) *)
  cap_args : int; (* capability arguments passed on the DCS *)
  cap_rets : int; (* capability results returned on the DCS *)
}

let signature ?(args = 0) ?(rets = 0) ?(stack_bytes = 0) ?(cap_args = 0)
    ?(cap_rets = 0) () =
  if args < 0 || args > 8 || rets < 0 || rets > 8 then
    invalid_arg "Types.signature: register counts must be within 0..8";
  if stack_bytes < 0 || stack_bytes land 7 <> 0 then
    invalid_arg "Types.signature: stack bytes must be 8-aligned";
  { args; rets; stack_bytes; cap_args; cap_rets }

let signature_equal a b =
  a.args = b.args && a.rets = b.rets && a.stack_bytes = b.stack_bytes
  && a.cap_args = b.cap_args && a.cap_rets = b.cap_rets

let pp_signature ppf s =
  Fmt.pf ppf "sig(args=%d rets=%d stack=%dB caps=%d/%d)" s.args s.rets
    s.stack_bytes s.cap_args s.cap_rets

(* Isolation properties (Sec. 5.2.3).  Each one is independently requested
   by caller and/or callee; the effective set for a proxy is the union
   (Table 2: "per-entry policy is entries[i].policy U entry.entries[i].policy",
   with the caller/callee activation rules of Sec. 5.2.3). *)
type props = {
  reg_integrity : bool; (* save/restore live registers (user stub) *)
  reg_confidentiality : bool; (* zero non-argument/result registers (stub) *)
  stack_integrity : bool; (* capabilities over stack args + unused area *)
  stack_confidentiality : bool; (* split stacks, proxy-implemented *)
  dcs_integrity : bool; (* raise DCS base in proxy *)
  dcs_confidentiality : bool; (* separate DCS per domain, proxy *)
}

let props_none =
  {
    reg_integrity = false;
    reg_confidentiality = false;
    stack_integrity = false;
    stack_confidentiality = false;
    dcs_integrity = false;
    dcs_confidentiality = false;
  }

(* The paper's "Low" policy: a minimal non-trivial policy — calls are still
   forced through proxies (P2/P3) but no state isolation is requested. *)
let props_low = props_none

(* The paper's "High" policy: equivalent to full process isolation. *)
let props_high =
  {
    reg_integrity = true;
    reg_confidentiality = true;
    stack_integrity = true;
    stack_confidentiality = true;
    dcs_integrity = true;
    dcs_confidentiality = true;
  }

let props_union a b =
  {
    reg_integrity = a.reg_integrity || b.reg_integrity;
    reg_confidentiality = a.reg_confidentiality || b.reg_confidentiality;
    stack_integrity = a.stack_integrity || b.stack_integrity;
    stack_confidentiality = a.stack_confidentiality || b.stack_confidentiality;
    dcs_integrity = a.dcs_integrity || b.dcs_integrity;
    dcs_confidentiality = a.dcs_confidentiality || b.dcs_confidentiality;
  }

let pp_props ppf p =
  let flags =
    [
      ("reg-int", p.reg_integrity);
      ("reg-conf", p.reg_confidentiality);
      ("stack-int", p.stack_integrity);
      ("stack-conf", p.stack_confidentiality);
      ("dcs-int", p.dcs_integrity);
      ("dcs-conf", p.dcs_confidentiality);
    ]
  in
  let on = List.filter_map (fun (n, b) -> if b then Some n else None) flags in
  Fmt.pf ppf "{%s}" (String.concat "," on)

(* Error codes delivered on cross-process fault unwinding (Sec. 5.2.1),
   stored in the thread struct's errno slot. *)
let err_none = 0

let err_callee_fault = 1

let err_callee_killed = 2

let err_timeout = 3
