(** Global virtual address space allocator (Sec. 6.1.3): dIPC-enabled
    processes share one page table, so virtual addresses are allocated
    globally in 1 GB blocks sub-allocated per process. *)

val block_size : int

val first_block_base : int

type t

val create : unit -> t

(** Page-aligned sub-allocation for [owner] (a pid), opening a new global
    block when needed. *)
val alloc : t -> owner:int -> bytes:int -> int

(** Which process owns the block containing [addr]?  (The direct lookup
    Sec. 7.4 suggests instead of iterating processes.) *)
val owner_of : t -> int -> int option

(** Global block allocations so far (the contended counter). *)
val blocks_allocated : t -> int
