(** dipcc: the textual front-end playing the paper's compiler-pass role
    (Secs. 3.3, 5.3.1, 6.2) — parses an image-description language and
    performs the corresponding loader actions.

    {v
    process database
      domain service
      func query @service
        add r0, r0, r1
        ret
      end
      entry db = query@service sig(args=2, rets=1) policy(reg-conf)
      publish db /run/db.sock

    process web
      import q /run/db.sock sig(args=2, rets=1) policy(reg-int)
    v} *)

exception Parse_error of int * string  (** (line, message) *)

type loaded

(** Parse and load [source] into the system; publishes entries on the
    resolver (a fresh one unless provided). *)
val load : System.t -> ?resolver:Resolver.t -> string -> loaded

(** The image built for a process declared in the source. *)
val image : loaded -> proc:string -> Annot.image

(** An imported symbol of a process declared in the source. *)
val symbol : loaded -> proc:string -> name:string -> Annot.symbol

(** Call an imported symbol on a thread of its process. *)
val call :
  System.t ->
  loaded ->
  System.thread ->
  proc:string ->
  name:string ->
  args:int list ->
  (int, Dipc_hw.Fault.t) result
