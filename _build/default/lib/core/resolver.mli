(** Entry resolution (Sec. 6.2.1): the runtime's default hook exchanges
    entry point handles over named sockets, with file-permission-style
    access control. *)

type mode = World_readable | Owner_only of int  (** pid *)

type t

val create : unit -> t

(** Publish an entry handle under [path]; denies duplicates. *)
val publish : t -> path:string -> ?mode:mode -> Entry.entry_handle -> unit

val unpublish : t -> path:string -> unit

(** Fetch the handle at [path], subject to its access mode. *)
val lookup :
  t -> path:string -> caller:System.process -> (Entry.entry_handle, string) result
