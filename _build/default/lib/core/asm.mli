(** Tiny two-pass assembler for generating proxies and stubs: symbolic
    labels, forward branches, and alignment directives (entry points must
    sit on 64-byte boundaries, Sec. 4.1). *)

module Isa = Dipc_hw.Isa

type label

(** A fresh unbound label; the name only appears in error messages. *)
val label : string -> label

type t

val create : unit -> t

(** Append one instruction. *)
val ins : t -> Isa.instr -> unit

(** Append an instruction that takes the label's resolved address. *)
val branch : t -> (int -> Isa.instr) -> label -> unit

(** Define the label at the current position. *)
val bind : t -> label -> unit

(** Pad with Nop to the given alignment. *)
val align : t -> int -> unit

val emit_all : t -> Isa.instr list -> unit

(** Resolved address of a label; only valid after {!assemble}. *)
val target : label -> int

(** Lay out at [base]: returns (address, instruction) pairs and the first
    address past the code. *)
val assemble : t -> base:int -> (int * Isa.instr) list * int

(** Byte size when assembled at [base] (padding included). *)
val size : t -> base:int -> int
