(* Entry resolution (Sec. 6.2.1).

   The dIPC runtime's default hook exchanges entry point handles over
   UNIX named sockets: a server publishes its handle under a path, a
   client that knows the path receives the handle on first use.  File
   permissions control who may connect; custom hooks can replace this. *)

type mode = World_readable | Owner_only of int (* pid *)

type t = { sockets : (string, Entry.entry_handle * mode) Hashtbl.t }

let create () = { sockets = Hashtbl.create 16 }

let publish t ~path ?(mode = World_readable) handle =
  if Hashtbl.mem t.sockets path then
    System.deny "resolver: %s already published" path;
  Hashtbl.replace t.sockets path (handle, mode)

let unpublish t ~path = Hashtbl.remove t.sockets path

let lookup t ~path ~(caller : System.process) =
  match Hashtbl.find_opt t.sockets path with
  | None -> Error (Printf.sprintf "resolver: no socket at %s" path)
  | Some (handle, World_readable) -> Ok handle
  | Some (handle, Owner_only pid) ->
      if caller.System.pid = pid then Ok handle
      else Error (Printf.sprintf "resolver: permission denied on %s" path)
