(* In-memory layout of the dIPC kernel objects the proxies touch.

   Proxies are ordinary (privileged) code, so everything they read or
   write on the fast path — the per-thread struct, the KCS, the process
   structs and the process-tracking cache array (Sec. 6.1.2) — lives in
   kernel-tagged pages of the simulated machine at the offsets defined
   here.  The host-side OCaml structures mirror this memory, never replace
   it: the generated code is the source of truth on the fast path. *)

let word = Dipc_hw.Layout.word_size

(* --- per-thread struct (one page) --- *)

(* Offsets within the thread struct, reached via RdTp. *)
let ts_kcs_top = 0 (* address of next free KCS entry *)

let ts_kcs_base = 8

let ts_stack_base = 16 (* current valid data-stack lower bound *)

let ts_stack_limit = 24 (* current valid data-stack upper bound *)

let ts_current = 32 (* pointer to the current process struct *)

let ts_errno = 40 (* fault flag set by KCS unwinding (Sec. 5.2.1) *)

let ts_kcs_limit = 48 (* end of the KCS region *)

let ts_cap_save = 56 (* capability-storage area: return caps of live KCS entries *)

(* Process-tracking cache array (Sec. 6.1.2): indexed by the hardware
   domain tag, "which points to the target process/thread identifier pair";
   we store (process struct pointer, per-thread stack top for that
   process). *)
let ts_cache = 64

let cache_entry_bytes = 16

let cache_entries = 32 (* one per APL-cache hardware tag *)

let ts_cache_proc hw = ts_cache + (hw * cache_entry_bytes)

let ts_cache_stack hw = ts_cache + (hw * cache_entry_bytes) + word

let thread_struct_bytes = ts_cache + (cache_entries * cache_entry_bytes)

(* --- process struct --- *)

let ps_pid = 0

let ps_tls = 8 (* TLS segment base for this process *)

let ps_tag = 16 (* default domain tag *)

let proc_struct_bytes = 64

(* --- KCS entry (128 B) --- *)

(* "The proxy saves the current process, return address, and stack
   pointers into the KCS" (Sec. 5.2.3, P3); the extra fields support fault
   unwinding and nested cross-process calls. *)
let ke_ret_addr = 0 (* caller's return address, moved off the data stack *)

let ke_saved_sp = 8 (* caller's stack pointer at entry *)

let ke_saved_current = 16 (* caller's process struct *)

let ke_saved_fsbase = 24 (* caller's TLS base *)

let ke_proxy_ret = 32 (* resume point used by fault unwinding *)

let ke_saved_stack_base = 40 (* caller's stack bounds (restored on return) *)

let ke_saved_stack_limit = 48

let ke_saved_cache_stack = 56 (* saved stack-top cache slot value (nesting) *)

let ke_depth = 64 (* hardware call depth at proxy entry (for unwinding) *)

let ke_flags = 72 (* which reversible state switches this proxy performed *)

let ke_saved_dcs_base = 80 (* caller's DCS base (DCS integrity) *)

let ke_target_tag = 88 (* callee domain tag (debugging, timeouts) *)

let ke_scratch0 = 96 (* proxy-internal spills (cache slot address, ...) *)

let ke_scratch1 = 104

let ke_scratch2 = 112

let ke_scratch3 = 120 (* stash for r11 while the proxy borrows it *)

let kcs_entry_bytes = 128

(* ke_flags bits *)
let kf_dcs_switched = 1

let kf_dcs_base_adjusted = 2

let kf_stack_switched = 4

let kf_proc_switched = 8

(* Fixed per-crossing reservation on the callee's stack when stacks are
   split (stack confidentiality); generous for the workloads we model. *)
let stack_frame_reserve = 8192
