(* dipcc: a textual front-end playing the role of the paper's compiler
   pass (Secs. 3.3, 5.3.1, 6.2).

   The paper's CLang pass reads source annotations (dom, entry, perm,
   iso_caller/iso_callee) and emits binary sections that drive the
   loader.  This module is that tool-chain for the simulated machine: it
   parses a small image-description language and performs the same loader
   actions through the Annot/Resolver APIs.

   Example:

     process database
       domain service
       func query @service
         add r0, r0, r1
         ret
       end
       entry db = query sig(args=2, rets=1) policy(reg-conf)
       publish db /run/db.sock

     process web
       import q /run/db.sock sig(args=2, rets=1) policy(reg-int)

   Instructions: const/mov/add/addi/sub/mul/shli/load/store/ret/nop/
   trap/jmp/beqz/bnez/call, with local labels ("loop:").  `call` may
   name an earlier function or import of the same process. *)

module Isa = Dipc_hw.Isa

exception Parse_error of int * string (* line, message *)

let fail line fmt = Fmt.kstr (fun s -> raise (Parse_error (line, s))) fmt

(* --- lexing helpers --- *)

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char ',')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_reg ln s =
  if s = "sp" then Isa.sp
  else if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r < Isa.num_regs -> r
    | Some _ | None -> fail ln "bad register %S" s
  else fail ln "bad register %S" s

let parse_int ln s =
  match int_of_string_opt s with Some v -> v | None -> fail ln "bad integer %S" s

(* [rB+off] or [rB-off] or [rB] *)
let parse_mem ln s =
  let n = String.length s in
  if n < 3 || s.[0] <> '[' || s.[n - 1] <> ']' then fail ln "bad memory operand %S" s
  else begin
    let inner = String.sub s 1 (n - 2) in
    match String.index_opt inner '+' with
    | Some i ->
        ( parse_reg ln (String.sub inner 0 i),
          parse_int ln (String.sub inner (i + 1) (String.length inner - i - 1)) )
    | None -> (
        match String.index_opt inner '-' with
        | Some i when i > 0 ->
            ( parse_reg ln (String.sub inner 0 i),
              -parse_int ln (String.sub inner (i + 1) (String.length inner - i - 1)) )
        | _ -> (parse_reg ln inner, 0))
  end

(* --- key=value option lists: sig(args=2, rets=1) policy(reg-int) --- *)

(* Find "name(...)" in [s] and return the inside. *)
let scan_group s name =
  let pat = name ^ "(" in
  let ls = String.length s and lp = String.length pat in
  let rec scan i =
    if i + lp > ls then None
    else if String.sub s i lp = pat then begin
      match String.index_from_opt s (i + lp) ')' with
      | Some close -> Some (String.sub s (i + lp) (close - i - lp))
      | None -> None
    end
    else scan (i + 1)
  in
  scan 0

let find_group_opt tail name = scan_group (String.concat " " tail) name

let find_group ln tail name =
  match find_group_opt tail name with
  | Some inner -> tokens inner
  | None -> fail ln "missing %s(...)" name

let parse_signature ln tail =
  let fields = find_group ln tail "sig" in
  let get key =
    List.find_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i when String.sub tok 0 i = key ->
            Some (parse_int ln (String.sub tok (i + 1) (String.length tok - i - 1)))
        | _ -> None)
      fields
  in
  Types.signature
    ?args:(get "args") ?rets:(get "rets") ?stack_bytes:(get "stack")
    ?cap_args:(get "cap-args") ?cap_rets:(get "cap-rets") ()

let parse_policy ln tail =
  match find_group_opt tail "policy" with
  | None -> Types.props_none
  | Some inner ->
      List.fold_left
        (fun acc tok ->
          match tok with
          | "none" -> acc
          | "high" -> Types.props_high
          | "reg-int" -> { acc with Types.reg_integrity = true }
          | "reg-conf" -> { acc with Types.reg_confidentiality = true }
          | "stack-int" -> { acc with Types.stack_integrity = true }
          | "stack-conf" -> { acc with Types.stack_confidentiality = true }
          | "dcs-int" -> { acc with Types.dcs_integrity = true }
          | "dcs-conf" -> { acc with Types.dcs_confidentiality = true }
          | other -> fail ln "unknown policy flag %S" other)
        Types.props_none (tokens inner)

(* --- instruction assembly --- *)

type fn_env = { resolve_name : int -> string -> int (* line -> name -> addr *) }

let assemble_instr env ln labels toks a =
  let label name =
    match Hashtbl.find_opt labels name with
    | Some l -> l
    | None ->
        let l = Asm.label name in
        Hashtbl.replace labels name l;
        l
  in
  match toks with
  | [ "nop" ] -> Asm.ins a Isa.Nop
  | [ "halt" ] -> Asm.ins a Isa.Halt
  | [ "ret" ] -> Asm.ins a Isa.Ret
  | [ "trap"; n ] -> Asm.ins a (Isa.Trap (parse_int ln n))
  | [ "const"; d; v ] -> Asm.ins a (Isa.Const (parse_reg ln d, parse_int ln v))
  | [ "mov"; d; s ] -> Asm.ins a (Isa.Mov (parse_reg ln d, parse_reg ln s))
  | [ "add"; d; x; y ] ->
      Asm.ins a (Isa.Add (parse_reg ln d, parse_reg ln x, parse_reg ln y))
  | [ "sub"; d; x; y ] ->
      Asm.ins a (Isa.Sub (parse_reg ln d, parse_reg ln x, parse_reg ln y))
  | [ "mul"; d; x; y ] ->
      Asm.ins a (Isa.Mul (parse_reg ln d, parse_reg ln x, parse_reg ln y))
  | [ "addi"; d; x; i ] ->
      Asm.ins a (Isa.Addi (parse_reg ln d, parse_reg ln x, parse_int ln i))
  | [ "shli"; d; x; i ] ->
      Asm.ins a (Isa.Shli (parse_reg ln d, parse_reg ln x, parse_int ln i))
  | [ "load"; d; mem ] ->
      let base, off = parse_mem ln mem in
      Asm.ins a (Isa.Load (parse_reg ln d, base, off))
  | [ "store"; mem; s ] ->
      let base, off = parse_mem ln mem in
      Asm.ins a (Isa.Store (base, off, parse_reg ln s))
  | [ "jmp"; target ] -> Asm.branch a (fun t -> Isa.Jmp t) (label target)
  | [ "beqz"; r; target ] ->
      let r = parse_reg ln r in
      Asm.branch a (fun t -> Isa.Beqz (r, t)) (label target)
  | [ "bnez"; r; target ] ->
      let r = parse_reg ln r in
      Asm.branch a (fun t -> Isa.Bnez (r, t)) (label target)
  | [ "blt"; x; y; target ] ->
      let x = parse_reg ln x and y = parse_reg ln y in
      Asm.branch a (fun t -> Isa.Blt (x, y, t)) (label target)
  | [ "call"; name ] -> Asm.ins a (Isa.Call (env.resolve_name ln name))
  | [] -> ()
  | op :: _ -> fail ln "unknown instruction %S" op

(* --- the image description language --- *)

type loaded = {
  l_images : (string, Annot.image) Hashtbl.t; (* process name -> image *)
  l_symbols : (string * string, Annot.symbol) Hashtbl.t; (* (proc, sym) *)
  l_resolver : Resolver.t;
}

let image loaded ~proc =
  match Hashtbl.find_opt loaded.l_images proc with
  | Some img -> img
  | None -> System.deny "dipcc: unknown process %s" proc

let symbol loaded ~proc ~name =
  match Hashtbl.find_opt loaded.l_symbols (proc, name) with
  | Some s -> s
  | None -> System.deny "dipcc: unknown symbol %s.%s" proc name

(* Call an imported symbol on a thread of its process. *)
let call t loaded th ~proc ~name ~args =
  Annot.call t loaded.l_resolver th (symbol loaded ~proc ~name) ~args

let load t ?(resolver = Resolver.create ()) source =
  let loaded =
    { l_images = Hashtbl.create 8; l_symbols = Hashtbl.create 16; l_resolver = resolver }
  in
  let lines = String.split_on_char '\n' source in
  let current_img = ref None in
  let current_name = ref "" in
  (* function body under construction: (name, domain, asm, labels) *)
  let current_fn : (string * string * Asm.t * (string, Asm.label) Hashtbl.t) option ref =
    ref None
  in
  let require_img ln =
    match !current_img with
    | Some img -> img
    | None -> fail ln "directive outside a process block"
  in
  let resolve_callable ln name =
    let img = require_img ln in
    match Hashtbl.find_opt img.Annot.img_functions name with
    | Some addr -> addr
    | None -> (
        match Hashtbl.find_opt loaded.l_symbols (!current_name, name) with
        | Some sym -> Annot.resolve t resolver sym
        | None -> fail ln "unknown callee %S (declare it first)" name)
  in
  let env = { resolve_name = resolve_callable } in
  let fn_entry = ref None in
  let finish_fn ln =
    match (!current_fn, !fn_entry) with
    | Some (name, dom, a, _), Some entry ->
        let img = require_img ln in
        let d = Annot.domain_handle img dom in
        let addr = Loader.place_program t ~dom:d (a, entry) in
        Hashtbl.replace img.Annot.img_functions name addr;
        current_fn := None;
        fn_entry := None
    | Some _, None -> fail ln "internal: function without entry label"
    | None, _ -> ()
  in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line = "" then ()
      else begin
        match !current_fn with
        | Some (_, _, a, labels) when line <> "end" ->
            (* Inside a function body: label definitions or instructions. *)
            let n = String.length line in
            if n > 1 && line.[n - 1] = ':' then begin
              let name = String.sub line 0 (n - 1) in
              let l =
                match Hashtbl.find_opt labels name with
                | Some l -> l
                | None ->
                    let l = Asm.label name in
                    Hashtbl.replace labels name l;
                    l
              in
              Asm.bind a l
            end
            else assemble_instr env ln labels (tokens line) a
        | Some _ (* line = "end" *) -> finish_fn ln
        | None -> (
            match tokens line with
            | [ "process"; name ] ->
                let proc = System.create_process t ~name in
                let img = Annot.image t proc in
                Hashtbl.replace loaded.l_images name img;
                current_img := Some img;
                current_name := name
            | [ "domain"; name ] -> ignore (Annot.declare_domain t (require_img ln) name)
            | "func" :: name :: rest ->
                let dom =
                  match rest with
                  | [] -> "default"
                  | [ d ] when String.length d > 1 && d.[0] = '@' ->
                      String.sub d 1 (String.length d - 1)
                  | _ -> fail ln "func syntax: func <name> [@domain]"
                in
                let a = Asm.create () in
                let entry = Asm.label (name ^ "__entry") in
                Asm.align a Dipc_hw.Layout.entry_align;
                Asm.bind a entry;
                fn_entry := Some entry;
                current_fn := Some (name, dom, a, Hashtbl.create 8)
            | "perm" :: src :: dst :: [ perm ] ->
                let p =
                  match perm with
                  | "read" -> Dipc_hw.Perm.Read
                  | "write" -> Dipc_hw.Perm.Write
                  | "call" -> Dipc_hw.Perm.Call
                  | other -> fail ln "unknown permission %S" other
                in
                Annot.declare_perm t (require_img ln) ~src ~dst p
            | "entry" :: name :: "=" :: fn :: tail ->
                let img = require_img ln in
                let dom =
                  (* The entry lives in the domain of its function; find it
                     via an optional @domain suffix on the function name. *)
                  match String.index_opt fn '@' with
                  | Some j -> String.sub fn (j + 1) (String.length fn - j - 1)
                  | None -> "default"
                in
                let fn_name =
                  match String.index_opt fn '@' with
                  | Some j -> String.sub fn 0 j
                  | None -> fn
                in
                let sig_ = parse_signature ln tail in
                let policy = parse_policy ln tail in
                ignore
                  (Annot.declare_entries t img ~name ~dom [ (fn_name, sig_, policy) ])
            | "publish" :: entry :: [ path ] ->
                let img = require_img ln in
                Resolver.publish resolver ~path (Annot.entry_handle img entry)
            | "import" :: name :: path :: tail ->
                let img = require_img ln in
                let sig_ = parse_signature ln tail in
                let props = parse_policy ln tail in
                let sym = Annot.import img ~path ~sig_ ~props () in
                Hashtbl.replace loaded.l_symbols (!current_name, name) sym
            | toks -> fail ln "unknown directive %S" (String.concat " " toks))
      end)
    lines;
  (match !current_fn with
  | Some (name, _, _, _) ->
      fail (List.length lines) "function %S not closed with 'end'" name
  | None -> ());
  loaded
