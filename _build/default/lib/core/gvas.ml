(* Global virtual address space allocator (Sec. 6.1.3).

   dIPC-enabled processes share one page table, so virtual addresses are
   allocated globally: "first, a process globally allocates a block of
   virtual memory space (currently 1 GB), and then it sub-allocates actual
   memory from such blocks".  The paper notes global block allocation
   contends under load and suggests per-CPU pools; we expose the block
   counter so the ablation bench can model both. *)

module Layout = Dipc_hw.Layout

let block_size = 1 lsl 30 (* 1 GB *)

(* Keep the machine's low addresses free for the kernel image. *)
let first_block_base = 1 lsl 32

type block = { base : int; mutable cursor : int; owner : int (* pid *) }

type t = {
  mutable next_block : int;
  mutable blocks : block list;
  mutable block_allocations : int; (* global, contended counter *)
}

let create () = { next_block = 0; blocks = []; block_allocations = 0 }

let alloc_block t ~owner =
  let base = first_block_base + (t.next_block * block_size) in
  t.next_block <- t.next_block + 1;
  t.block_allocations <- t.block_allocations + 1;
  let b = { base; cursor = base; owner } in
  t.blocks <- b :: t.blocks;
  b

(* Sub-allocate [bytes] (page-aligned) for [owner], opening a new global
   block when the current one is exhausted. *)
let alloc t ~owner ~bytes =
  let bytes = Layout.align_up (max bytes Layout.page_size) Layout.page_size in
  if bytes > block_size then invalid_arg "Gvas.alloc: larger than a block";
  let usable b = b.owner = owner && b.cursor + bytes <= b.base + block_size in
  let block =
    match List.find_opt usable t.blocks with
    | Some b -> b
    | None -> alloc_block t ~owner
  in
  let addr = block.cursor in
  block.cursor <- block.cursor + bytes;
  addr

(* Which process owns the block containing [addr]?  The paper's prototype
   resolves cross-process page faults by iterating all processes; this
   direct lookup is the improvement Sec. 7.4 suggests. *)
let owner_of t addr =
  List.find_map
    (fun b -> if addr >= b.base && addr < b.base + block_size then Some b.owner else None)
    t.blocks

let blocks_allocated t = t.block_allocations
