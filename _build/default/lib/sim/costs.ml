(* Calibrated cost model, in nanoseconds.

   Every constant is traced to a measurement reported in the paper (EuroSys
   2017, Vilanova et al.) for the Xeon E3-1220 v2 testbed of Table 3.  The
   micro-architectural cost of dIPC calls is *not* a constant here: it
   emerges from instruction counts of the generated proxies (lib/hw) times
   the per-instruction costs below, and the test suite checks it lands in
   the paper's reported band. *)

(* "a function call ... takes under 2ns" (Sec. 2.2, Fig. 2 caption). *)
let function_call = 2.0

(* "an empty system call in Linux takes around 34ns" (Sec. 2.2); Figure 5
   shows the syscall bar at ~20x a function call.  We charge the hardware
   entry/exit path (syscall + 2x swapgs + sysret) and a small dispatch cost
   separately so breakdowns match Figure 2's blocks. *)
let syscall_entry_exit = 28.0 (* block 2: syscall + 2x swapgs + sysret *)

let syscall_dispatch = 12.0 (* block 3: dispatch trampoline *)

let syscall_total = syscall_entry_exit +. syscall_dispatch

(* Page table switch (CR3 write + TLB implications), block 6 of Figure 2. *)
let page_table_switch = 90.0

(* Saving/restoring the register file plus scheduler bookkeeping, block 5.
   Split so primitives can charge only what they execute. *)
let sched_pick_next = 120.0 (* runqueue manipulation, current switch *)

let register_save_restore = 80.0 (* full register file save + restore *)

let context_switch = sched_pick_next +. register_save_restore

(* Inter-processor interrupt: send cost on the initiating CPU and handling
   cost on the remote CPU (Sec. 2.2: "dominated by the costs of IPIs"). *)
let ipi_send = 400.0

let ipi_handle = 900.0

(* Waking from the idle loop (C-state exit + idle-task switch away). *)
let idle_wakeup = 500.0

(* Futex fast path (uncontended atomic) and slow path (kernel queue ops). *)
let futex_user_fastpath = 8.0

let futex_kernel_queue = 150.0

(* Per-byte copy costs by residency level; thresholds below.  These give the
   Figure 6 shape where copy distance from dIPC "grows with size" and kinks
   at the L1 and L2 boundaries. *)
let l1_size = 32 * 1024

let l2_size = 256 * 1024

let copy_ns_per_byte_l1 = 0.03 (* ~32 B/ns streaming from L1 *)

let copy_ns_per_byte_l2 = 0.06

let copy_ns_per_byte_mem = 0.12

(* Kernel-mediated copies must pin/validate user pages first (Sec. 7.2:
   "kernel-level transfers must ensure that pages are mapped"). *)
let kernel_copy_page_check = 25.0 (* per 4 KiB page touched *)

(* TLS segment switch: wrfsbase is "costly" (Sec. 6.1.2); the 1.54x-3.22x
   headroom reported in Sec. 7.2 puts the round-trip TLS cost at ~38ns. *)
let wrfsbase = 19.0

(* Machine model: base cost of one simple instruction on the simulated
   CODOMs pipeline (out-of-order, so this is the amortised issue cost). *)
let instr_base = 0.30

let instr_mem = 0.50 (* L1-hit load/store *)

let instr_branch = 0.40

let instr_call = 1.00 (* call/ret incl. return-stack effects *)

(* dIPC extension (Sec. 4.3): hardware-tag lookup in the 32-entry APL cache
   "takes less than a L1 cache hit". *)
let instr_gethwtag = 0.40

(* Capability register setup from APL or another capability. *)
let instr_cap_derive = 1.00

let instr_cap_push_pop = 0.80

let instr_cap_loadstore = 1.00 (* 32 B object, cap-storage page *)

(* L4 Fiasco.OC synchronous IPC, Figure 5: 474x a function call (=CPU). *)
let l4_kernel_path = 700.0 (* kernel work beyond entry/exit + ctxt switch *)

(* UNIX socket per-message kernel path (queueing, wakeups, locks). *)
let unix_socket_msg = 520.0

(* Pipe per-message kernel path. *)
let pipe_msg = 260.0

(* rpcgen/XDR user-level work per call: (de)marshal headers, dispatch table,
   credential checks (block 1 of Figure 2 for RPC). *)
let rpc_user_marshal = 1400.0

let rpc_user_dispatch = 500.0

(* Scheduler imbalance penalty for cross-process synchronous IPC in the
   macro benchmark: when a wakeup lands on a busy CPU the message waits
   (Sec. 7.4: idle goes from 24% to 1%). Expressed as a mean extra delay. *)
let sched_imbalance_mean = 15000.0

(* Infiniband model for Figure 7 (Mellanox MT26428, rsocket/netpipe):
   ~6 us small-message one-way latency, 10 Gb/s wire rate. *)
let ib_base_latency = 6000.0

let ib_bytes_per_ns = 1.25 (* 10 Gb/s = 1.25 B/ns *)

let ib_per_request_driver = 350.0 (* user-level driver work per request *)

(* OLTP model (Sec. 7.4/7.5): measured 211 cross-domain calls per DVDStore
   operation and 252ns average dIPC call cost under cache pressure. *)
let oltp_calls_per_op = 211

let oltp_dipc_call_pressure = 252.0
