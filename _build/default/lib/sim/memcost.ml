(* Memory traffic cost model.

   Copy and touch costs depend on whether the working set fits in L1, L2 or
   spills to memory; this produces the kinks Figure 6 marks at "L1$ size"
   and "L2$ size".  All results in nanoseconds. *)

let ns_per_byte bytes =
  if bytes <= Costs.l1_size then Costs.copy_ns_per_byte_l1
  else if bytes <= Costs.l2_size then Costs.copy_ns_per_byte_l2
  else Costs.copy_ns_per_byte_mem

(* Cost for user code to stream-write [bytes] (producer filling a buffer). *)
let write_buffer bytes = float_of_int bytes *. ns_per_byte bytes

(* Cost for user code to stream-read [bytes] (consumer checksumming). *)
let read_buffer bytes = float_of_int bytes *. ns_per_byte bytes

(* A user-to-user copy through user code (memcpy): read + write traffic,
   modelled as a single streaming pass at the level of the total footprint
   (source + destination compete for the same cache). *)
let user_copy bytes =
  let footprint = 2 * bytes in
  float_of_int bytes *. ns_per_byte footprint *. 2.0

(* A kernel-mediated cross-process copy: same traffic as a user copy plus
   per-page validation that the pages are mapped (pin/check). *)
let kernel_copy bytes =
  let pages = (bytes + 4095) / 4096 in
  user_copy bytes +. (float_of_int (max 1 pages) *. Costs.kernel_copy_page_check)
