lib/sim/engine.mli:
