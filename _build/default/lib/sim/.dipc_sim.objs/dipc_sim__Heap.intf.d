lib/sim/heap.mli:
