lib/sim/histogram.ml: Array Float Fmt
