lib/sim/costs.ml:
