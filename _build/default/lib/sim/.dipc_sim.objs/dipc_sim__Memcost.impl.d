lib/sim/memcost.ml: Costs
