lib/sim/memcost.mli:
