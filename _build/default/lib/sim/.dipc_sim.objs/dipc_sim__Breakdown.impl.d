lib/sim/breakdown.ml: Array Fmt List
