lib/sim/waitq.mli:
