lib/sim/rng.mli:
