(** Memory traffic cost model: copy and touch costs by cache residency,
    producing Figure 6's kinks at the L1 and L2 boundaries.  All results
    in nanoseconds. *)

(** Streaming rate for a working set of [bytes]. *)
val ns_per_byte : int -> float

(** Producer filling a buffer. *)
val write_buffer : int -> float

(** Consumer reading a buffer. *)
val read_buffer : int -> float

(** memcpy in user space (read + write traffic). *)
val user_copy : int -> float

(** Kernel-mediated cross-process copy: a user copy plus per-page
    pin/validate work. *)
val kernel_copy : int -> float
