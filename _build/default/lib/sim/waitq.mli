(** FIFO wait queue of suspended simulated threads: the engine-level
    building block under futexes, pipes and run queues. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Park the calling thread until woken; returns the waker's value. *)
val wait : 'a t -> 'a

(** Wake the longest-waiting thread; false if the queue was empty. *)
val wake_one : 'a t -> 'a -> bool

(** Wake everyone; returns how many were woken. *)
val wake_all : 'a t -> 'a -> int
