(* FIFO wait queue of suspended simulated threads.

   The building block for futexes, pipes, sockets and scheduler run-queues:
   a thread parks itself with [wait] and a peer hands it a value with
   [wake_one]/[wake_all]. *)

type 'a t = { waiters : 'a Engine.waker Queue.t }

let create () = { waiters = Queue.create () }

let length t = Queue.length t.waiters

let is_empty t = Queue.is_empty t.waiters

(* Park the calling thread until woken; returns the value passed by the
   waker. *)
let wait t = Engine.suspend (fun waker -> Queue.add waker t.waiters)

let wake_one t v =
  match Queue.take_opt t.waiters with
  | None -> false
  | Some waker ->
      Engine.resume waker v;
      true

let wake_all t v =
  let n = Queue.length t.waiters in
  while not (Queue.is_empty t.waiters) do
    Engine.resume (Queue.take t.waiters) v
  done;
  n
