(* Binary min-heap keyed by (time, sequence number).

   The sequence number breaks ties so that events scheduled for the same
   instant fire in insertion order, which keeps the discrete-event engine
   deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity h filler =
  let cap = Array.length h.data in
  if cap = 0 then h.data <- Array.make 16 filler
  else if h.size = cap then begin
    let fresh = Array.make (2 * cap) filler in
    Array.blit h.data 0 fresh 0 h.size;
    h.data <- fresh
  end

let push h ~time payload =
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  ensure_capacity h entry;
  let data = h.data in
  let i = ref h.size in
  h.size <- h.size + 1;
  data.(!i) <- entry;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before data.(!i) data.(parent) then begin
      let tmp = data.(parent) in
      data.(parent) <- data.(!i);
      data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let data = h.data in
    let top = data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      data.(0) <- data.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && before data.(l) data.(!smallest) then smallest := l;
        if r < h.size && before data.(r) data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = data.(!smallest) in
          data.(!smallest) <- data.(!i);
          data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.size = 0 then None else Some h.data.(0).time
