(* A functional miniature of CHERI's domain-crossing mechanism, for the
   Table 1 comparison (Sec. 4.1 contrasts CODOMs with CHERI [64]).

   CHERI crosses protection domains with sealed capability pairs: a
   domain is represented by a code capability and a data capability
   sealed under the same object type (otype).  CCall checks the pair,
   unseals both into PCC (program counter capability) and IDC (invoked
   data capability), and pushes the caller's state on a trusted stack;
   CReturn pops it.  In the CHERI implementations the paper compares
   against, both operations trap into a privileged exception handler —
   which is exactly the cost CODOMs avoids (Table 1: "S: 2x exception").

   This model is deliberately small: enough semantics to demonstrate and
   test the crossing discipline, plus the modelled switch cost. *)

type perm = Exec | Data

type cap = {
  c_base : int;
  c_len : int;
  c_perm : perm;
  c_sealed : int option; (* object type when sealed *)
}

let cap ~base ~len ~perm = { c_base = base; c_len = len; c_perm = perm; c_sealed = None }

let is_sealed c = c.c_sealed <> None

(* Sealing requires authority over the otype; we model that authority as
   a permit-seal capability covering the otype value. *)
let seal ~authority ~otype c =
  if otype < authority.c_base || otype >= authority.c_base + authority.c_len then
    Error "seal: otype outside the sealing authority"
  else if is_sealed c then Error "seal: already sealed"
  else Ok { c with c_sealed = Some otype }

type domain = { d_code : cap; d_data : cap; d_otype : int }

(* Build a sealed domain descriptor pair. *)
let make_domain ~authority ~otype ~code ~data =
  match (seal ~authority ~otype code, seal ~authority ~otype data) with
  | Ok c, Ok d -> Ok { d_code = c; d_data = d; d_otype = otype }
  | Error e, _ | _, Error e -> Error e

type cpu = {
  mutable pcc : cap; (* program counter capability *)
  mutable idc : cap; (* invoked data capability *)
  mutable trusted_stack : (cap * cap) list;
  mutable exceptions : int; (* every crossing traps *)
}

let cpu ~pcc ~idc = { pcc; idc; trusted_stack = []; exceptions = 0 }

(* Sealed capabilities confer no memory authority until unsealed. *)
let can_access c ~addr =
  (not (is_sealed c)) && addr >= c.c_base && addr < c.c_base + c.c_len

(* CCall: checked unsealing + trusted-stack push, via an exception. *)
let ccall cpu domain =
  cpu.exceptions <- cpu.exceptions + 1;
  match (domain.d_code.c_sealed, domain.d_data.c_sealed) with
  | Some a, Some b when a = b && a = domain.d_otype ->
      if domain.d_code.c_perm <> Exec then Error "ccall: code capability not executable"
      else begin
        cpu.trusted_stack <- (cpu.pcc, cpu.idc) :: cpu.trusted_stack;
        cpu.pcc <- { domain.d_code with c_sealed = None };
        cpu.idc <- { domain.d_data with c_sealed = None };
        Ok ()
      end
  | _ -> Error "ccall: otype mismatch or unsealed operand"

(* CReturn: pop the trusted stack, again via an exception. *)
let creturn cpu =
  cpu.exceptions <- cpu.exceptions + 1;
  match cpu.trusted_stack with
  | (pcc, idc) :: rest ->
      cpu.pcc <- pcc;
      cpu.idc <- idc;
      cpu.trusted_stack <- rest;
      Ok ()
  | [] -> Error "creturn: trusted stack empty"

(* Modelled cost of one crossing (exception entry + handler + return). *)
let crossing_cost_ns = 400.0

let round_trip_cost_ns = 2. *. crossing_cost_ns
