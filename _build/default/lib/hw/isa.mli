(** Instruction set of the simulated CODOMs machine: a small RISC-like
    ISA, x86-flavoured where the paper depends on it (call pushes the
    return address on the data stack, Sec. 5.2.3), with capability
    registers separate from the general-purpose file (Sec. 4.2).

    Register conventions: r0..r7 arguments/results, r8..r11 callee-saved,
    r12..r14 caller-saved scratch, r15 the stack pointer. *)

type reg = int

type creg = int

val num_regs : int

val num_cregs : int

val sp : reg

val arg_regs : reg list

val callee_saved : reg list

val scratch0 : reg

val scratch1 : reg

val scratch2 : reg

type instr =
  (* control *)
  | Nop
  | Halt
  | Trap of int
  | Syscall of int
  | Jmp of int
  | Jmpr of reg
  | Call of int  (** pushes the return address at [sp-8] *)
  | Callr of reg
  | Ret
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Beqz of reg * int
  | Bnez of reg * int
  (* integer *)
  | Const of reg * int
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Addi of reg * reg * int
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Shli of reg * reg * int
  (* memory *)
  | Load of reg * reg * int  (** rd <- mem[rbase + off] *)
  | Store of reg * int * reg  (** mem[rbase + off] <- rsrc *)
  (* thread / TLS state *)
  | RdTp of reg  (** privileged: per-thread kernel struct pointer *)
  | WrFsBase of reg  (** TLS segment base switch; costly (Sec. 6.1.2) *)
  | RdFsBase of reg
  (* dIPC hardware extension (Sec. 4.3) *)
  | GetHwTag of reg * reg  (** privileged: APL-cache hardware tag lookup *)
  | RdDepth of reg  (** privileged: hardware call depth (for the KCS) *)
  (* capabilities (Sec. 4.2) *)
  | CapAplDerive of creg * reg * reg * Perm.t  (** from own APL rights *)
  | CapRestrict of creg * creg * reg * reg * Perm.t
  | CapAsync of creg * creg * reg  (** attach a revocation counter *)
  | CapRevoke of reg  (** bump own revocation counter *)
  | CapClear of creg
  | CapPush of creg  (** spill to the DCS *)
  | CapPop of creg
  | CapLoad of creg * reg * int  (** capability-storage pages only *)
  | CapStore of reg * int * creg
  (* DCS bound management (privileged; proxies, Sec. 5.2.3) *)
  | DcsGetTop of reg
  | DcsGetBase of reg
  | DcsSetBase of reg
  | DcsSwitch of reg  (** fresh DCS, copying r args entries *)
  | DcsRestore of reg

(** Modelled latency of one instruction, ns. *)
val cost : instr -> float

val instr_bytes : int

val pp_reg : Format.formatter -> reg -> unit

val pp : Format.formatter -> instr -> unit
