(** Transient data-sharing capabilities (Sec. 4.2).

    Synchronous capabilities die with the creating thread's call frame;
    asynchronous capabilities may cross threads and be stored in memory,
    and support immediate revocation through revocation counters. *)

type scope =
  | Synchronous of { thread : int; depth : int; epoch : int }
  | Asynchronous of { owner_tag : int; counter : int; value : int }

type t = { base : int; length : int; perm : Perm.t; scope : scope }

(** Does the capability cover [len] bytes at [addr]? *)
val covers : t -> addr:int -> len:int -> bool

val grants : t -> Perm.t -> bool

(** Derive a narrower capability; never amplifies range or rights. *)
val restrict : t -> base:int -> length:int -> perm:Perm.t -> (t, string) result

val pp : Format.formatter -> t -> unit

(** Revocation counters for asynchronous capabilities: a capability
    stamped with an old counter value is invalid everywhere at once. *)
module Revocation : sig
  type table

  val create : unit -> table

  val value : table -> tag:int -> counter:int -> int

  val revoke : table -> tag:int -> counter:int -> unit
end
