(** Per-thread Domain Capability Stack (Sec. 4.2): capability spill
    storage bounded by registers only privileged code may move.  dIPC's
    proxies implement DCS integrity (raise the base) and confidentiality
    (switch to a fresh stack) on it (Sec. 5.2.3). *)

val default_capacity : int

type t = {
  mutable slots : Capability.t option array;
  mutable base : int;  (** lowest index unprivileged code may pop past *)
  mutable top : int;  (** next free slot *)
}

val create : ?capacity:int -> unit -> t

val depth : t -> int

val base : t -> int

(** Unprivileged push/pop; fault on overflow or popping below base. *)
val push : t -> pc:int -> Capability.t -> unit

val pop : t -> pc:int -> Capability.t

(** Privileged: DCS integrity. *)
val set_base : t -> pc:int -> int -> unit

(** Detached stack state, for the matching {!restore}. *)
type saved

(** Privileged: install a fresh stack with the top [args] entries copied
    over (DCS confidentiality + integrity). *)
val switch : t -> pc:int -> args:int -> saved

(** Privileged: restore a detached stack, copying the top [rets] entries
    of the current stack back as results. *)
val restore : t -> pc:int -> rets:int -> saved -> unit
