(* APL and capability permissions (Sec. 4.1).

   The ordered set mirrors Table 2: nil < call < read < write < owner.
   [Owner] exists only in software (dIPC domain handles); the hardware APL
   never stores it — dIPC translates owner to write when configuring
   grants (Sec. 5.2.2). *)

type t = Nil | Call | Read | Write | Owner

let rank = function Nil -> 0 | Call -> 1 | Read -> 2 | Write -> 3 | Owner -> 4

(* [includes granted needed]: does holding [granted] satisfy a check for
   [needed]?  Read implies call-into-arbitrary-addresses; write implies
   read (Sec. 4.1). *)
let includes granted needed = rank granted >= rank needed

let min a b = if rank a <= rank b then a else b

let equal a b = rank a = rank b

(* Hardware image of a software permission: owner handles grant full write
   access when installed in an APL. *)
let to_hardware = function Owner -> Write | (Nil | Call | Read | Write) as p -> p

let to_string = function
  | Nil -> "nil"
  | Call -> "call"
  | Read -> "read"
  | Write -> "write"
  | Owner -> "owner"

let pp ppf t = Fmt.string ppf (to_string t)
