(** Functional miniature of CHERI's domain crossing (the Table 1
    comparison point): sealed capability pairs, CCall/CReturn through
    exceptions, and a trusted stack. *)

type perm = Exec | Data

type cap = { c_base : int; c_len : int; c_perm : perm; c_sealed : int option }

val cap : base:int -> len:int -> perm:perm -> cap

val is_sealed : cap -> bool

(** Seal under [otype]; the authority capability must cover the otype. *)
val seal : authority:cap -> otype:int -> cap -> (cap, string) result

type domain = { d_code : cap; d_data : cap; d_otype : int }

val make_domain :
  authority:cap -> otype:int -> code:cap -> data:cap -> (domain, string) result

type cpu = {
  mutable pcc : cap;
  mutable idc : cap;
  mutable trusted_stack : (cap * cap) list;
  mutable exceptions : int;  (** every crossing traps *)
}

val cpu : pcc:cap -> idc:cap -> cpu

(** Sealed capabilities confer no memory authority. *)
val can_access : cap -> addr:int -> bool

(** CCall: checked unsealing + trusted-stack push, via an exception. *)
val ccall : cpu -> domain -> (unit, string) result

val creturn : cpu -> (unit, string) result

val crossing_cost_ns : float

val round_trip_cost_ns : float
