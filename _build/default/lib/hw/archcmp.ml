(* Architecture comparison model for Table 1.

   Best-case round-trip domain switch (S) and bulk data communication (D)
   on each architecture the paper compares.  Each operation sequence is
   spelled out so the bench harness can print both the op list (the table's
   content) and a modelled cost. *)

module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost

type arch = Conventional | Cheri | Mmp | Codoms

let arch_name = function
  | Conventional -> "Conventional CPU"
  | Cheri -> "CHERI"
  | Mmp -> "MMP"
  | Codoms -> "CODOMs"

(* A micro-operation with a modelled latency. *)
type op = { op_name : string; op_cost : float }

let op name cost = { op_name = name; op_cost = cost }

let exception_cost = 400.0 (* precise exception + handler entry/exit *)

let pipeline_flush = 40.0

let prot_table_update = 120.0 (* privileged protection-table write + inval *)

(* Round-trip domain switch sequence (the "S" column). *)
let switch_ops = function
  | Conventional ->
      [
        op "syscall" (Costs.syscall_entry_exit /. 2.);
        op "swapgs" 4.;
        op "page table switch" Costs.page_table_switch;
        op "swapgs" 4.;
        op "sysret" (Costs.syscall_entry_exit /. 2.);
        op "syscall" (Costs.syscall_entry_exit /. 2.);
        op "swapgs" 4.;
        op "page table switch" Costs.page_table_switch;
        op "swapgs" 4.;
        op "sysret" (Costs.syscall_entry_exit /. 2.);
      ]
  | Cheri -> [ op "exception (CCall)" exception_cost; op "exception (CReturn)" exception_cost ]
  | Mmp -> [ op "pipeline flush" pipeline_flush; op "pipeline flush" pipeline_flush ]
  | Codoms -> [ op "call" Costs.instr_call; op "return" Costs.instr_call ]

(* Bulk data communication for [bytes] (the "D" column). *)
let data_ops ~bytes = function
  | Conventional -> [ op "memcpy across address spaces" (Memcost.kernel_copy bytes) ]
  | Cheri -> [ op "capability setup" Costs.instr_cap_derive ]
  | Mmp ->
      let pages = max 1 ((bytes + Layout.page_size - 1) / Layout.page_size) in
      [
        op
          (Printf.sprintf "write+invalidate %d prot. table entries" pages)
          (float_of_int pages *. prot_table_update);
      ]
  | Codoms -> [ op "capability setup" Costs.instr_cap_derive ]

let total ops = List.fold_left (fun acc o -> acc +. o.op_cost) 0. ops

type row = {
  row_arch : arch;
  switch : op list;
  data : op list;
  switch_cost : float;
  data_cost : float;
}

let row ~bytes arch =
  let switch = switch_ops arch in
  let data = data_ops ~bytes arch in
  { row_arch = arch; switch; data; switch_cost = total switch; data_cost = total data }

let table ~bytes = List.map (row ~bytes) [ Conventional; Cheri; Mmp; Codoms ]

let ops_summary ops = String.concat " + " (List.map (fun o -> o.op_name) ops)
