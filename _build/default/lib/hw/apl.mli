(** Access Protection Lists (Sec. 4.1): per-domain-tag permission lists.
    A domain always has implicit write access to its own tag. *)

type t

val create : unit -> t

(** Allocate a fresh domain tag. *)
val fresh_tag : t -> int

(** Effective permission of code tagged [src] on pages tagged [dst]. *)
val permission : t -> src:int -> dst:int -> Perm.t

(** Install (or, with [Perm.Nil], remove) a grant in [src]'s APL.
    Software [Owner] handles map to hardware write. *)
val grant : t -> src:int -> dst:int -> Perm.t -> unit

val revoke : t -> src:int -> dst:int -> unit

(** Remove a domain: its own APL and every grant pointing at it. *)
val drop_tag : t -> int -> unit

(** All grants in [src]'s APL. *)
val grants_of : t -> src:int -> (int * Perm.t) list

(** Bumped on every change; lets caches detect staleness. *)
val generation : t -> int
