(** Functional miniature of Mondrian Memory Protection (the Table 1
    comparison point): per-domain privileged permission tables and
    switch/return gates costing a pipeline flush. *)

type perm = None_ | Read_only | Read_write | Execute_read

val allows : perm -> perm -> bool

type pd = {
  pd_id : int;
  mutable regions : region list;
  mutable table_writes : int;  (** cost proxy for grants/revocations *)
}

and region = { r_base : int; r_len : int; r_perm : perm }

val pd : id:int -> pd

(** Privileged table edits (the supervisor's job). *)
val grant : pd -> base:int -> len:int -> perm:perm -> unit

val revoke : pd -> base:int -> len:int -> unit

val can_access : pd -> addr:int -> perm:perm -> bool

type cpu = {
  mutable current : pd;
  gates : (int, gate) Hashtbl.t;
  domains : (int, pd) Hashtbl.t;
  mutable cross_stack : int list;
  mutable pipeline_flushes : int;
}

and gate = { g_addr : int; g_from : int; g_to : int }

val cpu : initial:pd -> cpu

val add_domain : cpu -> pd -> unit

val add_gate : cpu -> addr:int -> from_pd:int -> to_pd:int -> unit

(** Cross through a switch gate (legal only from its source domain). *)
val call_gate : cpu -> addr:int -> (unit, string) result

val return_gate : cpu -> (unit, string) result

val switch_cost_ns : float

val table_write_cost_ns : float

(** Bulk-data sharing: one table entry per page-sized chunk. *)
val share_cost_ns : bytes:int -> float
