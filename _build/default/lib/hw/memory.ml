(* Simulated physical memory.

   Three stores share one address space:
   - [words]: 8-byte data words at 8-aligned addresses (sparse);
   - [caps]: 32-byte capability cells at 32-aligned addresses, kept apart
     from data so capabilities cannot be forged by writing their bits —
     the page's capability-storage bit mediates which accessor is legal;
   - [code]: one instruction per 4-byte slot.

   All protection checks happen in [Machine]; this module is the raw
   backing store. *)

type t = {
  words : (int, int) Hashtbl.t;
  caps : (int, Capability.t) Hashtbl.t;
  code : (int, Isa.instr) Hashtbl.t;
}

let create () =
  { words = Hashtbl.create 4096; caps = Hashtbl.create 64; code = Hashtbl.create 1024 }

let check_word_aligned addr =
  if addr land 7 <> 0 then invalid_arg (Printf.sprintf "unaligned word access 0x%x" addr)

let load_word t addr =
  check_word_aligned addr;
  match Hashtbl.find_opt t.words addr with Some v -> v | None -> 0

let store_word t addr v =
  check_word_aligned addr;
  Hashtbl.replace t.words addr v

let load_cap t addr =
  if addr land (Layout.cap_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "unaligned capability access 0x%x" addr);
  Hashtbl.find_opt t.caps addr

let store_cap t addr cap =
  if addr land (Layout.cap_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "unaligned capability access 0x%x" addr);
  Hashtbl.replace t.caps addr cap

let fetch t addr = Hashtbl.find_opt t.code addr

(* Place a straight-line instruction sequence at [addr]; returns the first
   address past it. *)
let place_code t ~addr instrs =
  if addr land (Isa.instr_bytes - 1) <> 0 then
    invalid_arg "place_code: misaligned code address";
  List.iteri
    (fun i instr -> Hashtbl.replace t.code (addr + (i * Isa.instr_bytes)) instr)
    instrs;
  addr + (List.length instrs * Isa.instr_bytes)

let code_size t = Hashtbl.length t.code
