(* Hardware fault model.

   Every protection violation the CODOMs machine can detect raises
   [Fault.Fault]; the kernel / dIPC layer above catches it to implement
   fault notification and KCS unwinding (Sec. 5.2.1). *)

type kind =
  | Unmapped (* access to an unmapped page *)
  | No_permission of Perm.t (* neither APL nor any capability grants it *)
  | Not_entry_point (* call-permission transfer to a misaligned address *)
  | Exec_violation (* fetch from a non-executable page *)
  | Write_to_readonly (* APL/cap would allow it but the page is read-only *)
  | Privilege_required (* privileged instruction from a non-priv page *)
  | Cap_invalid (* revoked or out-of-scope capability *)
  | Cap_storage of string (* cap-storage-bit discipline violated *)
  | Dcs_bounds of string (* DCS under/overflow or base violation *)
  | Apl_cache_miss of int (* strict mode only; payload = missing tag *)
  | Bad_instruction (* fetch decoded no instruction *)
  | Software_trap of int (* explicit Trap instruction, e.g. stack check *)

type t = { kind : kind; pc : int; addr : int option }

exception Fault of t

let raise_fault ?addr ~pc kind = raise (Fault { kind; pc; addr })

let kind_to_string = function
  | Unmapped -> "unmapped page"
  | No_permission p -> "no " ^ Perm.to_string p ^ " permission"
  | Not_entry_point -> "misaligned cross-domain call target"
  | Exec_violation -> "execute violation"
  | Write_to_readonly -> "write to read-only page"
  | Privilege_required -> "privileged instruction in user code"
  | Cap_invalid -> "invalid/revoked capability"
  | Cap_storage s -> "capability storage violation: " ^ s
  | Dcs_bounds s -> "DCS bounds violation: " ^ s
  | Apl_cache_miss t -> Printf.sprintf "APL cache miss (tag %d)" t
  | Bad_instruction -> "bad instruction"
  | Software_trap n -> Printf.sprintf "software trap %d" n

let pp ppf t =
  Fmt.pf ppf "fault[%s] at pc=0x%x%a" (kind_to_string t.kind) t.pc
    (fun ppf -> function
      | None -> ()
      | Some a -> Fmt.pf ppf " addr=0x%x" a)
    t.addr

let to_string t = Fmt.str "%a" pp t
