lib/hw/apl.mli: Perm
