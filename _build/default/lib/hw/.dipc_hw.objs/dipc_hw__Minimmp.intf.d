lib/hw/minimmp.mli: Hashtbl
