lib/hw/page_table.ml: Fault Hashtbl Layout Option Printf
