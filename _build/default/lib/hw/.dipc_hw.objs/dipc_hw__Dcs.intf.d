lib/hw/dcs.mli: Capability
