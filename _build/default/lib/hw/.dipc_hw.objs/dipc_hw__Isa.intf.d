lib/hw/isa.mli: Format Perm
