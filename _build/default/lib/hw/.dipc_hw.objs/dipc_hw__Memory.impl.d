lib/hw/memory.ml: Capability Hashtbl Isa Layout List Printf
