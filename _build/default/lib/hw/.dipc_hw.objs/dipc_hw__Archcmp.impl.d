lib/hw/archcmp.ml: Dipc_sim Layout List Printf String
