lib/hw/perm.ml: Fmt
