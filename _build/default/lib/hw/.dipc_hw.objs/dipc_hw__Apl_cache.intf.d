lib/hw/apl_cache.mli:
