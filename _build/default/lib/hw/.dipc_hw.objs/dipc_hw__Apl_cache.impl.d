lib/hw/apl_cache.ml: Array List
