lib/hw/minimmp.ml: Hashtbl List
