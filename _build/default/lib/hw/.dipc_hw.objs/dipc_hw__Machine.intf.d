lib/hw/machine.mli: Apl Apl_cache Capability Dcs Dipc_sim Memory Page_table Perm
