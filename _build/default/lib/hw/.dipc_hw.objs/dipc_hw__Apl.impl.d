lib/hw/apl.ml: Hashtbl List Perm
