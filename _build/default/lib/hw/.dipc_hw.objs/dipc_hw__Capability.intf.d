lib/hw/capability.mli: Format Perm
