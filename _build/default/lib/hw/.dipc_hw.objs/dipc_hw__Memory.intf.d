lib/hw/memory.mli: Capability Isa
