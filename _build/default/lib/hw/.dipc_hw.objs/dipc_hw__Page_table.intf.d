lib/hw/page_table.mli:
