lib/hw/minicheri.ml:
