lib/hw/capability.ml: Fmt Hashtbl Perm Printf
