lib/hw/minicheri.mli:
