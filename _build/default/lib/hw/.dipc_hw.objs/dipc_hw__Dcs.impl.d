lib/hw/dcs.ml: Array Capability Fault
