lib/hw/machine.ml: Apl Apl_cache Array Capability Dcs Dipc_sim Fault Isa Layout Memory Page_table Perm
