lib/hw/fault.ml: Fmt Perm Printf
