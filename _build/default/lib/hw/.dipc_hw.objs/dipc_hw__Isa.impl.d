lib/hw/isa.ml: Dipc_sim Fmt Perm
