lib/hw/perm.mli: Format
