lib/hw/fault.mli: Format Perm
