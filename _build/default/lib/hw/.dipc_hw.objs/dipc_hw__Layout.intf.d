lib/hw/layout.mli:
