lib/hw/layout.ml:
