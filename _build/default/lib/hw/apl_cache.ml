(* Per-hardware-thread software-managed APL cache (Secs. 4.1, 4.3).

   The cache holds the access-grant information of recently executed
   domains and maps each cached domain tag to a small hardware domain tag
   (5 bits for the 32-entry cache).  dIPC's extension (Sec. 4.3) is a
   privileged instruction that retrieves the hardware tag of any cached
   domain; the hardware tag then indexes the per-thread process-tracking
   array (Sec. 6.1.2).

   The cache is software-managed: on a miss the hardware raises an
   exception and the OS refills it.  The machine model supports both a
   strict mode (fault on miss, as real hardware would) and an auto-fill
   mode that charges a refill cost, which is what the paper's evaluation
   assumes ("this event never happens on the presented benchmarks",
   Sec. 7.5). *)

let capacity = 32

type entry = { mutable tag : int; mutable last_use : int }

type t = {
  entries : entry array; (* index = hardware domain tag *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable refills : int;
}

let create () =
  {
    entries = Array.init capacity (fun _ -> { tag = -1; last_use = 0 });
    clock = 0;
    hits = 0;
    misses = 0;
    refills = 0;
  }

let reset t =
  Array.iter
    (fun e ->
      e.tag <- -1;
      e.last_use <- 0)
    t.entries;
  t.clock <- 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Hardware tag of [tag] if cached. *)
let lookup t tag =
  let found = ref None in
  Array.iteri
    (fun i e -> if e.tag = tag && !found = None then found := Some i)
    t.entries;
  (match !found with
  | Some i ->
      t.hits <- t.hits + 1;
      t.entries.(i).last_use <- tick t
  | None -> t.misses <- t.misses + 1);
  !found

(* Install [tag], evicting the least-recently-used entry; returns the
   hardware tag it landed on. *)
let install t tag =
  let victim = ref 0 in
  Array.iteri
    (fun i e ->
      if e.tag = -1 && t.entries.(!victim).tag <> -1 then victim := i
      else if
        e.tag <> -1
        && t.entries.(!victim).tag <> -1
        && e.last_use < t.entries.(!victim).last_use
      then victim := i)
    t.entries;
  let e = t.entries.(!victim) in
  e.tag <- tag;
  e.last_use <- tick t;
  t.refills <- t.refills + 1;
  !victim

(* Lookup-or-install used by the machine in auto-fill mode. *)
let ensure t tag =
  match lookup t tag with Some hw -> (hw, true) | None -> (install t tag, false)

let stats t = (t.hits, t.misses, t.refills)

let resident_tags t =
  Array.to_list t.entries |> List.filter_map (fun e -> if e.tag >= 0 then Some e.tag else None)
