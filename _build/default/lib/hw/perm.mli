(** APL and capability permissions (paper Sec. 4.1): the ordered set
    nil < call < read < write < owner of Table 2.  [Owner] exists only in
    software handles; hardware APLs store at most [Write]. *)

type t = Nil | Call | Read | Write | Owner

val rank : t -> int

(** [includes granted needed]: does holding [granted] satisfy a check for
    [needed]?  Read implies call-into-arbitrary-addresses; write implies
    read. *)
val includes : t -> t -> bool

val min : t -> t -> t

val equal : t -> t -> bool

(** Hardware image of a software permission: owner becomes write. *)
val to_hardware : t -> t

val to_string : t -> string

val pp : Format.formatter -> t -> unit
