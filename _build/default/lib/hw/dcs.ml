(* Per-thread Domain Capability Stack (Sec. 4.2).

   All capabilities can be spilled to the DCS, which is bounded by two
   registers modifiable only by privileged code; unprivileged code moves
   capabilities with push/pop.  dIPC's proxies implement:

   - DCS integrity: raise the base so the callee cannot pop the caller's
     non-argument entries, restore it on return (Sec. 5.2.3).
   - DCS confidentiality (+integrity): switch to a separate stack per
     domain, copying argument entries per the signature. *)

let default_capacity = 256

type t = {
  mutable slots : Capability.t option array;
  mutable base : int; (* lowest index unprivileged code may pop past *)
  mutable top : int; (* next free slot *)
}

let create ?(capacity = default_capacity) () =
  { slots = Array.make capacity None; base = 0; top = 0 }

let depth t = t.top

let base t = t.base

let push t ~pc cap =
  if t.top >= Array.length t.slots then
    Fault.raise_fault ~pc (Fault.Dcs_bounds "overflow");
  t.slots.(t.top) <- Some cap;
  t.top <- t.top + 1

let pop t ~pc =
  if t.top <= t.base then
    Fault.raise_fault ~pc (Fault.Dcs_bounds "pop below base");
  t.top <- t.top - 1;
  match t.slots.(t.top) with
  | Some cap ->
      t.slots.(t.top) <- None;
      cap
  | None -> Fault.raise_fault ~pc (Fault.Dcs_bounds "empty slot")

(* Privileged: used by proxies for DCS integrity. *)
let set_base t ~pc idx =
  if idx < 0 || idx > t.top then
    Fault.raise_fault ~pc (Fault.Dcs_bounds "base out of range");
  t.base <- idx

(* Privileged: detach the current stack and install a fresh one with the
   top [args] entries copied over (DCS confidentiality + integrity).
   Returns the detached state for the matching restore. *)
type saved = { saved_slots : Capability.t option array; saved_base : int; saved_top : int }

let switch t ~pc ~args =
  if args > t.top - t.base then
    Fault.raise_fault ~pc (Fault.Dcs_bounds "more arguments than entries");
  let saved = { saved_slots = t.slots; saved_base = t.base; saved_top = t.top } in
  let fresh = Array.make (Array.length t.slots) None in
  for i = 0 to args - 1 do
    fresh.(i) <- t.slots.(t.top - args + i)
  done;
  t.slots <- fresh;
  t.base <- 0;
  t.top <- args;
  saved

(* Privileged: restore a detached stack, copying the top [rets] entries of
   the callee stack back as results. *)
let restore t ~pc ~rets saved =
  if rets > t.top then Fault.raise_fault ~pc (Fault.Dcs_bounds "more results than entries");
  let results = Array.init rets (fun i -> t.slots.(t.top - rets + i)) in
  t.slots <- saved.saved_slots;
  t.base <- saved.saved_base;
  t.top <- saved.saved_top;
  Array.iter
    (function
      | Some cap ->
          if t.top >= Array.length t.slots then
            Fault.raise_fault ~pc (Fault.Dcs_bounds "overflow on restore")
          else begin
            t.slots.(t.top) <- Some cap;
            t.top <- t.top + 1
          end
      | None -> ())
    results
