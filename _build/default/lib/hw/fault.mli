(** Hardware fault model: every protection violation the machine detects
    raises {!Fault}; the OS layer above catches it to implement fault
    notification and KCS unwinding (Sec. 5.2.1). *)

type kind =
  | Unmapped
  | No_permission of Perm.t
  | Not_entry_point  (** call-permission transfer to a misaligned address *)
  | Exec_violation
  | Write_to_readonly
  | Privilege_required
  | Cap_invalid  (** revoked or out-of-scope capability *)
  | Cap_storage of string  (** capability-storage-bit discipline violated *)
  | Dcs_bounds of string
  | Apl_cache_miss of int  (** strict mode only *)
  | Bad_instruction
  | Software_trap of int

type t = { kind : kind; pc : int; addr : int option }

exception Fault of t

val raise_fault : ?addr:int -> pc:int -> kind -> 'a

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
