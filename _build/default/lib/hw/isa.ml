(* Instruction set of the simulated CODOMs machine.

   A small RISC-like ISA, x86-flavoured where the paper depends on it: the
   call instruction pushes the return address on the *data stack* (Sec. 5.2.3
   explains dIPC's KCS discipline exists precisely because x86 keeps return
   addresses in memory), and capability registers are separate from the
   general-purpose file (Sec. 4.2).

   Register conventions (used by stubs, proxies and test programs):
     r0..r7   argument / result registers (r0 = first arg and return value)
     r8..r11  callee-saved
     r12..r14 caller-saved scratch
     r15      stack pointer
*)

type reg = int

type creg = int

let num_regs = 16

let num_cregs = 8

let sp = 15

let arg_regs = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let callee_saved = [ 8; 9; 10; 11 ]

let scratch0 = 12

let scratch1 = 13

let scratch2 = 14

type instr =
  (* control *)
  | Nop
  | Halt
  | Trap of int
  | Syscall of int
  | Jmp of int
  | Jmpr of reg
  | Call of int
  | Callr of reg
  | Ret
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Beqz of reg * int
  | Bnez of reg * int
  (* integer *)
  | Const of reg * int
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Addi of reg * reg * int
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Shli of reg * reg * int
  (* memory *)
  | Load of reg * reg * int (* rd <- mem[rbase + off] *)
  | Store of reg * int * reg (* mem[rbase + off] <- rsrc *)
  (* thread / TLS state *)
  | RdTp of reg (* privileged: per-thread kernel struct pointer (gs-like) *)
  | WrFsBase of reg (* TLS segment base switch; costly (Sec. 6.1.2) *)
  | RdFsBase of reg
  (* dIPC hardware extension (Sec. 4.3) *)
  | GetHwTag of reg * reg (* privileged: rd <- hw domain tag of tag in rs *)
  | RdDepth of reg (* privileged: rd <- hardware call depth (for the KCS) *)
  (* capabilities (Sec. 4.2) *)
  | CapAplDerive of creg * reg * reg * Perm.t (* from own APL rights *)
  | CapRestrict of creg * creg * reg * reg * Perm.t (* narrow an existing cap *)
  | CapAsync of creg * creg * reg (* make async w/ revocation counter idx *)
  | CapRevoke of reg (* bump own revocation counter idx *)
  | CapClear of creg
  | CapPush of creg (* spill to the DCS *)
  | CapPop of creg
  | CapLoad of creg * reg * int (* from a capability-storage page *)
  | CapStore of reg * int * creg
  (* DCS bound management (privileged; used by proxies, Sec. 5.2.3) *)
  | DcsGetTop of reg (* unprivileged: current DCS depth *)
  | DcsGetBase of reg
  | DcsSetBase of reg
  | DcsSwitch of reg (* fresh DCS, copying r args entries *)
  | DcsRestore of reg (* restore saved DCS, copying r result entries *)

(* Per-instruction latency on the simulated out-of-order pipeline. *)
let cost = function
  | Nop | Trap _ | Const _ | Mov _ | Add _ | Addi _ | Sub _ | Mul _ | Shli _ ->
      Dipc_sim.Costs.instr_base
  | Halt -> 0.
  | Syscall _ -> Dipc_sim.Costs.instr_base (* entry/exit charged by machine *)
  | Jmp _ | Jmpr _ | Beq _ | Bne _ | Blt _ | Bge _ | Beqz _ | Bnez _ ->
      Dipc_sim.Costs.instr_branch
  | Call _ | Callr _ | Ret -> Dipc_sim.Costs.instr_call
  | Load _ | Store _ -> Dipc_sim.Costs.instr_mem
  | RdTp _ | RdFsBase _ | RdDepth _ -> Dipc_sim.Costs.instr_base
  | WrFsBase _ -> Dipc_sim.Costs.wrfsbase
  | GetHwTag _ -> Dipc_sim.Costs.instr_gethwtag
  | CapAplDerive _ | CapRestrict _ | CapAsync _ | CapRevoke _ ->
      Dipc_sim.Costs.instr_cap_derive
  | CapClear _ -> Dipc_sim.Costs.instr_base
  | CapPush _ | CapPop _ -> Dipc_sim.Costs.instr_cap_push_pop
  | CapLoad _ | CapStore _ -> Dipc_sim.Costs.instr_cap_loadstore
  | DcsGetTop _ | DcsGetBase _ | DcsSetBase _ -> Dipc_sim.Costs.instr_base
  | DcsSwitch _ | DcsRestore _ -> Dipc_sim.Costs.instr_cap_push_pop

let instr_bytes = 4

let pp_reg ppf r = if r = sp then Fmt.string ppf "sp" else Fmt.pf ppf "r%d" r

let pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Halt -> Fmt.string ppf "halt"
  | Trap n -> Fmt.pf ppf "trap %d" n
  | Syscall n -> Fmt.pf ppf "syscall %d" n
  | Jmp a -> Fmt.pf ppf "jmp 0x%x" a
  | Jmpr r -> Fmt.pf ppf "jmpr %a" pp_reg r
  | Call a -> Fmt.pf ppf "call 0x%x" a
  | Callr r -> Fmt.pf ppf "callr %a" pp_reg r
  | Ret -> Fmt.string ppf "ret"
  | Beq (a, b, t) -> Fmt.pf ppf "beq %a,%a,0x%x" pp_reg a pp_reg b t
  | Bne (a, b, t) -> Fmt.pf ppf "bne %a,%a,0x%x" pp_reg a pp_reg b t
  | Blt (a, b, t) -> Fmt.pf ppf "blt %a,%a,0x%x" pp_reg a pp_reg b t
  | Bge (a, b, t) -> Fmt.pf ppf "bge %a,%a,0x%x" pp_reg a pp_reg b t
  | Beqz (a, t) -> Fmt.pf ppf "beqz %a,0x%x" pp_reg a t
  | Bnez (a, t) -> Fmt.pf ppf "bnez %a,0x%x" pp_reg a t
  | Const (r, v) -> Fmt.pf ppf "const %a,%d" pp_reg r v
  | Mov (d, s) -> Fmt.pf ppf "mov %a,%a" pp_reg d pp_reg s
  | Add (d, a, b) -> Fmt.pf ppf "add %a,%a,%a" pp_reg d pp_reg a pp_reg b
  | Addi (d, a, i) -> Fmt.pf ppf "addi %a,%a,%d" pp_reg d pp_reg a i
  | Sub (d, a, b) -> Fmt.pf ppf "sub %a,%a,%a" pp_reg d pp_reg a pp_reg b
  | Mul (d, a, b) -> Fmt.pf ppf "mul %a,%a,%a" pp_reg d pp_reg a pp_reg b
  | Shli (d, a, i) -> Fmt.pf ppf "shli %a,%a,%d" pp_reg d pp_reg a i
  | Load (d, b, o) -> Fmt.pf ppf "load %a,[%a+%d]" pp_reg d pp_reg b o
  | Store (b, o, s) -> Fmt.pf ppf "store [%a+%d],%a" pp_reg b o pp_reg s
  | RdTp r -> Fmt.pf ppf "rdtp %a" pp_reg r
  | WrFsBase r -> Fmt.pf ppf "wrfsbase %a" pp_reg r
  | RdFsBase r -> Fmt.pf ppf "rdfsbase %a" pp_reg r
  | GetHwTag (d, s) -> Fmt.pf ppf "gethwtag %a,%a" pp_reg d pp_reg s
  | RdDepth r -> Fmt.pf ppf "rddepth %a" pp_reg r
  | CapAplDerive (c, b, l, p) ->
      Fmt.pf ppf "capderive c%d,%a,%a,%a" c pp_reg b pp_reg l Perm.pp p
  | CapRestrict (c, c', b, l, p) ->
      Fmt.pf ppf "caprestrict c%d,c%d,%a,%a,%a" c c' pp_reg b pp_reg l Perm.pp p
  | CapAsync (c, c', r) -> Fmt.pf ppf "capasync c%d,c%d,%a" c c' pp_reg r
  | CapRevoke r -> Fmt.pf ppf "caprevoke %a" pp_reg r
  | CapClear c -> Fmt.pf ppf "capclear c%d" c
  | CapPush c -> Fmt.pf ppf "cappush c%d" c
  | CapPop c -> Fmt.pf ppf "cappop c%d" c
  | CapLoad (c, b, o) -> Fmt.pf ppf "capload c%d,[%a+%d]" c pp_reg b o
  | CapStore (b, o, c) -> Fmt.pf ppf "capstore [%a+%d],c%d" pp_reg b o c
  | DcsGetTop r -> Fmt.pf ppf "dcsgettop %a" pp_reg r
  | DcsGetBase r -> Fmt.pf ppf "dcsgetbase %a" pp_reg r
  | DcsSetBase r -> Fmt.pf ppf "dcssetbase %a" pp_reg r
  | DcsSwitch r -> Fmt.pf ppf "dcsswitch %a" pp_reg r
  | DcsRestore r -> Fmt.pf ppf "dcsrestore %a" pp_reg r
