(* Access Protection Lists (Sec. 4.1).

   Every domain tag T is associated with an APL: the list of tags code in T
   may access, with a permission each.  A domain always has implicit write
   access to its own tag ("domain B has implicit read-write access to
   itself"). *)

type t = {
  (* (source tag, destination tag) -> permission *)
  grants : (int * int, Perm.t) Hashtbl.t;
  mutable next_tag : int;
  mutable generation : int; (* bumped on every change, invalidates caches *)
}

let create () = { grants = Hashtbl.create 64; next_tag = 1; generation = 0 }

let fresh_tag t =
  let tag = t.next_tag in
  t.next_tag <- t.next_tag + 1;
  tag

let permission t ~src ~dst =
  if src = dst then Perm.Write
  else
    match Hashtbl.find_opt t.grants (src, dst) with
    | Some p -> p
    | None -> Perm.Nil

let grant t ~src ~dst perm =
  if src = dst then invalid_arg "Apl.grant: a domain's self access is implicit";
  t.generation <- t.generation + 1;
  let hw = Perm.to_hardware perm in
  if Perm.equal hw Perm.Nil then Hashtbl.remove t.grants (src, dst)
  else Hashtbl.replace t.grants (src, dst) hw

let revoke t ~src ~dst =
  t.generation <- t.generation + 1;
  Hashtbl.remove t.grants (src, dst)

(* Drop a domain entirely: its own APL and every grant pointing at it. *)
let drop_tag t tag =
  t.generation <- t.generation + 1;
  let doomed =
    Hashtbl.fold
      (fun (src, dst) _ acc ->
        if src = tag || dst = tag then (src, dst) :: acc else acc)
      t.grants []
  in
  List.iter (Hashtbl.remove t.grants) doomed

let grants_of t ~src =
  Hashtbl.fold
    (fun (s, dst) perm acc -> if s = src then (dst, perm) :: acc else acc)
    t.grants []

let generation t = t.generation
