(** Address-space layout constants shared by the whole machine model. *)

val page_size : int

val page_shift : int

val word_size : int

(** Entry-point alignment for call-permission transfers (Sec. 4.1). *)
val entry_align : int

(** In-memory size of a capability (Sec. 4.2). *)
val cap_bytes : int

val page_of : int -> int

val page_base : int -> int

val offset_in_page : int -> int

val align_up : int -> int -> int

val is_aligned : int -> int -> bool
