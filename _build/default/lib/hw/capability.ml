(* Transient data-sharing capabilities (Sec. 4.2).

   Capabilities grant access to an address range with a permission.  They
   are created and destroyed by user code through hardware instructions,
   cannot be forged, and come in two flavours (Sec. 4.1.5 of the CODOMs
   paper, summarised in Sec. 4.2 here):

   - Synchronous: tied to the creating thread's current call frame; they
     die automatically when that frame returns, so they are safe to pass
     down a synchronous call chain (this is what isolates per-thread data
     stacks in dIPC).

   - Asynchronous: may be passed across threads and stored in memory, and
     support immediate revocation through revocation counters — the
     capability embeds (counter index, value at creation) and is valid only
     while the counter still holds that value. *)

type scope =
  | Synchronous of { thread : int; depth : int; epoch : int }
  | Asynchronous of { owner_tag : int; counter : int; value : int }

type t = { base : int; length : int; perm : Perm.t; scope : scope }

let covers cap ~addr ~len =
  addr >= cap.base && addr + len <= cap.base + cap.length

let grants cap needed = Perm.includes cap.perm needed

(* Derivation never amplifies rights (Sec. 4.2: "a new capability is always
   derived from the current domain's APL or from an existing capability"). *)
let restrict cap ~base ~length ~perm =
  if base < cap.base || base + length > cap.base + cap.length then
    Error "restrict: range exceeds parent capability"
  else if not (Perm.includes cap.perm perm) then
    Error "restrict: permission exceeds parent capability"
  else Ok { cap with base; length; perm }

let pp ppf c =
  let scope =
    match c.scope with
    | Synchronous { thread; depth; epoch } ->
        Printf.sprintf "sync(t%d d%d e%d)" thread depth epoch
    | Asynchronous { owner_tag; counter; value } ->
        Printf.sprintf "async(tag%d ctr%d=%d)" owner_tag counter value
  in
  Fmt.pf ppf "cap[0x%x+0x%x %a %s]" c.base c.length Perm.pp c.perm scope

(* --- revocation counters for asynchronous capabilities --- *)

module Revocation = struct
  type table = { counters : (int * int, int) Hashtbl.t }

  let create () = { counters = Hashtbl.create 64 }

  let value t ~tag ~counter =
    match Hashtbl.find_opt t.counters (tag, counter) with
    | Some v -> v
    | None -> 0

  (* Immediate revocation: bump the counter; every capability stamped with
     the old value becomes invalid everywhere at once. *)
  let revoke t ~tag ~counter =
    Hashtbl.replace t.counters (tag, counter) (value t ~tag ~counter + 1)
end
