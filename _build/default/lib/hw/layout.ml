(* Address-space layout constants shared by the whole machine model. *)

let page_size = 4096

let page_shift = 12

let word_size = 8

(* "Any code address used with [Call] permission is an entry point if it is
   aligned to a system-configurable value" (Sec. 4.1). *)
let entry_align = 64

(* Capabilities occupy 32 B in memory (Sec. 4.2). *)
let cap_bytes = 32

let page_of addr = addr lsr page_shift

let page_base addr = addr land lnot (page_size - 1)

let offset_in_page addr = addr land (page_size - 1)

let align_up addr align = (addr + align - 1) land lnot (align - 1)

let is_aligned addr align = addr land (align - 1) = 0
