lib/workloads/microbench.mli: Dipc_sim
