lib/workloads/sensitivity.ml:
