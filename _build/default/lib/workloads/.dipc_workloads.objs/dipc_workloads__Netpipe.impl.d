lib/workloads/netpipe.ml: Dipc_sim Float
