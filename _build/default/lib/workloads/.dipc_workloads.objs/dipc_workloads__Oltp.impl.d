lib/workloads/oltp.ml: Dipc_kernel Dipc_sim Float Printf Queue
