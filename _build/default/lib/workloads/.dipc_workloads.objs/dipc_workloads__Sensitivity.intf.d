lib/workloads/sensitivity.mli:
