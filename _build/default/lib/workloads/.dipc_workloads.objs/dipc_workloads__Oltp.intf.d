lib/workloads/oltp.mli: Dipc_sim
