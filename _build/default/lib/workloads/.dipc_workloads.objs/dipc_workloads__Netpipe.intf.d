lib/workloads/netpipe.mli:
