lib/workloads/microbench.ml: Array Dipc_ipc Dipc_kernel Dipc_sim String
