(** Device-driver isolation on Infiniband (Sec. 7.3, Figure 7): a
    netpipe-style latency/bandwidth model where each message involves a
    fixed number of application<->driver interactions and isolating the
    driver interposes one mechanism on each of them. *)

type mechanism = Baseline | Kernel_driver | Sem_ipc | Pipe_ipc | Dipc_proc | Dipc_same

val mechanism_name : mechanism -> string

val interactions_per_message : int

(** Measured round-trip/call costs the model is evaluated against. *)
type costs = {
  sem_roundtrip : float;
  pipe_roundtrip : float;
  dipc_proc_call : float;
  dipc_same_call : float;
}

(** One-way message latency, ns. *)
val latency : costs -> mechanism -> bytes:int -> float

val latency_overhead_pct : costs -> mechanism -> bytes:int -> float

(** Streaming bandwidth, bytes/ns. *)
val bandwidth : costs -> mechanism -> bytes:int -> float

val bandwidth_overhead_pct : costs -> mechanism -> bytes:int -> float
