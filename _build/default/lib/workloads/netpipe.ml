(* Device driver isolation on Infiniband (Sec. 7.3, Figure 7).

   A netpipe-style latency/bandwidth model of the Mellanox NIC accessed
   through a user-level driver (rsocket).  Each message involves a fixed
   number of application<->driver interactions (post TX, TX completion,
   post RX, RX completion); isolating the driver interposes one mechanism
   on each interaction:

   - none (baseline): direct user-level driver calls;
   - kernel: the driver moves into the kernel, each interaction is a
     syscall plus the kernel driver glue;
   - sem / pipe: the driver is a separate process, each interaction is a
     synchronous IPC round trip (measured on the kernel model);
   - dIPC / dIPC+proc: each interaction is a measured dIPC call.

   No additional data copies in any configuration, "just as is done in the
   original driver". *)

module Costs = Dipc_sim.Costs

type mechanism = Baseline | Kernel_driver | Sem_ipc | Pipe_ipc | Dipc_proc | Dipc_same

let mechanism_name = function
  | Baseline -> "none (user-level driver)"
  | Kernel_driver -> "Kernel"
  | Sem_ipc -> "Semaphore (=CPU)"
  | Pipe_ipc -> "Pipe (=CPU)"
  | Dipc_proc -> "dIPC +proc"
  | Dipc_same -> "dIPC"

(* Driver interactions per message on the send+receive path. *)
let interactions_per_message = 4

(* Kernel driver glue per interaction beyond the syscall itself. *)
let kernel_driver_glue = 110.0

type costs = {
  sem_roundtrip : float; (* measured, =CPU *)
  pipe_roundtrip : float;
  dipc_proc_call : float; (* measured on the machine model *)
  dipc_same_call : float;
}

let interposition_cost c = function
  | Baseline -> 0.
  | Kernel_driver -> Costs.syscall_total +. kernel_driver_glue
  | Sem_ipc -> c.sem_roundtrip
  | Pipe_ipc -> c.pipe_roundtrip
  | Dipc_proc -> c.dipc_proc_call
  | Dipc_same -> c.dipc_same_call

(* One-way message latency for [bytes]. *)
let latency c mech ~bytes =
  let wire = float_of_int bytes /. Costs.ib_bytes_per_ns in
  let overhead =
    float_of_int interactions_per_message *. interposition_cost c mech
  in
  Costs.ib_base_latency +. wire
  +. Costs.ib_per_request_driver +. overhead

let latency_overhead_pct c mech ~bytes =
  let base = latency c Baseline ~bytes in
  (latency c mech ~bytes -. base) /. base *. 100.

(* Streaming bandwidth: messages pipeline on the wire, but the per-message
   CPU path (driver + interposition) cannot overlap with itself, so the
   effective inter-message gap is the larger of the two. *)
let bandwidth c mech ~bytes =
  let wire = float_of_int bytes /. Costs.ib_bytes_per_ns in
  let cpu =
    Costs.ib_per_request_driver
    +. (float_of_int interactions_per_message *. interposition_cost c mech)
  in
  float_of_int bytes /. Float.max wire cpu

let bandwidth_overhead_pct c mech ~bytes =
  let base = bandwidth c Baseline ~bytes in
  (base -. bandwidth c mech ~bytes) /. base *. 100.
