(* Sensitivity analyses of Sec. 7.5.

   (a) Hardware domain-crossing overheads: given the measured calls per
   operation and the end-to-end dIPC speedup, how much slower could a
   cross-domain call get before dIPC loses its benefit?  The paper
   reports 211 calls/op at 252 ns average and a 14x margin.

   (b) Capability loads: assuming *every* cross-domain memory access pays
   an extra capability load (the worst case without compiler support),
   what throughput overhead results, and does a speedup survive?  The
   paper models 2% cross-domain accesses -> 12% overhead -> 1.59x. *)

type crossing_analysis = {
  ca_calls_per_op : int;
  ca_call_ns : float;
  ca_linux_op_ns : float; (* measured op latency under Linux *)
  ca_dipc_op_ns : float; (* measured op latency under dIPC *)
  ca_max_call_ns : float; (* call cost at which dIPC == Linux *)
  ca_slowdown_margin : float; (* ca_max_call_ns / ca_call_ns *)
}

let crossing ~calls_per_op ~call_ns ~linux_op_ns ~dipc_op_ns =
  (* dIPC time excluding crossings + calls * x = Linux time. *)
  let base = dipc_op_ns -. (float_of_int calls_per_op *. call_ns) in
  let max_call = (linux_op_ns -. base) /. float_of_int calls_per_op in
  {
    ca_calls_per_op = calls_per_op;
    ca_call_ns = call_ns;
    ca_linux_op_ns = linux_op_ns;
    ca_dipc_op_ns = dipc_op_ns;
    ca_max_call_ns = max_call;
    ca_slowdown_margin = max_call /. call_ns;
  }

type capability_analysis = {
  cl_cross_access_frac : float; (* fraction of accesses crossing domains *)
  cl_accesses_per_op : float;
  cl_cap_load_ns : float; (* cost of one extra capability load *)
  cl_overhead_frac : float; (* modelled throughput overhead *)
  cl_residual_speedup : float; (* dIPC speedup after paying it *)
}

(* Worst case: every cross-domain access loads a 32 B capability from
   memory first; the hit ratios reflect the macro-benchmark's measured
   cache behaviour under pressure (Sec. 7.5 "if we account for its average
   cache hit ratios and latencies"). *)
let capability_loads ~cross_access_frac ~accesses_per_op ~dipc_op_ns ~speedup =
  let l1_hit = 0.50 and l2_hit = 0.20 in
  let cap_load =
    (l1_hit *. 1.0) +. (l2_hit *. 4.0) +. ((1. -. l1_hit -. l2_hit) *. 30.)
  in
  let extra = cross_access_frac *. accesses_per_op *. cap_load in
  let overhead = extra /. dipc_op_ns in
  {
    cl_cross_access_frac = cross_access_frac;
    cl_accesses_per_op = accesses_per_op;
    cl_cap_load_ns = cap_load;
    cl_overhead_frac = overhead;
    cl_residual_speedup = speedup /. (1. +. overhead);
  }
