(** Sensitivity analyses of Sec. 7.5: how much slower could hardware
    domain crossings get before dIPC loses its benefit, and what would
    worst-case capability loads cost. *)

type crossing_analysis = {
  ca_calls_per_op : int;
  ca_call_ns : float;
  ca_linux_op_ns : float;
  ca_dipc_op_ns : float;
  ca_max_call_ns : float;  (** call cost at which dIPC == Linux *)
  ca_slowdown_margin : float;  (** max_call / call *)
}

val crossing :
  calls_per_op:int ->
  call_ns:float ->
  linux_op_ns:float ->
  dipc_op_ns:float ->
  crossing_analysis

type capability_analysis = {
  cl_cross_access_frac : float;
  cl_accesses_per_op : float;
  cl_cap_load_ns : float;
  cl_overhead_frac : float;
  cl_residual_speedup : float;
}

(** Worst case: every cross-domain access loads a capability first. *)
val capability_loads :
  cross_access_frac:float ->
  accesses_per_op:float ->
  dipc_op_ns:float ->
  speedup:float ->
  capability_analysis
