(** L4 Fiasco.OC-style synchronous IPC (Sec. 2.2): one syscall performs
    send+receive, small payloads travel in registers, and the kernel
    switches directly to the partner thread. *)

module Kernel = Dipc_kernel.Kernel

(** Payload bytes that fit in registers; the rest is copied. *)
val register_payload : int

type t

val create : Kernel.t -> t

(** ipc_call: send a request of [bytes] and block for the reply. *)
val call : t -> Kernel.thread -> bytes:int -> unit

(** ipc_reply_and_wait: answer the previous caller, await the next
    request; returns its size. *)
val reply_and_wait : t -> Kernel.thread -> int

(** ipc_wait: initial server wait. *)
val wait : t -> Kernel.thread -> int
