(* "dIPC - User RPC" (Sec. 7.2): cross-CPU RPC semantics implemented almost
   entirely at user level on top of dIPC's shared address space.

   The server thread (on another CPU) copies the caller's arguments at user
   level — no kernel transfer, so no page-mapping checks — executes the
   handler and copies results back; the OS is only used to synchronize
   threads of the same (dIPC-merged) process via futexes.  The paper
   measures this at almost twice the speed of socket RPC. *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost
module Kernel = Dipc_kernel.Kernel
module Futex = Dipc_kernel.Futex

type t = {
  kern : Kernel.t;
  req : Sem_channel.sem;
  resp : Sem_channel.sem;
  mutable request_bytes : int;
}

let create kern =
  {
    kern;
    req = Sem_channel.sem_create kern;
    resp = Sem_channel.sem_create kern;
    request_bytes = 0;
  }

(* Client: publish the argument by reference (shared address space) and
   wait for the service thread. *)
let call t th ~bytes =
  Kernel.consume t.kern th Breakdown.User_code (Memcost.write_buffer bytes);
  t.request_bytes <- bytes;
  Sem_channel.sem_post t.kern th t.req;
  Sem_channel.sem_wait t.kern th t.resp

(* Server: take a private user-level copy of the arguments (the RPC
   immutability contract), handle, and reply. *)
let serve t th handler =
  Sem_channel.sem_wait t.kern th t.req;
  let bytes = t.request_bytes in
  Kernel.consume t.kern th Breakdown.User_code (Memcost.user_copy bytes);
  handler bytes;
  Sem_channel.sem_post t.kern th t.resp
