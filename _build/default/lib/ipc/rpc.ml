(* Local RPC in the style of glibc's rpcgen over UNIX sockets (Sec. 2.2).

   The client stub marshals the argument with the XDR codec, sends it over
   a UNIX socket, and blocks for the reply; the server loop receives,
   demultiplexes by procedure number, demarshals, runs the handler, and
   marshals the response back.  All of the "(de)marshal and (de)multiplex"
   user-code overhead the paper calls out runs here for real. *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Kernel = Dipc_kernel.Kernel
module Unix_socket = Dipc_kernel.Unix_socket

type request = { proc_num : int; arg : string }

type wire = Request of request | Response of string

type t = {
  kern : Kernel.t;
  to_server : wire Unix_socket.t;
  to_client : wire Unix_socket.t;
}

let create kern =
  { kern; to_server = Unix_socket.create kern; to_client = Unix_socket.create kern }

let charge_marshal t th ~fields ~bytes =
  Kernel.consume t.kern th Breakdown.User_code (Xdr.marshal_cost ~fields ~bytes);
  (* Fixed per-call stub work: buffer management, credentials, XID. *)
  Kernel.consume t.kern th Breakdown.User_code (Costs.rpc_user_marshal /. 2.)

(* Client stub: call procedure [proc_num] passing [arg]. *)
let call t th ~proc_num ~arg =
  let e = Xdr.encoder () in
  Xdr.enc_int e proc_num;
  Xdr.enc_opaque e arg;
  let payload = Xdr.to_string e in
  charge_marshal t th ~fields:(Xdr.encoded_fields e) ~bytes:(String.length payload);
  Unix_socket.send t.to_server th ~size:(String.length payload)
    (Request { proc_num; arg });
  let reply, size = Unix_socket.recv t.to_client th in
  match reply with
  | Response r ->
      let d = Xdr.decoder r in
      let result = Xdr.dec_opaque d in
      charge_marshal t th ~fields:(Xdr.decoded_fields d) ~bytes:size;
      result
  | Request _ -> invalid_arg "Rpc.call: protocol violation"

(* Server: handle exactly one request using [dispatch]. *)
let serve_one t th dispatch =
  let msg, size = Unix_socket.recv t.to_server th in
  match msg with
  | Request { proc_num; arg } ->
      (* Demultiplex into the handler table. *)
      Kernel.consume t.kern th Breakdown.User_code Costs.rpc_user_dispatch;
      charge_marshal t th ~fields:2 ~bytes:size;
      let result = dispatch ~proc_num ~arg in
      let e = Xdr.encoder () in
      Xdr.enc_opaque e result;
      let payload = Xdr.to_string e in
      charge_marshal t th ~fields:(Xdr.encoded_fields e)
        ~bytes:(String.length payload);
      Unix_socket.send t.to_client th ~size:(String.length payload)
        (Response payload)
  | Response _ -> invalid_arg "Rpc.serve_one: protocol violation"
