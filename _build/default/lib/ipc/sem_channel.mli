(** "Sem.": POSIX semaphores (futex-based) communicating through a
    pre-shared buffer (Sec. 2.2) — a synchronous request/response channel
    with no kernel copies, but futex syscalls and context switches on the
    rendezvous. *)

module Kernel = Dipc_kernel.Kernel

(** A counting semaphore: user-space fast path plus a futex. *)
type sem = { futex : Dipc_kernel.Futex.t; count : int ref }

val sem_create : Kernel.t -> sem

val sem_post : Kernel.t -> Kernel.thread -> sem -> unit

val sem_wait : Kernel.t -> Kernel.thread -> sem -> unit

type t = {
  kern : Kernel.t;
  req : sem;
  resp : sem;
  mutable request_bytes : int;  (** size currently in the shared buffer *)
}

val create : Kernel.t -> t

(** Client: populate the shared buffer with [bytes], post, await reply. *)
val call : t -> Kernel.thread -> bytes:int -> unit

(** Server: await a request, consume it, run the handler, reply. *)
val serve : t -> Kernel.thread -> (int -> unit) -> unit
