(* Request/response over a pair of POSIX pipes: the data pays two kernel
   copies in each direction (argument immutability enforced by copying,
   Sec. 2.2). *)

module Breakdown = Dipc_sim.Breakdown
module Memcost = Dipc_sim.Memcost
module Kernel = Dipc_kernel.Kernel
module Pipe = Dipc_kernel.Pipe

type t = { kern : Kernel.t; to_server : Pipe.t; to_client : Pipe.t }

let create kern =
  { kern; to_server = Pipe.create kern; to_client = Pipe.create kern }

(* Client side of one synchronous call with [bytes] of argument; the reply
   is a one-byte acknowledgement. *)
let call t th ~bytes =
  (* Produce the argument, then hand it to the kernel. *)
  Kernel.consume t.kern th Breakdown.User_code (Memcost.write_buffer bytes);
  Pipe.write t.to_server th ~bytes;
  Pipe.read t.to_client th ~bytes:1

(* Server side: receive a request of known size, handle it, acknowledge.
   (Real servers learn the size from a header; the bench protocol fixes it
   per experiment.) *)
let serve t th ~bytes handler =
  Pipe.read t.to_server th ~bytes;
  Kernel.consume t.kern th Breakdown.User_code (Memcost.read_buffer bytes);
  handler bytes;
  Pipe.write t.to_client th ~bytes:1
