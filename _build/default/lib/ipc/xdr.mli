(** XDR-style marshalling codec in the spirit of glibc's rpcgen output;
    local RPC runs it for real so the (de)marshalling user time of
    Figure 2 corresponds to executed code. *)

type encoder

val encoder : unit -> encoder

val enc_int : encoder -> int -> unit

val enc_bool : encoder -> bool -> unit

(** Length-prefixed bytes, padded to 4-byte multiples like real XDR. *)
val enc_opaque : encoder -> string -> unit

val enc_string : encoder -> string -> unit

val enc_list : encoder -> (encoder -> 'a -> unit) -> 'a list -> unit

val to_string : encoder -> string

val encoded_fields : encoder -> int

type decoder

exception Decode_error of string

val decoder : string -> decoder

val dec_int : decoder -> int

val dec_bool : decoder -> bool

val dec_opaque : decoder -> string

val dec_string : decoder -> string

val dec_list : decoder -> (decoder -> 'a) -> 'a list

val decoded_fields : decoder -> int

(** Modelled cost of a marshalling pass: per-field work plus the
    streaming copy of the payload. *)
val marshal_cost : fields:int -> bytes:int -> float
