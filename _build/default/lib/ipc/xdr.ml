(* XDR-style marshalling codec, in the spirit of glibc's rpcgen output.

   This is a real codec (it round-trips values through bytes); local RPC
   uses it so the (de)marshalling work that Figure 2 charges to "user code"
   corresponds to code that actually runs. *)

type encoder = { buf : Buffer.t; mutable fields : int }

let encoder () = { buf = Buffer.create 64; fields = 0 }

let pad4 n = (4 - (n land 3)) land 3

let enc_int e v =
  e.fields <- e.fields + 1;
  Buffer.add_int64_be e.buf (Int64.of_int v)

let enc_bool e v = enc_int e (if v then 1 else 0)

let enc_opaque e s =
  e.fields <- e.fields + 1;
  Buffer.add_int32_be e.buf (Int32.of_int (String.length s));
  Buffer.add_string e.buf s;
  for _ = 1 to pad4 (String.length s) do
    Buffer.add_char e.buf '\000'
  done

let enc_string = enc_opaque

let enc_list e f items =
  enc_int e (List.length items);
  List.iter (f e) items

let to_string e = Buffer.contents e.buf

let encoded_fields e = e.fields

type decoder = { data : string; mutable pos : int; mutable dfields : int }

exception Decode_error of string

let decoder data = { data; pos = 0; dfields = 0 }

let need d n =
  if d.pos + n > String.length d.data then raise (Decode_error "short buffer")

let dec_int d =
  need d 8;
  d.dfields <- d.dfields + 1;
  let v = String.get_int64_be d.data d.pos in
  d.pos <- d.pos + 8;
  Int64.to_int v

let dec_bool d = dec_int d <> 0

let dec_opaque d =
  need d 4;
  d.dfields <- d.dfields + 1;
  let len = Int32.to_int (String.get_int32_be d.data d.pos) in
  d.pos <- d.pos + 4;
  need d len;
  let s = String.sub d.data d.pos len in
  d.pos <- d.pos + len + pad4 len;
  s

let dec_string = dec_opaque

let dec_list d f =
  let n = dec_int d in
  if n < 0 || n > 1_000_000 then raise (Decode_error "bad list length");
  List.init n (fun _ -> f d)

let decoded_fields d = d.dfields

(* Modelled cost of the marshalling pass itself: per-field work plus the
   streaming copy of the payload. *)
let marshal_cost ~fields ~bytes =
  (float_of_int fields *. 15.0) +. Dipc_sim.Memcost.user_copy bytes
