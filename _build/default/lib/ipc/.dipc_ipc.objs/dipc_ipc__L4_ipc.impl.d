lib/ipc/l4_ipc.ml: Dipc_kernel Dipc_sim
