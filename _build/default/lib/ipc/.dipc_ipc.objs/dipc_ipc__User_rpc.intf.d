lib/ipc/user_rpc.mli: Dipc_kernel
