lib/ipc/pipe_channel.ml: Dipc_kernel Dipc_sim
