lib/ipc/sem_channel.ml: Dipc_kernel Dipc_sim
