lib/ipc/sem_channel.mli: Dipc_kernel
