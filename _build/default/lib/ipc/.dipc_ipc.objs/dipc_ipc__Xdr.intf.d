lib/ipc/xdr.mli:
