lib/ipc/tcp_rpc.ml: Dipc_kernel Dipc_sim Rpc String Xdr
