lib/ipc/pipe_channel.mli: Dipc_kernel
