lib/ipc/user_rpc.ml: Dipc_kernel Dipc_sim Sem_channel
