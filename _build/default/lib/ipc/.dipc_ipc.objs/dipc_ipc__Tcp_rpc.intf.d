lib/ipc/tcp_rpc.mli: Dipc_kernel
