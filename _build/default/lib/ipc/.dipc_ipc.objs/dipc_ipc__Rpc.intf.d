lib/ipc/rpc.mli: Dipc_kernel
