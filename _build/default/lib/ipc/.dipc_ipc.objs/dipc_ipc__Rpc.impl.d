lib/ipc/rpc.ml: Dipc_kernel Dipc_sim String Xdr
