lib/ipc/xdr.ml: Buffer Dipc_sim Int32 Int64 List String
