lib/ipc/l4_ipc.mli: Dipc_kernel
