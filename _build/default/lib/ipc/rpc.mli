(** Local RPC in the style of glibc's rpcgen over UNIX sockets
    (Sec. 2.2): XDR marshalling, socket transport, procedure-number
    demultiplexing — the primitive dIPC is 64x faster than. *)

module Kernel = Dipc_kernel.Kernel

type request = { proc_num : int; arg : string }

type t

val create : Kernel.t -> t

(** Client stub: marshal, send, await and demarshal the reply. *)
val call : t -> Kernel.thread -> proc_num:int -> arg:string -> string

(** Server: receive one request, dispatch it, reply. *)
val serve_one : t -> Kernel.thread -> (proc_num:int -> arg:string -> string) -> unit
