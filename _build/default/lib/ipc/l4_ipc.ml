(* L4 Fiasco.OC-style synchronous IPC (Sec. 2.2).

   One syscall performs send+receive; the payload travels inlined in
   registers (no memory copies for small messages) and the kernel switches
   directly to the partner thread instead of going through the general
   scheduler path — which is why L4 "successfully minimizes the kernel
   software overheads" yet remains 474x slower than a function call. *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost
module Kernel = Dipc_kernel.Kernel

(* Kernel path of one message beyond entry/exit: rendezvous bookkeeping,
   capability/right checks, direct switch preparation. *)
let per_message_kernel = 180.0

(* Registers carry up to this much payload; the rest goes through a
   (bounced) buffer copy. *)
let register_payload = 64

type t = {
  kern : Kernel.t;
  mutable server_waiting : bool;
  server_q : int Kernel.Sleepq.q; (* server waits for request size *)
  client_q : unit Kernel.Sleepq.q; (* client waits for the reply *)
  mutable pending : int option; (* request posted before server was ready *)
}

let create kern =
  {
    kern;
    server_waiting = false;
    server_q = Kernel.Sleepq.create ();
    client_q = Kernel.Sleepq.create ();
    pending = None;
  }

let charge_payload t th bytes =
  if bytes > register_payload then
    Kernel.consume t.kern th Breakdown.Kernel
      (Memcost.kernel_copy (bytes - register_payload))

(* ipc_call: send the request and block for the reply, one syscall. *)
let call t th ~bytes =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel per_message_kernel;
  charge_payload t th bytes;
  if t.server_waiting then begin
    t.server_waiting <- false;
    ignore (Kernel.wake_one t.kern ~waker:th t.server_q bytes)
  end
  else t.pending <- Some bytes;
  Kernel.block_on t.kern th t.client_q

(* ipc_reply_and_wait: answer the previous caller and wait for the next
   request; returns its size. *)
let reply_and_wait t th =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel per_message_kernel;
  ignore (Kernel.wake_one t.kern ~waker:th t.client_q ());
  match t.pending with
  | Some bytes ->
      t.pending <- None;
      bytes
  | None ->
      t.server_waiting <- true;
      Kernel.block_on t.kern th t.server_q

(* ipc_wait: initial server wait (no one to reply to yet). *)
let wait t th =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel per_message_kernel;
  match t.pending with
  | Some bytes ->
      t.pending <- None;
      bytes
  | None ->
      t.server_waiting <- true;
      Kernel.block_on t.kern th t.server_q
