(* RPC over loopback TCP/IP — the facility the paper's footnote 1 sets
   aside ("UNIX sockets ... faster than TCP/IP due to header processing
   and additional intermediate data copies").  Implemented so the claim
   is checkable: the same rpcgen-style stubs as [Rpc], but the transport
   pays TCP/IP segment processing and an extra kernel copy per hop. *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost
module Kernel = Dipc_kernel.Kernel

let mss = 1448 (* loopback MTU 1500 minus headers *)

(* TCP/IP header processing per segment, each side (checksum, sequence
   bookkeeping, ack generation). *)
let per_segment_kernel = 380.0

type wire = Request of Rpc.request | Response of string

type t = {
  kern : Kernel.t;
  to_server : wire Dipc_kernel.Unix_socket.t; (* queue mechanics reused *)
  to_client : wire Dipc_kernel.Unix_socket.t;
}

let create kern =
  {
    kern;
    to_server = Dipc_kernel.Unix_socket.create kern;
    to_client = Dipc_kernel.Unix_socket.create kern;
  }

let segments bytes = max 1 ((bytes + mss - 1) / mss)

(* The TCP path on top of the socket transfer: segment processing plus
   the extra skb-to-socket-buffer copy UNIX sockets avoid. *)
let charge_tcp t th ~bytes =
  Kernel.consume t.kern th Breakdown.Kernel
    (float_of_int (segments bytes) *. per_segment_kernel);
  Kernel.consume t.kern th Breakdown.Kernel (Memcost.kernel_copy bytes)

let charge_marshal t th ~fields ~bytes =
  Kernel.consume t.kern th Breakdown.User_code (Xdr.marshal_cost ~fields ~bytes);
  Kernel.consume t.kern th Breakdown.User_code (Costs.rpc_user_marshal /. 2.)

let call t th ~proc_num ~arg =
  let e = Xdr.encoder () in
  Xdr.enc_int e proc_num;
  Xdr.enc_opaque e arg;
  let payload = Xdr.to_string e in
  let bytes = String.length payload in
  charge_marshal t th ~fields:(Xdr.encoded_fields e) ~bytes;
  charge_tcp t th ~bytes;
  Dipc_kernel.Unix_socket.send t.to_server th ~size:bytes
    (Request { Rpc.proc_num; arg });
  let reply, size = Dipc_kernel.Unix_socket.recv t.to_client th in
  charge_tcp t th ~bytes:size;
  match reply with
  | Response r ->
      let d = Xdr.decoder r in
      let result = Xdr.dec_opaque d in
      charge_marshal t th ~fields:(Xdr.decoded_fields d) ~bytes:size;
      result
  | Request _ -> invalid_arg "Tcp_rpc.call: protocol violation"

let serve_one t th dispatch =
  let msg, size = Dipc_kernel.Unix_socket.recv t.to_server th in
  match msg with
  | Request { Rpc.proc_num; arg } ->
      charge_tcp t th ~bytes:size;
      Kernel.consume t.kern th Breakdown.User_code Costs.rpc_user_dispatch;
      charge_marshal t th ~fields:2 ~bytes:size;
      let result = dispatch ~proc_num ~arg in
      let e = Xdr.encoder () in
      Xdr.enc_opaque e result;
      let payload = Xdr.to_string e in
      let bytes = String.length payload in
      charge_marshal t th ~fields:(Xdr.encoded_fields e) ~bytes;
      charge_tcp t th ~bytes;
      Dipc_kernel.Unix_socket.send t.to_client th ~size:bytes (Response payload)
  | Response _ -> invalid_arg "Tcp_rpc.serve_one: protocol violation"
