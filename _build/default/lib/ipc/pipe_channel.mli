(** Request/response over a pair of POSIX pipes: two kernel copies per
    direction (Sec. 2.2). *)

module Kernel = Dipc_kernel.Kernel

type t

val create : Kernel.t -> t

(** Client: send [bytes], await a one-byte acknowledgement. *)
val call : t -> Kernel.thread -> bytes:int -> unit

(** Server: receive a request of known size, handle, acknowledge. *)
val serve : t -> Kernel.thread -> bytes:int -> (int -> unit) -> unit
