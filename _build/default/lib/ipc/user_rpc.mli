(** "dIPC - User RPC" (Sec. 7.2): cross-CPU RPC semantics implemented
    almost entirely at user level on a dIPC shared address space — the
    server thread copies arguments in user space, and the OS is only used
    to synchronise threads of one process. *)

module Kernel = Dipc_kernel.Kernel

type t

val create : Kernel.t -> t

(** Client: publish [bytes] by reference and wait for the service
    thread. *)
val call : t -> Kernel.thread -> bytes:int -> unit

(** Server: take a private user-level copy of the arguments, handle,
    reply. *)
val serve : t -> Kernel.thread -> (int -> unit) -> unit
