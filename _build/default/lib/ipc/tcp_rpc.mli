(** RPC over loopback TCP/IP (the paper's footnote 1 baseline): the same
    rpcgen-style stubs as {!Rpc}, but the transport pays per-segment
    TCP/IP header processing and an extra kernel copy per hop. *)

module Kernel = Dipc_kernel.Kernel

(** Loopback maximum segment size. *)
val mss : int

type t

val create : Kernel.t -> t

val call : t -> Kernel.thread -> proc_num:int -> arg:string -> string

val serve_one : t -> Kernel.thread -> (proc_num:int -> arg:string -> string) -> unit
