(* "Sem.": POSIX semaphores (futex-based) communicating through a
   pre-shared buffer (Sec. 2.2).

   A synchronous request/response channel: the client writes the argument
   into the shared buffer, posts the request semaphore and waits on the
   response one; the server mirrors that.  There are no kernel copies —
   but the application itself must populate and read the shared buffer,
   and both sides pay the futex syscalls and the context switches. *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost
module Futex = Dipc_kernel.Futex
module Kernel = Dipc_kernel.Kernel

type sem = { futex : Futex.t; count : int ref }

let sem_create kern =
  let count = ref 0 in
  { futex = Futex.create kern ~value:count; count }

(* sem_post: user-space atomic, futex wake only if someone may sleep. *)
let sem_post t th sem =
  Kernel.consume t th Breakdown.User_code Costs.futex_user_fastpath;
  incr sem.count;
  if Futex.waiters sem.futex > 0 || !(sem.count) <= 1 then
    ignore (Futex.wake sem.futex th ~n:1)

(* sem_wait: user-space atomic fast path, futex wait loop otherwise. *)
let sem_wait t th sem =
  Kernel.consume t th Breakdown.User_code Costs.futex_user_fastpath;
  while !(sem.count) <= 0 do
    Futex.wait sem.futex th ~expected:0
  done;
  decr sem.count

type t = {
  kern : Kernel.t;
  req : sem;
  resp : sem;
  mutable request_bytes : int; (* size currently in the shared buffer *)
}

let create kern =
  { kern; req = sem_create kern; resp = sem_create kern; request_bytes = 0 }

(* Client side of one synchronous call with [bytes] of argument. *)
let call t th ~bytes =
  (* Populate the shared buffer (the copy the programmer cannot avoid). *)
  Kernel.consume t.kern th Breakdown.User_code (Memcost.write_buffer bytes);
  t.request_bytes <- bytes;
  sem_post t.kern th t.req;
  sem_wait t.kern th t.resp

(* Server side: wait for a request, run [handler bytes], respond. *)
let serve t th handler =
  sem_wait t.kern th t.req;
  let bytes = t.request_bytes in
  (* Consume the argument from the shared buffer. *)
  Kernel.consume t.kern th Breakdown.User_code (Memcost.read_buffer bytes);
  handler bytes;
  sem_post t.kern th t.resp
