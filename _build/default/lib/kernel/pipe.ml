(* POSIX pipe model: a bounded in-kernel byte buffer with two copies per
   transfer (user -> kernel at write, kernel -> user at read), the classic
   argument-immutability cost of Sec. 2.2. *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost

let default_capacity = 65536

type t = {
  kern : Kernel.t;
  capacity : int;
  mutable buffered : int;
  readers : unit Kernel.Sleepq.q; (* waiting for data *)
  writers : unit Kernel.Sleepq.q; (* waiting for space *)
}

let create ?(capacity = default_capacity) kern =
  {
    kern;
    capacity;
    buffered = 0;
    readers = Kernel.Sleepq.create ();
    writers = Kernel.Sleepq.create ();
  }

(* Write [bytes]; blocks while the buffer is full. *)
let write t th ~bytes =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel Costs.pipe_msg;
  let remaining = ref bytes in
  while !remaining > 0 do
    while t.buffered >= t.capacity do
      Kernel.block_on t.kern th t.writers
    done;
    let chunk = min !remaining (t.capacity - t.buffered) in
    Kernel.consume t.kern th Breakdown.Kernel (Memcost.kernel_copy chunk);
    t.buffered <- t.buffered + chunk;
    remaining := !remaining - chunk;
    ignore (Kernel.wake_one t.kern ~waker:th t.readers ())
  done

(* Read exactly [bytes]; blocks until all of it has streamed through. *)
let read t th ~bytes =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel Costs.pipe_msg;
  let remaining = ref bytes in
  while !remaining > 0 do
    while t.buffered = 0 do
      Kernel.block_on t.kern th t.readers
    done;
    let chunk = min !remaining t.buffered in
    Kernel.consume t.kern th Breakdown.Kernel (Memcost.kernel_copy chunk);
    t.buffered <- t.buffered - chunk;
    remaining := !remaining - chunk;
    ignore (Kernel.wake_one t.kern ~waker:th t.writers ())
  done

let buffered t = t.buffered
