(* UNIX domain socket model (SOCK_SEQPACKET flavour): a kernel message
   queue carrying a payload and its size.  This is the transport under
   local RPC (Sec. 2.2: "RPC on UNIX sockets using glibc's rpcgen") and
   under dIPC's default entry-resolution hook (Sec. 6.2.1). *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost

type 'a message = { payload : 'a; size : int }

type 'a t = {
  kern : Kernel.t;
  queue : 'a message Queue.t;
  max_queued : int;
  receivers : 'a message Kernel.Sleepq.q;
  senders : unit Kernel.Sleepq.q;
}

let create ?(max_queued = 64) kern =
  {
    kern;
    queue = Queue.create ();
    max_queued;
    receivers = Kernel.Sleepq.create ();
    senders = Kernel.Sleepq.create ();
  }

let send t th ~size payload =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel Costs.unix_socket_msg;
  (* Copy user data into the kernel skb. *)
  Kernel.consume t.kern th Breakdown.Kernel (Memcost.kernel_copy size);
  while Queue.length t.queue >= t.max_queued do
    Kernel.block_on t.kern th t.senders
  done;
  let msg = { payload; size } in
  if not (Kernel.wake_one t.kern ~waker:th t.receivers msg) then
    Queue.add msg t.queue

let recv t th =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel Costs.unix_socket_msg;
  let msg =
    match Queue.take_opt t.queue with
    | Some msg ->
        ignore (Kernel.wake_one t.kern ~waker:th t.senders ());
        msg
    | None -> Kernel.block_on t.kern th t.receivers
  in
  (* Copy from the kernel skb into the receiver's buffer. *)
  Kernel.consume t.kern th Breakdown.Kernel (Memcost.kernel_copy msg.size);
  (msg.payload, msg.size)

let pending t = Queue.length t.queue
