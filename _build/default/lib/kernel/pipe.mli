(** POSIX pipe model: a bounded in-kernel byte buffer paying two copies
    per transfer (argument immutability by copying, Sec. 2.2). *)

val default_capacity : int

type t

val create : ?capacity:int -> Kernel.t -> t

(** Write [bytes]; blocks while the buffer is full. *)
val write : t -> Kernel.thread -> bytes:int -> unit

(** Read exactly [bytes]; blocks until it all streamed through. *)
val read : t -> Kernel.thread -> bytes:int -> unit

val buffered : t -> int
