lib/kernel/unix_socket.ml: Dipc_sim Kernel Queue
