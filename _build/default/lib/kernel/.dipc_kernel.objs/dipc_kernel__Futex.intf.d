lib/kernel/futex.mli: Kernel
