lib/kernel/kernel.mli: Dipc_sim
