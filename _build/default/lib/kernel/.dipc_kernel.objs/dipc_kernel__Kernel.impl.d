lib/kernel/kernel.ml: Array Dipc_sim Hashtbl Queue
