lib/kernel/pipe.ml: Dipc_sim Kernel
