lib/kernel/futex.ml: Dipc_sim Kernel
