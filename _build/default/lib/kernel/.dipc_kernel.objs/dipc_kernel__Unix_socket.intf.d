lib/kernel/unix_socket.mli: Kernel
