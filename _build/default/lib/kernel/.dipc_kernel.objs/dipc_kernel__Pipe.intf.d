lib/kernel/pipe.mli: Kernel
