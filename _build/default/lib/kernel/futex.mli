(** Futex: the kernel half of POSIX semaphores/mutexes (Sec. 2.2's "Sem."
    primitive).  Callers charge the user-space fast path; this module
    charges the syscall and kernel queue work. *)


type t

(** [value] is the user-space futex word. *)
val create : Kernel.t -> value:int ref -> t

val word : t -> int ref

(** FUTEX_WAIT: sleep if the word still holds [expected]. *)
val wait : t -> Kernel.thread -> expected:int -> unit

(** FUTEX_WAKE: wake up to [n] sleepers; returns how many woke. *)
val wake : t -> Kernel.thread -> n:int -> int

val waiters : t -> int
