(** UNIX domain socket model (SOCK_SEQPACKET flavour): the transport
    under local RPC (Sec. 2.2) and dIPC's default entry-resolution hook
    (Sec. 6.2.1). *)

type 'a t

val create : ?max_queued:int -> Kernel.t -> 'a t

(** Send a message of [size] bytes; blocks when the queue is full. *)
val send : 'a t -> Kernel.thread -> size:int -> 'a -> unit

(** Receive the oldest message; blocks when empty. *)
val recv : 'a t -> Kernel.thread -> 'a * int

val pending : 'a t -> int
