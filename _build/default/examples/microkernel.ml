(* Multi-server microkernel services (the introduction's third scenario:
   "multi-server microkernel systems isolate services like network and
   disk I/O into separate processes").

   A network service and a disk service run as isolated processes; an
   application composes them — receive a packet, persist it, answer —
   with three cross-process calls per request, all through dIPC proxies.
   The example then measures the request and compares it against what the
   same composition costs over L4-style IPC on the kernel model.

     dune exec examples/microkernel.exe
*)

module Isa = Dipc_hw.Isa
module Machine = Dipc_hw.Machine
module Fault = Dipc_hw.Fault
module Sys_ = Dipc_core.System
module Types = Dipc_core.Types
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver
module Call = Dipc_core.Call
module M = Dipc_workloads.Microbench

let sig1 = Types.signature ~args:1 ~rets:1 ()

(* A service process exporting one function. *)
let service sys resolver ~name ~path ~fn ~policy =
  let proc = Sys_.create_process sys ~name in
  let img = Annot.image sys proc in
  ignore (Annot.declare_function sys img ~name:"op" fn);
  let handle = Annot.declare_entries sys img ~name:"svc" [ ("op", sig1, policy) ] in
  Resolver.publish resolver ~path handle;
  proc

let () =
  let sys = Sys_.create () in
  let resolver = Resolver.create () in
  (* net_rx: "receive" a packet (id -> payload word). *)
  ignore
    (service sys resolver ~name:"net" ~path:"/srv/net"
       ~fn:[ Isa.Shli (0, 0, 4); Isa.Addi (0, 0, 7); Isa.Ret ]
       ~policy:Types.props_high);
  (* disk: persist, return a block handle. *)
  ignore
    (service sys resolver ~name:"disk" ~path:"/srv/disk"
       ~fn:[ Isa.Addi (0, 0, 1000); Isa.Ret ]
       ~policy:Types.props_high);
  (* log: asymmetric — the app trusts the logger with nothing sensitive,
     so it requests a minimal policy and the call stays cheap. *)
  ignore
    (service sys resolver ~name:"log" ~path:"/srv/log"
       ~fn:[ Isa.Ret ] ~policy:Types.props_none);

  let app = Sys_.create_process sys ~name:"app" in
  let img = Annot.image sys app in
  let import path props = Annot.import img ~path ~sig_:sig1 ~props () in
  let net = import "/srv/net" Types.props_high in
  let disk = import "/srv/disk" Types.props_high in
  let log = import "/srv/log" Types.props_none in
  let th = Sys_.create_thread sys app in
  (* Resolve all three (builds the proxies), then compose a request. *)
  let net_stub = Annot.resolve sys resolver net in
  let disk_stub = Annot.resolve sys resolver disk in
  let log_stub = Annot.resolve sys resolver log in
  let handle_request =
    Annot.declare_function sys img ~name:"handle_request"
      [
        Isa.Call net_stub (* packet <- net_rx(id) *);
        Isa.Call disk_stub (* block <- disk_write(packet) *);
        Isa.Call log_stub (* log(block) *);
        Isa.Ret;
      ]
  in
  (match Call.exec sys th ~fn:handle_request ~args:[ 5 ] with
  | Ok v -> Printf.printf "request(5) -> block %d (3 cross-process calls)\n" v
  | Error f -> Printf.printf "fault: %s\n" (Fault.to_string f));
  (* Warm cost of the composed request. *)
  let ctx = th.Sys_.t_ctx in
  let c0 = ctx.Machine.cost in
  (match Call.exec sys th ~fn:handle_request ~args:[ 6 ] with
  | Ok _ -> ()
  | Error f -> Printf.printf "fault: %s\n" (Fault.to_string f));
  let dipc_cost = ctx.Machine.cost -. c0 in
  Printf.printf "dIPC request cost: %.0f ns (3 crossings, 2 High + 1 Low)\n"
    dipc_cost;
  (* The same composition over L4-style synchronous IPC. *)
  let l4 = (M.run ~warmup:10 ~iters:50 ~same_cpu:true M.L4).M.mean_ns in
  Printf.printf "same composition over L4 IPC: %.0f ns (3 x %.0f)\n"
    (3. *. l4) l4;
  Printf.printf "microkernel composition speedup: %.1fx\n" (3. *. l4 /. dipc_cost)
