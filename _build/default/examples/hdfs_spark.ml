(* The paper's introduction motivates dIPC with, among others, HDFS: "a
   per-node process to survive the crashes of its client Spark
   processes".  This example builds that relationship with dIPC: Spark
   workers call straight into the HDFS datanode through proxies, a worker
   crash never hurts the datanode, and the datanode's block map stays
   intact across client generations.

     dune exec examples/hdfs_spark.exe
*)

module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault
module Sys_ = Dipc_core.System
module Types = Dipc_core.Types
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver
module Call = Dipc_core.Call

let () =
  let sys = Sys_.create () in
  let resolver = Resolver.create () in

  (* --- the HDFS datanode ----------------------------------------- *)
  let hdfs = Sys_.create_process sys ~name:"hdfs-datanode" in
  let himg = Annot.image sys hdfs in
  (* The block store: a word per block id, in the datanode's domain. *)
  let store = Sys_.dom_mmap sys (Sys_.dom_default hdfs) ~bytes:4096 () in
  (* write_block(block, value) stores and returns the block id;
     read_block(block) loads. *)
  ignore
    (Annot.declare_function sys himg ~name:"write_block"
       [
         Isa.Const (12, store);
         Isa.Shli (13, 0, 3);
         Isa.Add (12, 12, 13);
         Isa.Store (12, 0, 1);
         Isa.Ret;
       ]);
  ignore
    (Annot.declare_function sys himg ~name:"read_block"
       [
         Isa.Const (12, store);
         Isa.Shli (13, 0, 3);
         Isa.Add (12, 12, 13);
         Isa.Load (0, 12, 0);
         Isa.Ret;
       ]);
  let sig2 = Types.signature ~args:2 ~rets:1 () in
  let sig1 = Types.signature ~args:1 ~rets:1 () in
  (* The datanode trusts nobody: full isolation on its side. *)
  let handle =
    Annot.declare_entries sys himg ~name:"dn"
      [ ("write_block", sig2, Types.props_high); ("read_block", sig1, Types.props_high) ]
  in
  Resolver.publish resolver ~path:"/hdfs/dn0" handle;

  (* --- a Spark worker: writes blocks, then crashes ---------------- *)
  let spark1 = Sys_.create_process sys ~name:"spark-worker-1" in
  let simg1 = Annot.image sys spark1 in
  let import img index sig_ =
    Annot.import img ~path:"/hdfs/dn0" ~index ~sig_ ~props:Types.props_high ()
  in
  let w1 = import simg1 0 sig2 in
  let th1 = Sys_.create_thread sys spark1 in
  List.iter
    (fun (blk, v) ->
      match Annot.call sys resolver th1 w1 ~args:[ blk; v ] with
      | Ok _ -> Printf.printf "worker-1: wrote block %d = %d\n" blk v
      | Error f -> Printf.printf "worker-1 fault: %s\n" (Fault.to_string f))
    [ (0, 111); (1, 222); (2, 333) ];

  (* The worker crashes mid-computation (its own bug, not in a call). *)
  let boom = Annot.declare_function sys simg1 ~name:"boom" [ Isa.Trap 9 ] in
  (match Call.exec sys th1 ~fn:boom ~args:[] with
  | Ok _ -> ()
  | Error f -> Printf.printf "worker-1 crashed: %s\n" (Fault.to_string f));
  Sys_.kill_process sys spark1;
  Printf.printf "worker-1 is gone; the datanode survived: %b\n" hdfs.Sys_.alive;

  (* --- a second generation of workers reads the data back --------- *)
  let spark2 = Sys_.create_process sys ~name:"spark-worker-2" in
  let simg2 = Annot.image sys spark2 in
  let r2 = import simg2 1 sig1 in
  let th2 = Sys_.create_thread sys spark2 in
  List.iter
    (fun blk ->
      match Annot.call sys resolver th2 r2 ~args:[ blk ] with
      | Ok v -> Printf.printf "worker-2: block %d = %d\n" blk v
      | Error f -> Printf.printf "worker-2 fault: %s\n" (Fault.to_string f))
    [ 0; 1; 2 ];
  print_endline "block data survived the client crash (state isolation, P1/P5)"
