(* Device-driver isolation (Sec. 7.3): what does it cost to isolate the
   Infiniband user-level driver behind each mechanism?

     dune exec examples/driver_isolation.exe
*)

module M = Dipc_workloads.Microbench
module N = Dipc_workloads.Netpipe
module Types = Dipc_core.Types
module Scenario = Dipc_core.Scenario

let () =
  Printf.printf "Measuring interposition mechanisms...\n%!";
  let costs =
    {
      N.sem_roundtrip = (M.run ~same_cpu:true M.Sem).M.mean_ns;
      pipe_roundtrip = (M.run ~same_cpu:true M.Pipe).M.mean_ns;
      dipc_proc_call = (Scenario.measure (Scenario.make ())).Dipc_sim.Stats.s_mean;
      dipc_same_call =
        (Scenario.measure (Scenario.make ~same_process:true ())).Dipc_sim.Stats.s_mean;
    }
  in
  Printf.printf
    "\nSmall-message (64 B) latency when the driver is isolated with:\n";
  List.iter
    (fun mech ->
      Printf.printf "  %-26s %8.2f us  (+%5.1f%%)\n" (N.mechanism_name mech)
        (N.latency costs mech ~bytes:64 /. 1000.)
        (N.latency_overhead_pct costs mech ~bytes:64))
    [ N.Baseline; N.Dipc_same; N.Dipc_proc; N.Kernel_driver; N.Sem_ipc; N.Pipe_ipc ];
  Printf.printf
    "\n4 KiB streaming bandwidth:\n";
  List.iter
    (fun mech ->
      Printf.printf "  %-26s %8.2f Gb/s (-%5.1f%%)\n" (N.mechanism_name mech)
        (N.bandwidth costs mech ~bytes:4096 *. 8.)
        (N.bandwidth_overhead_pct costs mech ~bytes:4096))
    [ N.Baseline; N.Dipc_same; N.Dipc_proc; N.Kernel_driver; N.Sem_ipc; N.Pipe_ipc ];
  Printf.printf
    "\nOnly dIPC keeps the driver isolated at near-native latency, which\n\
     is what lets the OS reclaim control of I/O policy (Sec. 7.3).\n"
