(* Asymmetric isolation: an application hosting an untrusted plugin in
   the same process (Sec. 2.4 / 3.3).

     dune exec examples/plugin_sandbox.exe

   The application calls the plugin through a proxy with register
   integrity (the app protects its state) — while the plugin gets no
   protection at all, so calls into it stay nearly free.  The example
   shows three things:
   - the plugin computes for the app across the domain boundary;
   - the plugin cannot read the app's secrets (P1);
   - a crashing plugin is unwound and flagged, not fatal (Sec. 5.2.1). *)

module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault
module System = Dipc_core.System
module Types = Dipc_core.Types
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver
module Call = Dipc_core.Call

let () =
  let sys = System.create () in
  let resolver = Resolver.create () in
  let app = System.create_process sys ~name:"app" in
  let image = Annot.image sys app in

  (* The plugin lives in its own domain of the same process. *)
  ignore (Annot.declare_domain sys image "plugin");
  ignore
    (Annot.declare_function sys image ~name:"render" ~dom:"plugin"
       [ Isa.Mul (0, 0, 1); Isa.Ret ]);
  ignore
    (Annot.declare_function sys image ~name:"crashy" ~dom:"plugin" [ Isa.Trap 3 ]);

  (* The app's secret sits in its default domain; the plugin's APL has no
     entry for it. *)
  let secret_addr = System.dom_mmap sys (System.dom_default app) ~bytes:4096 () in
  System.store sys secret_addr 0xC0FFEE;
  ignore
    (Annot.declare_function sys image ~name:"steal" ~dom:"plugin"
       [ Isa.Const (1, secret_addr); Isa.Load (0, 1, 0); Isa.Ret ]);

  let sig2 = Types.signature ~args:2 ~rets:1 () in
  let sig0 = Types.signature ~args:0 ~rets:1 () in
  (* Asymmetric policy: the app requests register integrity (protecting
     its state) and stack confidentiality (the plugin runs on its own
     stack, which also enables crash recovery, Sec. 5.2.3); the plugin
     requests nothing and gets nothing — that asymmetry is the point. *)
  let app_side =
    {
      Types.props_none with
      Types.reg_integrity = true;
      Types.stack_confidentiality = true;
    }
  in
  let handle =
    Annot.declare_entries sys image ~name:"plugin-api" ~dom:"plugin"
      [
        ("render", sig2, Types.props_none);
        ("crashy", sig2, Types.props_none);
        ("steal", sig0, Types.props_none);
      ]
  in
  Resolver.publish resolver ~path:"/plugin" handle;

  let import index sig_ =
    Annot.import image ~path:"/plugin" ~index ~sig_ ~props:app_side ()
  in
  let render = import 0 sig2 and crashy = import 1 sig2 and steal = import 2 sig0 in
  let th = System.create_thread sys app in

  (* 1. Normal plugin call. *)
  (match Annot.call sys resolver th render ~args:[ 6; 7 ] with
  | Ok v -> Printf.printf "render(6, 7)   = %d\n" v
  | Error f -> Printf.printf "render fault: %s\n" (Fault.to_string f));

  (* 2. The plugin cannot reach the app's secret: the call faults inside
     the plugin, and since the entry was invoked from the app (the only
     living caller), the app is resumed with an error flag. *)
  (match Annot.call sys resolver th steal ~args:[] with
  | Ok _ ->
      Printf.printf "steal()        = returned (errno=%d, secret NOT read: %s)\n"
        (System.errno sys th)
        (if System.errno sys th = Types.err_callee_fault then "fault flagged" else "?")
  | Error f -> Printf.printf "steal() killed the thread: %s\n" (Fault.to_string f));

  (* 3. A crashing plugin is survivable: the app sees errno, not death. *)
  (match Annot.call sys resolver th crashy ~args:[ 1; 2 ] with
  | Ok _ ->
      Printf.printf "crashy()       = unwound, errno=%d (app survives)\n"
        (System.errno sys th)
  | Error f -> Printf.printf "crashy() was fatal: %s\n" (Fault.to_string f));

  (* 4. And the app keeps working afterwards. *)
  match Annot.call sys resolver th render ~args:[ 3; 5 ] with
  | Ok v -> Printf.printf "render(3, 5)   = %d (after the crash)\n" v
  | Error f -> Printf.printf "fault: %s\n" (Fault.to_string f)
