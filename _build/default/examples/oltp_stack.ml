(* The paper's running example: a 3-tier OLTP web stack
   (Apache -> PHP -> MariaDB) under three isolation regimes.

     dune exec examples/oltp_stack.exe

   Prints the Figure 8 comparison at one concurrency level: the Linux
   baseline (processes + UNIX-socket IPC), dIPC (in-place cross-process
   calls), and the unsafe Ideal. *)

module O = Dipc_workloads.Oltp

let () =
  let threads = 16 in
  Printf.printf
    "3-tier OLTP web stack, 4 CPUs, %d threads per component, in-memory DB\n\n"
    threads;
  let results =
    List.map
      (fun config -> O.run ~config ~db_mode:O.In_memory ~threads ())
      [ O.Linux; O.Dipc; O.Ideal ]
  in
  Printf.printf "  %-16s %14s %12s %8s %8s %8s\n" "configuration" "ops/min"
    "latency[ms]" "user" "kernel" "idle";
  List.iter
    (fun (r : O.result) ->
      Printf.printf "  %-16s %14.0f %12.2f %7.1f%% %7.1f%% %7.1f%%\n"
        (O.config_name r.O.r_config) r.O.r_throughput_opm
        (r.O.r_latency_ns.Dipc_sim.Stats.s_mean /. 1e6)
        (100. *. r.O.r_user_frac) (100. *. r.O.r_kernel_frac)
        (100. *. r.O.r_idle_frac))
    results;
  match results with
  | [ lx; dp; id ] ->
      Printf.printf "\n  dIPC speedup over Linux : %.2fx (paper: 5.12x at 16 threads)\n"
        (dp.O.r_throughput_opm /. lx.O.r_throughput_opm);
      Printf.printf "  dIPC efficiency vs Ideal: %.1f%% (paper: >94%%)\n"
        (100. *. dp.O.r_throughput_opm /. id.O.r_throughput_opm)
  | _ -> ()
