examples/hdfs_spark.mli:
