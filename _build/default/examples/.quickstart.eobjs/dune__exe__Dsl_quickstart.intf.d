examples/dsl_quickstart.mli:
