examples/oltp_stack.mli:
