examples/plugin_sandbox.mli:
