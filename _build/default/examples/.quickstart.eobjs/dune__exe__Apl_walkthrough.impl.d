examples/apl_walkthrough.ml: Array Dipc_hw Printf
