examples/hdfs_spark.ml: Dipc_core Dipc_hw List Printf
