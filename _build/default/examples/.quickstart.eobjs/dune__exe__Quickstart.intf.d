examples/quickstart.mli:
