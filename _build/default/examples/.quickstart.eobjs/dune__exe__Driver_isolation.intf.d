examples/driver_isolation.mli:
