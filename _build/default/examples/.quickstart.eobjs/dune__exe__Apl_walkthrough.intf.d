examples/apl_walkthrough.mli:
