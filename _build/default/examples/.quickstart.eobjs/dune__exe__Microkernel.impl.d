examples/microkernel.ml: Dipc_core Dipc_hw Dipc_workloads Printf
