examples/dsl_quickstart.ml: Dipc_core Dipc_hw List Printf
