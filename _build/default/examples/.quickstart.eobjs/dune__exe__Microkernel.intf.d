examples/microkernel.mli:
