examples/driver_isolation.ml: Dipc_core Dipc_sim Dipc_workloads List Printf
