examples/plugin_sandbox.ml: Dipc_core Dipc_hw Printf
