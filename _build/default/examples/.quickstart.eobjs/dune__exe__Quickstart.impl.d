examples/quickstart.ml: Dipc_core Dipc_hw Printf
