examples/oltp_stack.ml: Dipc_sim Dipc_workloads List Printf
