(* Quickstart: two processes, one dIPC entry point.

   A "database" process exports query(a, b); a "web" process imports it
   through the default named-socket resolver and calls it like a local
   function.  Run with:

     dune exec examples/quickstart.exe
*)

module Isa = Dipc_hw.Isa
module Machine = Dipc_hw.Machine
module System = Dipc_core.System
module Types = Dipc_core.Types
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver

let () =
  (* One dIPC system: a shared CODOMs page table plus the kernel objects. *)
  let sys = System.create () in
  let resolver = Resolver.create () in

  (* --- the database process ------------------------------------- *)
  let db = System.create_process sys ~name:"database" in
  let db_image = Annot.image sys db in
  (* The exported function, written against the toy machine's ISA:
     query(a, b) = a + b. *)
  let _addr =
    Annot.declare_function sys db_image ~name:"query"
      [ Isa.Add (0, 0, 1); Isa.Ret ]
  in
  (* Export it: signature (2 register args, 1 result) and the isolation
     the database insists on — full confidentiality of its registers. *)
  let signature = Types.signature ~args:2 ~rets:1 () in
  let db_policy = { Types.props_none with Types.reg_confidentiality = true } in
  let handle =
    Annot.declare_entries sys db_image ~name:"db"
      [ ("query", signature, db_policy) ]
  in
  Resolver.publish resolver ~path:"/run/dipc/db.sock" handle;

  (* --- the web process ------------------------------------------ *)
  let web = System.create_process sys ~name:"web" in
  let web_image = Annot.image sys web in
  (* Import the symbol; the web side wants its registers protected from
     the database (register integrity). *)
  let web_policy = { Types.props_none with Types.reg_integrity = true } in
  let query =
    Annot.import web_image ~path:"/run/dipc/db.sock" ~sig_:signature
      ~props:web_policy ()
  in

  (* --- call it --------------------------------------------------- *)
  let thread = System.create_thread sys web in
  Printf.printf "web(pid %d) -> database(pid %d): query(40, 2)\n" web.System.pid
    db.System.pid;
  (match Annot.call sys resolver thread query ~args:[ 40; 2 ] with
  | Ok result -> Printf.printf "  result = %d\n" result
  | Error fault -> Printf.printf "  fault: %s\n" (Dipc_hw.Fault.to_string fault));

  (* The first call resolved the symbol (built the proxy); warm calls are
     just a function call through the trusted proxy. *)
  let ctx = thread.System.t_ctx in
  let before = ctx.Machine.cost in
  (match Annot.call sys resolver thread query ~args:[ 1; 2 ] with
  | Ok result -> Printf.printf "  query(1, 2) = %d\n" result
  | Error fault -> Printf.printf "  fault: %s\n" (Dipc_hw.Fault.to_string fault));
  Printf.printf "  warm cross-process call cost: %.1f ns (simulated)\n"
    (ctx.Machine.cost -. before);
  Printf.printf "  (a local RPC for the same call costs ~6900 ns)\n"
