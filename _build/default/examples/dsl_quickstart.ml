(* The quickstart again, but written in the dipcc image-description
   language — the textual stand-in for the paper's compiler annotations
   (Sec. 5.3.1).

     dune exec examples/dsl_quickstart.exe
*)

module Sys_ = Dipc_core.System
module Dipcc = Dipc_core.Dipcc
module Annot = Dipc_core.Annot

let source =
  {|
# A database exporting query(a, b) = a*b + 1, isolated in its own
# domain, and a web frontend importing it with register integrity.

process database
  domain service
  func query @service
    mul r0, r0, r1
    addi r0, r0, 1
    ret
  end
  entry db = query@service sig(args=2, rets=1) policy(reg-conf)
  publish db /run/db.sock

process web
  import query /run/db.sock sig(args=2, rets=1) policy(reg-int)
|}

let () =
  let sys = Sys_.create () in
  let loaded = Dipcc.load sys source in
  let web = (Dipcc.image loaded ~proc:"web").Annot.img_proc in
  let thread = Sys_.create_thread sys web in
  print_string source;
  List.iter
    (fun (a, b) ->
      match Dipcc.call sys loaded thread ~proc:"web" ~name:"query" ~args:[ a; b ] with
      | Ok v -> Printf.printf "query(%d, %d) = %d\n" a b v
      | Error f -> Printf.printf "fault: %s\n" (Dipc_hw.Fault.to_string f))
    [ (6, 7); (10, 10); (0, 5) ]
