(* Figure 4 walkthrough: code-centric domain isolation on the raw CODOMs
   machine, without any OS on top.

     dune exec examples/apl_walkthrough.exe

   Three domains, as in the paper's example:
   - domain A owns pages with its code and data; its APL lets it *call*
     into domain B's entry points;
   - domain B can jump anywhere in C (read permission) and has, as every
     domain does, implicit write access to itself;
   - domain C is reachable from B only.

   A can therefore invoke B's exported procedure; B internally uses C; but
   A can neither touch C nor enter B anywhere except its aligned entry
   point. *)

module Machine = Dipc_hw.Machine
module Memory = Dipc_hw.Memory
module Page_table = Dipc_hw.Page_table
module Apl = Dipc_hw.Apl
module Perm = Dipc_hw.Perm
module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault
module Capability = Dipc_hw.Capability

let page = 0x1000

let () =
  let m = Machine.create () in
  let apl = m.Machine.apl in
  let tag_a = Apl.fresh_tag apl
  and tag_b = Apl.fresh_tag apl
  and tag_c = Apl.fresh_tag apl
  and tag_s = Apl.fresh_tag apl in
  Printf.printf "domains: A=tag%d B=tag%d C=tag%d (stack domain tag%d)\n" tag_a
    tag_b tag_c tag_s;
  let code_a = 0x100000
  and code_b = 0x200000
  and code_c = 0x300000
  and stack = 0x400000 in
  let pt = m.Machine.page_table in
  Page_table.map pt ~addr:code_a ~count:1 ~tag:tag_a ~writable:false ~executable:true ();
  Page_table.map pt ~addr:code_b ~count:1 ~tag:tag_b ~writable:false ~executable:true ();
  Page_table.map pt ~addr:code_c ~count:1 ~tag:tag_c ~writable:false ~executable:true ();
  Page_table.map pt ~addr:stack ~count:1 ~tag:tag_s ();

  (* The APL configuration of Figure 4: A may call into B's entry points;
     B may read (and so jump anywhere into) C; B also lets A's frames be
     returned into (read back). *)
  Apl.grant apl ~src:tag_a ~dst:tag_b Perm.Call;
  Apl.grant apl ~src:tag_b ~dst:tag_c Perm.Read;
  (* Return paths: grants are directional, so letting B and C return into
     their callers' code does NOT let A enter them. *)
  Apl.grant apl ~src:tag_b ~dst:tag_a Perm.Read;
  Apl.grant apl ~src:tag_c ~dst:tag_b Perm.Read;
  Apl.grant apl ~src:tag_c ~dst:tag_a Perm.Read;

  (* C: a helper that doubles its argument. *)
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_c
       [ Isa.Add (0, 0, 0); Isa.Ret ]);
  (* B: an entry point (64-aligned page start) that calls C and adds 1. *)
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_b
       [ Isa.Call code_c; Isa.Addi (0, 0, 1); Isa.Ret ]);

  let run instrs =
    ignore (Memory.place_code m.Machine.mem ~addr:code_a instrs);
    let ctx = Machine.new_ctx m ~pc:code_a ~sp_value:(stack + page) in
    (* The thread-private stack capability (what dIPC installs in c6). *)
    ctx.Machine.cregs.(6) <-
      Some
        {
          Capability.base = stack;
          length = page;
          perm = Perm.Write;
          scope = Capability.Asynchronous { owner_tag = tag_s; counter = 0; value = 0 };
        };
    match Machine.run m ctx with
    | () -> Ok ctx.Machine.regs.(0)
    | exception Fault.Fault f -> Error f
  in

  (* 1. A calls B's entry point; B uses C on A's behalf. *)
  (match run [ Isa.Const (0, 21); Isa.Call code_b; Isa.Halt ] with
  | Ok v -> Printf.printf "A -> B(21) -> C doubles it, B adds 1:  %d\n" v
  | Error f -> Printf.printf "unexpected fault: %s\n" (Fault.to_string f));

  (* 2. A cannot jump into the middle of B (call permission => aligned
     entry points only). *)
  (match run [ Isa.Call (code_b + Isa.instr_bytes); Isa.Halt ] with
  | Ok _ -> print_endline "?! mid-domain entry should have faulted"
  | Error f ->
      Printf.printf "A -> B+4 rejected: %s\n" (Fault.kind_to_string f.Fault.kind));

  (* 3. A cannot reach C at all — C is only in B's APL. *)
  (match run [ Isa.Call code_c; Isa.Halt ] with
  | Ok _ -> print_endline "?! A should not reach C"
  | Error f -> Printf.printf "A -> C rejected:   %s\n" (Fault.kind_to_string f.Fault.kind));

  (* 4. Capabilities beat APLs where granted: B can hand A a transient
     capability to one of C's... here we show the mechanism directly by
     minting a capability for C's entry and letting A call through it. *)
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_a
       [ Isa.Callr 1; Isa.Halt ]);
  let ctx = Machine.new_ctx m ~pc:code_a ~sp_value:(stack + page) in
  ctx.Machine.cregs.(6) <-
    Some
      {
        Capability.base = stack;
        length = page;
        perm = Perm.Write;
        scope = Capability.Asynchronous { owner_tag = tag_s; counter = 0; value = 0 };
      };
  ctx.Machine.cregs.(0) <-
    Some
      {
        Capability.base = code_c;
        length = 64;
        perm = Perm.Read;
        scope = Capability.Asynchronous { owner_tag = tag_b; counter = 0; value = 0 };
      };
  ctx.Machine.regs.(0) <- 8;
  ctx.Machine.regs.(1) <- code_c;
  (match Machine.run m ctx with
  | () ->
      Printf.printf "A -> C through a capability from B: %d (8 doubled)\n"
        ctx.Machine.regs.(0)
  | exception Fault.Fault f -> Printf.printf "fault: %s\n" (Fault.to_string f));

  (* 5. Revoke the capability: the same call now faults immediately. *)
  Capability.Revocation.revoke m.Machine.revocation ~tag:tag_b ~counter:0;
  let ctx2 = Machine.new_ctx m ~pc:code_a ~sp_value:(stack + page) in
  ctx2.Machine.cregs.(6) <-
    Some
      {
        Capability.base = stack;
        length = page;
        perm = Perm.Write;
        scope = Capability.Asynchronous { owner_tag = tag_s; counter = 0; value = 0 };
      };
  ctx2.Machine.cregs.(0) <-
    Some
      {
        Capability.base = code_c;
        length = 64;
        perm = Perm.Read;
        scope = Capability.Asynchronous { owner_tag = tag_b; counter = 0; value = 0 };
      };
  ctx2.Machine.regs.(1) <- code_c;
  match Machine.run m ctx2 with
  | () -> print_endline "?! revoked capability still worked"
  | exception Fault.Fault f ->
      Printf.printf "after revocation:  %s\n" (Fault.kind_to_string f.Fault.kind)
