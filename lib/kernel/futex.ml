(* Futex: the kernel half of POSIX semaphores/mutexes (Sec. 2.2's "Sem."
   primitive is "POSIX semaphores (using futex) communicating through a
   shared buffer").

   The userspace fast path (uncontended atomic) is charged by callers; this
   module charges the syscall entry plus the kernel hash-bucket/queue work
   for the slow path. *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs

type t = {
  kern : Kernel.t;
  value : int ref; (* the user-space futex word *)
  sleepers : unit Kernel.Sleepq.q;
  jitter : Dipc_sim.Rng.t;
      (* Real kernels do not execute the futex path in deterministic time
         (bucket-lock contention, cache misses); without this jitter the
         simulation can phase-lock two CPUs into never sleeping, a pattern
         real hardware does not sustain. *)
}

let create kern ~value =
  {
    kern;
    value;
    sleepers = Kernel.Sleepq.create ();
    jitter = Dipc_sim.Rng.create ~seed:(0x5eed + Kernel.fresh_jitter_seed kern);
  }

let word t = t.value

let kernel_path_cost t =
  Costs.futex_kernel_queue *. Dipc_sim.Rng.uniform t.jitter ~lo:0.7 ~hi:1.3

(* FUTEX_WAIT: sleep if the word still holds [expected].  May return
   spuriously under fault injection (as the real FUTEX_WAIT may, per
   futex(2)); callers re-check the word in a loop, so a spurious return
   costs an extra round-trip through the slow path but never breaks the
   protocol. *)
let wait t th ~expected =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel (kernel_path_cost t);
  if !(t.value) = expected then begin
    (match Kernel.inject t.kern with
    | Some inj -> (
        match Dipc_sim.Inject.spurious_wakeup inj with
        | Some d ->
            let eng = Kernel.engine t.kern in
            Dipc_sim.Engine.schedule eng
              ~at:(Dipc_sim.Engine.now eng +. d)
              (fun () -> ignore (Kernel.wake_detached t.kern t.sleepers ()))
        | None -> ())
    | None -> ());
    Kernel.block_on t.kern th t.sleepers
  end

(* FUTEX_WAKE: wake up to [n] sleepers; returns how many were woken. *)
let wake t th ~n =
  Kernel.syscall_overhead t.kern th;
  Kernel.consume t.kern th Breakdown.Kernel (kernel_path_cost t);
  let woken = ref 0 in
  while !woken < n && Kernel.wake_one t.kern ~waker:th t.sleepers () do
    incr woken
  done;
  !woken

let waiters t = Kernel.Sleepq.length t.sleepers
