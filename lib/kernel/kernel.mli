(** Discrete-event model of a small multiprocessor OS kernel.

    Threads are simulated-time coroutines; each CPU is a token a thread
    must hold to consume time.  Run queues, wake-time CPU selection,
    context/page-table switch charges, IPIs and idle accounting reproduce
    the scheduling behaviour the paper measures, with every nanosecond
    attributed to a Figure 2 cost block per thread and per CPU. *)

module Engine = Dipc_sim.Engine
module Breakdown = Dipc_sim.Breakdown

type process

type thread

type t

val create : Engine.t -> ncpus:int -> t

val engine : t -> Engine.t

(** Install (or clear) a fault injector: IPI deliveries, futex waits and
    quantum boundaries consult it for seeded perturbations.  With no
    injector (the default) those paths draw nothing and the event
    timeline is byte-identical to an uninjected run. *)
val set_inject : t -> Dipc_sim.Inject.t option -> unit

val inject : t -> Dipc_sim.Inject.t option

(** Every nanosecond charged since creation, across all CPUs and
    categories, never reset (unlike {!reset_stats}'s per-CPU views):
    the conservation reference for the trace invariant checker. *)
val lifetime_breakdown : t -> Breakdown.t

val ncpus : t -> int

(** Next value of the per-kernel timing-jitter seed stream (futex path
    and similar non-deterministic-latency models).  Keeping the counter
    on the kernel — not a process global — is what makes same-seed runs
    replay the identical event timeline. *)
val fresh_jitter_seed : t -> int

(** Current virtual time. *)
val now : t -> float

(* --- processes --- *)

val create_process : t -> name:string -> process

(** Join two processes into one shared address space (dIPC's shared page
    table, Sec. 6.1.3): no page-table switch between their threads. *)
val share_address_space : target:process -> with_:process -> unit

val alloc_fd : process -> string -> int

(* --- CPU consumption and blocking (called from inside threads) --- *)

(** Consume CPU time attributed to [category]; long stretches are chopped
    into scheduler quanta so ready threads make progress. *)
val consume : t -> thread -> Breakdown.category -> float -> unit

(** Charge the syscall entry/exit and dispatch blocks. *)
val syscall_overhead : t -> thread -> unit

(** Sleep queues: blocking with scheduler integration. *)
module Sleepq : sig
  type 'a q

  val create : unit -> 'a q

  val length : 'a q -> int

  val is_empty : 'a q -> bool
end

(** Park the calling thread on [q]; returns the value its waker passes. *)
val block_on : t -> thread -> 'a Sleepq.q -> 'a

(** Wake one sleeper (charging an IPI when it sits on another, idle CPU);
    false if the queue was empty. *)
val wake_one : t -> waker:thread -> 'a Sleepq.q -> 'a -> bool

val wake_all : t -> waker:thread -> 'a Sleepq.q -> 'a -> int

(** Wake one sleeper with no running thread behind it (spurious wakeup /
    timer redelivery paths): no IPI is modelled.  Safe only for queues
    whose sleepers re-check their predicate after waking, like the futex
    wait loop. *)
val wake_detached : t -> 'a Sleepq.q -> 'a -> bool

(** Release the CPU and suspend on an externally-resumed waker (device
    queues). *)
val suspend_on : t -> thread -> ('a Engine.waker -> unit) -> 'a

(** Blocking wall-clock wait (disk, NIC, timer). *)
val io_wait : t -> thread -> float -> unit

val yield : t -> thread -> unit

(* --- thread creation --- *)

(** Start a thread of [proc] running [body]; [cpu >= 0] pins it, [at]
    delays its start.  Unpinned threads spread across CPUs at spawn and
    wake per the wake policy. *)
val spawn :
  ?cpu:int -> ?at:float option -> t -> process -> name:string -> (thread -> unit) -> thread

(* --- statistics --- *)

val cpu_breakdown : t -> int -> Breakdown.t

val cpu_idle_total : t -> int -> float

val reset_stats : t -> unit

val idle_fraction : t -> since:float -> float
