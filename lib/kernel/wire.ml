(* Cross-kernel message wire: the kernel-level primitive that lets two
   kernels live in different simulation shards (DESIGN.md Sec. 14).

   Each endpoint owns a receive buffer and a sleep queue on its own
   kernel; the two sides never touch each other's state directly.
   [send] charges the sender's syscall entry and per-message driver work
   (the Figure-7 NIC driver costs), then hands the payload to an
   abstract [post] function at [now + latency] — in a sharded run that
   is [Shard.post] targeting the peer's shard, in a single-engine run
   plain [Engine.schedule] on the shared engine, and the simulated
   timeline is identical either way.  Delivery runs as an event on the
   *receiver's* engine: it enqueues the payload and wakes one blocked
   reader through the detached device-completion path (no waking thread
   exists on the receiving side, exactly like a NIC interrupt).

   The wire latency is the shard lookahead: every message is emitted at
   least [latency] after the send event, so an engine shard whose only
   egress is wires of latency [>= L] can declare lookahead [L]
   ([Costs.ipi_send +. Costs.ipi_handle] for an IPI-coupled shard,
   [Costs.ib_base_latency] for a NIC-coupled one). *)

module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs

type 'a endpoint = {
  ep_kern : Kernel.t;
  ep_latency : float;
  ep_post : at:float -> (unit -> unit) -> unit;
      (* schedule a delivery event on the PEER's engine/shard *)
  ep_rx : 'a Queue.t;
  ep_readers : unit Kernel.Sleepq.q;
  mutable ep_peer : 'a endpoint option;
}

let default_latency = Costs.ib_base_latency

let endpoint ?(latency = default_latency) kern ~post =
  if latency < 0. then invalid_arg "Wire.endpoint: negative latency";
  {
    ep_kern = kern;
    ep_latency = latency;
    ep_post = post;
    ep_rx = Queue.create ();
    ep_readers = Kernel.Sleepq.create ();
    ep_peer = None;
  }

(* Wire two endpoints together (symmetric; call once). *)
let connect a b =
  (match (a.ep_peer, b.ep_peer) with
  | None, None -> ()
  | _ -> invalid_arg "Wire.connect: endpoint already connected");
  a.ep_peer <- Some b;
  b.ep_peer <- Some a

let latency ep = ep.ep_latency

let pending ep = Queue.length ep.ep_rx

(* Deliver [v] into [ep]: runs as an event on ep's own engine. *)
let deliver ep v =
  Queue.push v ep.ep_rx;
  ignore (Kernel.wake_detached ep.ep_kern ep.ep_readers ())

let send ep th v =
  let peer =
    match ep.ep_peer with
    | Some p -> p
    | None -> invalid_arg "Wire.send: endpoint not connected"
  in
  Kernel.syscall_overhead ep.ep_kern th;
  Kernel.consume ep.ep_kern th Breakdown.Kernel Costs.ib_per_request_driver;
  let at = Kernel.now ep.ep_kern +. ep.ep_latency in
  ep.ep_post ~at (fun () -> deliver peer v)

let recv ep th =
  Kernel.syscall_overhead ep.ep_kern th;
  while Queue.is_empty ep.ep_rx do
    Kernel.block_on ep.ep_kern th ep.ep_readers
  done;
  Kernel.consume ep.ep_kern th Breakdown.Kernel Costs.ib_per_request_driver;
  Queue.pop ep.ep_rx
