(* Discrete-event model of a small multiprocessor OS kernel.

   Threads are simulated-time coroutines (Dipc_sim.Engine).  Each CPU is a
   token: a thread must hold its CPU to consume time, releases it when it
   blocks, and the per-CPU run queue plus wake-time CPU selection reproduce
   the scheduling behaviour the paper measures — context-switch and
   page-table-switch costs, IPIs for cross-CPU wakeups, idle-loop entry and
   exit, and scheduler imbalance under high thread counts (Sec. 2.2, 7.4).

   Every nanosecond consumed is attributed to one of the Figure 2 cost
   blocks, per thread and per CPU, so benchmarks can print the same
   breakdowns the paper does. *)

module Engine = Dipc_sim.Engine
module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Trace = Dipc_sim.Trace
module Inject = Dipc_sim.Inject

type process = {
  pid : int;
  pname : string;
  mutable aspace : int; (* address-space id; shared for dIPC processes *)
  mutable dipc_enabled : bool;
  fds : (int, string) Hashtbl.t;
  mutable next_fd : int;
  mutable alive : bool;
}

type thread = {
  tid : int;
  proc : process;
  tname : string;
  mutable cpu : int;
  pinned : bool;
  bd : Breakdown.t; (* per-thread cost attribution *)
  mutable state : [ `New | `Ready | `Running | `Blocked | `Done ];
  mutable wake_ipi : bool; (* an IPI was sent to wake us *)
  mutable voluntary_switches : int;
  mutable park : unit Engine.waker option;
      (* waker while waiting on a busy CPU's run queue; a field on the
         thread (not a tid-keyed table) keeps the ready/run hand-off off
         the hash path *)
}

type cpu = {
  cpu_id : int;
  mutable running : thread option;
  runq : thread Queue.t;
  mutable idle_since : float option;
  (* idle/busy accumulators in a 2-slot [floatarray] (idle at 0, busy
     at 1): mutable float fields in this mixed record would box a fresh
     float per store, and [consume] stores once per quantum chunk. *)
  totals : floatarray;
  mutable last_tid : int;
  mutable last_aspace : int;
  cpu_bd : Breakdown.t;
}

type t = {
  engine : Engine.t;
  cpus : cpu array;
  mutable next_pid : int;
  mutable next_tid : int;
  mutable next_aspace : int;
  quantum : float; (* preemption granularity for CPU-bound threads, ns *)
  mutable next_jitter_seed : int;
      (* Per-kernel stream for timing-jitter RNGs (futex path etc.): a
         process-global counter here would leak state between runs and
         break same-seed replay determinism. *)
  mutable wake_policy : [ `Affinity | `Least_loaded ];
      (* Where an unpinned thread wakes up: its last CPU (cache affinity,
         like CFS without active balancing — the source of the scheduler
         imbalance Sec. 7.4 describes) or the least-loaded CPU. *)
  mutable inject : Inject.t option;
      (* Fault injector consulted at IPI delivery and quantum boundaries;
         [None] keeps those paths exactly as-is (no RNG draws). *)
  lifetime_bd : Breakdown.t;
      (* Every charge since creation, never reset: the conservation
         reference the invariant checker compares Charge events against
         ([reset_stats] clears the per-CPU breakdowns mid-run, so those
         cannot anchor a whole-trace identity). *)
}

let create engine ~ncpus =
  let cpus =
    Array.init ncpus (fun i ->
        {
          cpu_id = i;
          running = None;
          runq = Queue.create ();
          idle_since = Some 0.;
          totals = Float.Array.make 2 0.;
          last_tid = -1;
          last_aspace = -1;
          cpu_bd = Breakdown.create ();
        })
  in
  {
    engine;
    cpus;
    next_pid = 1;
    next_tid = 1;
    next_aspace = 1;
    quantum = 100_000.;
    next_jitter_seed = 1;
    wake_policy = `Affinity;
    inject = None;
    lifetime_bd = Breakdown.create ();
  }

let set_inject t inj = t.inject <- inj

let inject t = t.inject

let lifetime_breakdown t = t.lifetime_bd

let fresh_jitter_seed t =
  let s = t.next_jitter_seed in
  t.next_jitter_seed <- s + 1;
  s

let engine t = t.engine

let ncpus t = Array.length t.cpus

let now t = Engine.now t.engine

(* --- processes --- *)

let create_process t ~name =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let aspace = t.next_aspace in
  t.next_aspace <- t.next_aspace + 1;
  {
    pid;
    pname = name;
    aspace;
    dipc_enabled = false;
    fds = Hashtbl.create 8;
    next_fd = 3;
    alive = true;
  }

(* Join processes into one shared address space (dIPC's shared page table,
   Sec. 6.1.3). *)
let share_address_space ~target ~with_ =
  target.aspace <- with_.aspace;
  target.dipc_enabled <- true;
  with_.dipc_enabled <- true

let alloc_fd proc label =
  let fd = proc.next_fd in
  proc.next_fd <- proc.next_fd + 1;
  Hashtbl.replace proc.fds fd label;
  fd

(* --- cost accounting --- *)

let charge t th category ns =
  let i = Breakdown.category_index category in
  Breakdown.charge_idx th.bd i ns;
  Breakdown.charge_idx t.cpus.(th.cpu).cpu_bd i ns;
  Breakdown.charge_idx t.lifetime_bd i ns;
  let tr = Engine.tracer t.engine in
  if Trace.enabled tr then
    Trace.emit_charge tr ~ts:(now t) ~cpu:th.cpu ~tid:th.tid ~cat:category ~dur:ns

(* --- CPU token management --- *)

(* Stop idle accounting; returns how long the CPU idled. *)
let end_idle t cpu =
  match cpu.idle_since with
  | Some since ->
      let d = now t -. since in
      Float.Array.unsafe_set cpu.totals 0 (Float.Array.unsafe_get cpu.totals 0 +. d);
      Breakdown.charge cpu.cpu_bd Breakdown.Idle d;
      Breakdown.charge t.lifetime_bd Breakdown.Idle d;
      let tr = Engine.tracer t.engine in
      if Trace.enabled tr then
        Trace.emit_charge tr ~ts:(now t) ~cpu:cpu.cpu_id ~tid:(-1) ~cat:Breakdown.Idle
          ~dur:d;
      cpu.idle_since <- None;
      d
  | None -> 0.

(* The idle loop only reaches a deep C-state after sitting idle for a
   while; a same-instant hand-off pays nothing, a short nap pays a shallow
   halt exit. *)
let idle_exit_cost idled =
  if idled <= 0. then 0.
  else if idled < 600. then 100. +. Costs.context_switch
  else Costs.idle_wakeup +. Costs.context_switch

(* Costs of switching this CPU to [th]; charged to the incoming thread. *)
let switch_in t th ~idled =
  let cpu = t.cpus.(th.cpu) in
  let costs = ref 0. in
  let idle_cost = idle_exit_cost idled in
  if idle_cost > 0. then begin
    charge t th Breakdown.Schedule idle_cost;
    costs := !costs +. idle_cost
  end;
  let tr = Engine.tracer t.engine in
  if cpu.last_tid <> th.tid && cpu.last_tid <> -1 then begin
    if Trace.enabled tr then
      Trace.emit tr ~ts:(now t) ~cpu:th.cpu ~tid:th.tid ~arg:cpu.last_tid
        Trace.Ctxsw;
    charge t th Breakdown.Schedule Costs.context_switch;
    costs := !costs +. Costs.context_switch
  end;
  if cpu.last_aspace <> th.proc.aspace && cpu.last_aspace <> -1 then begin
    charge t th Breakdown.Page_table Costs.page_table_switch;
    costs := !costs +. Costs.page_table_switch
  end;
  cpu.last_tid <- th.tid;
  cpu.last_aspace <- th.proc.aspace;
  if th.wake_ipi then begin
    th.wake_ipi <- false;
    (* arg 0: the IPI is being handled on the receiving CPU. *)
    if Trace.enabled tr then
      Trace.emit tr ~ts:(now t) ~cpu:th.cpu ~tid:th.tid ~arg:0 Trace.Ipi;
    charge t th Breakdown.Kernel Costs.ipi_handle;
    costs := !costs +. Costs.ipi_handle
  end;
  if !costs > 0. then Engine.delay_in t.engine !costs

(* Acquire the thread's CPU, waiting on its run queue if busy. *)
let acquire t th =
  let cpu = t.cpus.(th.cpu) in
  match cpu.running with
  | None ->
      let idled = end_idle t cpu in
      cpu.running <- Some th;
      th.state <- `Running;
      switch_in t th ~idled
  | Some _ ->
      th.state <- `Ready;
      Engine.suspend (fun waker ->
          th.park <- Some waker;
          Queue.add th cpu.runq);
      (* release/hand-off set [running] to us before resuming. *)
      th.park <- None;
      th.state <- `Running;
      switch_in t th ~idled:0.

(* Release the CPU, handing it to the next ready thread if any. *)
let release t th =
  let cpu = t.cpus.(th.cpu) in
  (match cpu.running with
  | Some r when r.tid = th.tid -> ()
  | _ -> invalid_arg "Kernel.release: thread does not hold its CPU");
  cpu.running <- None;
  match Queue.take_opt cpu.runq with
  | Some next ->
      cpu.running <- Some next;
      (match next.park with
      | Some waker -> Engine.resume waker ()
      | None -> invalid_arg "Kernel.release: queued thread has no waker")
  | None -> cpu.idle_since <- Some (now t)

(* Consume CPU time, attributed to [category].  Long stretches are chopped
   into scheduler quanta so ready threads on the same CPU make progress
   (approximating timer preemption). *)
let consume t th category ns =
  (* Single-quantum fast path: no injector means a zero remainder never
     preempts, so a chunk that fits in one quantum is exactly one
     charge + advance (the general loop below computes the same floats:
     [chunk = ns], [remaining = ns -. ns = 0.]). *)
  match t.inject with
  | None when ns > 0. && ns <= t.quantum ->
      charge t th category ns;
      let cpu = t.cpus.(th.cpu) in
      Float.Array.unsafe_set cpu.totals 1 (Float.Array.unsafe_get cpu.totals 1 +. ns);
      Engine.delay_in t.engine ns
  | _ ->
  let remaining = ref ns in
  while !remaining > 0. do
    let chunk = if !remaining > t.quantum then t.quantum else !remaining in
    charge t th category chunk;
    let cpu = t.cpus.(th.cpu) in
    Float.Array.unsafe_set cpu.totals 1 (Float.Array.unsafe_get cpu.totals 1 +. chunk);
    Engine.delay_in t.engine chunk;
    remaining := !remaining -. chunk;
    let preempt =
      if not (Queue.is_empty t.cpus.(th.cpu).runq) then
        !remaining > 0.
        ||
        (* Injected: force a switch at the final quantum boundary too,
           exercising resumption from an unexpected scheduling point. *)
        (match t.inject with
        | Some inj -> Inject.force_preempt inj
        | None -> false)
      else false
    in
    if preempt then begin
      (* Preempted: round-robin to the back of the queue. *)
      charge t th Breakdown.Schedule Costs.context_switch;
      release t th;
      acquire t th
    end
  done

(* Charge the syscall entry/exit + dispatch trampoline (Figure 2 blocks 2
   and 3). *)
let syscall_overhead t th =
  let tr = Engine.tracer t.engine in
  if Trace.enabled tr then
    Trace.emit tr ~ts:(now t) ~cpu:th.cpu ~tid:th.tid Trace.Syscall;
  consume t th Breakdown.Syscall_entry Costs.syscall_entry_exit;
  consume t th Breakdown.Dispatch Costs.syscall_dispatch

(* --- sleep queues: blocking with scheduler integration --- *)

module Sleepq = struct
  type 'a entry = { sleeper : thread; waker : 'a Engine.waker }

  type 'a q = { entries : 'a entry Queue.t }

  let create () = { entries = Queue.create () }

  let length q = Queue.length q.entries

  let is_empty q = Queue.is_empty q.entries
end

(* Pick a CPU for an unpinned thread waking up: its last CPU if idle, else
   any idle CPU, else the least loaded one. *)
let choose_cpu t th =
  match t.wake_policy with
  | `Affinity -> th.cpu
  | `Least_loaded ->
      let load c =
        Queue.length c.runq + (match c.running with Some _ -> 1 | None -> 0)
      in
      if t.cpus.(th.cpu).idle_since <> None then th.cpu
      else begin
        let best = ref th.cpu and best_load = ref (load t.cpus.(th.cpu)) in
        Array.iter
          (fun c ->
            let l = load c in
            if l < !best_load then begin
              best := c.cpu_id;
              best_load := l
            end)
          t.cpus;
        !best
      end

(* Block the calling thread on [q]; returns the value passed by the waker. *)
let block_on t th (q : 'a Sleepq.q) : 'a =
  release t th;
  th.state <- `Blocked;
  let v =
    Engine.suspend (fun waker -> Queue.add { Sleepq.sleeper = th; waker } q.entries)
  in
  acquire t th;
  v

(* Wake one sleeper; performed by [waker_th] (which holds a CPU).  Models
   target-CPU selection and the IPI when the target CPU differs and sits
   idle (Sec. 2.2: "going across CPUs ... dominated by the costs of
   IPIs"). *)
let wake_one t ~waker:waker_th (q : 'a Sleepq.q) (v : 'a) =
  match Queue.take_opt q.Sleepq.entries with
  | None -> false
  | Some { Sleepq.sleeper; waker } ->
      if not sleeper.pinned then sleeper.cpu <- choose_cpu t sleeper;
      let ipi_delay = ref 0. in
      if sleeper.cpu <> waker_th.cpu then begin
        (* arg: the woken thread's tid (the IPI's logical target). *)
        let tr = Engine.tracer t.engine in
        if Trace.enabled tr then
          Trace.emit tr ~ts:(now t) ~cpu:waker_th.cpu ~tid:waker_th.tid
            ~arg:sleeper.tid Trace.Ipi;
        charge t waker_th Breakdown.Kernel Costs.ipi_send;
        Engine.delay_in t.engine Costs.ipi_send;
        sleeper.wake_ipi <- true;
        (* Injected IPI perturbation: a delayed interrupt delivers late;
           a lost one only lands when the sender's retry timer refires. *)
        match t.inject with
        | Some inj -> (
            match Inject.ipi_outcome inj with
            | Inject.Ipi_ok -> ()
            | Inject.Ipi_delayed d | Inject.Ipi_lost d -> ipi_delay := d)
        | None -> ()
      end;
      sleeper.state <- `Ready;
      if !ipi_delay > 0. then
        Engine.schedule t.engine
          ~at:(now t +. !ipi_delay)
          (fun () -> Engine.resume waker v)
      else Engine.resume waker v;
      true

let wake_all t ~waker q v =
  let n = ref 0 in
  while wake_one t ~waker q v do
    incr n
  done;
  !n

(* Wake one sleeper with no running thread behind it (spurious wakeups,
   timer redelivery): no waker CPU exists, so no IPI is modelled — the
   sleeper just becomes ready and re-contends for a CPU. *)
let wake_detached t (q : 'a Sleepq.q) (v : 'a) =
  match Queue.take_opt q.Sleepq.entries with
  | None -> false
  | Some { Sleepq.sleeper; waker } ->
      if not sleeper.pinned then sleeper.cpu <- choose_cpu t sleeper;
      sleeper.state <- `Ready;
      Engine.resume waker v;
      true

(* Release the CPU and suspend on an externally-resumed waker (device
   queues); reacquires a CPU once resumed. *)
let suspend_on t th register =
  release t th;
  th.state <- `Blocked;
  let v = Engine.suspend register in
  th.state <- `Ready;
  if not th.pinned then th.cpu <- choose_cpu t th;
  acquire t th;
  v

(* Blocking wait for a wall-clock duration (disk, NIC, timer): the CPU is
   released, so it idles or runs other work. *)
let io_wait t th ns =
  release t th;
  th.state <- `Blocked;
  Engine.delay_in t.engine ns;
  th.state <- `Ready;
  acquire t th

(* Yield the CPU voluntarily. *)
let yield t th =
  th.voluntary_switches <- th.voluntary_switches + 1;
  if not (Queue.is_empty t.cpus.(th.cpu).runq) then begin
    charge t th Breakdown.Schedule Costs.context_switch;
    release t th;
    acquire t th
  end

(* --- thread creation --- *)

let spawn ?(cpu = -1) ?(at = None) t proc ~name body =
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let pinned = cpu >= 0 in
  let th =
    {
      tid;
      proc;
      tname = name;
      cpu = (if pinned then cpu else 0);
      pinned;
      bd = Breakdown.create ();
      state = `New;
      wake_ipi = false;
      voluntary_switches = 0;
      park = None;
    }
  in
  let wrapped () =
    (* Initial placement always spreads (fork balancing); only wakeups
       follow the wake policy. *)
    if not th.pinned then begin
      let load c =
        Queue.length c.runq + (match c.running with Some _ -> 1 | None -> 0)
      in
      let best = ref 0 in
      Array.iter
        (fun c -> if load c < load t.cpus.(!best) then best := c.cpu_id)
        t.cpus;
      th.cpu <- !best
    end;
    acquire t th;
    (try body th
     with exn ->
       th.state <- `Done;
       release t th;
       raise exn);
    th.state <- `Done;
    release t th
  in
  let tr = Engine.tracer t.engine in
  if Trace.enabled tr then
    Trace.emit tr
      ~ts:(match at with None -> now t | Some at -> at)
      ~cpu:th.cpu ~tid:th.tid ~arg:proc.pid Trace.Spawn;
  (match at with
  | None -> Engine.spawn t.engine wrapped
  | Some at -> Engine.spawn ~at t.engine wrapped);
  th

(* --- statistics --- *)

let cpu_breakdown t i = t.cpus.(i).cpu_bd

let cpu_idle_total t i = Float.Array.unsafe_get t.cpus.(i).totals 0

let reset_stats t =
  Array.iter
    (fun c ->
      Breakdown.clear c.cpu_bd;
      Float.Array.unsafe_set c.totals 0 0.;
      Float.Array.unsafe_set c.totals 1 0.;
      if c.idle_since <> None then c.idle_since <- Some (now t))
    t.cpus

(* Sample current idle fraction over [0, now]; benches call reset first. *)
let idle_fraction t ~since =
  let elapsed = now t -. since in
  if elapsed <= 0. then 0.
  else begin
    let idle =
      Array.fold_left
        (fun acc c ->
          let extra = match c.idle_since with Some s -> now t -. s | None -> 0. in
          acc +. Float.Array.unsafe_get c.totals 0 +. extra)
        0. t.cpus
    in
    idle /. (elapsed *. float_of_int (ncpus t))
  end
