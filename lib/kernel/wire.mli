(** Cross-kernel message wire: lets two kernels live in different
    simulation shards.  Each endpoint owns its receive state on its own
    kernel; payloads travel through an abstract [post] function (the
    shard coordinator's cross-shard channel, or plain [Engine.schedule]
    in a single-engine run) after the wire latency — which is exactly
    the lookahead the owning shard may declare (DESIGN.md Sec. 14). *)

type 'a endpoint

(** Wire latency defaults to [Costs.ib_base_latency]. *)
val default_latency : float

(** [endpoint kern ~post] makes one side of a wire on [kern]; [post]
    must schedule a thunk at an absolute time on the *peer's*
    engine/shard. *)
val endpoint :
  ?latency:float ->
  Kernel.t ->
  post:(at:float -> (unit -> unit) -> unit) ->
  'a endpoint

(** Connect two endpoints (once; raises on rewiring). *)
val connect : 'a endpoint -> 'a endpoint -> unit

val latency : 'a endpoint -> float

(** Messages received and not yet consumed by {!recv}. *)
val pending : 'a endpoint -> int

(** Send [v] to the peer: charges syscall entry plus per-message driver
    work on the sender, then delivers after the wire latency on the
    peer's engine (detached device-completion wake, like a NIC
    interrupt). *)
val send : 'a endpoint -> Kernel.thread -> 'a -> unit

(** Block until a payload is available, then consume it (charging the
    receive-side driver work). *)
val recv : 'a endpoint -> Kernel.thread -> 'a
