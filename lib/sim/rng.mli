(** Deterministic splitmix64 pseudo-random number generator.

    The simulator must be reproducible across runs and platforms, so all
    randomness flows through explicit-state generators seeded by the
    caller. *)

type t

val create : seed:int -> t

(** Independent copy continuing from the same state. *)
val copy : t -> t

(** Fork an independent child generator, advancing the parent by one
    draw (splitmix64's designed split).  The child's stream is
    deterministic in the parent's seed and split position but shares no
    draws with the parent's continuation. *)
val split : t -> t

val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform integer in [0, bound); raises [Invalid_argument] when
    [bound <= 0].  Carries the classic `r mod bound` modulo bias; kept
    verbatim because the pinned golden digests consume its exact draw
    sequence.  New code should prefer {!int_unbiased}. *)
val int : t -> int -> int

(** Uniform integer in [0, bound) via rejection sampling — no modulo
    bias.  Consumes a variable number of draws, so it is not
    stream-compatible with {!int}; raises [Invalid_argument] when
    [bound <= 0]. *)
val int_unbiased : t -> int -> int

val bool : t -> bool

(** Exponentially distributed value with the given mean. *)
val exponential : t -> mean:float -> float

(** Uniform float in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** Heavy-tailed positive value around [mean] (bounded Pareto shape);
    used for disk service times. *)
val heavy_tail : t -> mean:float -> float
