(** Binary min-heap keyed by (time, insertion order).

    Events scheduled for the same instant pop in insertion order, which
    keeps the discrete-event engine deterministic. *)

type 'a t

(** An empty heap; [capacity] pre-sizes the backing arrays (purely a
    regrowth-avoidance hint, invisible to every observation). *)
val create : ?capacity:int -> unit -> 'a t

(** Number of queued entries. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** Queue [payload] at [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** Remove and return the earliest entry, if any. *)
val pop : 'a t -> (float * 'a) option

(** Time of the earliest entry without removing it. *)
val peek_time : 'a t -> float option

(** Time of the earliest entry; raises [Invalid_argument] when empty.
    Allocation-free counterpart of {!peek_time} for the event loop. *)
val top_time : 'a t -> float

(** Remove and return the earliest payload; raises [Invalid_argument]
    when empty.  Allocation-free counterpart of {!pop}; the vacated slot
    is nulled so the heap retains no popped payload. *)
val pop_min : 'a t -> 'a
