(* Binary min-heap keyed by (time, sequence number).

   The sequence number breaks ties so that events scheduled for the same
   instant fire in insertion order, which keeps the discrete-event engine
   deterministic.

   Representation: three parallel arrays (struct-of-arrays) instead of an
   array of entry records.  [times] is a flat float array, so a sift
   comparison reads an unboxed float instead of chasing the boxed [time]
   field of a mixed record (OCaml boxes float fields of mixed records);
   pushing allocates nothing once the arrays are grown; and
   [pop_min]/[top_time] give the engine's event loop an allocation-free
   fast path next to the option-returning [pop].

   Both sift loops percolate a hole instead of swapping: the moving
   entry is held in locals and written once at its final slot, so each
   level costs three stores (one of them through the GC write barrier,
   for the payload) instead of six.  The loops also keep the arrays in
   locals and inline the comparisons — without flambda a per-level
   helper call would cost more than the allocations this representation
   saves.

   Payloads are stored as [Obj.t] behind the typed ['a t] interface so a
   vacated slot can be nulled with a type-neutral sentinel: a popped
   payload (an engine continuation, i.e. a whole captured stack) must not
   stay reachable from the heap until the slot happens to be
   overwritten. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}

(* Sentinel for empty payload slots.  An immediate value: holds nothing
   alive, and [Array.make] with it builds a uniform (non-float) array. *)
let nil : Obj.t = Obj.repr 0

(* [capacity] pre-sizes the arrays: a caller expecting a known burst
   (e.g. the sharded open-arrival station receiving batch-sized barrier
   deliveries) skips the doubling regrowth.  Capacity is invisible to
   every observation, so it can never affect a digest. *)
let create ?(capacity = 0) () =
  let capacity = max 0 capacity in
  {
    times = Array.make capacity 0.;
    seqs = Array.make capacity 0;
    payloads = Array.make capacity nil;
    size = 0;
    next_seq = 0;
  }

let length h = h.size

let is_empty h = h.size = 0

let ensure_capacity h =
  let cap = Array.length h.seqs in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let times = Array.make ncap 0. in
    let seqs = Array.make ncap 0 in
    let payloads = Array.make ncap nil in
    Array.blit h.times 0 times 0 h.size;
    Array.blit h.seqs 0 seqs 0 h.size;
    Array.blit h.payloads 0 payloads 0 h.size;
    h.times <- times;
    h.seqs <- seqs;
    h.payloads <- payloads
  end

(* Every index in the sift loops is bounded by [size] (itself at most
   the arrays' length, maintained by [ensure_capacity]), so the array
   accesses skip the bounds checks. *)
let push h ~time payload =
  ensure_capacity h;
  let times = h.times and seqs = h.seqs and payloads = h.payloads in
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  (* Percolate the hole up from the new slot: parents later than the new
     entry move down one level; the new entry is stored once at the end. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let c = !i in
    let p = (c - 1) / 2 in
    let pt = Array.unsafe_get times p in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs p) then begin
      Array.unsafe_set times c pt;
      Array.unsafe_set seqs c (Array.unsafe_get seqs p);
      Array.unsafe_set payloads c (Array.unsafe_get payloads p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set payloads !i (Obj.repr payload)

(* Remove the root: null the vacated last slot, then percolate the hole
   at the root down, moving the earlier child up each level, until the
   displaced last entry fits. *)
let remove_top h =
  let size = h.size - 1 in
  h.size <- size;
  let times = h.times and seqs = h.seqs and payloads = h.payloads in
  let ltime = times.(size) and lseq = seqs.(size) and lpay = payloads.(size) in
  payloads.(size) <- nil;
  if size > 0 then begin
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let c = !i in
      let l = (2 * c) + 1 in
      if l >= size then continue := false
      else begin
        (* Pick the earlier of the two children. *)
        let r = l + 1 in
        let lt = Array.unsafe_get times l in
        let m, mt =
          if
            r < size
            && (let rt = Array.unsafe_get times r in
                rt < lt
                || (rt = lt && Array.unsafe_get seqs r < Array.unsafe_get seqs l))
          then (r, Array.unsafe_get times r)
          else (l, lt)
        in
        if mt < ltime || (mt = ltime && Array.unsafe_get seqs m < lseq) then begin
          Array.unsafe_set times c mt;
          Array.unsafe_set seqs c (Array.unsafe_get seqs m);
          Array.unsafe_set payloads c (Array.unsafe_get payloads m);
          i := m
        end
        else continue := false
      end
    done;
    Array.unsafe_set times !i ltime;
    Array.unsafe_set seqs !i lseq;
    Array.unsafe_set payloads !i lpay
  end

let pop h =
  if h.size = 0 then None
  else begin
    let time = h.times.(0) in
    let payload : 'a = Obj.obj h.payloads.(0) in
    remove_top h;
    Some (time, payload)
  end

let top_time h =
  if h.size = 0 then invalid_arg "Heap.top_time: empty heap";
  h.times.(0)

let pop_min h =
  if h.size = 0 then invalid_arg "Heap.pop_min: empty heap";
  let payload : 'a = Obj.obj h.payloads.(0) in
  remove_top h;
  payload

let peek_time h = if h.size = 0 then None else Some h.times.(0)
