(* FIFO wait queue of suspended simulated threads.

   The building block for futexes, pipes, sockets and scheduler run-queues:
   a thread parks itself with [wait] and a peer hands it a value with
   [wake_one]/[wake_all]. *)

type 'a t = { waiters : 'a Engine.waker Queue.t }

let create () = { waiters = Queue.create () }

let length t = Queue.length t.waiters

let is_empty t = Queue.is_empty t.waiters

(* Park the calling thread until woken; returns the value passed by the
   waker.  [on_park] receives the waker after it is enqueued, so callers
   implementing timeouts/cancellation can stash it for a later [remove]. *)
let wait ?on_park t =
  Engine.suspend (fun waker ->
      Queue.add waker t.waiters;
      match on_park with None -> () | Some f -> f waker)

(* Withdraw a parked waker without firing it (cancellation path): the
   thread stays suspended and must be resumed directly by the caller.
   Queue has no random removal, so rebuild it minus the first physical
   match; wait queues are short (bounded by runnable threads). *)
let remove t waker =
  let found = ref false in
  let keep = Queue.create () in
  Queue.iter
    (fun w ->
      if (not !found) && w == waker then found := true else Queue.add w keep)
    t.waiters;
  if !found then begin
    Queue.clear t.waiters;
    Queue.transfer keep t.waiters
  end;
  !found

let wake_one t v =
  match Queue.take_opt t.waiters with
  | None -> false
  | Some waker ->
      Engine.resume waker v;
      true

let wake_all t v =
  let n = Queue.length t.waiters in
  while not (Queue.is_empty t.waiters) do
    Engine.resume (Queue.take t.waiters) v
  done;
  n
