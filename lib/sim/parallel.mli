(** Work-queue runner: shard independent deterministic simulation runs
    across OCaml 5 domains.

    The unit of parallelism is one whole simulation run (one
    [Engine]/[Trace]/[Rng]/[Checker] universe), never anything inside a
    run: tasks must not share mutable state.  Results are keyed by
    submission index and merged in submission order, so the output is
    independent of completion order — the determinism contract
    (DESIGN.md Sec. 10) that lets callers assert parallel output
    byte-identical to serial. *)

type 'a outcome = {
  o_id : string;  (** the caller's run id, echoed back *)
  o_value : 'a;
  o_wall_s : float;  (** host seconds spent inside this run *)
  o_minor_words : float;
      (** words allocated in the running domain's minor heap during the
          run (per-domain counter: a per-run allocation estimate) *)
  o_worker : int;  (** which worker domain ran it (0 = the caller) *)
}

(** [Domain.recommended_domain_count ()]: the default shard count. *)
val default_jobs : unit -> int

(** [run ?jobs tasks] drains the task queue with [jobs] workers (the
    calling domain plus [jobs - 1] spawned domains) and returns one
    outcome per task, in submission order regardless of completion
    order.  [jobs] defaults to {!default_jobs}, is clamped to
    [1 .. Array.length tasks], and [jobs = 1] degenerates to a plain
    serial loop on the calling domain (no domain is spawned).

    If tasks raise, every remaining task still runs; then the exception
    of the lowest-indexed failed task is re-raised on the caller (with
    its original backtrace), so failure reporting is deterministic
    too. *)
val run : ?jobs:int -> (string * (unit -> 'a)) array -> 'a outcome array

(** [run_units ?jobs units] is {!run} stripped to its synchronization
    skeleton for latency-critical barriers (one call per shard window in
    [Shard.run]): no outcome records, no per-task stats — just the
    work queue, the one-writer-per-slot discipline and the
    lowest-submission-index exception propagation. *)
val run_units : ?jobs:int -> (unit -> unit) array -> unit

(** [map ?jobs f xs]: {!run} over [f] applied to each element, returning
    plain values in input order. Ids are the element indices. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
