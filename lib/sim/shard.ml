(* Conservative parallel DES coordinator (ROADMAP item 2).

   [Parallel] shards *across* independent runs; this module shards the
   inside of one run.  The model is partitioned into shards — each an
   independent sequential simulator (an [Engine], an open-arrival
   station, a synthetic stepper in tests) owning a private event heap —
   and the coordinator advances them in conservative lookahead windows
   (the classic Chandy–Misra–Bryant null-message bound, collapsed to a
   global barrier):

     window bound  H = min over shards of (next_i + lookahead_i)

   where [next_i] is shard i's earliest pending local event (including
   cross-shard messages already delivered to it) and [lookahead_i] its
   *promise*: every message it will ever emit from now on carries a
   timestamp at least [next_i + lookahead_i].  Within a window every
   shard may process its local events up to [H] without seeing any
   other shard — no shared mutable state, so the window bodies can run
   on separate OCaml domains — and at the window barrier the emitted
   messages are exchanged.

   Determinism is the whole point (the digest gate of DESIGN.md
   Sec. 10/14): at the barrier the outboxes are merged into a single
   total order keyed by (timestamp, source shard id, per-source emission
   seqno) before delivery, so the delivery order — and therefore every
   downstream heap seqno, trace event and digest — is a pure function
   of the model, independent of domain scheduling and of [~par].
   Serial ([par:false]) and parallel ([par:true]) execution of the same
   sharded model are byte-identical by construction, and the tie-break
   is pinned by test_shard.ml.

   Safety is enforced, not assumed: a message timestamped before the
   current window bound would have to travel into a peer's past, so
   [emit] raises [Causality_violation] loudly (the mutation smoke tests
   shrink a model's real latency below its declared lookahead and
   assert exactly this).  [~enforce:false] exists only so tests can
   demonstrate what the silent corruption would look like — the checker
   catches it downstream as a "time-regression".

   Messages at *exactly* the window bound are legal and ordered after
   the receiver's local events at that instant (the receiver has
   already processed through [H] when they arrive) — the contract
   matching the serial open-arrival tie rule, pinned in test_shard.ml.

   An input-free shard (one no other shard ever sends to — e.g. the
   open-arrival admission source) may run arbitrarily far *ahead* of
   the window inside [st_step], as long as its emissions still respect
   the bound: nothing it will ever receive can invalidate its state.
   That is what turns the barrier protocol into a pipeline. *)

type 'msg stepper = {
  st_next : unit -> float;
      (* earliest pending local event; [infinity] when drained *)
  st_lookahead : float;
      (* minimum delta between a local event and any message it emits *)
  st_step :
    inbox_at:float array ->
    inbox_pay:'msg array ->
    inbox_len:int ->
    upto:float ->
    emit:(dst:int -> at:float -> 'msg -> unit) ->
    int;
      (* deliver the first [inbox_len] messages of the parallel
         timestamp/payload arrays (already in merged order), process
         local events with time <= [upto], return the number of events
         processed *)
}

type tiebreak = Src_then_seq | Reversed

exception Causality_violation of string

exception Stalled of string

(* Growable message vector in structure-of-arrays form, reused round
   after round: timestamps live in an unboxed float array and payloads
   in a plain array, so the steady-state message path allocates
   *nothing* per message — a packet-record representation was measured
   to promote every record to the major heap (young block stored into an
   old buffer) and cost ~1.5x the wall clock on a million-session
   open-arrival cell; the list/tuple one before it, ~3x.  Growth fills
   the payload array with the payload being pushed, so no dummy ['msg]
   is ever needed.  Slots beyond [v_len] keep stale payload references
   alive until overwritten; that retention is bounded by one window's
   message volume.  [v_sorted]/[v_uniform] track whether the pushes so
   far are time-sorted and single-destination — the barrier's O(1)
   buffer-swap fast path keys on them. *)
type 'msg vec = {
  mutable v_at : float array;
  mutable v_dst : int array;
  mutable v_pay : 'msg array;
  mutable v_len : int;
  mutable v_sorted : bool;
  mutable v_dst0 : int;
  mutable v_uniform : bool;
}

let vec_make () =
  {
    v_at = [||];
    v_dst = [||];
    v_pay = [||];
    v_len = 0;
    v_sorted = true;
    v_dst0 = -1;
    v_uniform = true;
  }

let vec_clear v =
  v.v_len <- 0;
  v.v_sorted <- true;
  v.v_dst0 <- -1;
  v.v_uniform <- true

let vec_push v ~at ~dst pay =
  let cap = Array.length v.v_pay in
  if v.v_len = cap then begin
    let ncap = if cap = 0 then 1024 else 2 * cap in
    let nat = Array.make ncap 0. in
    let ndst = Array.make ncap 0 in
    let npay = Array.make ncap pay in
    Array.blit v.v_at 0 nat 0 v.v_len;
    Array.blit v.v_dst 0 ndst 0 v.v_len;
    Array.blit v.v_pay 0 npay 0 v.v_len;
    v.v_at <- nat;
    v.v_dst <- ndst;
    v.v_pay <- npay
  end;
  if v.v_len = 0 then v.v_dst0 <- dst
  else begin
    if at < v.v_at.(v.v_len - 1) then v.v_sorted <- false;
    if dst <> v.v_dst0 then v.v_uniform <- false
  end;
  v.v_at.(v.v_len) <- at;
  v.v_dst.(v.v_len) <- dst;
  v.v_pay.(v.v_len) <- pay;
  v.v_len <- v.v_len + 1

(* Exchange the buffers of two vecs — the barrier fast path's whole
   per-round cost when one shard streams to one other. *)
let vec_swap a b =
  let at = a.v_at and dst = a.v_dst and pay = a.v_pay and len = a.v_len in
  let sorted = a.v_sorted and dst0 = a.v_dst0 and uniform = a.v_uniform in
  a.v_at <- b.v_at;
  a.v_dst <- b.v_dst;
  a.v_pay <- b.v_pay;
  a.v_len <- b.v_len;
  a.v_sorted <- b.v_sorted;
  a.v_dst0 <- b.v_dst0;
  a.v_uniform <- b.v_uniform;
  b.v_at <- at;
  b.v_dst <- dst;
  b.v_pay <- pay;
  b.v_len <- len;
  b.v_sorted <- sorted;
  b.v_dst0 <- dst0;
  b.v_uniform <- uniform

type 'msg t = {
  steppers : 'msg stepper array;
  tiebreak : tiebreak;
  enforce : bool;
  outboxes : 'msg vec array;  (* per-src, emission order *)
  merged : 'msg vec;  (* barrier scratch, (time, src, seq) order *)
  inboxes : 'msg vec array;  (* per-dst, merged order *)
  mutable rounds : int;
  mutable delivered : int;
}

let create ?(tiebreak = Src_then_seq) ?(enforce = true) steppers =
  if Array.length steppers = 0 then invalid_arg "Shard.create: no shards";
  {
    steppers;
    tiebreak;
    enforce;
    outboxes = Array.init (Array.length steppers) (fun _ -> vec_make ());
    merged = vec_make ();
    inboxes = Array.init (Array.length steppers) (fun _ -> vec_make ());
    rounds = 0;
    delivered = 0;
  }

let rounds t = t.rounds

let delivered t = t.delivered

(* Shard i's effective next event: its own heap or the earliest message
   already merged for it but not yet handed to [st_step]. *)
let effective_next t i =
  let n = t.steppers.(i).st_next () in
  let inbox = t.inboxes.(i) in
  if inbox.v_len = 0 then n else Float.min n inbox.v_at.(0)

let window_bound t =
  let h = ref infinity in
  Array.iteri
    (fun i s ->
      let eot = effective_next t i +. s.st_lookahead in
      if eot < !h then h := eot)
    t.steppers;
  !h

let all_drained t =
  let drained = ref true in
  for i = 0 to Array.length t.steppers - 1 do
    if effective_next t i < infinity then drained := false
  done;
  !drained

(* Merge the round's outboxes into (time, src, seq) order and deal the
   result into the per-destination inboxes for the next round.
   Concatenating the per-source outboxes in ascending source order (each
   in emission order) makes a *stable* sort by timestamp alone produce
   exactly that key; [Reversed] concatenates backwards instead — the
   deliberately wrong tie-break the mutation smoke tests pin as
   digest-visible.  The sort is skipped when the concatenation is
   already time-sorted (always true with a single emitting shard,
   e.g. the open-arrival source), and every buffer is reused across
   rounds: the steady-state barrier moves packet *references* only. *)
let check_dst n dst =
  if dst < 0 || dst >= n then
    invalid_arg (Printf.sprintf "Shard.run: message for unknown shard %d" dst)

let merge_and_deal t =
  let n = Array.length t.steppers in
  (* Everything previously dealt has been consumed by this round's
     bodies; the inbox vecs are reused for the new crop. *)
  for d = 0 to n - 1 do
    vec_clear t.inboxes.(d)
  done;
  (* Fast path: exactly one shard emitted, in time order, all to one
     destination (every round of the open-arrival decomposition) — the
     merged order is the outbox order, so just swap the outbox's buffers
     with that destination's inbox: O(1), no per-message work at all. *)
  let nonempty = ref (-1) and several = ref false in
  for s = 0 to n - 1 do
    if t.outboxes.(s).v_len > 0 then
      if !nonempty >= 0 then several := true else nonempty := s
  done;
  let fast =
    (not !several)
    && !nonempty >= 0
    &&
    let ob = t.outboxes.(!nonempty) in
    ob.v_sorted && ob.v_uniform
  in
  if fast then begin
    let ob = t.outboxes.(!nonempty) in
    let d = ob.v_dst0 in
    check_dst n d;
    vec_swap ob t.inboxes.(d);
    vec_clear ob
  end
  else if !nonempty >= 0 then begin
    let m = t.merged in
    vec_clear m;
    (match t.tiebreak with
    | Src_then_seq ->
        for s = 0 to n - 1 do
          let ob = t.outboxes.(s) in
          for k = 0 to ob.v_len - 1 do
            vec_push m ~at:ob.v_at.(k) ~dst:ob.v_dst.(k) ob.v_pay.(k)
          done;
          vec_clear ob
        done
    | Reversed ->
        for s = n - 1 downto 0 do
          let ob = t.outboxes.(s) in
          for k = ob.v_len - 1 downto 0 do
            vec_push m ~at:ob.v_at.(k) ~dst:ob.v_dst.(k) ob.v_pay.(k)
          done;
          vec_clear ob
        done);
    if m.v_sorted then
      for k = 0 to m.v_len - 1 do
        let d = m.v_dst.(k) in
        check_dst n d;
        vec_push t.inboxes.(d) ~at:m.v_at.(k) ~dst:d m.v_pay.(k)
      done
    else begin
      (* Index sort with the index as final tie-break = a stable sort by
         timestamp over the concatenation, i.e. (time, src, seq). *)
      let idx = Array.init m.v_len (fun k -> k) in
      Array.sort
        (fun a b ->
          let c = Float.compare m.v_at.(a) m.v_at.(b) in
          if c <> 0 then c else compare a b)
        idx;
      Array.iter
        (fun k ->
          let d = m.v_dst.(k) in
          check_dst n d;
          vec_push t.inboxes.(d) ~at:m.v_at.(k) ~dst:d m.v_pay.(k))
        idx
    end
  end

(* One shard's window body: deliver its inbox, step it to the bound,
   collect emissions.  Runs on whichever lane owns shard [i]. *)
let exec_body t h counts i =
  let s = t.steppers.(i) in
  let ob = t.outboxes.(i) in
  let emit ~dst ~at pay =
    (* [not (at >= h)] also rejects a NaN timestamp *)
    if t.enforce && not (at >= h) then
      raise
        (Causality_violation
           (Printf.sprintf
              "shard %d emitted a message at t=%g for shard %d inside the \
               window it promised to stay out of (bound %g): its real \
               latency is below its declared lookahead %g"
              i at dst h s.st_lookahead));
    vec_push ob ~at ~dst pay
  in
  let ib = t.inboxes.(i) in
  counts.(i) <-
    s.st_step ~inbox_at:ib.v_at ~inbox_pay:ib.v_pay ~inbox_len:ib.v_len
      ~upto:h ~emit

let barrier_check t h counts fed =
  let stepped = Array.fold_left ( + ) 0 counts in
  if stepped = 0 && fed = 0 && not (all_drained t) then
    raise
      (Stalled
         (Printf.sprintf
            "round %d at window bound %g made no progress: a stepper's \
             st_next moved backwards or its lookahead promise is \
             inconsistent"
            t.rounds h))

let run_serial t =
  let n = Array.length t.steppers in
  let counts = Array.make n 0 in
  let finished = ref false in
  while not !finished do
    let h = window_bound t in
    if h = infinity && all_drained t then finished := true
    else begin
      t.rounds <- t.rounds + 1;
      let fed = Array.fold_left (fun a ib -> a + ib.v_len) 0 t.inboxes in
      t.delivered <- t.delivered + fed;
      for i = 0 to n - 1 do
        exec_body t h counts i
      done;
      merge_and_deal t;
      barrier_check t h counts fed
    end
  done

(* Parallel driver: a *persistent* pool of worker domains, one barrier
   round-trip per window, synchronised with a mutex and condition
   variable (spawning domains per round — Parallel.run's model — was
   measured to forfeit the whole pipelining win on a million-session
   open-arrival cell: a window is a few ms, a Domain.spawn ~100us plus
   a stop-the-world handshake; and blocking beats spinning both on one
   core, where a spin burns the victim's own timeslice, and on many,
   where a condvar wake is microseconds against a multi-ms window).
   Lane l owns shards congruent to l mod lanes; the main domain is lane
   0 and also plays coordinator.  Worker failures are parked per shard
   and re-raised on the main domain for the lowest shard index — the
   same deterministic contract as Parallel.run/run_units. *)
let run_pool t ~lanes =
  let n = Array.length t.steppers in
  let counts = Array.make n 0 in
  let failures = Array.make n None in
  let bound = ref infinity in
  let mtx = Mutex.create () in
  let cv = Condition.create () in
  (* protected by [mtx]: the round workers should execute (-1 = shut
     down) and how many lanes are still inside it; [bound], [counts] and
     the outboxes piggyback on the lock for cross-domain visibility *)
  let round = ref 0 in
  let busy = ref 0 in
  let do_lane l =
    let h = !bound in
    let i = ref l in
    while !i < n do
      (try exec_body t h counts !i
       with e ->
         failures.(!i) <- Some (e, Printexc.get_raw_backtrace ());
         counts.(!i) <- 0);
      i := !i + lanes
    done
  in
  let worker wi () =
    let seen = ref 0 in
    let stop = ref false in
    while not !stop do
      Mutex.lock mtx;
      while !round = !seen do
        Condition.wait cv mtx
      done;
      let r = !round in
      Mutex.unlock mtx;
      if r < 0 then stop := true
      else begin
        do_lane (wi + 1);
        seen := r;
        Mutex.lock mtx;
        decr busy;
        if !busy = 0 then Condition.broadcast cv;
        Mutex.unlock mtx
      end
    done
  in
  let doms = Array.init (lanes - 1) (fun wi -> Domain.spawn (worker wi)) in
  let rnum = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock mtx;
      round := -1;
      Condition.broadcast cv;
      Mutex.unlock mtx;
      Array.iter Domain.join doms)
    (fun () ->
      let finished = ref false in
      while not !finished do
        let h = window_bound t in
        if h = infinity && all_drained t then finished := true
        else begin
          t.rounds <- t.rounds + 1;
          let fed = Array.fold_left (fun a ib -> a + ib.v_len) 0 t.inboxes in
          t.delivered <- t.delivered + fed;
          bound := h;
          incr rnum;
          Mutex.lock mtx;
          round := !rnum;
          busy := lanes - 1;
          Condition.broadcast cv;
          Mutex.unlock mtx;
          do_lane 0;
          Mutex.lock mtx;
          while !busy > 0 do
            Condition.wait cv mtx
          done;
          Mutex.unlock mtx;
          Array.iteri
            (fun i f ->
              match f with
              | Some (e, bt) ->
                  failures.(i) <- None;
                  Printexc.raise_with_backtrace e bt
              | None -> ())
            failures;
          merge_and_deal t;
          barrier_check t h counts fed
        end
      done)

let run ?(par = false) ?jobs t =
  let n = Array.length t.steppers in
  let lanes =
    if not (par && n > 1) then 1
    else match jobs with None -> n | Some j -> max 1 (min j n)
  in
  if lanes = 1 then run_serial t else run_pool t ~lanes

(* --- wrapping a discrete-event engine as a shard --- *)

type engine_shard = {
  es_engine : Engine.t;
  es_stepper : (unit -> unit) stepper;
  mutable es_emit : (dst:int -> at:float -> (unit -> unit) -> unit) option;
}

let post es ~dst ~at thunk =
  match es.es_emit with
  | Some emit -> emit ~dst ~at thunk
  | None ->
      invalid_arg "Shard.post: engine shard is not inside a window body"

let engine_shard ?(lookahead = infinity) e =
  if lookahead < 0. then invalid_arg "Shard.engine_shard: negative lookahead";
  let rec es =
    {
      es_engine = e;
      es_emit = None;
      es_stepper =
        {
          st_next = (fun () -> Engine.next_time e);
          st_lookahead = lookahead;
          st_step =
            (fun ~inbox_at ~inbox_pay ~inbox_len ~upto ~emit ->
              (* Cross-shard thunks become ordinary engine events at
                 their merged positions: [schedule] hands them fresh
                 heap seqnos in delivery order, extending the
                 (time, src, seq) total order into the local heap. *)
              for k = 0 to inbox_len - 1 do
                Engine.schedule e ~at:inbox_at.(k) inbox_pay.(k)
              done;
              es.es_emit <- Some emit;
              let s0 = Engine.steps e in
              Fun.protect
                ~finally:(fun () -> es.es_emit <- None)
                (fun () -> Engine.run_until e upto);
              Engine.steps e - s0);
        };
    }
  in
  es

(* Run a conventional single-engine workload through the coordinator in
   lookahead-sized windows.  With no peer shard the window bound is the
   engine's own horizon, so this must be — and is pinned to be —
   byte-identical to a plain [Engine.run]: the degeneration test that
   licenses routing the 31 single-shard pinned experiments through
   either path. *)
let run_windowed ?(shards = 1) ?lookahead ?until ?par ?jobs e =
  let shards = max 1 shards in
  let main = engine_shard ?lookahead e in
  let stop = match until with Some u -> u | None -> infinity in
  let gated =
    if stop = infinity then main.es_stepper
    else
      {
        main.es_stepper with
        st_next =
          (fun () ->
            let t0 = Engine.next_time e in
            if t0 > stop then infinity else t0);
        st_step =
          (fun ~inbox_at ~inbox_pay ~inbox_len ~upto ~emit ->
            main.es_stepper.st_step ~inbox_at ~inbox_pay ~inbox_len
              ~upto:(Float.min upto stop) ~emit);
      }
  in
  let idle =
    {
      st_next = (fun () -> infinity);
      st_lookahead = infinity;
      st_step =
        (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto:_ ~emit:_ -> 0);
    }
  in
  let steppers =
    Array.init shards (fun i -> if i = 0 then gated else idle)
  in
  run ?par ?jobs (create steppers);
  (* Replicate the tail behaviour of a plain [Engine.run_until]: advance
     the clock to the horizon (or not, on an empty heap) exactly as the
     serial driver would have. *)
  match until with Some u -> Engine.run_until e u | None -> ()
