(** HDR-style latency histogram: log2 major buckets x 128 linear
    sub-buckets, <= 1% relative resolution error for any sample of at
    least 1 ns (range 1 ns .. ~275 s; larger samples clamp into the last
    bucket, sub-ns samples are exact to 1/128 ns). *)

type t

val create : unit -> t

(** Record one latency sample, in nanoseconds.  Negative and NaN
    samples land in the zero bucket. *)
val add : t -> float -> unit

val count : t -> int

(** Arithmetic mean of the recorded samples (exact, not bucketed). *)
val mean : t -> float

(** Accumulate [src]'s buckets into [into].  Bucket-wise integer
    addition: associative and commutative, so per-shard histograms
    combine deterministically in any order. *)
val merge : into:t -> t -> unit

(** Rank-interpolated percentile ([p] in 0..100; out-of-range ranks are
    clamped into [1, count], so [p >= 100.] reports the top bucket, never
    0).  The result lies within the sample's bucket: relative error is
    bounded by the 1/128 bucket resolution. *)
val percentile : t -> float -> float

(** FNV-1a digest of the integer bucket state (total + non-empty
    buckets).  Equal iff the recorded distributions are identical;
    insensitive to merge order. *)
val digest_hex : t -> string

val pp : Format.formatter -> t -> unit
