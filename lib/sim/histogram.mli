(** Fixed-bucket log2 histogram for latency distributions (1 ns .. ~1 s). *)

type t

val create : unit -> t

(** Record one latency sample, in nanoseconds. *)
val add : t -> float -> unit

val count : t -> int

(** Accumulate [src]'s buckets into [into]; counts are preserved. *)
val merge : into:t -> t -> unit

(** Approximate percentile ([p] in 0..100): the lower bound of the bucket
    containing that rank. *)
val percentile : t -> float -> float

val pp : Format.formatter -> t -> unit
