(* Fixed-bucket log2 histogram for latency distributions.

   Buckets are powers of two in nanoseconds; enough for the full range the
   benchmarks cover (1 ns .. ~1 s). *)

let buckets = 40

type t = { counts : int array; mutable total : int }

let create () = { counts = Array.make buckets 0; total = 0 }

let bucket_of ns =
  if ns <= 1. then 0
  else begin
    let b = int_of_float (Float.log2 ns) in
    if b < 0 then 0 else if b >= buckets then buckets - 1 else b
  end

let add t ns =
  let b = bucket_of ns in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let count t = t.total

let merge ~into src =
  Array.iteri (fun b c -> into.counts.(b) <- into.counts.(b) + c) src.counts;
  into.total <- into.total + src.total

let bucket_lower_bound b = 2. ** float_of_int b

(* Approximate percentile: lower bound of the bucket containing rank p. *)
let percentile t p =
  if t.total = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
    let rank = max 1 rank in
    let acc = ref 0 and result = ref 0. and found = ref false in
    for b = 0 to buckets - 1 do
      if not !found then begin
        acc := !acc + t.counts.(b);
        if !acc >= rank then begin
          result := bucket_lower_bound b;
          found := true
        end
      end
    done;
    !result
  end

let pp ppf t =
  Fmt.pf ppf "hist(n=%d" t.total;
  Array.iteri
    (fun b c -> if c > 0 then Fmt.pf ppf "; 2^%d:%d" b c)
    t.counts;
  Fmt.pf ppf ")"
