(* HDR-style latency histogram: log2 major buckets, each split into 128
   linear sub-buckets.

   Samples are recorded in fixed-point units of 1/128 ns.  The first 128
   indices are an exact linear region (one unit wide); above it, every
   power-of-two range [2^k, 2^(k+1)) units is split into 128 equal
   sub-buckets, so the bucket width is always <= 1/128 of the bucket's
   lower bound.  Reported percentiles therefore carry at most ~0.79%
   relative error for any sample >= 1 ns, across the full range the
   benchmarks cover (1 ns .. ~275 s).

   The representation is a plain counts array plus integer totals, so
   [merge] is exact bucket-wise addition: associative, commutative, and
   deterministic — per-shard histograms combine to the same state in any
   order, which the open-arrival sweeps rely on for --jobs invariance.
   The digest folds only integer state (bucket counts), never float
   accumulators. *)

let sub_bits = 7

let sub_count = 1 lsl sub_bits (* 128 linear sub-buckets per major *)

(* Highest major: units in [2^44, 2^45) — 2^38 ns, ~275 simulated
   seconds.  Larger samples clamp into the last bucket. *)
let top_major = 44

let buckets = sub_count * (top_major - sub_bits + 2)

let units_per_ns = float_of_int sub_count

(* Units at or above this value would overflow the index math; clamp. *)
let clamp_units = Float.ldexp 1. (top_major + 1)

type t = {
  counts : int array;
  mutable total : int;
  mutable sum_ns : float; (* for [mean] only; never digested *)
}

let create () = { counts = Array.make buckets 0; total = 0; sum_ns = 0. }

(* Position of the highest set bit of a positive int. *)
let msb n =
  let k = ref 0 and n = ref n in
  if !n lsr 32 <> 0 then begin
    k := !k + 32;
    n := !n lsr 32
  end;
  if !n land 0xFFFF0000 <> 0 then begin
    k := !k + 16;
    n := !n lsr 16
  end;
  if !n land 0xFF00 <> 0 then begin
    k := !k + 8;
    n := !n lsr 8
  end;
  if !n land 0xF0 <> 0 then begin
    k := !k + 4;
    n := !n lsr 4
  end;
  if !n land 0xC <> 0 then begin
    k := !k + 2;
    n := !n lsr 2
  end;
  if !n land 0x2 <> 0 then incr k;
  !k

let bucket_of ns =
  let u = ns *. units_per_ns in
  if not (u > 0.) then 0 (* negatives, zero and NaN land in bucket 0 *)
  else if u >= clamp_units then buckets - 1
  else begin
    let n = int_of_float u in
    if n < sub_count then n
    else begin
      let k = msb n in
      let sub = (n lsr (k - sub_bits)) - sub_count in
      sub_count + (((k - sub_bits) * sub_count) + sub)
    end
  end

(* Lower bound and width of bucket [b], in units. *)
let bucket_bounds b =
  if b < sub_count then (float_of_int b, 1.)
  else begin
    let j = b - sub_count in
    let k = sub_bits + (j / sub_count) in
    let sub = j mod sub_count in
    let w = Float.ldexp 1. (k - sub_bits) in
    (Float.ldexp 1. k +. (float_of_int sub *. w), w)
  end

let add t ns =
  let b = bucket_of ns in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.sum_ns <- t.sum_ns +. (if ns > 0. then ns else 0.)

let count t = t.total

let mean t = if t.total = 0 then 0. else t.sum_ns /. float_of_int t.total

let merge ~into src =
  Array.iteri (fun b c -> into.counts.(b) <- into.counts.(b) + c) src.counts;
  into.total <- into.total + src.total;
  into.sum_ns <- into.sum_ns +. src.sum_ns

(* Exact rank interpolation: the rank is clamped into [1, total] (p
   outside 0..100, or float rounding of p = 100. on large totals, must
   never fall off the end and report 0), then located by a cumulative
   walk; within the bucket the value is interpolated linearly by the
   rank's position among the bucket's samples.  The result always lies
   inside the bucket, so the <= 1% resolution bound holds for it too. *)
let percentile t p =
  if t.total = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else if rank > t.total then t.total else rank in
    let acc = ref 0 and b = ref 0 in
    while !acc + t.counts.(!b) < rank do
      acc := !acc + t.counts.(!b);
      incr b
    done;
    let lo, w = bucket_bounds !b in
    let pos = float_of_int (rank - !acc) /. float_of_int t.counts.(!b) in
    (lo +. (w *. pos)) /. units_per_ns
  end

(* --- deterministic digest ---

   FNV-1a over the integer state only: total, then every non-empty
   (bucket, count) pair in index order.  Two histograms digest equally
   iff their bucket contents are identical, regardless of merge order or
   float accumulator history. *)

let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let digest t =
  let h = ref fnv_offset in
  let fold v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  fold t.total;
  Array.iteri
    (fun b c ->
      if c > 0 then begin
        fold b;
        fold c
      end)
    t.counts;
  !h

let digest_hex t = Printf.sprintf "%016Lx" (digest t)

let pp ppf t =
  Fmt.pf ppf "hist(n=%d; mean=%.1f; p50=%.1f; p99=%.1f; p999=%.1f)" t.total
    (mean t) (percentile t 50.) (percentile t 99.) (percentile t 99.9)
