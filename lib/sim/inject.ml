(* Seeded, deterministic fault injection.

   A schedule is nothing more than a splitmix64 stream consumed one
   decision at a time, in the order the instrumented layers reach their
   injection points.  Because the simulation itself is deterministic,
   the sequence of decision points is a pure function of (workload,
   seed): the same seed reproduces the same fault schedule and therefore
   the same replay digest, which is what makes an injected failure
   replayable.

   The module only *decides*; the kernel and machine layers own the
   mechanics (re-scheduling a delayed IPI thunk, resetting the APL
   cache, ...).  With no injector installed every hook is a no-op and
   the event stream is byte-identical to an uninjected run. *)

type config = {
  ipi_delay_p : float;  (* P(IPI delivery is delayed) *)
  ipi_delay_ns : float;  (* mean extra delivery latency *)
  ipi_lose_p : float;  (* P(IPI is lost and redelivered by retry) *)
  ipi_retry_ns : float;  (* retry-timeout before redelivery *)
  spurious_wake_p : float;  (* P(a futex wait gets a spurious wake) *)
  spurious_delay_ns : float;  (* mean delay before the spurious wake *)
  preempt_p : float;  (* P(forced preemption at a consume boundary) *)
  apl_flush_p : float;  (* P(APL cache flushed at a domain crossing) *)
  creg_clobber_p : float;  (* P(cap regs clobbered+restored at crossing) *)
  creg_clobber_ns : float;  (* cost charged for the restore *)
}

let default_config =
  {
    ipi_delay_p = 0.08;
    ipi_delay_ns = 4_000.;
    ipi_lose_p = 0.02;
    ipi_retry_ns = 50_000.;
    spurious_wake_p = 0.08;
    spurious_delay_ns = 2_000.;
    preempt_p = 0.05;
    apl_flush_p = 0.10;
    creg_clobber_p = 0.10;
    creg_clobber_ns = 150.;
  }

let aggressive_config =
  {
    ipi_delay_p = 0.30;
    ipi_delay_ns = 20_000.;
    ipi_lose_p = 0.10;
    ipi_retry_ns = 100_000.;
    spurious_wake_p = 0.30;
    spurious_delay_ns = 10_000.;
    preempt_p = 0.20;
    apl_flush_p = 0.40;
    creg_clobber_p = 0.40;
    creg_clobber_ns = 300.;
  }

type stats = {
  mutable ipis_delayed : int;
  mutable ipis_lost : int;
  mutable spurious_wakes : int;
  mutable forced_preempts : int;
  mutable apl_flushes : int;
  mutable creg_clobbers : int;
}

type t = { rng : Rng.t; config : config; stats : stats }

let create ?(config = default_config) ~seed () =
  {
    rng = Rng.create ~seed;
    config;
    stats =
      {
        ipis_delayed = 0;
        ipis_lost = 0;
        spurious_wakes = 0;
        forced_preempts = 0;
        apl_flushes = 0;
        creg_clobbers = 0;
      };
  }

let config t = t.config

let stats t = t.stats

let total_faults t =
  let s = t.stats in
  s.ipis_delayed + s.ipis_lost + s.spurious_wakes + s.forced_preempts
  + s.apl_flushes + s.creg_clobbers

type ipi_outcome = Ipi_ok | Ipi_delayed of float | Ipi_lost of float

(* Decision points.  Each consumes a fixed prefix of the stream per
   branch taken, so the schedule is reproducible event for event. *)

let ipi_outcome t =
  let u = Rng.float t.rng in
  if u < t.config.ipi_lose_p then begin
    t.stats.ipis_lost <- t.stats.ipis_lost + 1;
    (* lost: the sleeper only comes back when the retry timer fires *)
    Ipi_lost (t.config.ipi_retry_ns *. (1.0 +. Rng.float t.rng))
  end
  else if u < t.config.ipi_lose_p +. t.config.ipi_delay_p then begin
    t.stats.ipis_delayed <- t.stats.ipis_delayed + 1;
    Ipi_delayed (t.config.ipi_delay_ns *. (0.5 +. Rng.float t.rng))
  end
  else Ipi_ok

let spurious_wakeup t =
  if Rng.float t.rng < t.config.spurious_wake_p then begin
    t.stats.spurious_wakes <- t.stats.spurious_wakes + 1;
    Some (t.config.spurious_delay_ns *. (0.5 +. Rng.float t.rng))
  end
  else None

let force_preempt t =
  let hit = Rng.float t.rng < t.config.preempt_p in
  if hit then t.stats.forced_preempts <- t.stats.forced_preempts + 1;
  hit

let apl_flush t =
  let hit = Rng.float t.rng < t.config.apl_flush_p in
  if hit then t.stats.apl_flushes <- t.stats.apl_flushes + 1;
  hit

let creg_clobber t =
  if Rng.float t.rng < t.config.creg_clobber_p then begin
    t.stats.creg_clobbers <- t.stats.creg_clobbers + 1;
    Some t.config.creg_clobber_ns
  end
  else None

let pp_stats ppf s =
  Fmt.pf ppf
    "ipis: %d delayed, %d lost; %d spurious wakes; %d forced preempts; %d \
     apl flushes; %d creg clobbers"
    s.ipis_delayed s.ipis_lost s.spurious_wakes s.forced_preempts
    s.apl_flushes s.creg_clobbers
