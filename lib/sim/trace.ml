(* Structured event tracing with deterministic replay fingerprints.

   Storage is struct-of-arrays: eight parallel flat arrays indexed by a
   ring cursor, so recording an event allocates nothing and the GC never
   sees the hot path.  The FNV-1a digest is folded over every emitted
   event (not just the ones the ring still holds), so it fingerprints the
   whole run even when the buffer wraps.

   Floats enter the digest through their IEEE-754 bit patterns
   (Int64.bits_of_float): equality of digests means bit-identical event
   streams, not approximately-equal ones. *)

type kind =
  | Sched
  | Spawn
  | Resume
  | Suspend
  | Ctxsw
  | Ipi
  | Syscall
  | Domain_cross
  | Fault
  | Charge
  | Dcs_push
  | Dcs_pop
  | Dcs_adjust
  | Xtag_access
  | Priv_op
  | Cap_revoke
  | Cap_use

(* New kinds must be appended, never inserted: [kind_index] feeds the
   replay digest, so renumbering an existing kind shifts every pinned
   golden digest. *)
let all_kinds =
  [ Sched; Spawn; Resume; Suspend; Ctxsw; Ipi; Syscall; Domain_cross; Fault; Charge
  ; Dcs_push; Dcs_pop; Dcs_adjust; Xtag_access; Priv_op; Cap_revoke; Cap_use ]

let kind_index = function
  | Sched -> 0
  | Spawn -> 1
  | Resume -> 2
  | Suspend -> 3
  | Ctxsw -> 4
  | Ipi -> 5
  | Syscall -> 6
  | Domain_cross -> 7
  | Fault -> 8
  | Charge -> 9
  | Dcs_push -> 10
  | Dcs_pop -> 11
  | Dcs_adjust -> 12
  | Xtag_access -> 13
  | Priv_op -> 14
  | Cap_revoke -> 15
  | Cap_use -> 16

let kind_name = function
  | Sched -> "sched"
  | Spawn -> "spawn"
  | Resume -> "resume"
  | Suspend -> "suspend"
  | Ctxsw -> "ctxsw"
  | Ipi -> "ipi"
  | Syscall -> "syscall"
  | Domain_cross -> "domain-cross"
  | Fault -> "fault"
  | Charge -> "charge"
  | Dcs_push -> "dcs-push"
  | Dcs_pop -> "dcs-pop"
  | Dcs_adjust -> "dcs-adjust"
  | Xtag_access -> "xtag-access"
  | Priv_op -> "priv-op"
  | Cap_revoke -> "cap-revoke"
  | Cap_use -> "cap-use"

let kind_of_index i = List.nth all_kinds i

type event = {
  e_ts : float;
  e_kind : kind;
  e_cpu : int;
  e_tid : int;
  e_tag : int;
  e_cat : Breakdown.category option;
  e_dur : float;
  e_arg : int;
}

type t = {
  on : bool;
  cap : int;
  ts : float array;
  kinds : int array;
  cpus : int array;
  tids : int array;
  tags : int array;
  cats : int array; (* Breakdown.category_index, -1 for none *)
  durs : float array;
  args : int array;
  mutable head : int; (* next write slot *)
  mutable len : int; (* valid entries, <= cap *)
  mutable count : int; (* lifetime emits *)
  (* Streaming FNV-1a over all emits, stored as two 32-bit halves in
     immediate ints.  [emit] computes the whole event's fold in unboxed
     Int64 registers and stores the halves back as plain ints: an
     [int64] field would box a fresh value (and write-barrier the store)
     on every event.  [digest] reassembles the halves. *)
  mutable hash_lo : int; (* bits 0..31 *)
  mutable hash_hi : int; (* bits 32..63 *)
  (* Optional online observer (the invariant checker).  Called after the
     event is digested and stored; it cannot influence the digest or the
     ring, only observe the stream. *)
  mutable sink : (event -> unit) option;
}

(* --- the digest ---

   FNV-1a, 64-bit: offset basis 0xCBF29CE484222325, prime
   p = 0x100000001B3.  One step is h <- (h lxor b) * p mod 2^64, folded
   over the 64 bytes of every event (eight 8-byte fields).  The byte
   fold is a serial dependency chain — each multiply waits on the last —
   and at ~9M events per OLTP run it dominated traced simulations.

   The fast paths below shortcut the chain *exactly* (bit-identical
   digests; the golden-digest test is the gate).  They rest on one
   identity: xor only touches the low byte, and for any h and byte b,

     h lxor b = h + d   where d = ((h land 0xff) lxor b) - (h land 0xff)

   so one FNV step is (h + d) * p.  Folding a zero byte (b = 0) gives
   d = 0: the step degenerates to h * p.  Hence

     - an 8-byte field that is all zeros folds to      h * p^8
     - a field with one significant low byte folds to  (h + d0) * p^8
     - two significant low bytes fold to               (h + d0) * p^8 + d1 * p^7

   where d1 needs the low byte of the intermediate hash: low8((h+d0)*p)
   = (y0 * 0xB3) land 0xff with y0 = low8(h) lxor b0, because
   p land 0xff = 0xB3 and the higher terms of the product are multiples
   of 256.  An all-0xff field (an int -1) folds through a 256-entry
   table indexed by low8(h): mix(h, -1) = h * p^8 + d_ff.(low8 h), the
   table filled once from the reference fold.

   Trace fields are overwhelmingly small non-negative ints, -1
   ("missing"), or 0.0 durations, so most events take a handful of
   multiplies instead of 64.  Arbitrary values (timestamps, real
   durations, large args) fall back to the unrolled serial chain, which
   the compiler keeps in unboxed Int64 registers (a chain of [let]s, no
   [ref] — a boxed accumulator costs an allocation per byte).

   The serial chains are written *inline* inside the emit functions for
   the float fields and the two-byte int case: the compiler (Closure
   mode, no flambda) does not inline the out-of-line helpers, and a
   call with an [int64] argument boxes it — one allocation and a call
   per event on the timestamp fold alone.  The named helpers below
   remain as the reference implementations and serve the cold paths. *)

let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

(* Reference byte-at-a-time fold; ground truth for the fast paths (the
   property tests compare against it) and source of the [d_ff] table. *)
let mix64 h v =
  let h = ref h in
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let fnv_prime_2 = Int64.mul fnv_prime fnv_prime

let fnv_prime_4 = Int64.mul fnv_prime_2 fnv_prime_2

let fnv_prime_7 = Int64.mul fnv_prime_4 (Int64.mul fnv_prime_2 fnv_prime)

let fnv_prime_8 = Int64.mul fnv_prime_4 fnv_prime_4

(* d_ff.(l) = mix64 h (-1L) - h * p^8  for any h with low byte [l]: the
   correction term only depends on the low byte, so tabulating it from
   h = l is exact for every h. *)
let d_ff =
  Array.init 256 (fun l ->
      let h = Int64.of_int l in
      Int64.sub (mix64 h (-1L)) (Int64.mul h fnv_prime_8))

(* Serial fold of the 8 bytes of native int [v] (sign-extended, as
   Int64.of_int would give), unrolled so the hash stays in unboxed
   registers end to end. *)
let mix_int_slow h v =
  let p = fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int (v land 0xff))) p in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((v asr 8) land 0xff))) p in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((v asr 16) land 0xff))) p in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((v asr 24) land 0xff))) p in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((v asr 32) land 0xff))) p in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((v asr 40) land 0xff))) p in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((v asr 48) land 0xff))) p in
  Int64.mul (Int64.logxor h (Int64.of_int ((v asr 56) land 0xff))) p

(* Fold one int field, out-of-line tail of the inline dispatch in
   [emit]: fast path for 256..65535 per the identities above, serial
   chain otherwise (the 0..255 and -1 cases are inlined at the call
   sites — without flambda, a call per field would dominate). *)
let mix_int_any h v =
  if v land -65536 = 0 then begin
    (* bytes [b0, b1, 0 x6] *)
    let l0 = Int64.to_int h land 0xff in
    let y0 = l0 lxor (v land 0xff) in
    let l1 = y0 * 0xB3 land 0xff in
    let d1 = (l1 lxor (v lsr 8)) - l1 in
    Int64.add
      (Int64.mul (Int64.add h (Int64.of_int (y0 - l0))) fnv_prime_8)
      (Int64.mul (Int64.of_int d1) fnv_prime_7)
  end
  else mix_int_slow h v

let make ~on ~capacity =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    on;
    cap = capacity;
    ts = Array.make capacity 0.;
    kinds = Array.make capacity 0;
    cpus = Array.make capacity (-1);
    tids = Array.make capacity (-1);
    tags = Array.make capacity (-1);
    cats = Array.make capacity (-1);
    durs = Array.make capacity 0.;
    args = Array.make capacity 0;
    head = 0;
    len = 0;
    count = 0;
    hash_lo = Int64.to_int (Int64.logand fnv_offset 0xFFFFFFFFL);
    hash_hi = Int64.to_int (Int64.shift_right_logical fnv_offset 32);
    sink = None;
  }

let null = make ~on:false ~capacity:1

let create ?(capacity = 65536) () = make ~on:true ~capacity

let enabled t = t.on

let set_sink t sink = t.sink <- sink

(* Ring store shared by the emit entry points.  [head] is always a
   valid index (< cap, every array is [cap] long), so the stores skip
   the bounds checks; the wrap is a compare instead of a [mod] — an
   integer divide would cost more than the rest of the store. *)
let store t ~ts ~ki ~cpu ~tid ~tag ~ci ~dur ~arg =
  let i = t.head in
  Array.unsafe_set t.ts i ts;
  Array.unsafe_set t.kinds i ki;
  Array.unsafe_set t.cpus i cpu;
  Array.unsafe_set t.tids i tid;
  Array.unsafe_set t.tags i tag;
  Array.unsafe_set t.cats i ci;
  Array.unsafe_set t.durs i dur;
  Array.unsafe_set t.args i arg;
  let i1 = i + 1 in
  t.head <- (if i1 = t.cap then 0 else i1);
  if t.len < t.cap then t.len <- t.len + 1;
  t.count <- t.count + 1

(* Out-of-line sink dispatch shared by the emit entry points: the event
   record is only materialised when an observer is installed, so the
   sink-free hot path pays one load and branch. *)
let feed_sink t ~ts ~ki ~cpu ~tid ~tag ~ci ~dur ~arg =
  match t.sink with
  | None -> ()
  | Some f ->
      f
        {
          e_ts = ts;
          e_kind = kind_of_index ki;
          e_cpu = cpu;
          e_tid = tid;
          e_tag = tag;
          e_cat =
            (if ci < 0 then None
             else Some (List.nth Breakdown.all_categories ci));
          e_dur = dur;
          e_arg = arg;
        }

let emit t ~ts ?(cpu = -1) ?(tid = -1) ?(tag = -1) ?cat ?(dur = 0.) ?(arg = 0) kind =
  if t.on then begin
    let ci = match cat with None -> -1 | Some c -> Breakdown.category_index c in
    let ki = kind_index kind in
    (* Fold the event into the digest.  The whole fold runs on a local
       [h] in unboxed Int64 registers — one reassembly at entry, one
       halves store at exit, zero allocation.  Per int field the
       dispatch is inlined: small non-negative (the common case: kind,
       cpu, tid, most tags/args) is one add+multiply, -1 ("missing") one
       multiply and a table lookup, anything else goes out of line. *)
    let h =
      Int64.logor
        (Int64.shift_left (Int64.of_int t.hash_hi) 32)
        (Int64.of_int t.hash_lo)
    in
    let h =
      let bits = Int64.bits_of_float ts in
      if bits = 0L then Int64.mul h fnv_prime_8
      else begin
        let p = fnv_prime in
        let lo32 = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
        if lo32 = 0 then begin
          let w = Int64.to_int (Int64.shift_right_logical bits 32) in
          let h = Int64.mul h fnv_prime_4 in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (w land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 16) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 24) land 0xff))) p
        end
        else begin
          let low = Int64.to_int (Int64.logand bits 0xFFFFFFFFFFFFFFL) in
          let b7 = Int64.to_int (Int64.shift_right_logical bits 56) land 0xff in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (low land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 16) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 24) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 32) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 40) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 48) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int b7)) p
        end
      end
    in
    (* ki is always a small kind index: unconditional fast path. *)
    let h =
      let l0 = Int64.to_int h land 0xff in
      Int64.mul (Int64.add h (Int64.of_int ((l0 lxor ki) - l0))) fnv_prime_8
    in
    let h =
      if cpu land -256 = 0 then
        let l0 = Int64.to_int h land 0xff in
        Int64.mul (Int64.add h (Int64.of_int ((l0 lxor cpu) - l0))) fnv_prime_8
      else if cpu = -1 then
        Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff)
      else mix_int_any h cpu
    in
    let h =
      if tid land -256 = 0 then
        let l0 = Int64.to_int h land 0xff in
        Int64.mul (Int64.add h (Int64.of_int ((l0 lxor tid) - l0))) fnv_prime_8
      else if tid = -1 then
        Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff)
      else if tid land -65536 = 0 then begin
        let l0 = Int64.to_int h land 0xff in
        let y0 = l0 lxor (tid land 0xff) in
        let l1 = y0 * 0xB3 land 0xff in
        let d1 = (l1 lxor (tid lsr 8)) - l1 in
        Int64.add
          (Int64.mul (Int64.add h (Int64.of_int (y0 - l0))) fnv_prime_8)
          (Int64.mul (Int64.of_int d1) fnv_prime_7)
      end
      else mix_int_any h tid
    in
    let h =
      if tag land -256 = 0 then
        let l0 = Int64.to_int h land 0xff in
        Int64.mul (Int64.add h (Int64.of_int ((l0 lxor tag) - l0))) fnv_prime_8
      else if tag = -1 then
        Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff)
      else mix_int_any h tag
    in
    (* ci is always -1 or a small category index. *)
    let h =
      if ci >= 0 then
        let l0 = Int64.to_int h land 0xff in
        Int64.mul (Int64.add h (Int64.of_int ((l0 lxor ci) - l0))) fnv_prime_8
      else Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff)
    in
    let h =
      let bits = Int64.bits_of_float dur in
      if bits = 0L then Int64.mul h fnv_prime_8
      else begin
        let p = fnv_prime in
        let lo32 = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
        if lo32 = 0 then begin
          let w = Int64.to_int (Int64.shift_right_logical bits 32) in
          let h = Int64.mul h fnv_prime_4 in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (w land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 16) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 24) land 0xff))) p
        end
        else begin
          let low = Int64.to_int (Int64.logand bits 0xFFFFFFFFFFFFFFL) in
          let b7 = Int64.to_int (Int64.shift_right_logical bits 56) land 0xff in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (low land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 16) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 24) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 32) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 40) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 48) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int b7)) p
        end
      end
    in
    let h =
      if arg land -256 = 0 then
        let l0 = Int64.to_int h land 0xff in
        Int64.mul (Int64.add h (Int64.of_int ((l0 lxor arg) - l0))) fnv_prime_8
      else if arg = -1 then
        Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff)
      else mix_int_any h arg
    in
    t.hash_lo <- Int64.to_int (Int64.logand h 0xFFFFFFFFL);
    t.hash_hi <- Int64.to_int (Int64.shift_right_logical h 32);
    store t ~ts ~ki ~cpu ~tid ~tag ~ci ~dur ~arg;
    match t.sink with
    | None -> ()
    | Some _ -> feed_sink t ~ts ~ki ~cpu ~tid ~tag ~ci ~dur ~arg
  end

(* Lean hot-path variants of [emit].  Digest- and ring-identical to the
   equivalent [emit] call; they exist because their call sites fire
   millions of times per run and the general entry point's optional
   arguments (a [Some] box per present option, a boxed default per
   absent one) plus the generic per-field dispatch were measurable
   there.  Every defaulted field still folds into the digest — as the
   same -1/0/0.0 the general path would fold — so a run traced through
   these produces the same fingerprint byte for byte. *)

(* [emit t ~ts kind]: every optional field defaulted (the engine's
   scheduling events).  The 0/0.0 fields fold to bare multiplies
   (d = 0); the four -1 fields walk the correction table. *)
let emit_bare t ~ts kind =
  if t.on then begin
    let ki = kind_index kind in
    let h =
      Int64.logor
        (Int64.shift_left (Int64.of_int t.hash_hi) 32)
        (Int64.of_int t.hash_lo)
    in
    let h =
      let bits = Int64.bits_of_float ts in
      if bits = 0L then Int64.mul h fnv_prime_8
      else begin
        let p = fnv_prime in
        let lo32 = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
        if lo32 = 0 then begin
          let w = Int64.to_int (Int64.shift_right_logical bits 32) in
          let h = Int64.mul h fnv_prime_4 in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (w land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 16) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 24) land 0xff))) p
        end
        else begin
          let low = Int64.to_int (Int64.logand bits 0xFFFFFFFFFFFFFFL) in
          let b7 = Int64.to_int (Int64.shift_right_logical bits 56) land 0xff in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (low land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 16) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 24) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 32) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 40) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 48) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int b7)) p
        end
      end
    in
    (* ki is always a small kind index *)
    let h =
      let l0 = Int64.to_int h land 0xff in
      Int64.mul (Int64.add h (Int64.of_int ((l0 lxor ki) - l0))) fnv_prime_8
    in
    (* cpu, tid, tag, ci = -1 *)
    let h = Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff) in
    let h = Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff) in
    let h = Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff) in
    let h = Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff) in
    (* dur = 0., arg = 0 *)
    let h = Int64.mul h fnv_prime_8 in
    let h = Int64.mul h fnv_prime_8 in
    t.hash_lo <- Int64.to_int (Int64.logand h 0xFFFFFFFFL);
    t.hash_hi <- Int64.to_int (Int64.shift_right_logical h 32);
    store t ~ts ~ki ~cpu:(-1) ~tid:(-1) ~tag:(-1) ~ci:(-1) ~dur:0. ~arg:0;
    match t.sink with
    | None -> ()
    | Some _ -> feed_sink t ~ts ~ki ~cpu:(-1) ~tid:(-1) ~tag:(-1) ~ci:(-1) ~dur:0. ~arg:0
  end

(* [emit t ~ts ~cpu ~tid ~cat ~dur Charge] (tag and arg defaulted): the
   cost-attribution event every [Kernel.charge] emits. *)
let emit_charge t ~ts ~cpu ~tid ~cat ~dur =
  if t.on then begin
    let ci = Breakdown.category_index cat in
    let h =
      Int64.logor
        (Int64.shift_left (Int64.of_int t.hash_hi) 32)
        (Int64.of_int t.hash_lo)
    in
    let h =
      let bits = Int64.bits_of_float ts in
      if bits = 0L then Int64.mul h fnv_prime_8
      else begin
        let p = fnv_prime in
        let lo32 = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
        if lo32 = 0 then begin
          let w = Int64.to_int (Int64.shift_right_logical bits 32) in
          let h = Int64.mul h fnv_prime_4 in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (w land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 16) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 24) land 0xff))) p
        end
        else begin
          let low = Int64.to_int (Int64.logand bits 0xFFFFFFFFFFFFFFL) in
          let b7 = Int64.to_int (Int64.shift_right_logical bits 56) land 0xff in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (low land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 16) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 24) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 32) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 40) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 48) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int b7)) p
        end
      end
    in
    (* ki = 9 (Charge) *)
    let h =
      let l0 = Int64.to_int h land 0xff in
      Int64.mul (Int64.add h (Int64.of_int ((l0 lxor 9) - l0))) fnv_prime_8
    in
    let h =
      if cpu land -256 = 0 then
        let l0 = Int64.to_int h land 0xff in
        Int64.mul (Int64.add h (Int64.of_int ((l0 lxor cpu) - l0))) fnv_prime_8
      else if cpu = -1 then
        Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff)
      else mix_int_any h cpu
    in
    let h =
      if tid land -256 = 0 then
        let l0 = Int64.to_int h land 0xff in
        Int64.mul (Int64.add h (Int64.of_int ((l0 lxor tid) - l0))) fnv_prime_8
      else if tid = -1 then
        Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff)
      else if tid land -65536 = 0 then begin
        let l0 = Int64.to_int h land 0xff in
        let y0 = l0 lxor (tid land 0xff) in
        let l1 = y0 * 0xB3 land 0xff in
        let d1 = (l1 lxor (tid lsr 8)) - l1 in
        Int64.add
          (Int64.mul (Int64.add h (Int64.of_int (y0 - l0))) fnv_prime_8)
          (Int64.mul (Int64.of_int d1) fnv_prime_7)
      end
      else mix_int_any h tid
    in
    (* tag = -1 *)
    let h = Int64.add (Int64.mul h fnv_prime_8) d_ff.(Int64.to_int h land 0xff) in
    (* ci: a category index, always small and non-negative *)
    let h =
      let l0 = Int64.to_int h land 0xff in
      Int64.mul (Int64.add h (Int64.of_int ((l0 lxor ci) - l0))) fnv_prime_8
    in
    let h =
      let bits = Int64.bits_of_float dur in
      if bits = 0L then Int64.mul h fnv_prime_8
      else begin
        let p = fnv_prime in
        let lo32 = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
        if lo32 = 0 then begin
          let w = Int64.to_int (Int64.shift_right_logical bits 32) in
          let h = Int64.mul h fnv_prime_4 in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (w land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 16) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int ((w lsr 24) land 0xff))) p
        end
        else begin
          let low = Int64.to_int (Int64.logand bits 0xFFFFFFFFFFFFFFL) in
          let b7 = Int64.to_int (Int64.shift_right_logical bits 56) land 0xff in
          let h = Int64.mul (Int64.logxor h (Int64.of_int (low land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 8) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 16) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 24) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 32) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 40) land 0xff))) p in
          let h = Int64.mul (Int64.logxor h (Int64.of_int ((low lsr 48) land 0xff))) p in
          Int64.mul (Int64.logxor h (Int64.of_int b7)) p
        end
      end
    in
    (* arg = 0 *)
    let h = Int64.mul h fnv_prime_8 in
    t.hash_lo <- Int64.to_int (Int64.logand h 0xFFFFFFFFL);
    t.hash_hi <- Int64.to_int (Int64.shift_right_logical h 32);
    store t ~ts ~ki:9 ~cpu ~tid ~tag:(-1) ~ci ~dur ~arg:0;
    match t.sink with
    | None -> ()
    | Some _ -> feed_sink t ~ts ~ki:9 ~cpu ~tid ~tag:(-1) ~ci ~dur ~arg:0
  end

let total t = t.count

let dropped t = t.count - t.len

let digest t =
  Int64.logor
    (Int64.shift_left (Int64.of_int t.hash_hi) 32)
    (Int64.of_int t.hash_lo)

let digest_hex t = Printf.sprintf "%016Lx" (digest t)

let nth_event t j =
  let i = (t.head - t.len + j + t.cap + t.cap) mod t.cap in
  {
    e_ts = t.ts.(i);
    e_kind = kind_of_index t.kinds.(i);
    e_cpu = t.cpus.(i);
    e_tid = t.tids.(i);
    e_tag = t.tags.(i);
    e_cat =
      (if t.cats.(i) < 0 then None
       else Some (List.nth Breakdown.all_categories t.cats.(i)));
    e_dur = t.durs.(i);
    e_arg = t.args.(i);
  }

let events t = List.init t.len (nth_event t)

(* --- Chrome trace_event export --- *)

(* chrome://tracing timestamps are microseconds; we keep sub-ns precision
   with six fractional digits. *)
let us ns = ns /. 1000.

let add_chrome_event buf ev ~first =
  if not first then Buffer.add_string buf ",\n";
  let name =
    match (ev.e_kind, ev.e_cat) with
    | Charge, Some c -> Breakdown.category_name c
    | k, _ -> kind_name k
  in
  let pid = if ev.e_cpu < 0 then 0 else ev.e_cpu in
  let tid = if ev.e_tid < 0 then 0 else ev.e_tid in
  (match ev.e_kind with
  | Charge ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"X","ts":%.6f,"dur":%.6f,"pid":%d,"tid":%d,"args":{"tag":%d,"arg":%d}}|}
           name (kind_name ev.e_kind) (us ev.e_ts) (us ev.e_dur) pid tid ev.e_tag
           ev.e_arg)
  | _ ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"i","s":"t","ts":%.6f,"pid":%d,"tid":%d,"args":{"tag":%d,"arg":%d}}|}
           name (kind_name ev.e_kind) (us ev.e_ts) pid tid ev.e_tag ev.e_arg))

let to_chrome_string t =
  let buf = Buffer.create (256 * (t.len + 2)) in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  for j = 0 to t.len - 1 do
    add_chrome_event buf (nth_event t j) ~first:(j = 0)
  done;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents buf

let write_chrome oc t = output_string oc (to_chrome_string t)

let pp_event ppf ev =
  Fmt.pf ppf "%.1fns %s cpu=%d tid=%d tag=%d%a%a arg=%d" ev.e_ts
    (kind_name ev.e_kind) ev.e_cpu ev.e_tid ev.e_tag
    (fun ppf -> function
      | None -> ()
      | Some c -> Fmt.pf ppf " cat=%s" (Breakdown.category_name c))
    ev.e_cat
    (fun ppf d -> if d > 0. then Fmt.pf ppf " dur=%.1f" d)
    ev.e_dur ev.e_arg
