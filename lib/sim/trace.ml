(* Structured event tracing with deterministic replay fingerprints.

   Storage is struct-of-arrays: eight parallel flat arrays indexed by a
   ring cursor, so recording an event allocates nothing and the GC never
   sees the hot path.  The FNV-1a digest is folded over every emitted
   event (not just the ones the ring still holds), so it fingerprints the
   whole run even when the buffer wraps.

   Floats enter the digest through their IEEE-754 bit patterns
   (Int64.bits_of_float): equality of digests means bit-identical event
   streams, not approximately-equal ones. *)

type kind =
  | Sched
  | Spawn
  | Resume
  | Suspend
  | Ctxsw
  | Ipi
  | Syscall
  | Domain_cross
  | Fault
  | Charge

let all_kinds =
  [ Sched; Spawn; Resume; Suspend; Ctxsw; Ipi; Syscall; Domain_cross; Fault; Charge ]

let kind_index = function
  | Sched -> 0
  | Spawn -> 1
  | Resume -> 2
  | Suspend -> 3
  | Ctxsw -> 4
  | Ipi -> 5
  | Syscall -> 6
  | Domain_cross -> 7
  | Fault -> 8
  | Charge -> 9

let kind_name = function
  | Sched -> "sched"
  | Spawn -> "spawn"
  | Resume -> "resume"
  | Suspend -> "suspend"
  | Ctxsw -> "ctxsw"
  | Ipi -> "ipi"
  | Syscall -> "syscall"
  | Domain_cross -> "domain-cross"
  | Fault -> "fault"
  | Charge -> "charge"

let kind_of_index i = List.nth all_kinds i

type event = {
  e_ts : float;
  e_kind : kind;
  e_cpu : int;
  e_tid : int;
  e_tag : int;
  e_cat : Breakdown.category option;
  e_dur : float;
  e_arg : int;
}

type t = {
  on : bool;
  cap : int;
  ts : float array;
  kinds : int array;
  cpus : int array;
  tids : int array;
  tags : int array;
  cats : int array; (* Breakdown.category_index, -1 for none *)
  durs : float array;
  args : int array;
  mutable head : int; (* next write slot *)
  mutable len : int; (* valid entries, <= cap *)
  mutable count : int; (* lifetime emits *)
  mutable hash : int64; (* streaming FNV-1a over all emits *)
}

(* FNV-1a, 64-bit. *)
let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let mix64 h v =
  let h = ref h in
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let make ~on ~capacity =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    on;
    cap = capacity;
    ts = Array.make capacity 0.;
    kinds = Array.make capacity 0;
    cpus = Array.make capacity (-1);
    tids = Array.make capacity (-1);
    tags = Array.make capacity (-1);
    cats = Array.make capacity (-1);
    durs = Array.make capacity 0.;
    args = Array.make capacity 0;
    head = 0;
    len = 0;
    count = 0;
    hash = fnv_offset;
  }

let null = make ~on:false ~capacity:1

let create ?(capacity = 65536) () = make ~on:true ~capacity

let enabled t = t.on

let emit t ~ts ?(cpu = -1) ?(tid = -1) ?(tag = -1) ?cat ?(dur = 0.) ?(arg = 0) kind =
  if t.on then begin
    let ci = match cat with None -> -1 | Some c -> Breakdown.category_index c in
    let ki = kind_index kind in
    let h = mix64 t.hash (Int64.bits_of_float ts) in
    let h = mix64 h (Int64.of_int ki) in
    let h = mix64 h (Int64.of_int cpu) in
    let h = mix64 h (Int64.of_int tid) in
    let h = mix64 h (Int64.of_int tag) in
    let h = mix64 h (Int64.of_int ci) in
    let h = mix64 h (Int64.bits_of_float dur) in
    let h = mix64 h (Int64.of_int arg) in
    t.hash <- h;
    let i = t.head in
    t.ts.(i) <- ts;
    t.kinds.(i) <- ki;
    t.cpus.(i) <- cpu;
    t.tids.(i) <- tid;
    t.tags.(i) <- tag;
    t.cats.(i) <- ci;
    t.durs.(i) <- dur;
    t.args.(i) <- arg;
    t.head <- (i + 1) mod t.cap;
    if t.len < t.cap then t.len <- t.len + 1;
    t.count <- t.count + 1
  end

let total t = t.count

let dropped t = t.count - t.len

let digest t = t.hash

let digest_hex t = Printf.sprintf "%016Lx" t.hash

let nth_event t j =
  let i = (t.head - t.len + j + t.cap + t.cap) mod t.cap in
  {
    e_ts = t.ts.(i);
    e_kind = kind_of_index t.kinds.(i);
    e_cpu = t.cpus.(i);
    e_tid = t.tids.(i);
    e_tag = t.tags.(i);
    e_cat =
      (if t.cats.(i) < 0 then None
       else Some (List.nth Breakdown.all_categories t.cats.(i)));
    e_dur = t.durs.(i);
    e_arg = t.args.(i);
  }

let events t = List.init t.len (nth_event t)

(* --- Chrome trace_event export --- *)

(* chrome://tracing timestamps are microseconds; we keep sub-ns precision
   with six fractional digits. *)
let us ns = ns /. 1000.

let add_chrome_event buf ev ~first =
  if not first then Buffer.add_string buf ",\n";
  let name =
    match (ev.e_kind, ev.e_cat) with
    | Charge, Some c -> Breakdown.category_name c
    | k, _ -> kind_name k
  in
  let pid = if ev.e_cpu < 0 then 0 else ev.e_cpu in
  let tid = if ev.e_tid < 0 then 0 else ev.e_tid in
  (match ev.e_kind with
  | Charge ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"X","ts":%.6f,"dur":%.6f,"pid":%d,"tid":%d,"args":{"tag":%d,"arg":%d}}|}
           name (kind_name ev.e_kind) (us ev.e_ts) (us ev.e_dur) pid tid ev.e_tag
           ev.e_arg)
  | _ ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"i","s":"t","ts":%.6f,"pid":%d,"tid":%d,"args":{"tag":%d,"arg":%d}}|}
           name (kind_name ev.e_kind) (us ev.e_ts) pid tid ev.e_tag ev.e_arg))

let to_chrome_string t =
  let buf = Buffer.create (256 * (t.len + 2)) in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  for j = 0 to t.len - 1 do
    add_chrome_event buf (nth_event t j) ~first:(j = 0)
  done;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents buf

let write_chrome oc t = output_string oc (to_chrome_string t)

let pp_event ppf ev =
  Fmt.pf ppf "%.1fns %s cpu=%d tid=%d tag=%d%a%a arg=%d" ev.e_ts
    (kind_name ev.e_kind) ev.e_cpu ev.e_tid ev.e_tag
    (fun ppf -> function
      | None -> ()
      | Some c -> Fmt.pf ppf " cat=%s" (Breakdown.category_name c))
    ev.e_cat
    (fun ppf d -> if d > 0. then Fmt.pf ppf " dur=%.1f" d)
    ev.e_dur ev.e_arg
