(** Structured event tracing with deterministic replay fingerprints.

    A trace is a fixed-capacity ring buffer of flat event records plus a
    streaming FNV-1a digest over the {e entire} event stream (including
    events the ring has already overwritten).  Two runs with the same RNG
    seeds produce byte-identical event streams and therefore identical
    digests, which makes the digest a replay fingerprint the determinism
    regression tests can assert on.

    Tracing is strictly observational: emitting events never advances
    simulated time, so enabling a trace must not change any simulated
    result.  The disabled sink {!null} makes every [emit] a single load
    and branch, with no allocation — hot paths guard with {!enabled}
    before building optional arguments. *)

type kind =
  | Sched  (** a raw engine event was queued *)
  | Spawn  (** a simulated thread was created *)
  | Resume  (** a suspended thread's waker fired *)
  | Suspend  (** a thread parked on a waker *)
  | Ctxsw  (** a CPU switched to a different thread *)
  | Ipi  (** inter-processor interrupt sent ([arg] = target tid) or handled *)
  | Syscall  (** syscall entry/dispatch overhead charged *)
  | Domain_cross  (** CODOMs domain switch ([tag] = new, [arg] = old) *)
  | Fault  (** a protection fault was raised ([arg] = faulting pc) *)
  | Charge  (** [dur] nanoseconds charged to category [cat] *)
  | Dcs_push  (** a frame was pushed on a DCS ([arg] = resulting depth) *)
  | Dcs_pop  (** a DCS frame was popped ([arg] = resulting depth) *)
  | Dcs_adjust
      (** a DCS switch/restore re-based the stack ([arg] = resulting
          depth) — depth may jump by more than one *)
  | Xtag_access
      (** data access crossing a tag boundary ([tag] = destination page's
          tag, [arg] = accessor's tag, [cpu] = authority code: 1 = held
          capability, 2 = APL grant, 3 = posture downgrade let an
          unauthorized access retire.  Code 0 ("no authority") is never
          machine-emitted — the checker flags it *)
  | Priv_op
      (** a privileged instruction executed ([cpu] = authority code: 1 =
          the context held the priv bit, 2 = posture downgrade; 0 is
          never machine-emitted — the checker flags it; [arg] = pc) *)
  | Cap_revoke
      (** an asynchronous capability revocation ([tag] = owner tag,
          [arg] = revocation counter, [cpu] = table value after the
          bump) *)
  | Cap_use
      (** an asynchronous capability was exercised ([tag] = owner tag,
          [arg] = revocation counter, [cpu] = value stamped at
          creation) *)

val kind_name : kind -> string

(** A materialised event record (the ring itself stores flat arrays).
    Missing fields are [-1] (ints) / [None] (category) / [0.] ([dur]). *)
type event = {
  e_ts : float;  (** simulated time, ns *)
  e_kind : kind;
  e_cpu : int;
  e_tid : int;
  e_tag : int;  (** CODOMs domain tag, where known *)
  e_cat : Breakdown.category option;
  e_dur : float;  (** duration charged, ns ([Charge] events) *)
  e_arg : int;  (** kind-specific extra payload *)
}

type t

(** The always-disabled sink: emitting into it is a no-op. *)
val null : t

(** An enabled trace keeping the last [capacity] events (default 65536). *)
val create : ?capacity:int -> unit -> t

val enabled : t -> bool

(** Install (or clear) an online observer called with every emitted
    event, after it has been digested and stored.  The sink is strictly
    read-only with respect to the trace: it cannot perturb the digest,
    the ring contents, or simulated time.  Used by {!Checker} to verify
    protocol invariants while a run executes. *)
val set_sink : t -> (event -> unit) option -> unit

(** Record one event.  No-op on a disabled sink. *)
val emit :
  t ->
  ts:float ->
  ?cpu:int ->
  ?tid:int ->
  ?tag:int ->
  ?cat:Breakdown.category ->
  ?dur:float ->
  ?arg:int ->
  kind ->
  unit

(** [emit_bare t ~ts kind] ≡ [emit t ~ts kind]: lean entry point for the
    engine's scheduling events, which fire once per queued event.
    Digest- and ring-identical to the general call, minus the
    optional-argument overhead. *)
val emit_bare : t -> ts:float -> kind -> unit

(** [emit_charge t ~ts ~cpu ~tid ~cat ~dur] ≡
    [emit t ~ts ~cpu ~tid ~cat ~dur Charge]: lean entry point for the
    kernel's cost-attribution events, the most frequent event kind. *)
val emit_charge :
  t -> ts:float -> cpu:int -> tid:int -> cat:Breakdown.category -> dur:float -> unit

(** Events still held in the ring, oldest first. *)
val events : t -> event list

(** Number of events emitted over the trace's lifetime. *)
val total : t -> int

(** Events overwritten by ring wrap-around (still digested). *)
val dropped : t -> int

(** Streaming FNV-1a digest of every event emitted so far. *)
val digest : t -> int64

(** The digest as a 16-hex-digit replay fingerprint. *)
val digest_hex : t -> string

(** The retained events as Chrome [trace_event] JSON (a complete
    [{"traceEvents": [...]}] object loadable in [chrome://tracing] or
    Perfetto).  [Charge] events become complete ("X") slices, everything
    else instants; [pid] carries the CPU, [tid] the thread. *)
val to_chrome_string : t -> string

(** Write {!to_chrome_string} to a channel. *)
val write_chrome : out_channel -> t -> unit

val pp_event : Format.formatter -> event -> unit
