(** Online invariant checker over the structured trace stream.

    Attached as the trace sink, it mirrors the scheduler state the event
    stream implies and raises {!Violation} — carrying the recent event
    window — on the first event inconsistent with it.  Strictly
    observational: a run with the checker attached produces the same
    replay digest as one without.

    Invariants checked (the [v_invariant] strings): ["time-regression"],
    ["double-resume"], ["lost-wakeup"], ["duplicate-switch"],
    ["switch-mismatch"], ["charge-misattribution"], ["two-cpu-overlap"],
    ["dcs-underflow"], ["dcs-imbalance"], ["dcs-crossing-imbalance"],
    ["charge-conservation"], and the isolation invariants
    ["xtag-no-authority"] (a cross-tag data access carrying authority
    code 0 — nothing granted it), ["priv-outside-kernel"] (a privileged
    op retired without the priv bit or a posture override) and
    ["revocation-completeness"] (an asynchronous capability exercised
    after a [Cap_revoke] outdated its creation stamp).  See [checker.ml]
    for the catalogue with definitions. *)

type violation = {
  v_invariant : string;  (** which invariant, from the catalogue above *)
  v_detail : string;
  v_index : int;  (** 0-based index of the offending event *)
  v_window : Trace.event list;  (** recent events, offender last *)
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

type t

(** A fresh checker retaining a [window] of recent events (default 16)
    for violation reports. *)
val create : ?window:int -> unit -> t

(** Install this checker as [trace]'s sink. *)
val attach : t -> Trace.t -> unit

(** Clear [trace]'s sink. *)
val detach : Trace.t -> unit

(** Feed one event (what {!attach} arranges to happen on every emit;
    also usable directly on synthetic streams). *)
val on_event : t -> Trace.event -> unit

(** End-of-run checks.  [quiescent] (default [true]) asserts every
    suspend saw a resume — pass [false] for deadline-stopped runs.
    [expect] checks per-category Charge-event totals against an
    externally accumulated breakdown (e.g. the kernel's lifetime
    totals). *)
val finish : ?quiescent:bool -> ?expect:Breakdown.t -> t -> unit

val events_seen : t -> int

val suspends : t -> int

val resumes : t -> int

(** Per-category totals of the Charge events observed so far. *)
val charge_totals : t -> Breakdown.t
