(** Streaming (Welford) and batch statistics used by the benchmark
    harnesses. *)

type t

val create : unit -> t

val clear : t -> unit

(** Add one sample. *)
val add : t -> float -> unit

val count : t -> int

val mean : t -> float

(** Unbiased sample variance (0 with fewer than two samples). *)
val variance : t -> float

val stddev : t -> float

val min_value : t -> float

val max_value : t -> float

(** Coefficient of variation: stddev / |mean| (never negative). *)
val rel_stddev : t -> float

(** Immutable snapshot of an accumulator. *)
type summary = {
  s_count : int;
  s_mean : float;
  s_stddev : float;
  s_min : float;
  s_max : float;
}

val summary : t -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Nearest-rank percentile of a sample array ([p] in 0..100). *)
val percentile : float array -> float -> float

val mean_of : float array -> float
