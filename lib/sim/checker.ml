(* Online invariant checker over the structured trace stream.

   Registers as the trace sink (Trace.set_sink) and folds every emitted
   event into a small mirror of the scheduler state the event stream
   implies: per-CPU occupancy, suspend/resume balance, per-thread DCS
   depth, per-category cost totals.  Any event inconsistent with the
   mirror raises [Violation] carrying the recent event window, so a
   failure points at the offending schedule slice rather than a digest
   mismatch three layers away.

   The checker is strictly observational — it never touches simulated
   time or the digest — so a clean run with the checker attached is
   byte-identical to one without it.

   Invariant catalogue (names are the [v_invariant] strings):
   - "time-regression":   engine/kernel event timestamps never move
     backwards.  [Sched]/[Spawn] are exempt: they are queue events
     stamped with their (future) due time.  Machine events ([Fault],
     [Domain_cross], [Dcs_*]) are also exempt: they are stamped with the
     executing context's private cost clock.
   - "double-resume":     at no prefix do resumes exceed suspends.
   - "lost-wakeup":       at a quiescent finish every suspend has a
     matching resume.
   - "duplicate-switch":  a [Ctxsw] claiming to switch a CPU to the
     thread it already runs.
   - "switch-mismatch":   a [Ctxsw] whose outgoing thread ([arg]) is not
     the thread last observed on that CPU.
   - "charge-misattribution": a thread charges cost on a CPU currently
     running someone else.
   - "two-cpu-overlap":   a thread charges cost on one CPU while a
     charge interval it opened on another CPU is still running — the
     observable form of "resumed on two CPUs".
   - "dcs-underflow":     a [Dcs_pop] with no frame to pop.
   - "dcs-imbalance":     a [Dcs_push]/[Dcs_pop] whose carried resulting
     depth disagrees with the mirrored stack depth.
   - "dcs-crossing-imbalance": a return domain crossing where the DCS
     depth differs from its depth when the matching call crossing
     entered the domain (Sec. 5.2.3's integrity discipline).
   - "charge-conservation": at finish, per-category charge-event totals
     must equal the kernel's lifetime [Breakdown] totals.
   - "xtag-no-authority":  an [Xtag_access] (data access crossing a tag
     boundary) whose authority code says nothing granted it — neither an
     APL entry, nor a capability, nor an explicit posture downgrade.
     The machine never emits code 0, so this only trips on corrupted
     streams or a protection-check bug.
   - "priv-outside-kernel": a [Priv_op] whose authority code says the
     executing page held no privileged-capability bit and no posture
     override applied.
   - "revocation-completeness": a [Cap_use] exercising an asynchronous
     capability whose creation-stamped revocation value is older than
     the latest [Cap_revoke] observed for that (owner tag, counter) —
     i.e. a revoked capability that still conferred authority. *)

type violation = {
  v_invariant : string;
  v_detail : string;
  v_index : int; (* 0-based index of the offending event in the stream *)
  v_window : Trace.event list; (* recent events, offender last *)
}

exception Violation of violation

let pp_violation ppf v =
  Fmt.pf ppf "@[<v>invariant %S violated at event %d: %s@,window:@,%a@]"
    v.v_invariant v.v_index v.v_detail
    (Fmt.list ~sep:Fmt.cut (fun ppf e -> Fmt.pf ppf "  %a" Trace.pp_event e))
    v.v_window

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Fmt.str "%a" pp_violation v)
    | _ -> None)

type t = {
  window_cap : int;
  window : Trace.event Queue.t;
  mutable seen : int;
  mutable watermark : float;
  mutable suspends : int;
  mutable resumes : int;
  cur : (int, int) Hashtbl.t; (* cpu -> tid entitled to charge on it *)
  last : (int, int) Hashtbl.t; (* cpu -> last thread switched in *)
  busy : (int, int * float) Hashtbl.t; (* tid -> (cpu, busy-until ts) *)
  dcs_depth : (int, int) Hashtbl.t; (* ctx/tid -> mirrored DCS depth *)
  cross : (int, (int * int) Stack.t) Hashtbl.t;
      (* ctx/tid -> stack of (origin tag, DCS depth at entry) *)
  charges : Breakdown.t; (* per-category sum of all Charge events *)
  revoked : (int * int, int) Hashtbl.t;
      (* (owner tag, counter) -> latest post-revoke table value *)
}

let create ?(window = 16) () =
  {
    window_cap = window;
    window = Queue.create ();
    seen = 0;
    watermark = neg_infinity;
    suspends = 0;
    resumes = 0;
    cur = Hashtbl.create 8;
    last = Hashtbl.create 8;
    busy = Hashtbl.create 64;
    dcs_depth = Hashtbl.create 16;
    cross = Hashtbl.create 16;
    charges = Breakdown.create ();
    revoked = Hashtbl.create 16;
  }

let events_seen t = t.seen

let suspends t = t.suspends

let resumes t = t.resumes

let charge_totals t = Breakdown.copy t.charges

let fail t inv detail =
  raise
    (Violation
       {
         v_invariant = inv;
         v_detail = detail;
         v_index = t.seen - 1;
         v_window = List.of_seq (Queue.to_seq t.window);
       })

(* Timestamps are exact replays of float arithmetic, but give charge
   intervals a hair of slack so back-to-back events at one instant never
   trip on representation noise. *)
let eps = 1e-6

let on_charge t (ev : Trace.event) =
  (match ev.e_cat with
  | Some c -> Breakdown.charge t.charges c ev.e_dur
  | None -> ());
  if ev.e_cpu >= 0 then begin
    if ev.e_tid < 0 then
      (* Idle interval closing on this CPU: nobody is current anymore
         (the next charge is the incoming thread's idle-exit cost). *)
      Hashtbl.remove t.cur ev.e_cpu
    else begin
      (match Hashtbl.find_opt t.busy ev.e_tid with
      | Some (cpu', until') when cpu' <> ev.e_cpu && ev.e_ts < until' -. eps ->
          fail t "two-cpu-overlap"
            (Fmt.str
               "tid %d charges on cpu %d at %.1f while busy on cpu %d until \
                %.1f"
               ev.e_tid ev.e_cpu ev.e_ts cpu' until')
      | _ -> ());
      (match Hashtbl.find_opt t.busy ev.e_tid with
      | Some (cpu', until') when cpu' = ev.e_cpu ->
          Hashtbl.replace t.busy ev.e_tid
            (ev.e_cpu, Float.max until' (ev.e_ts +. ev.e_dur))
      | _ -> Hashtbl.replace t.busy ev.e_tid (ev.e_cpu, ev.e_ts +. ev.e_dur));
      (match Hashtbl.find_opt t.cur ev.e_cpu with
      | Some c when c <> ev.e_tid ->
          fail t "charge-misattribution"
            (Fmt.str "tid %d charges on cpu %d currently running tid %d"
               ev.e_tid ev.e_cpu c)
      | Some _ -> ()
      | None ->
          Hashtbl.replace t.cur ev.e_cpu ev.e_tid;
          (* Bootstrap: a CPU's first-ever occupant is also its "last
             switched-in" thread (the kernel emits no Ctxsw for it). *)
          if not (Hashtbl.mem t.last ev.e_cpu) then
            Hashtbl.replace t.last ev.e_cpu ev.e_tid)
    end
  end

let on_ctxsw t (ev : Trace.event) =
  if ev.e_cpu >= 0 && ev.e_tid >= 0 then begin
    if ev.e_arg = ev.e_tid then
      fail t "duplicate-switch"
        (Fmt.str "cpu %d switches to tid %d it already runs" ev.e_cpu ev.e_tid);
    (match Hashtbl.find_opt t.last ev.e_cpu with
    | Some l when l <> ev.e_arg ->
        fail t "switch-mismatch"
          (Fmt.str
             "cpu %d switches %d -> %d but last observed thread was %d"
             ev.e_cpu ev.e_arg ev.e_tid l)
    | _ -> ());
    Hashtbl.replace t.last ev.e_cpu ev.e_tid;
    Hashtbl.replace t.cur ev.e_cpu ev.e_tid
  end

let dcs_event t (ev : Trace.event) =
  let tid = ev.e_tid in
  let known = Hashtbl.find_opt t.dcs_depth tid in
  (match ev.e_kind with
  | Trace.Dcs_push ->
      (match known with
      | Some d when ev.e_arg <> d + 1 ->
          fail t "dcs-imbalance"
            (Fmt.str "ctx %d push: depth %d -> claimed %d" tid d ev.e_arg)
      | _ -> if ev.e_arg < 1 then fail t "dcs-imbalance" "push to depth < 1")
  | Trace.Dcs_pop -> (
      match known with
      | Some d when d <= 0 ->
          fail t "dcs-underflow" (Fmt.str "ctx %d pops an empty DCS" tid)
      | Some d when ev.e_arg <> d - 1 ->
          fail t "dcs-imbalance"
            (Fmt.str "ctx %d pop: depth %d -> claimed %d" tid d ev.e_arg)
      | _ -> if ev.e_arg < 0 then fail t "dcs-underflow" "pop to depth < 0")
  | _ -> if ev.e_arg < 0 then fail t "dcs-imbalance" "adjust to depth < 0");
  Hashtbl.replace t.dcs_depth tid ev.e_arg

(* Bracket-match domain crossings: crossing back to the tag we came from
   must find the DCS at the depth it had when the domain was entered. *)
let on_cross t (ev : Trace.event) =
  let stack =
    match Hashtbl.find_opt t.cross ev.e_tid with
    | Some s -> s
    | None ->
        let s = Stack.create () in
        Hashtbl.replace t.cross ev.e_tid s;
        s
  in
  let depth =
    match Hashtbl.find_opt t.dcs_depth ev.e_tid with Some d -> d | None -> 0
  in
  match Stack.top_opt stack with
  | Some (origin, entry_depth) when origin = ev.e_tag ->
      ignore (Stack.pop stack);
      if depth <> entry_depth then
        fail t "dcs-crossing-imbalance"
          (Fmt.str
             "ctx %d returns %d -> %d with DCS depth %d (entered at depth %d)"
             ev.e_tid ev.e_arg ev.e_tag depth entry_depth)
  | _ -> Stack.push (ev.e_arg, depth) stack

(* Isolation invariants over the machine's protection-event stream.  The
   machine stamps a non-zero authority code on every [Xtag_access] /
   [Priv_op] it lets retire (1 = capability, 2 = APL / priv bit, 3 =
   posture downgrade), so code 0 marks an access nothing granted: a
   corrupted stream or a protection-check bug, never a clean run. *)
let on_xtag t (ev : Trace.event) =
  if ev.e_cpu = 0 then
    fail t "xtag-no-authority"
      (Fmt.str "ctx %d: tag %d reached tag %d data with no granting authority"
         ev.e_tid ev.e_arg ev.e_tag)

let on_priv t (ev : Trace.event) =
  if ev.e_cpu = 0 then
    fail t "priv-outside-kernel"
      (Fmt.str
         "ctx %d retired a privileged op at pc=0x%x without the priv bit"
         ev.e_tid ev.e_arg)

(* Revocation completeness: once a [Cap_revoke] bumps (owner tag,
   counter) to value v, no later [Cap_use] may carry a creation stamp
   below v — such a capability was revoked before it was exercised. *)
let on_cap_revoke t (ev : Trace.event) =
  Hashtbl.replace t.revoked (ev.e_tag, ev.e_arg) ev.e_cpu

let on_cap_use t (ev : Trace.event) =
  match Hashtbl.find_opt t.revoked (ev.e_tag, ev.e_arg) with
  | Some v when ev.e_cpu < v ->
      fail t "revocation-completeness"
        (Fmt.str
           "ctx %d exercised capability (tag %d, counter %d) stamped %d \
            after revocation bumped it to %d"
           ev.e_tid ev.e_tag ev.e_arg ev.e_cpu v)
  | _ -> ()

let on_event t (ev : Trace.event) =
  t.seen <- t.seen + 1;
  Queue.add ev t.window;
  if Queue.length t.window > t.window_cap then ignore (Queue.pop t.window);
  (match ev.e_kind with
  | Trace.Sched | Trace.Spawn
  | Trace.Fault | Trace.Domain_cross
  | Trace.Dcs_push | Trace.Dcs_pop | Trace.Dcs_adjust
  | Trace.Xtag_access | Trace.Priv_op | Trace.Cap_revoke | Trace.Cap_use ->
      () (* future-stamped queue events / per-ctx cost clocks *)
  | Trace.Resume | Trace.Suspend | Trace.Ctxsw | Trace.Ipi | Trace.Syscall
  | Trace.Charge ->
      if ev.e_ts < t.watermark -. eps then
        fail t "time-regression"
          (Fmt.str "event at %.3f after watermark %.3f" ev.e_ts t.watermark);
      if ev.e_ts > t.watermark then t.watermark <- ev.e_ts);
  match ev.e_kind with
  | Trace.Suspend -> t.suspends <- t.suspends + 1
  | Trace.Resume ->
      t.resumes <- t.resumes + 1;
      if t.resumes > t.suspends then
        fail t "double-resume"
          (Fmt.str "%d resumes for %d suspends" t.resumes t.suspends)
  | Trace.Ctxsw -> on_ctxsw t ev
  | Trace.Charge -> on_charge t ev
  | Trace.Dcs_push | Trace.Dcs_pop | Trace.Dcs_adjust -> dcs_event t ev
  | Trace.Domain_cross -> on_cross t ev
  | Trace.Xtag_access -> on_xtag t ev
  | Trace.Priv_op -> on_priv t ev
  | Trace.Cap_revoke -> on_cap_revoke t ev
  | Trace.Cap_use -> on_cap_use t ev
  | Trace.Sched | Trace.Spawn | Trace.Ipi | Trace.Syscall | Trace.Fault -> ()

let attach t trace = Trace.set_sink trace (Some (on_event t))

let detach trace = Trace.set_sink trace None

(* End-of-run checks.  [quiescent] asserts every suspend was resumed
   (drained runs); pass [false] for deadline-stopped runs where threads
   legitimately remain parked.  [expect] compares the per-category sums
   of the observed Charge events against an externally accumulated
   Breakdown (the kernel's lifetime totals): both sides add the same
   addends in the same order, so the tolerance only covers noise from a
   caller-supplied reference computed differently. *)
let finish ?(quiescent = true) ?expect t =
  if quiescent && t.suspends <> t.resumes then
    fail t "lost-wakeup"
      (Fmt.str "%d suspends but %d resumes at quiescent finish" t.suspends
         t.resumes);
  match expect with
  | None -> ()
  | Some bd ->
      List.iter
        (fun cat ->
          let want = Breakdown.get bd cat in
          let got = Breakdown.get t.charges cat in
          let tol = 1e-6 +. (1e-9 *. Float.max (abs_float want) (abs_float got)) in
          if abs_float (want -. got) > tol then
            fail t "charge-conservation"
              (Fmt.str "%s: charge events total %.6f but breakdown says %.6f"
                 (Breakdown.category_name cat) got want))
        Breakdown.all_categories
