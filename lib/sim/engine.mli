(** Discrete-event simulation engine.

    Simulated threads are ordinary OCaml functions run under an effect
    handler that turns blocking operations into heap-scheduled
    continuations, so protocol code reads in direct style.  Continuations
    are one-shot: every suspended thread is resumed exactly once. *)

type t

(** Handle used to resume a suspended thread exactly once. *)
type 'a waker

val create : unit -> t

(** Abort [run] once this many events have fired (runaway protection). *)
val set_step_limit : t -> int -> unit

(** Install a trace sink: engine-level scheduling events (queue, spawn,
    suspend, resume) are emitted into it, and layers above reach it via
    {!tracer}.  Defaults to {!Trace.null} (tracing disabled). *)
val set_trace : t -> Trace.t -> unit

(** The installed trace sink ({!Trace.null} when tracing is off). *)
val tracer : t -> Trace.t

(** Current virtual time, in nanoseconds. *)
val now : t -> float

(** Queue a raw event thunk at absolute time [at] (clamped to now). *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** Start a simulated thread (optionally at a future time). *)
val spawn : ?at:float -> t -> (unit -> unit) -> unit

(** Inside a thread: advance virtual time by [d] nanoseconds. *)
val delay : float -> unit

(** [delay_in t d] behaves exactly like {!delay} for a thread running
    inside engine [t], but skips the effect round trip and the timer
    heap when no other event is due before the wakeup (observably
    identical: same trace events, same event order). *)
val delay_in : t -> float -> unit

(** Inside a thread: the current virtual time. *)
val current_time : unit -> float

(** Inside a thread: park until the waker passed to [register] is fired;
    returns the value it delivers. *)
val suspend : ('a waker -> unit) -> 'a

(** Fire a waker; raises [Invalid_argument] if fired twice. *)
val resume : 'a waker -> 'a -> unit

exception Step_limit_exceeded

(** Run until the event queue drains. *)
val run : t -> unit

(** Run events up to virtual time [deadline]; later events stay queued
    and the clock stops at the deadline. *)
val run_until : t -> float -> unit

(** Number of queued events. *)
val pending : t -> int

(** Time of the earliest queued event, [infinity] when the queue is
    empty: a shard coordinator derives conservative window bounds from
    it (Shard, DESIGN.md Sec. 14). *)
val next_time : t -> float

(** Events fired so far (across [run]/[run_until] calls). *)
val steps : t -> int
