(* Streaming and batch statistics used by every benchmark harness.

   The streaming accumulator uses Welford's algorithm so variance stays
   numerically stable over millions of samples. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let clear t =
  t.n <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = if t.n = 0 then 0. else t.min

let max_value t = if t.n = 0 then 0. else t.max

(* Relative standard deviation (coefficient of variation); the paper reports
   all micro-benchmarks with stddev below 1% of the mean.  The magnitude
   of the mean is the conventional denominator: delta-style series can
   have a negative mean, and a negative "relative stddev" would compare
   wrong against any threshold. *)
let rel_stddev t =
  if mean t = 0. then 0. else stddev t /. Float.abs (mean t)

type summary = {
  s_count : int;
  s_mean : float;
  s_stddev : float;
  s_min : float;
  s_max : float;
}

let summary t =
  {
    s_count = t.n;
    s_mean = mean t;
    s_stddev = stddev t;
    s_min = min_value t;
    s_max = max_value t;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f sd=%.2f min=%.2f max=%.2f" s.s_count s.s_mean
    s.s_stddev s.s_min s.s_max

(* Batch percentile over a copy of the samples (nearest-rank). *)
let percentile samples p =
  if Array.length samples = 0 then 0.
  else begin
    let sorted = Array.copy samples in
    (* Float.compare, not polymorphic compare: no boxed-generic dispatch
       per comparison on the sweep hot path, and NaN ordering is
       well-defined (a total order with NaN smallest) instead of
       structural. *)
    Array.sort Float.compare sorted;
    let n = Array.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

let mean_of samples =
  let n = Array.length samples in
  if n = 0 then 0.
  else Array.fold_left ( +. ) 0. samples /. float_of_int n
