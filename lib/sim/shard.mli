(** Conservative parallel DES coordinator: partition one simulation into
    shards, each owning a private event heap, advanced in conservative
    lookahead windows with cross-shard messages exchanged at window
    barriers and merged into a deterministic (time, source shard,
    emission seqno) total order — so traces, digests and stdout are
    byte-identical whether the window bodies run serially or on
    separate OCaml domains (DESIGN.md Sec. 14). *)

(** One shard: an independent sequential simulator. *)
type 'msg stepper = {
  st_next : unit -> float;
      (** earliest pending local event, [infinity] when drained; must
          include everything previously delivered to the shard *)
  st_lookahead : float;
      (** the shard's promise: every message it emits from now on is
          timestamped at least [st_next () + st_lookahead] (derive it
          from the minimum cross-shard latency — IPI cost, NIC wire
          time); [infinity] for a shard that never emits *)
  st_step :
    inbox_at:float array ->
    inbox_pay:'msg array ->
    inbox_len:int ->
    upto:float ->
    emit:(dst:int -> at:float -> 'msg -> unit) ->
    int;
      (** deliver the first [inbox_len] messages of the parallel
          timestamp/payload arrays (already merged into the
          deterministic total order; the arrays are reused scratch
          buffers — never read past [inbox_len] or retain them), process
          local events with time [<= upto], emit cross-shard messages,
          return the number of events processed.  Messages at exactly
          the window bound are delivered *after* the receiver's local
          events at that instant.  An input-free shard may process past
          [upto] (pipelining) as long as its emissions respect the
          bound. *)
}

(** Barrier-merge tie-break for equal timestamps.  [Src_then_seq] is the
    contract; [Reversed] exists only for the mutation smoke tests that
    pin the tie-break as digest-visible. *)
type tiebreak = Src_then_seq | Reversed

(** A shard emitted a message timestamped inside the current window —
    its real cross-shard latency is below its declared lookahead. *)
exception Causality_violation of string

(** A window made no progress: a stepper broke the [st_next] /
    [st_lookahead] contract. *)
exception Stalled of string

type 'msg t

(** [enforce] (default true) validates every emission against the
    window bound; [false] is for tests demonstrating the downstream
    checker catching the corruption instead. *)
val create :
  ?tiebreak:tiebreak -> ?enforce:bool -> 'msg stepper array -> 'msg t

(** Drive all shards to completion.  [par:true] runs each window body on
    its own domain (never more than [jobs]); results are byte-identical
    either way. *)
val run : ?par:bool -> ?jobs:int -> 'msg t -> unit

(** Window barriers executed. *)
val rounds : 'msg t -> int

(** Cross-shard messages delivered. *)
val delivered : 'msg t -> int

(** {2 Engines as shards} *)

(** A discrete-event engine wrapped as a shard: delivered messages are
    thunks scheduled at their merged positions, and code running inside
    the engine posts cross-shard thunks via {!post}. *)
type engine_shard = {
  es_engine : Engine.t;
  es_stepper : (unit -> unit) stepper;
  mutable es_emit : (dst:int -> at:float -> (unit -> unit) -> unit) option;
}

(** [lookahead] is the minimum latency of any message the engine's model
    emits ([infinity] for an engine that never posts). *)
val engine_shard : ?lookahead:float -> Engine.t -> engine_shard

(** Post a cross-shard thunk; only callable while the shard is inside a
    window body (i.e. from model code running under {!run}). *)
val post :
  engine_shard -> dst:int -> at:float -> (unit -> unit) -> unit

(** Run a conventional single-engine workload through the coordinator in
    lookahead-sized windows (plus [shards - 1] idle peers): pinned
    byte-identical to a plain [Engine.run] at any shard count and any
    lookahead, including zero.  [until] stops at a horizon with exactly
    the semantics of [Engine.run_until until] — events at the horizon
    run, the clock advances to it — so bounded drivers (warmup /
    measure phases) can route through the coordinator too. *)
val run_windowed :
  ?shards:int ->
  ?lookahead:float ->
  ?until:float ->
  ?par:bool ->
  ?jobs:int ->
  Engine.t ->
  unit
