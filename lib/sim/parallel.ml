(* Work-queue runner over OCaml 5 domains.

   A single atomic cursor hands out task indices; each worker loops
   stealing the next index until the queue is dry.  Every result is
   written into its own slot of a pre-sized array (one writer per slot;
   [Domain.join] publishes the writes to the caller), so the merge is
   order-independent by construction: slot [i] is task [i] no matter
   which worker ran it or when it finished.

   Exceptions are captured per task with their backtraces and re-raised
   on the caller after the queue drains, lowest submission index first,
   so a failing parallel run reports the same task a failing serial run
   would. *)

type 'a outcome = {
  o_id : string;
  o_value : 'a;
  o_wall_s : float;
  o_minor_words : float;
  o_worker : int;
}

let default_jobs () = Domain.recommended_domain_count ()

type 'a slot =
  | Done of 'a outcome
  | Failed of exn * Printexc.raw_backtrace

(* [Gc.minor_words] is a per-domain counter in OCaml 5: the delta is the
   run's own allocation, unpolluted by sibling workers. *)
let run_one tasks slots worker i =
  let id, f = tasks.(i) in
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  (slots.(i) <-
     (match f () with
     | v ->
         Done
           {
             o_id = id;
             o_value = v;
             o_wall_s = Unix.gettimeofday () -. t0;
             o_minor_words = Gc.minor_words () -. m0;
             o_worker = worker;
           }
     | exception exn -> Failed (exn, Printexc.get_raw_backtrace ())))

let worker_loop tasks slots next worker =
  let n = Array.length tasks in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add next 1 in
    if i >= n then continue := false else run_one tasks slots worker i
  done

let run ?jobs tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs =
      let j = match jobs with Some j -> j | None -> default_jobs () in
      max 1 (min j n)
    in
    let slots =
      Array.make n
        (Failed (Invalid_argument "Parallel.run: task never ran", Printexc.get_callstack 0))
    in
    let next = Atomic.make 0 in
    let helpers =
      Array.init (jobs - 1) (fun w ->
          Domain.spawn (fun () -> worker_loop tasks slots next (w + 1)))
    in
    worker_loop tasks slots next 0;
    Array.iter Domain.join helpers;
    Array.map
      (function
        | Done o -> o
        | Failed (exn, bt) -> Printexc.raise_with_backtrace exn bt)
      slots
  end

(* Lean sibling of [run] for the shard coordinator's window bodies
   (Shard.run): one barrier per simulated window is on the critical
   path, so this skips the id/wall/minor-words outcome plumbing — same
   work-queue, same one-writer-per-slot discipline, same
   lowest-submission-index exception propagation. *)
let run_units ?jobs (units : (unit -> unit) array) =
  let n = Array.length units in
  if n > 0 then begin
    let jobs =
      let j = match jobs with Some j -> j | None -> default_jobs () in
      max 1 (min j n)
    in
    let failures = Array.make n None in
    let unit_loop next =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match units.(i) () with
          | () -> ()
          | exception exn ->
              failures.(i) <- Some (exn, Printexc.get_raw_backtrace ())
      done
    in
    let next = Atomic.make 0 in
    let helpers =
      Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> unit_loop next))
    in
    unit_loop next;
    Array.iter Domain.join helpers;
    Array.iter
      (function
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt | None -> ())
      failures
  end

let map ?jobs f xs =
  let tasks =
    Array.of_list (List.mapi (fun i x -> (string_of_int i, fun () -> f x)) xs)
  in
  Array.to_list (Array.map (fun o -> o.o_value) (run ?jobs tasks))
