(** Seeded, deterministic fault injection.

    An injector is a stream of fault decisions drawn from a {!Rng}
    seed, consumed in the order the instrumented layers (kernel IPI
    delivery, futex waits, scheduler quanta, CODOMs domain crossings)
    reach their injection points.  The simulation is deterministic, so
    one seed reproduces the same fault schedule — and hence the same
    replay digest — run after run.

    This module only decides what to inject; the kernel and machine
    layers implement the mechanics.  With no injector installed every
    hook is a no-op and the run is byte-identical to a clean one. *)

(** Per-fault-class probabilities and magnitudes.  Probabilities are
    per decision point, magnitudes in nanoseconds. *)
type config = {
  ipi_delay_p : float;
  ipi_delay_ns : float;
  ipi_lose_p : float;
  ipi_retry_ns : float;
  spurious_wake_p : float;
  spurious_delay_ns : float;
  preempt_p : float;
  apl_flush_p : float;
  creg_clobber_p : float;
  creg_clobber_ns : float;
}

(** Mild schedule: every class enabled at low rates. *)
val default_config : config

(** Hostile schedule: high fault rates and long delays, for stress
    matrices. *)
val aggressive_config : config

type stats = {
  mutable ipis_delayed : int;
  mutable ipis_lost : int;
  mutable spurious_wakes : int;
  mutable forced_preempts : int;
  mutable apl_flushes : int;
  mutable creg_clobbers : int;
}

type t

val create : ?config:config -> seed:int -> unit -> t

val config : t -> config

(** Counters of faults actually injected so far. *)
val stats : t -> stats

val total_faults : t -> int

type ipi_outcome =
  | Ipi_ok  (** deliver normally *)
  | Ipi_delayed of float  (** deliver after this many extra ns *)
  | Ipi_lost of float  (** drop; redeliver when the retry timer fires *)

(** Decision for one cross-CPU IPI delivery. *)
val ipi_outcome : t -> ipi_outcome

(** Decision for one futex wait: [Some d] injects a spurious wakeup
    [d] ns after the wait parks. *)
val spurious_wakeup : t -> float option

(** Decision at a scheduler consume boundary: force a context switch
    even though the quantum has work left. *)
val force_preempt : t -> bool

(** Decision at a domain crossing: flush the APL cache first. *)
val apl_flush : t -> bool

(** Decision at a domain crossing: clobber and restore the capability
    registers, charging [Some cost] ns. *)
val creg_clobber : t -> float option

val pp_stats : Format.formatter -> stats -> unit
