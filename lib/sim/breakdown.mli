(** Cost attribution by category: the seven blocks of the paper's
    Figure 2, plus dIPC-specific proxy/stub categories that fold into
    them for Figure 2-style reports. *)

type category =
  | User_code  (** block 1: application code *)
  | Syscall_entry  (** block 2: syscall + 2x swapgs + sysret *)
  | Dispatch  (** block 3: syscall dispatch trampoline *)
  | Kernel  (** block 4: kernel / privileged code *)
  | Schedule  (** block 5: schedule / context switch *)
  | Page_table  (** block 6: page table switch *)
  | Idle  (** block 7: idle / IO wait *)
  | Proxy  (** dIPC trusted proxy code (folds into Kernel) *)
  | Stub  (** dIPC user stubs (folds into User_code) *)

val all_categories : category list

val category_name : category -> string

(** Stable dense index of a category, matching [all_categories] order
    (used by flat trace storage and digests). *)
val category_index : category -> int

type t

val create : unit -> t

val copy : t -> t

val clear : t -> unit

(** Add [ns] to a category. *)
val charge : t -> category -> float -> unit

(** [charge_idx t i ns] = [charge t c ns] where [i = category_index c];
    for hot call sites that charge one category into several breakdowns. *)
val charge_idx : t -> int -> float -> unit

val get : t -> category -> float

val total : t -> float

(** Accumulate [src] into [into]. *)
val merge : into:t -> t -> unit

(** A new breakdown with every cell multiplied by [factor]. *)
val scale : t -> float -> t

(** Fold the dIPC-specific categories into the Figure 2 blocks. *)
val to_figure2 : t -> t

(** Non-zero cells in display order. *)
val to_list : t -> (category * float) list

val pp : Format.formatter -> t -> unit
