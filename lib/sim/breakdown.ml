(* Cost attribution by category.

   These are exactly the seven blocks of Figure 2 in the paper:
     (1) user code
     (2) syscall + 2x swapgs + sysret
     (3) syscall dispatch trampoline
     (4) kernel / privileged code
     (5) schedule / context switch
     (6) page table switch
     (7) idle / IO wait
   plus two dIPC-specific categories so proxies and stubs can be reported
   separately when useful (they fold into User_code/Kernel for Figure 2
   style reports). *)

type category =
  | User_code
  | Syscall_entry
  | Dispatch
  | Kernel
  | Schedule
  | Page_table
  | Idle
  | Proxy
  | Stub

let all_categories =
  [ User_code; Syscall_entry; Dispatch; Kernel; Schedule; Page_table; Idle; Proxy; Stub ]

let category_index = function
  | User_code -> 0
  | Syscall_entry -> 1
  | Dispatch -> 2
  | Kernel -> 3
  | Schedule -> 4
  | Page_table -> 5
  | Idle -> 6
  | Proxy -> 7
  | Stub -> 8

let category_name = function
  | User_code -> "user code"
  | Syscall_entry -> "syscall+swapgs+sysret"
  | Dispatch -> "syscall dispatch trampoline"
  | Kernel -> "kernel/privileged code"
  | Schedule -> "schedule/ctxt switch"
  | Page_table -> "page table switch"
  | Idle -> "idle/IO wait"
  | Proxy -> "dIPC proxy"
  | Stub -> "dIPC user stub"

type t = { cells : float array }

let create () = { cells = Array.make 9 0. }

let copy t = { cells = Array.copy t.cells }

let clear t = Array.fill t.cells 0 (Array.length t.cells) 0.

let charge t category ns =
  let i = category_index category in
  t.cells.(i) <- t.cells.(i) +. ns

(* Pre-resolved-index variant for call sites that charge the same
   category into several breakdowns: the index is always a valid cell
   (categories map to 0..8), so the update skips the bounds check. *)
let charge_idx t i ns = Array.unsafe_set t.cells i (Array.unsafe_get t.cells i +. ns)

let get t category = t.cells.(category_index category)

let total t = Array.fold_left ( +. ) 0. t.cells

let merge ~into src =
  Array.iteri (fun i v -> into.cells.(i) <- into.cells.(i) +. v) src.cells

let scale t factor = { cells = Array.map (fun v -> v *. factor) t.cells }

(* Fold the dIPC-specific categories into the Figure 2 blocks: proxies are
   privileged code, stubs are user code. *)
let to_figure2 t =
  let out = copy t in
  let proxy = get t Proxy and stub = get t Stub in
  out.cells.(category_index Proxy) <- 0.;
  out.cells.(category_index Stub) <- 0.;
  out.cells.(category_index Kernel) <- out.cells.(category_index Kernel) +. proxy;
  out.cells.(category_index User_code) <- out.cells.(category_index User_code) +. stub;
  out

let to_list t =
  List.filter_map
    (fun c ->
      let v = get t c in
      if v > 0. then Some (c, v) else None)
    all_categories

let pp ppf t =
  let items = to_list t in
  Fmt.pf ppf "total=%.1fns [" (total t);
  List.iteri
    (fun i (c, v) ->
      if i > 0 then Fmt.pf ppf "; ";
      Fmt.pf ppf "%s=%.1f" (category_name c) v)
    items;
  Fmt.pf ppf "]"
