(* Deterministic splitmix64 pseudo-random number generator.

   The simulator must be reproducible across runs and platforms, so we avoid
   [Random] and use an explicit-state generator.  Splitmix64 passes BigCrush
   and needs only one 64-bit word of state. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Splitmix64's intended forking discipline: seed the child from the
   parent's next output.  The output function is a bijective mix of the
   Weyl-sequence counter, so child and parent walk statistically
   independent sequences while a given parent seed still reproduces the
   same family of streams run after run. *)
let split t = { state = next_int64 t }

(* Uniform float in [0, 1). Uses the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(* Uniform integer in [0, bound).  The shift keeps the value within
   OCaml's 63-bit positive int range. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform integer in [0, bound) without modulo bias: draw 61-bit
   values (so the range itself stays a positive OCaml int) and reject
   the truncated tail.  [int] above keeps its historic `r mod bound`
   bias because the pinned golden digests consume its exact draw
   sequence; all *new* consumers (the open-arrival workloads) use this
   one.  The rejection loop draws a variable number of words, so the
   two functions are not stream-compatible — see the determinism
   contract in DESIGN.md Sec. 10. *)
let int_unbiased t bound =
  if bound <= 0 then invalid_arg "Rng.int_unbiased: bound must be positive";
  let range = 1 lsl 61 in
  let limit = range - (range mod bound) in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 3) in
    if r < limit then r mod bound else draw ()
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Exponential distribution with the given mean. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

(* Uniform float in [lo, hi). *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(* Bounded Pareto-ish heavy tail used for disk service times: returns the
   mean scaled by a factor in [0.5, ~4] with a long tail. *)
let heavy_tail t ~mean =
  let u = float t in
  let u = if u >= 0.999 then 0.999 else u in
  mean *. 0.5 /. (1.0 -. u) ** 0.35
