(* Discrete-event simulation engine.

   Simulated threads are ordinary OCaml functions that perform effects to
   interact with virtual time.  An effect handler per thread turns blocking
   operations into heap-scheduled continuations, which keeps workload code
   in direct style (the whole point of using OCaml 5 here: kernel and IPC
   protocol code below reads like the real thing).

   One-shot continuations: every suspended thread is resumed exactly once,
   either by the timer heap ([delay]) or by whoever holds its waker
   ([suspend]/[resume]). *)

type t = {
  (* Current virtual time, in a 1-slot [floatarray]: a [mutable float]
     field in this mixed record would box a fresh float on every store,
     and the fast delay path and the run loop each store it once per
     event — millions of allocations per simulated second. *)
  now_ : floatarray;
  events : (unit -> unit) Heap.t;
  mutable live : int; (* threads spawned and not yet finished *)
  mutable steps : int;
  mutable step_limit : int;
  mutable tracer : Trace.t;
  (* Deadline of the innermost [run_until], infinity outside one: the
     [delay_in] fast path must not carry a thread past it. *)
  mutable horizon : float;
}

type 'a waker = { mutable fired : bool; engine : t; deliver : 'a -> unit }

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t
  | Now : float Effect.t

let create () =
  {
    now_ = Float.Array.make 1 0.;
    events = Heap.create ();
    live = 0;
    steps = 0;
    step_limit = max_int;
    tracer = Trace.null;
    horizon = infinity;
  }

let set_step_limit t limit = t.step_limit <- limit

let set_trace t tracer = t.tracer <- tracer

let tracer t = t.tracer

let now t = Float.Array.unsafe_get t.now_ 0

let set_now t v = Float.Array.unsafe_set t.now_ 0 v

let schedule t ~at f =
  let now = Float.Array.unsafe_get t.now_ 0 in
  let at = if at < now then now else at in
  if Trace.enabled t.tracer then Trace.emit_bare t.tracer ~ts:at Trace.Sched;
  Heap.push t.events ~time:at f

(* Run [f] as a simulated thread under the effect handler. *)
let rec exec t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun exn ->
          t.live <- t.live - 1;
          raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule t ~at:(now t +. d) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if Trace.enabled t.tracer then
                    Trace.emit_bare t.tracer ~ts:(now t) Trace.Suspend;
                  let waker =
                    {
                      fired = false;
                      engine = t;
                      deliver =
                        (fun v ->
                          if Trace.enabled t.tracer then
                            Trace.emit_bare t.tracer ~ts:(now t) Trace.Resume;
                          schedule t ~at:(now t) (fun () -> continue k v));
                    }
                  in
                  register waker)
          | Now -> Some (fun (k : (a, unit) continuation) -> continue k (now t))
          | _ -> None);
    }

and spawn ?at t f =
  t.live <- t.live + 1;
  let at = match at with None -> now t | Some at -> at in
  if Trace.enabled t.tracer then Trace.emit_bare t.tracer ~ts:at Trace.Spawn;
  schedule t ~at (fun () -> exec t f)

(* --- operations available inside simulated threads --- *)

let delay d = if d > 0. then Effect.perform (Delay d) else ()

(* [delay_in t d] = [delay d] for a thread running inside engine [t],
   with a fast path that skips the effect round trip and the heap.

   The slow path is: perform Delay -> [schedule] emits a Sched event at
   [at = now + d] and pushes the continuation -> the run loop pops the
   heap minimum, bumps [steps], sets [now] and resumes.  When our event
   would be the strict minimum (heap empty or top strictly later — a tie
   loses to the earlier sequence number), nothing can run between push
   and pop, so emitting the same Sched event, bumping [steps] and
   advancing [now] in place is observably identical: same trace stream
   byte for byte, same heap pop order for every other event (eliding a
   push/pop pair preserves the relative insertion order of the rest).
   The guards delegate to the real path whenever popping would cross a
   [run_until] horizon (the event must stay queued) or trip the step
   limit (the raise must come from the run loop, not from inside the
   thread). *)
let delay_in t d =
  if d > 0. then begin
    let at = Float.Array.unsafe_get t.now_ 0 +. d in
    if
      at <= t.horizon
      && t.steps < t.step_limit
      && (Heap.is_empty t.events || Heap.top_time t.events > at)
    then begin
      if Trace.enabled t.tracer then Trace.emit_bare t.tracer ~ts:at Trace.Sched;
      t.steps <- t.steps + 1;
      Float.Array.unsafe_set t.now_ 0 at
    end
    else Effect.perform (Delay d)
  end

let current_time () = Effect.perform Now

(* Suspend the calling thread; [register] receives a waker that must be
   fired exactly once (firing twice raises). *)
let suspend register =
  Effect.perform
    (Suspend
       (fun waker ->
         register waker))

let resume waker v =
  if waker.fired then invalid_arg "Engine.resume: waker fired twice";
  waker.fired <- true;
  waker.deliver v

(* --- driving the simulation --- *)

exception Step_limit_exceeded

(* The loop body allocates nothing: [top_time]/[pop_min] avoid the
   [Some (time, thunk)] boxing of [Heap.pop] on every event. *)
let run t =
  while not (Heap.is_empty t.events) do
    let time = Heap.top_time t.events in
    let thunk = Heap.pop_min t.events in
    t.steps <- t.steps + 1;
    if t.steps > t.step_limit then raise Step_limit_exceeded;
    Float.Array.unsafe_set t.now_ 0 time;
    thunk ()
  done

(* Run until virtual time [deadline]; events after it stay queued. *)
let run_until t deadline =
  t.horizon <- deadline;
  Fun.protect ~finally:(fun () -> t.horizon <- infinity) @@ fun () ->
  let continue = ref true in
  while !continue do
    if Heap.is_empty t.events then continue := false
    else begin
      let time = Heap.top_time t.events in
      if time > deadline then begin
        set_now t deadline;
        continue := false
      end
      else begin
        let thunk = Heap.pop_min t.events in
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then raise Step_limit_exceeded;
        Float.Array.unsafe_set t.now_ 0 time;
        thunk ()
      end
    end
  done

let pending t = Heap.length t.events

let next_time t =
  match Heap.peek_time t.events with Some time -> time | None -> infinity

let steps t = t.steps
