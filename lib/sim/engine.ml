(* Discrete-event simulation engine.

   Simulated threads are ordinary OCaml functions that perform effects to
   interact with virtual time.  An effect handler per thread turns blocking
   operations into heap-scheduled continuations, which keeps workload code
   in direct style (the whole point of using OCaml 5 here: kernel and IPC
   protocol code below reads like the real thing).

   One-shot continuations: every suspended thread is resumed exactly once,
   either by the timer heap ([delay]) or by whoever holds its waker
   ([suspend]/[resume]). *)

type t = {
  mutable now : float;
  events : (unit -> unit) Heap.t;
  mutable live : int; (* threads spawned and not yet finished *)
  mutable steps : int;
  mutable step_limit : int;
  mutable tracer : Trace.t;
}

type 'a waker = { mutable fired : bool; engine : t; deliver : 'a -> unit }

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t
  | Now : float Effect.t

let create () =
  {
    now = 0.;
    events = Heap.create ();
    live = 0;
    steps = 0;
    step_limit = max_int;
    tracer = Trace.null;
  }

let set_step_limit t limit = t.step_limit <- limit

let set_trace t tracer = t.tracer <- tracer

let tracer t = t.tracer

let now t = t.now

let schedule t ~at f =
  let at = if at < t.now then t.now else at in
  if Trace.enabled t.tracer then Trace.emit_bare t.tracer ~ts:at Trace.Sched;
  Heap.push t.events ~time:at f

(* Run [f] as a simulated thread under the effect handler. *)
let rec exec t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun exn ->
          t.live <- t.live - 1;
          raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule t ~at:(t.now +. d) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if Trace.enabled t.tracer then
                    Trace.emit_bare t.tracer ~ts:t.now Trace.Suspend;
                  let waker =
                    {
                      fired = false;
                      engine = t;
                      deliver =
                        (fun v ->
                          if Trace.enabled t.tracer then
                            Trace.emit_bare t.tracer ~ts:t.now Trace.Resume;
                          schedule t ~at:t.now (fun () -> continue k v));
                    }
                  in
                  register waker)
          | Now -> Some (fun (k : (a, unit) continuation) -> continue k t.now)
          | _ -> None);
    }

and spawn ?at t f =
  t.live <- t.live + 1;
  let at = match at with None -> t.now | Some at -> at in
  if Trace.enabled t.tracer then Trace.emit_bare t.tracer ~ts:at Trace.Spawn;
  schedule t ~at (fun () -> exec t f)

(* --- operations available inside simulated threads --- *)

let delay d = if d > 0. then Effect.perform (Delay d) else ()

let current_time () = Effect.perform Now

(* Suspend the calling thread; [register] receives a waker that must be
   fired exactly once (firing twice raises). *)
let suspend register =
  Effect.perform
    (Suspend
       (fun waker ->
         register waker))

let resume waker v =
  if waker.fired then invalid_arg "Engine.resume: waker fired twice";
  waker.fired <- true;
  waker.deliver v

(* --- driving the simulation --- *)

exception Step_limit_exceeded

(* The loop body allocates nothing: [top_time]/[pop_min] avoid the
   [Some (time, thunk)] boxing of [Heap.pop] on every event. *)
let run t =
  while not (Heap.is_empty t.events) do
    let time = Heap.top_time t.events in
    let thunk = Heap.pop_min t.events in
    t.steps <- t.steps + 1;
    if t.steps > t.step_limit then raise Step_limit_exceeded;
    t.now <- time;
    thunk ()
  done

(* Run until virtual time [deadline]; events after it stay queued. *)
let run_until t deadline =
  let continue = ref true in
  while !continue do
    if Heap.is_empty t.events then continue := false
    else begin
      let time = Heap.top_time t.events in
      if time > deadline then begin
        t.now <- deadline;
        continue := false
      end
      else begin
        let thunk = Heap.pop_min t.events in
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then raise Step_limit_exceeded;
        t.now <- time;
        thunk ()
      end
    end
  done

let pending t = Heap.length t.events

let steps t = t.steps
