(** FIFO wait queue of suspended simulated threads: the engine-level
    building block under futexes, pipes and run queues. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Park the calling thread until woken; returns the waker's value.
    [on_park] is called with the thread's waker right after it joins the
    queue — stash it to support a later {!remove}. *)
val wait : ?on_park:('a Engine.waker -> unit) -> 'a t -> 'a

(** Withdraw a parked waker without waking it (timeout/cancellation
    paths); the thread stays suspended and must be resumed directly via
    {!Engine.resume}.  Returns [false] if the waker was no longer
    queued (already woken or never parked here).  FIFO order of the
    remaining waiters is preserved. *)
val remove : 'a t -> 'a Engine.waker -> bool

(** Wake the longest-waiting thread; false if the queue was empty. *)
val wake_one : 'a t -> 'a -> bool

(** Wake everyone; returns how many were woken. *)
val wake_all : 'a t -> 'a -> int
