(* A functional miniature of Mondrian Memory Protection (MMP), for the
   Table 1 comparison (Sec. 4.1 contrasts CODOMs with MMP [63]).

   MMP gives each protection domain a privileged permissions table with
   word-granularity entries; a hardware PLB caches them.  Cross-domain
   calls go through switch/return gates and cost (at best) a pipeline
   flush; sharing bulk data means writing (and later invalidating) table
   entries for every region — the costs Table 1 charges MMP with. *)

type perm = None_ | Read_only | Read_write | Execute_read

let allows granted needed =
  match (granted, needed) with
  | None_, (None_ | Read_only | Read_write | Execute_read) -> false
  | (Read_only | Read_write | Execute_read), None_ -> true
  | Read_only, Read_only -> true
  | Read_only, (Read_write | Execute_read) -> false
  | Read_write, (Read_only | Read_write) -> true
  | Read_write, Execute_read -> false
  | Execute_read, (Read_only | Execute_read) -> true
  | Execute_read, Read_write -> false

type region = { r_base : int; r_len : int; r_perm : perm }

type pd = {
  pd_id : int;
  mutable regions : region list; (* the privileged permissions table *)
  mutable table_writes : int; (* cost proxy for grants/revocations *)
}

let pd ~id = { pd_id = id; regions = []; table_writes = 0 }

(* Privileged: only the (trusted) supervisor edits permission tables; the
   write count stands in for the table-walk + PLB-invalidate cost. *)
let grant pd ~base ~len ~perm =
  pd.regions <- { r_base = base; r_len = len; r_perm = perm } :: pd.regions;
  pd.table_writes <- pd.table_writes + 1

let revoke pd ~base ~len =
  pd.regions <-
    List.filter (fun r -> not (r.r_base = base && r.r_len = len)) pd.regions;
  pd.table_writes <- pd.table_writes + 1

let can_access pd ~addr ~perm =
  List.exists
    (fun r -> addr >= r.r_base && addr < r.r_base + r.r_len && allows r.r_perm perm)
    pd.regions

(* Switch and return gates: addresses the supervisor designated as legal
   crossing points between two domains. *)
type gate = { g_addr : int; g_from : int; g_to : int }

type cpu = {
  mutable current : pd;
  gates : (int, gate) Hashtbl.t; (* gate address -> gate *)
  domains : (int, pd) Hashtbl.t;
  mutable cross_stack : int list; (* return-gate discipline *)
  mutable pipeline_flushes : int;
  mutable posture : Fault.posture; (* enforcement posture, as Machine *)
  mutable audited : int; (* denials downgraded by the Audit posture *)
}

let cpu ~initial =
  let t =
    {
      current = initial;
      gates = Hashtbl.create 8;
      domains = Hashtbl.create 8;
      cross_stack = [];
      pipeline_flushes = 0;
      posture = Fault.get_default_posture ();
      audited = 0;
    }
  in
  Hashtbl.replace t.domains initial.pd_id initial;
  t

let add_domain cpu pd = Hashtbl.replace cpu.domains pd.pd_id pd

let add_gate cpu ~addr ~from_pd ~to_pd =
  Hashtbl.replace cpu.gates addr { g_addr = addr; g_from = from_pd; g_to = to_pd }

(* Calling through a switch gate: legal only from the gate's source
   domain; costs a pipeline flush (best case, Table 1). *)
let call_gate cpu ~addr =
  match Hashtbl.find_opt cpu.gates addr with
  | None -> Error "call_gate: not a gate"
  | Some g when g.g_from <> cpu.current.pd_id -> Error "call_gate: wrong source domain"
  | Some g -> begin
      match Hashtbl.find_opt cpu.domains g.g_to with
      | None -> Error "call_gate: unknown target domain"
      | Some target ->
          cpu.pipeline_flushes <- cpu.pipeline_flushes + 1;
          cpu.cross_stack <- g.g_from :: cpu.cross_stack;
          cpu.current <- target;
          Ok ()
    end

let return_gate cpu =
  match cpu.cross_stack with
  | caller :: rest -> begin
      match Hashtbl.find_opt cpu.domains caller with
      | None -> Error "return_gate: caller domain gone"
      | Some pd ->
          cpu.pipeline_flushes <- cpu.pipeline_flushes + 1;
          cpu.cross_stack <- rest;
          cpu.current <- pd;
          Ok ()
    end
  | [] -> Error "return_gate: no crossing to return from"

(* Modelled costs (Table 1). *)
let switch_cost_ns = 40.0 (* one pipeline flush *)

let table_write_cost_ns = 120.0 (* privileged write + PLB invalidate *)

(* Bulk-data sharing cost: one table entry per page-sized chunk. *)
let share_cost_ns ~bytes =
  let pages = max 1 ((bytes + 4095) / 4096) in
  float_of_int pages *. table_write_cost_ns

(* --- structured fault API ---

   Same contract as Minicheri's [_at] variants: denials become {!Fault.t}
   values carrying the fault kind and canonical pc the CODOMs machine
   raises for the equivalent attack, with posture downgrades letting
   downgradeable denials retire (counted under Audit). *)

let denied cpu ?addr ~pc kind =
  if cpu.posture = Fault.Strict || not (Fault.downgradeable kind) then
    Error { Fault.kind; pc; addr }
  else begin
    if cpu.posture = Fault.Audit then cpu.audited <- cpu.audited + 1;
    Ok ()
  end

(* Gate call: a non-gate address is not a legal entry point (a downgrade
   lets the jump retire without a domain switch — there is no target
   table to switch to); a gate used from the wrong source domain is a
   call-permission denial (a downgrade crosses anyway); a gate whose
   target domain is gone is a dangling descriptor — forged-capability
   territory, structural under every posture. *)
let call_gate_at cpu ~pc ~addr =
  match Hashtbl.find_opt cpu.gates addr with
  | None -> denied cpu ~addr ~pc Fault.Not_entry_point
  | Some g ->
      let go () =
        match Hashtbl.find_opt cpu.domains g.g_to with
        | None -> Error { Fault.kind = Fault.Cap_invalid; pc; addr = Some addr }
        | Some target ->
            cpu.pipeline_flushes <- cpu.pipeline_flushes + 1;
            cpu.cross_stack <- g.g_from :: cpu.cross_stack;
            cpu.current <- target;
            Ok ()
      in
      if g.g_from <> cpu.current.pd_id then
        match denied cpu ~addr ~pc (Fault.No_permission Perm.Call) with
        | Error _ as e -> e
        | Ok () -> go ()
      else go ()

(* Gate return: an empty cross stack is the MMP image of a DCS underflow
   — structural, denied under every posture. *)
let return_gate_at cpu ~pc =
  match cpu.cross_stack with
  | caller :: rest -> begin
      match Hashtbl.find_opt cpu.domains caller with
      | None -> Error { Fault.kind = Fault.Cap_invalid; pc; addr = None }
      | Some pd ->
          cpu.pipeline_flushes <- cpu.pipeline_flushes + 1;
          cpu.cross_stack <- rest;
          cpu.current <- pd;
          Ok ()
    end
  | [] -> denied cpu ~pc (Fault.Dcs_bounds "no crossing to return from")

(* Data access against the current domain's permission table.  [perm]
   names the attempted access in the machine's vocabulary for the
   [No_permission] payload; [needed] is the table-side permission. *)
let access_at cpu ~pc ~addr ~needed ~perm =
  if can_access cpu.current ~addr ~perm:needed then Ok ()
  else denied cpu ~addr ~pc (Fault.No_permission perm)
