(** Simulated physical memory: word data, capability cells (kept apart so
    capabilities cannot be forged bit-by-bit) and instruction slots.  All
    protection checks live in {!Machine}; this is the raw backing
    store. *)

type t

val create : unit -> t

(** 8-byte word at an 8-aligned address (0 when never written). *)
val load_word : t -> int -> int

val store_word : t -> int -> int -> unit

(** Capability cell at a 32-aligned address. *)
val load_cap : t -> int -> Capability.t option

val store_cap : t -> int -> Capability.t -> unit

(** Instruction at a 4-aligned address. *)
val fetch : t -> int -> Isa.instr option

(** Place a straight-line instruction sequence; returns the first address
    past it. *)
val place_code : t -> addr:int -> Isa.instr list -> int

val code_size : t -> int

(** Version of the code store: bumped by every {!place_code} call, so
    cached decodings (the machine's translated-block cache) can detect
    self-modified or re-placed code. *)
val code_generation : t -> int
