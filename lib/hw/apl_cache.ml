(* Per-hardware-thread software-managed APL cache (Secs. 4.1, 4.3).

   The cache holds the access-grant information of recently executed
   domains and maps each cached domain tag to a small hardware domain tag
   (5 bits for the 32-entry cache).  dIPC's extension (Sec. 4.3) is a
   privileged instruction that retrieves the hardware tag of any cached
   domain; the hardware tag then indexes the per-thread process-tracking
   array (Sec. 6.1.2).

   The cache is software-managed: on a miss the hardware raises an
   exception and the OS refills it.  The machine model supports both a
   strict mode (fault on miss, as real hardware would) and an auto-fill
   mode that charges a refill cost, which is what the paper's evaluation
   assumes ("this event never happens on the presented benchmarks",
   Sec. 7.5).

   [lookup] is the hot path (it runs on every domain crossing): a
   tag -> slot index makes it O(1) instead of a full-array scan with
   polymorphic compares.  [install] keeps the original LRU victim scan —
   refills are the cold path — and maintains the index invariant: every
   resident tag maps to the smallest hardware slot holding it, which is
   exactly what the old first-match scan returned. *)

let capacity = 32

type entry = { mutable tag : int; mutable last_use : int }

type t = {
  entries : entry array; (* index = hardware domain tag *)
  index : (int, int) Hashtbl.t; (* tag -> smallest slot holding it *)
  mutable clock : int;
  mutable generation : int; (* bumped on every [reset] (flush) *)
  mutable hits : int;
  mutable misses : int;
  mutable refills : int;
}

let create () =
  {
    entries = Array.init capacity (fun _ -> { tag = -1; last_use = 0 });
    index = Hashtbl.create capacity;
    clock = 0;
    generation = 0;
    hits = 0;
    misses = 0;
    refills = 0;
  }

let reset t =
  Array.iter
    (fun e ->
      e.tag <- -1;
      e.last_use <- 0)
    t.entries;
  Hashtbl.reset t.index;
  t.clock <- 0;
  t.generation <- t.generation + 1;
  (* Statistics must not bleed across scenario runs that reuse a machine. *)
  t.hits <- 0;
  t.misses <- 0;
  t.refills <- 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Hardware tag of [tag] if cached. *)
let lookup t tag =
  match Hashtbl.find_opt t.index tag with
  | Some i ->
      t.hits <- t.hits + 1;
      t.entries.(i).last_use <- tick t;
      Some i
  | None ->
      t.misses <- t.misses + 1;
      None

(* Install [tag], evicting the least-recently-used entry; returns the
   hardware tag it landed on. *)
let install t tag =
  let victim = ref 0 in
  Array.iteri
    (fun i e ->
      if e.tag = -1 && t.entries.(!victim).tag <> -1 then victim := i
      else if
        e.tag <> -1
        && t.entries.(!victim).tag <> -1
        && e.last_use < t.entries.(!victim).last_use
      then victim := i)
    t.entries;
  let e = t.entries.(!victim) in
  let old_tag = e.tag in
  e.tag <- tag;
  e.last_use <- tick t;
  t.refills <- t.refills + 1;
  (* Index upkeep for the evicted tag: if it was indexed at the victim
     slot, drop it and re-point at the smallest remaining duplicate (a
     duplicate can only exist if a caller installed a resident tag). *)
  (if old_tag >= 0 && old_tag <> tag then
     match Hashtbl.find_opt t.index old_tag with
     | Some s when s = !victim -> begin
         Hashtbl.remove t.index old_tag;
         try
           for i = 0 to capacity - 1 do
             if t.entries.(i).tag = old_tag then begin
               Hashtbl.replace t.index old_tag i;
               raise Exit
             end
           done
         with Exit -> ()
       end
     | _ -> ());
  (match Hashtbl.find_opt t.index tag with
  | Some s when s < !victim -> ()
  | _ -> Hashtbl.replace t.index tag !victim);
  !victim

(* Lookup-or-install used by the machine in auto-fill mode. *)
let ensure t tag =
  match lookup t tag with Some hw -> (hw, true) | None -> (install t tag, false)

let stats t = (t.hits, t.misses, t.refills)

let generation t = t.generation

let resident_tags t =
  Array.to_list t.entries |> List.filter_map (fun e -> if e.tag >= 0 then Some e.tag else None)
