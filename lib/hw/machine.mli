(** The CODOMs machine: fetch/execute with code-centric protection
    checks (Sec. 4.1).  The tag of the current instruction's page selects
    the APL used for data-access and control-transfer checks; crossing
    into another domain is just a jump.  Every instruction charges a
    calibrated latency; the protection checks themselves cost nothing
    (they run in parallel with the pipeline, per the paper's
    simulations). *)

module Breakdown = Dipc_sim.Breakdown

(** Cost of the software APL-cache refill after a miss (auto-fill mode). *)
val apl_cache_refill_cost : float

(** A translated basic block (straight-line instructions decoded once,
    guarded by code/page-table/APL generation counters). *)
type block

(** A superblock: basic blocks chained across direct jumps/calls and
    speculated conditional-branch arms, compiled to direct-threaded
    closures, with side exits back to the dispatcher when a speculation
    or a tag/priv junction guard fails mid-chain. *)
type superblock

(** One hardware thread's execution context. *)
type ctx = {
  id : int;  (** identity for synchronous-capability scoping *)
  regs : int array;
  cregs : Capability.t option array;
  mutable pc : int;
  mutable cur_tag : int;  (** domain of the current instruction *)
  mutable cur_page : int;
  mutable priv : bool;  (** privileged-capability bit of that page *)
  mutable fsbase : int;  (** TLS segment base *)
  mutable tp : int;  (** per-thread kernel struct pointer *)
  dcs : Dcs.t;
  mutable dcs_saved : Dcs.saved list;
  mutable depth : int;  (** call depth (synchronous capability scope) *)
  mutable epochs : int array;  (** frame epoch per depth *)
  mutable cost : float;  (** accumulated simulated ns *)
  mutable instret : int;
  breakdown : Breakdown.t;
  apl_cache : Apl_cache.t;
  mutable halted : bool;
  blocks : (int, block) Hashtbl.t;
      (** translated-block cache, keyed by starting pc *)
}

type t = {
  page_table : Page_table.t;
  apl : Apl.t;
  mem : Memory.t;
  revocation : Capability.Revocation.table;
  mutable strict_apl_cache : bool;  (** fault on cache miss (real hw) *)
  mutable on_syscall : (ctx -> int -> unit) option;
  mutable attr_of_tag : int -> Breakdown.category;
  mutable next_ctx_id : int;
  mutable tracer : Dipc_sim.Trace.t;
  tlb_pages : int array;
      (** direct-mapped translation cache: page number cached per way *)
  tlb_entries : Page_table.page array;
  mutable tlb_gen : int;
      (** {!Page_table.generation} the cache was filled at; a mismatch
          invalidates every way *)
  mutable inject : Dipc_sim.Inject.t option;
      (** fault injector consulted at domain crossings; [None] = clean *)
  mutable block_cache : bool;
      (** [run] uses translated-block dispatch when true (default); the
          tracer being enabled or an injector being installed overrides
          this per run.  See {!set_block_cache}. *)
  mutable superblocks : bool;
      (** under [block_cache]: superblock (trace-compiled) dispatch when
          true (default), the PR 5 one-block-at-a-time path when false;
          see {!set_superblocks} *)
  mutable ras : bool;
      (** under [superblocks]: predict through dynamic transfers — a
          return-address stack on [Ret], monomorphic inline caches on
          [Jmpr]/[Callr] — when true (default); false leaves every
          dynamic site a counted side exit (the [--no-ras] triage
          path); see {!set_ras} *)
  sblocks : (int, superblock) Hashtbl.t;
      (** superblock cache, keyed by entry pc; machine-wide so
          {!pretranslate} can warm it before any context exists *)
  ras_pc : int array;
      (** the return-address stack (fixed circular buffer of predicted
          return continuations); machine-wide like [sblocks] — every
          prediction is re-validated before it is chained, so stale
          entries mispredict, never diverge *)
  ras_sb : superblock array;
      (** empty slots hold a dummy whose -1 generation counters can
          never pass the pop-side liveness guard *)
  ras_uidx : int array;
  mutable ras_top : int;  (** next push slot *)
  mutable ras_len : int;  (** live entries (overflow drops the oldest) *)
  mutable ctr_block_entries : int;
      (** deterministic perf counters — pure functions of the simulated
          execution, identical at any [--jobs]/[--shards], and never
          part of any digest (they are dispatch-path-dependent by
          design: the reference interpreter reports zeros).
          [ctr_block_entries] counts translated-body entries (one per
          superblock unit entered / per block body executed) *)
  mutable ctr_sb_hits : int;  (** warm superblock dispatches *)
  mutable ctr_sb_translations : int;  (** superblocks (re)translated *)
  mutable ctr_side_exits : int;
      (** mid-chain exits: speculation misses, junction tag/priv guard
          failures, and dynamic junctions (Ret/Jmpr/Callr) that failed
          to chain *)
  mutable ctr_ras_hits : int;
      (** chained Rets predicted by the return-address stack *)
  mutable ctr_ras_misses : int;
      (** chained Rets that fell back to dispatch (mispredict,
          under/overflow, cross-crossing return, stale target); every
          miss is also counted in [ctr_side_exits] *)
  mutable ctr_ic_hits : int;
      (** chained Jmpr/Callr sites whose inline cache re-matched *)
  mutable ctr_ic_misses : int;
      (** chained Jmpr/Callr sites that fell back to dispatch
          (polymorphic target, cold cache, stale superblock); every
          miss is also counted in [ctr_side_exits] *)
  mutable posture : Fault.posture;
      (** enforcement posture for authorization faults (sampled from
          {!Fault.get_default_posture} at creation); see {!set_posture} *)
  mutable audited_faults : int;
      (** authorization faults downgraded by the [Audit] posture *)
}

exception Out_of_fuel

val create : unit -> t

(** Enable/disable translated-block dispatch on one machine. *)
val set_block_cache : t -> bool -> unit

(** Select the enforcement posture for authorization faults (those some
    authority could have granted): [Strict] raises — the default, under
    which every pre-existing golden digest is pinned; [Audit] counts the
    would-be fault in [audited_faults] (and emits a traced Fault event)
    before letting the operation proceed; [Permissive] proceeds
    silently.  Structural faults — unmapped pages, bad instructions,
    broken capability encodings, DCS bounds — raise under every
    posture. *)
val set_posture : t -> Fault.posture -> unit

(** Process-wide default for {!create} (sampled at machine creation):
    the [--no-block-cache] escape hatch for experiment code that builds
    machines internally. *)
val set_default_block_cache : bool -> unit

(** Enable/disable superblock (trace-compiled) dispatch on one machine;
    with it off (and [block_cache] on) [run] uses the PR 5
    one-block-at-a-time path.  Results, costs and digests are identical
    in every mode — triage only. *)
val set_superblocks : t -> bool -> unit

(** Process-wide default for {!create}: the [--no-superblocks] escape
    hatch, mirroring {!set_default_block_cache}. *)
val set_default_superblocks : bool -> unit

(** Enable/disable the dynamic-transfer predictors (return-address
    stack + inline caches) on one machine.  Toggling drops the
    superblock cache and any live predictions — translation shapes
    depend on the setting.  Results, costs and digests are identical in
    every mode — triage only. *)
val set_ras : t -> bool -> unit

(** Process-wide default for {!create}: the [--no-ras] escape hatch,
    mirroring {!set_default_superblocks}. *)
val set_default_ras : bool -> unit

(** Warm the superblock cache for the entry point at [pc] (a no-op
    unless both fast paths are enabled, or when [pc] is unmapped or not
    executable).  Called at proxy/template generation time so the first
    dIPC crossing dispatches into already-compiled code; only effective
    if no later [Memory.place_code]/table change bumps a generation —
    a stale warm entry merely retranslates on first dispatch. *)
val pretranslate : t -> pc:int -> unit

val set_syscall_handler : t -> (ctx -> int -> unit) -> unit

(** Install a trace sink: instruction charges, domain crossings, syscalls
    and faults are emitted into it (timestamped by the executing context's
    accumulated cost).  Defaults to {!Dipc_sim.Trace.null}. *)
val set_trace : t -> Dipc_sim.Trace.t -> unit

(** Install (or clear) a seeded fault injector: domain crossings may then
    suffer APL-cache flushes (forcing the refill path) and
    capability-register clobber-and-restore cycles.  The crossing must
    still produce the same architectural results, just slower. *)
val set_inject : t -> Dipc_sim.Inject.t option -> unit

(** Choose the Breakdown category instruction costs are attributed to,
    per executing domain tag. *)
val set_attribution : t -> (int -> Breakdown.category) -> unit

val new_ctx : ?dcs_capacity:int -> t -> pc:int -> sp_value:int -> ctx

(** Charge [ns] attributed by the current domain / explicitly. *)
val charge : t -> ctx -> float -> unit

val charge_as : t -> ctx -> Breakdown.category -> float -> unit

(** Is the capability usable by this context right now (thread, frame
    liveness, revocation counters)? *)
val cap_valid : t -> ctx -> Capability.t -> bool

(** Check a data access (APL of the current domain, else any of the 8
    capability registers, then the per-page protection bits); raises
    {!Fault.Fault} on denial. *)
val check_data : t -> ctx -> addr:int -> len:int -> perm:Perm.t -> unit

(** Cross-domain control-transfer check + domain switch (Sec. 4.1): read
    rights allow any target, call rights only aligned entry points. *)
val check_transfer : t -> ctx -> int -> unit

(** Execute one instruction (the reference stepper). *)
val step : t -> ctx -> [ `Halted | `Running ]

(** Run until Halt; raises {!Fault.Fault} on protection violations and
    {!Out_of_fuel} after [fuel] instructions.  Dispatches through the
    translated-block cache when [block_cache] is set, the tracer is
    disabled and no injector is installed; otherwise steps through the
    reference interpreter.  Both paths produce identical architectural
    state, costs, Breakdown totals and trace digests. *)
val run : ?fuel:int -> t -> ctx -> unit

(** Kernel-privilege redirection (fault unwinding, Sec. 5.2.1): set the
    pc and domain state without APL checks. *)
val force_transfer : t -> ctx -> target:int -> unit

(** Kernel-privilege frame drop: invalidate synchronous capabilities of
    the dropped frames. *)
val force_unwind_depth : ctx -> depth:int -> unit

(** Host-side frame entry (the host's invocation is itself a frame). *)
val enter_frame : ctx -> unit

(** Unchecked word write/read (loader / DMA path). *)
val poke_words : t -> addr:int -> int array -> unit

val peek_word : t -> addr:int -> int
