(* Tagged page table (Sec. 4.1).

   CODOMs extends a conventional page table with a per-page domain tag, a
   privileged-capability bit (code allowed to execute privileged
   instructions without a mode switch) and a capability-storage bit (pages
   that may hold capabilities, accessed only through capability load/store
   instructions). *)

type page = {
  mutable tag : int;
  mutable readable : bool;
  mutable writable : bool;
  mutable executable : bool;
  mutable priv_cap : bool; (* privileged capability bit (Sec. 4.1) *)
  mutable cap_store : bool; (* capability storage bit (Sec. 4.2) *)
}

(* [generation] is bumped whenever the page-number -> page mapping itself
   changes (map/unmap); [Machine]'s one-entry translation cache keys on
   it.  In-place mutation of a [page] record (retag, set_protection) does
   not bump it: cached pointers to the record observe those writes. *)
type t = { pages : (int, page) Hashtbl.t; mutable generation : int }

let create () = { pages = Hashtbl.create 1024; generation = 0 }

let generation t = t.generation

let find t addr = Hashtbl.find_opt t.pages (Layout.page_of addr)

let find_exn t ~pc addr =
  match find t addr with
  | Some p -> p
  | None -> Fault.raise_fault ~pc ~addr Fault.Unmapped

let is_mapped t addr = Hashtbl.mem t.pages (Layout.page_of addr)

(* Map [count] pages starting at the page containing [addr]. *)
let map t ~addr ~count ~tag ?(readable = true) ?(writable = true)
    ?(executable = false) ?(priv_cap = false) ?(cap_store = false) () =
  t.generation <- t.generation + 1;
  let first = Layout.page_of addr in
  for i = first to first + count - 1 do
    if Hashtbl.mem t.pages i then
      invalid_arg (Printf.sprintf "Page_table.map: page %d already mapped" i);
    Hashtbl.replace t.pages i
      { tag; readable; writable; executable; priv_cap; cap_store }
  done

let unmap t ~addr ~count =
  t.generation <- t.generation + 1;
  let first = Layout.page_of addr in
  for i = first to first + count - 1 do
    Hashtbl.remove t.pages i
  done

(* Reassign selected pages from one domain tag to another (dom_remap of
   Table 2).  Fails if any page is missing or not owned by [from_tag]. *)
let retag t ~addr ~count ~from_tag ~to_tag =
  let first = Layout.page_of addr in
  for i = first to first + count - 1 do
    match Hashtbl.find_opt t.pages i with
    | None -> invalid_arg "Page_table.retag: unmapped page"
    | Some p ->
        if p.tag <> from_tag then
          invalid_arg "Page_table.retag: page not in source domain"
  done;
  for i = first to first + count - 1 do
    (Hashtbl.find t.pages i).tag <- to_tag
  done

let set_protection t ~addr ~count ?readable ?writable ?executable () =
  let first = Layout.page_of addr in
  for i = first to first + count - 1 do
    match Hashtbl.find_opt t.pages i with
    | None -> invalid_arg "Page_table.set_protection: unmapped page"
    | Some p ->
        Option.iter (fun v -> p.readable <- v) readable;
        Option.iter (fun v -> p.writable <- v) writable;
        Option.iter (fun v -> p.executable <- v) executable
  done

let mapped_page_count t = Hashtbl.length t.pages

(* Pages belonging to a tag; used by dIPC domain teardown. *)
let pages_of_tag t tag =
  Hashtbl.fold (fun pn p acc -> if p.tag = tag then pn :: acc else acc) t.pages []
