(** Functional miniature of Mondrian Memory Protection (the Table 1
    comparison point): per-domain privileged permission tables and
    switch/return gates costing a pipeline flush. *)

type perm = None_ | Read_only | Read_write | Execute_read

val allows : perm -> perm -> bool

type pd = {
  pd_id : int;
  mutable regions : region list;
  mutable table_writes : int;  (** cost proxy for grants/revocations *)
}

and region = { r_base : int; r_len : int; r_perm : perm }

val pd : id:int -> pd

(** Privileged table edits (the supervisor's job). *)
val grant : pd -> base:int -> len:int -> perm:perm -> unit

val revoke : pd -> base:int -> len:int -> unit

val can_access : pd -> addr:int -> perm:perm -> bool

type cpu = {
  mutable current : pd;
  gates : (int, gate) Hashtbl.t;
  domains : (int, pd) Hashtbl.t;
  mutable cross_stack : int list;
  mutable pipeline_flushes : int;
  mutable posture : Fault.posture;
      (** enforcement posture (sampled from
          {!Fault.get_default_posture} at creation) *)
  mutable audited : int;  (** denials downgraded by the [Audit] posture *)
}

and gate = { g_addr : int; g_from : int; g_to : int }

val cpu : initial:pd -> cpu

val add_domain : cpu -> pd -> unit

val add_gate : cpu -> addr:int -> from_pd:int -> to_pd:int -> unit

(** Cross through a switch gate (legal only from its source domain). *)
val call_gate : cpu -> addr:int -> (unit, string) result

val return_gate : cpu -> (unit, string) result

val switch_cost_ns : float

val table_write_cost_ns : float

(** Bulk-data sharing: one table entry per page-sized chunk. *)
val share_cost_ns : bytes:int -> float

(** {2 Structured fault API}

    Denials become {!Fault.t} values with the fault kind and canonical
    pc the CODOMs machine raises for the equivalent attack; posture
    downgrades let downgradeable denials retire. *)

(** Gate call: non-gate address → [Not_entry_point]; wrong source
    domain → [No_permission Call]; dangling target domain →
    [Cap_invalid] (structural). *)
val call_gate_at : cpu -> pc:int -> addr:int -> (unit, Fault.t) result

(** Gate return: empty cross stack → [Dcs_bounds] (structural). *)
val return_gate_at : cpu -> pc:int -> (unit, Fault.t) result

(** Data access against the current domain's table: denial →
    [No_permission perm] ([needed] is the table-side permission, [perm]
    the machine-vocabulary payload). *)
val access_at :
  cpu -> pc:int -> addr:int -> needed:perm -> perm:Perm.t ->
  (unit, Fault.t) result
