(* Hardware fault model.

   Every protection violation the CODOMs machine can detect raises
   [Fault.Fault]; the kernel / dIPC layer above catches it to implement
   fault notification and KCS unwinding (Sec. 5.2.1). *)

type kind =
  | Unmapped (* access to an unmapped page *)
  | No_permission of Perm.t (* neither APL nor any capability grants it *)
  | Not_entry_point (* call-permission transfer to a misaligned address *)
  | Exec_violation (* fetch from a non-executable page *)
  | Write_to_readonly (* APL/cap would allow it but the page is read-only *)
  | Privilege_required (* privileged instruction from a non-priv page *)
  | Cap_invalid (* revoked or out-of-scope capability *)
  | Cap_storage of string (* cap-storage-bit discipline violated *)
  | Dcs_bounds of string (* DCS under/overflow or base violation *)
  | Apl_cache_miss of int (* strict mode only; payload = missing tag *)
  | Bad_instruction (* fetch decoded no instruction *)
  | Software_trap of int (* explicit Trap instruction, e.g. stack check *)

type t = { kind : kind; pc : int; addr : int option }

exception Fault of t

let raise_fault ?addr ~pc kind = raise (Fault { kind; pc; addr })

let kind_to_string = function
  | Unmapped -> "unmapped page"
  | No_permission p -> "no " ^ Perm.to_string p ^ " permission"
  | Not_entry_point -> "misaligned cross-domain call target"
  | Exec_violation -> "execute violation"
  | Write_to_readonly -> "write to read-only page"
  | Privilege_required -> "privileged instruction in user code"
  | Cap_invalid -> "invalid/revoked capability"
  | Cap_storage s -> "capability storage violation: " ^ s
  | Dcs_bounds s -> "DCS bounds violation: " ^ s
  | Apl_cache_miss t -> Printf.sprintf "APL cache miss (tag %d)" t
  | Bad_instruction -> "bad instruction"
  | Software_trap n -> Printf.sprintf "software trap %d" n

let pp ppf t =
  Fmt.pf ppf "fault[%s] at pc=0x%x%a" (kind_to_string t.kind) t.pc
    (fun ppf -> function
      | None -> ()
      | Some a -> Fmt.pf ppf " addr=0x%x" a)
    t.addr

let to_string t = Fmt.str "%a" pp t

(* Stable small code per fault class, for digestable fault summaries
   (payloads are dropped; the directed suites assert exact kinds).  The
   numbering is part of the adversarial golden pins: append, never
   renumber. *)
let kind_code = function
  | Unmapped -> 0
  | No_permission _ -> 1
  | Not_entry_point -> 2
  | Exec_violation -> 3
  | Write_to_readonly -> 4
  | Privilege_required -> 5
  | Cap_invalid -> 6
  | Cap_storage _ -> 7
  | Dcs_bounds _ -> 8
  | Apl_cache_miss _ -> 9
  | Bad_instruction -> 10
  | Software_trap _ -> 11

(* --- security posture ---

   Baked-in enforcement posture, selecting what a protection unit does
   with an *authorization* fault — a denial some authority (an APL
   entry, a capability, the privilege bit) could have granted:

     Strict      fault immediately.  The architectural default; every
                 pre-existing golden digest is pinned under it.
     Audit       record the would-be fault (an audit counter, plus a
                 traced Fault event when tracing) and let the operation
                 proceed.
     Permissive  let the operation proceed silently.

   Structural faults — unmapped pages, undecodable instructions, broken
   capability encodings, DCS bounds, software traps — raise under every
   posture: there is no defined way to continue past them. *)

type posture = Strict | Audit | Permissive

let all_postures = [ Strict; Audit; Permissive ]

let posture_to_string = function
  | Strict -> "strict"
  | Audit -> "audit"
  | Permissive -> "permissive"

let posture_of_string = function
  | "strict" -> Some Strict
  | "audit" -> Some Audit
  | "permissive" -> Some Permissive
  | _ -> None

(* Which fault classes a non-strict posture may downgrade. *)
let downgradeable = function
  | No_permission _ | Not_entry_point | Exec_violation | Write_to_readonly
  | Privilege_required | Cap_storage _ ->
      true
  | Unmapped | Cap_invalid | Dcs_bounds _ | Apl_cache_miss _ | Bad_instruction
  | Software_trap _ ->
      false

(* Process-wide default posture, sampled at machine/model creation (the
   same pattern as [Machine.default_block_cache]): the CLI flips it
   before any machine exists.  Atomic because the parallel runner
   creates machines from several domains. *)
let default_posture = Atomic.make Strict

let set_default_posture p = Atomic.set default_posture p

let get_default_posture () = Atomic.get default_posture
