(* The CODOMs machine: fetch/execute with code-centric protection checks.

   The subject of every access-control decision is the *instruction
   pointer* (Sec. 4.1): the tag of the page the current instruction lives
   on selects the APL used to check data accesses and cross-domain control
   transfers.  Crossing into another domain is just a jump; the effective
   key set and privilege level change implicitly, which is why domain
   switches cost no more than the branch itself (Table 1).

   Timing: every instruction charges a calibrated latency (Isa.cost) to the
   executing context, attributed to a Breakdown category chosen per domain
   tag; protection checks themselves are free, matching the paper's
   simulation result that they run in parallel with the pipeline. *)

module Costs = Dipc_sim.Costs
module Breakdown = Dipc_sim.Breakdown
module Trace = Dipc_sim.Trace

let apl_cache_refill_cost = 250.0 (* exception + software cache refill *)

(* A translated basic block: the straight-line instructions starting at
   [b_pc] (same page, stopping before the first branch/call/ret/syscall/
   trap/halt, the page boundary, or an unfetchable slot), decoded once
   with their costs pre-resolved.  [b_len = 0] means the first instruction
   is itself a terminator (or unfetchable): dispatch falls back to the
   reference stepper for that one instruction.

   Validity is guarded by generation counters snapshotted at translation
   time: the code store ([Memory.place_code] would overwrite decoded
   instructions), the page table (map/unmap could change what the pc
   region means), the APL and the per-thread APL cache (mutation/flush —
   conservative: the block body itself consults APL state live, but
   over-invalidation merely retranslates identical code and is always
   safe).  Key fields [b_tag]/[b_priv] pin the domain view the block was
   translated under. *)
type block = {
  b_pc : int;
  b_tag : int;
  b_priv : bool;
  b_len : int;
  b_instrs : Isa.instr array;
  b_costs : float array;
  b_code_gen : int;
  b_pt_gen : int;
  b_apl_gen : int;
  b_aplc_gen : int;
}

(* One unit of a superblock: a straight-line body (compiled to
   direct-threaded closures over the context), an optional *chained*
   terminator, and one speculated successor.  Only control flow whose
   target is a translation-time constant is chained: direct [Jmp],
   direct [Call], and conditional branches (speculated backward-taken /
   forward-fall-through, the classic static heuristic).  [Ret], the
   indirect jumps/calls, [Syscall], [Trap] and [Halt] always end the
   chain — they either compute their target at run time, run foreign
   code, or stop the machine.

   [u_next] is the speculated successor pc and [u_next_idx] its unit
   index within the same superblock (-1 = planned chain end: the
   dispatcher takes over).  A [u_next_idx] pointing *backward* closes a
   loop inside the superblock, so a hot loop executes with no cache
   lookups at all.  [u_tag]/[u_priv] record the domain view the unit
   was translated under; the junction re-checks them after the
   transfer check because [Page_table.retag]/[set_protection] mutate
   pages in place without bumping the table generation.

   PR 10 chains the dynamic transfers too.  [u_dyn] classifies the
   terminator's junction: [Dyn_ret] consults the per-machine
   return-address stack, [Dyn_ic] a per-site monomorphic inline cache
   on [Jmpr]/[Callr].  [u_cont_idx] is the unit index of a [Call]/
   [Callr]'s return continuation within the same superblock (-1 if it
   was not materialised under the unit budget): the terminator pushes
   it onto the RAS so the matching [Ret] can chain straight back.
   [Syscall], [Trap] and [Halt] still always end the chain — they run
   foreign code or stop the machine. *)
type sunit = {
  u_pc : int;
  u_tag : int;
  u_priv : bool;
  u_len : int;
  u_code : (ctx -> unit) array;  (* direct-threaded body *)
  u_costs : float array;
  u_term : Isa.instr option;  (* chained terminator, if any *)
  u_term_code : ctx -> unit;  (* its compiled form (no-op when None) *)
  u_term_pc : int;
  u_term_cost : float;
  u_next : int;
  u_next_idx : int;
  u_dyn : dyn;  (* dynamic-junction kind of the chained terminator *)
  mutable u_cont_idx : int;
      (* call-return continuation unit (RAS prediction), -1 = none;
         mutable only because continuations are resolved after every
         unit of the superblock has been built *)
}

and dyn = Dyn_none | Dyn_ret | Dyn_ic of ic

(* A monomorphic inline cache on one [Jmpr]/[Callr] site: the last
   observed target pc and (when warm) the superblock it chained into.
   [ic_sb] is revalidated against the live tag/priv view and the
   generation counters on every consult — a stale entry is refilled
   from the machine-wide cache or falls back to the dispatcher. *)
and ic = { mutable ic_pc : int; mutable ic_sb : superblock option }

and superblock = {
  s_pc : int;
  s_tag : int;
  s_priv : bool;
  s_units : sunit array;
  s_code_gen : int;
  s_pt_gen : int;
  s_apl_gen : int;
      (* No APL-cache generation guard (unlike [block]): the cache is
         per-context while superblocks are shared machine-wide, and the
         guard was purely conservative anyway — bodies and junctions
         consult APL-cache state live. *)
}

and ctx = {
  id : int;
  regs : int array;
  cregs : Capability.t option array;
  mutable pc : int;
  mutable cur_tag : int;
  mutable cur_page : int; (* page of the last fetched instruction *)
  mutable priv : bool; (* privileged-capability bit of that page *)
  mutable fsbase : int; (* TLS segment base *)
  mutable tp : int; (* per-thread kernel struct pointer (gs-like) *)
  dcs : Dcs.t;
  mutable dcs_saved : Dcs.saved list;
  mutable depth : int; (* call depth, for synchronous capability scope *)
  mutable epochs : int array; (* frame epoch per depth *)
  mutable cost : float; (* accumulated ns *)
  mutable instret : int;
  breakdown : Breakdown.t;
  apl_cache : Apl_cache.t;
  mutable halted : bool;
  blocks : (int, block) Hashtbl.t;
      (* translated-block cache, keyed by starting pc; per-context so the
         APL-cache flush guard tracks *this* thread's cache *)
}

type t = {
  page_table : Page_table.t;
  apl : Apl.t;
  mem : Memory.t;
  revocation : Capability.Revocation.table;
  mutable strict_apl_cache : bool;
  mutable on_syscall : (ctx -> int -> unit) option;
  mutable attr_of_tag : int -> Breakdown.category;
  mutable next_ctx_id : int;
  mutable tracer : Trace.t;
  tlb_pages : int array; (* direct-mapped translation cache: page per way *)
  tlb_entries : Page_table.page array;
  mutable tlb_gen : int;
      (* {!Page_table.generation} the cache was filled at; a mismatch
         invalidates every way at once *)
  mutable inject : Dipc_sim.Inject.t option;
      (* Fault injector consulted at domain crossings; [None] keeps the
         crossing path exactly as-is. *)
  mutable block_cache : bool;
      (* [run] dispatches through translated blocks when true (and the
         tracer is off and no injector is installed); false forces the
         reference stepper throughout — the --no-block-cache triage
         escape hatch. *)
  mutable superblocks : bool;
      (* Under [block_cache]: chain blocks across direct jumps/calls
         into superblocks with speculative continuations (the fastest
         path, the default); false falls back to the PR 5 one-block-at-
         a-time dispatch — the --no-superblocks triage escape hatch.
         Ignored when [block_cache] is false. *)
  mutable ras : bool;
      (* Under [superblocks]: predict through the dynamic transfers —
         return-address stack on Ret, inline caches on Jmpr/Callr
         (the default); false leaves every dynamic site a counted side
         exit — the --no-ras triage escape hatch. *)
  sblocks : (int, superblock) Hashtbl.t;
      (* superblock cache, keyed by entry pc; machine-wide (shared by
         every context) so [pretranslate] can warm it before any thread
         exists *)
  ras_pc : int array;
      (* The return-address stack: a fixed circular buffer of predicted
         return continuations (pc, superblock, unit index), pushed by
         chained Call/Callr terminators and popped by chained Rets.
         Machine-wide like [sblocks]: a context switch between push and
         pop merely mispredicts (a counted side exit), never diverges —
         every prediction is validated against the live pc, tag/priv
         and generation counters before it is chained. *)
  ras_sb : superblock array;
      (* [ras_dummy] marks an empty slot: its generation fields are -1,
         which the pop-side liveness guard can never match, so no
         separate occupancy test (or per-push [Some] allocation) is
         needed on the hot path *)
  ras_uidx : int array;
  mutable ras_top : int;  (* next push slot *)
  mutable ras_len : int;  (* live entries (overflow drops the oldest) *)
  mutable ctr_block_entries : int;
      (* deterministic perf counters: translated-body entries (one per
         superblock unit entered / per PR 5 block body executed)... *)
  mutable ctr_sb_hits : int;  (* ...warm superblock dispatches... *)
  mutable ctr_sb_translations : int;  (* ...superblocks (re)translated... *)
  mutable ctr_side_exits : int;
      (* ...and mid-chain exits: speculation misses, junction tag/priv
         guard failures, and dynamic junctions (Ret/Jmpr/Callr) that
         failed to chain.  Pure functions of the simulated execution —
         identical at any --jobs/--shards — and never part of any
         digest (they are path-dependent by design: the reference
         interpreter reports zeros). *)
  mutable ctr_ras_hits : int;
      (* chained Rets predicted by the return-address stack... *)
  mutable ctr_ras_misses : int;
      (* ...and chained Rets that fell back to the dispatcher
         (mispredict, under/overflow, cross-crossing, stale target);
         every miss is also a side exit *)
  mutable ctr_ic_hits : int;
      (* chained Jmpr/Callr sites whose inline cache re-matched... *)
  mutable ctr_ic_misses : int;
      (* ...and those that fell back to dispatch (polymorphic target,
         cold cache, stale superblock); every miss is also a side
         exit *)
  mutable posture : Fault.posture;
      (* Enforcement posture for authorization faults: Strict raises
         (the default), Audit counts + traces the would-be fault and
         lets the operation proceed, Permissive proceeds silently.
         Structural faults raise under every posture. *)
  mutable audited_faults : int;
      (* Authorization faults downgraded by the Audit posture. *)
}

exception Out_of_fuel

(* Process-wide default for [t.block_cache], sampled by [create]:
   experiment code builds machines internally, so the CLI escape hatch
   flips this before any machine exists.  Atomic because the PR 4 runner
   creates machines from several domains. *)
let default_block_cache = Atomic.make true

let set_default_block_cache v = Atomic.set default_block_cache v

(* Same contract for the superblock compiler (the --no-superblocks
   escape hatch): flipped before any machine exists, sampled by
   [create]. *)
let default_superblocks = Atomic.make true

let set_default_superblocks v = Atomic.set default_superblocks v

(* And for the dynamic-transfer predictors (the --no-ras escape hatch):
   RAS + inline caches off leaves every Ret/Jmpr/Callr a counted side
   exit, isolating prediction bugs from the rest of the compiler. *)
let default_ras = Atomic.make true

let set_default_ras v = Atomic.set default_ras v

(* Return-address stack capacity; a power of two so push/pop wrap with a
   mask.  64 comfortably covers the deepest call towers in the suite —
   deeper recursion degrades to mispredicted (reference-path) returns,
   never to wrong execution. *)
let ras_capacity = 64

(* Translation-cache geometry: a direct-mapped power-of-two array so a
   lookup is one mask and one compare.  The way index mixes high page
   bits in because workloads place code/data/stack regions at round
   power-of-two addresses — with a plain low-bits index those regions
   all collide in way 0 and the hot call/return path (stack page for
   the push/pop check, code page for the transfer check) would thrash
   exactly like the old one-entry cache did. *)
let tlb_ways = 64

let tlb_way page = (page lxor (page lsr 6) lxor (page lsr 12)) land (tlb_ways - 1)

(* Never chained: generation counters only count up from 0, so the -1s
   fail the pop-side liveness guard before [s_units] is ever touched. *)
let ras_dummy : superblock =
  {
    s_pc = -1;
    s_tag = -1;
    s_priv = false;
    s_units = [||];
    s_code_gen = -1;
    s_pt_gen = -1;
    s_apl_gen = -1;
  }

(* Never returned: [tlb_pages] entries start at -1, which no address
   maps to. *)
let tlb_dummy : Page_table.page =
  {
    Page_table.tag = -1;
    readable = false;
    writable = false;
    executable = false;
    priv_cap = false;
    cap_store = false;
  }

let create () =
  {
    page_table = Page_table.create ();
    apl = Apl.create ();
    mem = Memory.create ();
    revocation = Capability.Revocation.create ();
    strict_apl_cache = false;
    on_syscall = None;
    attr_of_tag = (fun _ -> Breakdown.User_code);
    next_ctx_id = 0;
    tracer = Trace.null;
    tlb_pages = Array.make tlb_ways (-1);
    tlb_entries = Array.make tlb_ways tlb_dummy;
    tlb_gen = -1;
    inject = None;
    block_cache = Atomic.get default_block_cache;
    superblocks = Atomic.get default_superblocks;
    ras = Atomic.get default_ras;
    sblocks = Hashtbl.create 64;
    ras_pc = Array.make ras_capacity 0;
    ras_sb = Array.make ras_capacity ras_dummy;
    ras_uidx = Array.make ras_capacity 0;
    ras_top = 0;
    ras_len = 0;
    ctr_block_entries = 0;
    ctr_sb_hits = 0;
    ctr_sb_translations = 0;
    ctr_side_exits = 0;
    ctr_ras_hits = 0;
    ctr_ras_misses = 0;
    ctr_ic_hits = 0;
    ctr_ic_misses = 0;
    posture = Fault.get_default_posture ();
    audited_faults = 0;
  }

let set_block_cache m v = m.block_cache <- v

let set_superblocks m v = m.superblocks <- v

let set_ras m v =
  if m.ras <> v then begin
    m.ras <- v;
    (* Translation shapes depend on the flag (continuation units are
       only materialised with prediction on): drop the cache and let
       dispatch retranslate under the new setting.  Also forget any
       live predictions — their superblocks just died. *)
    Hashtbl.reset m.sblocks;
    Array.fill m.ras_sb 0 ras_capacity ras_dummy;
    m.ras_top <- 0;
    m.ras_len <- 0
  end

let set_posture m p = m.posture <- p

(* Page-table lookup through the direct-mapped translation cache:
   fetch/load/store into a warm page skips the page-table Hashtbl, and
   distinct hot pages (code, data, stack) each keep their own way
   instead of evicting one another.  Entries are invalidated by the
   table's generation counter (map/unmap) — a generation bump flushes
   the whole cache on the next miss — and in-place page mutation is
   observed through the shared record. *)
let find_page m ~pc addr =
  let page = Layout.page_of addr in
  let way = tlb_way page in
  if Array.unsafe_get m.tlb_pages way = page
     && Page_table.generation m.page_table = m.tlb_gen
  then Array.unsafe_get m.tlb_entries way
  else begin
    let entry = Page_table.find_exn m.page_table ~pc addr in
    let gen = Page_table.generation m.page_table in
    if gen <> m.tlb_gen then begin
      Array.fill m.tlb_pages 0 tlb_ways (-1);
      m.tlb_gen <- gen
    end;
    m.tlb_pages.(way) <- page;
    m.tlb_entries.(way) <- entry;
    entry
  end

let set_syscall_handler m f = m.on_syscall <- Some f

let set_trace m tracer = m.tracer <- tracer

let set_inject m inj = m.inject <- inj

let set_attribution m f = m.attr_of_tag <- f

let new_ctx ?(dcs_capacity = Dcs.default_capacity) m ~pc ~sp_value =
  let id = m.next_ctx_id in
  m.next_ctx_id <- m.next_ctx_id + 1;
  let regs = Array.make Isa.num_regs 0 in
  regs.(Isa.sp) <- sp_value;
  {
    id;
    regs;
    cregs = Array.make Isa.num_cregs None;
    pc;
    cur_tag = -1;
    cur_page = -1;
    priv = false;
    fsbase = 0;
    tp = 0;
    dcs = Dcs.create ~capacity:dcs_capacity ();
    dcs_saved = [];
    depth = 0;
    epochs = Array.make 64 0;
    cost = 0.;
    instret = 0;
    breakdown = Breakdown.create ();
    apl_cache = Apl_cache.create ();
    halted = false;
    blocks = Hashtbl.create 64;
  }

let charge m ctx ns =
  ctx.cost <- ctx.cost +. ns;
  let cat = m.attr_of_tag ctx.cur_tag in
  Breakdown.charge ctx.breakdown cat ns;
  if Trace.enabled m.tracer then
    Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag ~cat ~dur:ns
      Trace.Charge

let charge_as m ctx category ns =
  ctx.cost <- ctx.cost +. ns;
  Breakdown.charge ctx.breakdown category ns;
  if Trace.enabled m.tracer then
    Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag ~cat:category
      ~dur:ns Trace.Charge

(* Posture-mediated denial.  Strict raises (the pre-posture behaviour,
   byte-identical digests); Audit counts the would-be fault — and, when
   tracing, emits the Fault event the strict machine would have — then
   lets the caller continue; Permissive continues silently.  Structural
   faults ([Fault.downgradeable] = false) raise under every posture. *)
let deny m ctx ?addr ~pc kind =
  if m.posture = Fault.Strict || not (Fault.downgradeable kind) then
    Fault.raise_fault ?addr ~pc kind
  else if m.posture = Fault.Audit then begin
    m.audited_faults <- m.audited_faults + 1;
    if Trace.enabled m.tracer then
      Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag ~arg:pc
        Trace.Fault
  end

(* --- capability validity (Sec. 4.2) --- *)

let cap_valid m ctx (cap : Capability.t) =
  match cap.scope with
  | Capability.Synchronous { thread; depth; epoch } ->
      thread = ctx.id && depth <= ctx.depth && ctx.epochs.(depth) = epoch
  | Capability.Asynchronous { owner_tag; counter; value } ->
      Capability.Revocation.value m.revocation ~tag:owner_tag ~counter = value

(* --- data access checks --- *)

let page_allows (page : Page_table.page) (perm : Perm.t) =
  match perm with
  | Perm.Write | Perm.Owner -> page.writable
  | Perm.Read -> page.readable
  | Perm.Call | Perm.Nil -> page.readable

(* Audit trail behind a granted (or posture-downgraded) data access, for
   the checker's isolation invariants.  [Xtag_access] records the
   authority carrying a cross-tag access: 2 = APL, 1 = capability, 3 =
   allowed by a non-strict posture.  Code 0 ("no authority at all") is
   never emitted — the machine denies instead — so its appearance in a
   stream is itself the violation the checker looks for.  A capability
   grant additionally records [Cap_use] with the stamp the capability
   was minted under, which the checker replays against observed
   [Cap_revoke] events (revocation completeness). *)
let trace_authority m ctx ~(page : Page_table.page) ~apl_ok ~cap =
  if page.tag <> ctx.cur_tag then begin
    let code = if apl_ok then 2 else if cap <> None then 1 else 3 in
    Trace.emit m.tracer ~ts:ctx.cost ~cpu:code ~tid:ctx.id ~tag:page.tag
      ~arg:ctx.cur_tag Trace.Xtag_access
  end;
  match cap with
  | Some
      {
        Capability.scope = Capability.Asynchronous { owner_tag; counter; value };
        _;
      } ->
      Trace.emit m.tracer ~ts:ctx.cost ~cpu:value ~tid:ctx.id ~tag:owner_tag
        ~arg:counter Trace.Cap_use
  | _ -> ()

(* Check that [ctx] may access [len] bytes at [addr] with [perm]; data
   accesses are satisfied by the APL of the current domain or by any of the
   8 capability registers (Sec. 4.2). *)
let check_data m ctx ~addr ~len ~perm =
  let page = find_page m ~pc:ctx.pc addr in
  if page.cap_store then
    deny m ctx ~pc:ctx.pc ~addr
      (Fault.Cap_storage "regular access to a capability-storage page");
  let apl_perm = Apl.permission m.apl ~src:ctx.cur_tag ~dst:page.tag in
  let apl_ok = Perm.includes apl_perm perm in
  (* The APL-granted case (every same-domain access) is the hot path:
     it never consults the capability registers, so skip the scan and
     its accumulator entirely. *)
  if apl_ok then begin
    if Trace.enabled m.tracer then
      trace_authority m ctx ~page ~apl_ok:true ~cap:None
  end
  else begin
    let granted = ref None in
    for i = 0 to Isa.num_cregs - 1 do
      match ctx.cregs.(i) with
      | Some cap
        when !granted = None
             && cap_valid m ctx cap
             && Capability.covers cap ~addr ~len
             && Capability.grants cap perm ->
          granted := Some cap
      | Some _ | None -> ()
    done;
    if !granted = None then
      deny m ctx ~pc:ctx.pc ~addr (Fault.No_permission perm);
    if Trace.enabled m.tracer then
      trace_authority m ctx ~page ~apl_ok:false ~cap:!granted
  end;
  (* CODOMs honors the per-page protection bits (Sec. 4.1). *)
  if not (page_allows page perm) then begin
    if Perm.includes perm Perm.Write then
      deny m ctx ~pc:ctx.pc ~addr Fault.Write_to_readonly
    else deny m ctx ~pc:ctx.pc ~addr (Fault.No_permission perm)
  end

let check_cap_page m ctx ~addr ~perm =
  let page = find_page m ~pc:ctx.pc addr in
  if not page.cap_store then
    deny m ctx ~pc:ctx.pc ~addr
      (Fault.Cap_storage "capability access to a regular page");
  let apl_perm = Apl.permission m.apl ~src:ctx.cur_tag ~dst:page.tag in
  let apl_ok = Perm.includes apl_perm perm in
  let granted = ref None in
  let allowed =
    apl_ok
    || begin
         for i = 0 to Isa.num_cregs - 1 do
           match ctx.cregs.(i) with
           | Some cap
             when !granted = None
                  && cap_valid m ctx cap
                  && Capability.covers cap ~addr ~len:Layout.cap_bytes
                  && Capability.grants cap perm ->
               granted := Some cap
           | Some _ | None -> ()
         done;
         !granted <> None
       end
  in
  if not allowed then deny m ctx ~pc:ctx.pc ~addr (Fault.No_permission perm);
  if Trace.enabled m.tracer then
    trace_authority m ctx ~page ~apl_ok ~cap:!granted;
  if not (page_allows page perm) then
    deny m ctx ~pc:ctx.pc ~addr Fault.Write_to_readonly

(* --- control transfer checks (Sec. 4.1) --- *)

(* Called at fetch whenever the pc lands on a different page than the last
   executed instruction.  [ctx.cur_tag] is still the *source* domain. *)
let check_transfer m ctx target =
  let page = find_page m ~pc:target target in
  if not page.executable then deny m ctx ~pc:target Fault.Exec_violation;
  let new_tag = page.tag in
  if new_tag <> ctx.cur_tag && ctx.cur_tag <> -1 then begin
    let apl_perm = Apl.permission m.apl ~src:ctx.cur_tag ~dst:new_tag in
    let aligned = Layout.is_aligned target Layout.entry_align in
    let best = ref apl_perm in
    let best_cap = ref None in
    for i = 0 to Isa.num_cregs - 1 do
      match ctx.cregs.(i) with
      | Some cap
        when cap_valid m ctx cap
             && Capability.covers cap ~addr:target ~len:Isa.instr_bytes ->
          if Perm.rank cap.perm > Perm.rank !best then begin
            best := cap.perm;
            best_cap := Some cap
          end
      | Some _ | None -> ()
    done;
    (match !best with
    | Perm.Read | Perm.Write | Perm.Owner -> ()
    | Perm.Call ->
        (* Call permission only enters through aligned entry points. *)
        if not aligned then deny m ctx ~pc:target Fault.Not_entry_point
    | Perm.Nil -> deny m ctx ~pc:target (Fault.No_permission Perm.Call));
    (* A crossing carried by an asynchronous capability leaves the same
       audit record as a capability-granted data access. *)
    (if Trace.enabled m.tracer then
       match !best_cap with
       | Some
           {
             Capability.scope =
               Capability.Asynchronous { owner_tag; counter; value };
             _;
           } ->
           Trace.emit m.tracer ~ts:ctx.cost ~cpu:value ~tid:ctx.id
             ~tag:owner_tag ~arg:counter Trace.Cap_use
       | _ -> ());
    if Trace.enabled m.tracer then
      Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:new_tag ~arg:ctx.cur_tag
        Trace.Domain_cross;
    (match m.inject with
    | Some inj ->
        (* Injected cold APL cache: the crossing must still succeed, just
           through the (slow) refill path.  Skipped in strict mode, where
           a miss is a fault by configuration, not a perturbation. *)
        if (not m.strict_apl_cache) && Dipc_sim.Inject.apl_flush inj then
          Apl_cache.reset ctx.apl_cache;
        (* Injected capability-register spill/refill around the crossing:
           the register file must survive a clobber-and-restore cycle,
           charged as kernel time. *)
        (match Dipc_sim.Inject.creg_clobber inj with
        | Some cost ->
            let saved = Array.copy ctx.cregs in
            Array.fill ctx.cregs 0 (Array.length ctx.cregs) None;
            Array.blit saved 0 ctx.cregs 0 (Array.length saved);
            charge_as m ctx Breakdown.Kernel cost
        | None -> ())
    | None -> ());
    (* The instruction pointer now originates from the new domain; its APL
       becomes the active one, via the per-thread APL cache. *)
    let _hw, hit = Apl_cache.ensure ctx.apl_cache new_tag in
    if not hit then begin
      if m.strict_apl_cache then
        Fault.raise_fault ~pc:target (Fault.Apl_cache_miss new_tag)
      else charge_as m ctx Breakdown.Kernel apl_cache_refill_cost
    end
  end
  else if ctx.cur_tag = -1 then ignore (Apl_cache.ensure ctx.apl_cache new_tag);
  ctx.cur_tag <- new_tag;
  ctx.cur_page <- Layout.page_of target;
  ctx.priv <- page.priv_cap

(* Privileged-instruction gate.  On retirement (priv held, or past a
   posture downgrade) the audit record carries the authority in [cpu]:
   1 = the priv_cap bit, 2 = posture override.  Code 0 ("retired with no
   authority") is never emitted — the checker treats it as a violation. *)
let require_priv m ctx =
  if not ctx.priv then deny m ctx ~pc:ctx.pc Fault.Privilege_required;
  if Trace.enabled m.tracer then
    Trace.emit m.tracer ~ts:ctx.cost
      ~cpu:(if ctx.priv then 1 else 2)
      ~tid:ctx.id ~tag:ctx.cur_tag ~arg:ctx.pc Trace.Priv_op

(* --- frame tracking for synchronous capabilities --- *)

let ensure_epochs ctx depth =
  if depth >= Array.length ctx.epochs then begin
    let fresh = Array.make (2 * (depth + 1)) 0 in
    Array.blit ctx.epochs 0 fresh 0 (Array.length ctx.epochs);
    ctx.epochs <- fresh
  end

let enter_frame ctx =
  ctx.depth <- ctx.depth + 1;
  ensure_epochs ctx ctx.depth

let leave_frame ctx ~pc =
  if ctx.depth <= 0 then Fault.raise_fault ~pc (Fault.Software_trap (-1));
  (* Kill every synchronous capability created in the dying frame. *)
  ctx.epochs.(ctx.depth) <- ctx.epochs.(ctx.depth) + 1;
  ctx.depth <- ctx.depth - 1

(* --- register helpers --- *)

let reg ctx r = ctx.regs.(r)

let set_reg ctx r v = ctx.regs.(r) <- v

let creg ctx ~pc c =
  match ctx.cregs.(c) with
  | Some cap -> cap
  | None -> Fault.raise_fault ~pc Fault.Cap_invalid

let valid_creg m ctx ~pc c =
  let cap = creg ctx ~pc c in
  if not (cap_valid m ctx cap) then Fault.raise_fault ~pc Fault.Cap_invalid;
  cap

(* Derive a capability for [base,len) from the current domain's APL: every
   page in the range must be accessible with at least [perm]. *)
let derive_from_apl m ctx ~pc ~base ~len ~perm =
  if len <= 0 then Fault.raise_fault ~pc Fault.Cap_invalid;
  let first = Layout.page_of base and last = Layout.page_of (base + len - 1) in
  for p = first to last do
    let addr = p * Layout.page_size in
    let page = find_page m ~pc addr in
    let granted = Apl.permission m.apl ~src:ctx.cur_tag ~dst:page.tag in
    if not (Perm.includes granted perm) then
      deny m ctx ~pc ~addr (Fault.No_permission perm)
  done;
  {
    Capability.base;
    length = len;
    perm;
    scope =
      Capability.Synchronous
        { thread = ctx.id; depth = ctx.depth; epoch = ctx.epochs.(ctx.depth) };
  }

(* --- the interpreter --- *)

let word = Layout.word_size

(* Execute the body of one already-fetched, already-charged instruction.
   Shared by the reference stepper and the translated-block path; [pc] is
   the instruction's own address (= [ctx.pc] on entry) and [next] its
   fall-through successor. *)
let exec_instr m ctx instr ~pc ~next =
    (match instr with
    | Isa.Nop -> ctx.pc <- next
    | Isa.Halt -> ctx.halted <- true
    | Isa.Trap n -> Fault.raise_fault ~pc (Fault.Software_trap n)
    | Isa.Syscall n -> begin
        if Trace.enabled m.tracer then
          Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag ~arg:n
            Trace.Syscall;
        charge_as m ctx Breakdown.Syscall_entry Costs.syscall_entry_exit;
        charge_as m ctx Breakdown.Dispatch Costs.syscall_dispatch;
        match m.on_syscall with
        | Some handler ->
            handler ctx n;
            ctx.pc <- next
        | None -> Fault.raise_fault ~pc (Fault.Software_trap (1000 + n))
      end
    | Isa.Jmp target -> ctx.pc <- target
    | Isa.Jmpr r -> ctx.pc <- reg ctx r
    | Isa.Call target ->
        let new_sp = reg ctx Isa.sp - word in
        check_data m ctx ~addr:new_sp ~len:word ~perm:Perm.Write;
        Memory.store_word m.mem new_sp next;
        set_reg ctx Isa.sp new_sp;
        enter_frame ctx;
        ctx.pc <- target
    | Isa.Callr r ->
        let target = reg ctx r in
        let new_sp = reg ctx Isa.sp - word in
        check_data m ctx ~addr:new_sp ~len:word ~perm:Perm.Write;
        Memory.store_word m.mem new_sp next;
        set_reg ctx Isa.sp new_sp;
        enter_frame ctx;
        ctx.pc <- target
    | Isa.Ret ->
        let sp_value = reg ctx Isa.sp in
        check_data m ctx ~addr:sp_value ~len:word ~perm:Perm.Read;
        let target = Memory.load_word m.mem sp_value in
        set_reg ctx Isa.sp (sp_value + word);
        (* The return transfer is checked with the *returning* frame's
           rights: a synchronous capability created in this frame (e.g. the
           proxy's return capability, Sec. 5.2.3/P3) must still satisfy the
           check even though the frame dies on return. *)
        check_transfer m ctx target;
        leave_frame ctx ~pc;
        ctx.pc <- target
    | Isa.Beq (a, b, t) -> ctx.pc <- (if reg ctx a = reg ctx b then t else next)
    | Isa.Bne (a, b, t) -> ctx.pc <- (if reg ctx a <> reg ctx b then t else next)
    | Isa.Blt (a, b, t) -> ctx.pc <- (if reg ctx a < reg ctx b then t else next)
    | Isa.Bge (a, b, t) -> ctx.pc <- (if reg ctx a >= reg ctx b then t else next)
    | Isa.Beqz (a, t) -> ctx.pc <- (if reg ctx a = 0 then t else next)
    | Isa.Bnez (a, t) -> ctx.pc <- (if reg ctx a <> 0 then t else next)
    | Isa.Const (r, v) ->
        set_reg ctx r v;
        ctx.pc <- next
    | Isa.Mov (d, s) ->
        set_reg ctx d (reg ctx s);
        ctx.pc <- next
    | Isa.Add (d, a, b) ->
        set_reg ctx d (reg ctx a + reg ctx b);
        ctx.pc <- next
    | Isa.Addi (d, a, i) ->
        set_reg ctx d (reg ctx a + i);
        ctx.pc <- next
    | Isa.Sub (d, a, b) ->
        set_reg ctx d (reg ctx a - reg ctx b);
        ctx.pc <- next
    | Isa.Mul (d, a, b) ->
        set_reg ctx d (reg ctx a * reg ctx b);
        ctx.pc <- next
    | Isa.Shli (d, a, i) ->
        set_reg ctx d (reg ctx a lsl i);
        ctx.pc <- next
    | Isa.Load (d, b, o) ->
        let addr = reg ctx b + o in
        check_data m ctx ~addr ~len:word ~perm:Perm.Read;
        set_reg ctx d (Memory.load_word m.mem addr);
        ctx.pc <- next
    | Isa.Store (b, o, s) ->
        let addr = reg ctx b + o in
        check_data m ctx ~addr ~len:word ~perm:Perm.Write;
        Memory.store_word m.mem addr (reg ctx s);
        ctx.pc <- next
    | Isa.RdTp r ->
        require_priv m ctx;
        set_reg ctx r ctx.tp;
        ctx.pc <- next
    | Isa.RdDepth r ->
        require_priv m ctx;
        set_reg ctx r ctx.depth;
        ctx.pc <- next
    | Isa.WrFsBase r ->
        ctx.fsbase <- reg ctx r;
        ctx.pc <- next
    | Isa.RdFsBase r ->
        set_reg ctx r ctx.fsbase;
        ctx.pc <- next
    | Isa.GetHwTag (d, s) -> begin
        require_priv m ctx;
        match Apl_cache.lookup ctx.apl_cache (reg ctx s) with
        | Some hw ->
            set_reg ctx d hw;
            ctx.pc <- next
        | None ->
            if m.strict_apl_cache then
              Fault.raise_fault ~pc (Fault.Apl_cache_miss (reg ctx s))
            else begin
              charge_as m ctx Breakdown.Kernel apl_cache_refill_cost;
              set_reg ctx d (Apl_cache.install ctx.apl_cache (reg ctx s));
              ctx.pc <- next
            end
      end
    | Isa.CapAplDerive (c, rb, rl, perm) ->
        let cap =
          derive_from_apl m ctx ~pc ~base:(reg ctx rb) ~len:(reg ctx rl) ~perm
        in
        ctx.cregs.(c) <- Some cap;
        ctx.pc <- next
    | Isa.CapRestrict (cd, cs, rb, rl, perm) -> begin
        let src = valid_creg m ctx ~pc cs in
        match
          Capability.restrict src ~base:(reg ctx rb) ~length:(reg ctx rl) ~perm
        with
        | Ok cap ->
            ctx.cregs.(cd) <- Some cap;
            ctx.pc <- next
        | Error _ -> Fault.raise_fault ~pc Fault.Cap_invalid
      end
    | Isa.CapAsync (cd, cs, rctr) ->
        let src = valid_creg m ctx ~pc cs in
        let counter = reg ctx rctr in
        let value =
          Capability.Revocation.value m.revocation ~tag:ctx.cur_tag ~counter
        in
        ctx.cregs.(cd) <-
          Some
            {
              src with
              scope = Capability.Asynchronous { owner_tag = ctx.cur_tag; counter; value };
            };
        ctx.pc <- next
    | Isa.CapRevoke rctr ->
        let counter = reg ctx rctr in
        Capability.Revocation.revoke m.revocation ~tag:ctx.cur_tag ~counter;
        if Trace.enabled m.tracer then
          Trace.emit m.tracer ~ts:ctx.cost
            ~cpu:(Capability.Revocation.value m.revocation ~tag:ctx.cur_tag ~counter)
            ~tid:ctx.id ~tag:ctx.cur_tag ~arg:counter Trace.Cap_revoke;
        ctx.pc <- next
    | Isa.CapClear c ->
        ctx.cregs.(c) <- None;
        ctx.pc <- next
    | Isa.CapPush c ->
        Dcs.push ctx.dcs ~pc (valid_creg m ctx ~pc c);
        if Trace.enabled m.tracer then
          Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag
            ~arg:(Dcs.depth ctx.dcs) Trace.Dcs_push;
        ctx.pc <- next
    | Isa.CapPop c ->
        ctx.cregs.(c) <- Some (Dcs.pop ctx.dcs ~pc);
        if Trace.enabled m.tracer then
          Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag
            ~arg:(Dcs.depth ctx.dcs) Trace.Dcs_pop;
        ctx.pc <- next
    | Isa.CapLoad (c, rb, o) -> begin
        let addr = reg ctx rb + o in
        check_cap_page m ctx ~addr ~perm:Perm.Read;
        match Memory.load_cap m.mem addr with
        | Some cap ->
            ctx.cregs.(c) <- Some cap;
            ctx.pc <- next
        | None -> Fault.raise_fault ~pc ~addr Fault.Cap_invalid
      end
    | Isa.CapStore (rb, o, c) ->
        let addr = reg ctx rb + o in
        check_cap_page m ctx ~addr ~perm:Perm.Write;
        Memory.store_cap m.mem addr (valid_creg m ctx ~pc c);
        ctx.pc <- next
    | Isa.DcsGetTop r ->
        set_reg ctx r (Dcs.depth ctx.dcs);
        ctx.pc <- next
    | Isa.DcsGetBase r ->
        require_priv m ctx;
        set_reg ctx r (Dcs.base ctx.dcs);
        ctx.pc <- next
    | Isa.DcsSetBase r ->
        require_priv m ctx;
        Dcs.set_base ctx.dcs ~pc (reg ctx r);
        ctx.pc <- next
    | Isa.DcsSwitch r ->
        require_priv m ctx;
        ctx.dcs_saved <- Dcs.switch ctx.dcs ~pc ~args:(reg ctx r) :: ctx.dcs_saved;
        if Trace.enabled m.tracer then
          Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag
            ~arg:(Dcs.depth ctx.dcs) Trace.Dcs_adjust;
        ctx.pc <- next
    | Isa.DcsRestore r -> begin
        require_priv m ctx;
        match ctx.dcs_saved with
        | saved :: rest ->
            Dcs.restore ctx.dcs ~pc ~rets:(reg ctx r) saved;
            ctx.dcs_saved <- rest;
            if Trace.enabled m.tracer then
              Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag
                ~arg:(Dcs.depth ctx.dcs) Trace.Dcs_adjust;
            ctx.pc <- next
        | [] -> Fault.raise_fault ~pc (Fault.Dcs_bounds "no saved DCS to restore")
      end)

let step_unlogged m ctx =
  if ctx.halted then `Halted
  else begin
    let pc = ctx.pc in
    if Layout.page_of pc <> ctx.cur_page then check_transfer m ctx pc;
    let instr =
      match Memory.fetch m.mem pc with
      | Some i -> i
      | None -> Fault.raise_fault ~pc Fault.Bad_instruction
    in
    ctx.instret <- ctx.instret + 1;
    charge m ctx (Isa.cost instr);
    exec_instr m ctx instr ~pc ~next:(pc + Isa.instr_bytes);
    if ctx.halted then `Halted else `Running
  end

let step m ctx =
  try step_unlogged m ctx
  with Fault.Fault f as exn ->
    if Trace.enabled m.tracer then
      Trace.emit m.tracer ~ts:ctx.cost ~tid:ctx.id ~tag:ctx.cur_tag
        ~arg:f.Fault.pc Trace.Fault;
    raise exn

(* --- translated-block dispatch --- *)

(* A terminator ends a basic block: anything that can leave the
   straight-line pc+4 successor chain (or stop execution).  Terminators
   always execute through the reference stepper. *)
let is_terminator = function
  | Isa.Halt | Isa.Trap _ | Isa.Syscall _ | Isa.Jmp _ | Isa.Jmpr _
  | Isa.Call _ | Isa.Callr _ | Isa.Ret | Isa.Beq _ | Isa.Bne _ | Isa.Blt _
  | Isa.Bge _ | Isa.Beqz _ | Isa.Bnez _ ->
      true
  | _ -> false

(* Decode the maximal straight-line run starting at [pc]: same page,
   every slot fetchable, no terminators.  Pure reads — [Memory.fetch] is
   exactly what the reference stepper performs per instruction, so a
   translated body replays the same decode results. *)
let translate m ctx pc =
  let page0 = Layout.page_of pc in
  let rev = ref [] in
  let n = ref 0 in
  let p = ref pc in
  let stop = ref false in
  while not !stop do
    if Layout.page_of !p <> page0 then stop := true
    else
      match Memory.fetch m.mem !p with
      | Some i when not (is_terminator i) ->
          rev := i :: !rev;
          incr n;
          p := !p + Isa.instr_bytes
      | Some _ | None -> stop := true
  done;
  let instrs = Array.of_list (List.rev !rev) in
  {
    b_pc = pc;
    b_tag = ctx.cur_tag;
    b_priv = ctx.priv;
    b_len = !n;
    b_instrs = instrs;
    b_costs = Array.map Isa.cost instrs;
    b_code_gen = Memory.code_generation m.mem;
    b_pt_gen = Page_table.generation m.page_table;
    b_apl_gen = Apl.generation m.apl;
    b_aplc_gen = Apl_cache.generation ctx.apl_cache;
  }

let find_block m ctx pc =
  match Hashtbl.find_opt ctx.blocks pc with
  | Some b
    when b.b_pc = pc && b.b_tag = ctx.cur_tag && b.b_priv = ctx.priv
         && b.b_code_gen = Memory.code_generation m.mem
         && b.b_pt_gen = Page_table.generation m.page_table
         && b.b_apl_gen = Apl.generation m.apl
         && b.b_aplc_gen = Apl_cache.generation ctx.apl_cache ->
      b
  | _ ->
      let b = translate m ctx pc in
      Hashtbl.replace ctx.blocks pc b;
      b

(* --- superblock dispatch (direct-threaded trace compiler) --- *)

(* Compile one body instruction to a pre-specialized closure: operands,
   own pc and fall-through successor are captured at translation time,
   so the hot constructors pay no dispatch at all.  Each closure is an
   exact transcription of the matching [exec_instr] arm — same check
   order, same [ctx.pc] discipline (still the instruction's own address
   while its checks run, advanced to [next] last), so faults carry the
   same pc and denials replay identically.  Rare constructors fall back
   to [exec_instr]. *)
let compile_instr m instr ~pc ~next =
  match instr with
  | Isa.Nop -> fun ctx -> ctx.pc <- next
  | Isa.Const (r, v) ->
      fun ctx ->
        ctx.regs.(r) <- v;
        ctx.pc <- next
  | Isa.Mov (d, s) ->
      fun ctx ->
        ctx.regs.(d) <- ctx.regs.(s);
        ctx.pc <- next
  | Isa.Add (d, a, b) ->
      fun ctx ->
        ctx.regs.(d) <- ctx.regs.(a) + ctx.regs.(b);
        ctx.pc <- next
  | Isa.Addi (d, a, i) ->
      fun ctx ->
        ctx.regs.(d) <- ctx.regs.(a) + i;
        ctx.pc <- next
  | Isa.Sub (d, a, b) ->
      fun ctx ->
        ctx.regs.(d) <- ctx.regs.(a) - ctx.regs.(b);
        ctx.pc <- next
  | Isa.Mul (d, a, b) ->
      fun ctx ->
        ctx.regs.(d) <- ctx.regs.(a) * ctx.regs.(b);
        ctx.pc <- next
  | Isa.Shli (d, a, i) ->
      fun ctx ->
        ctx.regs.(d) <- ctx.regs.(a) lsl i;
        ctx.pc <- next
  | Isa.Load (d, b, o) ->
      fun ctx ->
        let addr = ctx.regs.(b) + o in
        check_data m ctx ~addr ~len:word ~perm:Perm.Read;
        ctx.regs.(d) <- Memory.load_word m.mem addr;
        ctx.pc <- next
  | Isa.Store (b, o, s) ->
      fun ctx ->
        let addr = ctx.regs.(b) + o in
        check_data m ctx ~addr ~len:word ~perm:Perm.Write;
        Memory.store_word m.mem addr ctx.regs.(s);
        ctx.pc <- next
  | Isa.WrFsBase r ->
      fun ctx ->
        ctx.fsbase <- ctx.regs.(r);
        ctx.pc <- next
  | Isa.RdFsBase r ->
      fun ctx ->
        ctx.regs.(r) <- ctx.fsbase;
        ctx.pc <- next
  | _ -> fun ctx -> exec_instr m ctx instr ~pc ~next

(* Chained terminators get the same treatment: branches and direct
   jumps compile to a pc assignment (the junction then compares the
   actual pc against the speculation); [Call] and anything else fall
   back to [exec_instr]. *)
let compile_term m instr ~pc ~next =
  match instr with
  | Isa.Jmp t -> fun ctx -> ctx.pc <- t
  | Isa.Beq (a, b, t) ->
      fun ctx -> ctx.pc <- (if ctx.regs.(a) = ctx.regs.(b) then t else next)
  | Isa.Bne (a, b, t) ->
      fun ctx -> ctx.pc <- (if ctx.regs.(a) <> ctx.regs.(b) then t else next)
  | Isa.Blt (a, b, t) ->
      fun ctx -> ctx.pc <- (if ctx.regs.(a) < ctx.regs.(b) then t else next)
  | Isa.Bge (a, b, t) ->
      fun ctx -> ctx.pc <- (if ctx.regs.(a) >= ctx.regs.(b) then t else next)
  | Isa.Beqz (a, t) ->
      fun ctx -> ctx.pc <- (if ctx.regs.(a) = 0 then t else next)
  | Isa.Bnez (a, t) ->
      fun ctx -> ctx.pc <- (if ctx.regs.(a) <> 0 then t else next)
  | _ -> fun ctx -> exec_instr m ctx instr ~pc ~next

let term_nop (_ : ctx) = ()

(* The speculated successor of a chainable terminator at [pc], or None
   for the unchainable ones (indirect targets, Syscall/Trap/Halt/Ret).
   Conditional branches speculate backward-taken / forward-fall-through
   — loops chain onto themselves, forward guards chain onto the common
   path, and the other arm side-exits at run time. *)
let chain_target ~pc = function
  | Isa.Jmp t | Isa.Call t -> Some t
  | Isa.Beq (_, _, t)
  | Isa.Bne (_, _, t)
  | Isa.Blt (_, _, t)
  | Isa.Bge (_, _, t) ->
      Some (if t <= pc then t else pc + Isa.instr_bytes)
  | Isa.Beqz (_, t) | Isa.Bnez (_, t) ->
      Some (if t <= pc then t else pc + Isa.instr_bytes)
  | _ -> None

let max_superblock_units = 32

(* Translate the superblock entered at [pc] under domain view
   [tag]/[priv]: follow the speculated chain — body, chained
   terminator, successor — until it reaches an unchainable terminator,
   an unmapped/non-executable successor, a pc already in this
   superblock (closing a loop), or the unit limit.  Pure reads plus
   closure construction: [Memory.fetch] and [Page_table.find] are what
   the reference path performs anyway, so translation is invisible to
   digests.  Successor domain views are read from the page table here
   and re-checked at the junction at run time (pages mutate in place).

   Dynamic transfers (Ret, Jmpr, Callr) are chained as terminators with
   a [Dyn_ret]/[Dyn_ic] junction; with prediction on, every Call/Callr
   additionally enqueues its return continuation as a secondary chain
   seed so the matching Ret has a unit to land on.  Seeds are processed
   FIFO after the primary chain ends, under the same unit budget — the
   primary chain is therefore built exactly as before, and a
   continuation that does not fit simply leaves [u_cont_idx] at -1 (the
   Ret then mispredicts to the dispatcher, never executes wrong
   code). *)
let translate_superblock m ~pc ~tag ~priv =
  let predict = m.ras in
  let units = ref [] in
  let count = ref 0 in
  let index = Hashtbl.create 8 in
  let conts = Queue.create () in
  let rec next_seed () =
    match Queue.take_opt conts with
    | None -> None
    | Some ((spc, _, _) as seed) ->
        if Hashtbl.mem index spc || !count >= max_superblock_units then
          next_seed ()
        else Some seed
  in
  let cur = ref (Some (pc, tag, priv)) in
  while !cur <> None do
    let upc, utag, upriv =
      match !cur with Some c -> c | None -> assert false
    in
    Hashtbl.replace index upc !count;
    (* straight-line body: same decode rule as [translate] *)
    let page0 = Layout.page_of upc in
    let rev = ref [] in
    let n = ref 0 in
    let p = ref upc in
    let stop = ref false in
    while not !stop do
      if Layout.page_of !p <> page0 then stop := true
      else
        match Memory.fetch m.mem !p with
        | Some i when not (is_terminator i) ->
            rev := i :: !rev;
            incr n;
            p := !p + Isa.instr_bytes
        | Some _ | None -> stop := true
    done;
    let instrs = Array.of_list (List.rev !rev) in
    let term_pc = !p in
    let term, succ, dyn =
      if Layout.page_of term_pc <> page0 then
        (* the body ran off the page end: a fall-through junction — no
           terminator, the successor is the next page's first slot *)
        (None, Some term_pc, Dyn_none)
      else
        match Memory.fetch m.mem term_pc with
        | None -> (None, None, Dyn_none)
        | Some i -> (
            match chain_target ~pc:term_pc i with
            | Some t -> (Some i, Some t, Dyn_none)
            | None -> (
                match i with
                | Isa.Ret -> (Some i, None, Dyn_ret)
                | Isa.Jmpr _ | Isa.Callr _ ->
                    (Some i, None, Dyn_ic { ic_pc = -1; ic_sb = None })
                | _ -> (None, None, Dyn_none)))
    in
    (* A call's return continuation becomes a secondary seed: translated
       under the *caller's* view, which is exactly the view a Ret lands
       back in — the RAS junction re-validates the landing unit's
       (tag, priv) against the live state before chaining, so even a
       retagged continuation can never run stale. *)
    (if predict then
       match term with
       | Some (Isa.Call _ | Isa.Callr _) -> (
           let cpc = term_pc + Isa.instr_bytes in
           if Layout.page_of cpc = page0 then Queue.add (cpc, utag, upriv) conts
           else
             match Page_table.find m.page_table cpc with
             | Some page when page.Page_table.executable ->
                 Queue.add
                   (cpc, page.Page_table.tag, page.Page_table.priv_cap)
                   conts
             | Some _ | None -> ())
       | _ -> ());
    let u_next, u_next_idx, continue_at =
      match succ with
      | None -> (-1, -1, None)
      | Some next_pc -> (
          match Hashtbl.find_opt index next_pc with
          | Some idx -> (next_pc, idx, None) (* loop closed *)
          | None ->
              if !count + 1 >= max_superblock_units then (-1, -1, None)
              else (
                match Page_table.find m.page_table next_pc with
                | Some page when page.Page_table.executable ->
                    let ntag, npriv =
                      if Layout.page_of next_pc = page0 then (utag, upriv)
                      else (page.Page_table.tag, page.Page_table.priv_cap)
                    in
                    (next_pc, !count + 1, Some (next_pc, ntag, npriv))
                | Some _ | None -> (-1, -1, None)))
    in
    let u =
      {
        u_pc = upc;
        u_tag = utag;
        u_priv = upriv;
        u_len = !n;
        u_code =
          Array.mapi
            (fun i instr ->
              let ipc = upc + (i * Isa.instr_bytes) in
              compile_instr m instr ~pc:ipc ~next:(ipc + Isa.instr_bytes))
            instrs;
        u_costs = Array.map Isa.cost instrs;
        u_term = term;
        u_term_code =
          (match term with
          | Some i ->
              compile_term m i ~pc:term_pc ~next:(term_pc + Isa.instr_bytes)
          | None -> term_nop);
        u_term_pc = term_pc;
        u_term_cost = (match term with Some i -> Isa.cost i | None -> 0.);
        u_next;
        u_next_idx;
        u_dyn = dyn;
        u_cont_idx = -1;
      }
    in
    units := u :: !units;
    incr count;
    cur := (match continue_at with Some _ as c -> c | None -> next_seed ())
  done;
  let s_units = Array.of_list (List.rev !units) in
  (* Resolve call continuations now that every unit exists: a seed may
     have closed onto a unit the primary chain already built, or been
     dropped by the budget (u_cont_idx stays -1). *)
  if predict then
    Array.iter
      (fun u ->
        match u.u_term with
        | Some (Isa.Call _ | Isa.Callr _) -> (
            match Hashtbl.find_opt index (u.u_term_pc + Isa.instr_bytes) with
            | Some i -> u.u_cont_idx <- i
            | None -> ())
        | _ -> ())
      s_units;
  {
    s_pc = pc;
    s_tag = tag;
    s_priv = priv;
    s_units;
    s_code_gen = Memory.code_generation m.mem;
    s_pt_gen = Page_table.generation m.page_table;
    s_apl_gen = Apl.generation m.apl;
  }

(* Generation validity shared by the dispatcher probe, the RAS pop and
   the inline-cache consult: stale means some code placement, table
   change or APL mutation happened after translation. *)
let sb_live m sb =
  sb.s_code_gen = Memory.code_generation m.mem
  && sb.s_pt_gen = Page_table.generation m.page_table
  && sb.s_apl_gen = Apl.generation m.apl

let find_superblock m ctx pc =
  match Hashtbl.find_opt m.sblocks pc with
  | Some sb when sb.s_tag = ctx.cur_tag && sb.s_priv = ctx.priv && sb_live m sb
    ->
      m.ctr_sb_hits <- m.ctr_sb_hits + 1;
      sb
  | _ ->
      let sb = translate_superblock m ~pc ~tag:ctx.cur_tag ~priv:ctx.priv in
      m.ctr_sb_translations <- m.ctr_sb_translations + 1;
      Hashtbl.replace m.sblocks pc sb;
      sb

(* Push one predicted return continuation.  Overflow silently drops the
   oldest entry — the corresponding outermost Ret will mispredict to
   the dispatcher, which is always safe. *)
let ras_push m ~cont_pc ~sb ~uidx =
  let slot = m.ras_top in
  m.ras_pc.(slot) <- cont_pc;
  m.ras_sb.(slot) <- sb;
  m.ras_uidx.(slot) <- uidx;
  m.ras_top <- (slot + 1) land (ras_capacity - 1);
  if m.ras_len < ras_capacity then m.ras_len <- m.ras_len + 1

(* Execute a superblock from its entry unit until a planned chain end, a
   side exit, fuel exhaustion or a halt.  The caller (the dispatcher in
   [run]) guarantees [!remaining >= 1], [ctx] not halted, [ctx.pc =
   sb.s_pc] and the transfer check for the entry already performed.

   Charge order replays the reference interpreter exactly: per
   instruction one [instret] bump, one [cost +. c] and one Breakdown
   cell add — same floats, same sequence — then the effect closure.
   The attribution category is re-resolved per unit entry (attr_of_tag
   is mutable machine state), exactly as the PR 5 block path hoists it
   per block execution.

   The junction protocol after a unit's terminator (or fall-through):
   stop on a planned end; stop (side exit) when the actual [ctx.pc]
   differs from the speculated successor; stop *before* the successor's
   transfer check when fuel is exhausted — the reference loop raises
   Out_of_fuel before performing the next fetch's checks, so running
   the transfer check (a posture fault, an APL-cache refill charge)
   with zero budget would diverge; otherwise run [check_transfer] (the
   exact reference crossing: faults, refill charges, injector-free by
   [block_path_ok]) and re-check the translated tag/priv view — a
   mismatch (in-place retag/reprotection) side-exits to the dispatcher,
   which retranslates under the live view.

   Dynamic junctions (PR 10) follow the same discipline but may hop
   *across* superblocks, so the current unit array is a reference:

   - [Dyn_ret]: the Ret's own closure already performed the reference
     transfer check (with the returning frame's rights), so the
     junction only decides where to continue.  Pop the RAS; chain iff
     the predicted pc equals the live [ctx.pc], the predicted
     superblock's generations are live, and the landing unit's
     translated tag/priv match the live view.  Ordinary cross-domain
     returns (callee tag back to caller tag) chain like same-domain
     ones — the attribution category is re-resolved when the tag moved
     across the Ret.  Anything else is a counted miss + side exit; the
     dIPC cross-crossing unwind never reaches here at all (it runs
     through [force_transfer] under Syscall/Trap, which are never
     chained).

   - [Dyn_ic]: Jmpr/Callr closures only set [ctx.pc]; the transfer
     check is the next fetch's job.  On an inline-cache re-match, run
     [check_transfer] at the exact reference position (page change
     only), then chain into the cached superblock iff it matches the
     live tag/priv view at a live generation (refilling the cache from
     the machine-wide table when the cached pointer went stale).  On a
     target change, rebias the cache and fall back to dispatch.

   Nothing inside a superblock can invalidate the *units being run*
   mid-flight: Syscall and Trap (the only instructions that reach
   foreign code) are never chained, and data stores cannot touch the
   separate code store — so generation counters are checked at entry
   and at every cross-superblock hop, not per static junction. *)
let exec_superblock m ctx sb0 remaining =
  let units = ref sb0.s_units in
  let cur_sb = ref sb0 in
  let idx = ref 0 in
  (* Nothing that runs inside a superblock can move a generation counter
     (Syscall/Trap are never chained; data stores cannot touch the code
     store or the tables), so snapshot all three once and make the
     per-junction liveness test three local compares instead of three
     calls through [sb_live]. *)
  let g_code = Memory.code_generation m.mem in
  let g_pt = Page_table.generation m.page_table in
  let g_apl = Apl.generation m.apl in
  (* The attribution category is a function of [cur_tag] and the
     (mutable) [attr_of_tag] — both can only change across a junction
     transfer check while a superblock runs (syscalls are never
     chained), so resolve once here and again only after a crossing.
     A self-looping unit therefore charges a whole hot loop without a
     single closure re-resolution. *)
  let cat_i = ref (Breakdown.category_index (m.attr_of_tag ctx.cur_tag)) in
  let continue_ = ref true in
  while !continue_ do
    let u = Array.unsafe_get !units !idx in
    m.ctr_block_entries <- m.ctr_block_entries + 1;
    let k = if u.u_len < !remaining then u.u_len else !remaining in
    remaining := !remaining - k;
    let ci = !cat_i in
    let costs = u.u_costs and code = u.u_code in
    for i = 0 to k - 1 do
      ctx.instret <- ctx.instret + 1;
      let c = Array.unsafe_get costs i in
      ctx.cost <- ctx.cost +. c;
      Breakdown.charge_idx ctx.breakdown ci c;
      (Array.unsafe_get code i) ctx
    done;
    if k < u.u_len then continue_ := false (* out of fuel mid-body *)
    else begin
      (* Snapshot the domain before the terminator: a Ret that crossed
         domains must re-resolve the attribution category on a RAS
         hit. *)
      let tag0 = ctx.cur_tag in
      (match u.u_term with
      | Some _ ->
          if !remaining <= 0 then continue_ := false
          else begin
            decr remaining;
            ctx.instret <- ctx.instret + 1;
            let c = u.u_term_cost in
            ctx.cost <- ctx.cost +. c;
            Breakdown.charge_idx ctx.breakdown ci c;
            u.u_term_code ctx;
            (* A call that completed predicts its return. *)
            if u.u_cont_idx >= 0 then
              ras_push m
                ~cont_pc:(u.u_term_pc + Isa.instr_bytes)
                ~sb:!cur_sb ~uidx:u.u_cont_idx
          end
      | None -> ());
      if !continue_ then begin
        match u.u_dyn with
        | Dyn_none ->
            if u.u_next_idx < 0 || ctx.halted then continue_ := false
            else if ctx.pc <> u.u_next then begin
              m.ctr_side_exits <- m.ctr_side_exits + 1;
              continue_ := false
            end
            else if !remaining <= 0 then continue_ := false
            else begin
              let v = Array.unsafe_get !units u.u_next_idx in
              if Layout.page_of ctx.pc <> ctx.cur_page then begin
                check_transfer m ctx ctx.pc;
                if ctx.cur_tag <> v.u_tag || ctx.priv <> v.u_priv then begin
                  m.ctr_side_exits <- m.ctr_side_exits + 1;
                  continue_ := false
                end
                else begin
                  cat_i := Breakdown.category_index (m.attr_of_tag ctx.cur_tag);
                  idx := u.u_next_idx
                end
              end
              else if ctx.cur_tag <> v.u_tag || ctx.priv <> v.u_priv then begin
                m.ctr_side_exits <- m.ctr_side_exits + 1;
                continue_ := false
              end
              else idx := u.u_next_idx
            end
        | Dyn_ret ->
            if ctx.halted then continue_ := false
            else if !remaining <= 0 then continue_ := false
            else begin
              let hit = ref false in
              if m.ras && m.ras_len > 0 then begin
                (* the Ret consumes its entry whether or not it
                   predicts — ordinary stack discipline *)
                m.ras_len <- m.ras_len - 1;
                m.ras_top <- (m.ras_top + ras_capacity - 1)
                             land (ras_capacity - 1);
                let slot = m.ras_top in
                (* A consumed slot is left in place rather than cleared:
                   [ras_len] gates every read, so a dead entry is only
                   ever seen again after a fresh push overwrites it, and
                   skipping the clear keeps a pointer-array store (and
                   its write barrier) off the hit path.  An empty slot
                   holds [ras_dummy], whose -1 generations fail this
                   guard before [s_units] is touched. *)
                let psb = Array.unsafe_get m.ras_sb slot in
                if m.ras_pc.(slot) = ctx.pc
                   && psb.s_code_gen = g_code && psb.s_pt_gen = g_pt
                   && psb.s_apl_gen = g_apl
                then begin
                  let v = Array.unsafe_get psb.s_units m.ras_uidx.(slot) in
                  if ctx.cur_tag = v.u_tag && ctx.priv = v.u_priv then begin
                    hit := true;
                    (* a cross-domain return (callee tag /= caller
                       tag) chains too — its closure already ran the
                       reference transfer check — but the attribution
                       category must follow the domain *)
                    if ctx.cur_tag <> tag0 then
                      cat_i :=
                        Breakdown.category_index (m.attr_of_tag ctx.cur_tag);
                    cur_sb := psb;
                    units := psb.s_units;
                    idx := m.ras_uidx.(slot)
                  end
                end
              end;
              if !hit then m.ctr_ras_hits <- m.ctr_ras_hits + 1
              else begin
                m.ctr_ras_misses <- m.ctr_ras_misses + 1;
                m.ctr_side_exits <- m.ctr_side_exits + 1;
                continue_ := false
              end
            end
        | Dyn_ic cell ->
            if ctx.halted then continue_ := false
            else if !remaining <= 0 then continue_ := false
            else begin
              let target = ctx.pc in
              if m.ras && cell.ic_pc = target then begin
                (* monomorphic re-match: the reference transfer check
                   runs here, in the exact position the dispatcher
                   would run it (page change only) *)
                if Layout.page_of target <> ctx.cur_page then
                  check_transfer m ctx target;
                (* The warm-cache validity test is written out at both
                   consult sites (rather than as a shared closure) to
                   keep the hit path allocation-free; an indirect
                   transfer that stayed in the domain also keeps its
                   attribution category without re-resolving. *)
                match cell.ic_sb with
                | Some sb
                  when sb.s_tag = ctx.cur_tag && sb.s_priv = ctx.priv
                       && sb.s_code_gen = g_code && sb.s_pt_gen = g_pt
                       && sb.s_apl_gen = g_apl ->
                    m.ctr_ic_hits <- m.ctr_ic_hits + 1;
                    if ctx.cur_tag <> tag0 then
                      cat_i :=
                        Breakdown.category_index (m.attr_of_tag ctx.cur_tag);
                    cur_sb := sb;
                    units := sb.s_units;
                    idx := 0
                | _ -> (
                    (* stale or cold pointer: refill from the
                       machine-wide table without disturbing the
                       dispatcher-probe counter *)
                    match Hashtbl.find_opt m.sblocks target with
                    | Some sb
                      when sb.s_tag = ctx.cur_tag && sb.s_priv = ctx.priv
                           && sb.s_code_gen = g_code && sb.s_pt_gen = g_pt
                           && sb.s_apl_gen = g_apl ->
                        cell.ic_sb <- Some sb;
                        m.ctr_ic_hits <- m.ctr_ic_hits + 1;
                        if ctx.cur_tag <> tag0 then
                          cat_i :=
                            Breakdown.category_index
                              (m.attr_of_tag ctx.cur_tag);
                        cur_sb := sb;
                        units := sb.s_units;
                        idx := 0
                    | Some _ | None ->
                        m.ctr_ic_misses <- m.ctr_ic_misses + 1;
                        m.ctr_side_exits <- m.ctr_side_exits + 1;
                        continue_ := false)
              end
              else begin
                (* polymorphic (or cold) site: rebias and dispatch *)
                if m.ras then begin
                  cell.ic_pc <- target;
                  cell.ic_sb <- None
                end;
                m.ctr_ic_misses <- m.ctr_ic_misses + 1;
                m.ctr_side_exits <- m.ctr_side_exits + 1;
                continue_ := false
              end
            end
      end
    end
  done

(* Warm the superblock cache for an entry point before any thread runs
   it — called at proxy/template generation time so the first dIPC
   crossing dispatches into already-compiled code.  A no-op unless both
   fast paths are enabled, or when [pc] is unmapped/non-executable.
   The warm entry stays valid only until the next code placement or
   table change bumps a generation (callers should pretranslate after
   their last [place_code]); a stale entry merely retranslates. *)
let pretranslate m ~pc =
  if m.block_cache && m.superblocks then
    match Page_table.find m.page_table pc with
    | Some page when page.Page_table.executable ->
        let sb =
          translate_superblock m ~pc ~tag:page.Page_table.tag
            ~priv:page.Page_table.priv_cap
        in
        m.ctr_sb_translations <- m.ctr_sb_translations + 1;
        Hashtbl.replace m.sblocks pc sb
    | Some _ | None -> ()

(* The fast path is only observably identical to the reference stepper
   when nothing watches individual steps: tracing emits per-instruction
   Charge events (timestamps interleave with crossing events) and an
   injector perturbs crossings, so either disables block dispatch. *)
let block_path_ok m =
  m.block_cache
  && (not (Trace.enabled m.tracer))
  && match m.inject with None -> true | Some _ -> false

let run ?(fuel = 10_000_000) m ctx =
  let remaining = ref fuel in
  let running = ref true in
  while !running do
    if !remaining <= 0 then raise Out_of_fuel;
    if block_path_ok m then
      if ctx.halted then begin
        decr remaining;
        running := false
      end
      else if m.superblocks then begin
        let pc = ctx.pc in
        if Layout.page_of pc <> ctx.cur_page then check_transfer m ctx pc;
        let sb = find_superblock m ctx pc in
        let u0 = Array.unsafe_get sb.s_units 0 in
        if u0.u_len = 0 && u0.u_term = None then begin
          (* Unchainable terminator (Syscall/Trap/Halt) or unfetchable
             slot at the entry: one reference step (the transfer check
             above already ran, [step_unlogged] will not repeat it).
             Ret/Jmpr/Callr entries are chained terminators and run
             through [exec_superblock] like any other unit. *)
          decr remaining;
          match step_unlogged m ctx with
          | `Halted -> running := false
          | `Running -> ()
        end
        else exec_superblock m ctx sb remaining
      end
      else begin
        (* PR 5 one-block-at-a-time dispatch, kept verbatim: the
           --no-superblocks triage path. *)
        let pc = ctx.pc in
        if Layout.page_of pc <> ctx.cur_page then check_transfer m ctx pc;
        let b = find_block m ctx pc in
        if b.b_len = 0 then begin
          (* Terminator or unfetchable slot: one reference step.  The
             page/transfer check above already ran, so [step_unlogged]
             will not repeat it. *)
          decr remaining;
          match step_unlogged m ctx with
          | `Halted -> running := false
          | `Running -> ()
        end
        else begin
          (* Execute the block body (truncated to the remaining fuel so
             an Out_of_fuel raise lands on the same instruction boundary
             as the reference loop).  Body instructions never change
             [cur_tag]/[cur_page]/[priv]/[halted] — terminators are
             excluded — so the per-instruction transfer check and the
             attribution category are loop invariants.  Charges replay
             the reference order exactly: one [cost +. c] and one
             Breakdown cell add per instruction, same floats, same
             sequence (float summation order is observable in Breakdown
             totals). *)
          m.ctr_block_entries <- m.ctr_block_entries + 1;
          let k = if b.b_len < !remaining then b.b_len else !remaining in
          remaining := !remaining - k;
          let cat_i = Breakdown.category_index (m.attr_of_tag ctx.cur_tag) in
          let instrs = b.b_instrs and costs = b.b_costs in
          for i = 0 to k - 1 do
            let pc = ctx.pc in
            ctx.instret <- ctx.instret + 1;
            let c = Array.unsafe_get costs i in
            ctx.cost <- ctx.cost +. c;
            Breakdown.charge_idx ctx.breakdown cat_i c;
            exec_instr m ctx
              (Array.unsafe_get instrs i)
              ~pc ~next:(pc + Isa.instr_bytes)
          done
        end
      end
    else begin
      decr remaining;
      (* Reference path.  When the tracer is off, [step]'s try/with
         exists only to emit a Fault event nobody would see — skip the
         handler installation per step and let faults propagate raw. *)
      let r =
        if Trace.enabled m.tracer then step m ctx else step_unlogged m ctx
      in
      match r with `Halted -> running := false | `Running -> ()
    end
  done

(* --- conveniences used by the OS layer and tests --- *)

(* Kernel-privilege control transfer: used when the OS redirects a thread
   (fault unwinding, Sec. 5.2.1) — no APL checks apply, the kernel is the
   most privileged agent in the system. *)
let force_transfer m ctx ~target =
  let page = find_page m ~pc:target target in
  ctx.pc <- target;
  ctx.cur_tag <- page.tag;
  ctx.cur_page <- Layout.page_of target;
  ctx.priv <- page.priv_cap;
  ctx.halted <- false;
  ignore (Apl_cache.ensure ctx.apl_cache page.tag)

(* Kernel-privilege frame adjustment for unwinding: drop to [depth],
   invalidating every synchronous capability created in the dropped
   frames. *)
let force_unwind_depth ctx ~depth =
  if depth < 0 || depth > ctx.depth then invalid_arg "force_unwind_depth";
  for d = depth + 1 to ctx.depth do
    ctx.epochs.(d) <- ctx.epochs.(d) + 1
  done;
  ctx.depth <- depth

(* Write a buffer of words into memory without protection checks (loader /
   DMA path). *)
let poke_words m ~addr words =
  Array.iteri (fun i v -> Memory.store_word m.mem (addr + (i * word)) v) words

let peek_word m ~addr = Memory.load_word m.mem addr
