(** Functional miniature of CHERI's domain crossing (the Table 1
    comparison point): sealed capability pairs, CCall/CReturn through
    exceptions, and a trusted stack. *)

type perm = Exec | Data

type cap = { c_base : int; c_len : int; c_perm : perm; c_sealed : int option }

val cap : base:int -> len:int -> perm:perm -> cap

val is_sealed : cap -> bool

(** Seal under [otype]; the authority capability must cover the otype. *)
val seal : authority:cap -> otype:int -> cap -> (cap, string) result

type domain = { d_code : cap; d_data : cap; d_otype : int }

val make_domain :
  authority:cap -> otype:int -> code:cap -> data:cap -> (domain, string) result

type cpu = {
  mutable pcc : cap;
  mutable idc : cap;
  mutable trusted_stack : (cap * cap) list;
  mutable exceptions : int;  (** every crossing traps *)
  mutable posture : Fault.posture;
      (** enforcement posture (sampled from
          {!Fault.get_default_posture} at creation) *)
  mutable audited : int;  (** denials downgraded by the [Audit] posture *)
}

val cpu : pcc:cap -> idc:cap -> cpu

(** Sealed capabilities confer no memory authority. *)
val can_access : cap -> addr:int -> bool

(** CCall: checked unsealing + trusted-stack push, via an exception. *)
val ccall : cpu -> domain -> (unit, string) result

val creturn : cpu -> (unit, string) result

val crossing_cost_ns : float

val round_trip_cost_ns : float

(** {2 Structured fault API}

    The [_at] variants report denials as {!Fault.t} values carrying the
    same fault kind and the caller-supplied canonical faulting pc the
    CODOMs machine would raise for the equivalent attack, and honour the
    enforcement posture (downgradeable denials proceed under
    [Audit]/[Permissive]; structural ones deny under every posture). *)

(** CCall: otype-mismatched pair → [No_permission Call]; unsealed
    operand → [Not_entry_point]; non-executable code → [Exec_violation].
    Posture downgrades force-unseal and cross anyway. *)
val ccall_at : cpu -> pc:int -> domain -> (unit, Fault.t) result

(** CReturn: empty trusted stack → [Dcs_bounds] (structural). *)
val creturn_at : cpu -> pc:int -> (unit, Fault.t) result

(** Data access through [cap]: sealed or out-of-bounds →
    [No_permission perm]. *)
val access_at :
  cpu -> cap -> pc:int -> addr:int -> perm:Perm.t -> (unit, Fault.t) result

(** Sealing under an authority not covering the otype → [Cap_invalid]
    (structural under every posture, hence no [cpu]). *)
val seal_at :
  authority:cap -> otype:int -> pc:int -> cap -> (cap, Fault.t) result
