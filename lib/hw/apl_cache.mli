(** Per-hardware-thread software-managed APL cache (Secs. 4.1, 4.3):
    maps recently executed domain tags to small hardware domain tags
    (5 bits for the 32-entry cache), which index the per-thread
    process-tracking array (Sec. 6.1.2). *)

val capacity : int

type t

val create : unit -> t

val reset : t -> unit

(** Hardware tag of [tag] if resident (counts a hit or miss). *)
val lookup : t -> int -> int option

(** Install [tag], evicting the least recently used entry; returns the
    hardware tag it landed on. *)
val install : t -> int -> int

(** Lookup-or-install; the boolean is true on a hit. *)
val ensure : t -> int -> int * bool

(** (hits, misses, refills). *)
val stats : t -> int * int * int

(** Flush counter: bumped by every {!reset}, so cached decisions taken
    against the cache's contents (the machine's translated-block cache)
    can detect an injected or deliberate flush. *)
val generation : t -> int

val resident_tags : t -> int list
