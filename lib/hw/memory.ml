(* Simulated physical memory.

   Three stores share one address space:
   - [words]: 8-byte data words at 8-aligned addresses (sparse);
   - [caps]: 32-byte capability cells at 32-aligned addresses, kept apart
     from data so capabilities cannot be forged by writing their bits —
     the page's capability-storage bit mediates which accessor is legal;
   - [code]: one instruction per 4-byte slot.

   Representation: page-granular chunked arrays.  Each store maps a page
   number to a flat array covering that page, allocated on first store;
   within a page an access is a direct array index.  A one-entry
   last-page cache per store keeps straight-line execution (fetch at
   consecutive pcs, loads/stores into the same buffer) off the page
   Hashtbl entirely, and a matching one-entry absent-page cache keeps
   repeated reads from an untouched page off the Hashtbl too (allocating
   nothing: the store's neutral element 0 / None is returned directly).
   The absent-page entry is dropped as soon as a chunk is allocated for
   any page of that store, so a first store to the page is immediately
   visible to subsequent loads.

   [code_gen] counts [place_code] calls: it versions the code store so
   the machine's translated-block cache can tell whether any code it
   decoded earlier might have been overwritten (self-modifying code,
   loaders reusing addresses).

   All protection checks happen in [Machine]; this module is the raw
   backing store. *)

let page_mask = Layout.page_size - 1

let words_per_page = Layout.page_size / Layout.word_size

let caps_per_page = Layout.page_size / Layout.cap_bytes

let instrs_per_page = Layout.page_size / Isa.instr_bytes

type t = {
  words : (int, int array) Hashtbl.t;
  caps : (int, Capability.t option array) Hashtbl.t;
  code : (int, Isa.instr option array) Hashtbl.t;
  mutable last_wpage : int;
  mutable last_wchunk : int array;
  mutable last_cpage : int;
  mutable last_cchunk : Capability.t option array;
  mutable last_ipage : int;
  mutable last_ichunk : Isa.instr option array;
  (* One-entry absent-page caches: page numbers known to have no chunk
     in the corresponding store (-1 = none cached). *)
  mutable miss_wpage : int;
  mutable miss_cpage : int;
  mutable miss_ipage : int;
  mutable code_count : int; (* placed instruction slots *)
  mutable code_gen : int; (* bumped by every [place_code] *)
}

(* [Layout.page_of] is a logical shift, so page numbers are never
   negative: -1 is a safe "no page cached" sentinel. *)
let create () =
  {
    words = Hashtbl.create 64;
    caps = Hashtbl.create 16;
    code = Hashtbl.create 16;
    last_wpage = -1;
    last_wchunk = [||];
    last_cpage = -1;
    last_cchunk = [||];
    last_ipage = -1;
    last_ichunk = [||];
    miss_wpage = -1;
    miss_cpage = -1;
    miss_ipage = -1;
    code_count = 0;
    code_gen = 0;
  }

let check_word_aligned addr =
  if addr land 7 <> 0 then invalid_arg (Printf.sprintf "unaligned word access 0x%x" addr)

let word_chunk t page =
  match Hashtbl.find_opt t.words page with
  | Some c ->
      t.last_wpage <- page;
      t.last_wchunk <- c;
      c
  | None ->
      let c = Array.make words_per_page 0 in
      Hashtbl.add t.words page c;
      t.last_wpage <- page;
      t.last_wchunk <- c;
      t.miss_wpage <- -1;
      c

let load_word t addr =
  check_word_aligned addr;
  let page = Layout.page_of addr in
  if page = t.last_wpage then t.last_wchunk.((addr land page_mask) lsr 3)
  else if page = t.miss_wpage then 0
  else
    match Hashtbl.find_opt t.words page with
    | Some c ->
        t.last_wpage <- page;
        t.last_wchunk <- c;
        c.((addr land page_mask) lsr 3)
    | None ->
        t.miss_wpage <- page;
        0

let store_word t addr v =
  check_word_aligned addr;
  let page = Layout.page_of addr in
  let c = if page = t.last_wpage then t.last_wchunk else word_chunk t page in
  c.((addr land page_mask) lsr 3) <- v

let check_cap_aligned addr =
  if addr land (Layout.cap_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "unaligned capability access 0x%x" addr)

let cap_chunk t page =
  match Hashtbl.find_opt t.caps page with
  | Some c ->
      t.last_cpage <- page;
      t.last_cchunk <- c;
      c
  | None ->
      let c = Array.make caps_per_page None in
      Hashtbl.add t.caps page c;
      t.last_cpage <- page;
      t.last_cchunk <- c;
      t.miss_cpage <- -1;
      c

let load_cap t addr =
  check_cap_aligned addr;
  let page = Layout.page_of addr in
  if page = t.last_cpage then t.last_cchunk.((addr land page_mask) lsr 5)
  else if page = t.miss_cpage then None
  else
    match Hashtbl.find_opt t.caps page with
    | Some c ->
        t.last_cpage <- page;
        t.last_cchunk <- c;
        c.((addr land page_mask) lsr 5)
    | None ->
        t.miss_cpage <- page;
        None

let store_cap t addr cap =
  check_cap_aligned addr;
  let page = Layout.page_of addr in
  let c = if page = t.last_cpage then t.last_cchunk else cap_chunk t page in
  c.((addr land page_mask) lsr 5) <- Some cap

(* Misaligned fetch addresses never hold an instruction (code is placed
   at 4-aligned slots only), matching the old per-address table. *)
let fetch t addr =
  if addr land (Isa.instr_bytes - 1) <> 0 then None
  else begin
    let page = Layout.page_of addr in
    if page = t.last_ipage then t.last_ichunk.((addr land page_mask) lsr 2)
    else if page = t.miss_ipage then None
    else
      match Hashtbl.find_opt t.code page with
      | Some c ->
          t.last_ipage <- page;
          t.last_ichunk <- c;
          c.((addr land page_mask) lsr 2)
      | None ->
          t.miss_ipage <- page;
          None
  end

let code_chunk t page =
  match Hashtbl.find_opt t.code page with
  | Some c ->
      t.last_ipage <- page;
      t.last_ichunk <- c;
      c
  | None ->
      let c = Array.make instrs_per_page None in
      Hashtbl.add t.code page c;
      t.last_ipage <- page;
      t.last_ichunk <- c;
      t.miss_ipage <- -1;
      c

(* Place a straight-line instruction sequence at [addr]; returns the first
   address past it. *)
let place_code t ~addr instrs =
  if addr land (Isa.instr_bytes - 1) <> 0 then
    invalid_arg "place_code: misaligned code address";
  t.code_gen <- t.code_gen + 1;
  List.iteri
    (fun i instr ->
      let a = addr + (i * Isa.instr_bytes) in
      let c = code_chunk t (Layout.page_of a) in
      let slot = (a land page_mask) lsr 2 in
      if c.(slot) = None then t.code_count <- t.code_count + 1;
      c.(slot) <- Some instr)
    instrs;
  addr + (List.length instrs * Isa.instr_bytes)

let code_size t = t.code_count

let code_generation t = t.code_gen
