(* A functional miniature of CHERI's domain-crossing mechanism, for the
   Table 1 comparison (Sec. 4.1 contrasts CODOMs with CHERI [64]).

   CHERI crosses protection domains with sealed capability pairs: a
   domain is represented by a code capability and a data capability
   sealed under the same object type (otype).  CCall checks the pair,
   unseals both into PCC (program counter capability) and IDC (invoked
   data capability), and pushes the caller's state on a trusted stack;
   CReturn pops it.  In the CHERI implementations the paper compares
   against, both operations trap into a privileged exception handler —
   which is exactly the cost CODOMs avoids (Table 1: "S: 2x exception").

   This model is deliberately small: enough semantics to demonstrate and
   test the crossing discipline, plus the modelled switch cost. *)

type perm = Exec | Data

type cap = {
  c_base : int;
  c_len : int;
  c_perm : perm;
  c_sealed : int option; (* object type when sealed *)
}

let cap ~base ~len ~perm = { c_base = base; c_len = len; c_perm = perm; c_sealed = None }

let is_sealed c = c.c_sealed <> None

(* Sealing requires authority over the otype; we model that authority as
   a permit-seal capability covering the otype value. *)
let seal ~authority ~otype c =
  if otype < authority.c_base || otype >= authority.c_base + authority.c_len then
    Error "seal: otype outside the sealing authority"
  else if is_sealed c then Error "seal: already sealed"
  else Ok { c with c_sealed = Some otype }

type domain = { d_code : cap; d_data : cap; d_otype : int }

(* Build a sealed domain descriptor pair. *)
let make_domain ~authority ~otype ~code ~data =
  match (seal ~authority ~otype code, seal ~authority ~otype data) with
  | Ok c, Ok d -> Ok { d_code = c; d_data = d; d_otype = otype }
  | Error e, _ | _, Error e -> Error e

type cpu = {
  mutable pcc : cap; (* program counter capability *)
  mutable idc : cap; (* invoked data capability *)
  mutable trusted_stack : (cap * cap) list;
  mutable exceptions : int; (* every crossing traps *)
  mutable posture : Fault.posture; (* enforcement posture, as Machine *)
  mutable audited : int; (* denials downgraded by the Audit posture *)
}

let cpu ~pcc ~idc =
  {
    pcc;
    idc;
    trusted_stack = [];
    exceptions = 0;
    posture = Fault.get_default_posture ();
    audited = 0;
  }

(* Sealed capabilities confer no memory authority until unsealed. *)
let can_access c ~addr =
  (not (is_sealed c)) && addr >= c.c_base && addr < c.c_base + c.c_len

(* CCall: checked unsealing + trusted-stack push, via an exception. *)
let ccall cpu domain =
  cpu.exceptions <- cpu.exceptions + 1;
  match (domain.d_code.c_sealed, domain.d_data.c_sealed) with
  | Some a, Some b when a = b && a = domain.d_otype ->
      if domain.d_code.c_perm <> Exec then Error "ccall: code capability not executable"
      else begin
        cpu.trusted_stack <- (cpu.pcc, cpu.idc) :: cpu.trusted_stack;
        cpu.pcc <- { domain.d_code with c_sealed = None };
        cpu.idc <- { domain.d_data with c_sealed = None };
        Ok ()
      end
  | _ -> Error "ccall: otype mismatch or unsealed operand"

(* CReturn: pop the trusted stack, again via an exception. *)
let creturn cpu =
  cpu.exceptions <- cpu.exceptions + 1;
  match cpu.trusted_stack with
  | (pcc, idc) :: rest ->
      cpu.pcc <- pcc;
      cpu.idc <- idc;
      cpu.trusted_stack <- rest;
      Ok ()
  | [] -> Error "creturn: trusted stack empty"

(* Modelled cost of one crossing (exception entry + handler + return). *)
let crossing_cost_ns = 400.0

let round_trip_cost_ns = 2. *. crossing_cost_ns

(* --- structured fault API ---

   The [_at] variants report denials as {!Fault.t} values carrying the
   same fault kind and the same canonical faulting pc the CODOMs machine
   would raise for the equivalent attack, so the adversarial differential
   suites can compare outcomes across backends without per-backend
   special-casing.  They also honour the enforcement posture: a
   downgradeable denial under Audit is counted (and the operation
   proceeds); under Permissive it proceeds silently.  Structural faults
   (broken encodings, trusted-stack underflow) deny under every
   posture. *)

let denied cpu ?addr ~pc kind =
  if cpu.posture = Fault.Strict || not (Fault.downgradeable kind) then
    Error { Fault.kind; pc; addr }
  else begin
    if cpu.posture = Fault.Audit then cpu.audited <- cpu.audited + 1;
    Ok ()
  end

(* CCall with structured faults: a mismatched otype pair is a forged
   entry descriptor (No_permission Call, as a CODOMs call the APL denies);
   an unsealed operand is not a legal entry point; non-executable code is
   an exec violation.  A posture downgrade force-unseals and crosses
   anyway, mirroring the CODOMs machine letting a denied transfer
   retire. *)
let ccall_at cpu ~pc domain =
  cpu.exceptions <- cpu.exceptions + 1;
  let go () =
    cpu.trusted_stack <- (cpu.pcc, cpu.idc) :: cpu.trusted_stack;
    cpu.pcc <- { domain.d_code with c_sealed = None };
    cpu.idc <- { domain.d_data with c_sealed = None };
    Ok ()
  in
  let gated kind = match denied cpu ~pc kind with
    | Error _ as e -> e
    | Ok () -> go ()
  in
  match (domain.d_code.c_sealed, domain.d_data.c_sealed) with
  | Some a, Some b when a = b && a = domain.d_otype ->
      if domain.d_code.c_perm <> Exec then gated Fault.Exec_violation
      else go ()
  | Some _, Some _ -> gated (Fault.No_permission Perm.Call)
  | _ -> gated Fault.Not_entry_point

(* CReturn with structured faults: popping an empty trusted stack is the
   CHERI image of a DCS underflow — structural, denied under every
   posture. *)
let creturn_at cpu ~pc =
  cpu.exceptions <- cpu.exceptions + 1;
  match cpu.trusted_stack with
  | (pcc, idc) :: rest ->
      cpu.pcc <- pcc;
      cpu.idc <- idc;
      cpu.trusted_stack <- rest;
      Ok ()
  | [] -> denied cpu ~pc (Fault.Dcs_bounds "trusted stack empty")

(* Data access through a capability: sealed or out-of-bounds accesses are
   permission denials ([perm] names the attempted access, as the CODOMs
   machine's [No_permission] payload does). *)
let access_at cpu c ~pc ~addr ~perm =
  if can_access c ~addr then Ok ()
  else denied cpu ~addr ~pc (Fault.No_permission perm)

(* Sealing under an authority that does not cover the otype forges a
   capability: Cap_invalid, structural under every posture. *)
let seal_at ~authority ~otype ~pc c =
  match seal ~authority ~otype c with
  | Ok c -> Ok c
  | Error _ -> Error { Fault.kind = Fault.Cap_invalid; pc; addr = None }
