(** Tagged page table (Sec. 4.1): a conventional page table extended with
    a per-page domain tag, a privileged-capability bit and a
    capability-storage bit. *)

type page = {
  mutable tag : int;
  mutable readable : bool;
  mutable writable : bool;
  mutable executable : bool;
  mutable priv_cap : bool;  (** may execute privileged instructions *)
  mutable cap_store : bool;  (** may hold capabilities (cap load/store only) *)
}

type t

val create : unit -> t

val find : t -> int -> page option

(** Like {!find} but raises {!Fault.Fault} with [Unmapped]. *)
val find_exn : t -> pc:int -> int -> page

val is_mapped : t -> int -> bool

(** Map [count] pages starting at the page containing [addr]; raises
    [Invalid_argument] on double mapping. *)
val map :
  t ->
  addr:int ->
  count:int ->
  tag:int ->
  ?readable:bool ->
  ?writable:bool ->
  ?executable:bool ->
  ?priv_cap:bool ->
  ?cap_store:bool ->
  unit ->
  unit

val unmap : t -> addr:int -> count:int -> unit

(** Reassign pages between domains (Table 2's dom_remap). *)
val retag : t -> addr:int -> count:int -> from_tag:int -> to_tag:int -> unit

val set_protection :
  t ->
  addr:int ->
  count:int ->
  ?readable:bool ->
  ?writable:bool ->
  ?executable:bool ->
  unit ->
  unit

val mapped_page_count : t -> int

(** Bumped whenever the page-number -> page mapping changes (map/unmap);
    translation caches key their entries on it.  In-place page mutation
    (retag, protection bits) does not bump it. *)
val generation : t -> int

val pages_of_tag : t -> int -> int list
