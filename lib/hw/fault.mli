(** Hardware fault model: every protection violation the machine detects
    raises {!Fault}; the OS layer above catches it to implement fault
    notification and KCS unwinding (Sec. 5.2.1). *)

type kind =
  | Unmapped
  | No_permission of Perm.t
  | Not_entry_point  (** call-permission transfer to a misaligned address *)
  | Exec_violation
  | Write_to_readonly
  | Privilege_required
  | Cap_invalid  (** revoked or out-of-scope capability *)
  | Cap_storage of string  (** capability-storage-bit discipline violated *)
  | Dcs_bounds of string
  | Apl_cache_miss of int  (** strict mode only *)
  | Bad_instruction
  | Software_trap of int

type t = { kind : kind; pc : int; addr : int option }

exception Fault of t

val raise_fault : ?addr:int -> pc:int -> kind -> 'a

val kind_to_string : kind -> string

(** Stable small code per fault class (payloads dropped), for digestable
    fault summaries.  Append-only numbering: it feeds adversarial golden
    pins. *)
val kind_code : kind -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Security posture: what a protection unit does with an
    {e authorization} fault (one some authority could have granted).
    [Strict] faults immediately (the default — all pre-existing golden
    digests are pinned under it); [Audit] records the would-be fault and
    lets the operation proceed; [Permissive] proceeds silently.
    Structural faults (unmapped pages, bad instructions, broken
    capability encodings, DCS bounds, software traps) raise under every
    posture. *)
type posture = Strict | Audit | Permissive

val all_postures : posture list

val posture_to_string : posture -> string

val posture_of_string : string -> posture option

(** Is this fault class subject to posture downgrade? *)
val downgradeable : kind -> bool

(** Process-wide default posture, sampled at machine/model creation (the
    [--posture] CLI escape hatch; same pattern as
    {!Machine.set_default_block_cache}). *)
val set_default_posture : posture -> unit

val get_default_posture : unit -> posture
