(* Auto-generated user-level stubs (Secs. 3.3, 5.3.1).

   The optional compiler pass emits a caller stub around every
   cross-domain call site and a callee stub around every exported entry
   point; the stubs implement the isolation properties that do not need
   privileges (register integrity/confidentiality, data-stack integrity),
   so they can be co-optimized with the application — here that shows up
   as: the stub only saves/zeroes the registers the "compiler" knows are
   live (we model 4 live callee-saved registers). *)

module Isa = Dipc_hw.Isa
module Layout = Dipc_hw.Layout
module Perm = Dipc_hw.Perm

let live_regs = [ 8; 9; 10; 11 ] (* modelled live registers at call sites *)

(* Posture-weakened isolation: the Permissive ("allow") posture drops the
   user-level isolation sequences entirely — stubs shrink to a bare
   call/ret — while Strict and Audit keep them (audit still wants the
   isolation work observable, it only downgrades hardware denials). *)
let effective_props ~(posture : Dipc_hw.Fault.posture) (p : Types.props) =
  match posture with
  | Dipc_hw.Fault.Permissive -> Types.props_none
  | Dipc_hw.Fault.Strict | Dipc_hw.Fault.Audit -> p

let scr0 = Isa.scratch0

let scr1 = Isa.scratch1

(* Stack area the integrity capability covers below the stack pointer
   ("the unused stack area", Sec. 5.2.3). *)
let unused_stack_window = 1024

(* isolate_call / deisolate_call around a proxy call.  Returns the stub as
   an Asm program; the stub is itself a function (call it, it returns the
   entry's results). *)
let gen_caller_stub ~proxy_entry ~(sig_ : Types.signature) ~(props : Types.props) =
  let a = Asm.create () in
  let entry = Asm.label "stub" in
  Asm.align a Layout.entry_align;
  Asm.bind a entry;
  (* isolate_call: register integrity — spill live registers. *)
  if props.Types.reg_integrity then begin
    Asm.ins a (Isa.Addi (Isa.sp, Isa.sp, -(8 * List.length live_regs)));
    List.iteri (fun i r -> Asm.ins a (Isa.Store (Isa.sp, 8 * i, r))) live_regs
  end;
  (* isolate_call: data stack integrity — capabilities over the in-stack
     arguments and the unused stack area, narrowed from the thread's
     private stack capability (c6). *)
  if props.Types.stack_integrity then begin
    if sig_.Types.stack_bytes > 0 then begin
      Asm.ins a (Isa.Mov (scr0, Isa.sp));
      Asm.ins a (Isa.Const (scr1, sig_.Types.stack_bytes));
      Asm.ins a (Isa.CapRestrict (0, System.stack_creg, scr0, scr1, Perm.Read))
    end;
    Asm.ins a (Isa.Addi (scr0, Isa.sp, -unused_stack_window));
    Asm.ins a (Isa.Const (scr1, unused_stack_window));
    Asm.ins a (Isa.CapRestrict (1, System.stack_creg, scr0, scr1, Perm.Write))
  end;
  (* isolate_call: register confidentiality — zero everything the callee
     must not see.  Live registers are only zeroed when integrity saved
     them first. *)
  if props.Types.reg_confidentiality then begin
    for r = sig_.Types.args to 7 do
      Asm.ins a (Isa.Const (r, 0))
    done;
    if props.Types.reg_integrity then
      List.iter (fun r -> Asm.ins a (Isa.Const (r, 0))) live_regs;
    Asm.ins a (Isa.Const (Isa.scratch0, 0));
    Asm.ins a (Isa.Const (Isa.scratch1, 0));
    Asm.ins a (Isa.Const (Isa.scratch2, 0))
  end;
  Asm.ins a (Isa.Call proxy_entry);
  (* deisolate_call. *)
  if props.Types.stack_integrity then begin
    Asm.ins a (Isa.CapClear 0);
    Asm.ins a (Isa.CapClear 1)
  end;
  if props.Types.reg_integrity then begin
    List.iteri (fun i r -> Asm.ins a (Isa.Load (r, Isa.sp, 8 * i))) live_regs;
    Asm.ins a (Isa.Addi (Isa.sp, Isa.sp, 8 * List.length live_regs))
  end;
  Asm.ins a Isa.Ret;
  (a, entry)

(* Callee stub wrapping the real function (the address registered with
   entry_register).  isolate_ret zeroes non-result registers when the
   callee requested register confidentiality. *)
let gen_callee_stub ~fn_addr ~(sig_ : Types.signature) ~(props : Types.props) =
  let a = Asm.create () in
  let entry = Asm.label "callee_stub" in
  Asm.align a Layout.entry_align;
  Asm.bind a entry;
  Asm.ins a (Isa.Call fn_addr);
  if props.Types.reg_confidentiality then begin
    for r = sig_.Types.rets to 7 do
      Asm.ins a (Isa.Const (r, 0))
    done;
    Asm.ins a (Isa.Const (Isa.scratch0, 0));
    Asm.ins a (Isa.Const (Isa.scratch1, 0));
    Asm.ins a (Isa.Const (Isa.scratch2, 0))
  end;
  Asm.ins a Isa.Ret;
  (a, entry)

(* Place a stub into already-mapped executable pages at [addr]; returns
   (entry address, first free address). *)
let place mem ~addr (a, entry) =
  let code, last = Asm.assemble a ~base:addr in
  List.iter (fun (i_addr, i) -> ignore (Dipc_hw.Memory.place_code mem ~addr:i_addr [ i ])) code;
  (Asm.target entry, last)

(* Cost model for the setjmp-vs-try co-optimisation experiment
   (Sec. 5.3.1): saving all registers with setjmp versus compiler-
   reconstructed state with C++ try.  Returns (setjmp_ns, try_ns). *)
let exception_recovery_costs () =
  let regs = 16 in
  let setjmp =
    (* store every register + signal mask bookkeeping *)
    (float_of_int regs *. Dipc_sim.Costs.instr_mem) +. 6.0
  in
  let try_based =
    (* registration-free: only a landing-pad table entry; reconstruction
       happens on the (cold) error path. *)
    (setjmp /. 2.5)
  in
  (setjmp, try_based)
