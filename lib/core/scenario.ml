(* Canonical two-domain benchmark scenario (Sec. 7.2).

   Builds the paper's micro-benchmark setup: a caller and a callee, either
   two domains of one process ("dIPC") or two processes ("dIPC +proc"),
   connected through a proxy with a given isolation policy; then measures
   warm synchronous calls by executing the generated code on the machine
   model. *)

module Isa = Dipc_hw.Isa
module Machine = Dipc_hw.Machine
module Stats = Dipc_sim.Stats

type t = {
  sys : System.t;
  resolver : Resolver.t;
  caller : System.process;
  callee : System.process; (* same record as [caller] when same-process *)
  thread : System.thread;
  symbol : Annot.symbol;
  stub : int; (* resolved caller stub *)
}

(* The callee: a trivial add, like the paper's one-byte-argument call. *)
let default_fn = [ Isa.Add (0, 0, 1); Isa.Ret ]

let make ?(same_process = false) ?(tls_optimized = false)
    ?(caller_props = Types.props_low) ?(callee_props = Types.props_low)
    ?(sig_ = Types.signature ~args:2 ~rets:1 ()) ?(fn = default_fn)
    ?proxy_cache () =
  let sys = System.create ?proxy_cache () in
  sys.System.tls_optimized <- tls_optimized;
  let resolver = Resolver.create () in
  let callee = System.create_process sys ~name:"callee" in
  let caller =
    if same_process then callee else System.create_process sys ~name:"caller"
  in
  (* Callee side: its exported function lives in a dedicated domain. *)
  let callee_img = Annot.image sys callee in
  let callee_dom =
    if same_process then "service" else "default"
  in
  if same_process then ignore (Annot.declare_domain sys callee_img "service");
  ignore (Annot.declare_function sys callee_img ~name:"fn" ~dom:callee_dom fn);
  let handle =
    Annot.declare_entries sys callee_img ~name:"svc" ~dom:callee_dom
      [ ("fn", sig_, callee_props) ]
  in
  Resolver.publish resolver ~path:"/run/svc.sock" handle;
  (* Caller side. *)
  let caller_img = Annot.image sys caller in
  let symbol =
    Annot.import caller_img ~path:"/run/svc.sock" ~sig_ ~props:caller_props ()
  in
  let thread = System.create_thread sys caller in
  let stub = Annot.resolve sys resolver symbol in
  { sys; resolver; caller; callee; thread; symbol; stub }

let call t ~args = Call.exec t.sys t.thread ~fn:t.stub ~args

(* Mean per-call cost in simulated nanoseconds over [iters] warm calls.
   The first [warmup] calls populate the tracking cache and the APL
   cache. *)
let measure ?(warmup = 3) ?(iters = 50) t =
  for _ = 1 to warmup do
    match call t ~args:[ 1; 2 ] with
    | Ok _ -> ()
    | Error f -> failwith (Dipc_hw.Fault.to_string f)
  done;
  let ctx = t.thread.System.t_ctx in
  let stats = Stats.create () in
  for _ = 1 to iters do
    let c0 = ctx.Machine.cost in
    (match call t ~args:[ 1; 2 ] with
    | Ok _ -> ()
    | Error f -> failwith (Dipc_hw.Fault.to_string f));
    Stats.add stats (ctx.Machine.cost -. c0)
  done;
  Stats.summary stats

(* The cost of the bare function + harness without any proxy: calling the
   callee function directly in its own process.  Subtracting it isolates
   the primitive's added cost, like the paper's "added execution time". *)
let measure_direct ?(iters = 50) () =
  let sys = System.create () in
  let proc = System.create_process sys ~name:"solo" in
  let img = Annot.image sys proc in
  let fn = Annot.declare_function sys img ~name:"fn" default_fn in
  let th = System.create_thread sys proc in
  (match Call.exec sys th ~fn ~args:[ 1; 2 ] with
  | Ok 3 -> ()
  | Ok v -> failwith (Printf.sprintf "direct call returned %d" v)
  | Error f -> failwith (Dipc_hw.Fault.to_string f));
  let ctx = th.System.t_ctx in
  let stats = Stats.create () in
  for _ = 1 to iters do
    let c0 = ctx.Machine.cost in
    (match Call.exec sys th ~fn ~args:[ 1; 2 ] with
    | Ok _ -> ()
    | Error f -> failwith (Dipc_hw.Fault.to_string f));
    Stats.add stats (ctx.Machine.cost -. c0)
  done;
  Stats.summary stats
