(** Entry point management (Sec. 5.2.3, Table 2): callees register entry
    points; callers request proxies to them, with signature agreement
    (P4) and per-entry isolation-policy negotiation. *)

type entry_desc = {
  e_addr : int;  (** address of the (callee-stub) entry point *)
  e_sig : Types.signature;
  e_policy : Types.props;
}

type entry_handle = {
  eh_proc : System.process;  (** the callee *)
  eh_tag : int;  (** the domain holding the entries *)
  eh_entries : entry_desc array;
}

type proxy_handle = {
  p_entry : int;  (** address the caller stub calls *)
  p_ret : int;
  p_config : Proxy.config;
}

type proxy_set = {
  ps_dom : System.domain_handle;  (** call-permission handle to domain P *)
  ps_proxies : proxy_handle array;
}

(** Table 2 entry_register: publish an array of entry points of an owned
    domain; every address must reside in it. *)
val entry_register : System.t -> dom:System.domain_handle -> entry_desc array -> entry_handle

(** Effective properties for one proxy: integrity activates when the
    caller requests it, stack/DCS confidentiality when either side
    does. *)
val effective : caller:Types.props -> callee:Types.props -> Types.props

(** Table 2 entry_request: build one trusted proxy per entry, specialised
    to the agreed signature and the effective properties; denies on any
    signature mismatch (P4). *)
val entry_request :
  System.t ->
  caller:System.process ->
  caller_dom:System.domain_handle ->
  entry:entry_handle ->
  (Types.signature * Types.props) array ->
  proxy_set
