(* Run-time optimized proxy generation (Secs. 3.1, 5.2.3, 6.1.1, 6.1.2).

   A proxy is the only trusted code on a dIPC call path.  It is generated
   from a parametrised master template, specialised by entry-point
   signature and effective isolation properties, and placed in its own
   privileged domain that can access both the caller and the callee (the
   paper builds ~12K x86 templates averaging 600 B from one master
   template; we generate instruction sequences on demand and memoise by
   the same specialisation key).

   Call path (Fig. 3): the caller stub `call`s the proxy entry (allowed by
   Call permission, forced through the 64-byte-aligned first instruction);
   the proxy validates the stack pointer, pushes a KCS entry, plants its
   own return address, performs the process/stack/DCS switches the policy
   requires, and jumps in-place to the target.  The callee's `ret` can
   only land on the proxy's return path thanks to a synchronous return
   capability (c7).  The return path undoes everything from the KCS. *)

module Isa = Dipc_hw.Isa
module Layout = Dipc_hw.Layout
module Perm = Dipc_hw.Perm

let scr0 = Isa.scratch0 (* r12: primary scratch; syscall argument *)

let scr1 = Isa.scratch1 (* r13: KCS entry pointer *)

let scr2 = Isa.scratch2 (* r14: thread struct pointer *)

let borrow = 11 (* callee-saved register the proxy borrows and restores *)

let sp = Isa.sp

let ret_creg = 7 (* c7: the return capability (ABI: preserved by callees) *)

let stack_creg = System.stack_creg (* c6: the thread's stack capability *)

(* --- template specialisation key --- *)

type config = {
  sig_ : Types.signature;
  eff : Types.props; (* effective (union) isolation properties *)
  cross_process : bool;
  tls_switch : bool;
}

(* The key itself lives in [Proxy_cache] (so [System] can own a cache
   per system without a dependency cycle). *)
type key = Proxy_cache.key = {
  k_stack_words : int;
  k_cap_args : int;
  k_cap_rets : int;
  k_props : int; (* bitmask *)
  k_cross : bool;
  k_tls : bool;
}

let props_mask (p : Types.props) =
  (if p.reg_integrity then 1 else 0)
  lor (if p.reg_confidentiality then 2 else 0)
  lor (if p.stack_integrity then 4 else 0)
  lor (if p.stack_confidentiality then 8 else 0)
  lor (if p.dcs_integrity then 16 else 0)
  lor (if p.dcs_confidentiality then 32 else 0)

let key_of config =
  {
    k_stack_words = config.sig_.Types.stack_bytes / 8;
    k_cap_args = config.sig_.Types.cap_args;
    k_cap_rets = config.sig_.Types.cap_rets;
    k_props = props_mask config.eff;
    k_cross = config.cross_process;
    k_tls = config.tls_switch;
  }

(* A proxy that performs no state switch at all (same process, no
   proxy-implemented property) compiles to the lean template. *)
let is_lean config =
  (not config.cross_process)
  && (not config.eff.Types.stack_confidentiality)
  && (not config.eff.Types.dcs_integrity)
  && not config.eff.Types.dcs_confidentiality

(* --- the lean template --- *)

(* Same-process minimal-policy proxies: validate the stack, push the
   proxy's return address, hand the callee a return capability, jump.  The
   caller requested no state isolation, so no KCS entry is needed: a fault
   in the callee kills the whole (single-process) call chain, which is
   exactly the no-recovery contract of the Low policy. *)
let gen_lean ~target_addr config =
  ignore config;
  let a = Asm.create () in
  let entry = Asm.label "entry" and ret = Asm.label "ret" and trap = Asm.label "trap" in
  Asm.align a Layout.entry_align;
  Asm.bind a entry;
  (* P2: the callee must start on a valid per-thread stack. *)
  Asm.ins a (Isa.RdTp scr2);
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_stack_base));
  Asm.branch a (fun t -> Isa.Blt (sp, scr0, t)) trap;
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_stack_limit));
  Asm.branch a (fun t -> Isa.Bge (sp, scr0, t)) trap;
  (* Preserve the caller's return capability across nesting. *)
  Asm.ins a (Isa.CapPush ret_creg);
  (* Push our return path on the data stack; the caller's own return
     address stays in place below it. *)
  Asm.branch a (fun t -> Isa.Const (scr0, t)) ret;
  Asm.ins a (Isa.Addi (sp, sp, -8));
  Asm.ins a (Isa.Store (sp, 0, scr0));
  (* P3: the callee can only return through this capability. *)
  Asm.branch a (fun t -> Isa.Const (scr1, t)) ret;
  Asm.ins a (Isa.Const (scr0, Layout.entry_align));
  Asm.ins a (Isa.CapAplDerive (ret_creg, scr1, scr0, Perm.Call));
  Asm.ins a (Isa.Const (scr0, target_addr));
  Asm.ins a (Isa.Jmpr scr0);
  (* Return path.  The callee's ret consumed our planted slot; pop the
     caller's own return address by hand (a plain Ret would unbalance the
     hardware call depth — we never executed a call). *)
  Asm.align a Layout.entry_align;
  Asm.bind a ret;
  Asm.ins a (Isa.CapPop ret_creg);
  Asm.ins a (Isa.Load (scr0, sp, 0));
  Asm.ins a (Isa.Addi (sp, sp, 8));
  Asm.ins a (Isa.Jmpr scr0);
  Asm.bind a trap;
  Asm.ins a (Isa.Trap 7);
  (a, entry, ret)

(* --- the full template --- *)

let gen_full ~target_addr ~target_tag config =
  let eff = config.eff in
  let sig_ = config.sig_ in
  let needs_slot = config.cross_process || eff.Types.stack_confidentiality in
  let flags =
    (if eff.Types.dcs_confidentiality then Kobj.kf_dcs_switched else 0)
    lor (if eff.Types.dcs_integrity && not eff.Types.dcs_confidentiality then
           Kobj.kf_dcs_base_adjusted
         else 0)
    lor (if eff.Types.stack_confidentiality then Kobj.kf_stack_switched else 0)
    lor if config.cross_process then Kobj.kf_proc_switched else 0
  in
  let a = Asm.create () in
  let entry = Asm.label "entry"
  and ret = Asm.label "ret"
  and warm = Asm.label "warm"
  and trap = Asm.label "trap"
  and rtrap = Asm.label "rtrap" in
  Asm.align a Layout.entry_align;
  Asm.bind a entry;
  Asm.ins a (Isa.RdTp scr2);
  (* P2: stack pointer validity. *)
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_stack_base));
  Asm.branch a (fun t -> Isa.Blt (sp, scr0, t)) trap;
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_stack_limit));
  Asm.branch a (fun t -> Isa.Bge (sp, scr0, t)) trap;
  (* Allocate a KCS entry (scr1). *)
  Asm.ins a (Isa.Load (scr1, scr2, Kobj.ts_kcs_top));
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_kcs_limit));
  Asm.branch a (fun t -> Isa.Bge (scr1, scr0, t)) trap;
  Asm.ins a (Isa.Addi (scr0, scr1, Kobj.kcs_entry_bytes));
  Asm.ins a (Isa.Store (scr2, Kobj.ts_kcs_top, scr0));
  (* Borrow r11 for the rest of the entry path. *)
  Asm.ins a (Isa.Store (scr1, Kobj.ke_scratch3, borrow));
  (* prepare_ret: move the caller's return address into the KCS. *)
  Asm.ins a (Isa.Load (scr0, sp, 0));
  Asm.ins a (Isa.Store (scr1, Kobj.ke_ret_addr, scr0));
  Asm.ins a (Isa.Store (scr1, Kobj.ke_saved_sp, sp));
  Asm.branch a (fun t -> Isa.Const (scr0, t)) ret;
  Asm.ins a (Isa.Store (scr1, Kobj.ke_proxy_ret, scr0));
  Asm.ins a (Isa.RdDepth scr0);
  Asm.ins a (Isa.Store (scr1, Kobj.ke_depth, scr0));
  Asm.ins a (Isa.Const (scr0, flags));
  Asm.ins a (Isa.Store (scr1, Kobj.ke_flags, scr0));
  Asm.ins a (Isa.Const (scr0, target_tag));
  Asm.ins a (Isa.Store (scr1, Kobj.ke_target_tag, scr0));
  (* Save the caller's return capability in the per-thread capability save
     area (indexed like the KCS), then create ours (P3). *)
  Asm.ins a (Isa.Load (borrow, scr2, Kobj.ts_kcs_base));
  Asm.ins a (Isa.Sub (borrow, scr1, borrow));
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_cap_save));
  Asm.ins a (Isa.Add (borrow, borrow, scr0));
  Asm.ins a (Isa.CapStore (borrow, 0, ret_creg));
  (* When switching stacks the caller's stack capability is parked too;
     the callee receives one for its own stack instead. *)
  if eff.Types.stack_confidentiality then
    Asm.ins a (Isa.CapStore (borrow, Layout.cap_bytes, stack_creg));
  Asm.branch a (fun t -> Isa.Const (borrow, t)) ret;
  Asm.ins a (Isa.Const (scr0, Layout.entry_align));
  Asm.ins a (Isa.CapAplDerive (ret_creg, borrow, scr0, Perm.Call));
  (* Process-tracking cache lookup (Sec. 6.1.2). *)
  if needs_slot then begin
    Asm.ins a (Isa.Const (scr0, target_tag));
    Asm.ins a (Isa.GetHwTag (scr0, scr0));
    Asm.ins a (Isa.Shli (scr0, scr0, 4));
    Asm.ins a (Isa.Addi (scr0, scr0, Kobj.ts_cache));
    Asm.ins a (Isa.Add (scr0, scr0, scr2));
    Asm.ins a (Isa.Store (scr1, Kobj.ke_scratch0, scr0));
    Asm.ins a (Isa.Load (borrow, scr0, 0));
    Asm.branch a (fun t -> Isa.Bnez (borrow, t)) warm;
    (* Cold path: upcall into the management thread (Sec. 6.1.2). *)
    Asm.ins a (Isa.Const (scr0, target_tag));
    Asm.ins a (Isa.Syscall System.sys_resolve);
    Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_scratch0));
    Asm.ins a (Isa.Load (borrow, scr0, 0));
    Asm.bind a warm
  end;
  (* track_process_call: switch the current process and its TLS. *)
  if config.cross_process then begin
    Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_current));
    Asm.ins a (Isa.Store (scr1, Kobj.ke_saved_current, scr0));
    Asm.ins a (Isa.Store (scr2, Kobj.ts_current, borrow));
    if config.tls_switch then begin
      Asm.ins a (Isa.RdFsBase scr0);
      Asm.ins a (Isa.Store (scr1, Kobj.ke_saved_fsbase, scr0));
      Asm.ins a (Isa.Load (scr0, borrow, Kobj.ps_tls));
      Asm.ins a (Isa.WrFsBase scr0)
    end
  end;
  if eff.Types.stack_confidentiality then begin
    (* isolate_pcall: switch to the callee's per-thread stack. *)
    Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_stack_base));
    Asm.ins a (Isa.Store (scr1, Kobj.ke_saved_stack_base, scr0));
    Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_stack_limit));
    Asm.ins a (Isa.Store (scr1, Kobj.ke_saved_stack_limit, scr0));
    Asm.ins a (Isa.Load (borrow, scr1, Kobj.ke_scratch0));
    Asm.ins a (Isa.Load (scr0, borrow, Layout.word_size));
    Asm.ins a (Isa.Store (scr1, Kobj.ke_saved_cache_stack, scr0));
    (* New valid window is [top - reserve, top); the cache slot is lowered
       so nested crossings into the same domain stack below us. *)
    Asm.ins a (Isa.Store (scr2, Kobj.ts_stack_limit, scr0));
    Asm.ins a (Isa.Addi (scr0, scr0, -Kobj.stack_frame_reserve));
    Asm.ins a (Isa.Store (borrow, Layout.word_size, scr0));
    Asm.ins a (Isa.Store (scr2, Kobj.ts_stack_base, scr0));
    (* New stack capability for the callee's stack region. *)
    Asm.ins a (Isa.Load (borrow, scr1, Kobj.ke_saved_cache_stack));
    Asm.ins a (Isa.Addi (borrow, borrow, -System.stack_bytes));
    Asm.ins a (Isa.Const (scr0, System.stack_bytes));
    Asm.ins a (Isa.CapAplDerive (stack_creg, borrow, scr0, Perm.Write));
    (* Copy in-stack arguments to the callee stack (per the signature). *)
    Asm.ins a (Isa.Load (borrow, scr1, Kobj.ke_saved_cache_stack));
    Asm.ins a (Isa.Addi (borrow, borrow, -(sig_.Types.stack_bytes + 8)));
    for i = 0 to (sig_.Types.stack_bytes / 8) - 1 do
      Asm.ins a (Isa.Load (scr0, sp, 8 + (8 * i)));
      Asm.ins a (Isa.Store (borrow, 8 + (8 * i), scr0))
    done;
    Asm.branch a (fun t -> Isa.Const (scr0, t)) ret;
    Asm.ins a (Isa.Store (borrow, 0, scr0));
    Asm.ins a (Isa.Mov (sp, borrow))
  end
  else begin
    (* No stack switch: redirect the in-place return slot to us. *)
    Asm.branch a (fun t -> Isa.Const (scr0, t)) ret;
    Asm.ins a (Isa.Store (sp, 0, scr0))
  end;
  if eff.Types.dcs_confidentiality then begin
    (* isolate_pcall: a fresh DCS with only the capability arguments. *)
    Asm.ins a (Isa.Const (scr0, sig_.Types.cap_args));
    Asm.ins a (Isa.DcsSwitch scr0)
  end
  else if eff.Types.dcs_integrity then begin
    (* isolate_pcall: hide the caller's non-argument DCS entries. *)
    Asm.ins a (Isa.DcsGetBase scr0);
    Asm.ins a (Isa.Store (scr1, Kobj.ke_saved_dcs_base, scr0));
    Asm.ins a (Isa.DcsGetTop scr0);
    Asm.ins a (Isa.Addi (scr0, scr0, -sig_.Types.cap_args));
    Asm.ins a (Isa.DcsSetBase scr0)
  end;
  Asm.ins a (Isa.Load (borrow, scr1, Kobj.ke_scratch3));
  if eff.Types.reg_confidentiality then begin
    (* Do not leak kernel pointers through our scratch registers. *)
    Asm.ins a (Isa.Const (scr1, 0));
    Asm.ins a (Isa.Const (scr2, 0))
  end;
  Asm.ins a (Isa.Const (scr0, target_addr));
  Asm.ins a (Isa.Jmpr scr0);
  (* ---- return path ---- *)
  Asm.align a Layout.entry_align;
  Asm.bind a ret;
  Asm.ins a (Isa.RdTp scr2);
  Asm.ins a (Isa.Load (scr1, scr2, Kobj.ts_kcs_top));
  Asm.ins a (Isa.Addi (scr1, scr1, -Kobj.kcs_entry_bytes));
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_kcs_base));
  Asm.branch a (fun t -> Isa.Blt (scr1, scr0, t)) rtrap;
  Asm.ins a (Isa.Store (scr1, Kobj.ke_scratch2, borrow));
  (* deisolate_pcall: restore DCS state. *)
  if eff.Types.dcs_confidentiality then begin
    Asm.ins a (Isa.Const (scr0, sig_.Types.cap_rets));
    Asm.ins a (Isa.DcsRestore scr0)
  end
  else if eff.Types.dcs_integrity then begin
    Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_saved_dcs_base));
    Asm.ins a (Isa.DcsSetBase scr0)
  end;
  if eff.Types.stack_confidentiality then begin
    (* Restore the cache slot (nesting) and the caller's stack window. *)
    Asm.ins a (Isa.Load (borrow, scr1, Kobj.ke_scratch0));
    Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_saved_cache_stack));
    Asm.ins a (Isa.Store (borrow, Layout.word_size, scr0));
    Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_saved_stack_base));
    Asm.ins a (Isa.Store (scr2, Kobj.ts_stack_base, scr0));
    Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_saved_stack_limit));
    Asm.ins a (Isa.Store (scr2, Kobj.ts_stack_limit, scr0))
  end;
  if config.cross_process then begin
    (* track_process_ret. *)
    Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_saved_current));
    Asm.ins a (Isa.Store (scr2, Kobj.ts_current, scr0));
    if config.tls_switch then begin
      Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_saved_fsbase));
      Asm.ins a (Isa.WrFsBase scr0)
    end
  end;
  (* Restore the caller's return (and, if parked, stack) capability. *)
  Asm.ins a (Isa.Load (borrow, scr2, Kobj.ts_kcs_base));
  Asm.ins a (Isa.Sub (borrow, scr1, borrow));
  Asm.ins a (Isa.Load (scr0, scr2, Kobj.ts_cap_save));
  Asm.ins a (Isa.Add (borrow, borrow, scr0));
  Asm.ins a (Isa.CapLoad (ret_creg, borrow, 0));
  if eff.Types.stack_confidentiality then
    Asm.ins a (Isa.CapLoad (stack_creg, borrow, Layout.cap_bytes));
  (* deprepare_ret: restore the caller's stack pointer and pop the KCS. *)
  Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_saved_sp));
  Asm.ins a (Isa.Addi (scr0, scr0, 8));
  Asm.ins a (Isa.Mov (sp, scr0));
  Asm.ins a (Isa.Store (scr2, Kobj.ts_kcs_top, scr1));
  Asm.ins a (Isa.Load (scr0, scr1, Kobj.ke_ret_addr));
  Asm.ins a (Isa.Load (borrow, scr1, Kobj.ke_scratch2));
  if eff.Types.reg_confidentiality then begin
    Asm.ins a (Isa.Const (scr1, 0));
    Asm.ins a (Isa.Const (scr2, 0))
  end;
  Asm.ins a (Isa.Jmpr scr0);
  Asm.bind a trap;
  Asm.ins a (Isa.Trap 7);
  Asm.bind a rtrap;
  Asm.ins a (Isa.Trap 8);
  (a, entry, ret)

(* --- template cache + installation --- *)

type generated = {
  g_entry : int; (* the proxy entry point the caller stub calls *)
  g_ret : int; (* the proxy return path (recorded in the KCS) *)
  g_bytes : int;
  g_config : config;
}

type cache = Proxy_cache.t

let cache_create = Proxy_cache.create

let template_count = Proxy_cache.template_count

let stats = Proxy_cache.stats

(* Generate and place a proxy for [config] at [base] (page-aligned space
   must already be mapped, executable + privileged, in the proxy domain).
   Returns the proxy's entry point, return path, and first free address. *)
let generate cache ~mem ~base ~target_addr ~target_tag config =
  let a, entry_l, ret_l =
    if is_lean config then gen_lean ~target_addr config
    else gen_full ~target_addr ~target_tag config
  in
  let code, last = Asm.assemble a ~base in
  List.iter
    (fun (addr, i) -> ignore (Dipc_hw.Memory.place_code mem ~addr [ i ]))
    code;
  Proxy_cache.record cache (key_of config) ~bytes:(last - base);
  {
    g_entry = Asm.target entry_l;
    g_ret = Asm.target ret_l;
    g_bytes = last - base;
    g_config = config;
  }

(* First address past a generated proxy; used to pack several proxies into
   one domain. *)
let end_of g ~base = base + g.g_bytes
