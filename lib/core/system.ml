(* The dIPC system: processes, isolation domains and domain grants over a
   shared CODOMs page table (Secs. 5.2, 6.1).

   This is the OS side of Table 2's object model.  Everything the proxies
   touch at run time (thread structs, KCS, process structs, the
   process-tracking cache) lives in kernel-tagged machine memory; the
   OCaml records here are the kernel's bookkeeping for those addresses. *)

module Machine = Dipc_hw.Machine
module Memory = Dipc_hw.Memory
module Page_table = Dipc_hw.Page_table
module Apl = Dipc_hw.Apl
module Apl_cache = Dipc_hw.Apl_cache
module Layout = Dipc_hw.Layout
module Isa = Dipc_hw.Isa
module Perm = Dipc_hw.Perm
module Fault = Dipc_hw.Fault
module Breakdown = Dipc_sim.Breakdown

(* Syscall numbers of the dIPC kernel extension. *)
let sys_resolve = 1 (* cold path of process tracking (Sec. 6.1.2) *)

let sys_exit = 2 (* thread exit (also the fate of split callees, Sec. 5.4) *)

(* Per-thread data-stack size; stacks are lazily allocated per (thread,
   domain) by the resolve path. *)
let stack_bytes = 16384

(* Modelled kernel costs of the resolve paths (Sec. 6.1.2): the warm path
   walks the per-thread tree; the cold path upcalls into a management
   thread in the target process. *)
let resolve_warm_cost = 400.0

let resolve_cold_cost = 2600.0

type process = {
  pid : int;
  name : string;
  mutable def_tag : int; (* default domain (Table 2: dom_default) *)
  proc_struct : int; (* machine address of the process struct *)
  mutable tls_base : int;
  mutable alive : bool;
  mutable owned_tags : int list;
  mutable dipc_enabled : bool;
      (* POSIX fork temporarily disables dIPC in the child to preserve
         copy-on-write semantics; exec with a PIC image re-enables it at a
         unique virtual address (Sec. 6.1.3). *)
}

type thread = {
  t_ctx : Machine.ctx;
  t_struct : int; (* thread struct address (reached via RdTp) *)
  t_kcs_base : int;
  t_kcs_limit : int;
  t_home : process;
  t_stack_base : int;
  t_stack_top : int;
  (* Host mirror of lazily allocated per-domain stacks: the "per-thread
     tree, indexed by the domain tag" of Sec. 6.1.2. *)
  t_stacks : (int, int) Hashtbl.t; (* tag -> stack top *)
}

type t = {
  machine : Machine.t;
  gvas : Gvas.t;
  kernel_tag : int;
  universal_tag : int; (* runtime trampolines every domain may call into *)
  stacks_tag : int;
  (* Data stacks live in a domain no APL points to: they are reachable
     only through each thread's private stack capability (c6), which is
     how dIPC isolates stacks between threads (Sec. 5.2.1). *)
  halt_addr : int; (* Ret-to-host sentinel *)
  exit_addr : int; (* thread-exit stub (Syscall sys_exit) *)
  mutable kmem_cursor : int;
  kmem_limit : int;
  mutable kpage_cursor : int; (* fresh kernel page mappings (cap areas) *)
  procs : (int, process) Hashtbl.t; (* pid -> process *)
  proc_of_struct : (int, process) Hashtbl.t; (* struct addr -> process *)
  tag_owner : (int, int) Hashtbl.t; (* tag -> owning pid *)
  threads : (int, thread) Hashtbl.t; (* ctx id -> thread *)
  mutable next_pid : int;
  mutable tls_optimized : bool; (* Sec. 6.1.2 TLS-mode optimization *)
  mutable resolve_warm : int;
  mutable resolve_cold : int;
  mutable fault_notices : int;
      (* faults the kernel notified to a calling process (Sec. 5.2.1
         unwinding) — the kernel-side face of the enforcement posture *)
  proxy_cache : Proxy_cache.t;
      (* Per-system by default so two runner domains never alias one
         cache; experiments that want the paper's build-time sharing pass
         one cache to several systems on a single domain. *)
}

(* --- kernel memory --- *)

let kmem_base = 1 lsl 20

let kmem_size = 8 lsl 20

let kalloc t bytes =
  let bytes = Layout.align_up bytes 64 in
  if t.kmem_cursor + bytes > t.kmem_limit then failwith "dIPC: kernel memory exhausted";
  let addr = t.kmem_cursor in
  t.kmem_cursor <- t.kmem_cursor + bytes;
  addr

let store t addr v = Memory.store_word t.machine.Machine.mem addr v

let load t addr = Memory.load_word t.machine.Machine.mem addr

(* Map a fresh kernel page with special attributes (capability-storage
   areas and the like). *)
let kmap_page t ?(cap_store = false) () =
  let addr = t.kpage_cursor in
  t.kpage_cursor <- t.kpage_cursor + Layout.page_size;
  Page_table.map t.machine.Machine.page_table ~addr ~count:1 ~tag:t.kernel_tag
    ~cap_store ();
  addr

(* --- system creation --- *)

let handle_syscall_ref :
    (t -> Machine.ctx -> int -> unit) ref =
  ref (fun _ _ _ -> ())

let create ?proxy_cache ?posture () =
  let machine = Machine.create () in
  (match posture with Some p -> Machine.set_posture machine p | None -> ());
  let apl = machine.Machine.apl in
  let kernel_tag = Apl.fresh_tag apl in
  let universal_tag = Apl.fresh_tag apl in
  let stacks_tag = Apl.fresh_tag apl in
  (* Kernel data region. *)
  Page_table.map machine.Machine.page_table ~addr:kmem_base
    ~count:(kmem_size / Layout.page_size)
    ~tag:kernel_tag ();
  (* Universal trampoline page: executable, privileged (the exit stub runs
     a syscall from it). *)
  let tramp_base = kmem_base + kmem_size in
  Page_table.map machine.Machine.page_table ~addr:tramp_base ~count:1
    ~tag:universal_tag ~writable:false ~executable:true ~priv_cap:true ();
  let halt_addr = tramp_base in
  let exit_addr = tramp_base + Layout.entry_align in
  ignore (Memory.place_code machine.Machine.mem ~addr:halt_addr [ Isa.Halt ]);
  ignore
    (Memory.place_code machine.Machine.mem ~addr:exit_addr
       [ Isa.Syscall sys_exit; Isa.Halt ]);
  let t =
    {
      machine;
      gvas = Gvas.create ();
      kernel_tag;
      universal_tag;
      stacks_tag;
      halt_addr;
      exit_addr;
      kmem_cursor = kmem_base;
      kmem_limit = kmem_base + kmem_size;
      kpage_cursor = tramp_base + Layout.page_size;
      procs = Hashtbl.create 16;
      proc_of_struct = Hashtbl.create 16;
      tag_owner = Hashtbl.create 16;
      threads = Hashtbl.create 16;
      next_pid = 1;
      tls_optimized = false;
      resolve_warm = 0;
      resolve_cold = 0;
      fault_notices = 0;
      proxy_cache =
        (match proxy_cache with
        | Some c -> c
        | None -> Proxy_cache.create ());
    }
  in
  Machine.set_syscall_handler machine (fun ctx n -> !handle_syscall_ref t ctx n);
  t

let machine t = t.machine

(* The system's enforcement posture lives on its machine; flipping it at
   runtime affects subsequent authorization checks (stubs already placed
   keep the isolation sequences they were compiled with). *)
let posture t = t.machine.Machine.posture

let set_posture t p = Machine.set_posture t.machine p

(* --- domain management (Sec. 5.2.2) --- *)

type domain_handle = { dom_tag : int; dom_perm : Perm.t }

exception Denied of string

let deny fmt = Fmt.kstr (fun s -> raise (Denied s)) fmt

let fresh_domain_tag t ~owner =
  let tag = Apl.fresh_tag t.machine.Machine.apl in
  Hashtbl.replace t.tag_owner tag owner.pid;
  owner.owned_tags <- tag :: owner.owned_tags;
  (* Every domain may call the runtime trampolines (return-to-host and
     thread exit); this stands in for the C runtime every process links. *)
  Apl.grant t.machine.Machine.apl ~src:tag ~dst:t.universal_tag Perm.Call;
  tag

(* dom_default: owner handle to the process's default domain. *)
let dom_default proc = { dom_tag = proc.def_tag; dom_perm = Perm.Owner }

(* dom_create: owner handle to a brand new, fully isolated domain (P1: not
   in any APL until granted). *)
let dom_create t proc =
  if not proc.alive then deny "dom_create: dead process";
  { dom_tag = fresh_domain_tag t ~owner:proc; dom_perm = Perm.Owner }

(* dom_copy: downgrade a handle before passing it on. *)
let dom_copy h perm =
  if not (Perm.includes h.dom_perm perm) then
    deny "dom_copy: cannot amplify %s to %s" (Perm.to_string h.dom_perm)
      (Perm.to_string perm);
  { h with dom_perm = perm }

(* dom_mmap: allocate memory into a domain (requires owner). *)
let dom_mmap t h ~bytes ?(readable = true) ?(writable = true)
    ?(executable = false) ?(cap_store = false) () =
  if not (Perm.equal h.dom_perm Perm.Owner) then deny "dom_mmap: owner required";
  let owner = Hashtbl.find t.tag_owner h.dom_tag in
  let addr = Gvas.alloc t.gvas ~owner ~bytes in
  Page_table.map t.machine.Machine.page_table ~addr
    ~count:(Layout.align_up bytes Layout.page_size / Layout.page_size)
    ~tag:h.dom_tag ~readable ~writable ~executable ~cap_store ();
  addr

(* dom_remap: reassign pages between two owned domains. *)
let dom_remap t ~dst ~src ~addr ~bytes =
  if not (Perm.equal dst.dom_perm Perm.Owner) then deny "dom_remap: dst owner required";
  if not (Perm.equal src.dom_perm Perm.Owner) then deny "dom_remap: src owner required";
  Page_table.retag t.machine.Machine.page_table ~addr
    ~count:(Layout.align_up bytes Layout.page_size / Layout.page_size)
    ~from_tag:src.dom_tag ~to_tag:dst.dom_tag

(* --- domain grants (Sec. 5.2.2) --- *)

type grant_handle = {
  g_src : int;
  g_dst : int;
  g_perm : Perm.t;
  mutable g_active : bool;
}

(* grant_create: allow Src to access Dst with the handle's permission.
   Requires an owner handle for Src (it is Src's APL being changed). *)
let grant_create t ~src ~dst =
  if not (Perm.equal src.dom_perm Perm.Owner) then
    deny "grant_create: owner permission on src required";
  if Perm.equal dst.dom_perm Perm.Nil then deny "grant_create: nil dst handle";
  Apl.grant t.machine.Machine.apl ~src:src.dom_tag ~dst:dst.dom_tag dst.dom_perm;
  { g_src = src.dom_tag; g_dst = dst.dom_tag; g_perm = dst.dom_perm; g_active = true }

let grant_revoke t g =
  if g.g_active then begin
    Apl.revoke t.machine.Machine.apl ~src:g.g_src ~dst:g.g_dst;
    g.g_active <- false
  end

(* --- processes --- *)

let create_process t ~name =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let proc_struct = kalloc t Kobj.proc_struct_bytes in
  let proc =
    {
      pid;
      name;
      def_tag = 0;
      proc_struct;
      tls_base = 0;
      alive = true;
      owned_tags = [];
      dipc_enabled = true;
    }
  in
  Hashtbl.replace t.procs pid proc;
  Hashtbl.replace t.proc_of_struct proc_struct proc;
  proc.def_tag <- fresh_domain_tag t ~owner:proc;
  (* TLS block in the process's own domain. *)
  proc.tls_base <-
    dom_mmap t
      { dom_tag = proc.def_tag; dom_perm = Perm.Owner }
      ~bytes:Layout.page_size ();
  store t (proc_struct + Kobj.ps_pid) pid;
  store t (proc_struct + Kobj.ps_tls) proc.tls_base;
  store t (proc_struct + Kobj.ps_tag) proc.def_tag;
  proc

let find_process t pid = Hashtbl.find_opt t.procs pid

(* POSIX fork (Sec. 6.1.3): the child starts with dIPC *disabled* so the
   parent's pages can go copy-on-write without confusing the shared page
   table; it cannot register or request entry points until it execs. *)
let fork_process t parent ~name =
  if not parent.alive then deny "fork: dead parent";
  let child = create_process t ~name in
  child.dipc_enabled <- false;
  child

(* POSIX exec with a position-independent image: dIPC is re-enabled and
   the process is (re)loaded at a unique virtual address — which our
   create-time GVAS allocation already guarantees. *)
let exec_process _t proc = proc.dipc_enabled <- true

let require_dipc proc ~op =
  if not proc.dipc_enabled then
    deny "%s: process %s has dIPC disabled (forked, not yet exec'ed)" op proc.name

let kill_process _t proc = proc.alive <- false

(* --- threads (Sec. 5.2.1) --- *)

(* Allocate a data stack in the APL-invisible stacks domain; it is only
   reachable through a thread's stack capability. *)
let alloc_stack t ~owner_pid =
  let addr = Gvas.alloc t.gvas ~owner:owner_pid ~bytes:stack_bytes in
  Page_table.map t.machine.Machine.page_table ~addr
    ~count:(stack_bytes / Layout.page_size)
    ~tag:t.stacks_tag ();
  addr

(* The thread-private stack capability (Sec. 5.2.1): a synchronous
   capability pinned to the thread's outermost frame, installed in c6 by
   the kernel when the thread is created or redirected. *)
let stack_cap _t ctx ~base ~bytes =
  {
    Dipc_hw.Capability.base;
    length = bytes;
    perm = Perm.Write;
    scope =
      Dipc_hw.Capability.Synchronous
        { thread = ctx.Machine.id; depth = 0; epoch = 0 };
  }

let stack_creg = 6 (* ABI: c6 holds the thread's stack capability *)

let create_thread t proc =
  if not proc.alive then deny "create_thread: dead process";
  let tstruct = kalloc t Kobj.thread_struct_bytes in
  let kcs_bytes = 32 * Kobj.kcs_entry_bytes in
  let kcs = kalloc t kcs_bytes in
  let stack_base = alloc_stack t ~owner_pid:proc.pid in
  let stack_top = stack_base + stack_bytes in
  let ctx = Machine.new_ctx t.machine ~pc:0 ~sp_value:stack_top in
  ctx.Machine.tp <- tstruct;
  ctx.Machine.fsbase <- proc.tls_base;
  (* Per-thread capability save area (one cap slot per KCS entry). *)
  let cap_save = kmap_page t ~cap_store:true () in
  store t (tstruct + Kobj.ts_cap_save) cap_save;
  (* Seed c7 with a permanently valid return capability to the runtime
     trampoline, so proxies can unconditionally save/restore it. *)
  ctx.Machine.cregs.(7) <-
    Some
      {
        Dipc_hw.Capability.base = t.halt_addr;
        length = Layout.entry_align;
        perm = Perm.Call;
        scope =
          Dipc_hw.Capability.Asynchronous
            { owner_tag = t.universal_tag; counter = 0; value = 0 };
      };
  (* The thread-private stack capability. *)
  ctx.Machine.cregs.(stack_creg) <-
    Some (stack_cap t ctx ~base:stack_base ~bytes:stack_bytes);
  store t (tstruct + Kobj.ts_kcs_top) kcs;
  store t (tstruct + Kobj.ts_kcs_base) kcs;
  store t (tstruct + Kobj.ts_kcs_limit) (kcs + kcs_bytes);
  store t (tstruct + Kobj.ts_stack_base) stack_base;
  store t (tstruct + Kobj.ts_stack_limit) stack_top;
  store t (tstruct + Kobj.ts_current) proc.proc_struct;
  store t (tstruct + Kobj.ts_errno) Types.err_none;
  let th =
    {
      t_ctx = ctx;
      t_struct = tstruct;
      t_kcs_base = kcs;
      t_kcs_limit = kcs + kcs_bytes;
      t_home = proc;
      t_stack_base = stack_base;
      t_stack_top = stack_top;
      t_stacks = Hashtbl.create 8;
    }
  in
  Hashtbl.replace t.threads ctx.Machine.id th;
  th

let thread_of_ctx t ctx = Hashtbl.find t.threads ctx.Machine.id

let errno t th = load t (th.t_struct + Kobj.ts_errno)

let set_errno t th v = store t (th.t_struct + Kobj.ts_errno) v

let current_process t th =
  Hashtbl.find t.proc_of_struct (load t (th.t_struct + Kobj.ts_current))

(* --- the process-tracking resolve path (Sec. 6.1.2) --- *)

(* Fill the per-thread cache array entry for [tag]: the hardware tag
   indexes the array; the entry holds the target process struct and the
   (lazily allocated) per-domain stack top. *)
let resolve t th ~tag =
  let ctx = th.t_ctx in
  let pid =
    match Hashtbl.find_opt t.tag_owner tag with
    | Some pid -> pid
    | None -> Fault.raise_fault ~pc:ctx.Machine.pc (Fault.Software_trap 101)
  in
  let proc =
    match Hashtbl.find_opt t.procs pid with
    | Some p when p.alive -> p
    | Some _ | None -> Fault.raise_fault ~pc:ctx.Machine.pc (Fault.Software_trap 102)
  in
  let stack_top =
    match Hashtbl.find_opt th.t_stacks tag with
    | Some top ->
        t.resolve_warm <- t.resolve_warm + 1;
        Machine.charge_as t.machine ctx Breakdown.Kernel resolve_warm_cost;
        top
    | None ->
        (* Cold path: upcall allocates the OS structures. *)
        t.resolve_cold <- t.resolve_cold + 1;
        Machine.charge_as t.machine ctx Breakdown.Kernel resolve_cold_cost;
        let base = alloc_stack t ~owner_pid:pid in
        let top = base + stack_bytes in
        Hashtbl.replace th.t_stacks tag top;
        top
  in
  let hw, _hit = Apl_cache.ensure ctx.Machine.apl_cache tag in
  store t (th.t_struct + Kobj.ts_cache_proc hw) proc.proc_struct;
  store t (th.t_struct + Kobj.ts_cache_stack hw) stack_top;
  hw

(* Pre-warm the fast path so benchmarks measure steady state, like the
   paper's warmup runs. *)
let prewarm t th ~tag = ignore (resolve t th ~tag)

(* --- syscall dispatch --- *)

let handle_syscall t ctx n =
  let th = thread_of_ctx t ctx in
  if n = sys_resolve then ignore (resolve t th ~tag:ctx.Machine.regs.(Isa.scratch0))
  else if n = sys_exit then ctx.Machine.halted <- true
  else Fault.raise_fault ~pc:ctx.Machine.pc (Fault.Software_trap (100 + n))

let () = handle_syscall_ref := handle_syscall
