(** Proxy template-specialisation cache (see [Proxy], which memoises
    generated proxies by specialisation key through one of these).
    Extracted below [System] so each system can own a private cache —
    the domain-safety default for the parallel runner — while
    single-domain experiments may still share one across systems. *)

type key = {
  k_stack_words : int;
  k_cap_args : int;
  k_cap_rets : int;
  k_props : int;  (** isolation-property bitmask *)
  k_cross : bool;
  k_tls : bool;
}

type t

val create : unit -> t

(** Distinct specialisation keys instantiated so far. *)
val template_count : t -> int

(** (proxies generated, total bytes generated). *)
val stats : t -> int * int

(** Count one instantiation of [key] totalling [bytes]. *)
val record : t -> key -> bytes:int -> unit
