(* Proxy template-specialisation cache, extracted from [Proxy] so
   [System] can own one per system: [Proxy] depends on [System] for ABI
   constants, so the cache type must live below both.

   One cache per [System.create] is the domain-safety default (the
   parallel runner gives every run its own system, so two domains never
   alias a cache); single-domain experiments that want the paper's
   build-time template sharing pass one cache to several systems. *)

type key = {
  k_stack_words : int;
  k_cap_args : int;
  k_cap_rets : int;
  k_props : int; (* bitmask *)
  k_cross : bool;
  k_tls : bool;
}

type t = {
  templates : (key, int) Hashtbl.t; (* key -> times instantiated *)
  mutable generated_count : int;
  mutable generated_bytes : int;
}

let create () =
  { templates = Hashtbl.create 64; generated_count = 0; generated_bytes = 0 }

let template_count cache = Hashtbl.length cache.templates

let stats cache = (cache.generated_count, cache.generated_bytes)

let record cache key ~bytes =
  (match Hashtbl.find_opt cache.templates key with
  | Some n -> Hashtbl.replace cache.templates key (n + 1)
  | None -> Hashtbl.replace cache.templates key 1);
  cache.generated_count <- cache.generated_count + 1;
  cache.generated_bytes <- cache.generated_bytes + bytes
