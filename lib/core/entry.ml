(* Entry point management (Sec. 5.2.3, Table 2).

   entry_register: a callee publishes an array of entry points (address,
   signature, isolation properties) of one of its domains.

   entry_request: a caller asks for proxies to those entries, passing the
   signature it expects (P4: both sides must agree) and its own isolation
   properties.  dIPC builds one trusted proxy per entry, specialised to
   the signature and the union of the requested properties, inside a fresh
   proxy domain P with access to both sides; the caller receives a handle
   with call permission to P. *)

module Apl = Dipc_hw.Apl
module Page_table = Dipc_hw.Page_table
module Layout = Dipc_hw.Layout
module Perm = Dipc_hw.Perm

type entry_desc = {
  e_addr : int; (* address of the (callee-stub) entry point *)
  e_sig : Types.signature;
  e_policy : Types.props;
}

type entry_handle = {
  eh_proc : System.process; (* the callee *)
  eh_tag : int; (* the domain holding the entries *)
  eh_entries : entry_desc array;
}

type proxy_handle = {
  p_entry : int; (* address the caller stub calls *)
  p_ret : int; (* the proxy's return path (lives in the KCS) *)
  p_config : Proxy.config;
}

type proxy_set = {
  ps_dom : System.domain_handle; (* call-permission handle to domain P *)
  ps_proxies : proxy_handle array;
}

(* The template cache lives on the system ([System.t.proxy_cache]): a
   module-level global here would be shared mutable state between
   concurrent runner domains.  Experiments that want the paper's
   build-time template sharing pass one cache to several systems via
   [System.create ?proxy_cache] (single-domain use only). *)

let entry_register t ~dom (entries : entry_desc array) =
  if not (Perm.equal dom.System.dom_perm Perm.Owner) then
    System.deny "entry_register: owner permission required";
  let owner_pid = Hashtbl.find t.System.tag_owner dom.System.dom_tag in
  let proc =
    match System.find_process t owner_pid with
    | Some p -> p
    | None -> System.deny "entry_register: unknown owner"
  in
  System.require_dipc proc ~op:"entry_register";
  Array.iter
    (fun e ->
      match Page_table.find t.System.machine.System.Machine.page_table e.e_addr with
      | Some page when page.Page_table.tag = dom.System.dom_tag -> ()
      | Some _ -> System.deny "entry_register: entry 0x%x not in the domain" e.e_addr
      | None -> System.deny "entry_register: entry 0x%x unmapped" e.e_addr)
    entries;
  { eh_proc = proc; eh_tag = dom.System.dom_tag; eh_entries = entries }

(* Effective isolation properties for one proxy (Sec. 5.2.3): integrity
   properties activate only when the caller requests them;
   confidentiality of the data stack and DCS activates when either side
   requests it; register properties stay in the user stubs of whichever
   side requested them (the proxy only needs to know about register
   confidentiality to scrub its own scratch registers). *)
let effective ~(caller : Types.props) ~(callee : Types.props) : Types.props =
  {
    reg_integrity = caller.reg_integrity;
    reg_confidentiality = caller.reg_confidentiality || callee.reg_confidentiality;
    stack_integrity = caller.stack_integrity;
    stack_confidentiality =
      caller.stack_confidentiality || callee.stack_confidentiality;
    dcs_integrity = caller.dcs_integrity;
    dcs_confidentiality = caller.dcs_confidentiality || callee.dcs_confidentiality;
  }

let entry_request t ~caller ~caller_dom ~(entry : entry_handle)
    (requests : (Types.signature * Types.props) array) =
  if not caller.System.alive then System.deny "entry_request: dead caller";
  System.require_dipc caller ~op:"entry_request";
  if Array.length requests <> Array.length entry.eh_entries then
    System.deny "entry_request: entry count mismatch";
  if not (Perm.equal caller_dom.System.dom_perm Perm.Owner) then
    System.deny "entry_request: owner permission on the caller domain required";
  (* P4: caller and callee must agree on every signature. *)
  Array.iteri
    (fun i (sig_, _) ->
      if not (Types.signature_equal sig_ entry.eh_entries.(i).e_sig) then
        System.deny "entry_request: signature mismatch on entry %d" i)
    requests;
  let apl = t.System.machine.System.Machine.apl in
  (* Fresh proxy domain P, trusted and privileged. *)
  let p_tag = Apl.fresh_tag apl in
  Apl.grant apl ~src:p_tag ~dst:t.System.universal_tag Perm.Call;
  Apl.grant apl ~src:p_tag ~dst:t.System.kernel_tag Perm.Write;
  (* Proxies manipulate the thread's data stacks directly (return-slot
     rewrite, stack switching). *)
  Apl.grant apl ~src:p_tag ~dst:t.System.stacks_tag Perm.Write;
  Apl.grant apl ~src:p_tag ~dst:caller_dom.System.dom_tag Perm.Write;
  Apl.grant apl ~src:p_tag ~dst:entry.eh_tag Perm.Write;
  (* Also reach the two processes' default domains: stacks and stubs most
     commonly live there. *)
  Apl.grant apl ~src:p_tag ~dst:caller.System.def_tag Perm.Write;
  Apl.grant apl ~src:p_tag ~dst:entry.eh_proc.System.def_tag Perm.Write;
  let cross_process = caller.System.pid <> entry.eh_proc.System.pid in
  (* Code pages for the proxies, in the global address space. *)
  let estimated = 4096 * max 1 (Array.length requests) in
  let base =
    Gvas.alloc t.System.gvas ~owner:entry.eh_proc.System.pid ~bytes:estimated
  in
  Page_table.map t.System.machine.System.Machine.page_table ~addr:base
    ~count:(estimated / Layout.page_size)
    ~tag:p_tag ~writable:false ~executable:true ~priv_cap:true ();
  let cursor = ref base in
  let proxies =
    Array.mapi
      (fun i (sig_, caller_props) ->
        let desc = entry.eh_entries.(i) in
        let config =
          {
            Proxy.sig_;
            eff = effective ~caller:caller_props ~callee:desc.e_policy;
            cross_process;
            tls_switch = cross_process && not t.System.tls_optimized;
          }
        in
        let g =
          Proxy.generate t.System.proxy_cache
            ~mem:t.System.machine.System.Machine.mem
            ~base:(Layout.align_up !cursor Layout.entry_align)
            ~target_addr:desc.e_addr ~target_tag:entry.eh_tag config
        in
        cursor := Layout.align_up !cursor Layout.entry_align + g.Proxy.g_bytes;
        if !cursor > base + estimated then
          failwith "entry_request: proxy region overflow";
        { p_entry = g.Proxy.g_entry; p_ret = g.Proxy.g_ret; p_config = config })
      requests
  in
  (* Pre-translate every proxy entry into the superblock cache *after*
     the whole set is generated (each [Proxy.generate] placement bumps
     the code generation, so warming per-proxy would self-invalidate).
     The first dIPC crossing then dispatches into already-compiled
     code; a later code placement merely forces a retranslation. *)
  Array.iter
    (fun p -> System.Machine.pretranslate t.System.machine ~pc:p.p_entry)
    proxies;
  { ps_dom = { System.dom_tag = p_tag; dom_perm = Perm.Call }; ps_proxies = proxies }
