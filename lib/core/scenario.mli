(** Canonical two-domain benchmark scenario (Sec. 7.2): a caller and a
    callee — two domains of one process ("dIPC") or two processes
    ("dIPC +proc") — connected through a proxy with a chosen isolation
    policy, measured by executing the generated code. *)

type t = {
  sys : System.t;
  resolver : Resolver.t;
  caller : System.process;
  callee : System.process;  (** same record as [caller] when same-process *)
  thread : System.thread;
  symbol : Annot.symbol;
  stub : int;  (** resolved caller stub *)
}

(** The default callee: add its two arguments. *)
val default_fn : Dipc_hw.Isa.instr list

val make :
  ?same_process:bool ->
  ?tls_optimized:bool ->
  ?caller_props:Types.props ->
  ?callee_props:Types.props ->
  ?sig_:Types.signature ->
  ?fn:Dipc_hw.Isa.instr list ->
  ?proxy_cache:Proxy_cache.t ->
  unit ->
  t

val call : t -> args:int list -> (int, Dipc_hw.Fault.t) result

(** Mean per-call simulated cost over [iters] warm calls. *)
val measure : ?warmup:int -> ?iters:int -> t -> Dipc_sim.Stats.summary

(** Baseline: the bare function + harness without any proxy. *)
val measure_direct : ?iters:int -> unit -> Dipc_sim.Stats.summary
