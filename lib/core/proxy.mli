(** Run-time optimized proxy generation (Secs. 3.1, 5.2.3, 6.1.1):
    trusted call thunks generated from a parametrised master template,
    specialised by entry-point signature, effective isolation properties,
    process crossing and TLS mode, then memoised by that key. *)

type config = {
  sig_ : Types.signature;
  eff : Types.props;  (** effective (union) isolation properties *)
  cross_process : bool;
  tls_switch : bool;
}

(** Same-process minimal-policy proxies compile to the lean template (no
    KCS entry, no state switch). *)
val is_lean : config -> bool

type generated = {
  g_entry : int;  (** the 64-aligned entry the caller stub calls *)
  g_ret : int;  (** the proxy return path (recorded in the KCS) *)
  g_bytes : int;
  g_config : config;
}

type cache = Proxy_cache.t

val cache_create : unit -> cache

(** Distinct specialisation keys instantiated so far. *)
val template_count : cache -> int

(** (proxies generated, total bytes generated). *)
val stats : cache -> int * int

(** Generate and place a proxy at [base] (executable + privileged pages
    must already be mapped there, tagged with the proxy domain). *)
val generate :
  cache ->
  mem:Dipc_hw.Memory.t ->
  base:int ->
  target_addr:int ->
  target_tag:int ->
  config ->
  generated

val end_of : generated -> base:int -> int
