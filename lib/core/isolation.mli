(** Auto-generated user-level stubs (Secs. 3.3, 5.3.1): the isolation
    properties that need no privilege — register integrity and
    confidentiality, data-stack integrity — implemented around the call
    site (caller stub) and the entry point (callee stub), where the
    "compiler" can exploit liveness knowledge. *)

(** Registers the modelled compiler considers live at call sites. *)
val live_regs : int list

(** Isolation properties actually compiled under a security posture:
    [Permissive] (allow semantics) drops the user-level isolation
    sequences; [Strict] and [Audit] keep the requested set. *)
val effective_props : posture:Dipc_hw.Fault.posture -> Types.props -> Types.props

val unused_stack_window : int

(** isolate_call / deisolate_call around a proxy call; the stub is itself
    a callable function. *)
val gen_caller_stub :
  proxy_entry:int -> sig_:Types.signature -> props:Types.props -> Asm.t * Asm.label

(** Callee stub wrapping the exported function; implements isolate_ret. *)
val gen_callee_stub :
  fn_addr:int -> sig_:Types.signature -> props:Types.props -> Asm.t * Asm.label

(** Place a stub into already-mapped executable pages; returns (entry
    address, first free address). *)
val place : Dipc_hw.Memory.t -> addr:int -> Asm.t * Asm.label -> int * int

(** The Sec. 5.3.1 co-optimisation experiment: (setjmp_ns, try_ns) per
    call site. *)
val exception_recovery_costs : unit -> float * float
