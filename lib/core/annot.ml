(* The annotation / loader layer (Secs. 3.3, 5.3, 6.2).

   The paper's optional compiler pass turns source annotations (dom,
   entry, perm, iso_caller/iso_callee) into extra binary sections; the
   loader then creates domains, configures grants, registers exported
   entry points and lazily resolves imported ones (first use builds the
   proxy, exactly like dynamic symbol resolution).  This module is that
   tool-chain as a combinator API: what the annotations *produce* is what
   these calls produce. *)

module Isa = Dipc_hw.Isa
module Perm = Dipc_hw.Perm

type image = {
  img_proc : System.process;
  img_domains : (string, System.domain_handle) Hashtbl.t;
  img_functions : (string, int) Hashtbl.t; (* name -> address *)
  img_entries : (string, Entry.entry_handle) Hashtbl.t;
}

(* Start building a process image. *)
let image t proc =
  let img =
    {
      img_proc = proc;
      img_domains = Hashtbl.create 8;
      img_functions = Hashtbl.create 16;
      img_entries = Hashtbl.create 8;
    }
  in
  Hashtbl.replace img.img_domains "default" (System.dom_default proc);
  ignore t;
  img

let domain_handle img name =
  match Hashtbl.find_opt img.img_domains name with
  | Some d -> d
  | None -> System.deny "annot: unknown domain %s" name

(* #pragma dipc dom: declare a named domain inside the process. *)
let declare_domain t img name =
  if Hashtbl.mem img.img_domains name then System.deny "annot: duplicate domain %s" name;
  let d = System.dom_create t img.img_proc in
  Hashtbl.replace img.img_domains name d;
  d

(* Place a function's code into a domain. *)
let declare_function t img ~name ?(dom = "default") instrs =
  let d = domain_handle img dom in
  let addr = Loader.place_fn t ~dom:d instrs in
  Hashtbl.replace img.img_functions name addr;
  addr

let function_addr img name =
  match Hashtbl.find_opt img.img_functions name with
  | Some a -> a
  | None -> System.deny "annot: unknown function %s" name

(* #pragma dipc perm: direct cross-domain permission inside the process. *)
let declare_perm t img ~src ~dst perm =
  let s = domain_handle img src and d = domain_handle img dst in
  ignore (System.grant_create t ~src:s ~dst:(System.dom_copy d perm))

(* #pragma dipc entry + iso_callee: export entry points.  The loader wraps
   each function in an auto-generated callee stub and registers the stub
   address. *)
let declare_entries t img ~name ?(dom = "default")
    (entries : (string * Types.signature * Types.props) list) =
  let d = domain_handle img dom in
  let descs =
    List.map
      (fun (fn, sig_, props) ->
        let props = Isolation.effective_props ~posture:(System.posture t) props in
        let stub = Isolation.gen_callee_stub ~fn_addr:(function_addr img fn) ~sig_ ~props in
        let stub_addr = Loader.place_program t ~dom:d stub in
        { Entry.e_addr = stub_addr; e_sig = sig_; e_policy = props })
      entries
  in
  let handle = Entry.entry_register t ~dom:d (Array.of_list descs) in
  Hashtbl.replace img.img_entries name handle;
  handle

let entry_handle img name =
  match Hashtbl.find_opt img.img_entries name with
  | Some h -> h
  | None -> System.deny "annot: unknown entry handle %s" name

(* An imported symbol: resolved lazily on first call, like a dynamic
   symbol (Sec. 3.2). *)
type symbol = {
  sym_path : string;
  sym_index : int; (* which entry in the handle's array *)
  sym_sig : Types.signature;
  sym_props : Types.props; (* iso_caller *)
  sym_image : image;
  sym_dom : string; (* caller-side domain the call is made from *)
  mutable sym_stub : int option; (* caller stub address once resolved *)
}

let import img ~path ?(index = 0) ?(dom = "default") ~sig_ ~props () =
  {
    sym_path = path;
    sym_index = index;
    sym_sig = sig_;
    sym_props = props;
    sym_image = img;
    sym_dom = dom;
    sym_stub = None;
  }

(* Resolve: fetch the handle from the resolver, request proxies, build and
   place the caller stub (steps A-B of Fig. 3). *)
let resolve t resolver sym =
  match sym.sym_stub with
  | Some addr -> addr
  | None ->
      let img = sym.sym_image in
      let handle =
        match Resolver.lookup resolver ~path:sym.sym_path ~caller:img.img_proc with
        | Ok h -> h
        | Error e -> System.deny "%s" e
      in
      let caller_dom = domain_handle img sym.sym_dom in
      let n = Array.length handle.Entry.eh_entries in
      let requests =
        Array.init n (fun i ->
            if i = sym.sym_index then (sym.sym_sig, sym.sym_props)
            else (handle.Entry.eh_entries.(i).Entry.e_sig, Types.props_none))
      in
      let set = Entry.entry_request t ~caller:img.img_proc ~caller_dom ~entry:handle requests in
      (* The caller installs call permission to the proxy domain. *)
      ignore (System.grant_create t ~src:caller_dom ~dst:set.Entry.ps_dom);
      let proxy = set.Entry.ps_proxies.(sym.sym_index) in
      let stub =
        Isolation.gen_caller_stub ~proxy_entry:proxy.Entry.p_entry ~sig_:sym.sym_sig
          ~props:(Isolation.effective_props ~posture:(System.posture t) sym.sym_props)
      in
      let addr = Loader.place_program t ~dom:caller_dom stub in
      (* The stub placement just bumped the code generation, staling the
         warm entries from [entry_request]; re-warm the stub and the
         proxy it calls so the first invocation is fully compiled. *)
      System.Machine.pretranslate t.System.machine ~pc:addr;
      System.Machine.pretranslate t.System.machine ~pc:proxy.Entry.p_entry;
      sym.sym_stub <- Some addr;
      addr

(* Call an imported symbol on [th] as a fresh top-level invocation. *)
let call t resolver th sym ~args =
  let stub = resolve t resolver sym in
  Call.exec t th ~fn:stub ~args
