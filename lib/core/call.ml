(* Thread flow across processes: running cross-domain calls, fault
   notification and KCS unwinding (Sec. 5.2.1), and cross-process call
   time-outs via thread splitting (Sec. 5.4 — designed but not implemented
   in the paper's prototype; implemented here). *)

module Machine = Dipc_hw.Machine
module Memory = Dipc_hw.Memory
module Capability = Dipc_hw.Capability
module Fault = Dipc_hw.Fault
module Layout = Dipc_hw.Layout

(* --- top-level call setup --- *)

(* Prepare [th] to execute the function at [fn] with register arguments
   [args]; the function's final Ret lands on the runtime's halt
   trampoline. *)
let setup t (th : System.thread) ~fn ~args =
  let ctx = th.System.t_ctx in
  (* Fresh top-level state. *)
  System.store t (th.System.t_struct + Kobj.ts_kcs_top) th.System.t_kcs_base;
  System.store t (th.System.t_struct + Kobj.ts_stack_base) th.System.t_stack_base;
  System.store t (th.System.t_struct + Kobj.ts_stack_limit) th.System.t_stack_top;
  System.store t (th.System.t_struct + Kobj.ts_current)
    th.System.t_home.System.proc_struct;
  System.store t (th.System.t_struct + Kobj.ts_errno) Types.err_none;
  ctx.Machine.fsbase <- th.System.t_home.System.tls_base;
  if ctx.Machine.depth > 0 then Machine.force_unwind_depth ctx ~depth:0;
  (* The host's invocation is itself a call frame: the function's final
     Ret (to the halt trampoline) pops it. *)
  Machine.enter_frame ctx;
  ctx.Machine.dcs_saved <- [];
  (* Reinstall the thread's private stack capability (c6): a fault may
     have abandoned a callee-stack capability there. *)
  ctx.Machine.cregs.(System.stack_creg) <-
    Some
      (System.stack_cap t ctx ~base:th.System.t_stack_base
         ~bytes:(th.System.t_stack_top - th.System.t_stack_base));
  let sp = th.System.t_stack_top - 8 in
  Memory.store_word t.System.machine.System.Machine.mem sp t.System.halt_addr;
  ctx.Machine.regs.(Dipc_hw.Isa.sp) <- sp;
  List.iteri (fun i v -> if i < 8 then ctx.Machine.regs.(i) <- v) args;
  Machine.force_transfer t.System.machine ctx ~target:fn

(* --- fault notification and KCS unwinding (Sec. 5.2.1) --- *)

(* Unwind the thread's KCS after a fault or kill: pop entries until one
   whose calling process is still alive, flag the error, and resume at
   that entry's proxy return path.  Returns [`Dead] when no living caller
   remains (the thread terminates). *)
let unwind t (th : System.thread) ~code =
  let ctx = th.System.t_ctx in
  let tstruct = th.System.t_struct in
  let base = System.load t (tstruct + Kobj.ts_kcs_base) in
  let top = ref (System.load t (tstruct + Kobj.ts_kcs_top)) in
  (* Process owning the frames we are currently looking at. *)
  let cur_struct = ref (System.load t (tstruct + Kobj.ts_current)) in
  let result = ref `Dead in
  let scanning = ref true in
  while !scanning do
    if !top <= base then scanning := false
    else begin
      let e = !top - Kobj.kcs_entry_bytes in
      let flags = System.load t (e + Kobj.ke_flags) in
      let caller_struct =
        if flags land Kobj.kf_proc_switched <> 0 then
          System.load t (e + Kobj.ke_saved_current)
        else !cur_struct
      in
      match Hashtbl.find_opt t.System.proc_of_struct caller_struct with
      | Some p when p.System.alive ->
          (* Resume the caller at this proxy's return path with an error
             flagged (like an errno value). *)
          t.System.fault_notices <- t.System.fault_notices + 1;
          System.store t (tstruct + Kobj.ts_kcs_top) !top;
          System.store t (tstruct + Kobj.ts_errno) code;
          let d = System.load t (e + Kobj.ke_depth) in
          Machine.force_unwind_depth ctx ~depth:(max 0 (min (d - 1) ctx.Machine.depth));
          Machine.force_transfer t.System.machine ctx
            ~target:(System.load t (e + Kobj.ke_proxy_ret));
          scanning := false;
          result := `Resumed
      | Some _ | None ->
          (* Dead caller: discard the entry, undoing any machine state it
             left pending. *)
          if flags land Kobj.kf_dcs_switched <> 0 then begin
            match ctx.Machine.dcs_saved with
            | _ :: rest -> ctx.Machine.dcs_saved <- rest
            | [] -> ()
          end;
          cur_struct := caller_struct;
          top := e
    end
  done;
  !result

(* Run to completion, applying fault notification: a fault in a callee is
   flagged to the nearest living calling process; a thread with no living
   caller dies with the fault. *)
let rec run t (th : System.thread) ?(fuel = 10_000_000) () =
  let ctx = th.System.t_ctx in
  match Machine.run ~fuel t.System.machine ctx with
  | () -> Ok ctx.Machine.regs.(0)
  | exception Fault.Fault f -> begin
      match unwind t th ~code:Types.err_callee_fault with
      | `Resumed -> run t th ~fuel ()
      | `Dead -> Error f
    end

(* Convenience: set up and run a call, returning r0. *)
let exec t th ~fn ~args =
  setup t th ~fn ~args;
  run t th ()

(* --- asynchronous calls (Sec. 5.4) ---

   "One-sided communication ... can be supported in the same way as other
   asynchronous calls by creating additional threads": the call runs on a
   fresh thread of the calling process and the caller collects the result
   later. *)

type async = { a_thread : System.thread; a_fn : int; a_args : int list }

let exec_async t proc ~fn ~args =
  let th = System.create_thread t proc in
  setup t th ~fn ~args;
  { a_thread = th; a_fn = fn; a_args = args }

let await t async = run t async.a_thread ()

(* A process kill while one of its frames is live on [th]: redirect the
   thread to the kernel, which unwinds exactly like a crash (Sec. 5.2.1). *)
let deliver_kill t th =
  match unwind t th ~code:Types.err_callee_killed with
  | `Resumed -> `Resumed
  | `Dead ->
      th.System.t_ctx.Machine.halted <- true;
      `Dead

(* --- cross-process call time-outs (Sec. 5.4) --- *)

(* Refresh a capability so it stays usable on the split-off thread: the
   kernel re-mints it with the same range and rights but a scope that does
   not depend on the original hardware thread. *)
let refresh_cap t (cap : Capability.t) =
  match cap.Capability.scope with
  | Capability.Asynchronous _ -> cap
  | Capability.Synchronous _ ->
      {
        cap with
        Capability.scope =
          Capability.Asynchronous
            { owner_tag = t.System.universal_tag; counter = 0; value = 0 };
      }

(* Split [th] at its topmost stack-switched KCS entry: the caller (the
   original thread) resumes at that proxy with a time-out error; the
   callee continues on a duplicated kernel thread structure and KCS, and
   will exit when it returns into the proxy that produced the split.
   Returns the callee-side thread.  Only legal when the timed-out entry
   used a separate stack (stack confidentiality), as the paper requires. *)
let split_timeout t (th : System.thread) =
  let ctx = th.System.t_ctx in
  let m = t.System.machine in
  let mem = m.System.Machine.mem in
  let tstruct = th.System.t_struct in
  let base = System.load t (tstruct + Kobj.ts_kcs_base) in
  let top = System.load t (tstruct + Kobj.ts_kcs_top) in
  (* Find the topmost stack-switched entry. *)
  let rec find e =
    if e < base then None
    else begin
      let flags = System.load t (e + Kobj.ke_flags) in
      if flags land Kobj.kf_stack_switched <> 0 then Some e
      else find (e - Kobj.kcs_entry_bytes)
    end
  in
  match find (top - Kobj.kcs_entry_bytes) with
  | None -> Error "split_timeout: no stack-switched entry (needs stack confidentiality)"
  | Some entry ->
      (* --- callee side: duplicate thread struct, KCS and cap save area --- *)
      let new_tstruct = System.kalloc t Kobj.thread_struct_bytes in
      let kcs_bytes = th.System.t_kcs_limit - th.System.t_kcs_base in
      let new_kcs = System.kalloc t kcs_bytes in
      let new_cap_save = System.kmap_page t ~cap_store:true () in
      (* Copy the thread struct. *)
      for off = 0 to (Kobj.thread_struct_bytes / 8) - 1 do
        System.store t (new_tstruct + (off * 8)) (System.load t (tstruct + (off * 8)))
      done;
      (* Copy the KCS at identical offsets. *)
      for off = 0 to (kcs_bytes / 8) - 1 do
        System.store t (new_kcs + (off * 8)) (System.load t (base + (off * 8)))
      done;
      (* Copy and refresh the capability save slots. *)
      let old_cap_save = System.load t (tstruct + Kobj.ts_cap_save) in
      let rec copy_caps off =
        if off < kcs_bytes then begin
          (match Memory.load_cap mem (old_cap_save + off) with
          | Some cap -> Memory.store_cap mem (new_cap_save + off) (refresh_cap t cap)
          | None -> ());
          copy_caps (off + Layout.cap_bytes)
        end
      in
      copy_caps 0;
      System.store t (new_tstruct + Kobj.ts_kcs_base) new_kcs;
      System.store t (new_tstruct + Kobj.ts_kcs_top) (new_kcs + (top - base));
      System.store t (new_tstruct + Kobj.ts_kcs_limit) (new_kcs + kcs_bytes);
      System.store t (new_tstruct + Kobj.ts_cap_save) new_cap_save;
      (* The split callee exits when it returns into this proxy. *)
      System.store t (new_kcs + (entry - base) + Kobj.ke_ret_addr) t.System.exit_addr;
      (* Clone the machine context. *)
      let new_ctx =
        Machine.new_ctx m ~pc:ctx.Machine.pc
          ~sp_value:ctx.Machine.regs.(Dipc_hw.Isa.sp)
      in
      Array.blit ctx.Machine.regs 0 new_ctx.Machine.regs 0 Dipc_hw.Isa.num_regs;
      Array.iteri
        (fun i c -> new_ctx.Machine.cregs.(i) <- Option.map (refresh_cap t) c)
        ctx.Machine.cregs;
      new_ctx.Machine.tp <- new_tstruct;
      new_ctx.Machine.fsbase <- ctx.Machine.fsbase;
      new_ctx.Machine.depth <- ctx.Machine.depth;
      new_ctx.Machine.epochs <- Array.copy ctx.Machine.epochs;
      new_ctx.Machine.dcs_saved <- ctx.Machine.dcs_saved;
      new_ctx.Machine.dcs.Dipc_hw.Dcs.slots <-
        Array.map (Option.map (refresh_cap t)) ctx.Machine.dcs.Dipc_hw.Dcs.slots;
      new_ctx.Machine.dcs.Dipc_hw.Dcs.base <- ctx.Machine.dcs.Dipc_hw.Dcs.base;
      new_ctx.Machine.dcs.Dipc_hw.Dcs.top <- ctx.Machine.dcs.Dipc_hw.Dcs.top;
      Machine.force_transfer m new_ctx ~target:ctx.Machine.pc;
      let callee_proc = System.current_process t th in
      let callee_th =
        {
          System.t_ctx = new_ctx;
          t_struct = new_tstruct;
          t_kcs_base = new_kcs;
          t_kcs_limit = new_kcs + kcs_bytes;
          t_home = callee_proc;
          t_stack_base = System.load t (new_tstruct + Kobj.ts_stack_base);
          t_stack_top = System.load t (new_tstruct + Kobj.ts_stack_limit);
          t_stacks = Hashtbl.copy th.System.t_stacks;
        }
      in
      Hashtbl.replace t.System.threads new_ctx.Machine.id callee_th;
      (* --- caller side: unwind the original thread to the split entry --- *)
      System.store t (tstruct + Kobj.ts_kcs_top) (entry + Kobj.kcs_entry_bytes);
      System.store t (tstruct + Kobj.ts_errno) Types.err_timeout;
      (* The caller-side state switches recorded above the split entry
         belong to the callee now. *)
      let d = System.load t (entry + Kobj.ke_depth) in
      Machine.force_unwind_depth ctx ~depth:(max 0 (min (d - 1) ctx.Machine.depth));
      Machine.force_transfer m ctx
        ~target:(System.load t (entry + Kobj.ke_proxy_ret));
      Ok callee_th
