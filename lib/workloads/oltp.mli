(** Multi-tier OLTP web workload (Secs. 2, 7.4; Figures 1 and 8): a
    closed queueing model of the DVDStore stack (Apache -> PHP ->
    MariaDB) on a 4-CPU machine, runnable in the paper's three
    configurations. *)

module Stats = Dipc_sim.Stats

type config =
  | Linux  (** per-tier processes + UNIX-socket service pools *)
  | Dipc  (** in-place dIPC crossings at the measured proxy cost *)
  | Ideal  (** unsafe single process, plain function calls *)

val config_name : config -> string

type db_mode = On_disk | In_memory

type params = {
  db_mode : db_mode;
  threads : int;  (** per component *)
  web_work : float;  (** user CPU per op per tier, ns *)
  php_work : float;
  db_work : float;
  web_php_roundtrips : int;
  php_db_roundtrips : int;
  disk_reads_per_op : float;
  disk_mean : float;
  warmup : float;  (** simulated ns before measurement *)
  duration : float;
  ncpus : int;
}

(** Calibrated defaults (Secs. 7.4-7.5: ~208 one-way crossings per op). *)
val default_params : db_mode:db_mode -> threads:int -> params

val crossings_per_op : params -> int

type result = {
  r_config : config;
  r_threads : int;
  r_ops : int;
  r_throughput_opm : float;  (** operations per minute *)
  r_latency_ns : Stats.summary;
  r_user_frac : float;
  r_kernel_frac : float;
  r_idle_frac : float;
}

(** Run one cell of the Figure 8 matrix.  [params_override] replaces the
    calibrated defaults (shorter durations for tests).  [seed] drives
    every RNG stream in the run (default 41, the calibrated legacy
    streams): equal seeds replay the identical event timeline.  [trace]
    installs a structured event trace sink on the run's engine.
    [inject] installs a seeded fault injector on the run's kernel.
    [drive_until] replaces the bounded event-loop driver (default
    [Engine.run_until]) — e.g. [Shard.run_windowed ~until] to route the
    warmup and measurement phases through the conservative coordinator;
    any driver with [run_until] semantics must yield identical
    results. *)
val run :
  ?params_override:params option ->
  ?seed:int ->
  ?trace:Dipc_sim.Trace.t ->
  ?inject:Dipc_sim.Inject.t ->
  ?drive_until:(Dipc_sim.Engine.t -> float -> unit) ->
  config:config ->
  db_mode:db_mode ->
  threads:int ->
  unit ->
  result
