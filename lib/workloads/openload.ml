(* Open / partly-open arrival workload generator (ROADMAP item 1).

   The Figure-8 reproduction is a *closed* queueing network: a handful
   of client fibers that immediately re-submit, so offered load is
   capped by the client count and tail latency never sees a queue grow.
   Production traffic is the opposite shape — an open stream of sessions
   arriving whether or not the system keeps up — and is judged on tail
   percentiles.

   Scaling to millions of users rules out one effect-fiber per client:
   sessions here are lightweight records (arrival time, remaining
   requests) flowing through a c-server FIFO queue, so a run costs a few
   heap operations and RNG draws per request and a million sessions
   simulate in well under a second.  The service station models the
   machine: [servers] simulated CPUs, each request holding one CPU for
   an exponentially distributed service demand whose mean is the
   *measured* cost of one IPC round trip of the primitive under test
   (the caller supplies it — microbench means for sem/pipe/l4/rpc, the
   machine-model call cost for dIPC).  Latency per request is the
   sojourn time (queue wait + service).

   Everything is deterministic in [seed]: each stochastic component
   (arrivals, service demands, session lengths, think times) draws from
   its own splitmix64 stream forked off the seed in a fixed order, and
   bounded integer draws use the rejection-sampled [Rng.int_unbiased]
   (modulo-bias-free; the legacy biased [Rng.int] is frozen for the
   pinned golden digests).  Runs never share mutable state, so sweeps
   shard across domains with byte-identical digests at any --jobs. *)

module Rng = Dipc_sim.Rng
module Heap = Dipc_sim.Heap
module Histogram = Dipc_sim.Histogram
module Shard = Dipc_sim.Shard

type arrival = Poisson | Bursty | Diurnal

let arrival_name = function
  | Poisson -> "poisson"
  | Bursty -> "bursty"
  | Diurnal -> "diurnal"

let arrival_of_string = function
  | "poisson" -> Some Poisson
  | "bursty" -> Some Bursty
  | "diurnal" -> Some Diurnal
  | _ -> None

type params = {
  seed : int;
  sessions : int;  (* client sessions admitted over the run *)
  servers : int;  (* simulated CPUs serving requests *)
  service_ns : float;  (* mean service demand per request *)
  offered_load : float;  (* rho = request rate * service_ns / servers *)
  arrival : arrival;
  max_extra_reqs : int;
      (* partly-open sessions: each issues 1 + uniform[0, max_extra_reqs]
         requests, with a think pause between consecutive ones *)
  think_ns : float;  (* mean think time within a session *)
}

let default_params ?(seed = 42) ?(sessions = 30_000) ?(servers = 4)
    ?(offered_load = 0.7) ?(arrival = Poisson) ?(max_extra_reqs = 2)
    ?(think_ns = 20_000.) ~service_ns () =
  {
    seed;
    sessions;
    servers;
    service_ns;
    offered_load;
    arrival;
    max_extra_reqs;
    think_ns;
  }

(* One admitted client: the session record the ROADMAP calls for.
   [s_ready] is when its next request enters the queue. *)
type session = { s_arrival : float; mutable s_reqs_left : int }

type result = {
  r_sessions : int;
  r_requests : int;
  r_latency : Histogram.t;  (* per-request sojourn time, ns *)
  r_makespan_ns : float;  (* completion time of the last request *)
  r_busy_ns : float;  (* total CPU-busy time across servers *)
  r_digest : string;
}

let utilization r ~servers =
  if r.r_makespan_ns <= 0. then 0.
  else r.r_busy_ns /. (float_of_int servers *. r.r_makespan_ns)

(* Achieved throughput in requests per simulated second. *)
let throughput_rps r =
  if r.r_makespan_ns <= 0. then 0.
  else float_of_int r.r_requests /. r.r_makespan_ns *. 1e9

(* --- arrival processes ---

   Each returns the next arrival instant after [t], drawing only from
   its own stream.  Rates are in arrivals per nanosecond. *)

(* MMPP on/off shape: bursts at 4x the base rate for a fifth of the
   time, a 0.25x trickle otherwise — the time-average rate is exactly
   the base rate (0.2 * 4 + 0.8 * 0.25 = 1).  Phase holding times are
   exponential, measured in base inter-arrival units. *)
let bursty_boost = 4.

let bursty_trickle = 0.25

let bursty_on_mean = 200. (* mean on-phase length, in 1/rate units *)

let bursty_off_mean = 800.

(* Diurnal shape: sinusoidal rate swing of +-80% around the base,
   sampled by thinning against the peak rate.  The period is set so a
   run of [sessions] arrivals spans about three day-night cycles. *)
let diurnal_amp = 0.8

let make_arrivals arrival ~rate ~sessions rng =
  match arrival with
  | Poisson ->
      let mean = 1. /. rate in
      fun t -> t +. Rng.exponential rng ~mean
  | Bursty ->
      let on = ref true in
      let phase_end = ref 0. in
      let phase_mean b = (if b then bursty_on_mean else bursty_off_mean) /. rate in
      let rec next t =
        if t >= !phase_end then begin
          (* Entering a fresh phase; the first call initialises it. *)
          if !phase_end > 0. then on := not !on;
          phase_end := t +. Rng.exponential rng ~mean:(phase_mean !on);
          next t
        end
        else begin
          let r = rate *. if !on then bursty_boost else bursty_trickle in
          let t' = t +. Rng.exponential rng ~mean:(1. /. r) in
          (* An exponential is memoryless: a draw crossing the phase
             boundary restarts from the boundary at the new rate. *)
          if t' <= !phase_end then t' else next !phase_end
        end
      in
      fun t -> next t
  | Diurnal ->
      let period = float_of_int sessions /. rate /. 3. in
      let rate_at t =
        rate *. (1. +. (diurnal_amp *. sin (2. *. Float.pi *. t /. period)))
      in
      let peak = rate *. (1. +. diurnal_amp) in
      let rec next t =
        let t' = t +. Rng.exponential rng ~mean:(1. /. peak) in
        if Rng.float rng < rate_at t' /. peak then t' else next t'
      in
      fun t -> next t

(* --- deterministic digest ---

   FNV-1a over the integer run outcome: request/session counts, the
   latency histogram's bucket digest and the makespan's IEEE-754 bits.
   Byte-identical digests mean an identical simulated timeline. *)

let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let digest_of ~sessions ~requests ~hist ~makespan =
  let h = ref fnv_offset in
  let fold64 v = h := Int64.mul (Int64.logxor !h v) fnv_prime in
  let fold v = fold64 (Int64.of_int v) in
  fold sessions;
  fold requests;
  fold64 (Int64.bits_of_float makespan);
  fold64 (Int64.of_string ("0x" ^ Histogram.digest_hex hist));
  Printf.sprintf "%016Lx" !h

(* --- the generator/queue loop --- *)

let run p =
  if p.sessions <= 0 then invalid_arg "Openload.run: sessions must be positive";
  if p.servers <= 0 then invalid_arg "Openload.run: servers must be positive";
  if p.offered_load <= 0. then
    invalid_arg "Openload.run: offered_load must be positive";
  let root = Rng.create ~seed:p.seed in
  (* Fixed fork order: the stream assignment is part of the digest
     contract. *)
  let rng_arrival = Rng.split root in
  let rng_service = Rng.split root in
  let rng_len = Rng.split root in
  let rng_think = Rng.split root in
  let mean_reqs = 1. +. (float_of_int p.max_extra_reqs /. 2.) in
  (* offered_load = request_rate * service / servers, and each session
     contributes [mean_reqs] requests. *)
  let request_rate = p.offered_load *. float_of_int p.servers /. p.service_ns in
  let session_rate = request_rate /. mean_reqs in
  let next_arrival =
    make_arrivals p.arrival ~rate:session_rate ~sessions:p.sessions rng_arrival
  in
  let session_len () =
    if p.max_extra_reqs = 0 then 1
    else 1 + Rng.int_unbiased rng_len (p.max_extra_reqs + 1)
  in
  let queue : session Heap.t = Heap.create () in
  let free = Array.make p.servers 0. in
  let hist = Histogram.create () in
  let requests = ref 0 in
  let busy = ref 0. in
  let makespan = ref 0. in
  let admitted = ref 0 in
  let next_arr = ref (next_arrival 0.) in
  (* Serve the earliest-ready request on the earliest-free server. *)
  let serve ready sess =
    let srv = ref 0 in
    for i = 1 to p.servers - 1 do
      if free.(i) < free.(!srv) then srv := i
    done;
    let start = if ready > free.(!srv) then ready else free.(!srv) in
    let svc = Rng.exponential rng_service ~mean:p.service_ns in
    let fin = start +. svc in
    free.(!srv) <- fin;
    busy := !busy +. svc;
    if fin > !makespan then makespan := fin;
    Histogram.add hist (fin -. ready);
    incr requests;
    sess.s_reqs_left <- sess.s_reqs_left - 1;
    if sess.s_reqs_left > 0 then
      Heap.push queue ~time:(fin +. Rng.exponential rng_think ~mean:p.think_ns)
        sess
  in
  while !admitted < p.sessions || not (Heap.is_empty queue) do
    let arr_t = if !admitted < p.sessions then !next_arr else infinity in
    match Heap.peek_time queue with
    | Some ready when ready <= arr_t ->
        let sess = Heap.pop_min queue in
        serve ready sess
    | _ ->
        (* Admit the next session; its first request is ready on
           arrival.  Draw order (length, then next arrival) is fixed. *)
        let sess = { s_arrival = arr_t; s_reqs_left = session_len () } in
        incr admitted;
        Heap.push queue ~time:sess.s_arrival sess;
        next_arr := next_arrival arr_t
  done;
  {
    r_sessions = p.sessions;
    r_requests = !requests;
    r_latency = hist;
    r_makespan_ns = !makespan;
    r_busy_ns = !busy;
    r_digest =
      digest_of ~sessions:p.sessions ~requests:!requests ~hist
        ~makespan:!makespan;
  }

(* --- sharded execution (ROADMAP item 2) ---

   [run] above is the serial reference; [run_sharded] decomposes the
   same simulation along its only dependence cut into two shards under
   the conservative coordinator (DESIGN.md Sec. 14):

     shard 0, the admission source: owns the arrival and session-length
       streams.  Its messages are admissions timestamped at the arrival
       instant, so its lookahead is 0 and the window bound is its next
       undrawn arrival.  Nobody ever sends to it, so it is input-free
       and may legally run a whole batch of admissions *ahead* of the
       window — that pipelining is where the wall-clock win comes from.

     shard 1, the service station: owns the ready-queue heap, the
       free-server array, the service and think streams and the
       histogram.  It consumes admissions at barriers and never emits,
       so its lookahead is infinite.

   Determinism: each stochastic stream is drawn by exactly one shard in
   the same per-stream order as the serial loop (arrival/length in
   admission order, service/think in heap-pop order), and the station
   consumes its inbox — which barrier-merge delivers in arrival order —
   through a cursor interleaved with the heap under the serial loop's
   own [ready <= arr_t] comparison, admitting each arrival into the
   heap exactly when the serial loop would.  The station therefore
   performs the *identical* sequence of heap pushes and pops (same
   seqnos, same tie resolutions) as [run]: digest equality is by
   construction, not merely almost-sure, and the heap stays at the
   serial run's in-flight size instead of swallowing whole batches
   (pre-pushing the batch was measured to triple the heap depth and
   double the run's wall clock).  The gates pin it: test_shard.ml, the
   pinned open_* cells, CI's --shards 1 vs 2 byte-diff.

   The model has exactly one cut, so [shards] above 2 cap at 2: extra
   shards would own nothing.  (The arrival process is a sequential
   recurrence — it cannot split — and moving the histogram out of the
   station would ship one message per request, costing more than the
   bucketing it offloads.) *)

let batch_sessions = 8192

let run_sharded ?(shards = 2) ?par ?jobs p =
  (* The pipeline only pays on a machine with a second core to overlap
     admission with service; on a single-core host the default runs the
     same sharded protocol on one domain — byte-identical either way,
     [par] overrides in both directions. *)
  let par =
    match par with
    | Some b -> b
    | None -> Dipc_sim.Parallel.default_jobs () > 1
  in
  if shards <= 1 then run p
  else begin
    if p.sessions <= 0 then
      invalid_arg "Openload.run_sharded: sessions must be positive";
    if p.servers <= 0 then
      invalid_arg "Openload.run_sharded: servers must be positive";
    if p.offered_load <= 0. then
      invalid_arg "Openload.run_sharded: offered_load must be positive";
    let root = Rng.create ~seed:p.seed in
    (* Same fixed fork order as [run]: the stream assignment is part of
       the digest contract. *)
    let rng_arrival = Rng.split root in
    let rng_service = Rng.split root in
    let rng_len = Rng.split root in
    let rng_think = Rng.split root in
    let mean_reqs = 1. +. (float_of_int p.max_extra_reqs /. 2.) in
    let request_rate =
      p.offered_load *. float_of_int p.servers /. p.service_ns
    in
    let session_rate = request_rate /. mean_reqs in
    let next_arrival =
      make_arrivals p.arrival ~rate:session_rate ~sessions:p.sessions
        rng_arrival
    in
    let session_len () =
      if p.max_extra_reqs = 0 then 1
      else 1 + Rng.int_unbiased rng_len (p.max_extra_reqs + 1)
    in
    (* shard 0: admission source *)
    let admitted = ref 0 in
    let next_arr = ref (next_arrival 0.) in
    let source =
      {
        Shard.st_next =
          (fun () -> if !admitted < p.sessions then !next_arr else infinity);
        st_lookahead = 0.;
        st_step =
          (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto:_ ~emit ->
            let n0 = !admitted in
            while !admitted < p.sessions && !admitted - n0 < batch_sessions do
              let arr_t = !next_arr in
              (* Draw order (length, then next arrival) as in [run].  The
                 payload is just the session length — an immediate int —
                 so the message path allocates nothing and the station
                 builds its session record in its own minor heap exactly
                 as the serial loop does (shipping the record itself was
                 measured to promote every session to the major heap). *)
              let len = session_len () in
              incr admitted;
              emit ~dst:1 ~at:arr_t len;
              next_arr := next_arrival arr_t
            done;
            !admitted - n0);
      }
    in
    (* shard 1: service station *)
    let queue : session Heap.t = Heap.create ~capacity:256 () in
    let free = Array.make p.servers 0. in
    let hist = Histogram.create () in
    let requests = ref 0 in
    let busy = ref 0. in
    let makespan = ref 0. in
    let serve ready sess =
      let srv = ref 0 in
      for i = 1 to p.servers - 1 do
        if free.(i) < free.(!srv) then srv := i
      done;
      let start = if ready > free.(!srv) then ready else free.(!srv) in
      let svc = Rng.exponential rng_service ~mean:p.service_ns in
      let fin = start +. svc in
      free.(!srv) <- fin;
      busy := !busy +. svc;
      if fin > !makespan then makespan := fin;
      Histogram.add hist (fin -. ready);
      incr requests;
      sess.s_reqs_left <- sess.s_reqs_left - 1;
      if sess.s_reqs_left > 0 then
        Heap.push queue
          ~time:(fin +. Rng.exponential rng_think ~mean:p.think_ns)
          sess
    in
    let station =
      {
        Shard.st_next =
          (fun () ->
            match Heap.peek_time queue with
            | Some ready -> ready
            | None -> infinity);
        st_lookahead = infinity;
        st_step =
          (fun ~inbox_at ~inbox_pay ~inbox_len ~upto ~emit:_ ->
            (* The serial generator/queue loop verbatim, with the inbox
               cursor standing in for lazy admission: an arrival enters
               the heap exactly when [run] would admit it, so the push
               and pop sequences (and their tie-breaking seqnos) are
               identical to the serial run's. *)
            let cursor = ref 0 in
            let progressed = ref 0 in
            let continue = ref true in
            while !continue do
              let arr_t =
                if !cursor < inbox_len then inbox_at.(!cursor) else infinity
              in
              match Heap.peek_time queue with
              | Some ready when ready <= arr_t ->
                  if ready > upto then continue := false
                  else begin
                    serve ready (Heap.pop_min queue);
                    incr progressed
                  end
              | _ ->
                  if !cursor >= inbox_len || arr_t > upto then
                    continue := false
                  else begin
                    let sess =
                      {
                        s_arrival = inbox_at.(!cursor);
                        s_reqs_left = inbox_pay.(!cursor);
                      }
                    in
                    incr cursor;
                    Heap.push queue ~time:sess.s_arrival sess;
                    incr progressed
                  end
            done;
            (* The admission source's zero lookahead gates the window at
               its next undrawn arrival, so every delivered arrival lies
               inside the window; bank any leftovers all the same to
               keep the stepper total for other bound derivations. *)
            while !cursor < inbox_len do
              let sess =
                {
                  s_arrival = inbox_at.(!cursor);
                  s_reqs_left = inbox_pay.(!cursor);
                }
              in
              incr cursor;
              Heap.push queue ~time:sess.s_arrival sess;
              incr progressed
            done;
            !progressed);
      }
    in
    Shard.run ~par ?jobs (Shard.create [| source; station |]);
    {
      r_sessions = p.sessions;
      r_requests = !requests;
      r_latency = hist;
      r_makespan_ns = !makespan;
      r_busy_ns = !busy;
      r_digest =
        digest_of ~sessions:p.sessions ~requests:!requests ~hist
          ~makespan:!makespan;
    }
  end

(* --- saturation knee ---

   Given (offered_load, p99) pairs in ascending load order, the knee is
   the first load whose p99 blows past [factor] times the p99 at the
   lightest load — self-calibrating against the primitive's unloaded
   tail (an exponential service's p99 is ~4.6x its mean even with no
   queueing), so one threshold works for 1 us semaphores and 250 ns
   dIPC calls alike. *)

let knee_factor = 3.

let saturation_knee points =
  match points with
  | [] -> None
  | (_, base_p99) :: _ ->
      List.find_map
        (fun (load, p99) ->
          if p99 >= knee_factor *. base_p99 then Some load else None)
        points
