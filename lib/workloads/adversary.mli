(** Adversarial scenario corpus: hostile-domain programs attacking the
    isolation mechanisms (forged/replayed capabilities, revocation
    races, proxy misuse, out-of-domain accesses, DCS abuse), with
    per-backend adapters and backend-neutral outcome digests.

    Every scenario pins the exact deterministic fault — kind AND
    faulting pc — the strict machine must raise; the cross-backend
    subset pins the same canonical (kind, pc) on all three isolation
    backends. *)

module Fault = Dipc_hw.Fault

type backend = Codoms | Minicheri_b | Minimmp_b

val all_backends : backend list

val backend_name : backend -> string

type attack =
  | Benign  (** legal cross-domain round trip: the clean-load baseline *)
  | Oob_load  (** load from a domain nothing grants *)
  | Oob_store  (** store to a domain nothing grants *)
  | Bad_crossing  (** jump into a domain without call rights *)
  | Misaligned_entry  (** call-permission entry at a misaligned address *)
  | Return_underflow  (** pop a crossing that never happened *)
  | Forged_cap  (** mint/replay a capability without authority *)
  | Use_after_revoke  (** exercise authority after its revocation *)
  | Exec_jump  (** jump to a readable but non-executable page *)
  | Overderive  (** CapAplDerive beyond the domain's APL rights *)
  | Priv_escalation  (** privileged instruction, unprivileged page *)
  | Cap_storage_write  (** CapStore to a non-cap-storage page *)
  | Dcs_overflow  (** push past the DCS capacity *)
  | Revoke_inflight  (** APL revocation storm racing warm crossings *)
  | Retcap_leak  (** use a callee-frame capability after its frame died *)

val attack_name : attack -> string

(** Attacks expressible on all three backends (includes [Benign]). *)
val cross_attacks : attack list

(** CODOMs-specific attacks. *)
val machine_attacks : attack list

(** Expected (fault kind, canonical faulting pc) under the [Strict]
    posture; [None] for [Benign].  Compare via {!Fault.kind_code} —
    payload strings are representative only. *)
val expect : attack -> (Fault.kind * int) option

type outcome =
  | Ran of int  (** completed; payload = posture-downgraded denials *)
  | Faulted of Fault.t
  | Refused of string  (** API-level denial before any code ran *)

(** Run [attacks] in order.  The CODOMs sweep shares ONE machine across
    the sequence, rewriting the attack program in place and
    revoking/re-granting APL entries between scenarios (hostile to
    stale block translations); the miniatures build fresh model state
    per attack.  [posture] overrides the enforcement posture of the
    machine/cpu built for the sweep (the global default otherwise) —
    per-sweep state, safe under parallel runner domains.  Returns
    outcomes and total modelled cost (ns). *)
val sweep :
  ?block:bool ->
  ?posture:Fault.posture ->
  backend ->
  attack list ->
  outcome list * float

val run_one : ?block:bool -> ?posture:Fault.posture -> backend -> attack -> outcome

(** Fold outcomes into a replay digest over backend-neutral facts only
    (fault kind code + faulting pc, or audited-denial count): equal
    digests across backends mean the architectural outcomes agree. *)
val digest_outcomes : outcome list -> string

type scenario = {
  s_attack : attack;
  s_name : string;
  s_backends : backend list;
  s_expect : (Fault.kind * int) option;
}

(** The directed corpus, cross-backend attacks first. *)
val corpus : scenario list

(** Deterministic LCG-seeded attack schedule over {!cross_attacks}. *)
val random_attacks : seed:int -> n:int -> attack list

(** Proxy re-entry: discover the proxy entry from the caller stub, then
    call past it into the proxy body.  Returns the outcome and the pc
    the fault must carry ([Not_entry_point] under [Strict]). *)
val proxy_reentry : ?block:bool -> unit -> outcome * int

(** Wrong-signature import: resolution must be refused at proxy-request
    time (P4) — returns [Refused _] without running any code. *)
val wrong_signature : unit -> outcome
