(** Micro-benchmark harness for the IPC primitives of Figures 2, 5 and 6:
    each primitive runs as a real blocking protocol between a client and
    a server thread on the simulated kernel. *)

module Breakdown = Dipc_sim.Breakdown

type result = {
  mean_ns : float;  (** per synchronous round trip *)
  per_cpu : Breakdown.t array;  (** per round trip, indexed by CPU *)
  total_breakdown : Breakdown.t;
  lifetime : Breakdown.t;
      (** whole-run kernel totals including warmup, never reset — the
          conservation reference for {!Dipc_sim.Checker.finish} *)
}

type primitive = Sem | Pipe | L4 | Local_rpc | Tcp_rpc_prim | User_rpc_prim

val primitive_name : primitive -> string

(** Measure [iters] warm round trips with a [bytes]-sized argument;
    [same_cpu] pins both sides to CPU 0, otherwise they run on CPUs 0
    and 1.  [trace] installs a structured event trace sink on the run's
    engine (observational only: results are identical with and without).
    [inject] installs a seeded fault injector on the run's kernel.
    [drive] replaces the event-loop driver (default [Engine.run]) —
    e.g. [Shard.run_windowed] to route the run through the conservative
    coordinator; any driver that drains the engine must yield identical
    results. *)
val run :
  ?bytes:int ->
  ?warmup:int ->
  ?iters:int ->
  ?trace:Dipc_sim.Trace.t ->
  ?inject:Dipc_sim.Inject.t ->
  ?drive:(Dipc_sim.Engine.t -> unit) ->
  same_cpu:bool ->
  primitive ->
  result

val function_call_ns : float

val syscall_ns : float

(** Figure 6 baseline: produce + consume the payload through a pointer. *)
val baseline_payload_ns : int -> float
