(* Micro-benchmark harness for the IPC primitives of Figures 2, 5 and 6.

   Each primitive runs as a real blocking protocol between a client and a
   server thread on the simulated kernel; we measure warm synchronous
   round trips and collect the per-CPU cost breakdown in the paper's
   seven categories. *)

module Engine = Dipc_sim.Engine
module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Memcost = Dipc_sim.Memcost
module Kernel = Dipc_kernel.Kernel
module Sem_channel = Dipc_ipc.Sem_channel
module Pipe_channel = Dipc_ipc.Pipe_channel
module L4_ipc = Dipc_ipc.L4_ipc
module Rpc = Dipc_ipc.Rpc
module Tcp_rpc = Dipc_ipc.Tcp_rpc
module User_rpc = Dipc_ipc.User_rpc

type result = {
  mean_ns : float; (* per round trip *)
  per_cpu : Breakdown.t array; (* per round trip, indexed by CPU *)
  total_breakdown : Breakdown.t;
  lifetime : Breakdown.t; (* whole-run totals incl. warmup, never reset *)
}

type primitive = Sem | Pipe | L4 | Local_rpc | Tcp_rpc_prim | User_rpc_prim

let primitive_name = function
  | Sem -> "Sem."
  | Pipe -> "Pipe"
  | L4 -> "L4"
  | Local_rpc -> "Local RPC"
  | Tcp_rpc_prim -> "TCP RPC"
  | User_rpc_prim -> "dIPC User RPC"

(* Consumer-producer payload work shared by every primitive: the caller
   composes the argument, the callee consumes it (the "baseline function
   call" of Fig. 6 does exactly this with a pointer). *)
let produce kern th bytes =
  Kernel.consume kern th Breakdown.User_code (Memcost.write_buffer bytes)

let consume_payload kern th bytes =
  Kernel.consume kern th Breakdown.User_code (Memcost.read_buffer bytes)

(* Run [iters] warm round trips of [primitive] and return per-round-trip
   means.  [same_cpu] pins client and server to CPU 0, otherwise they sit
   on CPUs 0 and 1. *)
let run ?(bytes = 1) ?(warmup = 20) ?(iters = 200) ?trace ?inject
    ?(drive = Engine.run) ~same_cpu primitive =
  let engine = Engine.create () in
  (match trace with Some tr -> Engine.set_trace engine tr | None -> ());
  let kern = Kernel.create engine ~ncpus:2 in
  (match inject with Some inj -> Kernel.set_inject kern (Some inj) | None -> ());
  let client_proc = Kernel.create_process kern ~name:"client" in
  let server_proc = Kernel.create_process kern ~name:"server" in
  let server_cpu = if same_cpu then 0 else 1 in
  let measured = ref 0. in
  let started = ref 0. in
  let iteration = ref 0 in
  let total = warmup + iters in
  (* Per-primitive client call and server loop. *)
  let client_call, spawn_server =
    match primitive with
    | Sem ->
        let ch = Sem_channel.create kern in
        (* The channel itself charges the shared-buffer population (the
           producer's write) and the consumer's read. *)
        ( (fun th -> Sem_channel.call ch th ~bytes),
          fun () ->
            ignore
              (Kernel.spawn ~cpu:server_cpu kern server_proc ~name:"server"
                 (fun th ->
                   for _ = 1 to total do
                     Sem_channel.serve ch th (fun _ -> ())
                   done)) )
    | Pipe ->
        let ch = Pipe_channel.create kern in
        ( (fun th -> Pipe_channel.call ch th ~bytes),
          fun () ->
            ignore
              (Kernel.spawn ~cpu:server_cpu kern server_proc ~name:"server"
                 (fun th ->
                   for _ = 1 to total do
                     Pipe_channel.serve ch th ~bytes (fun _ -> ())
                   done)) )
    | L4 ->
        let ch = L4_ipc.create kern in
        ( (fun th ->
            produce kern th bytes;
            L4_ipc.call ch th ~bytes),
          fun () ->
            ignore
              (Kernel.spawn ~cpu:server_cpu kern server_proc ~name:"server"
                 (fun th ->
                   let b = ref (L4_ipc.wait ch th) in
                   for _ = 2 to total do
                     consume_payload kern th !b;
                     b := L4_ipc.reply_and_wait ch th
                   done;
                   consume_payload kern th !b;
                   ignore (L4_ipc.reply_and_wait ch th))) )
    | Local_rpc ->
        let ch = Rpc.create kern in
        let arg = String.make bytes 'x' in
        ( (fun th -> ignore (Rpc.call ch th ~proc_num:7 ~arg)),
          fun () ->
            ignore
              (Kernel.spawn ~cpu:server_cpu kern server_proc ~name:"server"
                 (fun th ->
                   for _ = 1 to total do
                     Rpc.serve_one ch th (fun ~proc_num:_ ~arg ->
                         consume_payload kern th (String.length arg);
                         "ok")
                   done)) )
    | Tcp_rpc_prim ->
        let ch = Tcp_rpc.create kern in
        let arg = String.make bytes 'x' in
        ( (fun th -> ignore (Tcp_rpc.call ch th ~proc_num:7 ~arg)),
          fun () ->
            ignore
              (Kernel.spawn ~cpu:server_cpu kern server_proc ~name:"server"
                 (fun th ->
                   for _ = 1 to total do
                     Tcp_rpc.serve_one ch th (fun ~proc_num:_ ~arg ->
                         consume_payload kern th (String.length arg);
                         "ok")
                   done)) )
    | User_rpc_prim ->
        let ch = User_rpc.create kern in
        ( (fun th -> User_rpc.call ch th ~bytes),
          fun () ->
            ignore
              (Kernel.spawn ~cpu:server_cpu kern server_proc ~name:"server"
                 (fun th ->
                   for _ = 1 to total do
                     User_rpc.serve ch th (fun b -> consume_payload kern th b)
                   done)) )
  in
  spawn_server ();
  (* Start the client once the server is parked: on real hardware the
     sides never start in lockstep, and the first sleep installs the
     self-sustaining blocking regime the paper measures. *)
  ignore
    (Kernel.spawn ~cpu:0 ~at:(Some 100_000.) kern client_proc ~name:"client"
       (fun th ->
         for _ = 1 to total do
           incr iteration;
           if !iteration = warmup + 1 then begin
             Kernel.reset_stats kern;
             started := Engine.now engine
           end;
           client_call th
         done;
         measured := Engine.now engine -. !started));
  drive engine;
  let n = float_of_int iters in
  let per_cpu =
    Array.init (Kernel.ncpus kern) (fun i ->
        Breakdown.scale (Breakdown.to_figure2 (Kernel.cpu_breakdown kern i)) (1. /. n))
  in
  let total_breakdown = Breakdown.create () in
  Array.iter (fun b -> Breakdown.merge ~into:total_breakdown b) per_cpu;
  {
    mean_ns = !measured /. n;
    per_cpu;
    total_breakdown;
    lifetime = Breakdown.copy (Kernel.lifetime_breakdown kern);
  }

(* The empty-syscall and function-call baselines of Figures 2 and 5. *)
let function_call_ns = Costs.function_call

let syscall_ns = Costs.syscall_total

(* Fig. 6 baseline: produce + consume through a pointer. *)
let baseline_payload_ns bytes =
  Memcost.write_buffer bytes +. Memcost.read_buffer bytes +. Costs.function_call
