(** Open / partly-open arrival workload generator (ROADMAP item 1):
    millions of simulated client sessions as lightweight records flowing
    through a c-server FIFO queue, with per-request sojourn latency
    recorded in an HDR histogram.

    Deterministic in the seed: every stochastic component draws from its
    own splitmix64 stream, and bounded integer draws use the unbiased
    rejection sampler.  Independent runs share no state, so sweeps shard
    across domains with byte-identical digests at any job count. *)

module Histogram = Dipc_sim.Histogram

type arrival =
  | Poisson  (** memoryless arrivals at the offered rate *)
  | Bursty  (** MMPP on/off: 4x-rate bursts a fifth of the time *)
  | Diurnal  (** sinusoidal +-80% rate swing, ~3 cycles per run *)

val arrival_name : arrival -> string

val arrival_of_string : string -> arrival option

type params = {
  seed : int;
  sessions : int;  (** client sessions admitted over the run *)
  servers : int;  (** simulated CPUs serving requests *)
  service_ns : float;  (** mean service demand per request *)
  offered_load : float;  (** rho = request rate * service_ns / servers *)
  arrival : arrival;
  max_extra_reqs : int;
      (** partly-open: each session issues 1 + uniform[0, max_extra_reqs]
          requests with think pauses between them *)
  think_ns : float;  (** mean think time within a session *)
}

val default_params :
  ?seed:int ->
  ?sessions:int ->
  ?servers:int ->
  ?offered_load:float ->
  ?arrival:arrival ->
  ?max_extra_reqs:int ->
  ?think_ns:float ->
  service_ns:float ->
  unit ->
  params

type result = {
  r_sessions : int;
  r_requests : int;
  r_latency : Histogram.t;  (** per-request sojourn (wait + service), ns *)
  r_makespan_ns : float;  (** completion time of the last request *)
  r_busy_ns : float;  (** total CPU-busy time across servers *)
  r_digest : string;  (** deterministic outcome digest *)
}

(** Simulate the full session stream.  Cost is a few heap operations and
    RNG draws per request: a million sessions complete in well under a
    host second. *)
val run : params -> result

(** The same simulation decomposed into an admission-source shard and a
    service-station shard under the conservative coordinator (DESIGN.md
    Sec. 14), pipelined across OCaml domains when [par] (default: only
    on a machine with more than one recommended domain — the overlap
    cannot pay on a single core).  Byte-identical result and digest to
    {!run} either way; [shards <= 1] *is* {!run}, and counts above 2
    cap at the model's single dependence cut. *)
val run_sharded : ?shards:int -> ?par:bool -> ?jobs:int -> params -> result

val utilization : result -> servers:int -> float

(** Achieved throughput in requests per simulated second. *)
val throughput_rps : result -> float

(** First offered load whose p99 is at least 3x the p99 at the lightest
    load, over (load, p99) pairs in ascending load order — the
    saturation knee of a load sweep. *)
val saturation_knee : (float * float) list -> float option
