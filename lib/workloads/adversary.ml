(* Adversarial scenario corpus: hostile-domain programs attacking the
   isolation mechanisms, with per-backend adapters and deterministic
   outcome digests.

   Every attack is a small deterministic program (or API-call sequence)
   that tries to break an isolation invariant: forging or replaying
   capabilities, racing APL revocations against in-flight crossings,
   misusing proxies (re-entry, wrong-signature entry, return-capability
   leakage), touching out-of-domain memory, and over/underflowing the
   DCS.  Each scenario pins the precise fault the strict machine must
   raise — kind AND faulting pc — and the cross-backend subset pins the
   *same* canonical (kind, pc) on the CODOMs machine, the CHERI
   miniature and the MMP miniature, so the cost-of-isolation comparison
   measures mechanisms, not modelling accidents.

   Outcomes fold into a backend-neutral digest (kind code + faulting pc
   per scenario, via a fresh Trace accumulator): under one posture the
   three backends must produce byte-identical digests over the
   cross-backend subset, and the CODOMs sweep must digest identically
   with the translated-block cache on and off.  The CODOMs sweep runs
   all attacks on ONE shared machine, rewriting the attack program in
   place between scenarios and revoking/re-granting APL entries as it
   goes — deliberately hostile to stale block translations. *)

module Machine = Dipc_hw.Machine
module Memory = Dipc_hw.Memory
module Page_table = Dipc_hw.Page_table
module Apl = Dipc_hw.Apl
module Isa = Dipc_hw.Isa
module Layout = Dipc_hw.Layout
module Perm = Dipc_hw.Perm
module Fault = Dipc_hw.Fault
module Minicheri = Dipc_hw.Minicheri
module Minimmp = Dipc_hw.Minimmp
module Trace = Dipc_sim.Trace
module Annot = Dipc_core.Annot
module Call = Dipc_core.Call
module Resolver = Dipc_core.Resolver
module Scenario = Dipc_core.Scenario
module System = Dipc_core.System
module Types = Dipc_core.Types

type backend = Codoms | Minicheri_b | Minimmp_b

let all_backends = [ Codoms; Minicheri_b; Minimmp_b ]

let backend_name = function
  | Codoms -> "codoms"
  | Minicheri_b -> "minicheri"
  | Minimmp_b -> "minimmp"

(* The attack corpus.  The first group is expressible on all three
   backends (same canonical fault kind and pc); the second is specific
   to the CODOMs machine's mechanisms. *)
type attack =
  | Benign (* legal cross-domain round trip: the clean-load baseline *)
  | Oob_load (* load from a domain nothing grants *)
  | Oob_store (* store to a domain nothing grants *)
  | Bad_crossing (* jump into a domain without call rights *)
  | Misaligned_entry (* call-permission entry at a misaligned address *)
  | Return_underflow (* pop a crossing that never happened *)
  | Forged_cap (* mint/replay a capability without authority *)
  | Use_after_revoke (* exercise authority after its revocation *)
  (* CODOMs-only *)
  | Exec_jump (* jump to a readable but non-executable page *)
  | Overderive (* CapAplDerive beyond the domain's APL rights *)
  | Priv_escalation (* privileged instruction from an unprivileged page *)
  | Cap_storage_write (* CapStore to a regular (non-cap-storage) page *)
  | Dcs_overflow (* push past the DCS capacity *)
  | Revoke_inflight (* APL revocation storm racing warm crossings *)
  | Retcap_leak (* use a callee-frame capability after its frame died *)

let attack_name = function
  | Benign -> "benign"
  | Oob_load -> "oob-load"
  | Oob_store -> "oob-store"
  | Bad_crossing -> "bad-crossing"
  | Misaligned_entry -> "misaligned-entry"
  | Return_underflow -> "return-underflow"
  | Forged_cap -> "forged-cap"
  | Use_after_revoke -> "use-after-revoke"
  | Exec_jump -> "exec-jump"
  | Overderive -> "overderive"
  | Priv_escalation -> "priv-escalation"
  | Cap_storage_write -> "cap-storage-write"
  | Dcs_overflow -> "dcs-overflow"
  | Revoke_inflight -> "revoke-inflight"
  | Retcap_leak -> "retcap-leak"

let cross_attacks =
  [
    Benign;
    Oob_load;
    Oob_store;
    Bad_crossing;
    Misaligned_entry;
    Return_underflow;
    Forged_cap;
    Use_after_revoke;
  ]

let machine_attacks =
  [
    Exec_jump;
    Overderive;
    Priv_escalation;
    Cap_storage_write;
    Dcs_overflow;
    Revoke_inflight;
    Retcap_leak;
  ]

type outcome =
  | Ran of int (* completed; payload = posture-downgraded denial count *)
  | Faulted of Fault.t
  | Refused of string (* API-level denial before any code ran *)

(* --- the shared CODOMs universe --- *)

(* Fixed addresses (mirroring the block-cache test universe, plus two
   hostile pages).  All attack programs load at [code0], so the faulting
   pcs below are stable canonical constants. *)
let code0 = 0x100000 (* 2 executable pages, tag a *)

let callee = 0x110000 (* tag b: Addi; Ret at the aligned entry *)

let callee2 = callee + Layout.entry_align (* tag b: derive-and-return *)

let hermit = 0x120000 (* executable page of tag d: no APL reaches it *)

let data = 0x200000 (* tag c; a owns it *)

let secret = 0x210000 (* data page of tag d: no APL reaches it *)

let stack = 0x300000 (* tag a *)

let ib = Isa.instr_bytes

(* Expected (fault kind, canonical faulting pc) under the Strict
   posture; [None] for the benign baseline.  Payloads of Cap_storage /
   Dcs_bounds / No_permission are representative — assertions compare
   [Fault.kind_code], which drops them. *)
let expect = function
  | Benign -> None
  | Oob_load -> Some (Fault.No_permission Perm.Read, code0 + ib)
  | Oob_store -> Some (Fault.No_permission Perm.Write, code0 + ib)
  | Bad_crossing -> Some (Fault.No_permission Perm.Call, hermit)
  | Misaligned_entry -> Some (Fault.Not_entry_point, callee + ib)
  | Return_underflow -> Some (Fault.Dcs_bounds "underflow", code0)
  | Forged_cap -> Some (Fault.Cap_invalid, code0 + (6 * ib))
  | Use_after_revoke -> Some (Fault.No_permission Perm.Read, code0 + (2 * ib))
  | Exec_jump -> Some (Fault.Exec_violation, data)
  | Overderive -> Some (Fault.No_permission Perm.Read, code0 + (2 * ib))
  | Priv_escalation -> Some (Fault.Privilege_required, code0)
  | Cap_storage_write -> Some (Fault.Cap_storage "regular page", code0 + (3 * ib))
  | Dcs_overflow -> Some (Fault.Dcs_bounds "overflow", code0 + (5 * ib))
  | Revoke_inflight -> Some (Fault.No_permission Perm.Call, callee)
  | Retcap_leak -> Some (Fault.Cap_invalid, code0 + (3 * ib))

(* Syscall numbers the attack programs use to drive the "kernel" side of
   a race from inside the program. *)
let sys_revoke_data = 1 (* revoke a -> c mid-run *)

let sys_storm = 2 (* revoke + re-grant a -> b (APL generation churn) *)

let sys_revoke_callee = 3 (* revoke a -> b for good *)

(* The attack program bodies.  Positions matter: [expect] above indexes
   into these instruction lists. *)
let program = function
  | Benign ->
      [
        Isa.Const (1, data);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Read);
        Isa.CapPush 0;
        Isa.CapPop 0;
        Isa.Call callee;
        Isa.Const (3, 0);
        Isa.CapAsync (1, 0, 3);
        Isa.Store (1, 0, 2);
        Isa.Load (4, 1, 0);
        Isa.Halt;
      ]
  | Oob_load -> [ Isa.Const (1, secret); Isa.Load (2, 1, 0); Isa.Halt ]
  | Oob_store -> [ Isa.Const (1, secret); Isa.Store (1, 0, 2); Isa.Halt ]
  | Bad_crossing -> [ Isa.Jmp hermit; Isa.Halt ]
  | Misaligned_entry -> [ Isa.Call (callee + ib); Isa.Halt ]
  | Return_underflow -> [ Isa.CapPop 0; Isa.Halt ]
  | Forged_cap ->
      (* Mint a legal async capability, revoke its counter, then replay
         it: the CapPush validity check must reject the stale stamp. *)
      [
        Isa.Const (1, data);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Read);
        Isa.Const (3, 0);
        Isa.CapAsync (1, 0, 3);
        Isa.CapRevoke 3;
        Isa.CapPush 1;
        Isa.Halt;
      ]
  | Use_after_revoke ->
      [ Isa.Const (1, data); Isa.Syscall sys_revoke_data; Isa.Load (2, 1, 0); Isa.Halt ]
  | Exec_jump -> [ Isa.Jmp data ]
  | Overderive ->
      [
        Isa.Const (1, secret);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Read);
        Isa.Halt;
      ]
  | Priv_escalation -> [ Isa.RdTp 2; Isa.Halt ]
  | Cap_storage_write ->
      [
        Isa.Const (1, data);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Read);
        Isa.CapStore (1, 0, 0);
        Isa.Halt;
      ]
  | Dcs_overflow ->
      [
        Isa.Const (1, data);
        Isa.Const (2, 64);
        Isa.CapAplDerive (0, 1, 2, Perm.Read);
        Isa.CapPush 0;
        Isa.CapPush 0;
        Isa.CapPush 0;
        Isa.Halt;
      ]
  | Revoke_inflight ->
      (* Storm tick (revoke + re-grant) keeps the first crossing legal
         while churning APL generations under warm translations; the
         final revoke races the second in-flight crossing. *)
      [
        Isa.Syscall sys_storm;
        Isa.Call callee;
        Isa.Syscall sys_revoke_callee;
        Isa.Call callee;
        Isa.Halt;
      ]
  | Retcap_leak ->
      (* The callee derives a synchronous capability in its own frame
         and returns; the caller then tries to spill the leaked register
         — the dead frame's epoch must invalidate it. *)
      [
        Isa.Const (1, stack);
        Isa.Const (2, 64);
        Isa.Call callee2;
        Isa.CapPush 2;
        Isa.Halt;
      ]

(* The DCS-overflow program needs a deliberately tiny stack. *)
let dcs_capacity_of = function Dcs_overflow -> Some 2 | _ -> None

type universe = { m : Machine.t; tag_a : int; tag_b : int; tag_c : int; tag_d : int }

let make_universe ?posture ~block () =
  let m = Machine.create () in
  Machine.set_block_cache m block;
  Option.iter (Machine.set_posture m) posture;
  let tag_a = Apl.fresh_tag m.Machine.apl in
  let tag_b = Apl.fresh_tag m.Machine.apl in
  let tag_c = Apl.fresh_tag m.Machine.apl in
  let tag_d = Apl.fresh_tag m.Machine.apl in
  Page_table.map m.Machine.page_table ~addr:code0 ~count:2 ~tag:tag_a
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:callee ~count:1 ~tag:tag_b
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:hermit ~count:1 ~tag:tag_d
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:data ~count:1 ~tag:tag_c ();
  Page_table.map m.Machine.page_table ~addr:secret ~count:1 ~tag:tag_d ();
  Page_table.map m.Machine.page_table ~addr:stack ~count:1 ~tag:tag_a ();
  ignore
    (Memory.place_code m.Machine.mem ~addr:callee [ Isa.Addi (2, 2, 7); Isa.Ret ]);
  ignore
    (Memory.place_code m.Machine.mem ~addr:callee2
       [ Isa.CapAplDerive (2, 1, 2, Perm.Read); Isa.Ret ]);
  ignore (Memory.place_code m.Machine.mem ~addr:hermit [ Isa.Halt ]);
  let u = { m; tag_a; tag_b; tag_c; tag_d } in
  Machine.set_syscall_handler m (fun _ctx n ->
      if n = sys_revoke_data then Apl.revoke m.Machine.apl ~src:tag_a ~dst:tag_c
      else if n = sys_storm then begin
        Apl.revoke m.Machine.apl ~src:tag_a ~dst:tag_b;
        Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Perm.Call
      end
      else if n = sys_revoke_callee then
        Apl.revoke m.Machine.apl ~src:tag_a ~dst:tag_b);
  u

(* Restore the canonical grants an earlier attack may have revoked (an
   APL generation bump in itself — more churn for warm blocks). *)
let regrant u =
  Apl.grant u.m.Machine.apl ~src:u.tag_a ~dst:u.tag_b Perm.Call;
  Apl.grant u.m.Machine.apl ~src:u.tag_b ~dst:u.tag_a Perm.Read;
  Apl.grant u.m.Machine.apl ~src:u.tag_a ~dst:u.tag_c Perm.Owner

(* Run one attack on the shared universe: rewrite the program in place
   (stale translations of the previous attack must not leak through),
   re-grant the APL, and execute on a fresh context. *)
let run_codoms u attack =
  regrant u;
  ignore (Memory.place_code u.m.Machine.mem ~addr:code0 (program attack));
  let ctx =
    Machine.new_ctx ?dcs_capacity:(dcs_capacity_of attack) u.m ~pc:code0
      ~sp_value:(stack + Layout.page_size)
  in
  let audited0 = u.m.Machine.audited_faults in
  let outcome =
    match Machine.run ~fuel:100_000 u.m ctx with
    | () -> Ran (u.m.Machine.audited_faults - audited0)
    | exception Fault.Fault f -> Faulted f
  in
  (outcome, ctx.Machine.cost)

(* --- miniature adapters ---

   Each adapter expresses the cross-backend attacks through its model's
   own mechanism, passing the canonical pc so a fault carries the same
   (kind, pc) as the CODOMs machine.  Modelled cost comes from each
   model's own counters. *)

let seal_otype = 101

let cheri_run ?posture attack =
  let authority = Minicheri.cap ~base:100 ~len:10 ~perm:Minicheri.Data in
  let code_a = Minicheri.cap ~base:code0 ~len:0x20000 ~perm:Minicheri.Exec in
  let data_a = Minicheri.cap ~base:stack ~len:0x1000 ~perm:Minicheri.Data in
  let code_b = Minicheri.cap ~base:callee ~len:0x1000 ~perm:Minicheri.Exec in
  let data_b = Minicheri.cap ~base:data ~len:0x1000 ~perm:Minicheri.Data in
  let cpu = Minicheri.cpu ~pcc:code_a ~idc:data_a in
  Option.iter (fun p -> cpu.Minicheri.posture <- p) posture;
  let legal_domain () =
    match
      Minicheri.make_domain ~authority ~otype:seal_otype ~code:code_b ~data:data_b
    with
    | Ok d -> d
    | Error e -> failwith e
  in
  let outcome = function
    | Ok () -> Ran cpu.Minicheri.audited
    | Error f -> Faulted f
  in
  let o =
    match attack with
    | Benign ->
        let d = legal_domain () in
        outcome
          (match Minicheri.ccall_at cpu ~pc:callee d with
          | Error _ as e -> e
          | Ok () -> Minicheri.creturn_at cpu ~pc:(code0 + ib))
    | Oob_load ->
        outcome
          (Minicheri.access_at cpu cpu.Minicheri.idc ~pc:(code0 + ib)
             ~addr:secret ~perm:Perm.Read)
    | Oob_store ->
        outcome
          (Minicheri.access_at cpu cpu.Minicheri.idc ~pc:(code0 + ib)
             ~addr:secret ~perm:Perm.Write)
    | Bad_crossing ->
        (* A descriptor pair sealed under two different otypes: a forged
           crossing the CCall type check must reject. *)
        let seal otype c =
          match Minicheri.seal ~authority ~otype c with
          | Ok c -> c
          | Error e -> failwith e
        in
        let d =
          {
            Minicheri.d_code = seal seal_otype code_b;
            d_data = seal (seal_otype + 1) data_b;
            d_otype = seal_otype;
          }
        in
        outcome (Minicheri.ccall_at cpu ~pc:hermit d)
    | Misaligned_entry ->
        (* Unsealed operands are not a legal entry descriptor. *)
        let d =
          { Minicheri.d_code = code_b; d_data = data_b; d_otype = seal_otype }
        in
        outcome (Minicheri.ccall_at cpu ~pc:(callee + ib) d)
    | Return_underflow -> outcome (Minicheri.creturn_at cpu ~pc:code0)
    | Forged_cap ->
        (* Seal under an authority that does not cover the otype. *)
        let bad_authority = Minicheri.cap ~base:0 ~len:1 ~perm:Minicheri.Data in
        outcome
          (match
             Minicheri.seal_at ~authority:bad_authority ~otype:seal_otype
               ~pc:(code0 + (6 * ib)) data_b
           with
          | Ok _ -> Ok ()
          | Error f -> Error f)
    | Use_after_revoke ->
        (* A sealed capability confers no authority: the CHERI image of
           exercising revoked rights. *)
        let sealed =
          match Minicheri.seal ~authority ~otype:seal_otype data_b with
          | Ok c -> c
          | Error e -> failwith e
        in
        outcome
          (Minicheri.access_at cpu sealed ~pc:(code0 + (2 * ib)) ~addr:data
             ~perm:Perm.Read)
    | Exec_jump | Overderive | Priv_escalation | Cap_storage_write
    | Dcs_overflow | Revoke_inflight | Retcap_leak ->
        Refused "not expressible on minicheri"
  in
  (o, float_of_int cpu.Minicheri.exceptions *. Minicheri.crossing_cost_ns)

let mmp_run ?posture attack =
  let pd_a = Minimmp.pd ~id:1 in
  let pd_b = Minimmp.pd ~id:2 in
  Minimmp.grant pd_a ~base:code0 ~len:0x20000 ~perm:Minimmp.Execute_read;
  Minimmp.grant pd_a ~base:stack ~len:0x1000 ~perm:Minimmp.Read_write;
  Minimmp.grant pd_b ~base:callee ~len:0x1000 ~perm:Minimmp.Execute_read;
  let cpu = Minimmp.cpu ~initial:pd_a in
  Option.iter (fun p -> cpu.Minimmp.posture <- p) posture;
  Minimmp.add_domain cpu pd_b;
  Minimmp.add_gate cpu ~addr:callee ~from_pd:1 ~to_pd:2;
  let outcome = function
    | Ok () -> Ran cpu.Minimmp.audited
    | Error f -> Faulted f
  in
  let o =
    match attack with
    | Benign ->
        outcome
          (match Minimmp.call_gate_at cpu ~pc:callee ~addr:callee with
          | Error _ as e -> e
          | Ok () -> Minimmp.return_gate_at cpu ~pc:(code0 + ib))
    | Oob_load ->
        outcome
          (Minimmp.access_at cpu ~pc:(code0 + ib) ~addr:secret
             ~needed:Minimmp.Read_only ~perm:Perm.Read)
    | Oob_store ->
        outcome
          (Minimmp.access_at cpu ~pc:(code0 + ib) ~addr:secret
             ~needed:Minimmp.Read_write ~perm:Perm.Write)
    | Bad_crossing ->
        (* A gate whose declared source is some other domain. *)
        Minimmp.add_gate cpu ~addr:hermit ~from_pd:99 ~to_pd:2;
        outcome (Minimmp.call_gate_at cpu ~pc:hermit ~addr:hermit)
    | Misaligned_entry ->
        (* Not a gate at all. *)
        outcome (Minimmp.call_gate_at cpu ~pc:(callee + ib) ~addr:(callee + ib))
    | Return_underflow -> outcome (Minimmp.return_gate_at cpu ~pc:code0)
    | Forged_cap ->
        (* A gate into a domain that does not exist: a dangling
           descriptor. *)
        let addr = code0 + (6 * ib) in
        Minimmp.add_gate cpu ~addr ~from_pd:1 ~to_pd:77;
        outcome (Minimmp.call_gate_at cpu ~pc:addr ~addr)
    | Use_after_revoke ->
        Minimmp.grant pd_a ~base:data ~len:0x1000 ~perm:Minimmp.Read_only;
        Minimmp.revoke pd_a ~base:data ~len:0x1000;
        outcome
          (Minimmp.access_at cpu ~pc:(code0 + (2 * ib)) ~addr:data
             ~needed:Minimmp.Read_only ~perm:Perm.Read)
    | Exec_jump | Overderive | Priv_escalation | Cap_storage_write
    | Dcs_overflow | Revoke_inflight | Retcap_leak ->
        Refused "not expressible on minimmp"
  in
  let table_writes = pd_a.Minimmp.table_writes + pd_b.Minimmp.table_writes in
  ( o,
    (float_of_int cpu.Minimmp.pipeline_flushes *. Minimmp.switch_cost_ns)
    +. (float_of_int table_writes *. Minimmp.table_write_cost_ns) )

(* --- sweeps and digests --- *)

(* Run [attacks] in order on one backend.  The CODOMs sweep shares one
   machine across the whole sequence (block-cache churn is the point);
   the miniatures build fresh model state per attack.  Returns the
   outcomes and the total modelled cost in simulated ns. *)
let sweep ?(block = true) ?posture backend attacks =
  let collect run =
    let cost = ref 0.0 in
    let outs =
      List.map
        (fun a ->
          let o, c = run a in
          cost := !cost +. c;
          o)
        attacks
    in
    (outs, !cost)
  in
  match backend with
  | Codoms ->
      let u = make_universe ?posture ~block () in
      collect (run_codoms u)
  | Minicheri_b -> collect (cheri_run ?posture)
  | Minimmp_b -> collect (mmp_run ?posture)

let run_one ?(block = true) ?posture backend attack =
  match sweep ~block ?posture backend [ attack ] with
  | [ o ], _ -> o
  | _ -> assert false

(* Fold an outcome sequence into a replay digest through a fresh Trace
   accumulator.  Only backend-neutral facts enter the fold — the fault's
   kind code and faulting pc, or the audited-denial count of a completed
   run — so equal digests across backends mean the *architectural*
   outcomes agree, and equal digests across block-cache modes mean the
   fast path faulted identically. *)
let digest_outcomes outs =
  let tr = Trace.create ~capacity:256 () in
  List.iteri
    (fun i o ->
      let cpu, tag, arg =
        match o with
        | Faulted f -> (1, Fault.kind_code f.Fault.kind, f.Fault.pc)
        | Ran audited -> (0, -1, audited)
        | Refused s -> (2, -2, String.length s)
      in
      Trace.emit tr ~ts:(float_of_int i) ~cpu ~tid:i ~tag ~arg Trace.Fault)
    outs;
  Trace.digest_hex tr

(* --- the directed scenario corpus --- *)

type scenario = {
  s_attack : attack;
  s_name : string;
  s_backends : backend list;
  s_expect : (Fault.kind * int) option;
      (* fault kind + canonical faulting pc under Strict; None = runs *)
}

let corpus =
  List.map
    (fun a ->
      {
        s_attack = a;
        s_name = attack_name a;
        s_backends =
          (if List.mem a cross_attacks then all_backends else [ Codoms ]);
        s_expect = expect a;
      })
    (cross_attacks @ machine_attacks)

(* --- seeded random attack sequences --- *)

(* Deterministic LCG (Numerical Recipes constants) over the
   cross-backend corpus: the differential property and the bench matrix
   want reproducible hostile schedules without depending on a global
   RNG. *)
let random_attacks ~seed ~n =
  let pool = Array.of_list cross_attacks in
  let state = ref (seed land 0x3FFFFFFF) in
  List.init n (fun _ ->
      state := ((!state * 1664525) + 1013904223) land 0x3FFFFFFF;
      pool.(!state mod Array.length pool))

(* --- proxy misuse (dIPC system level, CODOMs only) --- *)

(* Re-entry: after one legitimate call, the attacker reads the caller
   stub to locate the proxy's entry point, then calls PAST it into the
   proxy body.  The crossing carries call permission only, so the
   misaligned target must fault [Not_entry_point] at that pc. *)
let proxy_reentry ?(block = true) () =
  let s = Scenario.make () in
  let machine = System.machine s.Scenario.sys in
  Machine.set_block_cache machine block;
  match Scenario.call s ~args:[ 1; 2 ] with
  | Error f -> (Faulted f, -1)
  | Ok _ -> (
      let mem = machine.Machine.mem in
      let rec find_call pc n =
        if n > 64 then None
        else
          match Memory.fetch mem pc with
          | Some (Isa.Call t) -> Some t
          | Some _ -> find_call (pc + ib) (n + 1)
          | None -> None
      in
      match find_call s.Scenario.stub 0 with
      | None -> (Refused "no proxy call in the caller stub", -1)
      | Some proxy_entry ->
          let target = proxy_entry + ib in
          let img = Annot.image s.Scenario.sys s.Scenario.caller in
          let fn =
            Annot.declare_function s.Scenario.sys img ~name:"reenter"
              [ Isa.Call target; Isa.Ret ]
          in
          let o =
            match Call.exec s.Scenario.sys s.Scenario.thread ~fn ~args:[] with
            | Ok _ -> Ran machine.Machine.audited_faults
            | Error f -> Faulted f
          in
          (o, target))

(* Wrong-signature entry: importing a symbol under a signature that
   disagrees with the published entry must be refused at proxy-request
   time (P4) — no code ever runs. *)
let wrong_signature () =
  let sys = System.create () in
  let resolver = Resolver.create () in
  let callee_p = System.create_process sys ~name:"callee" in
  let caller_p = System.create_process sys ~name:"caller" in
  let callee_img = Annot.image sys callee_p in
  ignore
    (Annot.declare_function sys callee_img ~name:"fn" Scenario.default_fn);
  let handle =
    Annot.declare_entries sys callee_img ~name:"svc"
      [ ("fn", Types.signature ~args:2 ~rets:1 (), Types.props_low) ]
  in
  Resolver.publish resolver ~path:"/run/svc.sock" handle;
  let caller_img = Annot.image sys caller_p in
  let sym =
    Annot.import caller_img ~path:"/run/svc.sock"
      ~sig_:(Types.signature ~args:3 ~rets:1 ())
      ~props:Types.props_low ()
  in
  match Annot.resolve sys resolver sym with
  | (_ : int) -> Ran 0
  | exception System.Denied msg -> Refused msg
