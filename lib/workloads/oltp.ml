(* Multi-tier OLTP web workload (Secs. 2, 7.4; Figures 1 and 8).

   A closed queueing model of the DVDStore stack: Apache (web tier), PHP
   (FastCGI pool) and MariaDB (thread pool) on a 4-CPU machine, with the
   measured structure of one operation — a handful of web<->php crossings
   and ~a hundred php<->db round trips, 211 one-way domain crossings in
   total (Sec. 7.5).

   Three configurations, exactly the paper's:
   - Linux: each tier its own process; crossings are UNIX-socket RPCs to a
     service-thread pool (false concurrency, Sec. 2.3).
   - Ideal (unsafe): everything inlined in one process; crossings are
     plain function calls.
   - dIPC: everything inlined in one thread, but every crossing pays the
     measured dIPC proxy cost under cache pressure (252 ns). *)

module Engine = Dipc_sim.Engine
module Breakdown = Dipc_sim.Breakdown
module Costs = Dipc_sim.Costs
module Rng = Dipc_sim.Rng
module Stats = Dipc_sim.Stats
module Kernel = Dipc_kernel.Kernel
module Unix_socket = Dipc_kernel.Unix_socket

type config = Linux | Dipc | Ideal

let config_name = function Linux -> "Linux" | Dipc -> "dIPC" | Ideal -> "Ideal (unsafe)"

type db_mode = On_disk | In_memory

type params = {
  db_mode : db_mode;
  threads : int; (* per component *)
  web_work : float; (* user CPU per op in the web tier, ns *)
  php_work : float;
  db_work : float;
  web_php_roundtrips : int;
  php_db_roundtrips : int;
  disk_reads_per_op : float;
  disk_mean : float; (* ns *)
  warmup : float; (* simulated ns *)
  duration : float;
  ncpus : int;
}

(* Structure calibrated to Sec. 7.5: 2*(2 + php_db) one-way crossings +
   the web->client boundary ~= 211 crossings per operation. *)
let default_params ~db_mode ~threads =
  {
    db_mode;
    threads;
    web_work = 500_000.;
    php_work = 1_700_000.;
    db_work = 1_000_000.;
    web_php_roundtrips = 1;
    php_db_roundtrips = 103;
    disk_reads_per_op = (match db_mode with On_disk -> 1.0 | In_memory -> 0.0);
    disk_mean = 1_300_000.;
    (* Enough warmup that even 512 concurrent sessions (latencies of
       hundreds of ms) reach steady state before measurement starts. *)
    warmup = 400_000_000. +. (float_of_int threads *. 4_000_000.);
    duration = 1_200_000_000.;
    ncpus = 4;
  }

let crossings_per_op p = 2 * (p.web_php_roundtrips + p.php_db_roundtrips)

type result = {
  r_config : config;
  r_threads : int;
  r_ops : int;
  r_throughput_opm : float; (* operations per minute *)
  r_latency_ns : Stats.summary;
  r_user_frac : float;
  r_kernel_frac : float;
  r_idle_frac : float;
}

(* --- shared infrastructure --- *)

(* The disk is a self-serving device: requests queue at the device and are
   completed off the interrupt path, so the disk never idles waiting for a
   requester thread to get a CPU (the kernel I/O scheduler's job). *)
type disk = {
  d_kern : Kernel.t;
  d_requests : unit Engine.waker Queue.t;
  mutable d_active : bool;
  d_rng : Rng.t;
  d_mean : float;
}

let disk_create kern ~seed ~mean =
  {
    d_kern = kern;
    d_requests = Queue.create ();
    d_active = false;
    d_rng = Rng.create ~seed;
    d_mean = mean;
  }

let rec disk_pump d =
  match Queue.take_opt d.d_requests with
  | None -> d.d_active <- false
  | Some waker ->
      Engine.delay_in (Kernel.engine d.d_kern) (Rng.exponential d.d_rng ~mean:d.d_mean);
      Engine.resume waker ();
      disk_pump d

let disk_read d th =
  Kernel.suspend_on d.d_kern th (fun waker ->
      Queue.add waker d.d_requests;
      if not d.d_active then begin
        d.d_active <- true;
        Engine.spawn (Kernel.engine d.d_kern) (fun () -> disk_pump d)
      end)

(* A service-thread pool fed by a UNIX socket: the Linux configuration's
   IPC fabric.  The payload is the request body; the reply travels through
   a per-request sleep queue. *)
type 'a request = { rq_body : 'a; rq_done : unit Kernel.Sleepq.q }

type 'a pool = {
  p_kern : Kernel.t;
  p_sock : 'a request Unix_socket.t;
  p_stall_mean : float; (* scheduler-imbalance wait per service wake, ns *)
  p_rng : Rng.t;
}

(* Scheduler imbalance (Sec. 7.4): "the large number of threads necessary
   to fill the system lead the scheduler to temporarily imbalance the
   CPUs, at which point synchronous IPC must wait to contact a remote
   process."  A woken service thread waits in its CPU's run queue behind
   earlier wakeups and running time slices; the wait grows with the number
   of threads per run queue and saturates once queues are full, while high
   concurrency progressively hides it (more sessions overlap the waits).
   Calibrated against the Figure 8 speedup series. *)
let imbalance_stall_mean ~threads =
  let collision = Float.min 1.0 (float_of_int threads /. 16.) in
  let queue_depth = float_of_int (min threads 32) in
  collision *. 38_000. *. queue_depth

let pool_create ?(stall_mean = 0.) ~seed kern =
  {
    p_kern = kern;
    p_sock = Unix_socket.create kern;
    p_stall_mean = stall_mean;
    p_rng = Rng.create ~seed;
  }

(* Application-level protocol work per message, each side: FastCGI/MySQL
   protocol framing, request (de)multiplexing, glue code (Sec. 2.2's
   "overheads also trickle into applications"). *)
let protocol_user_ns = 600.

(* Event-loop and socket-readiness kernel work per message beyond the bare
   socket transfer (epoll/poll wakeup bookkeeping). *)
let event_loop_kernel_ns = 800.

(* One synchronous RPC into the pool: marshal, socket send, wait for
   completion, demarshal the response. *)
let pool_call pool th ~size body =
  let rq = { rq_body = body; rq_done = Kernel.Sleepq.create () } in
  Kernel.consume pool.p_kern th Breakdown.User_code protocol_user_ns;
  Kernel.consume pool.p_kern th Breakdown.Kernel event_loop_kernel_ns;
  Unix_socket.send pool.p_sock th ~size rq;
  Kernel.block_on pool.p_kern th rq.rq_done;
  Kernel.consume pool.p_kern th Breakdown.User_code protocol_user_ns

let pool_spawn_servers pool proc ~threads ~name handler =
  for i = 1 to threads do
    ignore
      (Kernel.spawn pool.p_kern proc ~name:(Printf.sprintf "%s-%d" name i)
         (fun th ->
           let continue = ref true in
           while !continue do
             let rq, _size = Unix_socket.recv pool.p_sock th in
             (* Run-queue wait before the woken service thread actually
                executes (scheduler imbalance). *)
             if pool.p_stall_mean > 0. then
               Kernel.io_wait pool.p_kern th
                 (Rng.exponential pool.p_rng ~mean:pool.p_stall_mean);
             Kernel.consume pool.p_kern th Breakdown.Kernel event_loop_kernel_ns;
             Kernel.consume pool.p_kern th Breakdown.User_code protocol_user_ns;
             handler th rq.rq_body;
             Kernel.consume pool.p_kern th Breakdown.User_code protocol_user_ns;
             ignore (Kernel.wake_one pool.p_kern ~waker:th rq.rq_done ())
           done))
  done

(* --- the operation body --- *)

(* Request sizes on the two hops (HTTP-ish request to PHP, SQL-ish text to
   the DB). *)
let web_php_bytes = 512

let php_db_bytes = 128

let user kern th ns = Kernel.consume kern th Breakdown.User_code ns

(* Kernel work every configuration pays per operation regardless of the
   IPC mechanism: accepting/answering the client's HTTP connection, page
   faults, timers (the Ideal configuration of Fig. 1 still spends ~16% in
   the kernel). *)
let client_io_kernel_ns = 120_000.

let client_io kern th =
  Kernel.syscall_overhead kern th;
  Kernel.consume kern th Breakdown.Kernel client_io_kernel_ns

(* dIPC crossing: the measured warm proxy cost under application cache
   pressure (Sec. 7.5), executed in place of any kernel involvement. *)
let dipc_crossing kern th =
  Kernel.consume kern th Breakdown.Proxy Costs.oltp_dipc_call_pressure

(* Every source of randomness derives from [seed]: the default of 41
   reproduces the calibrated legacy streams (disk 97, pools 733). *)
let run ?(params_override = None) ?(seed = 41) ?trace ?inject
    ?(drive_until = Engine.run_until) ~config ~db_mode
    ~threads () =
  let p =
    match params_override with
    | Some p -> p
    | None -> default_params ~db_mode ~threads
  in
  let engine = Engine.create () in
  (match trace with Some tr -> Engine.set_trace engine tr | None -> ());
  let kern = Kernel.create engine ~ncpus:p.ncpus in
  (match inject with Some inj -> Kernel.set_inject kern (Some inj) | None -> ());
  let disk = disk_create kern ~seed:(seed + 56) ~mean:p.disk_mean in
  let rng = Rng.create ~seed in
  let latencies = Stats.create () in
  let ops = ref 0 in
  let measuring = ref false in
  let php_chunk = p.php_work /. float_of_int (p.php_db_roundtrips + 1) in
  let db_chunk = p.db_work /. float_of_int p.php_db_roundtrips in
  let web_chunk = p.web_work /. float_of_int (p.web_php_roundtrips + 1) in
  (* The database work for one query, including its share of disk reads. *)
  let db_query th =
    user kern th db_chunk;
    let disk_prob = p.disk_reads_per_op /. float_of_int p.php_db_roundtrips in
    if p.disk_reads_per_op > 0. && Rng.float rng < disk_prob then disk_read disk th
  in
  (* The PHP stage for one request: its compute interleaved with DB
     round trips, via [db_call]. *)
  let php_stage th ~db_call =
    for _ = 1 to p.php_db_roundtrips do
      user kern th php_chunk;
      db_call th
    done;
    user kern th php_chunk
  in
  (* The web stage around PHP. *)
  let web_stage th ~php_call =
    for _ = 1 to p.web_php_roundtrips do
      user kern th web_chunk;
      php_call th
    done;
    user kern th web_chunk
  in
  let record_op start th =
    ignore th;
    if !measuring then begin
      incr ops;
      Stats.add latencies (Engine.now engine -. start)
    end
  in
  (match config with
  | Linux ->
      let web_proc = Kernel.create_process kern ~name:"apache" in
      let php_proc = Kernel.create_process kern ~name:"php-fpm" in
      let db_proc = Kernel.create_process kern ~name:"mariadb" in
      let stall_mean = imbalance_stall_mean ~threads:p.threads in
      let db_pool = pool_create ~stall_mean ~seed:(seed + 692) kern in
      let php_pool = pool_create ~stall_mean ~seed:(seed + 692) kern in
      pool_spawn_servers db_pool db_proc ~threads:p.threads ~name:"db"
        (fun th () -> db_query th);
      pool_spawn_servers php_pool php_proc ~threads:p.threads ~name:"php"
        (fun th () ->
          php_stage th ~db_call:(fun th ->
              pool_call db_pool th ~size:php_db_bytes ()));
      for i = 1 to p.threads do
        ignore
          (Kernel.spawn kern web_proc ~name:(Printf.sprintf "web-%d" i)
             (fun th ->
               while Engine.now engine < p.warmup +. p.duration do
                 let start = Engine.now engine in
                 client_io kern th;
                 web_stage th ~php_call:(fun th ->
                     pool_call php_pool th ~size:web_php_bytes ());
                 record_op start th
               done))
      done
  | Dipc | Ideal ->
      let proc = Kernel.create_process kern ~name:"stack" in
      let crossing th = if config = Dipc then dipc_crossing kern th in
      for i = 1 to p.threads do
        ignore
          (Kernel.spawn kern proc ~name:(Printf.sprintf "op-%d" i)
             (fun th ->
               while Engine.now engine < p.warmup +. p.duration do
                 let start = Engine.now engine in
                 client_io kern th;
                 web_stage th ~php_call:(fun th ->
                     crossing th;
                     php_stage th ~db_call:(fun th ->
                         crossing th;
                         db_query th;
                         crossing th);
                     crossing th);
                 record_op start th
               done))
      done);
  (* Warm up, reset, measure. *)
  drive_until engine p.warmup;
  Kernel.reset_stats kern;
  measuring := true;
  drive_until engine (p.warmup +. p.duration);
  measuring := false;
  (* Aggregate the CPU breakdowns. *)
  let agg = Breakdown.create () in
  for i = 0 to p.ncpus - 1 do
    Breakdown.merge ~into:agg (Breakdown.to_figure2 (Kernel.cpu_breakdown kern i))
  done;
  (* Account time the CPUs are still idle at the deadline. *)
  let busy = Breakdown.total agg -. Breakdown.get agg Breakdown.Idle in
  let wall = p.duration *. float_of_int p.ncpus in
  let idle = wall -. busy in
  let user = Breakdown.get agg Breakdown.User_code in
  let kernel = busy -. user in
  {
    r_config = config;
    r_threads = p.threads;
    r_ops = !ops;
    r_throughput_opm = float_of_int !ops /. p.duration *. 1e9 *. 60.;
    r_latency_ns = Stats.summary latencies;
    r_user_frac = user /. wall;
    r_kernel_frac = kernel /. wall;
    r_idle_frac = idle /. wall;
  }
