(* dIPC command-line interface: poke at the simulated system without
   writing code.

     dune exec bin/dipc_cli.exe -- call --policy high --cross
     dune exec bin/dipc_cli.exe -- ipc --primitive rpc
     dune exec bin/dipc_cli.exe -- oltp --config dipc --threads 16
     dune exec bin/dipc_cli.exe -- disasm --policy high
     dune exec bin/dipc_cli.exe -- trace --primitive sem --out trace.json
*)

module Costs = Dipc_sim.Costs
module Stats = Dipc_sim.Stats
module Trace = Dipc_sim.Trace
module Inject = Dipc_sim.Inject
module Checker = Dipc_sim.Checker
module Parallel = Dipc_sim.Parallel
module Suite = Dipc_bench_suite.Suite
module Types = Dipc_core.Types
module Scenario = Dipc_core.Scenario
module Proxy = Dipc_core.Proxy
module Asm = Dipc_core.Asm
module Isa = Dipc_hw.Isa
module M = Dipc_workloads.Microbench
module O = Dipc_workloads.Oltp
module OL = Dipc_workloads.Openload
module Histogram = Dipc_sim.Histogram

open Cmdliner

(* --- shared arguments --- *)

let policy_conv =
  let parse = function
    | "low" -> Ok Types.props_low
    | "high" -> Ok Types.props_high
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (low|high)" s))
  in
  let print ppf p =
    Fmt.string ppf (if p = Types.props_high then "high" else "low")
  in
  Arg.conv (parse, print)

let policy =
  Arg.(value & opt policy_conv Types.props_low & info [ "policy" ] ~doc:"low or high")

let cross =
  Arg.(value & flag & info [ "cross" ] ~doc:"cross-process call (dIPC +proc)")

let tls_opt =
  Arg.(value & flag & info [ "tls-opt" ] ~doc:"optimised TLS mode (Sec. 6.1.2)")

let inject_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "inject" ] ~docv:"SEED"
        ~doc:
          "install a seeded fault injector (delayed/lost IPIs, spurious \
           futex wakeups, forced preemptions); the same seed reproduces \
           the same fault schedule")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "run under event tracing with the online invariant checker \
           attached; any scheduler-invariant violation aborts loudly")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "shard independent runs over $(docv) OCaml domains (0 = one per \
           recommended core); per-run digests and printed results are \
           identical at any $(docv)")

let resolve_jobs n = if n = 0 then Parallel.default_jobs () else n

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "partition a single simulation into $(docv) shards advanced in \
           conservative lookahead windows on separate OCaml domains \
           (DESIGN.md Sec. 14); digests and printed results are \
           byte-identical at any $(docv).  1 (the default) is the serial \
           reference path, 0 means one shard per recommended core")

let resolve_shards n = if n = 0 then Parallel.default_jobs () else n

(* The interpreter escape hatches travel together: --no-block-cache
   forces the reference stepper, --no-superblocks keeps the block cache
   but disables the superblock trace compiler (one-block-at-a-time
   dispatch), --no-ras keeps superblocks but disables the
   dynamic-transfer predictors (return-address stack + inline caches).
   Results and digests are identical in every mode. *)
let no_block_cache_arg =
  let no_bc =
    Arg.(
      value & flag
      & info [ "no-block-cache" ]
          ~doc:
            "force the reference interpreter: disable the machine's \
             translated-block dispatch.  Results and digests are identical \
             either way; this is a triage escape hatch")
  in
  let no_sb =
    Arg.(
      value & flag
      & info [ "no-superblocks" ]
          ~doc:
            "keep the translated-block cache but disable the superblock \
             trace compiler (one-block-at-a-time dispatch).  Results and \
             digests are identical either way; this is a triage escape \
             hatch")
  in
  let no_ras =
    Arg.(
      value & flag
      & info [ "no-ras" ]
          ~doc:
            "keep the superblock compiler but disable the dynamic-transfer \
             predictors (return-address stack on Ret, inline caches on \
             Jmpr/Callr): every dynamic transfer side-exits to the \
             dispatcher.  Results and digests are identical either way; \
             this is a triage escape hatch")
  in
  Term.(
    const (fun no_bc no_sb no_ras -> (no_bc, no_sb, no_ras))
    $ no_bc $ no_sb $ no_ras)

(* Machines are created inside the workloads, so the escape hatches flip
   the process-wide creation defaults before any run starts. *)
let apply_block_cache (no_bc, no_sb, no_ras) =
  if no_bc then Dipc_hw.Machine.set_default_block_cache false;
  if no_sb then Dipc_hw.Machine.set_default_superblocks false;
  if no_ras then Dipc_hw.Machine.set_default_ras false

(* One injector per run from the CLI seed; [None] leaves every hook a
   no-op. *)
let mk_inject = Option.map (fun seed -> Inject.create ~seed ())

let mk_checker check =
  if not check then (None, None)
  else begin
    let tr = Trace.create () in
    let c = Checker.create () in
    Checker.attach c tr;
    (Some tr, Some c)
  end

(* Silent variant for parallel grid cells: output is pre-rendered on the
   worker and printed by the main domain in submission order. *)
let finish_checker_silent ?quiescent ?expect tr chk =
  match (tr, chk) with
  | Some tr, Some c ->
      Checker.finish ?quiescent ?expect c;
      Checker.detach tr;
      Some (Checker.events_seen c)
  | _ -> None

let finish_checker ?quiescent ?expect tr chk =
  match finish_checker_silent ?quiescent ?expect tr chk with
  | Some seen ->
      Printf.printf "  checker: %d events seen, all invariants hold\n" seen
  | None -> ()

let report_inject inject =
  match inject with
  | Some inj -> Fmt.pr "  injected: %a@." Inject.pp_stats (Inject.stats inj)
  | None -> ()

(* --- call: measure one dIPC configuration --- *)

let run_call policy cross tls_opt =
  let s =
    Scenario.make ~same_process:(not cross) ~tls_optimized:tls_opt
      ~caller_props:policy ~callee_props:policy ()
  in
  let m = Scenario.measure s in
  Printf.printf "dIPC %s call, %s policy%s:\n"
    (if cross then "cross-process" else "same-process")
    (if policy = Types.props_high then "High" else "Low")
    (if tls_opt then ", optimised TLS" else "");
  Printf.printf "  %.1f ns per call (%.0fx a function call; sd %.2f)\n"
    m.Stats.s_mean
    (m.Stats.s_mean /. Costs.function_call)
    m.Stats.s_stddev

let call_cmd =
  Cmd.v
    (Cmd.info "call" ~doc:"measure a warm dIPC call on the machine model")
    Term.(const run_call $ policy $ cross $ tls_opt)

(* --- ipc: measure a baseline primitive --- *)

let primitive_conv =
  let parse = function
    | "sem" -> Ok M.Sem
    | "pipe" -> Ok M.Pipe
    | "l4" -> Ok M.L4
    | "rpc" -> Ok M.Local_rpc
    | "user-rpc" -> Ok M.User_rpc_prim
    | s -> Error (`Msg (Printf.sprintf "unknown primitive %S" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (M.primitive_name p))

(* The full primitive x placement grid as independent runner tasks: each
   cell builds its own trace/checker/injector and returns a pre-rendered
   line, so output is identical at any --jobs. *)
let run_ipc_all bytes inject_seed check jobs =
  let prims =
    [
      (M.Sem, "sem");
      (M.Pipe, "pipe");
      (M.L4, "l4");
      (M.Local_rpc, "rpc");
      (M.User_rpc_prim, "user-rpc");
    ]
  in
  let cell (prim, name) same_cpu =
    ( Printf.sprintf "%s/%s" name (if same_cpu then "=CPU" else "!=CPU"),
      fun () ->
        let inject = mk_inject inject_seed in
        let tr, chk = mk_checker check in
        let r = M.run ~bytes ?trace:tr ?inject ~same_cpu prim in
        let seen =
          finish_checker_silent ~quiescent:(prim <> M.L4) ~expect:r.M.lifetime
            tr chk
        in
        Printf.sprintf "  %-9s %-6s %9.1f ns%s%s\n" name
          (if same_cpu then "=CPU" else "!=CPU")
          r.M.mean_ns
          (match tr with
          | Some tr -> "  digest=" ^ Trace.digest_hex tr
          | None -> "")
          (match seen with
          | Some n -> Printf.sprintf "  checker=%d events ok" n
          | None -> "") )
  in
  let cells =
    List.concat_map
      (fun p -> List.map (cell p) [ true; false ])
      prims
  in
  let jobs = resolve_jobs jobs in
  Printf.printf "IPC primitive grid, %d-byte argument (%d jobs):\n" bytes jobs;
  let out = Parallel.run ~jobs (Array.of_list cells) in
  Array.iter (fun o -> print_string o.Parallel.o_value) out;
  flush stdout

let run_ipc primitive same_cpu bytes inject_seed check all jobs no_bc =
  apply_block_cache no_bc;
  if all then run_ipc_all bytes inject_seed check jobs
  else begin
    let inject = mk_inject inject_seed in
    let tr, chk = mk_checker check in
    let r = M.run ~bytes ?trace:tr ?inject ~same_cpu primitive in
    (* The L4 server's final reply_and_wait parks it forever by design:
       skip the quiescence assertion for that primitive only. *)
    finish_checker ~quiescent:(primitive <> M.L4) ~expect:r.M.lifetime tr chk;
    Printf.printf "%s (%s), %d-byte argument:\n" (M.primitive_name primitive)
      (if same_cpu then "=CPU" else "!=CPU")
      bytes;
    Printf.printf "  %.1f ns per synchronous round trip\n" r.M.mean_ns;
    report_inject inject;
    (match tr with
    | Some tr -> Printf.printf "  replay digest %s\n" (Trace.digest_hex tr)
    | None -> ());
    Array.iteri
      (fun i bd ->
        if Dipc_sim.Breakdown.total bd > 1. then
          Fmt.pr "  CPU %d: %a@." (i + 1) Dipc_sim.Breakdown.pp bd)
      r.M.per_cpu
  end

let ipc_cmd =
  let primitive =
    Arg.(
      value
      & opt primitive_conv M.Sem
      & info [ "primitive" ] ~doc:"sem|pipe|l4|rpc|user-rpc")
  in
  let same_cpu =
    Arg.(value & flag & info [ "same-cpu" ] ~doc:"pin both sides to one CPU")
  in
  let bytes = Arg.(value & opt int 1 & info [ "bytes" ] ~doc:"argument size") in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"run every primitive in both placements (honours $(b,--jobs))")
  in
  Cmd.v
    (Cmd.info "ipc" ~doc:"measure a baseline IPC primitive on the kernel model")
    Term.(
      const run_ipc $ primitive $ same_cpu $ bytes $ inject_arg $ check_arg
      $ all $ jobs_arg $ no_block_cache_arg)

(* --- oltp: one macro-benchmark cell --- *)

(* All three configurations as independent runner tasks (the Figure 8
   column at one thread count). *)
let run_oltp_sweep threads on_disk inject_seed check jobs =
  let db_mode = if on_disk then O.On_disk else O.In_memory in
  let cell config =
    ( O.config_name config,
      fun () ->
        let inject = mk_inject inject_seed in
        let tr, chk = mk_checker check in
        let r = O.run ?trace:tr ?inject ~config ~db_mode ~threads () in
        let seen = finish_checker_silent ~quiescent:false tr chk in
        Printf.sprintf
          "  %-6s tput=%8.0f opm  lat=%6.2f ms  user/kern/idle = \
           %4.1f/%4.1f/%4.1f%%%s%s\n"
          (O.config_name config) r.O.r_throughput_opm
          (r.O.r_latency_ns.Stats.s_mean /. 1e6)
          (100. *. r.O.r_user_frac)
          (100. *. r.O.r_kernel_frac)
          (100. *. r.O.r_idle_frac)
          (match tr with
          | Some tr -> "  digest=" ^ Trace.digest_hex tr
          | None -> "")
          (match seen with
          | Some n -> Printf.sprintf "  checker=%d events ok" n
          | None -> "") )
  in
  let jobs = resolve_jobs jobs in
  Printf.printf "OLTP sweep, %d threads/component, %s DB (%d jobs):\n" threads
    (if on_disk then "on-disk" else "in-memory")
    jobs;
  let out =
    Parallel.run ~jobs (Array.of_list (List.map cell [ O.Linux; O.Dipc; O.Ideal ]))
  in
  Array.iter (fun o -> print_string o.Parallel.o_value) out;
  flush stdout

let run_oltp config threads on_disk inject_seed check sweep jobs no_bc =
  apply_block_cache no_bc;
  if sweep then run_oltp_sweep threads on_disk inject_seed check jobs
  else begin
    let config =
      match config with
      | "linux" -> O.Linux
      | "dipc" -> O.Dipc
      | "ideal" -> O.Ideal
      | s -> failwith ("unknown config " ^ s)
    in
    let db_mode = if on_disk then O.On_disk else O.In_memory in
    let inject = mk_inject inject_seed in
    let tr, chk = mk_checker check in
    let r = O.run ?trace:tr ?inject ~config ~db_mode ~threads () in
    (* OLTP stops at a deadline with workers still parked: structural
       invariants only, no quiescence. *)
    finish_checker ~quiescent:false tr chk;
    Printf.printf "%s, %d threads/component, %s DB:\n" (O.config_name config)
      threads
      (if on_disk then "on-disk" else "in-memory");
    report_inject inject;
    (match tr with
    | Some tr -> Printf.printf "  replay digest %s\n" (Trace.digest_hex tr)
    | None -> ());
    Printf.printf "  throughput %.0f ops/min, latency %.2f ms\n"
      r.O.r_throughput_opm
      (r.O.r_latency_ns.Stats.s_mean /. 1e6);
    Printf.printf "  user %.1f%%  kernel %.1f%%  idle %.1f%%\n"
      (100. *. r.O.r_user_frac) (100. *. r.O.r_kernel_frac)
      (100. *. r.O.r_idle_frac)
  end

let oltp_cmd =
  let config =
    Arg.(value & opt string "dipc" & info [ "config" ] ~doc:"linux|dipc|ideal")
  in
  let threads = Arg.(value & opt int 16 & info [ "threads" ] ~doc:"per component") in
  let on_disk = Arg.(value & flag & info [ "on-disk" ] ~doc:"on-disk database") in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"run all three configurations (honours $(b,--jobs))")
  in
  Cmd.v
    (Cmd.info "oltp" ~doc:"run one cell of the Figure 8 macro-benchmark")
    Term.(
      const run_oltp $ config $ threads $ on_disk $ inject_arg $ check_arg
      $ sweep $ jobs_arg $ no_block_cache_arg)

(* --- open: open-arrival load generator (millions of sessions) --- *)

let arrival_conv =
  let parse s =
    match OL.arrival_of_string s with
    | Some a -> Ok a
    | None ->
        Error (`Msg (Printf.sprintf "unknown arrival %S (poisson|bursty|diurnal)" s))
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf (OL.arrival_name a))

let run_open prim arrival load sessions seed sweep jobs shards no_bc =
  apply_block_cache no_bc;
  let jobs = resolve_jobs jobs in
  let shards = resolve_shards shards in
  if sweep then ignore (Suite.open_sweep ~jobs ~shards ~arrival ())
  else begin
    let service_ns =
      match List.assoc_opt prim (Suite.open_costs ()) with
      | Some s -> s
      | None ->
          Printf.eprintf "unknown primitive %S (sem|pipe|l4|rpc|dipc)\n" prim;
          exit 2
    in
    let p =
      OL.default_params ~seed ~sessions ~offered_load:load ~arrival ~service_ns
        ()
    in
    let r = OL.run_sharded ~shards p in
    let pc q = Histogram.percentile r.OL.r_latency q in
    Printf.printf "%s, %s arrivals, offered load %.2f, %d sessions:\n" prim
      (OL.arrival_name arrival) load sessions;
    Printf.printf "  service demand %.1f ns/request (measured), %d CPUs\n"
      service_ns p.OL.servers;
    Printf.printf "  %d requests over %.2f simulated ms\n" r.OL.r_requests
      (r.OL.r_makespan_ns /. 1e6);
    Printf.printf "  latency p50 %.1f ns  p99 %.1f ns  p999 %.1f ns  mean %.1f ns\n"
      (pc 50.) (pc 99.) (pc 99.9)
      (Histogram.mean r.OL.r_latency);
    Printf.printf "  utilization %.3f  throughput %.0f req/s\n"
      (OL.utilization r ~servers:p.OL.servers)
      (OL.throughput_rps r);
    Printf.printf "  digest %s\n" r.OL.r_digest
  end

let open_cmd =
  let prim =
    Arg.(
      value & opt string "dipc"
      & info [ "primitive" ] ~doc:"sem|pipe|l4|rpc|dipc")
  in
  let arrival =
    Arg.(
      value
      & opt arrival_conv OL.Poisson
      & info [ "arrival" ] ~doc:"poisson|bursty|diurnal")
  in
  let load =
    Arg.(
      value & opt float 0.85
      & info [ "load" ] ~docv:"RHO" ~doc:"offered load (rho; > 1 is overload)")
  in
  let sessions =
    Arg.(
      value & opt int 100_000
      & info [ "sessions" ] ~doc:"client sessions to simulate")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed") in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "full load sweep: every IPC primitive vs dIPC across offered \
             loads, >1M sessions, with saturation knees (honours \
             $(b,--jobs))")
  in
  Cmd.v
    (Cmd.info "open"
       ~doc:
         "drive the system with an open-arrival session stream and report \
          tail latency percentiles")
    Term.(
      const run_open $ prim $ arrival $ load $ sessions $ seed $ sweep
      $ jobs_arg $ shards_arg $ no_block_cache_arg)

(* --- trace: export a Chrome trace of a microbench run --- *)

let run_trace primitive same_cpu bytes iters out no_bc =
  apply_block_cache no_bc;
  let tr = Trace.create () in
  let r = M.run ~bytes ~iters ~trace:tr ~same_cpu primitive in
  let oc = open_out out in
  Trace.write_chrome oc tr;
  close_out oc;
  Printf.printf "%s (%s), %d-byte argument, %d iterations:\n"
    (M.primitive_name primitive)
    (if same_cpu then "=CPU" else "!=CPU")
    bytes iters;
  Printf.printf "  mean %.1f ns per round trip\n" r.M.mean_ns;
  Printf.printf "  %d events traced (%d retained, %d overwritten)\n"
    (Trace.total tr)
    (List.length (Trace.events tr))
    (Trace.dropped tr);
  Printf.printf "  replay digest %s\n" (Trace.digest_hex tr);
  Printf.printf "  wrote %s (open in chrome://tracing or ui.perfetto.dev)\n" out

let trace_cmd =
  let primitive =
    Arg.(
      value
      & opt primitive_conv M.Sem
      & info [ "primitive" ] ~doc:"sem|pipe|l4|rpc|user-rpc")
  in
  let same_cpu =
    Arg.(value & flag & info [ "same-cpu" ] ~doc:"pin both sides to one CPU")
  in
  let bytes = Arg.(value & opt int 1 & info [ "bytes" ] ~doc:"argument size") in
  let iters = Arg.(value & opt int 50 & info [ "iters" ] ~doc:"round trips") in
  let out =
    Arg.(value & opt string "trace.json" & info [ "out" ] ~doc:"output file")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"run a microbench under event tracing and export Chrome trace JSON")
    Term.(
      const run_trace $ primitive $ same_cpu $ bytes $ iters $ out
      $ no_block_cache_arg)

(* --- bench: the fixed-seed suite / fault matrix, sharded --- *)

let run_bench out matrix check inject_seed jobs no_bc =
  apply_block_cache no_bc;
  let jobs = resolve_jobs jobs in
  if matrix then begin
    let runs, faults =
      Suite.fault_matrix ~verbose:true ?seed:inject_seed ~jobs ()
    in
    Printf.printf "fault matrix: %d runs checked, %d faults injected\n%!" runs
      faults
  end
  else Suite.bench_json ~check ?inject_seed ~jobs out

let bench_cmd =
  let out =
    Arg.(
      value
      & opt string "BENCH_fixed_seed.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"JSON report path")
  in
  let matrix =
    Arg.(
      value & flag
      & info [ "matrix" ]
          ~doc:
            "run the fault-injection matrix (every primitive and the \
             OLTP/netpipe workloads) instead of the digest suite")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "run the fixed-seed benchmark suite (or fault matrix), sharded over \
          --jobs domains; digests are identical at any job count")
    Term.(
      const run_bench $ out $ matrix $ check_arg $ inject_arg $ jobs_arg
      $ no_block_cache_arg)

(* --- disasm: show the generated proxy for a configuration --- *)

let run_disasm policy cross =
  let mem = Dipc_hw.Memory.create () in
  let cache = Proxy.cache_create () in
  let config =
    {
      Proxy.sig_ = Types.signature ~args:2 ~rets:1 ();
      eff = policy;
      cross_process = cross;
      tls_switch = cross;
    }
  in
  let g =
    Proxy.generate cache ~mem ~base:0x10000 ~target_addr:0xbeef00 ~target_tag:7
      config
  in
  Printf.printf
    "proxy for %s/%s (entry 0x%x, return path 0x%x, %d bytes):\n"
    (if cross then "cross-process" else "same-process")
    (if policy = Types.props_high then "High" else "Low")
    g.Proxy.g_entry g.Proxy.g_ret g.Proxy.g_bytes;
  let addr = ref 0x10000 in
  while !addr < 0x10000 + g.Proxy.g_bytes do
    (match Dipc_hw.Memory.fetch mem !addr with
    | Some Isa.Nop -> () (* alignment padding *)
    | Some i -> Fmt.pr "  %06x: %a@." !addr Isa.pp i
    | None -> ());
    addr := !addr + Isa.instr_bytes
  done

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm" ~doc:"print the generated proxy template")
    Term.(const run_disasm $ policy $ cross)

let () =
  let info =
    Cmd.info "dipc" ~version:"1.0.0"
      ~doc:"direct inter-process communication on a simulated CODOMs machine"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            call_cmd;
            ipc_cmd;
            oltp_cmd;
            open_cmd;
            bench_cmd;
            disasm_cmd;
            trace_cmd;
          ]))
