(* dIPC command-line interface: poke at the simulated system without
   writing code.

     dune exec bin/dipc_cli.exe -- call --policy high --cross
     dune exec bin/dipc_cli.exe -- ipc --primitive rpc
     dune exec bin/dipc_cli.exe -- oltp --config dipc --threads 16
     dune exec bin/dipc_cli.exe -- disasm --policy high
     dune exec bin/dipc_cli.exe -- trace --primitive sem --out trace.json
*)

module Costs = Dipc_sim.Costs
module Stats = Dipc_sim.Stats
module Trace = Dipc_sim.Trace
module Inject = Dipc_sim.Inject
module Checker = Dipc_sim.Checker
module Types = Dipc_core.Types
module Scenario = Dipc_core.Scenario
module Proxy = Dipc_core.Proxy
module Asm = Dipc_core.Asm
module Isa = Dipc_hw.Isa
module M = Dipc_workloads.Microbench
module O = Dipc_workloads.Oltp

open Cmdliner

(* --- shared arguments --- *)

let policy_conv =
  let parse = function
    | "low" -> Ok Types.props_low
    | "high" -> Ok Types.props_high
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (low|high)" s))
  in
  let print ppf p =
    Fmt.string ppf (if p = Types.props_high then "high" else "low")
  in
  Arg.conv (parse, print)

let policy =
  Arg.(value & opt policy_conv Types.props_low & info [ "policy" ] ~doc:"low or high")

let cross =
  Arg.(value & flag & info [ "cross" ] ~doc:"cross-process call (dIPC +proc)")

let tls_opt =
  Arg.(value & flag & info [ "tls-opt" ] ~doc:"optimised TLS mode (Sec. 6.1.2)")

let inject_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "inject" ] ~docv:"SEED"
        ~doc:
          "install a seeded fault injector (delayed/lost IPIs, spurious \
           futex wakeups, forced preemptions); the same seed reproduces \
           the same fault schedule")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "run under event tracing with the online invariant checker \
           attached; any scheduler-invariant violation aborts loudly")

(* One injector per run from the CLI seed; [None] leaves every hook a
   no-op. *)
let mk_inject = Option.map (fun seed -> Inject.create ~seed ())

let mk_checker check =
  if not check then (None, None)
  else begin
    let tr = Trace.create () in
    let c = Checker.create () in
    Checker.attach c tr;
    (Some tr, Some c)
  end

let finish_checker ?quiescent ?expect tr chk =
  match (tr, chk) with
  | Some tr, Some c ->
      Checker.finish ?quiescent ?expect c;
      Checker.detach tr;
      Printf.printf "  checker: %d events seen, all invariants hold\n"
        (Checker.events_seen c)
  | _ -> ()

let report_inject inject =
  match inject with
  | Some inj -> Fmt.pr "  injected: %a@." Inject.pp_stats (Inject.stats inj)
  | None -> ()

(* --- call: measure one dIPC configuration --- *)

let run_call policy cross tls_opt =
  let s =
    Scenario.make ~same_process:(not cross) ~tls_optimized:tls_opt
      ~caller_props:policy ~callee_props:policy ()
  in
  let m = Scenario.measure s in
  Printf.printf "dIPC %s call, %s policy%s:\n"
    (if cross then "cross-process" else "same-process")
    (if policy = Types.props_high then "High" else "Low")
    (if tls_opt then ", optimised TLS" else "");
  Printf.printf "  %.1f ns per call (%.0fx a function call; sd %.2f)\n"
    m.Stats.s_mean
    (m.Stats.s_mean /. Costs.function_call)
    m.Stats.s_stddev

let call_cmd =
  Cmd.v
    (Cmd.info "call" ~doc:"measure a warm dIPC call on the machine model")
    Term.(const run_call $ policy $ cross $ tls_opt)

(* --- ipc: measure a baseline primitive --- *)

let primitive_conv =
  let parse = function
    | "sem" -> Ok M.Sem
    | "pipe" -> Ok M.Pipe
    | "l4" -> Ok M.L4
    | "rpc" -> Ok M.Local_rpc
    | "user-rpc" -> Ok M.User_rpc_prim
    | s -> Error (`Msg (Printf.sprintf "unknown primitive %S" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (M.primitive_name p))

let run_ipc primitive same_cpu bytes inject_seed check =
  let inject = mk_inject inject_seed in
  let tr, chk = mk_checker check in
  let r = M.run ~bytes ?trace:tr ?inject ~same_cpu primitive in
  (* The L4 server's final reply_and_wait parks it forever by design:
     skip the quiescence assertion for that primitive only. *)
  finish_checker ~quiescent:(primitive <> M.L4) ~expect:r.M.lifetime tr chk;
  Printf.printf "%s (%s), %d-byte argument:\n" (M.primitive_name primitive)
    (if same_cpu then "=CPU" else "!=CPU")
    bytes;
  Printf.printf "  %.1f ns per synchronous round trip\n" r.M.mean_ns;
  report_inject inject;
  (match tr with
  | Some tr -> Printf.printf "  replay digest %s\n" (Trace.digest_hex tr)
  | None -> ());
  Array.iteri
    (fun i bd ->
      if Dipc_sim.Breakdown.total bd > 1. then
        Fmt.pr "  CPU %d: %a@." (i + 1) Dipc_sim.Breakdown.pp bd)
    r.M.per_cpu

let ipc_cmd =
  let primitive =
    Arg.(
      value
      & opt primitive_conv M.Sem
      & info [ "primitive" ] ~doc:"sem|pipe|l4|rpc|user-rpc")
  in
  let same_cpu =
    Arg.(value & flag & info [ "same-cpu" ] ~doc:"pin both sides to one CPU")
  in
  let bytes = Arg.(value & opt int 1 & info [ "bytes" ] ~doc:"argument size") in
  Cmd.v
    (Cmd.info "ipc" ~doc:"measure a baseline IPC primitive on the kernel model")
    Term.(const run_ipc $ primitive $ same_cpu $ bytes $ inject_arg $ check_arg)

(* --- oltp: one macro-benchmark cell --- *)

let run_oltp config threads on_disk inject_seed check =
  let config =
    match config with
    | "linux" -> O.Linux
    | "dipc" -> O.Dipc
    | "ideal" -> O.Ideal
    | s -> failwith ("unknown config " ^ s)
  in
  let db_mode = if on_disk then O.On_disk else O.In_memory in
  let inject = mk_inject inject_seed in
  let tr, chk = mk_checker check in
  let r = O.run ?trace:tr ?inject ~config ~db_mode ~threads () in
  (* OLTP stops at a deadline with workers still parked: structural
     invariants only, no quiescence. *)
  finish_checker ~quiescent:false tr chk;
  Printf.printf "%s, %d threads/component, %s DB:\n" (O.config_name config)
    threads
    (if on_disk then "on-disk" else "in-memory");
  report_inject inject;
  (match tr with
  | Some tr -> Printf.printf "  replay digest %s\n" (Trace.digest_hex tr)
  | None -> ());
  Printf.printf "  throughput %.0f ops/min, latency %.2f ms\n" r.O.r_throughput_opm
    (r.O.r_latency_ns.Stats.s_mean /. 1e6);
  Printf.printf "  user %.1f%%  kernel %.1f%%  idle %.1f%%\n"
    (100. *. r.O.r_user_frac) (100. *. r.O.r_kernel_frac)
    (100. *. r.O.r_idle_frac)

let oltp_cmd =
  let config =
    Arg.(value & opt string "dipc" & info [ "config" ] ~doc:"linux|dipc|ideal")
  in
  let threads = Arg.(value & opt int 16 & info [ "threads" ] ~doc:"per component") in
  let on_disk = Arg.(value & flag & info [ "on-disk" ] ~doc:"on-disk database") in
  Cmd.v
    (Cmd.info "oltp" ~doc:"run one cell of the Figure 8 macro-benchmark")
    Term.(const run_oltp $ config $ threads $ on_disk $ inject_arg $ check_arg)

(* --- trace: export a Chrome trace of a microbench run --- *)

let run_trace primitive same_cpu bytes iters out =
  let tr = Trace.create () in
  let r = M.run ~bytes ~iters ~trace:tr ~same_cpu primitive in
  let oc = open_out out in
  Trace.write_chrome oc tr;
  close_out oc;
  Printf.printf "%s (%s), %d-byte argument, %d iterations:\n"
    (M.primitive_name primitive)
    (if same_cpu then "=CPU" else "!=CPU")
    bytes iters;
  Printf.printf "  mean %.1f ns per round trip\n" r.M.mean_ns;
  Printf.printf "  %d events traced (%d retained, %d overwritten)\n"
    (Trace.total tr)
    (List.length (Trace.events tr))
    (Trace.dropped tr);
  Printf.printf "  replay digest %s\n" (Trace.digest_hex tr);
  Printf.printf "  wrote %s (open in chrome://tracing or ui.perfetto.dev)\n" out

let trace_cmd =
  let primitive =
    Arg.(
      value
      & opt primitive_conv M.Sem
      & info [ "primitive" ] ~doc:"sem|pipe|l4|rpc|user-rpc")
  in
  let same_cpu =
    Arg.(value & flag & info [ "same-cpu" ] ~doc:"pin both sides to one CPU")
  in
  let bytes = Arg.(value & opt int 1 & info [ "bytes" ] ~doc:"argument size") in
  let iters = Arg.(value & opt int 50 & info [ "iters" ] ~doc:"round trips") in
  let out =
    Arg.(value & opt string "trace.json" & info [ "out" ] ~doc:"output file")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"run a microbench under event tracing and export Chrome trace JSON")
    Term.(const run_trace $ primitive $ same_cpu $ bytes $ iters $ out)

(* --- disasm: show the generated proxy for a configuration --- *)

let run_disasm policy cross =
  let mem = Dipc_hw.Memory.create () in
  let cache = Proxy.cache_create () in
  let config =
    {
      Proxy.sig_ = Types.signature ~args:2 ~rets:1 ();
      eff = policy;
      cross_process = cross;
      tls_switch = cross;
    }
  in
  let g =
    Proxy.generate cache ~mem ~base:0x10000 ~target_addr:0xbeef00 ~target_tag:7
      config
  in
  Printf.printf
    "proxy for %s/%s (entry 0x%x, return path 0x%x, %d bytes):\n"
    (if cross then "cross-process" else "same-process")
    (if policy = Types.props_high then "High" else "Low")
    g.Proxy.g_entry g.Proxy.g_ret g.Proxy.g_bytes;
  let addr = ref 0x10000 in
  while !addr < 0x10000 + g.Proxy.g_bytes do
    (match Dipc_hw.Memory.fetch mem !addr with
    | Some Isa.Nop -> () (* alignment padding *)
    | Some i -> Fmt.pr "  %06x: %a@." !addr Isa.pp i
    | None -> ());
    addr := !addr + Isa.instr_bytes
  done

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm" ~doc:"print the generated proxy template")
    Term.(const run_disasm $ policy $ cross)

let () =
  let info =
    Cmd.info "dipc" ~version:"1.0.0"
      ~doc:"direct inter-process communication on a simulated CODOMs machine"
  in
  exit
    (Cmd.eval (Cmd.group info [ call_cmd; ipc_cmd; oltp_cmd; disasm_cmd; trace_cmd ]))
