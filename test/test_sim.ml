(* Tests for the simulation substrate: event heap, RNG, statistics,
   breakdown accounting, memory cost model, and the effect-handler
   discrete-event engine. *)

module Heap = Dipc_sim.Heap
module Rng = Dipc_sim.Rng
module Stats = Dipc_sim.Stats
module Breakdown = Dipc_sim.Breakdown
module Memcost = Dipc_sim.Memcost
module Engine = Dipc_sim.Engine
module Waitq = Dipc_sim.Waitq
module Histogram = Dipc_sim.Histogram

let check_float = Alcotest.(check (float 1e-9))

let checkf msg ~expected ~tolerance actual =
  if Float.abs (actual -. expected) > tolerance then
    Alcotest.failf "%s: expected %f +- %f, got %f" msg expected tolerance actual

(* --- heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.push h ~time:t t) [ 5.; 1.; 3.; 2.; 4. ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.)))
    "sorted" [ 1.; 2.; 3.; 4.; 5. ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~time:1. v) [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order at equal times"
    [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek_time h = None)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (float_bound_exclusive 1e6))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:t ()) times;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= prev && drain t
      in
      drain neg_infinity)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.float a = Rng.float b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:100 QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let f = Rng.float r in
        if f < 0. || f >= 1. then ok := false
      done;
      !ok)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int in [0,bound)" ~count:100
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:7 in
  let acc = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:100.
  done;
  checkf "exponential mean" ~expected:100. ~tolerance:3. (!acc /. float_of_int n)

(* --- stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  check_float "mean" 3. (Stats.mean s);
  check_float "min" 1. (Stats.min_value s);
  check_float "max" 5. (Stats.max_value s);
  checkf "stddev" ~expected:(sqrt 2.5) ~tolerance:1e-9 (Stats.stddev s);
  Alcotest.(check int) "count" 5 (Stats.count s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "mean of empty" 0. (Stats.mean s);
  check_float "stddev of empty" 0. (Stats.stddev s)

let test_stats_percentile () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Stats.percentile samples 50.);
  check_float "p99" 99. (Stats.percentile samples 99.);
  check_float "p100" 100. (Stats.percentile samples 100.)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1e6))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min_value s -. 1e-6
      && Stats.mean s <= Stats.max_value s +. 1e-6)

(* --- breakdown --- *)

let test_breakdown_charge () =
  let b = Breakdown.create () in
  Breakdown.charge b Breakdown.User_code 10.;
  Breakdown.charge b Breakdown.Kernel 5.;
  Breakdown.charge b Breakdown.User_code 2.;
  check_float "user" 12. (Breakdown.get b Breakdown.User_code);
  check_float "total" 17. (Breakdown.total b)

let test_breakdown_merge_scale () =
  let a = Breakdown.create () and b = Breakdown.create () in
  Breakdown.charge a Breakdown.Idle 4.;
  Breakdown.charge b Breakdown.Idle 6.;
  Breakdown.merge ~into:a b;
  check_float "merged" 10. (Breakdown.get a Breakdown.Idle);
  let half = Breakdown.scale a 0.5 in
  check_float "scaled" 5. (Breakdown.get half Breakdown.Idle)

let test_breakdown_figure2_folding () =
  let b = Breakdown.create () in
  Breakdown.charge b Breakdown.Proxy 7.;
  Breakdown.charge b Breakdown.Stub 3.;
  Breakdown.charge b Breakdown.Kernel 1.;
  let f = Breakdown.to_figure2 b in
  check_float "proxy folds into kernel" 8. (Breakdown.get f Breakdown.Kernel);
  check_float "stub folds into user" 3. (Breakdown.get f Breakdown.User_code);
  check_float "proxy cleared" 0. (Breakdown.get f Breakdown.Proxy);
  check_float "total preserved" (Breakdown.total b) (Breakdown.total f)

(* A breakdown built from an arbitrary list of (category, ns) charges. *)
let breakdown_of charges =
  let b = Breakdown.create () in
  List.iter
    (fun (i, ns) -> Breakdown.charge b (List.nth Breakdown.all_categories i) ns)
    charges;
  b

let charges_gen =
  QCheck.(list_of_size Gen.(0 -- 30) (pair (int_range 0 8) (float_bound_exclusive 1e9)))

let breakdown_close a b =
  List.for_all
    (fun c ->
      let x = Breakdown.get a c and y = Breakdown.get b c in
      Float.abs (x -. y) <= 1e-6 *. (1. +. Float.abs x))
    Breakdown.all_categories

let prop_breakdown_merge_commutative =
  QCheck.Test.make ~name:"breakdown merge is commutative" ~count:200
    QCheck.(pair charges_gen charges_gen)
    (fun (xs, ys) ->
      let ab = breakdown_of xs and ba = breakdown_of ys in
      Breakdown.merge ~into:ab (breakdown_of ys);
      Breakdown.merge ~into:ba (breakdown_of xs);
      breakdown_close ab ba)

let prop_breakdown_merge_associative =
  QCheck.Test.make ~name:"breakdown merge is associative" ~count:200
    QCheck.(triple charges_gen charges_gen charges_gen)
    (fun (xs, ys, zs) ->
      (* (a + b) + c *)
      let left = breakdown_of xs in
      Breakdown.merge ~into:left (breakdown_of ys);
      Breakdown.merge ~into:left (breakdown_of zs);
      (* a + (b + c) *)
      let bc = breakdown_of ys in
      Breakdown.merge ~into:bc (breakdown_of zs);
      let right = breakdown_of xs in
      Breakdown.merge ~into:right bc;
      breakdown_close left right)

let prop_breakdown_scale_identity =
  QCheck.Test.make ~name:"breakdown scale 1.0 is the identity" ~count:200
    charges_gen
    (fun xs ->
      let b = breakdown_of xs in
      breakdown_close b (Breakdown.scale b 1.0))

let prop_breakdown_total_is_sum =
  QCheck.Test.make ~name:"breakdown total = sum of get over all categories"
    ~count:200 charges_gen
    (fun xs ->
      let b = breakdown_of xs in
      let sum =
        List.fold_left (fun acc c -> acc +. Breakdown.get b c) 0.
          Breakdown.all_categories
      in
      Float.abs (Breakdown.total b -. sum) <= 1e-6 *. (1. +. Float.abs sum))

(* --- memcost --- *)

let test_memcost_monotone () =
  let prev = ref 0. in
  List.iter
    (fun b ->
      let c = Memcost.user_copy b in
      Alcotest.(check bool) "copy cost grows" true (c > !prev);
      prev := c)
    [ 64; 1024; 32 * 1024; 256 * 1024; 1024 * 1024 ]

let test_memcost_cache_kinks () =
  (* Per-byte cost steps up when the footprint spills L1 and then L2. *)
  let per_byte b = Memcost.write_buffer b /. float_of_int b in
  Alcotest.(check bool) "L1 < L2 rate" true (per_byte 1024 < per_byte (128 * 1024));
  Alcotest.(check bool) "L2 < mem rate" true
    (per_byte (128 * 1024) < per_byte (4 * 1024 * 1024))

let test_memcost_kernel_copy_page_checks () =
  (* Kernel copies add per-page costs over a user copy. *)
  let bytes = 8 * 4096 in
  Alcotest.(check bool) "kernel copy slower" true
    (Memcost.kernel_copy bytes > Memcost.user_copy bytes)

(* --- engine --- *)

let test_engine_delay_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      Engine.delay 10.;
      log := ("a", Engine.current_time ()) :: !log);
  Engine.spawn e (fun () ->
      Engine.delay 5.;
      log := ("b", Engine.current_time ()) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.))))
    "order and times"
    [ ("b", 5.); ("a", 10.) ]
    (List.rev !log)

let test_engine_suspend_resume () =
  let e = Engine.create () in
  let slot = ref None in
  let got = ref (-1) in
  Engine.spawn e (fun () ->
      let v = Engine.suspend (fun w -> slot := Some w) in
      got := v);
  Engine.spawn e (fun () ->
      Engine.delay 3.;
      match !slot with Some w -> Engine.resume w 42 | None -> ());
  Engine.run e;
  Alcotest.(check int) "value delivered" 42 !got

let test_engine_double_resume_rejected () =
  let e = Engine.create () in
  let slot = ref None in
  Engine.spawn e (fun () -> ignore (Engine.suspend (fun w -> slot := Some w)));
  Engine.spawn e (fun () ->
      Engine.delay 1.;
      match !slot with
      | Some w ->
          Engine.resume w ();
          Alcotest.check_raises "second resume raises"
            (Invalid_argument "Engine.resume: waker fired twice") (fun () ->
              Engine.resume w ())
      | None -> ());
  Engine.run e

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.spawn e (fun () ->
      Engine.delay 10.;
      incr fired;
      Engine.delay 10.;
      incr fired);
  Engine.run_until e 15.;
  Alcotest.(check int) "only first event" 1 !fired;
  check_float "clock at deadline" 15. (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest continues" 2 !fired

let test_waitq_fifo () =
  let e = Engine.create () in
  let q = Waitq.create () in
  let out = ref [] in
  for i = 1 to 3 do
    Engine.spawn e (fun () ->
        let v = Waitq.wait q in
        out := (i, v) :: !out)
  done;
  Engine.spawn e (fun () ->
      Engine.delay 1.;
      ignore (Waitq.wake_one q "x");
      ignore (Waitq.wake_all q "y"));
  Engine.run e;
  Alcotest.(check (list (pair int string)))
    "fifo and broadcast"
    [ (1, "x"); (2, "y"); (3, "y") ]
    (List.rev !out)

let test_histogram () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.; 2.; 4.; 1024.; 1_000_000. ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  (* Rank 3 of 5 is the sample 4.; HDR resolution is <= 1% relative. *)
  let p50 = Histogram.percentile h 50. in
  Alcotest.(check bool) "p50 within 1% of 4" true (Float.abs (p50 -. 4.) <= 0.04);
  let p99 = Histogram.percentile h 99. in
  Alcotest.(check bool) "p99 within 1% of 1e6" true
    (Float.abs (p99 -. 1e6) <= 1e4)

let samples_gen =
  QCheck.(list_of_size Gen.(0 -- 100) (float_bound_exclusive 1e9))

let histogram_of xs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) xs;
  h

let prop_histogram_quantiles_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone in p" ~count:200
    QCheck.(triple samples_gen (float_range 0. 100.) (float_range 0. 100.))
    (fun (xs, p1, p2) ->
      let h = histogram_of xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Histogram.percentile h lo <= Histogram.percentile h hi)

let prop_histogram_merge_preserves_count =
  QCheck.Test.make ~name:"histogram merge preserves count" ~count:200
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = histogram_of xs in
      Histogram.merge ~into:a (histogram_of ys);
      Histogram.count a = List.length xs + List.length ys)

let prop_histogram_merge_equals_union =
  QCheck.Test.make ~name:"histogram merge = histogram of concatenation" ~count:200
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = histogram_of xs in
      Histogram.merge ~into:a (histogram_of ys);
      let u = histogram_of (xs @ ys) in
      List.for_all
        (fun p -> Histogram.percentile a p = Histogram.percentile u p)
        [ 0.; 10.; 50.; 90.; 99.; 100. ])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_order;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty" `Quick test_heap_empty;
      ]
      @ qsuite [ prop_heap_sorted ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
      ]
      @ qsuite [ prop_rng_float_range; prop_rng_int_range ] );
    ( "sim.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
      ]
      @ qsuite [ prop_stats_mean_bounds ] );
    ( "sim.breakdown",
      [
        Alcotest.test_case "charge/total" `Quick test_breakdown_charge;
        Alcotest.test_case "merge/scale" `Quick test_breakdown_merge_scale;
        Alcotest.test_case "figure2 folding" `Quick test_breakdown_figure2_folding;
      ]
      @ qsuite
          [
            prop_breakdown_merge_commutative;
            prop_breakdown_merge_associative;
            prop_breakdown_scale_identity;
            prop_breakdown_total_is_sum;
          ] );
    ( "sim.memcost",
      [
        Alcotest.test_case "monotone" `Quick test_memcost_monotone;
        Alcotest.test_case "cache kinks" `Quick test_memcost_cache_kinks;
        Alcotest.test_case "kernel page checks" `Quick
          test_memcost_kernel_copy_page_checks;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "delay ordering" `Quick test_engine_delay_ordering;
        Alcotest.test_case "suspend/resume" `Quick test_engine_suspend_resume;
        Alcotest.test_case "double resume" `Quick test_engine_double_resume_rejected;
        Alcotest.test_case "run_until" `Quick test_engine_run_until;
        Alcotest.test_case "waitq fifo" `Quick test_waitq_fifo;
        Alcotest.test_case "histogram" `Quick test_histogram;
      ]
      @ qsuite
          [
            prop_histogram_quantiles_monotone;
            prop_histogram_merge_preserves_count;
            prop_histogram_merge_equals_union;
          ] );
  ]
