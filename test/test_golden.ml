(* Golden-digest corpus: rerun all 13 benchmark experiments through the
   shared suite library and pin every replay digest against the
   committed bench/BENCH_baseline.json.  Any unintended change to the
   event timeline — engine, kernel, IPC layer, workloads — shows up
   here as a digest mismatch naming the experiment that moved. *)

module Suite = Dipc_bench_suite.Suite

(* The dune rule copies the baseline next to the test binary. *)
let baseline_path = "../bench/BENCH_baseline.json"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Naive scanner for the flat one-experiment-per-line JSON we emit:
   pull every ("name", "digest") string pair out of the experiments
   array, in order.  Digest values may contain spaces (the raw-state
   summaries of the machine/engine experiments), so capture runs to
   the closing quote. *)
let parse_baseline text =
  let quoted_after key from =
    match
      let rec find i =
        if i + String.length key > String.length text then None
        else if String.sub text i (String.length key) = key then Some i
        else find (i + 1)
      in
      find from
    with
    | None -> None
    | Some i -> (
        let start = i + String.length key in
        match String.index_from_opt text start '"' with
        | None -> None
        | Some stop -> Some (String.sub text start (stop - start), stop))
  in
  let rec collect acc from =
    match quoted_after {|"name": "|} from with
    | None -> List.rev acc
    | Some (name, after_name) -> (
        match quoted_after {|"digest": "|} after_name with
        | None -> List.rev acc
        | Some (digest, after_digest) ->
            collect ((name, digest) :: acc) after_digest)
  in
  collect [] 0

let test_baseline_parses () =
  let pins = parse_baseline (read_file baseline_path) in
  Alcotest.(check int) "13 pinned experiments" 13 (List.length pins);
  List.iter
    (fun (name, digest) ->
      Alcotest.(check bool)
        (name ^ " has a digest")
        true
        (String.length digest > 0))
    pins

let test_digests_match_baseline () =
  let pins = parse_baseline (read_file baseline_path) in
  let results = Suite.bench_suite () in
  Alcotest.(check int) "suite covers the pinned corpus" (List.length pins)
    (List.length results);
  List.iter2
    (fun (name, digest) r ->
      Alcotest.(check string) ("experiment order: " ^ name) name
        r.Suite.b_name;
      Alcotest.(check string) ("digest: " ^ name) digest r.Suite.b_digest)
    pins results

let suites =
  [
    ( "golden",
      [
        Alcotest.test_case "baseline corpus parses" `Quick test_baseline_parses;
        Alcotest.test_case "all 13 digests match the baseline" `Slow
          test_digests_match_baseline;
      ] );
  ]
