(* Golden-digest corpus: rerun all 37 benchmark experiments through the
   shared suite library and pin every replay digest against the
   committed bench/BENCH_baseline.json.  Any unintended change to the
   event timeline — engine, kernel, IPC layer, workloads — shows up
   here as a digest mismatch naming the experiment that moved.

   Parsing lives in bench/golden.ml, shared with the CI comparator
   (bench/check_golden.ml) and the parallel differential tests.  The
   mutation smokes below corrupt synthetic reports cell by cell and
   assert the comparator fails loudly, naming the offending cell: a
   gate that cannot fail is not a gate. *)

module Suite = Dipc_bench_suite.Suite
module Golden = Dipc_bench_suite.Golden
module Parallel = Dipc_sim.Parallel

(* The dune rule copies the baseline next to the test binary. *)
let baseline_path = "../bench/BENCH_baseline.json"

let pinned_experiments = 37

let test_baseline_parses () =
  let pins = Golden.parse_file baseline_path in
  Alcotest.(check int) "37 pinned experiments" pinned_experiments
    (List.length pins);
  List.iter
    (fun (name, digest) ->
      Alcotest.(check bool)
        (name ^ " has a digest")
        true
        (String.length digest > 0))
    pins

(* Every pinned row carries the counters column, and the rows that run
   on the machine dispatcher pin non-trivial deterministic counters. *)
let test_baseline_counters_present () =
  let rows = Golden.parse_rows (Golden.read_file baseline_path) in
  Alcotest.(check int) "row parser sees the full corpus" pinned_experiments
    (List.length rows);
  let machine_rows =
    List.filter
      (fun r ->
        r.Golden.r_name = "machine_hotloop"
        || r.Golden.r_name = "machine_superblock"
        || r.Golden.r_name = "machine_callret")
      rows
  in
  Alcotest.(check int) "machine rows present" 3 (List.length machine_rows);
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        (r.Golden.r_name ^ " counter schema")
        [
          "instret"; "blocks"; "sb_hits"; "sb_xlate"; "side_exits";
          "ras_hits"; "ras_misses"; "ic_hits"; "ic_misses";
        ]
        (List.map fst r.Golden.r_counters);
      Alcotest.(check bool)
        (r.Golden.r_name ^ " retired instructions")
        true
        (List.assoc "instret" r.Golden.r_counters > 0))
    machine_rows

(* The heavyweight corpus rerun goes through the work-queue runner: the
   digests are pinned against the serial baseline, so this doubles as a
   serial==parallel proof on multi-core machines while cutting the
   runtest critical path. *)
let test_digests_match_baseline () =
  let pins = Golden.parse_file baseline_path in
  let results = Suite.bench_suite ~jobs:(Parallel.default_jobs ()) () in
  Alcotest.(check int) "suite covers the pinned corpus" (List.length pins)
    (List.length results);
  List.iter2
    (fun (name, digest) r ->
      Alcotest.(check string) ("experiment order: " ^ name) name
        r.Suite.b_name;
      Alcotest.(check string) ("digest: " ^ name) digest r.Suite.b_digest)
    pins results

(* --- Comparator mutation smokes ----------------------------------------

   Synthetic two-row reports, mutated one cell at a time.  Each
   mutation must produce at least one mismatch whose name pinpoints
   the corrupted cell — these tests are the reason we can trust a
   green counter gate in CI. *)

let synth_report rows =
  let body =
    String.concat ",\n"
      (List.map
         (fun (name, counters, digest, mips) ->
           Printf.sprintf
             "    {\"name\": \"%s\", \"wall_s\": 0.1, \"sim_ns\": 1.0, \
              \"events\": 10, \"events_per_sec\": 100.0, \"instret\": %d, \
              \"sim_mips\": %.3f, \"minor_words\": 0, \
              \"counters\": {%s}, \
              \"digest\": \"%s\", \"metric_name\": \"m\", \"metric\": 1.0}"
             name
             (match counters with (_, v) :: _ -> v | [] -> 0)
             mips
             (String.concat ", "
                (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) counters))
             digest)
         rows)
  in
  Printf.sprintf
    "{\n  \"schema\": \"dipc-bench/v1\",\n  \"golden_digest\": \"abc\",\n\
    \  \"experiments\": [\n%s\n  ]\n}\n" body

let base_rows =
  [
    ("exp_a", [ ("instret", 100); ("blocks", 7) ], "d_a", 10.0);
    ("exp_b", [ ("instret", 200); ("blocks", 9) ], "d_b", 20.0);
  ]

let baseline_text = synth_report base_rows

let mm_names mms = List.map (fun m -> m.Golden.mm_name) mms

let test_counters_identity () =
  Alcotest.(check (list string))
    "identical reports produce no counter mismatch" []
    (mm_names
       (Golden.compare_counters ~baseline:baseline_text
          ~candidate:baseline_text))

let test_counters_corrupt_cell () =
  let candidate =
    synth_report
      [
        ("exp_a", [ ("instret", 100); ("blocks", 7) ], "d_a", 10.0);
        ("exp_b", [ ("instret", 201); ("blocks", 9) ], "d_b", 20.0);
      ]
  in
  let mms =
    Golden.compare_counters ~baseline:baseline_text ~candidate
  in
  Alcotest.(check (list string))
    "corrupted counter is named cell by cell" [ "exp_b.instret" ]
    (mm_names mms);
  let m = List.hd mms in
  Alcotest.(check string) "expected value" "200" m.Golden.mm_expected;
  Alcotest.(check string) "actual value" "201" m.Golden.mm_actual

let test_counters_dropped_row () =
  let candidate =
    synth_report [ ("exp_a", [ ("instret", 100); ("blocks", 7) ], "d_a", 10.0) ]
  in
  let mms =
    Golden.compare_counters ~baseline:baseline_text ~candidate
  in
  Alcotest.(check (list string))
    "dropped row is named" [ "exp_b" ] (mm_names mms);
  Alcotest.(check string) "missing side marked" "<missing row>"
    (List.hd mms).Golden.mm_actual

let test_counters_reordered_rows () =
  let candidate =
    synth_report
      [
        ("exp_b", [ ("instret", 200); ("blocks", 9) ], "d_b", 20.0);
        ("exp_a", [ ("instret", 100); ("blocks", 7) ], "d_a", 10.0);
      ]
  in
  let mms =
    Golden.compare_counters ~baseline:baseline_text ~candidate
  in
  Alcotest.(check bool) "reorder detected" true (mms <> []);
  Alcotest.(check bool) "reorder named positionally" true
    (List.exists
       (fun n -> n = "exp_a/exp_b (row order)")
       (mm_names mms))

let test_counters_dropped_key () =
  let candidate =
    synth_report
      [
        ("exp_a", [ ("instret", 100) ], "d_a", 10.0);
        ("exp_b", [ ("instret", 200); ("blocks", 9) ], "d_b", 20.0);
      ]
  in
  let mms =
    Golden.compare_counters ~baseline:baseline_text ~candidate
  in
  Alcotest.(check (list string))
    "dropped counter key is named" [ "exp_a.blocks" ] (mm_names mms)

let test_mips_ratchet () =
  Alcotest.(check (list string))
    "identical reports pass the ratchet" []
    (mm_names
       (Golden.compare_mips_ratchet ~ratio:0.25 ~baseline:baseline_text
          ~candidate:baseline_text));
  let slow =
    synth_report
      [
        ("exp_a", [ ("instret", 100); ("blocks", 7) ], "d_a", 10.0);
        ("exp_b", [ ("instret", 200); ("blocks", 9) ], "d_b", 1.0);
      ]
  in
  Alcotest.(check (list string))
    "regressed row is named" [ "exp_b" ]
    (mm_names
       (Golden.compare_mips_ratchet ~ratio:0.25 ~baseline:baseline_text
          ~candidate:slow));
  (* A 4x slack floor tolerates ordinary CI jitter: 60% of baseline
     passes at ratio 0.25. *)
  let jitter =
    synth_report
      [
        ("exp_a", [ ("instret", 100); ("blocks", 7) ], "d_a", 6.0);
        ("exp_b", [ ("instret", 200); ("blocks", 9) ], "d_b", 12.0);
      ]
  in
  Alcotest.(check (list string))
    "jitter within the floor passes" []
    (mm_names
       (Golden.compare_mips_ratchet ~ratio:0.25 ~baseline:baseline_text
          ~candidate:jitter))

(* The history trend reporter: needs two rows, diffs the last two, and
   names sim-MIPS movement and counter deltas per cell. *)
let test_trend_report () =
  let hist_row commit mips counters =
    Printf.sprintf
      "{\"schema\": \"dipc-bench-hist/v1\", \"commit\": \"%s\", \"utc\": \
       \"2026-01-01T00:00:00Z\", \"experiments\": [{\"name\": \"exp_a\", \
       \"sim_mips\": %.3f, \"counters\": {%s}}]}"
      commit mips counters
  in
  (match Golden.trend_report ~history:(hist_row "aaa" 10.0 "\"side_exits\": 5")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a single row cannot trend");
  let history =
    hist_row "aaa" 10.0 "\"side_exits\": 5"
    ^ "\n"
    ^ hist_row "bbb" 13.0 "\"side_exits\": 2"
    ^ "\n"
  in
  match Golden.trend_report ~history with
  | Error m -> Alcotest.fail m
  | Ok lines ->
      let text = String.concat "\n" lines in
      let has s = Golden.find_sub text s 0 <> None in
      Alcotest.(check bool) "header names both commits" true
        (has "aaa" && has "bbb");
      Alcotest.(check bool) "sim-MIPS delta reported" true (has "+30.0%");
      Alcotest.(check bool) "counter delta reported" true
        (has "side_exits 5 -> 2")

let suites =
  [
    ( "golden",
      [
        Alcotest.test_case "baseline corpus parses" `Quick test_baseline_parses;
        Alcotest.test_case "baseline pins the counter columns" `Quick
          test_baseline_counters_present;
        Alcotest.test_case "all 37 digests match the baseline" `Slow
          test_digests_match_baseline;
        Alcotest.test_case "counter gate: identity" `Quick
          test_counters_identity;
        Alcotest.test_case "counter gate: corrupted cell named" `Quick
          test_counters_corrupt_cell;
        Alcotest.test_case "counter gate: dropped row named" `Quick
          test_counters_dropped_row;
        Alcotest.test_case "counter gate: reordered rows named" `Quick
          test_counters_reordered_rows;
        Alcotest.test_case "counter gate: dropped key named" `Quick
          test_counters_dropped_key;
        Alcotest.test_case "sim_mips ratchet" `Quick test_mips_ratchet;
        Alcotest.test_case "history trend report" `Quick test_trend_report;
      ] );
  ]
