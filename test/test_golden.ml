(* Golden-digest corpus: rerun all 35 benchmark experiments through the
   shared suite library and pin every replay digest against the
   committed bench/BENCH_baseline.json.  Any unintended change to the
   event timeline — engine, kernel, IPC layer, workloads — shows up
   here as a digest mismatch naming the experiment that moved.

   Parsing lives in bench/golden.ml, shared with the CI comparator
   (bench/check_golden.ml) and the parallel differential tests. *)

module Suite = Dipc_bench_suite.Suite
module Golden = Dipc_bench_suite.Golden
module Parallel = Dipc_sim.Parallel

(* The dune rule copies the baseline next to the test binary. *)
let baseline_path = "../bench/BENCH_baseline.json"

let test_baseline_parses () =
  let pins = Golden.parse_file baseline_path in
  Alcotest.(check int) "35 pinned experiments" 35 (List.length pins);
  List.iter
    (fun (name, digest) ->
      Alcotest.(check bool)
        (name ^ " has a digest")
        true
        (String.length digest > 0))
    pins

(* The heavyweight corpus rerun goes through the work-queue runner: the
   digests are pinned against the serial baseline, so this doubles as a
   serial==parallel proof on multi-core machines while cutting the
   runtest critical path. *)
let test_digests_match_baseline () =
  let pins = Golden.parse_file baseline_path in
  let results = Suite.bench_suite ~jobs:(Parallel.default_jobs ()) () in
  Alcotest.(check int) "suite covers the pinned corpus" (List.length pins)
    (List.length results);
  List.iter2
    (fun (name, digest) r ->
      Alcotest.(check string) ("experiment order: " ^ name) name
        r.Suite.b_name;
      Alcotest.(check string) ("digest: " ^ name) digest r.Suite.b_digest)
    pins results

let suites =
  [
    ( "golden",
      [
        Alcotest.test_case "baseline corpus parses" `Quick test_baseline_parses;
        Alcotest.test_case "all 35 digests match the baseline" `Slow
          test_digests_match_baseline;
      ] );
  ]
