(* Hot-path substrate regressions: the heap, APL cache, memory and
   trace-digest representations were all rewritten for speed in the
   performance-overhaul PR, under the rule that fixed-seed replay
   digests must not move.  These tests pin each optimized structure to
   its reference semantics with property tests and targeted units, so a
   future "optimization" that bends behavior fails here rather than in
   a shifted golden digest nobody can decode. *)

module Heap = Dipc_sim.Heap
module Trace = Dipc_sim.Trace
module Breakdown = Dipc_sim.Breakdown
module Memory = Dipc_hw.Memory
module Apl_cache = Dipc_hw.Apl_cache
module Capability = Dipc_hw.Capability
module Perm = Dipc_hw.Perm

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* --- heap: pop order, tie-breaking, model equivalence --- *)

(* Times drawn from a small grid so equal timestamps are common — the
   FIFO tie-break is the property under test. *)
let time_gen = QCheck.map (fun n -> float_of_int n /. 4.) QCheck.(int_range 0 40)

let drain h =
  let rec go acc = match Heap.pop h with
    | None -> List.rev acc
    | Some (time, payload) -> go ((time, payload) :: acc)
  in
  go []

let heap_of items =
  let h = Heap.create () in
  List.iter (fun (time, payload) -> Heap.push h ~time payload) items;
  h

let prop_pop_sorted =
  QCheck.Test.make ~name:"heap pops sorted by time" ~count:300
    QCheck.(list_of_size Gen.(0 -- 60) time_gen)
    (fun times ->
      let popped = drain (heap_of (List.mapi (fun i t -> (t, i)) times)) in
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      List.length popped = List.length times && sorted popped)

let prop_fifo_at_equal_times =
  QCheck.Test.make ~name:"heap is FIFO among equal timestamps" ~count:300
    QCheck.(pair (int_range 0 40) (int_range 1 50))
    (fun (t, n) ->
      let time = float_of_int t in
      let popped = drain (heap_of (List.init n (fun i -> (time, i)))) in
      popped = List.init n (fun i -> (time, i)))

(* Stable sort by time alone is exactly "earliest first, insertion order
   among equals" — the heap must agree with it on any input. *)
let prop_matches_stable_sort =
  QCheck.Test.make ~name:"heap drain equals stable sort" ~count:300
    QCheck.(list_of_size Gen.(0 -- 80) time_gen)
    (fun times ->
      let items = List.mapi (fun i t -> (t, i)) times in
      let expected =
        List.stable_sort (fun (a, _) (b, _) -> compare (a : float) b) items
      in
      drain (heap_of items) = expected)

(* Interleaved pushes and pops against a sorted-list model, exercising
   the hole-percolation paths with a heap that grows and shrinks. *)
let prop_push_pop_model =
  QCheck.Test.make ~name:"heap push/pop matches list model" ~count:200
    QCheck.(list_of_size Gen.(0 -- 120) (option time_gen))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] (* sorted (time, seq, id); seq breaks ties *) in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some time ->
              let id = !seq in
              incr seq;
              Heap.push h ~time id;
              model :=
                List.stable_sort
                  (fun (a, sa, _) (b, sb, _) -> compare (a, sa) (b, sb))
                  ((time, id, id) :: !model)
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> ()
              | Some (time, payload), (mt, _, mid) :: rest ->
                  if time <> mt || payload <> mid then ok := false
                  else model := rest
              | _ -> ok := false))
        ops;
      !ok && Heap.length h = List.length !model)

let prop_pop_min_agrees =
  QCheck.Test.make ~name:"top_time/pop_min agree with pop" ~count:200
    QCheck.(list_of_size Gen.(1 -- 60) time_gen)
    (fun times ->
      let items = List.mapi (fun i t -> (t, i)) times in
      let a = heap_of items and b = heap_of items in
      let ok = ref true in
      while not (Heap.is_empty a) do
        let time = Heap.top_time a in
        let payload = Heap.pop_min a in
        (match Heap.pop b with
        | Some (time', payload') ->
            if time <> time' || payload <> payload' then ok := false
        | None -> ok := false)
      done;
      !ok && Heap.is_empty b)

(* --- heap: popped payloads must not be retained --- *)

(* Separate non-inlined stages so no stack slot of the test function
   keeps the payloads alive across the GC. *)
let[@inline never] fill_heap h n =
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let payload = Bytes.make 24 'x' in
    Weak.set w i (Some payload);
    Heap.push h ~time:(float_of_int (n - i)) payload
  done;
  w

let[@inline never] drain_heap h = while Heap.pop h <> None do () done

let test_no_payload_retention () =
  let h = Heap.create () in
  let n = 33 in
  let w = fill_heap h n in
  drain_heap h;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  Alcotest.(check int) "popped payloads collected after drain" 0 !live;
  (* The heap stays usable after the drain. *)
  Heap.push h ~time:1. (Bytes.make 1 'y');
  Alcotest.(check int) "heap usable after drain" 1 (Heap.length h)

(* --- APL cache: reset, and LRU model equivalence --- *)

let test_apl_reset_clears_stats () =
  let c = Apl_cache.create () in
  ignore (Apl_cache.lookup c 7);
  ignore (Apl_cache.install c 7);
  ignore (Apl_cache.lookup c 7);
  ignore (Apl_cache.ensure c 9);
  let hits, misses, refills = Apl_cache.stats c in
  Alcotest.(check bool) "activity recorded" true (hits > 0 && misses > 0 && refills > 0);
  Apl_cache.reset c;
  Alcotest.(check (triple int int int)) "reset clears hits/misses/refills" (0, 0, 0)
    (Apl_cache.stats c);
  Alcotest.(check (list int)) "reset clears residency" [] (Apl_cache.resident_tags c);
  (* A fresh miss after reset counts from zero. *)
  ignore (Apl_cache.ensure c 7);
  Alcotest.(check (triple int int int)) "counting restarts" (0, 1, 1) (Apl_cache.stats c)

(* Naive reference model of the cache: an array scanned in full, no
   index.  Victim = first empty slot, else first least-recently-used. *)
module Model = struct
  type t = { tags : int array; last_use : int array; mutable clock : int }

  let create () = { tags = Array.make Apl_cache.capacity (-1); last_use = Array.make Apl_cache.capacity 0; clock = 0 }

  let tick m =
    m.clock <- m.clock + 1;
    m.clock

  let lookup m tag =
    let found = ref None in
    for i = Apl_cache.capacity - 1 downto 0 do
      if m.tags.(i) = tag then found := Some i
    done;
    match !found with
    | Some i ->
        m.last_use.(i) <- tick m;
        Some i
    | None -> None

  let install m tag =
    let victim = ref 0 in
    for i = 0 to Apl_cache.capacity - 1 do
      if m.tags.(i) = -1 && m.tags.(!victim) <> -1 then victim := i
      else if
        m.tags.(i) <> -1
        && m.tags.(!victim) <> -1
        && m.last_use.(i) < m.last_use.(!victim)
      then victim := i
    done;
    m.tags.(!victim) <- tag;
    m.last_use.(!victim) <- tick m;
    !victim

  let ensure m tag =
    match lookup m tag with Some hw -> (hw, true) | None -> (install m tag, false)

  let resident m = Array.to_list m.tags |> List.filter (fun t -> t >= 0)
end

(* Tag universe deliberately larger than the capacity so the stream
   forces evictions and re-installs. *)
let prop_apl_matches_model =
  QCheck.Test.make ~name:"apl_cache ensure matches naive LRU model" ~count:200
    QCheck.(list_of_size Gen.(0 -- 200) (int_range 0 45))
    (fun tags ->
      let c = Apl_cache.create () in
      let m = Model.create () in
      List.for_all
        (fun tag ->
          let hw, hit = Apl_cache.ensure c tag in
          let hw', hit' = Model.ensure m tag in
          hw = hw' && hit = hit')
        tags
      && Apl_cache.resident_tags c = Model.resident m)

let prop_apl_lookup_pure_miss =
  QCheck.Test.make ~name:"apl_cache lookup misses do not mutate residency" ~count:100
    QCheck.(pair (list_of_size Gen.(0 -- 40) (int_range 0 45)) (int_range 100 200))
    (fun (tags, absent) ->
      let c = Apl_cache.create () in
      List.iter (fun tag -> ignore (Apl_cache.ensure c tag)) tags;
      let before = Apl_cache.resident_tags c in
      let r = Apl_cache.lookup c absent in
      r = None && Apl_cache.resident_tags c = before)

(* --- memory: unmapped reads, store disjointness, alignment --- *)

let test_memory_unmapped_zero () =
  let m = Memory.create () in
  Alcotest.(check int) "never-written word is 0" 0 (Memory.load_word m 0x5000);
  Alcotest.(check bool) "never-written cap is None" true (Memory.load_cap m 0x5000 = None);
  Alcotest.(check bool) "never-written instr is None" true (Memory.fetch m 0x5000 = None);
  (* Writing one page must not materialize values on another. *)
  Memory.store_word m 0x5000 42;
  Alcotest.(check int) "same page, other word still 0" 0 (Memory.load_word m 0x5008);
  Alcotest.(check int) "other page still 0" 0 (Memory.load_word m 0x9000);
  Alcotest.(check int) "written word reads back" 42 (Memory.load_word m 0x5000);
  (* Flip between pages: the one-entry page cache must not leak values
     across pages. *)
  Memory.store_word m 0x9000 7;
  Alcotest.(check int) "page A after touching page B" 42 (Memory.load_word m 0x5000);
  Alcotest.(check int) "page B after touching page A" 7 (Memory.load_word m 0x9000)

let test_memory_word_cap_disjoint () =
  let m = Memory.create () in
  let cap =
    {
      Capability.base = 0x2000;
      length = 0x100;
      perm = Perm.Read;
      scope = Capability.Synchronous { thread = 0; depth = 0; epoch = 0 };
    }
  in
  (* A word store at a 32-aligned address must not disturb the cap cell
     there, and vice versa. *)
  Memory.store_word m 0x4020 0xdead;
  Alcotest.(check bool) "word store leaves cap store empty" true
    (Memory.load_cap m 0x4020 = None);
  Memory.store_cap m 0x4020 cap;
  Alcotest.(check int) "cap store leaves word intact" 0xdead (Memory.load_word m 0x4020);
  Alcotest.(check bool) "cap reads back" true (Memory.load_cap m 0x4020 = Some cap);
  Memory.store_word m 0x4020 0xbeef;
  Alcotest.(check bool) "word overwrite leaves cap intact" true
    (Memory.load_cap m 0x4020 = Some cap)

let test_memory_alignment_faults () =
  let m = Memory.create () in
  let check_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  check_invalid "unaligned word load" (fun () -> Memory.load_word m 0x1001);
  check_invalid "word load aligned to 4 only" (fun () -> Memory.load_word m 0x1004);
  check_invalid "unaligned word store" (fun () -> Memory.store_word m 0x1001 1);
  check_invalid "unaligned cap load" (fun () -> Memory.load_cap m 0x1008);
  Alcotest.(check bool) "unaligned fetch is None, not a fault" true
    (Memory.fetch m 0x1002 = None)

(* --- trace digest: optimized fold equals the byte-at-a-time reference --- *)

(* Independent FNV-1a implementation (the straightforward one the digest
   documents); nothing here is shared with lib/sim/trace.ml. *)
let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let ref_mix h v =
  let h = ref h in
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let all_kinds =
  [
    Trace.Sched; Trace.Spawn; Trace.Resume; Trace.Suspend; Trace.Ctxsw; Trace.Ipi;
    Trace.Syscall; Trace.Domain_cross; Trace.Fault; Trace.Charge;
  ]

let kind_index kind =
  let rec go i = function
    | [] -> assert false
    | k :: rest -> if k = kind then i else go (i + 1) rest
  in
  go 0 all_kinds

let ref_event h ~ts ~kind ~cpu ~tid ~tag ~ci ~dur ~arg =
  let h = ref_mix h (Int64.bits_of_float ts) in
  let h = ref_mix h (Int64.of_int (kind_index kind)) in
  let h = ref_mix h (Int64.of_int cpu) in
  let h = ref_mix h (Int64.of_int tid) in
  let h = ref_mix h (Int64.of_int tag) in
  let h = ref_mix h (Int64.of_int ci) in
  let h = ref_mix h (Int64.bits_of_float dur) in
  ref_mix h (Int64.of_int arg)

(* Ints spanning every digest dispatch tier: one-byte, -1, two-byte, and
   arbitrary (including min_int/max_int sign-extension). *)
let digest_int_gen =
  QCheck.oneof
    [
      QCheck.int_range 0 255;
      QCheck.always (-1);
      QCheck.int_range 256 65535;
      QCheck.int;
      QCheck.oneofl [ min_int; max_int; -2; 1 lsl 40; -(1 lsl 40) ];
    ]

(* Floats spanning the fast paths: exact zero, short-mantissa values
   (low word of the pattern all zero) and arbitrary patterns. *)
let digest_float_gen =
  QCheck.oneof
    [
      QCheck.always 0.;
      QCheck.map float_of_int (QCheck.int_range 0 4096);
      QCheck.map (fun f -> f *. 1e-3) QCheck.pos_float;
      QCheck.float;
    ]

let cat_gen = QCheck.oneofl (None :: List.map (fun c -> Some c) Breakdown.all_categories)

let kind_gen = QCheck.oneofl all_kinds

let event_gen =
  QCheck.pair
    (QCheck.quad digest_float_gen kind_gen digest_int_gen digest_int_gen)
    (QCheck.quad digest_int_gen cat_gen digest_float_gen digest_int_gen)

let prop_digest_matches_reference =
  QCheck.Test.make ~name:"emit digest equals byte-at-a-time FNV-1a" ~count:500
    (QCheck.list_of_size QCheck.Gen.(1 -- 10) event_gen)
    (fun events ->
      let tr = Trace.create ~capacity:4 () in
      let expected =
        List.fold_left
          (fun h ((ts, kind, cpu, tid), (tag, cat, dur, arg)) ->
            Trace.emit tr ~ts ~cpu ~tid ~tag ?cat ~dur ~arg kind;
            let ci =
              match cat with None -> -1 | Some c -> Breakdown.category_index c
            in
            ref_event h ~ts ~kind ~cpu ~tid ~tag ~ci ~dur ~arg)
          fnv_offset events
      in
      Trace.digest tr = expected)

let prop_emit_bare_equivalent =
  QCheck.Test.make ~name:"emit_bare digest-equivalent to emit" ~count:300
    (QCheck.pair digest_float_gen kind_gen)
    (fun (ts, kind) ->
      let a = Trace.create () and b = Trace.create () in
      Trace.emit a ~ts kind;
      Trace.emit_bare b ~ts kind;
      Trace.digest a = Trace.digest b && Trace.events a = Trace.events b)

let prop_emit_charge_equivalent =
  QCheck.Test.make ~name:"emit_charge digest-equivalent to emit" ~count:300
    (QCheck.pair
       (QCheck.quad digest_float_gen digest_int_gen digest_int_gen digest_float_gen)
       (QCheck.oneofl Breakdown.all_categories))
    (fun ((ts, cpu, tid, dur), cat) ->
      let a = Trace.create () and b = Trace.create () in
      Trace.emit a ~ts ~cpu ~tid ~cat ~dur Trace.Charge;
      Trace.emit_charge b ~ts ~cpu ~tid ~cat ~dur;
      Trace.digest a = Trace.digest b && Trace.events a = Trace.events b)

let suites =
  [
    ( "perf.heap",
      qsuite
        [
          prop_pop_sorted;
          prop_fifo_at_equal_times;
          prop_matches_stable_sort;
          prop_push_pop_model;
          prop_pop_min_agrees;
        ]
      @ [ Alcotest.test_case "popped payloads not retained" `Quick test_no_payload_retention ]
    );
    ( "perf.apl_cache",
      Alcotest.test_case "reset clears statistics" `Quick test_apl_reset_clears_stats
      :: qsuite [ prop_apl_matches_model; prop_apl_lookup_pure_miss ] );
    ( "perf.memory",
      [
        Alcotest.test_case "unmapped reads return zero" `Quick test_memory_unmapped_zero;
        Alcotest.test_case "word and cap stores disjoint" `Quick
          test_memory_word_cap_disjoint;
        Alcotest.test_case "alignment faults" `Quick test_memory_alignment_faults;
      ] );
    ( "perf.digest",
      qsuite
        [
          prop_digest_matches_reference;
          prop_emit_bare_equivalent;
          prop_emit_charge_equivalent;
        ] );
  ]
