(* Differential conformance tests: one scenario corpus of domain-crossing
   situations, run through all three architecture miniatures (CHERI,
   MMP, and the CODOMs machine itself).  For every scenario the
   documented outcome per architecture must hold; where the models
   legitimately disagree (CODOMs has no hardware return stack — a return
   is just a jump, policed by the DCS at the software level), the
   disagreement is itself the documented expectation.  The Table 1 cost
   model is sanity-checked for the orderings the paper's comparison rests
   on. *)

module Perm = Dipc_hw.Perm
module Apl = Dipc_hw.Apl
module Page_table = Dipc_hw.Page_table
module Memory = Dipc_hw.Memory
module Machine = Dipc_hw.Machine
module Isa = Dipc_hw.Isa
module Layout = Dipc_hw.Layout
module Fault = Dipc_hw.Fault
module Cheri = Dipc_hw.Minicheri
module Mmp = Dipc_hw.Minimmp
module Archcmp = Dipc_hw.Archcmp

type outcome = Allowed | Denied

let outcome = Alcotest.testable (fun ppf o ->
    Fmt.string ppf (match o with Allowed -> "allowed" | Denied -> "denied"))
    ( = )

(* --- per-architecture scenario runners ---

   Each runner sets up two domains A (caller) and B (callee) and plays
   one crossing situation, reporting whether the architecture allowed
   it. *)

(* CHERI: sealed capability pairs + trusted stack. *)
let cheri_run scenario =
  let authority = Cheri.cap ~base:0 ~len:100 ~perm:Cheri.Data in
  let code_b = Cheri.cap ~base:0x2000 ~len:0x1000 ~perm:Cheri.Exec in
  let data_b = Cheri.cap ~base:0x6000 ~len:0x1000 ~perm:Cheri.Data in
  let dom_b =
    match Cheri.make_domain ~authority ~otype:7 ~code:code_b ~data:data_b with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let fresh_cpu () =
    Cheri.cpu
      ~pcc:(Cheri.cap ~base:0x1000 ~len:0x1000 ~perm:Cheri.Exec)
      ~idc:(Cheri.cap ~base:0x5000 ~len:0x1000 ~perm:Cheri.Data)
  in
  let ok = function Ok () -> Allowed | Error _ -> Denied in
  match scenario with
  | `Legal_call_return ->
      let cpu = fresh_cpu () in
      if ok (Cheri.ccall cpu dom_b) = Denied then Denied
      else ok (Cheri.creturn cpu)
  | `Unsanctioned_call ->
      (* Unsealed operands: a forged descriptor nobody sanctioned. *)
      let cpu = fresh_cpu () in
      ok
        (Cheri.ccall cpu
           { Cheri.d_code = code_b; d_data = data_b; d_otype = 7 })
  | `Non_entry_target ->
      (* A data capability is not a legal crossing target. *)
      let cpu = fresh_cpu () in
      let swapped =
        match
          Cheri.make_domain ~authority ~otype:8
            ~code:(Cheri.cap ~base:0x2000 ~len:0x1000 ~perm:Cheri.Data)
            ~data:data_b
        with
        | Ok d -> d
        | Error e -> Alcotest.fail e
      in
      ok (Cheri.ccall cpu swapped)
  | `Data_out_of_bounds ->
      let cpu = fresh_cpu () in
      (match Cheri.ccall cpu dom_b with
      | Error e -> Alcotest.fail e
      | Ok () -> ());
      if Cheri.can_access cpu.Cheri.idc ~addr:0x9000 then Allowed else Denied
  | `Sealed_no_authority ->
      if Cheri.can_access dom_b.Cheri.d_data ~addr:0x6100 then Allowed
      else Denied
  | `Return_without_call ->
      let cpu = fresh_cpu () in
      ok (Cheri.creturn cpu)

(* MMP: permission tables + switch/return gates. *)
let mmp_run scenario =
  let pd_a = Mmp.pd ~id:1 and pd_b = Mmp.pd ~id:2 in
  Mmp.grant pd_a ~base:0x1000 ~len:0x1000 ~perm:Mmp.Execute_read;
  Mmp.grant pd_b ~base:0x2000 ~len:0x1000 ~perm:Mmp.Execute_read;
  Mmp.grant pd_b ~base:0x6000 ~len:0x1000 ~perm:Mmp.Read_write;
  let cpu = Mmp.cpu ~initial:pd_a in
  Mmp.add_domain cpu pd_b;
  Mmp.add_gate cpu ~addr:0x2000 ~from_pd:1 ~to_pd:2;
  let ok = function Ok () -> Allowed | Error _ -> Denied in
  match scenario with
  | `Legal_call_return ->
      if ok (Mmp.call_gate cpu ~addr:0x2000) = Denied then Denied
      else ok (Mmp.return_gate cpu)
  | `Unsanctioned_call ->
      (* 0x2400 is inside B's code but was never designated a gate. *)
      ok (Mmp.call_gate cpu ~addr:0x2400)
  | `Non_entry_target ->
      (* A gate crossed from the wrong source domain. *)
      Mmp.add_gate cpu ~addr:0x3000 ~from_pd:9 ~to_pd:2;
      ok (Mmp.call_gate cpu ~addr:0x3000)
  | `Data_out_of_bounds ->
      (match Mmp.call_gate cpu ~addr:0x2000 with
      | Error e -> Alcotest.fail e
      | Ok () -> ());
      if Mmp.can_access cpu.Mmp.current ~addr:0x9000 ~perm:Mmp.Read_only then
        Allowed
      else Denied
  | `Sealed_no_authority ->
      (* Revocation: the table entry is withdrawn. *)
      Mmp.revoke pd_b ~base:0x6000 ~len:0x1000;
      (match Mmp.call_gate cpu ~addr:0x2000 with
      | Error e -> Alcotest.fail e
      | Ok () -> ());
      if Mmp.can_access cpu.Mmp.current ~addr:0x6100 ~perm:Mmp.Read_only then
        Allowed
      else Denied
  | `Return_without_call -> ok (Mmp.return_gate cpu)

(* CODOMs: the real machine model — crossings are plain jumps checked
   against the caller's APL; data accesses against tags/capabilities. *)
let codoms_run scenario =
  let m = Machine.create () in
  let tag_a = Apl.fresh_tag m.Machine.apl in
  let tag_b = Apl.fresh_tag m.Machine.apl in
  let code_a = 0x100000 and code_b = 0x200000 and data_b = 0x300000 in
  Page_table.map m.Machine.page_table ~addr:code_a ~count:1 ~tag:tag_a
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:code_b ~count:1 ~tag:tag_b
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:data_b ~count:1 ~tag:tag_b ();
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_b [ Isa.Nop; Isa.Halt ]);
  let run_from ~pc program =
    ignore (Memory.place_code m.Machine.mem ~addr:pc program);
    let ctx = Machine.new_ctx m ~pc ~sp_value:0 in
    match Machine.run m ctx with
    | () -> Allowed
    | exception Fault.Fault _ -> Denied
  in
  match scenario with
  | `Legal_call_return ->
      (* Read rights both ways: call into B, jump back, continue in A. *)
      Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Perm.Read;
      Apl.grant m.Machine.apl ~src:tag_b ~dst:tag_a Perm.Read;
      ignore
        (Memory.place_code m.Machine.mem ~addr:code_b
           [ Isa.Jmp (code_a + (2 * Isa.instr_bytes)) ]);
      run_from ~pc:code_a [ Isa.Nop; Isa.Jmp code_b; Isa.Halt ]
  | `Unsanctioned_call ->
      (* No grant at all: the jump into B faults. *)
      run_from ~pc:code_a [ Isa.Jmp code_b; Isa.Halt ]
  | `Non_entry_target ->
      (* Call rights only admit aligned entry points (Sec. 4.1). *)
      Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Perm.Call;
      ignore
        (Memory.place_code m.Machine.mem ~addr:code_b
           [ Isa.Nop; Isa.Nop; Isa.Halt ]);
      run_from ~pc:code_a [ Isa.Jmp (code_b + Isa.instr_bytes); Isa.Halt ]
  | `Data_out_of_bounds ->
      (* B itself reads outside any page it can touch. *)
      run_from ~pc:code_b
        [ Isa.Const (1, 0x900000); Isa.Load (0, 1, 0); Isa.Halt ]
  | `Sealed_no_authority ->
      (* Grant, then revoke: the crossing must fault afterwards. *)
      Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Perm.Read;
      Apl.revoke m.Machine.apl ~src:tag_a ~dst:tag_b;
      run_from ~pc:code_a [ Isa.Jmp code_b; Isa.Halt ]
  | `Return_without_call ->
      (* Documented deviation: CODOMs has no hardware return stack — a
         "return" is an ordinary jump and succeeds whenever the APL
         admits it.  The DCS + kernel unwinding police returns in
         software (Sec. 5.2.1), which is exactly what Table 1's "S: 2x
         call" row is buying. *)
      Apl.grant m.Machine.apl ~src:tag_b ~dst:tag_a Perm.Read;
      ignore
        (Memory.place_code m.Machine.mem ~addr:code_a [ Isa.Halt ]);
      run_from ~pc:code_b [ Isa.Jmp code_a ]

(* --- the corpus: documented outcome per scenario per architecture --- *)

let corpus =
  [
    (`Legal_call_return, "legal call + return", Allowed, Allowed, Allowed);
    (`Unsanctioned_call, "unsanctioned crossing", Denied, Denied, Denied);
    (`Non_entry_target, "crossing outside the entry point", Denied, Denied,
     Denied);
    (`Data_out_of_bounds, "data access out of bounds", Denied, Denied, Denied);
    (`Sealed_no_authority, "sealed/revoked authority", Denied, Denied, Denied);
    (* The one documented deviation: no hardware return discipline on
       CODOMs. *)
    (`Return_without_call, "return without a call", Denied, Denied, Allowed);
  ]

let test_corpus () =
  (* Each scenario builds its own machine models, so the corpus shards
     cleanly across domains; assertions run post-merge on the main
     domain (Alcotest.check is not domain-safe mid-flight). *)
  let observed =
    Dipc_sim.Parallel.map
      (fun (scenario, _, _, _, _) ->
        (cheri_run scenario, mmp_run scenario, codoms_run scenario))
      corpus
  in
  List.iter2
    (fun (_, name, exp_cheri, exp_mmp, exp_codoms) (got_c, got_m, got_d) ->
      Alcotest.check outcome (name ^ " on CHERI") exp_cheri got_c;
      Alcotest.check outcome (name ^ " on MMP") exp_mmp got_m;
      Alcotest.check outcome (name ^ " on CODOMs") exp_codoms got_d)
    corpus observed

let test_models_agree_except_documented () =
  (* The corpus disagreements are exactly the documented deviations. *)
  let deviations =
    List.filter_map
      (fun (scenario, name, c, m, d) ->
        if c = m && m = d then None else Some (scenario, name))
      corpus
  in
  Alcotest.(check (list string))
    "documented deviations only" [ "return without a call" ]
    (List.map snd deviations)

(* --- uniform fault facts: same (kind, canonical pc) on every backend ---

   The Allowed/Denied corpus above is deliberately coarse; historically
   it was also the ONLY cross-architecture comparison, because each
   miniature reported denials as bare strings.  The structured [_at]
   fault APIs close that gap: every denial now carries a {!Fault.t}
   with the same fault kind and the same canonical faulting pc the
   CODOMs machine raises for the equivalent attack — so the corpus's
   denial rows can be pinned uniformly, with no per-backend
   special-casing.  The raw-jump return deviation documented above is
   the one outcome that stays per-architecture; its software-level
   counterpart (DCS underflow) IS uniform, and is pinned here. *)

module Adv = Dipc_workloads.Adversary

(* Conformance scenario -> the adversary attack exercising the same
   situation through the structured fault path. *)
let fact_rows =
  [
    ("unsanctioned crossing", Adv.Bad_crossing);
    ("crossing outside the entry point", Adv.Misaligned_entry);
    ("data access out of bounds", Adv.Oob_load);
    ("sealed/revoked authority", Adv.Use_after_revoke);
    ("return discipline (software level)", Adv.Return_underflow);
  ]

let test_uniform_fault_facts () =
  List.iter
    (fun (name, attack) ->
      let exp_kind, exp_pc =
        match Adv.expect attack with
        | Some e -> e
        | None -> Alcotest.failf "%s: no pinned expectation" name
      in
      List.iter
        (fun backend ->
          let where =
            Printf.sprintf "%s on %s" name (Adv.backend_name backend)
          in
          match Adv.run_one ~posture:Fault.Strict backend attack with
          | Adv.Faulted f ->
              Alcotest.(check int) (where ^ ": fault kind code")
                (Fault.kind_code exp_kind)
                (Fault.kind_code f.Fault.kind);
              Alcotest.(check int) (where ^ ": canonical pc") exp_pc f.Fault.pc
          | Adv.Ran _ -> Alcotest.failf "%s: denial retired" where
          | Adv.Refused s -> Alcotest.failf "%s: refused early: %s" where s)
        Adv.all_backends)
    fact_rows

(* --- crossings really trap/flush where the cost model says they do --- *)

let test_crossing_cost_mechanisms () =
  (* CHERI: both directions trap. *)
  let authority = Cheri.cap ~base:0 ~len:100 ~perm:Cheri.Data in
  let dom =
    match
      Cheri.make_domain ~authority ~otype:7
        ~code:(Cheri.cap ~base:0x2000 ~len:0x1000 ~perm:Cheri.Exec)
        ~data:(Cheri.cap ~base:0x6000 ~len:0x1000 ~perm:Cheri.Data)
    with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let cpu =
    Cheri.cpu
      ~pcc:(Cheri.cap ~base:0x1000 ~len:0x1000 ~perm:Cheri.Exec)
      ~idc:(Cheri.cap ~base:0x5000 ~len:0x1000 ~perm:Cheri.Data)
  in
  (match Cheri.ccall cpu dom with Ok () -> () | Error e -> Alcotest.fail e);
  (match Cheri.creturn cpu with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "CHERI round trip = 2 exceptions" 2
    cpu.Cheri.exceptions;
  (* MMP: both directions flush the pipeline. *)
  let pd_a = Mmp.pd ~id:1 and pd_b = Mmp.pd ~id:2 in
  let mcpu = Mmp.cpu ~initial:pd_a in
  Mmp.add_domain mcpu pd_b;
  Mmp.add_gate mcpu ~addr:0x2000 ~from_pd:1 ~to_pd:2;
  (match Mmp.call_gate mcpu ~addr:0x2000 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Mmp.return_gate mcpu with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "MMP round trip = 2 pipeline flushes" 2
    mcpu.Mmp.pipeline_flushes

let test_table1_cost_orderings () =
  let rows = Archcmp.table ~bytes:4096 in
  let cost arch =
    let r = List.find (fun r -> r.Archcmp.row_arch = arch) rows in
    (r.Archcmp.switch_cost, r.Archcmp.data_cost)
  in
  let s_conv, d_conv = cost Archcmp.Conventional in
  let s_cheri, d_cheri = cost Archcmp.Cheri in
  let s_mmp, d_mmp = cost Archcmp.Mmp in
  let s_codoms, d_codoms = cost Archcmp.Codoms in
  (* Switch cost: CODOMs < MMP < syscall round trips < CHERI — CHERI's
     sealed-capability crossings take two precise exceptions, the most
     expensive mechanism in the comparison. *)
  Alcotest.(check bool) "codoms switch cheapest" true (s_codoms < s_mmp);
  Alcotest.(check bool) "mmp cheaper than syscalls" true (s_mmp < s_conv);
  Alcotest.(check bool) "syscalls cheaper than cheri exceptions" true
    (s_conv < s_cheri);
  (* 4 KiB data: capability setup beats table rewrites beats memcpy. *)
  Alcotest.(check (float 1e-9)) "codoms = cheri on data" d_cheri d_codoms;
  Alcotest.(check bool) "capability setup beats table writes" true
    (d_codoms < d_mmp);
  Alcotest.(check bool) "table writes beat cross-space memcpy" true
    (d_mmp < d_conv);
  (* The model's stated primitives match the miniatures' mechanics. *)
  Alcotest.(check (float 1e-9)) "cheri switch = 2 exceptions"
    (2. *. Archcmp.exception_cost) s_cheri;
  Alcotest.(check (float 1e-9)) "cheri exception cost = minicheri's"
    Cheri.crossing_cost_ns Archcmp.exception_cost;
  Alcotest.(check (float 1e-9)) "mmp switch = 2 flushes"
    (2. *. Archcmp.pipeline_flush) s_mmp;
  Alcotest.(check (float 1e-9)) "mmp flush cost = minimmp's"
    Mmp.switch_cost_ns Archcmp.pipeline_flush

let suites =
  [
    ( "conformance",
      [
        Alcotest.test_case "scenario corpus, documented outcomes" `Quick
          test_corpus;
        Alcotest.test_case "models agree except documented deviations" `Quick
          test_models_agree_except_documented;
        Alcotest.test_case "uniform fault (kind, pc) across backends" `Quick
          test_uniform_fault_facts;
        Alcotest.test_case "crossing cost mechanisms" `Quick
          test_crossing_cost_mechanisms;
        Alcotest.test_case "table 1 cost orderings" `Quick
          test_table1_cost_orderings;
      ] );
  ]
