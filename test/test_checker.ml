(* Mutation smoke tests for the online invariant checker: feed synthetic
   trace streams with exactly one corruption each — a dropped resume, a
   duplicated switch, an unbalanced DCS pop, ... — and assert the checker
   reports exactly that violation class, with usable metadata.  A clean
   stream must pass every check including charge conservation. *)

module Trace = Dipc_sim.Trace
module Checker = Dipc_sim.Checker
module Breakdown = Dipc_sim.Breakdown

(* Run [f trace checker] and require it to raise [Violation] with
   invariant [inv]; returns the violation for metadata checks. *)
let expect_violation inv f =
  let tr = Trace.create () in
  let chk = Checker.create () in
  Checker.attach chk tr;
  match f tr chk with
  | () ->
      Alcotest.failf "expected %S violation, stream was accepted" inv
  | exception Checker.Violation v ->
      Checker.detach tr;
      Alcotest.(check string) "violation class" inv v.Checker.v_invariant;
      v

(* --- one mutation per violation class --- *)

let test_dropped_resume () =
  (* Mutation: the second suspend's wakeup never happens. *)
  ignore
    (expect_violation "lost-wakeup" (fun tr chk ->
         Trace.emit tr ~ts:1. Trace.Suspend;
         Trace.emit tr ~ts:2. Trace.Resume;
         Trace.emit tr ~ts:3. Trace.Suspend;
         Checker.finish chk))

let test_duplicated_resume () =
  (* Mutation: one wakeup delivered twice. *)
  ignore
    (expect_violation "double-resume" (fun tr _ ->
         Trace.emit tr ~ts:1. Trace.Suspend;
         Trace.emit tr ~ts:2. Trace.Resume;
         Trace.emit tr ~ts:3. Trace.Resume))

let test_duplicated_switch () =
  (* Mutation: a context switch to the thread the CPU already runs. *)
  ignore
    (expect_violation "duplicate-switch" (fun tr _ ->
         Trace.emit tr ~ts:1. ~cpu:0 ~tid:2 ~arg:2 Trace.Ctxsw))

let test_replayed_switch () =
  (* Mutation: a switch whose outgoing thread is not the one the CPU
     last switched to (a duplicated/reordered Ctxsw). *)
  ignore
    (expect_violation "switch-mismatch" (fun tr _ ->
         Trace.emit tr ~ts:1. ~cpu:0 ~tid:2 ~arg:1 Trace.Ctxsw;
         Trace.emit tr ~ts:2. ~cpu:0 ~tid:3 ~arg:1 Trace.Ctxsw))

let test_unbalanced_dcs_pop () =
  (* Mutation: one push, two pops. *)
  ignore
    (expect_violation "dcs-underflow" (fun tr _ ->
         Trace.emit tr ~ts:1. ~tid:5 ~arg:1 Trace.Dcs_push;
         Trace.emit tr ~ts:2. ~tid:5 ~arg:0 Trace.Dcs_pop;
         Trace.emit tr ~ts:3. ~tid:5 ~arg:(-1) Trace.Dcs_pop))

let test_dcs_depth_skip () =
  (* Mutation: a push claiming to land two frames deeper. *)
  ignore
    (expect_violation "dcs-imbalance" (fun tr _ ->
         Trace.emit tr ~ts:1. ~tid:5 ~arg:1 Trace.Dcs_push;
         Trace.emit tr ~ts:2. ~tid:5 ~arg:3 Trace.Dcs_push))

let test_time_regression () =
  (* Mutation: an engine event stamped before the watermark. *)
  ignore
    (expect_violation "time-regression" (fun tr _ ->
         Trace.emit tr ~ts:10. ~cpu:0 ~tid:1 Trace.Syscall;
         Trace.emit tr ~ts:5. ~cpu:0 ~tid:1 Trace.Syscall))

let test_two_cpu_overlap () =
  (* Mutation: a thread charging on CPU 1 while its charge interval on
     CPU 0 is still open — i.e. resumed on two CPUs at once. *)
  ignore
    (expect_violation "two-cpu-overlap" (fun tr _ ->
         Trace.emit tr ~ts:0. ~cpu:0 ~tid:7 ~cat:Breakdown.Kernel ~dur:100.
           Trace.Charge;
         Trace.emit tr ~ts:50. ~cpu:1 ~tid:7 ~cat:Breakdown.Kernel ~dur:10.
           Trace.Charge))

let test_charge_misattribution () =
  (* Mutation: a thread charging on a CPU that switched to another. *)
  ignore
    (expect_violation "charge-misattribution" (fun tr _ ->
         Trace.emit tr ~ts:1. ~cpu:0 ~tid:2 ~arg:1 Trace.Ctxsw;
         Trace.emit tr ~ts:2. ~cpu:0 ~tid:3 ~cat:Breakdown.Kernel ~dur:5.
           Trace.Charge))

let test_crossing_imbalance () =
  (* Mutation: a DCS frame pushed inside a domain leaks across the
     return crossing (Sec. 5.2.3 integrity discipline). *)
  ignore
    (expect_violation "dcs-crossing-imbalance" (fun tr _ ->
         (* ctx 1 crosses tag 10 -> 20, pushes a frame, returns. *)
         Trace.emit tr ~ts:1. ~tid:1 ~tag:20 ~arg:10 Trace.Domain_cross;
         Trace.emit tr ~ts:2. ~tid:1 ~arg:1 Trace.Dcs_push;
         Trace.emit tr ~ts:3. ~tid:1 ~tag:10 ~arg:20 Trace.Domain_cross))

let test_charge_conservation () =
  (* Mutation: the reference breakdown disagrees with the charges. *)
  ignore
    (expect_violation "charge-conservation" (fun tr chk ->
         Trace.emit tr ~ts:0. ~cpu:0 ~tid:1 ~cat:Breakdown.Kernel ~dur:100.
           Trace.Charge;
         Trace.emit tr ~ts:100. ~cpu:0 ~tid:1 Trace.Suspend;
         Trace.emit tr ~ts:100. Trace.Resume;
         let expect = Breakdown.create () in
         Breakdown.charge expect Breakdown.Kernel 50.;
         Checker.finish ~expect chk))

(* --- isolation invariants (adversarial suite, PR 6) --- *)

let test_xtag_without_authority () =
  (* Mutation: a cross-tag data access whose authority code was zeroed —
     the machine never emits code 0 (every retired access is backed by a
     capability, an APL grant, or an explicit posture downgrade). *)
  let v =
    expect_violation "xtag-no-authority" (fun tr _ ->
        Trace.emit tr ~ts:1. ~tid:4 ~tag:20 ~arg:10 ~cpu:0 Trace.Xtag_access)
  in
  Alcotest.(check int) "offender index" 0 v.Checker.v_index;
  match List.rev v.Checker.v_window with
  | offender :: _ ->
      Alcotest.(check bool) "window ends at the unbacked access" true
        (offender.Trace.e_kind = Trace.Xtag_access && offender.Trace.e_tag = 20)
  | [] -> Alcotest.fail "empty violation window"

let test_priv_outside_kernel () =
  (* Mutation: a privileged op retiring without the privilege bit or a
     posture override (authority code 0). *)
  let v =
    expect_violation "priv-outside-kernel" (fun tr _ ->
        Trace.emit tr ~ts:1. ~tid:3 ~arg:0x4000 ~cpu:0 Trace.Priv_op)
  in
  Alcotest.(check int) "offender index" 0 v.Checker.v_index;
  match List.rev v.Checker.v_window with
  | offender :: _ ->
      Alcotest.(check bool) "window ends at the privileged op" true
        (offender.Trace.e_kind = Trace.Priv_op && offender.Trace.e_arg = 0x4000)
  | [] -> Alcotest.fail "empty violation window"

let test_use_after_revocation () =
  (* Mutation: a capability use whose creation stamp predates the
     revocation bump of its (owner tag, counter) — a replayed stale
     capability the revocation table should have killed. *)
  let v =
    expect_violation "revocation-completeness" (fun tr _ ->
        Trace.emit tr ~ts:1. ~tid:2 ~tag:10 ~arg:3 ~cpu:5 Trace.Cap_revoke;
        Trace.emit tr ~ts:2. ~tid:2 ~tag:10 ~arg:3 ~cpu:4 Trace.Cap_use)
  in
  Alcotest.(check int) "offender index" 1 v.Checker.v_index;
  match List.rev v.Checker.v_window with
  | offender :: _ ->
      Alcotest.(check bool) "window ends at the stale use" true
        (offender.Trace.e_kind = Trace.Cap_use && offender.Trace.e_cpu = 4)
  | [] -> Alcotest.fail "empty violation window"

let test_authority_events_clean () =
  (* Control: backed accesses, stamped uses at (or past) the revocation
     value, and privileged ops with authority all pass. *)
  let tr = Trace.create () in
  let chk = Checker.create () in
  Checker.attach chk tr;
  Trace.emit tr ~ts:1. ~tid:4 ~tag:20 ~arg:10 ~cpu:1 Trace.Xtag_access;
  Trace.emit tr ~ts:2. ~tid:4 ~tag:20 ~arg:10 ~cpu:2 Trace.Xtag_access;
  Trace.emit tr ~ts:3. ~tid:3 ~arg:0x4000 ~cpu:1 Trace.Priv_op;
  Trace.emit tr ~ts:4. ~tid:2 ~tag:10 ~arg:3 ~cpu:5 Trace.Cap_revoke;
  Trace.emit tr ~ts:5. ~tid:2 ~tag:10 ~arg:3 ~cpu:5 Trace.Cap_use;
  Checker.finish chk;
  Checker.detach tr;
  Alcotest.(check int) "all events seen" 5 (Checker.events_seen chk)

(* --- the clean control: no mutation, no violation --- *)

let test_clean_stream_passes () =
  let tr = Trace.create () in
  let chk = Checker.create () in
  Checker.attach chk tr;
  Trace.emit tr ~ts:0. ~cpu:0 ~tid:1 Trace.Spawn;
  Trace.emit tr ~ts:0. ~cpu:0 ~tid:1 ~cat:Breakdown.Kernel ~dur:10.
    Trace.Charge;
  Trace.emit tr ~ts:10. Trace.Suspend;
  Trace.emit tr ~ts:10. Trace.Resume;
  (* tid 1 was bootstrapped as cpu 0's occupant: switching 1 -> 2 is
     consistent. *)
  Trace.emit tr ~ts:10. ~cpu:0 ~tid:2 ~arg:1 Trace.Ctxsw;
  Trace.emit tr ~ts:10. ~cpu:0 ~tid:2 ~cat:Breakdown.Schedule ~dur:5.
    Trace.Charge;
  (* A balanced crossing with a balanced DCS episode. *)
  Trace.emit tr ~ts:11. ~tid:2 ~tag:20 ~arg:10 Trace.Domain_cross;
  Trace.emit tr ~ts:12. ~tid:2 ~arg:1 Trace.Dcs_push;
  Trace.emit tr ~ts:13. ~tid:2 ~arg:0 Trace.Dcs_pop;
  Trace.emit tr ~ts:14. ~tid:2 ~tag:10 ~arg:20 Trace.Domain_cross;
  let expect = Breakdown.create () in
  Breakdown.charge expect Breakdown.Kernel 10.;
  Breakdown.charge expect Breakdown.Schedule 5.;
  Checker.finish ~expect chk;
  Checker.detach tr;
  Alcotest.(check int) "all events delivered to the sink" 10
    (Checker.events_seen chk);
  Alcotest.(check int) "suspends" 1 (Checker.suspends chk);
  Alcotest.(check int) "resumes" 1 (Checker.resumes chk)

(* --- violation metadata: index and window point at the offender --- *)

let test_violation_metadata () =
  let v =
    expect_violation "double-resume" (fun tr _ ->
        Trace.emit tr ~ts:1. Trace.Suspend;
        Trace.emit tr ~ts:2. Trace.Resume;
        Trace.emit tr ~ts:3. Trace.Resume)
  in
  Alcotest.(check int) "0-based index of the offender" 2 v.Checker.v_index;
  (match List.rev v.Checker.v_window with
  | offender :: _ ->
      Alcotest.(check bool) "offender is last in the window" true
        (offender.Trace.e_kind = Trace.Resume && offender.Trace.e_ts = 3.)
  | [] -> Alcotest.fail "empty violation window");
  Alcotest.(check int) "window holds the whole short stream" 3
    (List.length v.Checker.v_window);
  (* The printed form carries the invariant name. *)
  let s = Fmt.str "%a" Checker.pp_violation v in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp mentions the invariant" true
    (contains "double-resume")

let suites =
  [
    ( "checker.mutations",
      [
        Alcotest.test_case "dropped resume -> lost-wakeup" `Quick
          test_dropped_resume;
        Alcotest.test_case "duplicated resume -> double-resume" `Quick
          test_duplicated_resume;
        Alcotest.test_case "duplicated switch -> duplicate-switch" `Quick
          test_duplicated_switch;
        Alcotest.test_case "replayed switch -> switch-mismatch" `Quick
          test_replayed_switch;
        Alcotest.test_case "unbalanced pop -> dcs-underflow" `Quick
          test_unbalanced_dcs_pop;
        Alcotest.test_case "depth skip -> dcs-imbalance" `Quick
          test_dcs_depth_skip;
        Alcotest.test_case "clock rollback -> time-regression" `Quick
          test_time_regression;
        Alcotest.test_case "dual-cpu charge -> two-cpu-overlap" `Quick
          test_two_cpu_overlap;
        Alcotest.test_case "foreign charge -> charge-misattribution" `Quick
          test_charge_misattribution;
        Alcotest.test_case "leaked frame -> dcs-crossing-imbalance" `Quick
          test_crossing_imbalance;
        Alcotest.test_case "wrong totals -> charge-conservation" `Quick
          test_charge_conservation;
        Alcotest.test_case "unbacked access -> xtag-no-authority" `Quick
          test_xtag_without_authority;
        Alcotest.test_case "unprivileged priv op -> priv-outside-kernel" `Quick
          test_priv_outside_kernel;
        Alcotest.test_case "stale stamp -> revocation-completeness" `Quick
          test_use_after_revocation;
        Alcotest.test_case "stamped authority events pass" `Quick
          test_authority_events_clean;
      ] );
    ( "checker.clean",
      [
        Alcotest.test_case "clean stream passes" `Quick
          test_clean_stream_passes;
        Alcotest.test_case "violation metadata" `Quick test_violation_metadata;
      ] );
  ]
