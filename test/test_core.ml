(* Tests for the dIPC core: Table 2 object semantics, the GVAS allocator,
   proxy generation and the measured call-cost bands of Figure 5. *)

module Perm = Dipc_hw.Perm
module Machine = Dipc_hw.Machine
module Isa = Dipc_hw.Isa
module Sys_ = Dipc_core.System
module Types = Dipc_core.Types
module Gvas = Dipc_core.Gvas
module Entry = Dipc_core.Entry
module Proxy = Dipc_core.Proxy
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver
module Call = Dipc_core.Call
module Scenario = Dipc_core.Scenario
module Isolation = Dipc_core.Isolation

(* --- types --- *)

let test_signature_validation () =
  Alcotest.(check bool) "too many args rejected" true
    (try
       ignore (Types.signature ~args:9 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unaligned stack rejected" true
    (try
       ignore (Types.signature ~stack_bytes:12 ());
       false
     with Invalid_argument _ -> true)

let test_props_union () =
  let a = { Types.props_none with Types.reg_integrity = true } in
  let b = { Types.props_none with Types.dcs_confidentiality = true } in
  let u = Types.props_union a b in
  Alcotest.(check bool) "union has both" true
    (u.Types.reg_integrity && u.Types.dcs_confidentiality);
  Alcotest.(check bool) "union lacks others" false u.Types.stack_confidentiality

(* --- gvas --- *)

let test_gvas_alloc_disjoint () =
  let g = Gvas.create () in
  let a = Gvas.alloc g ~owner:1 ~bytes:4096 in
  let b = Gvas.alloc g ~owner:1 ~bytes:4096 in
  let c = Gvas.alloc g ~owner:2 ~bytes:4096 in
  Alcotest.(check bool) "all distinct" true (a <> b && b <> c && a <> c);
  Alcotest.(check bool) "page aligned" true (a land 4095 = 0 && c land 4095 = 0)

let test_gvas_owner_lookup () =
  let g = Gvas.create () in
  let a = Gvas.alloc g ~owner:7 ~bytes:4096 in
  Alcotest.(check (option int)) "owner found" (Some 7) (Gvas.owner_of g a);
  Alcotest.(check (option int)) "unknown addr" None (Gvas.owner_of g 0x123)

let test_gvas_block_reuse () =
  let g = Gvas.create () in
  ignore (Gvas.alloc g ~owner:1 ~bytes:4096);
  ignore (Gvas.alloc g ~owner:1 ~bytes:4096);
  Alcotest.(check int) "one 1GB block serves both" 1 (Gvas.blocks_allocated g);
  ignore (Gvas.alloc g ~owner:2 ~bytes:4096);
  Alcotest.(check int) "per-process blocks" 2 (Gvas.blocks_allocated g)

let prop_gvas_no_overlap =
  QCheck.Test.make ~name:"gvas allocations never overlap" ~count:50
    QCheck.(list_of_size Gen.(2 -- 20) (int_range 1 100_000))
    (fun sizes ->
      let g = Gvas.create () in
      let ranges =
        List.map
          (fun bytes ->
            let a = Gvas.alloc g ~owner:1 ~bytes in
            (a, a + bytes))
          sizes
      in
      List.for_all
        (fun (a1, e1) ->
          List.for_all
            (fun (a2, e2) -> (a1, e1) = (a2, e2) || e1 <= a2 || e2 <= a1)
            ranges)
        ranges)

(* --- domain handles (Table 2) --- *)

let test_dom_copy_downgrade_only () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let d = Sys_.dom_create t p in
  let read_handle = Sys_.dom_copy d Perm.Read in
  Alcotest.(check bool) "downgrade ok" true
    (Perm.equal read_handle.Sys_.dom_perm Perm.Read);
  Alcotest.(check bool) "amplify denied" true
    (try
       ignore (Sys_.dom_copy read_handle Perm.Owner);
       false
     with Sys_.Denied _ -> true)

let test_dom_mmap_requires_owner () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let d = Sys_.dom_create t p in
  let ro = Sys_.dom_copy d Perm.Read in
  Alcotest.(check bool) "mmap with read handle denied" true
    (try
       ignore (Sys_.dom_mmap t ro ~bytes:4096 ());
       false
     with Sys_.Denied _ -> true);
  let addr = Sys_.dom_mmap t d ~bytes:8192 () in
  Alcotest.(check bool) "mmap works for owner" true (addr > 0)

let test_dom_remap () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let d1 = Sys_.dom_create t p and d2 = Sys_.dom_create t p in
  let addr = Sys_.dom_mmap t d1 ~bytes:4096 () in
  Sys_.dom_remap t ~dst:d2 ~src:d1 ~addr ~bytes:4096;
  match Dipc_hw.Page_table.find t.Sys_.machine.Sys_.Machine.page_table addr with
  | Some page ->
      Alcotest.(check int) "page moved to d2" d2.Sys_.dom_tag
        page.Dipc_hw.Page_table.tag
  | None -> Alcotest.fail "page unmapped"

let test_grant_lifecycle () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let d1 = Sys_.dom_create t p and d2 = Sys_.dom_create t p in
  let g = Sys_.grant_create t ~src:d1 ~dst:(Sys_.dom_copy d2 Perm.Read) in
  let apl = t.Sys_.machine.Sys_.Machine.apl in
  Alcotest.(check bool) "granted" true
    (Perm.equal (Dipc_hw.Apl.permission apl ~src:d1.Sys_.dom_tag ~dst:d2.Sys_.dom_tag) Perm.Read);
  Sys_.grant_revoke t g;
  Alcotest.(check bool) "revoked" true
    (Perm.equal (Dipc_hw.Apl.permission apl ~src:d1.Sys_.dom_tag ~dst:d2.Sys_.dom_tag) Perm.Nil)

let test_grant_requires_src_owner () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let d1 = Sys_.dom_create t p and d2 = Sys_.dom_create t p in
  Alcotest.(check bool) "non-owner src denied" true
    (try
       ignore (Sys_.grant_create t ~src:(Sys_.dom_copy d1 Perm.Read) ~dst:d2);
       false
     with Sys_.Denied _ -> true)

(* --- scenario: correctness of cross-domain calls --- *)

let test_call_correct_result () =
  let s = Scenario.make () in
  (match Scenario.call s ~args:[ 20; 22 ] with
  | Ok v -> Alcotest.(check int) "20+22" 42 v
  | Error f -> Alcotest.failf "fault: %s" (Dipc_hw.Fault.to_string f));
  (* Results stay correct across repeated calls (warm path). *)
  for i = 1 to 5 do
    match Scenario.call s ~args:[ i; i ] with
    | Ok v -> Alcotest.(check int) "i+i" (2 * i) v
    | Error f -> Alcotest.failf "fault: %s" (Dipc_hw.Fault.to_string f)
  done

let test_call_all_policies_correct () =
  List.iter
    (fun (cp, kp) ->
      let s = Scenario.make ~caller_props:cp ~callee_props:kp () in
      match Scenario.call s ~args:[ 1; 2 ] with
      | Ok v -> Alcotest.(check int) "1+2" 3 v
      | Error f -> Alcotest.failf "fault: %s" (Dipc_hw.Fault.to_string f))
    [
      (Types.props_low, Types.props_low);
      (Types.props_high, Types.props_low);
      (Types.props_low, Types.props_high);
      (Types.props_high, Types.props_high);
    ]

let test_call_same_process_domains () =
  let s = Scenario.make ~same_process:true () in
  match Scenario.call s ~args:[ 5; 6 ] with
  | Ok v -> Alcotest.(check int) "5+6" 11 v
  | Error f -> Alcotest.failf "fault: %s" (Dipc_hw.Fault.to_string f)

let test_signature_mismatch_denied () =
  (* P4: entry_request must reject a signature disagreement. *)
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let img = Annot.image t callee in
  ignore (Annot.declare_function t img ~name:"fn" [ Isa.Ret ]);
  let sig_server = Types.signature ~args:2 ~rets:1 () in
  let handle =
    Annot.declare_entries t img ~name:"e" [ ("fn", sig_server, Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/x" handle;
  let caller = Sys_.create_process t ~name:"caller" in
  let cimg = Annot.image t caller in
  let sym =
    Annot.import cimg ~path:"/x"
      ~sig_:(Types.signature ~args:3 ~rets:1 ())
      ~props:Types.props_none ()
  in
  Alcotest.(check bool) "mismatch denied" true
    (try
       ignore (Annot.resolve t resolver sym);
       false
     with Sys_.Denied _ -> true)

let test_resolver_permissions () =
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let img = Annot.image t callee in
  ignore (Annot.declare_function t img ~name:"fn" [ Isa.Ret ]);
  let handle =
    Annot.declare_entries t img ~name:"e"
      [ ("fn", Types.signature (), Types.props_none) ]
  in
  let friend = Sys_.create_process t ~name:"friend" in
  let stranger = Sys_.create_process t ~name:"stranger" in
  Resolver.publish resolver ~path:"/private"
    ~mode:(Resolver.Owner_only friend.Sys_.pid) handle;
  Alcotest.(check bool) "friend allowed" true
    (Result.is_ok (Resolver.lookup resolver ~path:"/private" ~caller:friend));
  Alcotest.(check bool) "stranger denied" true
    (Result.is_error (Resolver.lookup resolver ~path:"/private" ~caller:stranger));
  Alcotest.(check bool) "missing path" true
    (Result.is_error (Resolver.lookup resolver ~path:"/nope" ~caller:friend))

let test_entry_register_requires_domain_residency () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let d = Sys_.dom_create t p in
  ignore (Sys_.dom_mmap t d ~bytes:4096 ());
  (* Register an address outside the domain. *)
  Alcotest.(check bool) "foreign address rejected" true
    (try
       ignore
         (Entry.entry_register t ~dom:d
            [| { Entry.e_addr = 0x1234000; e_sig = Types.signature (); e_policy = Types.props_none } |]);
       false
     with Sys_.Denied _ -> true)

(* --- nested cross-process calls --- *)

let test_nested_calls () =
  (* web -> php -> db, three processes: php's entry calls into db through
     its own imported stub. *)
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let sig1 = Types.signature ~args:2 ~rets:1 () in
  (* db: add *)
  let db = Sys_.create_process t ~name:"db" in
  let db_img = Annot.image t db in
  ignore (Annot.declare_function t db_img ~name:"add" [ Isa.Add (0, 0, 1); Isa.Ret ]);
  let db_handle =
    Annot.declare_entries t db_img ~name:"db" [ ("add", sig1, Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/db" db_handle;
  (* php: forward to db then add 100 *)
  let php = Sys_.create_process t ~name:"php" in
  let php_img = Annot.image t php in
  let php_sym =
    Annot.import php_img ~path:"/db" ~sig_:sig1 ~props:Types.props_none ()
  in
  let db_stub = Annot.resolve t resolver php_sym in
  ignore
    (Annot.declare_function t php_img ~name:"page"
       [ Isa.Call db_stub; Isa.Addi (0, 0, 100); Isa.Ret ]);
  let php_handle =
    Annot.declare_entries t php_img ~name:"php" [ ("page", sig1, Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/php" php_handle;
  (* web: call php *)
  let web = Sys_.create_process t ~name:"web" in
  let web_img = Annot.image t web in
  let web_sym =
    Annot.import web_img ~path:"/php" ~sig_:sig1 ~props:Types.props_none ()
  in
  let th = Sys_.create_thread t web in
  (match Annot.call t resolver th web_sym ~args:[ 7; 8 ] with
  | Ok v -> Alcotest.(check int) "7+8+100 through 3 processes" 115 v
  | Error f -> Alcotest.failf "fault: %s" (Dipc_hw.Fault.to_string f));
  (* And again, warm. *)
  match Annot.call t resolver th web_sym ~args:[ 1; 1 ] with
  | Ok v -> Alcotest.(check int) "warm nested" 102 v
  | Error f -> Alcotest.failf "fault: %s" (Dipc_hw.Fault.to_string f)

let test_nested_calls_high_isolation () =
  (* Same three-process chain, full mutual isolation everywhere. *)
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let sig1 = Types.signature ~args:2 ~rets:1 () in
  let db = Sys_.create_process t ~name:"db" in
  let db_img = Annot.image t db in
  ignore (Annot.declare_function t db_img ~name:"add" [ Isa.Add (0, 0, 1); Isa.Ret ]);
  let db_handle =
    Annot.declare_entries t db_img ~name:"db" [ ("add", sig1, Types.props_high) ]
  in
  Resolver.publish resolver ~path:"/db" db_handle;
  let php = Sys_.create_process t ~name:"php" in
  let php_img = Annot.image t php in
  let php_sym = Annot.import php_img ~path:"/db" ~sig_:sig1 ~props:Types.props_high () in
  let db_stub = Annot.resolve t resolver php_sym in
  ignore
    (Annot.declare_function t php_img ~name:"page"
       [ Isa.Call db_stub; Isa.Addi (0, 0, 100); Isa.Ret ]);
  let php_handle =
    Annot.declare_entries t php_img ~name:"php" [ ("page", sig1, Types.props_high) ]
  in
  Resolver.publish resolver ~path:"/php" php_handle;
  let web = Sys_.create_process t ~name:"web" in
  let web_img = Annot.image t web in
  let web_sym = Annot.import web_img ~path:"/php" ~sig_:sig1 ~props:Types.props_high () in
  let th = Sys_.create_thread t web in
  match Annot.call t resolver th web_sym ~args:[ 7; 8 ] with
  | Ok v -> Alcotest.(check int) "fully isolated nested chain" 115 v
  | Error f -> Alcotest.failf "fault: %s" (Dipc_hw.Fault.to_string f)

(* --- proxy templates --- *)

let test_template_cache_grows_by_specialisation () =
  (* A cache explicitly shared by two systems (the paper's build-time
     sharing; per-system private caches are the domain-safe default). *)
  let cache = Dipc_core.Proxy_cache.create () in
  (* Two different signatures must create two specialisations. *)
  ignore
    (Scenario.make ~sig_:(Types.signature ~args:1 ~rets:1 ()) ~proxy_cache:cache ());
  let mid = Proxy.template_count cache in
  ignore
    (Scenario.make
       ~sig_:(Types.signature ~args:1 ~rets:1 ~cap_args:2 ())
       ~proxy_cache:cache ());
  let after = Proxy.template_count cache in
  Alcotest.(check bool) "first scenario instantiates a template" true (mid > 0);
  Alcotest.(check bool) "new signature, new specialisation" true (after > mid)

let test_lean_vs_full_template () =
  Alcotest.(check bool) "same-process low is lean" true
    (Proxy.is_lean
       { Proxy.sig_ = Types.signature (); eff = Types.props_none; cross_process = false; tls_switch = false });
  Alcotest.(check bool) "cross-process is full" false
    (Proxy.is_lean
       { Proxy.sig_ = Types.signature (); eff = Types.props_none; cross_process = true; tls_switch = true });
  Alcotest.(check bool) "high is full" false
    (Proxy.is_lean
       { Proxy.sig_ = Types.signature (); eff = Types.props_high; cross_process = false; tls_switch = false })

(* --- measured cost bands (Figure 5) --- *)

let mean s = s.Dipc_sim.Stats.s_mean

let test_fig5_cost_ordering () =
  let low = mean (Scenario.measure (Scenario.make ~same_process:true ())) in
  let high =
    mean
      (Scenario.measure
         (Scenario.make ~same_process:true ~caller_props:Types.props_high
            ~callee_props:Types.props_high ()))
  in
  let plow = mean (Scenario.measure (Scenario.make ())) in
  let phigh =
    mean
      (Scenario.measure
         (Scenario.make ~caller_props:Types.props_high ~callee_props:Types.props_high ()))
  in
  (* dIPC Low < syscall < dIPC High (Fig. 5's key ordering). *)
  Alcotest.(check bool) "low < syscall" true (low < Dipc_sim.Costs.syscall_total);
  Alcotest.(check bool) "low < high" true (low < high);
  Alcotest.(check bool) "same-process < cross-process" true (low < plow && high < phigh);
  (* Asymmetric policies differ by a large factor (paper: up to 8.47x). *)
  Alcotest.(check bool) "policy range > 3x" true (high /. low > 3.);
  (* Cross-process High lands in the paper's band (~106 ns, 53x). *)
  Alcotest.(check bool) "dIPC +proc High band" true (phigh > 60. && phigh < 180.)

let test_tls_optimization_headroom () =
  (* Sec. 7.2: optimising the TLS switch buys 1.54x-3.22x. *)
  let normal = mean (Scenario.measure (Scenario.make ())) in
  let optimised = mean (Scenario.measure (Scenario.make ~tls_optimized:true ())) in
  let headroom = normal /. optimised in
  Alcotest.(check bool) "headroom in band" true (headroom > 1.3 && headroom < 3.5)

let test_fig5_vs_ipc_speedups () =
  (* The headline numbers: dIPC is ~64x faster than local RPC and ~9x
     faster than L4 (allow generous bands). *)
  let phigh =
    mean
      (Scenario.measure
         (Scenario.make ~caller_props:Types.props_high ~callee_props:Types.props_high ()))
  in
  let rpc =
    (Dipc_workloads.Microbench.run ~warmup:10 ~iters:50 ~same_cpu:true
       Dipc_workloads.Microbench.Local_rpc)
      .Dipc_workloads.Microbench.mean_ns
  in
  let l4 =
    (Dipc_workloads.Microbench.run ~warmup:10 ~iters:50 ~same_cpu:true
       Dipc_workloads.Microbench.L4)
      .Dipc_workloads.Microbench.mean_ns
  in
  let rpc_speedup = rpc /. phigh and l4_speedup = l4 /. phigh in
  Alcotest.(check bool) "RPC speedup 35x-100x" true
    (rpc_speedup > 35. && rpc_speedup < 100.);
  Alcotest.(check bool) "L4 speedup 5x-15x" true (l4_speedup > 5. && l4_speedup < 15.)

let test_proc_track_cold_then_warm () =
  let s = Scenario.make () in
  (* First call takes the cold resolve path; later calls the fast path. *)
  (match Scenario.call s ~args:[ 1; 1 ] with Ok _ -> () | Error _ -> Alcotest.fail "call");
  let cold = s.Scenario.sys.Sys_.resolve_cold in
  Alcotest.(check bool) "cold path taken once" true (cold >= 1);
  for _ = 1 to 5 do
    ignore (Scenario.call s ~args:[ 1; 1 ])
  done;
  Alcotest.(check int) "no more cold paths" cold s.Scenario.sys.Sys_.resolve_cold

let test_stub_coopt_model () =
  let setjmp, try_ = Isolation.exception_recovery_costs () in
  Alcotest.(check bool) "try ~2.5x faster (Sec. 5.3.1)" true
    (setjmp /. try_ > 2.2 && setjmp /. try_ < 2.8)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "core.types",
      [
        Alcotest.test_case "signature validation" `Quick test_signature_validation;
        Alcotest.test_case "props union" `Quick test_props_union;
      ] );
    ( "core.gvas",
      [
        Alcotest.test_case "disjoint" `Quick test_gvas_alloc_disjoint;
        Alcotest.test_case "owner lookup" `Quick test_gvas_owner_lookup;
        Alcotest.test_case "block reuse" `Quick test_gvas_block_reuse;
      ]
      @ qsuite [ prop_gvas_no_overlap ] );
    ( "core.domains",
      [
        Alcotest.test_case "dom_copy downgrade only" `Quick test_dom_copy_downgrade_only;
        Alcotest.test_case "dom_mmap owner only" `Quick test_dom_mmap_requires_owner;
        Alcotest.test_case "dom_remap" `Quick test_dom_remap;
        Alcotest.test_case "grant lifecycle" `Quick test_grant_lifecycle;
        Alcotest.test_case "grant needs owner src" `Quick test_grant_requires_src_owner;
      ] );
    ( "core.calls",
      [
        Alcotest.test_case "correct result" `Quick test_call_correct_result;
        Alcotest.test_case "all policies correct" `Quick test_call_all_policies_correct;
        Alcotest.test_case "same-process domains" `Quick test_call_same_process_domains;
        Alcotest.test_case "signature mismatch (P4)" `Quick test_signature_mismatch_denied;
        Alcotest.test_case "resolver permissions" `Quick test_resolver_permissions;
        Alcotest.test_case "entry residency" `Quick test_entry_register_requires_domain_residency;
        Alcotest.test_case "nested 3-process chain" `Quick test_nested_calls;
        Alcotest.test_case "nested chain, high isolation" `Quick test_nested_calls_high_isolation;
      ] );
    ( "core.proxy",
      [
        Alcotest.test_case "template cache" `Quick test_template_cache_grows_by_specialisation;
        Alcotest.test_case "lean vs full" `Quick test_lean_vs_full_template;
        Alcotest.test_case "cold/warm tracking" `Quick test_proc_track_cold_then_warm;
      ] );
    ( "core.costs",
      [
        Alcotest.test_case "Fig. 5 ordering" `Quick test_fig5_cost_ordering;
        Alcotest.test_case "TLS headroom" `Quick test_tls_optimization_headroom;
        Alcotest.test_case "Fig. 5 speedups" `Quick test_fig5_vs_ipc_speedups;
        Alcotest.test_case "stub co-optimisation" `Quick test_stub_coopt_model;
      ] );
  ]
