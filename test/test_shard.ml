(* Tests for intra-simulation sharding (ROADMAP item 2): the
   conservative parallel coordinator [Dipc_sim.Shard], its openload
   decomposition, the engine-as-shard wrapper, and the cross-kernel
   [Wire].

   The contract under test is digest equality: serial, 2-shard and
   4-shard executions of the same model — on one domain or several —
   must be byte-identical.  qcheck properties sweep random scenarios
   through both engines; directed cases pin the edges (zero-lookahead
   degeneration, window-bound ties, a shard draining mid-window); and
   mutation smokes in the spirit of test_checker break the protocol on
   purpose (lookahead lie, wrong merge tie-break, enforcement off) and
   assert each defence trips loudly. *)

module Shard = Dipc_sim.Shard
module Engine = Dipc_sim.Engine
module Trace = Dipc_sim.Trace
module Checker = Dipc_sim.Checker
module Parallel = Dipc_sim.Parallel
module Heap = Dipc_sim.Heap
module Costs = Dipc_sim.Costs
module Kernel = Dipc_kernel.Kernel
module Wire = Dipc_kernel.Wire
module OL = Dipc_workloads.Openload
module M = Dipc_workloads.Microbench
module O = Dipc_workloads.Oltp

(* --- differential: openload serial vs sharded --- *)

let ol_params ?(seed = 42) ?(sessions = 1500) ?(load = 0.8) ?(servers = 4)
    ?(max_extra = 2) ?(arrival = OL.Poisson) () =
  OL.default_params ~seed ~sessions ~servers ~offered_load:load ~arrival
    ~max_extra_reqs:max_extra ~service_ns:2650. ()

let ol_signature r = (r.OL.r_digest, r.OL.r_requests, r.OL.r_makespan_ns)

let qcheck_openload_differential =
  QCheck.Test.make ~name:"openload: serial == 2-shard == 4-shard digests"
    ~count:40
    QCheck.(
      quad (int_bound 9999)
        (int_range 50 2500)
        (float_range 0.3 1.05)
        (pair (int_range 1 5) (int_range 0 3)))
    (fun (seed, sessions, load, (servers, max_extra)) ->
      let arrival =
        match seed mod 3 with
        | 0 -> OL.Poisson
        | 1 -> OL.Bursty
        | _ -> OL.Diurnal
      in
      let p = ol_params ~seed ~sessions ~load ~servers ~max_extra ~arrival () in
      let reference = ol_signature (OL.run p) in
      List.for_all
        (fun (shards, par) ->
          ol_signature (OL.run_sharded ~shards ~par p) = reference)
        [ (2, false); (2, true); (4, false); (4, true) ])

(* Multi-window pipelining: enough sessions that the admission source
   needs several 8192-session batches, so the serial/sharded equality
   actually crosses window barriers. *)
let test_openload_multiwindow () =
  let p = ol_params ~sessions:20_000 ~load:0.95 () in
  let reference = ol_signature (OL.run p) in
  Alcotest.(check bool) "2-shard, one domain" true
    (ol_signature (OL.run_sharded ~shards:2 ~par:false p) = reference);
  Alcotest.(check bool) "2-shard, pipelined domains" true
    (ol_signature (OL.run_sharded ~shards:2 ~par:true p) = reference)

(* --- differential: single-engine workloads through the coordinator --- *)

let qcheck_ipc_windowed_differential =
  QCheck.Test.make
    ~name:"microbench: Engine.run == run_windowed at any lookahead" ~count:16
    QCheck.(
      quad (oneofl [ M.Sem; M.Pipe; M.L4; M.Local_rpc ])
        (oneofl [ 0.; 137.; 5_000.; infinity ])
        bool bool)
    (fun (prim, lookahead, same_cpu, par) ->
      let digest drive =
        let tr = Trace.create () in
        let r = M.run ~iters:40 ~warmup:5 ~trace:tr ?drive ~same_cpu prim in
        (Trace.digest_hex tr, r.M.mean_ns)
      in
      let reference = digest None in
      let windowed =
        digest
          (Some (fun e -> Shard.run_windowed ~shards:2 ~lookahead ~par e))
      in
      reference = windowed)

let oltp_quick_params ~db_mode ~threads =
  {
    (O.default_params ~db_mode ~threads) with
    O.warmup = 50_000_000.;
    duration = 100_000_000.;
  }

let qcheck_oltp_windowed_differential =
  QCheck.Test.make
    ~name:"oltp: Engine.run_until == run_windowed ~until through warmup"
    ~count:6
    QCheck.(
      triple (oneofl [ O.Linux; O.Dipc; O.Ideal ])
        (oneofl [ O.In_memory; O.On_disk ])
        bool)
    (fun (config, db_mode, par) ->
      let digest drive_until =
        let tr = Trace.create () in
        let r =
          O.run
            ~params_override:(Some (oltp_quick_params ~db_mode ~threads:4))
            ~trace:tr ?drive_until ~config ~db_mode ~threads:4 ()
        in
        (Trace.digest_hex tr, r.O.r_throughput_opm)
      in
      let reference = digest None in
      let windowed =
        digest (Some (fun e u -> Shard.run_windowed ~shards:2 ~until:u ~par e))
      in
      reference = windowed)

(* Zero lookahead degenerates to one event-horizon window per event:
   still byte-identical to the plain serial engine (the degeneration
   that licenses routing single-shard runs through either path). *)
let test_zero_lookahead_degeneration () =
  let digest drive =
    let tr = Trace.create () in
    ignore (M.run ~iters:30 ~warmup:4 ~trace:tr ?drive ~same_cpu:false M.Sem);
    Trace.digest_hex tr
  in
  let reference = digest None in
  Alcotest.(check string) "lookahead 0, 1 shard" reference
    (digest (Some (Shard.run_windowed ~shards:1 ~lookahead:0.)));
  Alcotest.(check string) "lookahead 0, 4 shards (3 idle)" reference
    (digest (Some (Shard.run_windowed ~shards:4 ~lookahead:0.)))

(* --- directed synthetic steppers --- *)

(* A recorder shard in the mould of the openload station: local events
   and inbox messages merged by time, local first on a tie (the serial
   [ready <= arr_t] rule). *)
let recorder ?(on_msg = fun _ _ -> ()) locals out =
  let pending = ref locals in
  {
    Shard.st_next =
      (fun () -> match !pending with [] -> infinity | t :: _ -> t);
    st_lookahead = infinity;
    st_step =
      (fun ~inbox_at ~inbox_pay ~inbox_len ~upto ~emit:_ ->
        let cursor = ref 0 in
        let n = ref 0 in
        let continue = ref true in
        while !continue do
          let m_t =
            if !cursor < inbox_len then inbox_at.(!cursor) else infinity
          in
          match !pending with
          | l :: rest when l <= m_t ->
              if l > upto then continue := false
              else begin
                out := `Local l :: !out;
                pending := rest;
                incr n
              end
          | _ ->
              if !cursor >= inbox_len || m_t > upto then continue := false
              else begin
                out := `Msg (inbox_pay.(!cursor), m_t) :: !out;
                on_msg inbox_at.(!cursor) inbox_pay.(!cursor);
                incr cursor;
                incr n
              end
        done;
        while !cursor < inbox_len do
          out := `Msg (inbox_pay.(!cursor), inbox_at.(!cursor)) :: !out;
          on_msg inbox_at.(!cursor) inbox_pay.(!cursor);
          incr cursor;
          incr n
        done;
        !n);
  }

(* A source with one local event at t=0 that emits [msgs] = (dst, at,
   pay) list in order, then drains. *)
let one_shot_source ~lookahead msgs =
  let fired = ref false in
  {
    Shard.st_next = (fun () -> if !fired then infinity else 0.);
    st_lookahead = lookahead;
    st_step =
      (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto ~emit ->
        if (not !fired) && 0. <= upto then begin
          fired := true;
          List.iter (fun (dst, at, pay) -> emit ~dst ~at pay) msgs;
          1
        end
        else 0);
  }

(* Simultaneous cross-shard timestamps: the merge must order equal
   times by (source shard, emission seqno) — and the Reversed mutation
   must visibly reorder them (what makes the tie-break digest-visible
   and therefore CI-pinned). *)
let test_merge_tiebreak () =
  let run tiebreak =
    let out = ref [] in
    let src i =
      one_shot_source ~lookahead:1.
        [ (2, 1., (i * 10) + 0); (2, 1., (i * 10) + 1) ]
    in
    let t =
      Shard.create ~tiebreak [| src 0; src 1; recorder [] out |]
    in
    Shard.run t;
    List.rev_map (function `Msg (p, _) -> p | `Local _ -> -1) !out
  in
  Alcotest.(check (list int)) "(time, src, seq) order" [ 0; 1; 10; 11 ]
    (run Shard.Src_then_seq);
  Alcotest.(check (list int)) "Reversed tie-break is observably different"
    [ 11; 10; 1; 0 ] (run Shard.Reversed)

(* A shard whose local heap drains mid-window while messages keep
   arriving, plus messages at exactly the window bound ordered after
   the receiver's local events at that instant. *)
let test_drain_midwindow_and_bound_ties () =
  let out = ref [] in
  let t_src = ref 0 in
  let source =
    {
      Shard.st_next =
        (fun () -> if !t_src < 10 then float_of_int !t_src else infinity);
      st_lookahead = 2.;
      st_step =
        (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto ~emit ->
          let n = ref 0 in
          while !t_src < 10 && float_of_int !t_src <= upto do
            emit ~dst:1 ~at:(float_of_int !t_src +. 2.) !t_src;
            incr t_src;
            incr n
          done;
          !n);
    }
  in
  let t = Shard.create [| source; recorder [ 1.; 2.; 3. ] out |] in
  Shard.run t;
  let expected =
    [
      `Local 1.; `Local 2.;  (* round 1: locals up to the bound 2 *)
      `Msg (0, 2.); `Local 3.; `Msg (1, 3.); `Msg (2, 4.);
      (* local heap now drained; messages keep the shard alive *)
      `Msg (3, 5.); `Msg (4, 6.); `Msg (5, 7.);
      `Msg (6, 8.); `Msg (7, 9.); `Msg (8, 10.); `Msg (9, 11.);
    ]
  in
  Alcotest.(check bool) "merged order with bound ties" true
    (List.rev !out = expected);
  Alcotest.(check int) "all ten messages crossed the barrier" 10
    (Shard.delivered t);
  Alcotest.(check bool) "multiple windows ran" true (Shard.rounds t > 2)

(* --- mutation smokes (in the spirit of test_checker) --- *)

(* Mutation: a shard's real latency shrinks below its declared
   lookahead — the emission lands inside the window it promised to stay
   out of, and the coordinator must refuse loudly. *)
let test_causality_violation_caught () =
  let liar = one_shot_source ~lookahead:10. [ (1, 0.5, 0) ] in
  let t = Shard.create [| liar; recorder [] (ref []) |] in
  match Shard.run t with
  | () -> Alcotest.fail "lookahead lie was accepted"
  | exception Shard.Causality_violation msg ->
      Alcotest.(check bool) "message names the lookahead promise" true
        (String.length msg > 0)

(* Mutation: enforcement off — the same lie slips through the barrier,
   and the downstream trace checker must catch the corruption as a
   time-regression instead. *)
let test_unenforced_lie_caught_by_checker () =
  let tr = Trace.create () in
  let chk = Checker.create () in
  Checker.attach chk tr;
  let make_model ~enforce =
    let t_src = ref 0. in
    let source =
      {
        Shard.st_next = (fun () -> if !t_src < 12. then !t_src else infinity);
        st_lookahead = 4.;
        st_step =
          (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto ~emit ->
            let n = ref 0 in
            while !t_src < 12. && !t_src <= upto do
              (* first a legal far-future message, then one in the past
                 of the stream already delivered: the lie *)
              let at = if !t_src = 0. then 10. else 1. in
              emit ~dst:1 ~at (int_of_float !t_src);
              t_src := !t_src +. 6.;
              incr n
            done;
            !n);
      }
    in
    let sink =
      recorder
        ~on_msg:(fun at _ -> Trace.emit_bare tr ~ts:at Trace.Syscall)
        [] (ref [])
    in
    Shard.create ~enforce [| source; sink |]
  in
  (match Shard.run (make_model ~enforce:true) with
  | () -> Alcotest.fail "enforcement should have tripped"
  | exception Shard.Causality_violation _ -> ());
  (match Shard.run (make_model ~enforce:false) with
  | () -> Alcotest.fail "checker should have tripped"
  | exception Checker.Violation v ->
      Alcotest.(check string) "violation class" "time-regression"
        v.Checker.v_invariant);
  Checker.detach tr

(* Mutation: a stepper that breaks the st_next contract (reports work
   pending but never does any) must stall loudly, not hang. *)
let test_stall_detected () =
  let zombie =
    {
      Shard.st_next = (fun () -> 5.);
      st_lookahead = 1.;
      st_step = (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto:_ ~emit:_ -> 0);
    }
  in
  Alcotest.(check bool) "stall raises" true
    (match Shard.run (Shard.create [| zombie |]) with
    | () -> false
    | exception Shard.Stalled _ -> true)

(* --- exception propagation across domains --- *)

exception Boom of int

let qcheck_run_units_lowest_index_exception =
  QCheck.Test.make
    ~name:"Parallel.run/run_units surface the lowest-index exception"
    ~count:120
    QCheck.(
      triple (int_range 1 20) (int_range 1 8) (int_bound 1_000_000))
    (fun (n, jobs, salt) ->
      (* salt picks a nonempty failing subset deterministically *)
      let fails i = (i + salt) mod 3 = 0 in
      let lowest = ref None in
      for i = n - 1 downto 0 do
        if fails i then lowest := Some i
      done;
      match !lowest with
      | None -> true
      | Some want ->
          let unit_of i () = if fails i then raise (Boom i) in
          let got_units =
            match
              Parallel.run_units ~jobs (Array.init n (fun i -> unit_of i))
            with
            | () -> None
            | exception Boom i -> Some i
          in
          let got_run =
            match
              Parallel.run ~jobs
                (Array.init n (fun i ->
                     (Printf.sprintf "task%d" i, fun () -> unit_of i ())))
            with
            | _ -> None
            | exception Boom i -> Some i
          in
          got_units = Some want && got_run = Some want)

let test_pool_exception_deterministic () =
  (* A raising shard must surface the lowest shard index on the main
     domain, whether the bodies run serially or on the persistent
     worker pool. *)
  let run par =
    let bomb i =
      {
        Shard.st_next = (fun () -> 0.);
        st_lookahead = 1.;
        st_step =
          (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto:_ ~emit:_ ->
            raise (Boom i));
      }
    in
    let quiet = recorder [] (ref []) in
    match
      Shard.run ~par (Shard.create [| quiet; bomb 1; quiet; bomb 3 |])
    with
    | () -> None
    | exception Boom i -> Some i
  in
  Alcotest.(check (option int)) "serial" (Some 1) (run false);
  Alcotest.(check (option int)) "pool" (Some 1) (run true)

(* --- two kernels on two engine shards, joined by a Wire --- *)

(* Ping-pong across the wire: the client kernel sends 1..n, the server
   kernel doubles each value back.  The wire latency is exactly the
   lookahead each engine shard declares, and the whole dance must be
   byte-identical (per-engine trace digests, sums, clocks) at any
   shard count, serially or pipelined across domains. *)
let wire_pingpong ~shards ~par n =
  let eng_a = Engine.create () and eng_b = Engine.create () in
  let tr_a = Trace.create () and tr_b = Trace.create () in
  Engine.set_trace eng_a tr_a;
  Engine.set_trace eng_b tr_b;
  let kern_a = Kernel.create eng_a ~ncpus:1 in
  let kern_b = Kernel.create eng_b ~ncpus:1 in
  let es_a = Shard.engine_shard ~lookahead:Wire.default_latency eng_a in
  let es_b = Shard.engine_shard ~lookahead:Wire.default_latency eng_b in
  let ep_a =
    Wire.endpoint kern_a ~post:(fun ~at th -> Shard.post es_a ~dst:1 ~at th)
  in
  let ep_b =
    Wire.endpoint kern_b ~post:(fun ~at th -> Shard.post es_b ~dst:0 ~at th)
  in
  Wire.connect ep_a ep_b;
  let total = ref 0 in
  let proc_a = Kernel.create_process kern_a ~name:"client" in
  let proc_b = Kernel.create_process kern_b ~name:"server" in
  ignore
    (Kernel.spawn ~cpu:0 kern_a proc_a ~name:"client" (fun th ->
         for i = 1 to n do
           Wire.send ep_a th i;
           total := !total + Wire.recv ep_a th
         done));
  ignore
    (Kernel.spawn ~cpu:0 kern_b proc_b ~name:"server" (fun th ->
         for _ = 1 to n do
           let v = Wire.recv ep_b th in
           Wire.send ep_b th (2 * v)
         done));
  let idle =
    {
      Shard.st_next = (fun () -> infinity);
      st_lookahead = infinity;
      st_step = (fun ~inbox_at:_ ~inbox_pay:_ ~inbox_len:_ ~upto:_ ~emit:_ -> 0);
    }
  in
  let steppers =
    Array.init (max 2 shards) (fun i ->
        if i = 0 then es_a.Shard.es_stepper
        else if i = 1 then es_b.Shard.es_stepper
        else idle)
  in
  let t = Shard.create steppers in
  Shard.run ~par t;
  ( !total,
    Shard.delivered t,
    Trace.digest_hex tr_a,
    Trace.digest_hex tr_b,
    Engine.now eng_a,
    Engine.now eng_b )

let test_wire_pingpong_digest_equality () =
  let n = 8 in
  let reference = wire_pingpong ~shards:2 ~par:false n in
  let total, delivered, _, _, _, _ = reference in
  Alcotest.(check int) "server doubled every value" (n * (n + 1)) total;
  Alcotest.(check int) "every message crossed the barrier" (2 * n) delivered;
  Alcotest.(check bool) "2 shards pipelined == serial" true
    (wire_pingpong ~shards:2 ~par:true n = reference);
  Alcotest.(check bool) "4 shards (2 idle) == serial" true
    (wire_pingpong ~shards:4 ~par:false n = reference);
  Alcotest.(check bool) "4 shards pipelined == serial" true
    (wire_pingpong ~shards:4 ~par:true n = reference)

(* --- small supporting APIs added with the sharding work --- *)

let test_heap_capacity_presize () =
  let a = Heap.create () in
  let b = Heap.create ~capacity:64 () in
  for i = 99 downto 0 do
    Heap.push a ~time:(float_of_int i) i;
    Heap.push b ~time:(float_of_int i) i
  done;
  let drain h =
    let out = ref [] in
    while not (Heap.is_empty h) do
      out := Heap.pop_min h :: !out
    done;
    List.rev !out
  in
  Alcotest.(check (list int)) "pre-sized heap pops identically" (drain a)
    (drain b)

let test_engine_next_time () =
  let e = Engine.create () in
  Alcotest.(check (float 0.)) "empty engine" infinity (Engine.next_time e);
  Engine.schedule e ~at:42. (fun () -> ());
  Alcotest.(check (float 0.)) "earliest pending event" 42.
    (Engine.next_time e);
  Engine.run e;
  Alcotest.(check (float 0.)) "drained engine" infinity (Engine.next_time e)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "shard.differential",
      [
        Alcotest.test_case "openload multi-window pipelining" `Quick
          test_openload_multiwindow;
        Alcotest.test_case "zero-lookahead degeneration" `Quick
          test_zero_lookahead_degeneration;
      ]
      @ qsuite
          [
            qcheck_openload_differential;
            qcheck_ipc_windowed_differential;
            qcheck_oltp_windowed_differential;
          ] );
    ( "shard.protocol",
      [
        Alcotest.test_case "merge tie-break (time, src, seq)" `Quick
          test_merge_tiebreak;
        Alcotest.test_case "drain mid-window + bound ties" `Quick
          test_drain_midwindow_and_bound_ties;
        Alcotest.test_case "lookahead lie raises Causality_violation" `Quick
          test_causality_violation_caught;
        Alcotest.test_case "unenforced lie caught by checker" `Quick
          test_unenforced_lie_caught_by_checker;
        Alcotest.test_case "contract breach stalls loudly" `Quick
          test_stall_detected;
        Alcotest.test_case "pool exception lowest-index deterministic" `Quick
          test_pool_exception_deterministic;
      ]
      @ qsuite [ qcheck_run_units_lowest_index_exception ] );
    ( "shard.wire",
      [
        Alcotest.test_case "two-kernel ping-pong digest equality" `Quick
          test_wire_pingpong_digest_equality;
        Alcotest.test_case "heap capacity pre-sizing" `Quick
          test_heap_capacity_presize;
        Alcotest.test_case "engine next_time" `Quick test_engine_next_time;
      ] );
  ]
