(* Security-model tests: properties P1-P5 of Sec. 5.1, fault notification
   and KCS unwinding (Sec. 5.2.1), thread-private stacks, and call
   time-outs by thread splitting (Sec. 5.4).

   Each behavioural difference between isolation policies is tested in
   both directions: the protection holds when requested, and is (by
   design) absent when not requested. *)

module Perm = Dipc_hw.Perm
module Machine = Dipc_hw.Machine
module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault
module Sys_ = Dipc_core.System
module Types = Dipc_core.Types
module Entry = Dipc_core.Entry
module Annot = Dipc_core.Annot
module Resolver = Dipc_core.Resolver
module Call = Dipc_core.Call
module Loader = Dipc_core.Loader

let sig2 = Types.signature ~args:2 ~rets:1 ()

(* Two processes connected by one exported entry; returns everything the
   tests below poke at. *)
type duo = {
  t : Sys_.t;
  caller : Sys_.process;
  callee : Sys_.process;
  caller_img : Annot.image;
  callee_img : Annot.image;
  th : Sys_.thread;
  stub : int; (* generated caller stub *)
}

let make_duo ?(caller_props = Types.props_none) ?(callee_props = Types.props_none)
    ?(fn = [ Isa.Add (0, 0, 1); Isa.Ret ]) () =
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let callee_img = Annot.image t callee in
  ignore (Annot.declare_function t callee_img ~name:"fn" fn);
  let handle =
    Annot.declare_entries t callee_img ~name:"svc" [ ("fn", sig2, callee_props) ]
  in
  Resolver.publish resolver ~path:"/svc" handle;
  let caller = Sys_.create_process t ~name:"caller" in
  let caller_img = Annot.image t caller in
  let sym = Annot.import caller_img ~path:"/svc" ~sig_:sig2 ~props:caller_props () in
  let stub = Annot.resolve t resolver sym in
  let th = Sys_.create_thread t caller in
  { t; caller; callee; caller_img; callee_img; th; stub }

let exec d ~fn ~args = Call.exec d.t d.th ~fn ~args

let expect_dead d ~fn ~args kind_check =
  match exec d ~fn ~args with
  | Ok v -> Alcotest.failf "expected the thread to die, got %d" v
  | Error f ->
      if not (kind_check f.Fault.kind) then
        Alcotest.failf "unexpected fault: %s" (Fault.to_string f)

(* --- P1: no access without an explicit grant --- *)

let test_p1_no_cross_process_reads () =
  let d = make_duo () in
  (* An address squarely inside the callee's default domain. *)
  let secret = Sys_.dom_mmap d.t (Sys_.dom_default d.callee) ~bytes:4096 () in
  Sys_.store d.t secret 12345;
  let spy =
    Annot.declare_function d.t d.caller_img ~name:"spy"
      [ Isa.Const (1, secret); Isa.Load (0, 1, 0); Isa.Ret ]
  in
  expect_dead d ~fn:spy ~args:[]
    (function Fault.No_permission _ -> true | _ -> false)

let test_p1_no_direct_jump_into_callee () =
  let d = make_duo () in
  let target = Annot.function_addr d.callee_img "fn" in
  let jumper =
    Annot.declare_function d.t d.caller_img ~name:"jumper" [ Isa.Call target; Isa.Ret ]
  in
  expect_dead d ~fn:jumper ~args:[ 1; 2 ]
    (function Fault.No_permission _ -> true | _ -> false)

let test_p1_grant_enables_access () =
  (* The same read succeeds after the callee explicitly grants it. *)
  let d = make_duo () in
  let data_dom = Sys_.dom_create d.t d.callee in
  let secret = Sys_.dom_mmap d.t data_dom ~bytes:4096 () in
  Sys_.store d.t secret 777;
  ignore
    (Sys_.grant_create d.t
       ~src:(Sys_.dom_default d.caller)
       ~dst:(Sys_.dom_copy data_dom Perm.Read));
  let reader =
    Annot.declare_function d.t d.caller_img ~name:"reader"
      [ Isa.Const (1, secret); Isa.Load (0, 1, 0); Isa.Ret ]
  in
  match exec d ~fn:reader ~args:[] with
  | Ok v -> Alcotest.(check int) "granted read works" 777 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

(* --- P2: calls enter only through proxies, on valid stacks --- *)

let test_p2_misaligned_proxy_entry () =
  let t = Sys_.create () in
  let callee = Sys_.create_process t ~name:"callee" in
  let img = Annot.image t callee in
  ignore (Annot.declare_function t img ~name:"fn" [ Isa.Ret ]);
  let stub_addr = Annot.function_addr img "fn" in
  let handle =
    Entry.entry_register t ~dom:(Sys_.dom_default callee)
      [| { Entry.e_addr = stub_addr; e_sig = sig2; e_policy = Types.props_none } |]
  in
  let caller = Sys_.create_process t ~name:"caller" in
  let set =
    Entry.entry_request t ~caller ~caller_dom:(Sys_.dom_default caller)
      ~entry:handle [| (sig2, Types.props_none) |]
  in
  ignore (Sys_.grant_create t ~src:(Sys_.dom_default caller) ~dst:set.Entry.ps_dom);
  let proxy = set.Entry.ps_proxies.(0) in
  let th = Sys_.create_thread t caller in
  (* A call into the middle of the proxy must fault on alignment. *)
  let evil =
    Loader.place_fn t ~dom:(Sys_.dom_default caller)
      [ Isa.Call (proxy.Entry.p_entry + Isa.instr_bytes); Isa.Ret ]
  in
  (match Call.exec t th ~fn:evil ~args:[] with
  | Ok _ -> Alcotest.fail "expected alignment fault"
  | Error f ->
      Alcotest.(check bool) "misaligned entry rejected" true
        (match f.Fault.kind with Fault.Not_entry_point -> true | _ -> false));
  (* The aligned entry works. *)
  let good =
    Loader.place_fn t ~dom:(Sys_.dom_default caller)
      [ Isa.Call proxy.Entry.p_entry; Isa.Ret ]
  in
  match Call.exec t th ~fn:good ~args:[ 0; 0 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "aligned call failed: %s" (Fault.to_string f)

let test_p2_stack_validity_check () =
  let d = make_duo () in
  (* Point sp at a writable page that is not the thread's stack: the
     proxy's bounds check must trap. *)
  let fake_stack = Sys_.dom_mmap d.t (Sys_.dom_default d.caller) ~bytes:4096 () in
  let evil =
    Annot.declare_function d.t d.caller_img ~name:"evil"
      [ Isa.Const (Isa.sp, fake_stack + 4096 - 8); Isa.Call d.stub; Isa.Ret ]
  in
  expect_dead d ~fn:evil ~args:[ 1; 2 ]
    (function Fault.Software_trap 7 -> true | _ -> false)

(* --- P3: returns go back to the caller's expected point --- *)

let test_p3_callee_cannot_redirect_return () =
  (* The callee overwrites its return slot with an address inside the
     caller; the return transfer check must refuse it (the callee has no
     permission to the caller's domain). *)
  let probe = ref 0 in
  ignore probe;
  let d =
    make_duo
      ~fn:[ Isa.Const (12, 0xdead000); Isa.Store (Isa.sp, 0, 12); Isa.Ret ]
      ()
  in
  (* The fault is flagged to the caller, which resumes with errno set. *)
  (match exec d ~fn:d.stub ~args:[ 1; 2 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "caller should survive: %s" (Fault.to_string f));
  Alcotest.(check int) "errno flags the callee fault" Types.err_callee_fault
    (Sys_.errno d.t d.th)

let test_p3_return_reaches_caller_exactly () =
  let d = make_duo () in
  let wrapper =
    Annot.declare_function d.t d.caller_img ~name:"wrapper"
      [
        Isa.Const (8, 4321) (* callee-saved marker *);
        Isa.Call d.stub;
        Isa.Mov (1, 8);
        Isa.Addi (0, 0, 0);
        Isa.Ret;
      ]
  in
  match exec d ~fn:wrapper ~args:[ 30; 12 ] with
  | Ok v -> Alcotest.(check int) "flow resumed after the call site" 42 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

(* --- P5 + policy behaviour: register integrity --- *)

let callee_clobbers_saved_regs =
  [ Isa.Const (8, 9999); Isa.Const (9, 9999); Isa.Add (0, 0, 1); Isa.Ret ]

let reg_integrity_result ~caller_props =
  let d = make_duo ~caller_props ~fn:callee_clobbers_saved_regs () in
  let wrapper =
    Annot.declare_function d.t d.caller_img ~name:"wrapper"
      [ Isa.Const (8, 1234); Isa.Call d.stub; Isa.Mov (0, 8); Isa.Ret ]
  in
  match exec d ~fn:wrapper ~args:[ 1; 2 ] with
  | Ok v -> v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_register_integrity_protects () =
  let p = { Types.props_none with Types.reg_integrity = true } in
  Alcotest.(check int) "live register survives a hostile callee" 1234
    (reg_integrity_result ~caller_props:p)

let test_no_register_integrity_no_protection () =
  Alcotest.(check int) "without the property the clobber is visible" 9999
    (reg_integrity_result ~caller_props:Types.props_none)

(* --- register confidentiality --- *)

let callee_reads_r5 = [ Isa.Mov (0, 5); Isa.Ret ]

let reg_conf_result ~caller_props =
  let d = make_duo ~caller_props ~fn:callee_reads_r5 () in
  let wrapper =
    Annot.declare_function d.t d.caller_img ~name:"wrapper"
      [ Isa.Const (5, 555) (* a caller secret *); Isa.Call d.stub; Isa.Ret ]
  in
  match exec d ~fn:wrapper ~args:[ 1; 2 ] with
  | Ok v -> v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_register_confidentiality_hides () =
  let p = { Types.props_none with Types.reg_confidentiality = true } in
  Alcotest.(check int) "secret zeroed before the call" 0 (reg_conf_result ~caller_props:p)

let test_no_register_confidentiality_leaks () =
  Alcotest.(check int) "without the property the callee sees it" 555
    (reg_conf_result ~caller_props:Types.props_none)

(* --- callee-side register confidentiality (P5: enforced by the callee's
   own stub, no cooperation needed from the caller) --- *)

let test_callee_confidentiality_scrubs_results () =
  let fn = [ Isa.Const (5, 777) (* callee secret *); Isa.Add (0, 0, 1); Isa.Ret ] in
  let callee_props = { Types.props_none with Types.reg_confidentiality = true } in
  let d = make_duo ~callee_props ~fn () in
  let wrapper =
    Annot.declare_function d.t d.caller_img ~name:"wrapper"
      [ Isa.Const (5, 0); Isa.Call d.stub; Isa.Mov (0, 5); Isa.Ret ]
  in
  match exec d ~fn:wrapper ~args:[ 1; 2 ] with
  | Ok v -> Alcotest.(check int) "callee secret scrubbed on return" 0 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

(* --- data stack confidentiality --- *)

(* The callee peeks above its stack frame; with a shared stack it sees the
   caller's data, with split stacks it sees its own fresh stack. *)
let callee_peeks_stack = [ Isa.Load (0, Isa.sp, 24); Isa.Ret ]

let stack_conf_result ~props =
  let d = make_duo ~caller_props:props ~callee_props:props ~fn:callee_peeks_stack () in
  let wrapper =
    Annot.declare_function d.t d.caller_img ~name:"wrapper"
      [
        Isa.Const (12, 4242);
        Isa.Addi (Isa.sp, Isa.sp, -8);
        Isa.Store (Isa.sp, 0, 12);
        Isa.Call d.stub;
        Isa.Addi (Isa.sp, Isa.sp, 8);
        Isa.Ret;
      ]
  in
  match exec d ~fn:wrapper ~args:[ 1; 2 ] with
  | Ok v -> v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_stack_confidentiality_splits () =
  (* With split stacks the callee's peek lands on its own (empty) stack —
     or faults outright at its stack boundary and is unwound; either way
     the caller's 4242 must not be visible. *)
  let p = { Types.props_none with Types.stack_confidentiality = true } in
  Alcotest.(check bool) "callee cannot see the caller's stack" true
    (stack_conf_result ~props:p <> 4242)

let test_shared_stack_leaks_by_design () =
  Alcotest.(check int) "without the property the stack is shared" 4242
    (stack_conf_result ~props:Types.props_none)

(* --- thread-private stacks (Sec. 5.2.1) --- *)

let test_thread_stack_privacy () =
  let t = Sys_.create () in
  let p = Sys_.create_process t ~name:"p" in
  let img = Annot.image t p in
  let th_a = Sys_.create_thread t p in
  let th_b = Sys_.create_thread t p in
  let spy =
    Annot.declare_function t img ~name:"spy"
      [ Isa.Const (1, th_a.Sys_.t_stack_base); Isa.Load (0, 1, 0); Isa.Ret ]
  in
  (* Thread B cannot touch thread A's stack even inside one process. *)
  (match Call.exec t th_b ~fn:spy ~args:[] with
  | Ok _ -> Alcotest.fail "thread B read thread A's stack"
  | Error f ->
      Alcotest.(check bool) "denied" true
        (match f.Fault.kind with Fault.No_permission _ -> true | _ -> false));
  (* Thread A can, of course, use its own stack. *)
  let own =
    Annot.declare_function t img ~name:"own"
      [ Isa.Const (1, th_a.Sys_.t_stack_base); Isa.Load (0, 1, 0); Isa.Ret ]
  in
  match Call.exec t th_a ~fn:own ~args:[] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "own stack read failed: %s" (Fault.to_string f)

(* --- fault notification and unwinding (Sec. 5.2.1) --- *)

let test_crash_unwinds_to_caller () =
  let d = make_duo ~fn:[ Isa.Trap 99 ] () in
  (match exec d ~fn:d.stub ~args:[ 1; 2 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "caller should survive: %s" (Fault.to_string f));
  Alcotest.(check int) "errno set" Types.err_callee_fault (Sys_.errno d.t d.th);
  (* The system stays usable: a healthy entry still works on the same
     thread. *)
  let d2_fn =
    Annot.declare_function d.t d.caller_img ~name:"local" [ Isa.Const (0, 5); Isa.Ret ]
  in
  match exec d ~fn:d2_fn ~args:[] with
  | Ok v -> Alcotest.(check int) "thread still usable" 5 v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_crash_without_caller_kills_thread () =
  let d = make_duo () in
  let crash =
    Annot.declare_function d.t d.caller_img ~name:"crash" [ Isa.Trap 13 ]
  in
  expect_dead d ~fn:crash ~args:[]
    (function Fault.Software_trap 13 -> true | _ -> false)

let test_kill_unwinds_running_callee () =
  (* The callee spins; we run out of fuel mid-callee, kill the callee
     process, and deliver the kill: the caller must resume with errno. *)
  let d =
    make_duo ~fn:[ Isa.Jmp 0 (* patched below *) ] ()
  in
  (* Build a real spin loop in the callee's image. *)
  let spin_entry = Annot.function_addr d.callee_img "fn" in
  ignore
    (Dipc_hw.Memory.place_code d.t.Sys_.machine.Sys_.Machine.mem ~addr:spin_entry
       [ Isa.Jmp spin_entry ]);
  Call.setup d.t d.th ~fn:d.stub ~args:[ 1; 2 ];
  (match Call.run d.t d.th ~fuel:20_000 () with
  | Ok _ -> Alcotest.fail "should not complete"
  | Error _ -> Alcotest.fail "should not fault yet"
  | exception Machine.Out_of_fuel -> ());
  Sys_.kill_process d.t d.callee;
  (match Call.deliver_kill d.t d.th with
  | `Resumed -> ()
  | `Dead -> Alcotest.fail "caller was alive");
  (match Call.run d.t d.th () with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "caller should finish: %s" (Fault.to_string f));
  Alcotest.(check int) "errno marks the kill" Types.err_callee_killed
    (Sys_.errno d.t d.th)

let test_unwind_skips_dead_intermediate () =
  (* web -> php -> db; php dies while db spins; the kill must unwind past
     php's dead frame to web. *)
  let t = Sys_.create () in
  let resolver = Resolver.create () in
  let db = Sys_.create_process t ~name:"db" in
  let db_img = Annot.image t db in
  let spin = Annot.declare_function t db_img ~name:"spin" [ Isa.Nop; Isa.Ret ] in
  ignore
    (Dipc_hw.Memory.place_code t.Sys_.machine.Sys_.Machine.mem ~addr:spin
       [ Isa.Jmp spin ]);
  let db_handle =
    Annot.declare_entries t db_img ~name:"db" [ ("spin", sig2, Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/db" db_handle;
  let php = Sys_.create_process t ~name:"php" in
  let php_img = Annot.image t php in
  let php_sym = Annot.import php_img ~path:"/db" ~sig_:sig2 ~props:Types.props_none () in
  let db_stub = Annot.resolve t resolver php_sym in
  ignore
    (Annot.declare_function t php_img ~name:"page" [ Isa.Call db_stub; Isa.Ret ]);
  let php_handle =
    Annot.declare_entries t php_img ~name:"php" [ ("page", sig2, Types.props_none) ]
  in
  Resolver.publish resolver ~path:"/php" php_handle;
  let web = Sys_.create_process t ~name:"web" in
  let web_img = Annot.image t web in
  let web_sym = Annot.import web_img ~path:"/php" ~sig_:sig2 ~props:Types.props_none () in
  let web_stub = Annot.resolve t resolver web_sym in
  let th = Sys_.create_thread t web in
  Call.setup t th ~fn:web_stub ~args:[ 0; 0 ];
  (match Call.run t th ~fuel:50_000 () with
  | exception Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected to be spinning in db");
  Sys_.kill_process t php;
  Sys_.kill_process t db;
  (match Call.deliver_kill t th with
  | `Resumed -> ()
  | `Dead -> Alcotest.fail "web is alive and must be resumed");
  (match Call.run t th () with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "web should complete: %s" (Fault.to_string f));
  Alcotest.(check int) "errno delivered to web" Types.err_callee_killed
    (Sys_.errno t th)

(* --- time-outs by thread splitting (Sec. 5.4) --- *)

let slow_callee =
  [
    Isa.Const (1, 5000);
    Isa.Addi (1, 1, -1) (* loop head at +8 *);
    Isa.Bnez (1, 0) (* patched: branch back to loop head *);
    Isa.Const (0, 7);
    Isa.Ret;
  ]

let make_slow_duo ~props () =
  let d = make_duo ~caller_props:props ~callee_props:props ~fn:[ Isa.Nop; Isa.Ret ] () in
  (* Place the real slow loop over the callee function. *)
  let fn = Annot.function_addr d.callee_img "fn" in
  ignore
    (Dipc_hw.Memory.place_code d.t.Sys_.machine.Sys_.Machine.mem ~addr:fn
       [
         Isa.Const (1, 200_000);
         Isa.Addi (1, 1, -1);
         Isa.Bnez (1, fn + Isa.instr_bytes);
         Isa.Const (0, 7);
         Isa.Ret;
       ]);
  d

let test_timeout_split () =
  let props = { Types.props_none with Types.stack_confidentiality = true } in
  let d = make_slow_duo ~props () in
  Call.setup d.t d.th ~fn:d.stub ~args:[ 1; 2 ];
  (match Call.run d.t d.th ~fuel:10_000 () with
  | exception Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected the callee to still be running");
  (* Time out: split the thread. *)
  let callee_th =
    match Call.split_timeout d.t d.th with
    | Ok th -> th
    | Error e -> Alcotest.fail e
  in
  (* Caller resumes immediately with a time-out error. *)
  (match Call.run d.t d.th () with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "caller must resume: %s" (Fault.to_string f));
  Alcotest.(check int) "errno is timeout" Types.err_timeout (Sys_.errno d.t d.th);
  (* The callee side runs to completion and exits through the proxy that
     produced the split. *)
  (match Call.run d.t callee_th () with
  | Ok v -> Alcotest.(check int) "callee finished its work" 7 v
  | Error f -> Alcotest.failf "callee crashed: %s" (Fault.to_string f));
  Alcotest.(check bool) "callee thread exited" true
    callee_th.Sys_.t_ctx.Machine.halted

let test_timeout_split_requires_stack_confidentiality () =
  let d = make_slow_duo ~props:Types.props_none () in
  Call.setup d.t d.th ~fn:d.stub ~args:[ 1; 2 ];
  (match Call.run d.t d.th ~fuel:10_000 () with
  | exception Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected the callee to still be running");
  match Call.split_timeout d.t d.th with
  | Ok _ -> Alcotest.fail "split must require a separate stack"
  | Error _ -> ()

(* --- adversarial scenario matrix (hostile-domain suite) --- *)

module Adv = Dipc_workloads.Adversary

let backend_t = Alcotest.testable (Fmt.of_to_string Adv.backend_name) ( = )
let _ = backend_t

let fact_of_outcome = function
  | Adv.Ran audited -> (-1, audited)
  | Adv.Faulted f -> (Fault.kind_code f.Fault.kind, f.Fault.pc)
  | Adv.Refused s -> (-2, String.length s)

let pp_outcome = function
  | Adv.Ran a -> Printf.sprintf "Ran(audited=%d)" a
  | Adv.Faulted f -> Printf.sprintf "Faulted(%s)" (Fault.to_string f)
  | Adv.Refused s -> Printf.sprintf "Refused(%s)" s

(* Every directed scenario produces exactly the pinned (fault kind,
   canonical faulting pc) on every backend it applies to, on both
   interpreter paths. *)
let test_directed_corpus () =
  List.iter
    (fun s ->
      List.iter
        (fun backend ->
          List.iter
            (fun block ->
              let where =
                Printf.sprintf "%s on %s (block=%b)" s.Adv.s_name
                  (Adv.backend_name backend) block
              in
              let outcome =
                Adv.run_one ~block ~posture:Fault.Strict backend s.Adv.s_attack
              in
              match (s.Adv.s_expect, outcome) with
              | None, Adv.Ran 0 -> ()
              | None, o ->
                  Alcotest.failf "%s: benign load did not run clean: %s" where
                    (pp_outcome o)
              | Some (k, pc), Adv.Faulted f ->
                  if Fault.kind_code f.Fault.kind <> Fault.kind_code k then
                    Alcotest.failf "%s: wrong fault kind: %s (wanted %s)" where
                      (Fault.kind_to_string f.Fault.kind)
                      (Fault.kind_to_string k);
                  Alcotest.(check int)
                    (Printf.sprintf "%s: canonical faulting pc" where)
                    pc f.Fault.pc
              | Some (k, _), o ->
                  Alcotest.failf "%s: expected %s fault, got %s" where
                    (Fault.kind_to_string k) (pp_outcome o))
            [ true; false ])
        s.Adv.s_backends)
    Adv.corpus

(* Proxy misuse: re-entering a proxy past its aligned entry point is a
   Not_entry_point fault at the re-entry target, identically on both
   interpreter paths. *)
let test_proxy_reentry_blocked () =
  let check block =
    let outcome, target = Adv.proxy_reentry ~block () in
    match outcome with
    | Adv.Faulted { Fault.kind = Fault.Not_entry_point; pc; _ } ->
        Alcotest.(check int)
          (Printf.sprintf "re-entry faults at the target (block=%b)" block)
          target pc;
        (target, pc)
    | o -> Alcotest.failf "re-entry not refused (block=%b): %s" block (pp_outcome o)
  in
  let on = check true and off = check false in
  Alcotest.(check (pair int int)) "both paths agree" on off

let test_wrong_signature_refused () =
  match Adv.wrong_signature () with
  | Adv.Refused _ -> ()
  | o -> Alcotest.failf "wrong-signature import resolved: %s" (pp_outcome o)

(* The cost-of-isolation pins: the cross-backend sweep digest is a
   constant of the architecture — equal on all three backends, both
   interpreter paths, per posture. *)
let posture_pins =
  [
    (Fault.Strict, "0a834554efb934da");
    (Fault.Audit, "d250229e97a92f17");
    (Fault.Permissive, "d1f15a20199dc816");
  ]

let test_posture_digest_pins () =
  List.iter
    (fun (posture, pin) ->
      List.iter
        (fun backend ->
          List.iter
            (fun block ->
              let outs, _ = Adv.sweep ~block ~posture backend Adv.cross_attacks in
              Alcotest.(check string)
                (Printf.sprintf "pinned digest: %s under %s (block=%b)"
                   (Adv.backend_name backend)
                   (Fault.posture_to_string posture)
                   block)
                pin
                (Adv.digest_outcomes outs))
            [ true; false ])
        Adv.all_backends)
    posture_pins

(* Differential property: a random adversarial schedule — which the
   CODOMs sweep runs through ONE shared machine, rewriting attack code
   in place and revoking/re-granting APL entries between scenarios —
   yields the same per-scenario (fault kind, canonical pc) facts on all
   three backends, and byte-identical digests with the block cache on
   and off. *)
let differential_prop =
  QCheck.Test.make ~name:"random adversarial schedules agree across backends"
    ~count:30
    QCheck.(pair (int_range 0 0xFFFF) (int_range 1 24))
    (fun (seed, n) ->
      let attacks = Adv.random_attacks ~seed ~n in
      let runs =
        List.map
          (fun backend ->
            let outs_on, cost_on = Adv.sweep ~block:true ~posture:Fault.Strict backend attacks in
            let outs_off, cost_off = Adv.sweep ~block:false ~posture:Fault.Strict backend attacks in
            if Adv.digest_outcomes outs_on <> Adv.digest_outcomes outs_off then
              QCheck.Test.fail_reportf "%s: block on/off digests diverge"
                (Adv.backend_name backend);
            if cost_on <> cost_off then
              QCheck.Test.fail_reportf "%s: block on/off costs diverge"
                (Adv.backend_name backend);
            (backend, List.map fact_of_outcome outs_on))
          Adv.all_backends
      in
      match runs with
      | (_, reference) :: rest ->
          List.iter
            (fun (backend, facts) ->
              if facts <> reference then
                QCheck.Test.fail_reportf
                  "%s disagrees with codoms on (kind, pc) facts"
                  (Adv.backend_name backend))
            rest;
          true
      | [] -> false)

(* Audit continuations are deterministic: two audit sweeps over the full
   directed schedule agree with each other and report the same number of
   downgraded denials. *)
let test_audit_determinism () =
  let sweep () = Adv.sweep ~posture:Fault.Audit Adv.Codoms (Adv.cross_attacks @ Adv.machine_attacks) in
  let outs1, cost1 = sweep () and outs2, cost2 = sweep () in
  Alcotest.(check string) "audit digest stable"
    (Adv.digest_outcomes outs1) (Adv.digest_outcomes outs2);
  Alcotest.(check (float 0.0)) "audit cost stable" cost1 cost2;
  let audited =
    List.fold_left
      (fun acc -> function Adv.Ran a -> acc + a | _ -> acc)
      0 outs1
  in
  Alcotest.(check bool) "audit posture recorded downgraded denials" true
    (audited > 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "security.p1",
      [
        Alcotest.test_case "no cross-process reads" `Quick test_p1_no_cross_process_reads;
        Alcotest.test_case "no direct jumps" `Quick test_p1_no_direct_jump_into_callee;
        Alcotest.test_case "grant enables access" `Quick test_p1_grant_enables_access;
      ] );
    ( "security.p2",
      [
        Alcotest.test_case "misaligned proxy entry" `Quick test_p2_misaligned_proxy_entry;
        Alcotest.test_case "stack validity" `Quick test_p2_stack_validity_check;
      ] );
    ( "security.p3",
      [
        Alcotest.test_case "return cannot be redirected" `Quick
          test_p3_callee_cannot_redirect_return;
        Alcotest.test_case "return reaches call site" `Quick
          test_p3_return_reaches_caller_exactly;
      ] );
    ( "security.properties",
      [
        Alcotest.test_case "reg integrity protects" `Quick test_register_integrity_protects;
        Alcotest.test_case "reg integrity off" `Quick test_no_register_integrity_no_protection;
        Alcotest.test_case "reg confidentiality hides" `Quick test_register_confidentiality_hides;
        Alcotest.test_case "reg confidentiality off" `Quick test_no_register_confidentiality_leaks;
        Alcotest.test_case "callee-side scrubbing (P5)" `Quick
          test_callee_confidentiality_scrubs_results;
        Alcotest.test_case "stack confidentiality splits" `Quick test_stack_confidentiality_splits;
        Alcotest.test_case "shared stack by design" `Quick test_shared_stack_leaks_by_design;
        Alcotest.test_case "thread stack privacy" `Quick test_thread_stack_privacy;
      ] );
    ( "security.unwinding",
      [
        Alcotest.test_case "crash unwinds to caller" `Quick test_crash_unwinds_to_caller;
        Alcotest.test_case "crash without caller" `Quick test_crash_without_caller_kills_thread;
        Alcotest.test_case "kill unwinds callee" `Quick test_kill_unwinds_running_callee;
        Alcotest.test_case "dead intermediate skipped" `Quick test_unwind_skips_dead_intermediate;
      ] );
    ( "security.timeouts",
      [
        Alcotest.test_case "split (Sec. 5.4)" `Quick test_timeout_split;
        Alcotest.test_case "split needs own stack" `Quick
          test_timeout_split_requires_stack_confidentiality;
      ] );
    ( "security.adversary",
      [
        Alcotest.test_case "directed corpus: pinned (kind, pc) everywhere" `Quick
          test_directed_corpus;
        Alcotest.test_case "proxy re-entry blocked at the target" `Quick
          test_proxy_reentry_blocked;
        Alcotest.test_case "wrong-signature import refused" `Quick
          test_wrong_signature_refused;
        Alcotest.test_case "cross-backend posture digests pinned" `Quick
          test_posture_digest_pins;
        Alcotest.test_case "audit continuations deterministic" `Quick
          test_audit_determinism;
      ]
      @ qsuite [ differential_prop ] );
  ]
