(* Regression + property tests for the PR-7 tail-metric fixes and the
   open-arrival workload generator they unblock.

   Directed regressions pin the four stats-layer defects (histogram
   rank clamp, Stats polymorphic compare, negative rel_stddev, Rng
   modulo bias); qcheck properties cover the HDR histogram's algebra
   (merge associativity/commutativity vs a single-stream reference,
   <= 1% recorded-value error) and the openload determinism contract
   (same seed => same digest, at any job count). *)

module OL = Dipc_workloads.Openload
module Histogram = Dipc_sim.Histogram
module Stats = Dipc_sim.Stats
module Rng = Dipc_sim.Rng
module Parallel = Dipc_sim.Parallel

(* --- histogram rank clamp (bugfix #1) --- *)

(* Before the fix, any p whose rank rounded past the sample count fell
   off the cumulative walk and reported 0. — silently zeroing p999 on
   small runs and p100 everywhere. *)
let test_percentile_rank_clamp () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 10.; 20.; 30. ];
  let p100 = Histogram.percentile h 100. in
  Alcotest.(check bool) "p100 is positive" true (p100 > 0.);
  Alcotest.(check (float 0.)) "p999 on 3 samples equals p100" p100
    (Histogram.percentile h 99.9);
  Alcotest.(check (float 0.)) "p > 100 clamps to the top rank" p100
    (Histogram.percentile h 150.);
  Alcotest.(check (float 0.)) "p < 0 clamps to the bottom rank"
    (Histogram.percentile h 0.)
    (Histogram.percentile h (-10.));
  Alcotest.(check bool) "p100 covers the max sample" true (p100 >= 30.)

let qcheck_percentile_never_zero_on_nonempty =
  QCheck.Test.make ~name:"histogram percentile never 0 on non-empty data"
    ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_range 1. 1e6))
              (float_range 0. 200.))
    (fun (xs, p) ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      Histogram.percentile h p > 0.)

(* --- histogram merge algebra (tentpole invariant) --- *)

let hist_of xs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) xs;
  h

let samples_gen = QCheck.(list_of_size Gen.(0 -- 60) (float_range 1. 1e9))

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"histogram merge is commutative (by digest)"
    ~count:200
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let ab = hist_of xs in
      Histogram.merge ~into:ab (hist_of ys);
      let ba = hist_of ys in
      Histogram.merge ~into:ba (hist_of xs);
      Histogram.digest_hex ab = Histogram.digest_hex ba)

let qcheck_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative (by digest)"
    ~count:200
    QCheck.(triple samples_gen samples_gen samples_gen)
    (fun (xs, ys, zs) ->
      let left = hist_of xs in
      Histogram.merge ~into:left (hist_of ys);
      Histogram.merge ~into:left (hist_of zs);
      let bc = hist_of ys in
      Histogram.merge ~into:bc (hist_of zs);
      let right = hist_of xs in
      Histogram.merge ~into:right bc;
      Histogram.digest_hex left = Histogram.digest_hex right)

let qcheck_sharded_merge_equals_single_stream =
  QCheck.Test.make
    ~name:"sharded histograms merge to the single-stream reference"
    ~count:200
    QCheck.(pair samples_gen (int_range 1 7))
    (fun (xs, shards) ->
      (* Deal samples round-robin across [shards] histograms, merge, and
         compare against recording the whole stream into one — digest
         equality means bucket-exact, which --jobs invariance needs. *)
      let parts = Array.init shards (fun _ -> Histogram.create ()) in
      List.iteri (fun i x -> Histogram.add parts.(i mod shards) x) xs;
      let merged = Histogram.create () in
      Array.iter (fun p -> Histogram.merge ~into:merged p) parts;
      Histogram.digest_hex merged = Histogram.digest_hex (hist_of xs))

let qcheck_hist_relative_error =
  QCheck.Test.make ~name:"histogram resolution error <= 1% over 1ns..1s"
    ~count:500
    QCheck.(float_range 1. 1e9)
    (fun x ->
      let p = Histogram.percentile (hist_of [ x ]) 50. in
      Float.abs (p -. x) <= 0.01 *. x)

(* --- Stats fixes (bugfixes #2 and #3) --- *)

let nearest_rank xs p =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let rank = if rank < 1 then 1 else if rank > n then n else rank in
  a.(rank - 1)

let qcheck_stats_percentile_matches_reference =
  QCheck.Test.make
    ~name:"stats percentile matches the nearest-rank reference" ~count:300
    QCheck.(pair
              (list_of_size Gen.(1 -- 80) (float_range (-1e6) 1e6))
              (float_range 0. 100.))
    (fun (xs, p) ->
      (* Float.compare and polymorphic compare agree on non-NaN floats:
         the switch must be digest-neutral for every existing caller. *)
      Stats.percentile (Array.of_list xs) p = nearest_rank xs p)

let test_rel_stddev_negative_mean () =
  let t = Stats.create () in
  List.iter (Stats.add t) [ -10.; -20.; -30. ];
  Alcotest.(check bool) "mean is negative" true (Stats.mean t < 0.);
  Alcotest.(check bool) "rel_stddev is positive" true (Stats.rel_stddev t > 0.);
  (* Same spread around a positive mean: identical relative stddev. *)
  let u = Stats.create () in
  List.iter (Stats.add u) [ 10.; 20.; 30. ];
  Alcotest.(check (float 1e-12)) "sign of the mean does not matter"
    (Stats.rel_stddev u) (Stats.rel_stddev t)

(* --- Rng.int_unbiased (bugfix #4) --- *)

let qcheck_int_unbiased_in_range =
  QCheck.Test.make ~name:"rng int_unbiased stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int_unbiased r bound in
      0 <= v && v < bound)

let test_int_unbiased_deterministic () =
  let draws seed =
    let r = Rng.create ~seed in
    List.init 64 (fun _ -> Rng.int_unbiased r 1000)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draws 7) (draws 7);
  Alcotest.(check bool) "different seeds differ" true (draws 7 <> draws 8);
  let r = Rng.create ~seed:3 in
  Alcotest.(check int) "bound 1 is always 0" 0 (Rng.int_unbiased r 1);
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int_unbiased: bound must be positive") (fun () ->
      ignore (Rng.int_unbiased r 0))

let test_int_unbiased_covers_residues () =
  (* With 3000 draws of bound 7, every residue class appears; a
     rejection sampler must not starve any value. *)
  let r = Rng.create ~seed:11 in
  let seen = Array.make 7 0 in
  for _ = 1 to 3000 do
    let v = Rng.int_unbiased r 7 in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "residue %d appears" i)
        true (c > 300))
    seen

(* --- openload determinism and sanity --- *)

let params ?(seed = 42) ?(sessions = 4_000) ?(load = 0.8)
    ?(arrival = OL.Poisson) () =
  OL.default_params ~seed ~sessions ~offered_load:load ~arrival
    ~service_ns:1_000. ()

let test_openload_deterministic () =
  List.iter
    (fun arrival ->
      let a = OL.run (params ~arrival ()) in
      let b = OL.run (params ~arrival ()) in
      Alcotest.(check string)
        (OL.arrival_name arrival ^ " same seed, same digest")
        a.OL.r_digest b.OL.r_digest;
      let c = OL.run (params ~arrival ~seed:43 ()) in
      Alcotest.(check bool)
        (OL.arrival_name arrival ^ " different seed, different digest")
        true
        (a.OL.r_digest <> c.OL.r_digest))
    [ OL.Poisson; OL.Bursty; OL.Diurnal ]

let test_openload_conservation () =
  let p = params ~sessions:5_000 () in
  let r = OL.run p in
  Alcotest.(check int) "every session admitted" 5_000 r.OL.r_sessions;
  Alcotest.(check bool) "at least one request per session" true
    (r.OL.r_requests >= 5_000);
  Alcotest.(check bool) "at most 1 + max_extra per session" true
    (r.OL.r_requests <= 5_000 * (1 + p.OL.max_extra_reqs));
  Alcotest.(check int) "histogram holds every request" r.OL.r_requests
    (Histogram.count r.OL.r_latency);
  let u = OL.utilization r ~servers:p.OL.servers in
  Alcotest.(check bool) "utilization in (0, 1]" true (0. < u && u <= 1.)

(* The sweep contract: one digest per (cell) independent of the job
   count — the same Parallel.run shape bench --open uses. *)
let test_openload_jobs_invariant () =
  let cells =
    Array.of_list
      (List.concat_map
         (fun load ->
           List.map
             (fun arrival ->
               ( Printf.sprintf "%s/%.2f" (OL.arrival_name arrival) load,
                 fun () ->
                   (OL.run (params ~sessions:2_000 ~load ~arrival ()))
                     .OL.r_digest ))
             [ OL.Poisson; OL.Bursty; OL.Diurnal ])
         [ 0.5; 0.9; 1.1 ])
  in
  let digests jobs =
    Array.to_list
      (Array.map (fun o -> o.Parallel.o_value) (Parallel.run ~jobs cells))
  in
  Alcotest.(check (list string)) "digests at --jobs 4 match --jobs 1"
    (digests 1) (digests 4)

let test_saturation_knee () =
  Alcotest.(check (option (float 0.))) "knee at the first 3x blowup"
    (Some 0.95)
    (OL.saturation_knee
       [ (0.3, 100.); (0.7, 150.); (0.95, 400.); (1.1, 9000.) ]);
  Alcotest.(check (option (float 0.))) "no knee below 3x" None
    (OL.saturation_knee [ (0.3, 100.); (0.7, 150.); (0.95, 299.) ]);
  Alcotest.(check (option (float 0.))) "empty sweep has no knee" None
    (OL.saturation_knee [])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "openload.stats-fixes",
      [
        Alcotest.test_case "histogram rank clamp" `Quick
          test_percentile_rank_clamp;
        Alcotest.test_case "rel_stddev under a negative mean" `Quick
          test_rel_stddev_negative_mean;
        Alcotest.test_case "int_unbiased deterministic" `Quick
          test_int_unbiased_deterministic;
        Alcotest.test_case "int_unbiased covers residues" `Quick
          test_int_unbiased_covers_residues;
      ]
      @ qsuite
          [
            qcheck_percentile_never_zero_on_nonempty;
            qcheck_stats_percentile_matches_reference;
            qcheck_int_unbiased_in_range;
          ] );
    ( "openload.histogram",
      qsuite
        [
          qcheck_merge_commutative;
          qcheck_merge_associative;
          qcheck_sharded_merge_equals_single_stream;
          qcheck_hist_relative_error;
        ] );
    ( "openload.generator",
      [
        Alcotest.test_case "deterministic per arrival process" `Quick
          test_openload_deterministic;
        Alcotest.test_case "request conservation" `Quick
          test_openload_conservation;
        Alcotest.test_case "digests invariant under --jobs" `Quick
          test_openload_jobs_invariant;
        Alcotest.test_case "saturation knee" `Quick test_saturation_knee;
      ] );
  ]
