let () =
  Alcotest.run "dipc"
    (Test_sim.suites @ Test_hw.suites @ Test_kernel.suites @ Test_ipc.suites
   @ Test_core.suites @ Test_security.suites @ Test_workloads.suites
   @ Test_extensions.suites @ Test_archmodels.suites @ Test_lang.suites @ Test_advanced.suites
   @ Test_trace.suites @ Test_perf.suites @ Test_props.suites
   @ Test_conformance.suites @ Test_checker.suites @ Test_inject.suites
   @ Test_blocks.suites @ Test_golden.suites @ Test_parallel.suites
   @ Test_openload.suites @ Test_shard.suites)
