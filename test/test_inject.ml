(* Fault injection + checker, end to end: every IPC primitive runs clean
   under the invariant checker; seeded injection is deterministic
   (same seed => byte-identical digest) and perturbs the timeline
   without breaking any invariant or protocol outcome; disabled
   injection leaves runs byte-identical to the pinned golden digest.

   On a checker violation, [with_failure_dump] exports the offending
   run's Chrome trace into $DIPC_TRACE_DIR so CI can upload it as an
   artifact. *)

module Engine = Dipc_sim.Engine
module Trace = Dipc_sim.Trace
module Inject = Dipc_sim.Inject
module Parallel = Dipc_sim.Parallel
module Checker = Dipc_sim.Checker
module Breakdown = Dipc_sim.Breakdown
module Kernel = Dipc_kernel.Kernel
module Machine = Dipc_hw.Machine
module Apl = Dipc_hw.Apl
module Page_table = Dipc_hw.Page_table
module Memory = Dipc_hw.Memory
module Isa = Dipc_hw.Isa
module M = Dipc_workloads.Microbench
module O = Dipc_workloads.Oltp

(* Dump the run's Chrome trace on a checker violation, then re-raise:
   the CI workflow uploads $DIPC_TRACE_DIR as the failing-test
   artifact. *)
let with_failure_dump name tr f =
  try f () with
  | Checker.Violation _ as exn ->
      (match Sys.getenv_opt "DIPC_TRACE_DIR" with
      | Some dir when dir <> "" ->
          (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
           with Sys_error _ -> ());
          let path = Filename.concat dir (name ^ ".trace.json") in
          (try
             let oc = open_out path in
             Trace.write_chrome oc tr;
             close_out oc;
             Printf.eprintf "checker violation in %s: trace dumped to %s\n%!"
               name path
           with Sys_error _ -> ())
      | _ -> ());
      raise exn

(* Every primitive; the L4 server's final reply_and_wait parks forever
   by design, so that run finishes non-quiescent. *)
let primitives =
  [
    (M.Sem, "sem", true);
    (M.Pipe, "pipe", true);
    (M.L4, "l4", false);
    (M.Local_rpc, "rpc", true);
    (M.User_rpc_prim, "urpc", true);
  ]

let checked_micro ?inject ~name ~quiescent ~same_cpu prim =
  let tr = Trace.create () in
  let chk = Checker.create () in
  Checker.attach chk tr;
  let r = M.run ~warmup:5 ~iters:20 ~trace:tr ?inject ~same_cpu prim in
  with_failure_dump name tr (fun () ->
      Checker.finish ~quiescent ~expect:r.M.lifetime chk);
  Checker.detach tr;
  (Trace.digest_hex tr, r)

(* --- clean runs: checker silent on every primitive, both placements --- *)

let test_clean_runs_pass_checker () =
  List.iter
    (fun (prim, name, quiescent) ->
      List.iter
        (fun same_cpu ->
          let digest, r =
            checked_micro
              ~name:
                (Printf.sprintf "clean_%s_%s" name
                   (if same_cpu then "same" else "diff"))
              ~quiescent ~same_cpu prim
          in
          Alcotest.(check bool)
            (name ^ " digest nonempty")
            true
            (String.length digest = 16);
          Alcotest.(check bool) (name ^ " measured") true (r.M.mean_ns > 0.))
        [ true; false ])
    primitives

(* The checker is strictly observational: the pinned golden digest from
   test_trace.ml must come out unchanged with the checker attached. *)
let test_checker_preserves_golden_digest () =
  let digest, _ =
    checked_micro ~name:"golden" ~quiescent:true ~same_cpu:true M.Sem
  in
  Alcotest.(check string) "golden digest with checker attached"
    "60d65ec18e0e97d7" digest

(* A zero-probability injector still draws decisions but never perturbs:
   byte-identical to the clean (golden) run. *)
let zero_config =
  {
    Inject.default_config with
    Inject.ipi_delay_p = 0.;
    ipi_lose_p = 0.;
    spurious_wake_p = 0.;
    preempt_p = 0.;
    apl_flush_p = 0.;
    creg_clobber_p = 0.;
  }

let test_zero_probability_injector_is_clean () =
  let inj = Inject.create ~config:zero_config ~seed:1 () in
  let digest, _ =
    checked_micro ~inject:inj ~name:"zero_inject" ~quiescent:true
      ~same_cpu:true M.Sem
  in
  Alcotest.(check string) "zero-probability injection = golden digest"
    "60d65ec18e0e97d7" digest;
  Alcotest.(check int) "no faults injected" 0 (Inject.total_faults inj)

(* --- injected runs: deterministic, perturbing, invariant-preserving --- *)

let injected_digest ~config ~seed ~same_cpu (prim, name, quiescent) =
  let inj = Inject.create ~config ~seed () in
  let digest, r =
    checked_micro ~inject:inj
      ~name:(Printf.sprintf "inject_%s_seed%d" name seed)
      ~quiescent ~same_cpu prim
  in
  (digest, r, inj)

let test_same_seed_same_digest () =
  List.iter
    (fun spec ->
      let _, name, _ = spec in
      let d1, _, _ =
        injected_digest ~config:Inject.default_config ~seed:3 ~same_cpu:false
          spec
      in
      let d2, _, _ =
        injected_digest ~config:Inject.default_config ~seed:3 ~same_cpu:false
          spec
      in
      Alcotest.(check string) (name ^ ": same seed, same digest") d1 d2)
    primitives

let test_different_seed_different_digest () =
  let d1, _, _ =
    injected_digest ~config:Inject.aggressive_config ~seed:3 ~same_cpu:false
      (M.Sem, "sem", true)
  in
  let d2, _, _ =
    injected_digest ~config:Inject.aggressive_config ~seed:4 ~same_cpu:false
      (M.Sem, "sem", true)
  in
  Alcotest.(check bool) "different seed diverges the fault schedule" false
    (d1 = d2)

let test_injection_perturbs_timeline () =
  let clean, _ =
    checked_micro ~name:"perturb_clean" ~quiescent:true ~same_cpu:false M.Sem
  in
  let injected, _, inj =
    injected_digest ~config:Inject.aggressive_config ~seed:3 ~same_cpu:false
      (M.Sem, "sem", true)
  in
  Alcotest.(check bool) "faults actually fired" true
    (Inject.total_faults inj > 0);
  Alcotest.(check bool) "injected digest differs from clean" false
    (clean = injected)

let test_aggressive_matrix_passes_checker () =
  (* Both schedules, every primitive, both placements — invariants hold
     under fire.  The 20 independent cells go through the work-queue
     runner (checker violations surface as exceptions on the main
     domain); assertions run post-merge. *)
  let cells =
    List.concat_map
      (fun config ->
        List.concat_map
          (fun (prim, name, quiescent) ->
            List.map
              (fun same_cpu ->
                ( name,
                  fun () ->
                    let _, r, _ =
                      injected_digest ~config ~seed:11 ~same_cpu
                        (prim, name, quiescent)
                    in
                    (name, r.M.mean_ns) ))
              [ true; false ])
          primitives)
      [ Inject.default_config; Inject.aggressive_config ]
  in
  let out =
    Parallel.run ~jobs:(Parallel.default_jobs ()) (Array.of_list cells)
  in
  Array.iter
    (fun o ->
      let name, mean_ns = o.Parallel.o_value in
      Alcotest.(check bool)
        (name ^ " still measures round trips")
        true (mean_ns > 0.))
    out

let test_fault_stats_accounted () =
  let _, _, inj =
    injected_digest ~config:Inject.aggressive_config ~seed:3 ~same_cpu:false
      (M.Sem, "sem", true)
  in
  let s = Inject.stats inj in
  Alcotest.(check bool) "spurious wakes happened" true (s.Inject.spurious_wakes > 0);
  Alcotest.(check bool) "total = sum of classes" true
    (Inject.total_faults inj
    = s.Inject.ipis_delayed + s.Inject.ipis_lost + s.Inject.spurious_wakes
      + s.Inject.forced_preempts + s.Inject.apl_flushes + s.Inject.creg_clobbers);
  (* pp_stats renders without raising. *)
  Alcotest.(check bool) "pp_stats renders" true
    (String.length (Fmt.str "%a" Inject.pp_stats s) > 0)

(* --- OLTP under injection: deadline-stopped, structurally clean --- *)

let test_oltp_injected_checker_clean () =
  let p =
    {
      (O.default_params ~db_mode:O.In_memory ~threads:8) with
      O.warmup = 1_000_000.;
      duration = 20_000_000.;
    }
  in
  let run seed =
    let tr = Trace.create () in
    let chk = Checker.create () in
    Checker.attach chk tr;
    let inj = Inject.create ~seed () in
    let r =
      O.run ~params_override:(Some p) ~trace:tr ~inject:inj ~config:O.Dipc
        ~db_mode:O.In_memory ~threads:8 ()
    in
    with_failure_dump
      (Printf.sprintf "oltp_inject_seed%d" seed)
      tr
      (fun () -> Checker.finish ~quiescent:false chk);
    Checker.detach tr;
    (Trace.digest_hex tr, r)
  in
  let d1, r1 = run 5 in
  let d2, _ = run 5 in
  Alcotest.(check string) "oltp injected run reproducible" d1 d2;
  Alcotest.(check bool) "oltp still makes progress" true (r1.O.r_ops > 0)

(* --- machine layer: crossing faults preserve architectural results --- *)

(* Ping-pong between two domains: A and B jump into each other 15 times,
   so aggressive injection gets plenty of crossings to flush APL caches
   and clobber capability registers on. *)
let crossing_storm ?inject () =
  let m = Machine.create () in
  (match inject with Some inj -> Machine.set_inject m (Some inj) | None -> ());
  let tag_a = Apl.fresh_tag m.Machine.apl in
  let tag_b = Apl.fresh_tag m.Machine.apl in
  let code_a = 0x100000 and code_b = 0x200000 in
  Page_table.map m.Machine.page_table ~addr:code_a ~count:1 ~tag:tag_a
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:code_b ~count:1 ~tag:tag_b
    ~writable:false ~executable:true ();
  Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Dipc_hw.Perm.Read;
  Apl.grant m.Machine.apl ~src:tag_b ~dst:tag_a Dipc_hw.Perm.Read;
  let loop_a = code_a + (2 * Isa.instr_bytes) in
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_a
       [ Isa.Const (2, 0); Isa.Const (3, 8); (* loop_a: *) Isa.Jmp code_b ]);
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_b
       [ Isa.Addi (2, 2, 1); Isa.Blt (2, 3, loop_a); Isa.Halt ]);
  let ctx = Machine.new_ctx m ~pc:code_a ~sp_value:0 in
  Machine.run m ctx;
  ctx

let test_machine_injection_preserves_results () =
  let clean = crossing_storm () in
  let inj = Inject.create ~config:Inject.aggressive_config ~seed:2 () in
  let faulty = crossing_storm ~inject:inj () in
  Alcotest.(check int) "same architectural result" clean.Machine.regs.(2)
    faulty.Machine.regs.(2);
  Alcotest.(check int) "same instructions retired" clean.Machine.instret
    faulty.Machine.instret;
  Alcotest.(check bool) "crossing faults fired" true
    (Inject.total_faults inj > 0);
  Alcotest.(check bool) "faults only ever add cost" true
    (faulty.Machine.cost >= clean.Machine.cost)

let test_machine_injection_deterministic () =
  let run () =
    let inj = Inject.create ~config:Inject.aggressive_config ~seed:2 () in
    let ctx = crossing_storm ~inject:inj () in
    (ctx.Machine.cost, Inject.total_faults inj)
  in
  let c1, f1 = run () in
  let c2, f2 = run () in
  Alcotest.(check (float 0.)) "same injected cost" c1 c2;
  Alcotest.(check int) "same fault count" f1 f2

(* --- the CI artifact path: a violation dumps a Chrome trace --- *)

let test_failure_dump_writes_trace () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dipc_traces_%d" (Unix.getpid ()))
  in
  Unix.putenv "DIPC_TRACE_DIR" dir;
  let tr = Trace.create () in
  let chk = Checker.create () in
  Checker.attach chk tr;
  let raised =
    try
      with_failure_dump "dump_smoke" tr (fun () ->
          Trace.emit tr ~ts:1. Trace.Suspend;
          Trace.emit tr ~ts:2. Trace.Resume;
          Trace.emit tr ~ts:3. Trace.Resume);
      false
    with Checker.Violation _ -> true
  in
  Checker.detach tr;
  Unix.putenv "DIPC_TRACE_DIR" "";
  Alcotest.(check bool) "violation re-raised" true raised;
  let path = Filename.concat dir "dump_smoke.trace.json" in
  Alcotest.(check bool) "trace artifact written" true (Sys.file_exists path);
  let ic = open_in path in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  (try Sys.rmdir dir with Sys_error _ -> ());
  let contains needle =
    let nl = String.length needle in
    let rec go i =
      i + nl <= n && (String.sub body i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "artifact is a Chrome trace" true
    (contains "traceEvents")

let suites =
  [
    ( "inject.clean",
      [
        Alcotest.test_case "all primitives pass the checker" `Quick
          test_clean_runs_pass_checker;
        Alcotest.test_case "checker preserves the golden digest" `Quick
          test_checker_preserves_golden_digest;
        Alcotest.test_case "zero-probability injector is clean" `Quick
          test_zero_probability_injector_is_clean;
      ] );
    ( "inject.seeded",
      [
        Alcotest.test_case "same seed, same digest" `Quick
          test_same_seed_same_digest;
        Alcotest.test_case "different seed, different digest" `Quick
          test_different_seed_different_digest;
        Alcotest.test_case "injection perturbs the timeline" `Quick
          test_injection_perturbs_timeline;
        Alcotest.test_case "full matrix passes the checker" `Slow
          test_aggressive_matrix_passes_checker;
        Alcotest.test_case "fault stats accounted" `Quick
          test_fault_stats_accounted;
        Alcotest.test_case "oltp injected, checker clean" `Slow
          test_oltp_injected_checker_clean;
        Alcotest.test_case "violation dumps a trace artifact" `Quick
          test_failure_dump_writes_trace;
      ] );
    ( "inject.machine",
      [
        Alcotest.test_case "crossing faults preserve results" `Quick
          test_machine_injection_preserves_results;
        Alcotest.test_case "machine injection deterministic" `Quick
          test_machine_injection_deterministic;
      ] );
  ]
