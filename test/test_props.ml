(* Property tests (qcheck) for the simulation substrate primitives the
   fault injector and checker lean on: Waitq FIFO/remove discipline,
   Rng.split stream independence, Histogram bucket boundaries, and
   Stats against straightforward float references. *)

module Engine = Dipc_sim.Engine
module Waitq = Dipc_sim.Waitq
module Rng = Dipc_sim.Rng
module Histogram = Dipc_sim.Histogram
module Stats = Dipc_sim.Stats

(* --- Waitq: FIFO wake order, remove keeps order and wakes nobody --- *)

let qcheck_waitq_fifo =
  QCheck.Test.make ~name:"waitq wakes in FIFO park order" ~count:100
    QCheck.(int_range 1 25)
    (fun n ->
      let e = Engine.create () in
      let q = Waitq.create () in
      let woken = ref [] in
      for i = 1 to n do
        (* Distinct park times pin the park order to 1..n. *)
        Engine.spawn ~at:(float_of_int i) e (fun () ->
            let _v = Waitq.wait q in
            woken := i :: !woken)
      done;
      Engine.spawn ~at:1000. e (fun () ->
          for _ = 1 to n do
            ignore (Waitq.wake_one q 0)
          done);
      Engine.run e;
      List.rev !woken = List.init n (fun i -> i + 1))

let qcheck_waitq_remove_preserves_fifo =
  QCheck.Test.make ~name:"waitq remove keeps remaining FIFO order" ~count:100
    QCheck.(pair (int_range 2 20) small_nat)
    (fun (n, k) ->
      let k = k mod n in
      let e = Engine.create () in
      let q = Waitq.create () in
      let wakers = Array.make n None in
      let woken = ref [] in
      let removed_value = ref (-1) in
      for i = 0 to n - 1 do
        Engine.spawn ~at:(float_of_int (i + 1)) e (fun () ->
            let v =
              Waitq.wait ~on_park:(fun w -> wakers.(i) <- Some w) q
            in
            if i = k then removed_value := v else woken := i :: !woken)
      done;
      let removed_ok = ref false and regrown = ref false in
      Engine.spawn ~at:1000. e (fun () ->
          let w = Option.get wakers.(k) in
          removed_ok := Waitq.remove q w;
          regrown := not (Waitq.remove q w);
          (* wake_all must skip the withdrawn waiter entirely... *)
          ignore (Waitq.wake_all q 7);
          (* ...which stays suspended until resumed directly. *)
          Engine.resume w 99);
      Engine.run e;
      !removed_ok && !regrown
      && !removed_value = 99
      && List.rev !woken
         = List.filter (fun i -> i <> k) (List.init n (fun i -> i)))

let test_waitq_remove_unknown_waker () =
  let e = Engine.create () in
  let q1 = Waitq.create () in
  let q2 = Waitq.create () in
  let checked = ref false in
  Engine.spawn e (fun () ->
      ignore
        (Waitq.wait
           ~on_park:(fun w ->
             (* A waker parked on q1 is unknown to q2. *)
             Engine.spawn e (fun () ->
                 checked := not (Waitq.remove q2 w);
                 Engine.resume w 1))
           q1));
  Engine.run e;
  Alcotest.(check bool) "remove from the wrong queue is false" true !checked

(* --- Rng.split: determinism, divergence, designed parent advance --- *)

let draws rng n = List.init n (fun _ -> Rng.next_int64 rng)

let qcheck_split_deterministic =
  QCheck.Test.make ~name:"rng split is deterministic in the seed" ~count:100
    QCheck.small_int
    (fun seed ->
      let a = Rng.create ~seed in
      let b = Rng.create ~seed in
      let ca = Rng.split a and cb = Rng.split b in
      draws ca 8 = draws cb 8 && draws a 8 = draws b 8)

let qcheck_split_diverges =
  QCheck.Test.make ~name:"rng split child shares no draws with parent"
    ~count:100 QCheck.small_int
    (fun seed ->
      let p = Rng.create ~seed in
      let c = Rng.split p in
      (* 16 consecutive 64-bit draws colliding would be astronomically
         unlikely for a correct split. *)
      draws p 16 <> draws c 16)

let qcheck_split_advances_parent_by_one =
  QCheck.Test.make ~name:"rng split advances the parent by one draw"
    ~count:100 QCheck.small_int
    (fun seed ->
      let a = Rng.create ~seed in
      let b = Rng.copy a in
      ignore (Rng.next_int64 b);
      ignore (Rng.split a);
      draws a 8 = draws b 8)

let qcheck_split_position_matters =
  QCheck.Test.make ~name:"rng splits at different positions differ" ~count:100
    QCheck.small_int
    (fun seed ->
      let a = Rng.create ~seed in
      let c0 = Rng.split a in
      let c1 = Rng.split a in
      draws c0 8 <> draws c1 8)

(* --- Histogram: HDR resolution bound, via the public percentile --- *)

let singleton x =
  let h = Histogram.create () in
  Histogram.add h x;
  h

let qcheck_hist_relative_error_bound =
  QCheck.Test.make ~name:"histogram recovers any sample within 1%" ~count:300
    QCheck.(float_range 1. 1e9)
    (fun x ->
      (* A singleton's percentile lies inside the sample's bucket, whose
         width is <= 1/128 of its lower bound. *)
      let p = Histogram.percentile (singleton x) 50. in
      Float.abs (p -. x) <= 0.01 *. x)

let qcheck_hist_power_of_two_resolution =
  QCheck.Test.make
    ~name:"histogram keeps 1% resolution at power-of-two boundaries"
    ~count:100
    QCheck.(int_range 1 30)
    (fun k ->
      let b = 2. ** float_of_int k in
      (* The old layout collapsed [2^(k-1), 2^k) into one bucket; the
         HDR sub-buckets must distinguish either side of the boundary. *)
      let above = Histogram.percentile (singleton b) 50. in
      let below = Histogram.percentile (singleton (b *. 0.99)) 50. in
      Float.abs (above -. b) <= 0.01 *. b
      && Float.abs (below -. (b *. 0.99)) <= 0.01 *. b
      && below < above)

let test_hist_clamps () =
  let p50 x = Histogram.percentile (singleton x) 50. in
  Alcotest.(check (float 0.)) "negative samples land with zero" (p50 0.)
    (p50 (-5.));
  Alcotest.(check (float 0.)) "NaN samples land with zero" (p50 0.)
    (p50 Float.nan);
  Alcotest.(check (float 0.)) "huge samples clamp to the last bucket"
    (p50 1e18) (p50 1e20);
  Alcotest.(check (float 0.)) "empty histogram reports 0" 0.
    (Histogram.percentile (Histogram.create ()) 50.)

let qcheck_hist_percentile_monotone_in_samples =
  QCheck.Test.make ~name:"histogram p100 bounds every sample" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range 1. 1e9))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let top = Histogram.percentile h 100. in
      let mx = List.fold_left Float.max 0. xs in
      (* p100 is the upper edge of the max sample's bucket: at or above
         every sample, within 1% of the maximum. *)
      List.for_all (fun x -> x <= top) xs && top <= 1.01 *. mx)

(* --- Stats: Welford accumulator and nearest-rank percentile vs plain
       float references --- *)

let close ~scale a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. scale

let qcheck_stats_mean_matches_naive_sum =
  QCheck.Test.make ~name:"stats mean matches the naive sum" ~count:300
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1e9))
    (fun xs ->
      let t = Stats.create () in
      List.iter (Stats.add t) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      close ~scale:naive (Stats.mean t) naive)

let qcheck_stats_variance_matches_two_pass =
  QCheck.Test.make ~name:"stats variance matches the two-pass reference"
    ~count:300
    QCheck.(list_of_size Gen.(2 -- 100) (float_bound_exclusive 1e6))
    (fun xs ->
      let t = Stats.create () in
      List.iter (Stats.add t) xs;
      let n = float_of_int (List.length xs) in
      let m = List.fold_left ( +. ) 0. xs /. n in
      let ref_var =
        List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs
        /. (n -. 1.)
      in
      close ~scale:ref_var (Stats.variance t) ref_var)

let qcheck_stats_percentile_matches_reference =
  QCheck.Test.make ~name:"stats percentile is nearest-rank of the sorted array"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 80) (float_bound_exclusive 1e9))
        (float_range 0. 100.))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      let rank = if rank < 1 then 1 else if rank > n then n else rank in
      Stats.percentile a p = sorted.(rank - 1))

let qcheck_stats_percentile_bounds =
  QCheck.Test.make ~name:"stats p0/p100 are min/max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 80) (float_bound_exclusive 1e9))
    (fun xs ->
      let a = Array.of_list xs in
      let t = Stats.create () in
      List.iter (Stats.add t) xs;
      Stats.percentile a 0. = Stats.min_value t
      && Stats.percentile a 100. = Stats.max_value t)

let suites =
  [
    ( "props.waitq",
      List.map QCheck_alcotest.to_alcotest
        [ qcheck_waitq_fifo; qcheck_waitq_remove_preserves_fifo ]
      @ [
          Alcotest.test_case "remove unknown waker" `Quick
            test_waitq_remove_unknown_waker;
        ] );
    ( "props.rng",
      List.map QCheck_alcotest.to_alcotest
        [
          qcheck_split_deterministic;
          qcheck_split_diverges;
          qcheck_split_advances_parent_by_one;
          qcheck_split_position_matters;
        ] );
    ( "props.histogram",
      List.map QCheck_alcotest.to_alcotest
        [
          qcheck_hist_relative_error_bound;
          qcheck_hist_power_of_two_resolution;
          qcheck_hist_percentile_monotone_in_samples;
        ]
      @ [ Alcotest.test_case "bucket clamps" `Quick test_hist_clamps ] );
    ( "props.stats",
      List.map QCheck_alcotest.to_alcotest
        [
          qcheck_stats_mean_matches_naive_sum;
          qcheck_stats_variance_matches_two_pass;
          qcheck_stats_percentile_matches_reference;
          qcheck_stats_percentile_bounds;
        ] );
  ]
