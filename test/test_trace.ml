(* Determinism and tracing tests: same-seed runs must produce
   byte-identical replay digests across sim, kernel and hw layers;
   tracing must be purely observational (zero simulated-time drift); and
   a golden fixed-seed digest locks the cost attribution of the
   microbench path against accidental changes. *)

module Engine = Dipc_sim.Engine
module Breakdown = Dipc_sim.Breakdown
module Trace = Dipc_sim.Trace
module M = Dipc_workloads.Microbench
module O = Dipc_workloads.Oltp
module Apl = Dipc_hw.Apl
module Page_table = Dipc_hw.Page_table
module Memory = Dipc_hw.Memory
module Machine = Dipc_hw.Machine
module Isa = Dipc_hw.Isa
module Fault = Dipc_hw.Fault

let check_float = Alcotest.(check (float 1e-9))

let check_breakdowns_equal msg a b =
  List.iter
    (fun c ->
      check_float
        (Printf.sprintf "%s: %s" msg (Breakdown.category_name c))
        (Breakdown.get a c) (Breakdown.get b c))
    Breakdown.all_categories

(* --- trace core: ring buffer, digest, export --- *)

let test_ring_buffer_accounting () =
  let tr = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.emit tr ~ts:(float_of_int i) ~tid:i Trace.Sched
  done;
  Alcotest.(check int) "lifetime total" 20 (Trace.total tr);
  Alcotest.(check int) "ring keeps capacity" 8 (List.length (Trace.events tr));
  Alcotest.(check int) "dropped = total - retained" 12 (Trace.dropped tr);
  (* Oldest-first: the ring holds the last 8 emits, 13..20. *)
  let tids = List.map (fun e -> e.Trace.e_tid) (Trace.events tr) in
  Alcotest.(check (list int)) "oldest first" [ 13; 14; 15; 16; 17; 18; 19; 20 ] tids

let test_digest_covers_overwritten_events () =
  let small = Trace.create ~capacity:2 () in
  let big = Trace.create ~capacity:1024 () in
  for i = 1 to 50 do
    Trace.emit small ~ts:(float_of_int i) Trace.Sched;
    Trace.emit big ~ts:(float_of_int i) Trace.Sched
  done;
  Alcotest.(check string) "digest independent of ring capacity"
    (Trace.digest_hex big) (Trace.digest_hex small)

let test_digest_field_sensitivity () =
  let base () =
    let tr = Trace.create () in
    Trace.emit tr ~ts:1. ~cpu:0 ~tid:1 ~tag:2 ~cat:Breakdown.Kernel ~dur:5. ~arg:3
      Trace.Charge;
    tr
  in
  let a = base () and b = base () in
  Alcotest.(check string) "identical emits, identical digests"
    (Trace.digest_hex a) (Trace.digest_hex b);
  let c = Trace.create () in
  Trace.emit c ~ts:1. ~cpu:0 ~tid:1 ~tag:2 ~cat:Breakdown.Kernel ~dur:5. ~arg:4
    Trace.Charge;
  Alcotest.(check bool) "one field flipped, digest differs" false
    (Trace.digest_hex a = Trace.digest_hex c)

let test_null_sink_is_inert () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Trace.emit Trace.null ~ts:1. Trace.Spawn;
  Alcotest.(check int) "no events recorded" 0 (Trace.total Trace.null);
  Alcotest.(check int) "no events listed" 0 (List.length (Trace.events Trace.null))

let test_chrome_export_shape () =
  let tr = Trace.create () in
  Trace.emit tr ~ts:10. ~cpu:0 ~tid:1 ~cat:Breakdown.User_code ~dur:4. Trace.Charge;
  Trace.emit tr ~ts:14. ~cpu:1 ~tid:2 Trace.Ctxsw;
  let json = Trace.to_chrome_string tr in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "object wrapper" true
    (String.length json > 2 && json.[0] = '{');
  Alcotest.(check bool) "traceEvents key" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "complete slice for charges" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "instant for ctxsw" true (contains "\"ph\":\"i\"");
  Alcotest.(check bool) "category name as slice name" true (contains "\"user code\"");
  (* Timestamps are exported in microseconds. *)
  Alcotest.(check bool) "us timestamps" true (contains "\"ts\":0.010000")

(* --- kernel/sim layers: microbench determinism --- *)

let sem_run () =
  let tr = Trace.create () in
  let r = M.run ~warmup:5 ~iters:20 ~trace:tr ~same_cpu:true M.Sem in
  (tr, r)

let test_microbench_same_seed_same_digest () =
  let tr1, r1 = sem_run () in
  let tr2, r2 = sem_run () in
  Alcotest.(check bool) "events were traced" true (Trace.total tr1 > 100);
  Alcotest.(check string) "identical replay digests" (Trace.digest_hex tr1)
    (Trace.digest_hex tr2);
  check_float "identical means" r1.M.mean_ns r2.M.mean_ns;
  check_breakdowns_equal "identical breakdowns" r1.M.total_breakdown
    r2.M.total_breakdown

let test_microbench_config_changes_digest () =
  let tr1, _ = sem_run () in
  let tr2 = Trace.create () in
  ignore (M.run ~warmup:5 ~iters:20 ~trace:tr2 ~same_cpu:false M.Sem);
  Alcotest.(check bool) "different schedule, different digest" false
    (Trace.digest_hex tr1 = Trace.digest_hex tr2)

let test_tracing_zero_drift () =
  (* Tracing must not perturb simulated time: traced and untraced runs
     produce bit-identical results. *)
  let _, traced = sem_run () in
  let plain = M.run ~warmup:5 ~iters:20 ~same_cpu:true M.Sem in
  check_float "mean unchanged by tracing" plain.M.mean_ns traced.M.mean_ns;
  check_breakdowns_equal "breakdown unchanged by tracing" plain.M.total_breakdown
    traced.M.total_breakdown

(* --- OLTP: seeded end-to-end determinism --- *)

let oltp_params =
  {
    (O.default_params ~db_mode:O.On_disk ~threads:4) with
    O.warmup = 50_000_000.;
    duration = 100_000_000.;
  }

let oltp_run ~seed =
  let tr = Trace.create () in
  let r =
    O.run
      ~params_override:(Some oltp_params)
      ~seed ~trace:tr ~config:O.Linux ~db_mode:O.On_disk ~threads:4 ()
  in
  (tr, r)

let test_oltp_same_seed_same_digest () =
  let tr1, r1 = oltp_run ~seed:7 in
  let tr2, r2 = oltp_run ~seed:7 in
  Alcotest.(check bool) "events were traced" true (Trace.total tr1 > 1000);
  Alcotest.(check string) "identical replay digests" (Trace.digest_hex tr1)
    (Trace.digest_hex tr2);
  Alcotest.(check int) "identical op counts" r1.O.r_ops r2.O.r_ops;
  check_float "identical throughput" r1.O.r_throughput_opm r2.O.r_throughput_opm

let test_oltp_different_seed_different_digest () =
  let tr1, _ = oltp_run ~seed:7 in
  let tr2, _ = oltp_run ~seed:8 in
  Alcotest.(check bool) "seeds diverge the event stream" false
    (Trace.digest_hex tr1 = Trace.digest_hex tr2)

let test_oltp_default_seed_is_legacy () =
  (* The seed parameter defaults to the calibrated legacy streams, so
     published EXPERIMENTS.md numbers stay reproducible. *)
  let r1 =
    O.run
      ~params_override:(Some oltp_params)
      ~config:O.Linux ~db_mode:O.On_disk ~threads:4 ()
  in
  let r2 =
    O.run
      ~params_override:(Some oltp_params)
      ~seed:41 ~config:O.Linux ~db_mode:O.On_disk ~threads:4 ()
  in
  Alcotest.(check int) "default = seed 41" r1.O.r_ops r2.O.r_ops;
  check_float "same throughput" r1.O.r_throughput_opm r2.O.r_throughput_opm

(* --- hw layer: domain crossings and faults in the trace --- *)

let build_two_domain_machine () =
  let m = Machine.create () in
  let tag_a = Apl.fresh_tag m.Machine.apl and tag_b = Apl.fresh_tag m.Machine.apl in
  let code_a = 0x100000 and code_b = 0x200000 in
  Page_table.map m.Machine.page_table ~addr:code_a ~count:1 ~tag:tag_a
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:code_b ~count:1 ~tag:tag_b
    ~writable:false ~executable:true ();
  Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Dipc_hw.Perm.Read;
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_a
       [ Isa.Const (0, 7); Isa.Jmp code_b ]);
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_b [ Isa.Addi (0, 0, 1); Isa.Halt ]);
  (m, code_a, tag_b)

let machine_traced_run () =
  let m, code_a, tag_b = build_two_domain_machine () in
  let tr = Trace.create () in
  Machine.set_trace m tr;
  let ctx = Machine.new_ctx m ~pc:code_a ~sp_value:0 in
  Machine.run m ctx;
  (tr, ctx, tag_b)

let test_machine_domain_cross_traced () =
  let tr, ctx, tag_b = machine_traced_run () in
  Alcotest.(check int) "program ran" 8 ctx.Machine.regs.(0);
  let crossings =
    List.filter (fun e -> e.Trace.e_kind = Trace.Domain_cross) (Trace.events tr)
  in
  Alcotest.(check int) "one domain crossing" 1 (List.length crossings);
  let ev = List.hd crossings in
  Alcotest.(check int) "crossed into B" tag_b ev.Trace.e_tag;
  (* Every instruction left a Charge event (crossings may add APL-cache
     refill charges on top), and the charges account for every simulated
     nanosecond the context accumulated. *)
  let charges =
    List.filter (fun e -> e.Trace.e_kind = Trace.Charge) (Trace.events tr)
  in
  Alcotest.(check bool) "at least one charge per instruction" true
    (List.length charges >= ctx.Machine.instret);
  let charged = List.fold_left (fun a e -> a +. e.Trace.e_dur) 0. charges in
  check_float "charges add up to the context's cost" ctx.Machine.cost charged

let test_machine_digest_reproducible () =
  let tr1, _, _ = machine_traced_run () in
  let tr2, _, _ = machine_traced_run () in
  Alcotest.(check string) "identical machine digests" (Trace.digest_hex tr1)
    (Trace.digest_hex tr2)

let test_machine_fault_traced () =
  let m = Machine.create () in
  let tag_a = Apl.fresh_tag m.Machine.apl in
  let code_a = 0x100000 in
  Page_table.map m.Machine.page_table ~addr:code_a ~count:1 ~tag:tag_a
    ~writable:false ~executable:true ();
  ignore
    (Memory.place_code m.Machine.mem ~addr:code_a
       [ Isa.Const (1, 0xdead000); Isa.Load (0, 1, 0); Isa.Halt ]);
  let tr = Trace.create () in
  Machine.set_trace m tr;
  let ctx = Machine.new_ctx m ~pc:code_a ~sp_value:0 in
  (match Machine.run m ctx with
  | () -> Alcotest.fail "expected a fault"
  | exception Fault.Fault _ -> ());
  let faults =
    List.filter (fun e -> e.Trace.e_kind = Trace.Fault) (Trace.events tr)
  in
  Alcotest.(check int) "fault event recorded" 1 (List.length faults)

(* --- golden trace: locks cost attribution of the microbench path --- *)

(* Fixed configuration: Sem, same CPU, warmup 5, 20 measured iterations.
   If this test fails, a code change altered the simulated event timeline
   or cost attribution.  If the change is intentional, rerun
   `bench/main.exe --trace` and update the constants together with
   EXPERIMENTS.md. *)
let golden_digest = "60d65ec18e0e97d7"

let golden_events = 1511

let golden_mean_ns = 1366.5731984237136

let golden_breakdown =
  [
    (Breakdown.User_code, 31.659999999999968);
    (Breakdown.Syscall_entry, 110.60000000000001);
    (Breakdown.Dispatch, 47.400000000000006);
    (Breakdown.Kernel, 596.9131984237132);
    (Breakdown.Schedule, 400.);
    (Breakdown.Page_table, 180.);
    (Breakdown.Idle, 0.);
    (Breakdown.Proxy, 0.);
    (Breakdown.Stub, 0.);
  ]

let test_golden_microbench_trace () =
  let tr, r = sem_run () in
  Alcotest.(check string) "golden replay digest" golden_digest (Trace.digest_hex tr);
  Alcotest.(check int) "golden event count" golden_events (Trace.total tr);
  check_float "golden mean" golden_mean_ns r.M.mean_ns;
  List.iter
    (fun (c, expected) ->
      check_float
        (Printf.sprintf "golden %s" (Breakdown.category_name c))
        expected
        (Breakdown.get r.M.total_breakdown c))
    golden_breakdown

let suites =
  [
    ( "trace.core",
      [
        Alcotest.test_case "ring buffer accounting" `Quick
          test_ring_buffer_accounting;
        Alcotest.test_case "digest covers overwritten" `Quick
          test_digest_covers_overwritten_events;
        Alcotest.test_case "digest field sensitivity" `Quick
          test_digest_field_sensitivity;
        Alcotest.test_case "null sink inert" `Quick test_null_sink_is_inert;
        Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
      ] );
    ( "trace.determinism",
      [
        Alcotest.test_case "microbench same seed, same digest" `Quick
          test_microbench_same_seed_same_digest;
        Alcotest.test_case "microbench config changes digest" `Quick
          test_microbench_config_changes_digest;
        Alcotest.test_case "tracing adds zero drift" `Quick test_tracing_zero_drift;
        Alcotest.test_case "oltp same seed, same digest" `Slow
          test_oltp_same_seed_same_digest;
        Alcotest.test_case "oltp different seed, different digest" `Slow
          test_oltp_different_seed_different_digest;
        Alcotest.test_case "oltp default seed is legacy" `Slow
          test_oltp_default_seed_is_legacy;
      ] );
    ( "trace.hw",
      [
        Alcotest.test_case "domain crossing traced" `Quick
          test_machine_domain_cross_traced;
        Alcotest.test_case "machine digest reproducible" `Quick
          test_machine_digest_reproducible;
        Alcotest.test_case "fault traced" `Quick test_machine_fault_traced;
      ] );
    ( "trace.golden",
      [ Alcotest.test_case "golden microbench trace" `Quick test_golden_microbench_trace ] );
  ]
