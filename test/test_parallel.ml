(* The multicore runner (lib/sim/parallel.ml) and its determinism
   contract: per-run isolation + order-independent merge means the
   replay digests of a sharded run are byte-identical to the serial
   ones.  The proofs here are differential — the same work submitted at
   different job counts (and in shuffled order) must produce the same
   values in the same places. *)

module Parallel = Dipc_sim.Parallel
module Suite = Dipc_bench_suite.Suite
module Golden = Dipc_bench_suite.Golden
module Trace = Dipc_sim.Trace
module Inject = Dipc_sim.Inject
module Checker = Dipc_sim.Checker
module M = Dipc_workloads.Microbench

let baseline_path = "../bench/BENCH_baseline.json"

(* --- runner mechanics --- *)

let test_merge_preserves_submission_order () =
  (* Tasks that finish in reverse submission order (the early tasks do
     the most work) still merge in submission order. *)
  let n = 64 in
  let tasks =
    Array.init n (fun i ->
        ( Printf.sprintf "t%d" i,
          fun () ->
            let spin = ref 0 in
            for _ = 1 to (n - i) * 10_000 do
              incr spin
            done;
            i ))
  in
  let out = Parallel.run ~jobs:4 tasks in
  Alcotest.(check int) "one outcome per task" n (Array.length out);
  Array.iteri
    (fun i o ->
      Alcotest.(check int) (Printf.sprintf "slot %d holds task %d" i i) i
        o.Parallel.o_value;
      Alcotest.(check string) "id preserved" (Printf.sprintf "t%d" i)
        o.Parallel.o_id)
    out

let test_jobs_clamped () =
  (* More jobs than tasks, zero/negative jobs: all clamp, none crash. *)
  let tasks = Array.init 3 (fun i -> (string_of_int i, fun () -> i * i)) in
  List.iter
    (fun jobs ->
      let out = Parallel.run ~jobs tasks in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        [ 0; 1; 4 ]
        (Array.to_list (Array.map (fun o -> o.Parallel.o_value) out)))
    [ -1; 0; 1; 3; 16 ]

let test_exception_propagates_lowest_index () =
  (* Two failing tasks: the re-raised exception is the lowest-index one,
     whatever domain hit it first. *)
  let tasks =
    [|
      ("ok", fun () -> 1);
      ("boom2", fun () -> failwith "boom2");
      ("ok2", fun () -> 2);
      ("boom5", fun () -> failwith "boom5");
    |]
  in
  List.iter
    (fun jobs ->
      match Parallel.run ~jobs tasks with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "lowest-index failure at jobs=%d" jobs)
            "boom2" msg)
    [ 1; 2; 4 ]

let test_per_run_stats_populated () =
  let out = Parallel.run ~jobs:2 [| ("alloc", fun () -> List.init 10_000 Fun.id) |] in
  let o = out.(0) in
  Alcotest.(check bool) "wall time non-negative" true (o.Parallel.o_wall_s >= 0.);
  Alcotest.(check bool) "allocation observed" true (o.Parallel.o_minor_words > 0.);
  Alcotest.(check bool) "worker id in range" true (o.Parallel.o_worker >= 0)

(* --- differential digest proofs --- *)

(* The serial reference is the committed baseline (test_golden pins the
   serial suite against it); here the same suite runs sharded, at two
   job counts, and must land on the same 13 digests. *)
let test_suite_digests_jobs_invariant () =
  let pins = Golden.parse_file baseline_path in
  List.iter
    (fun jobs ->
      let results = Suite.bench_suite ~jobs () in
      List.iter2
        (fun (name, digest) r ->
          Alcotest.(check string)
            (Printf.sprintf "%s at jobs=%d" name jobs)
            digest r.Suite.b_digest)
        pins results)
    [ 2; 4 ]

(* Shuffled submission: the work-queue hands out tasks in submission
   order, but nothing in the contract depends on what that order is —
   permute the tasks, run sharded, un-permute, same digests. *)
let test_suite_digests_shuffle_invariant () =
  let pins = Array.of_list (Golden.parse_file baseline_path) in
  let tasks = Suite.bench_tasks () in
  let n = Array.length tasks in
  (* Fixed permutation (seeded LCG Fisher-Yates: no global RNG). *)
  let perm = Array.init n Fun.id in
  let state = ref 0x9e3779b9 in
  for i = n - 1 downto 1 do
    state := (!state * 1103515245) + 12345;
    let j = abs !state mod (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let shuffled = Array.map (fun i -> tasks.(i)) perm in
  let out = Parallel.run ~jobs:3 shuffled in
  Array.iteri
    (fun slot o ->
      let name, digest = pins.(perm.(slot)) in
      let r = o.Parallel.o_value in
      Alcotest.(check string) ("shuffled order: " ^ name) name r.Suite.b_name;
      Alcotest.(check string) ("shuffled digest: " ^ name) digest
        r.Suite.b_digest)
    out

(* Fault-injection matrix cross-section: full cell equality (digests,
   run/fault counts, rendered lines) between serial and sharded runs.
   Stride 7 keeps 12 of the 83 cells, spanning both schedules, all
   five primitives and both placements. *)
let test_matrix_cells_jobs_invariant () =
  let serial = Suite.matrix_results ~jobs:1 ~sample:7 () in
  let sharded = Suite.matrix_results ~jobs:4 ~sample:7 () in
  Alcotest.(check int) "same cell count" (List.length serial)
    (List.length sharded);
  List.iter2
    (fun (a : Suite.cell_result) (b : Suite.cell_result) ->
      Alcotest.(check string) ("cell name: " ^ a.Suite.cr_name) a.Suite.cr_name
        b.Suite.cr_name;
      Alcotest.(check string) ("cell digest: " ^ a.Suite.cr_name)
        a.Suite.cr_digest b.Suite.cr_digest;
      Alcotest.(check int) ("cell runs: " ^ a.Suite.cr_name) a.Suite.cr_runs
        b.Suite.cr_runs;
      Alcotest.(check int) ("cell faults: " ^ a.Suite.cr_name)
        a.Suite.cr_faults b.Suite.cr_faults;
      Alcotest.(check string) ("cell line: " ^ a.Suite.cr_name) a.Suite.cr_line
        b.Suite.cr_line)
    serial sharded

(* --- qcheck domain-safety stress --- *)

(* Random workloads sharded at a random job count, run twice: the digest
   vector must be stable.  This is the property that caught the global
   proxy-template cache and the [lazy] cost memo during the audit: any
   cross-run shared mutable state shifts a digest under concurrency. *)
let qcheck_stress =
  let open QCheck in
  let prim_gen =
    Gen.oneofl [ M.Sem; M.Pipe; M.L4; M.Local_rpc; M.User_rpc_prim ]
  in
  let cell_gen =
    Gen.map3
      (fun prim seed same_cpu -> (prim, seed, same_cpu))
      prim_gen (Gen.int_range 0 1000) Gen.bool
  in
  let arb =
    make
      ~print:(fun (cells, jobs) ->
        Printf.sprintf "jobs=%d cells=[%s]" jobs
          (String.concat "; "
             (List.map
                (fun (p, s, c) ->
                  Printf.sprintf "%s seed=%d same_cpu=%b" (M.primitive_name p)
                    s c)
                cells)))
      Gen.(pair (list_size (int_range 2 6) cell_gen) (int_range 1 4))
  in
  QCheck.Test.make ~count:8 ~name:"sharded digests stable across reruns" arb
    (fun (cells, jobs) ->
      let tasks =
        Array.of_list
          (List.map
             (fun (prim, seed, same_cpu) ->
               ( Printf.sprintf "%s/%d" (M.primitive_name prim) seed,
                 fun () ->
                   let tr = Trace.create () in
                   let chk = Checker.create () in
                   Checker.attach chk tr;
                   let inj = Inject.create ~seed () in
                   let r =
                     M.run ~warmup:2 ~iters:5 ~trace:tr ~inject:inj ~same_cpu
                       prim
                   in
                   Checker.finish
                     ~quiescent:(prim <> M.L4)
                     ~expect:r.M.lifetime chk;
                   Checker.detach tr;
                   Trace.digest_hex tr ))
             cells)
      in
      let digests () =
        Array.to_list
          (Array.map (fun o -> o.Parallel.o_value) (Parallel.run ~jobs tasks))
      in
      digests () = digests ())

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "merge preserves submission order" `Quick
          test_merge_preserves_submission_order;
        Alcotest.test_case "jobs clamped to sane range" `Quick test_jobs_clamped;
        Alcotest.test_case "lowest-index exception wins" `Quick
          test_exception_propagates_lowest_index;
        Alcotest.test_case "per-run stats populated" `Quick
          test_per_run_stats_populated;
        Alcotest.test_case "suite digests invariant under --jobs" `Slow
          test_suite_digests_jobs_invariant;
        Alcotest.test_case "suite digests invariant under shuffle" `Slow
          test_suite_digests_shuffle_invariant;
        Alcotest.test_case "matrix cells identical serial vs sharded" `Slow
          test_matrix_cells_jobs_invariant;
        QCheck_alcotest.to_alcotest qcheck_stress;
      ] );
  ]
