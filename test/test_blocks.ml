(* Translated-block cache and superblock compiler vs. the reference
   stepper.

   [Machine.run] dispatches straight-line code through decoded basic
   blocks (PR 5) and, by default, through chained superblocks with
   speculative continuations; these tests pin the contract that both
   fast paths are *observationally identical* to stepping: same
   registers, memory, instret, cost, Breakdown totals (float-sum order
   included), same faults at the same pcs, same Out_of_fuel truncation
   points, and same replay digests — plus directed tests that every
   generation guard (code rewrite, page remap, APL revoke, APL-cache
   flush) invalidates stale translations, and that every superblock
   side-exit class (speculation miss, in-place retag, fuel exhaustion
   at a junction) falls back to the interpreter without divergence.

   PR 10 adds the dynamic-transfer predictors (return-address stack on
   Ret, monomorphic inline caches on Jmpr/Callr): a fourth
   differential mode runs superblocks with prediction disabled, the
   random programs grow recursive call towers, mid-run return-target
   rewrites and polymorphic indirect sites, and directed tests pin RAS
   misprediction, RAS over/underflow, IC invalidation on retag, and
   the hits + misses = dispatches counter invariants. *)

module Machine = Dipc_hw.Machine
module Memory = Dipc_hw.Memory
module Page_table = Dipc_hw.Page_table
module Apl = Dipc_hw.Apl
module Apl_cache = Dipc_hw.Apl_cache
module Isa = Dipc_hw.Isa
module Layout = Dipc_hw.Layout
module Perm = Dipc_hw.Perm
module Fault = Dipc_hw.Fault
module Breakdown = Dipc_sim.Breakdown
module Trace = Dipc_sim.Trace

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* The four dispatch modes under differential test.  Superblocks ride
   on top of the basic-block cache, and the dynamic-transfer predictors
   (RAS + inline caches) ride on top of superblocks, so the lattice is:
   reference stepper < PR 5 block cache < superblock compiler with
   prediction off (--no-ras) < full superblock compiler. *)
type mode = Reference | Blocks | Noras | Superblocks

let all_modes = [ Reference; Blocks; Noras; Superblocks ]

let mode_name = function
  | Reference -> "reference"
  | Blocks -> "blocks"
  | Noras -> "superblocks-noras"
  | Superblocks -> "superblocks"

(* --- a small fixed universe for random programs --- *)

let code0 = 0x100000 (* 2 executable pages, tag a *)

let callee = 0x110000 (* 1 executable page, tag b: Addi; Ret *)

let island = 0x120000 (* 1 executable page, tag d: no grants touch it *)

let data = 0x200000 (* 1 rw page, tag a *)

let stack = 0x300000 (* 1 rw page, tag a *)

(* Fixed routines on the second code page (tag a), clear of the
   syscall-0 rewrite window at +2048: a bounded recursive call tower
   (counts r9 up to r8, one Ret per level — deep RAS exercise), a
   return-target twister (overwrites its own return slot with r6
   before Ret — a guaranteed RAS mispredict), and a second leaf for
   polymorphic indirect-call sites. *)
let tower = code0 + Layout.page_size + 256

let twist = code0 + Layout.page_size + 512

let leaf = code0 + Layout.page_size + 640

type universe = {
  m : Machine.t;
  tag_a : int;
  tag_b : int;
  tag_b2 : int; (* spare callee identity for in-place retag tests *)
  tag_c : int;
  tag_d : int; (* the island's unreachable tag *)
}

(* Build the universe and load [prog] at [code0].  [mode] selects the
   dispatch mode under test.  The default syscall handler exercises
   mid-run invalidation from *inside* a run: syscall 0 rewrites code on
   the second code page (bumps the code generation under any warm
   translation) and syscall 1 revokes a->b (bumps the APL generation
   and makes later calls to [callee] fault) — both deterministic, so
   the differential properties cover them like any other instruction. *)
let setup ~mode prog =
  let m = Machine.create () in
  Machine.set_block_cache m (mode <> Reference);
  Machine.set_superblocks m (mode = Superblocks || mode = Noras);
  Machine.set_ras m (mode = Superblocks);
  let tag_a = Apl.fresh_tag m.Machine.apl in
  let tag_b = Apl.fresh_tag m.Machine.apl in
  let tag_b2 = Apl.fresh_tag m.Machine.apl in
  let tag_c = Apl.fresh_tag m.Machine.apl in
  let tag_d = Apl.fresh_tag m.Machine.apl in
  Page_table.map m.Machine.page_table ~addr:code0 ~count:2 ~tag:tag_a
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:callee ~count:1 ~tag:tag_b
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:island ~count:1 ~tag:tag_d
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:data ~count:1 ~tag:tag_c ();
  Page_table.map m.Machine.page_table ~addr:stack ~count:1 ~tag:tag_a ();
  (* a may call b's (aligned) entry points; b may return anywhere into a
     and read a's stack.  The spare identity b2 gets the same grants so
     an in-place retag of the callee page stays executable. *)
  Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Perm.Call;
  Apl.grant m.Machine.apl ~src:tag_b ~dst:tag_a Perm.Read;
  Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b2 Perm.Call;
  Apl.grant m.Machine.apl ~src:tag_b2 ~dst:tag_a Perm.Read;
  (* the data page is its own domain, reachable from a but not from b *)
  Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_c Perm.Owner;
  Machine.set_syscall_handler m (fun _ctx n ->
      if n mod 2 = 0 then
        ignore
          (Memory.place_code m.Machine.mem
             ~addr:(code0 + Layout.page_size + 2048)
             [ Isa.Nop; Isa.Halt ])
      else Apl.revoke m.Machine.apl ~src:tag_a ~dst:tag_b);
  ignore (Memory.place_code m.Machine.mem ~addr:code0 prog);
  ignore
    (Memory.place_code m.Machine.mem ~addr:callee [ Isa.Addi (2, 2, 7); Isa.Ret ]);
  ignore (Memory.place_code m.Machine.mem ~addr:island [ Isa.Halt ]);
  ignore
    (Memory.place_code m.Machine.mem ~addr:tower
       [
         Isa.Bge (9, 8, tower + (3 * Isa.instr_bytes));
         Isa.Addi (9, 9, 1);
         Isa.Call tower;
         Isa.Ret;
       ]);
  ignore
    (Memory.place_code m.Machine.mem ~addr:twist
       [ Isa.Store (Isa.sp, 0, 6); Isa.Ret ]);
  ignore
    (Memory.place_code m.Machine.mem ~addr:leaf [ Isa.Addi (3, 3, 50); Isa.Ret ]);
  { m; tag_a; tag_b; tag_b2; tag_c; tag_d }

let fresh_ctx u =
  Machine.new_ctx u.m ~pc:code0 ~sp_value:(stack + Layout.page_size)

(* --- random programs --- *)

(* Each abstract op is one instruction; branch targets only point
   forward (to a later slot or the trailing Halt), so every program
   terminates.  Faulting programs are kept: faults must be identical on
   all paths.  Registers 6..10 are preset by the preamble (Halt
   address, callee entry, tower bound, tower counter, polymorphic
   selector) so the indirect and recursive ops always target valid
   code.  The superblock compiler chains Jmpr/Callr through inline
   caches and Ret through the return-address stack, so these ops now
   stress the predictors as well as block boundaries: the tower runs a
   bounded recursion (deep push/pop sequences), [twist] rewrites its
   own return target mid-call (a forced mispredict), and the selector
   flips Callr 10 between two leaves in different domains. *)
let instr_of ~i ~n (sel, a, b, c) =
  let a = abs a and b = abs b and c = abs c in
  let r k = 2 + (k mod 4) in
  let fwd k = code0 + (Isa.instr_bytes * (i + 1 + (k mod (n - i)))) in
  match sel mod 24 with
  | 0 -> Isa.Const (r a, b)
  | 1 -> Isa.Mov (r a, r b)
  | 2 -> Isa.Add (r a, r b, r c)
  | 3 -> Isa.Addi (r a, r b, c mod 256)
  | 4 -> Isa.Sub (r a, r b, r c)
  | 5 -> Isa.Mul (r a, r b, r c)
  | 6 -> Isa.Shli (r a, r b, b mod 8)
  | 7 | 8 -> Isa.Load (r a, 1, 8 * (b mod 64))
  | 9 | 10 -> Isa.Store (1, 8 * (b mod 64), r a)
  | 11 -> Isa.Beq (r a, r b, fwd c)
  | 12 -> Isa.Blt (r a, r b, fwd c)
  | 13 -> Isa.Beqz (r a, fwd c)
  | 14 -> Isa.Jmp (fwd c)
  | 15 -> Isa.Call callee
  | 16 -> Isa.Jmpr 6 (* indirect jump to the trailing Halt *)
  | 17 -> Isa.Callr 7 (* indirect call to the callee entry *)
  | 18 -> Isa.Syscall (b mod 2) (* mid-run rewrite / APL revoke *)
  | 19 -> Isa.Call tower (* recursive tower: depth = r8 - r9 *)
  | 20 -> Isa.Const (9, b mod 8) (* rewind the tower counter *)
  | 21 -> Isa.Call twist (* returns to r6 (Halt), not the call site *)
  | 22 -> Isa.Callr 10 (* polymorphic indirect call (see 23) *)
  | 23 -> Isa.Const (10, if b mod 2 = 0 then callee else leaf)
  | _ -> Isa.Nop

let prog_of_ops ops =
  let n = List.length ops in
  let slots = n + 6 (* preamble *) + 1 (* Halt *) in
  let halt_addr = code0 + (Isa.instr_bytes * (slots - 1)) in
  (* reg 1 = data-page base for every Load/Store; reg 6 = Halt address
     for Jmpr and the twist return target; reg 7 = callee entry for
     Callr; regs 8/9 = tower bound and counter; reg 10 = polymorphic
     Callr selector *)
  (Isa.Const (1, data) :: Isa.Const (6, halt_addr) :: Isa.Const (7, callee)
  :: Isa.Const (8, 6) :: Isa.Const (9, 0) :: Isa.Const (10, leaf)
  :: List.mapi (fun i op -> instr_of ~i:(i + 6) ~n:(slots - 1) op) ops)
  @ [ Isa.Halt ]

let ops_gen =
  QCheck.list_of_size QCheck.Gen.(5 -- 60)
    QCheck.(quad small_nat small_int small_int small_int)

(* --- observable state --- *)

type outcome = Done | Fault of Fault.t | Fuel

let run_outcome ?fuel u ctx =
  match Machine.run ?fuel u.m ctx with
  | () -> Done
  | exception Fault.Fault f -> Fault f
  | exception Machine.Out_of_fuel -> Fuel

(* Everything the fast paths could plausibly get wrong, in one
   comparable value.  Floats are compared exactly: bit-identical sums
   are part of the contract. *)
let observe u (ctx : Machine.ctx) outcome =
  (* data writes land in the low words of the data page; stack pushes in
     the top words of the stack page *)
  let words k = Array.init 64 (fun i -> Machine.peek_word u.m ~addr:(k + (8 * i))) in
  let stack_top =
    Array.init 64 (fun i ->
        Machine.peek_word u.m ~addr:(stack + Layout.page_size - (8 * (i + 1))))
  in
  ( outcome,
    Array.copy ctx.Machine.regs,
    ( ctx.Machine.pc,
      ctx.Machine.cur_tag,
      ctx.Machine.priv,
      ctx.Machine.depth,
      ctx.Machine.halted ),
    (ctx.Machine.instret, ctx.Machine.cost),
    Breakdown.to_list ctx.Machine.breakdown,
    (words data, stack_top) )

let run_one ~mode ?fuel prog =
  let u = setup ~mode prog in
  let ctx = fresh_ctx u in
  let outcome = run_outcome ?fuel u ctx in
  observe u ctx outcome

(* --- the differential properties --- *)

let prop_differential =
  QCheck.Test.make
    ~name:"superblocks == blocks == reference (random programs)" ~count:300
    QCheck.(pair ops_gen (frequency [ (4, always 100_000); (1, int_range 1 40) ]))
    (fun (ops, fuel) ->
      let prog = prog_of_ops ops in
      let reference = run_one ~mode:Reference ~fuel prog in
      run_one ~mode:Blocks ~fuel prog = reference
      && run_one ~mode:Noras ~fuel prog = reference
      && run_one ~mode:Superblocks ~fuel prog = reference)

let prop_differential_traced_digest =
  QCheck.Test.make
    ~name:"tracer forces the reference path: digests and state identical"
    ~count:60 ops_gen
    (fun ops ->
      let prog = prog_of_ops ops in
      let traced mode =
        let u = setup ~mode prog in
        let tr = Trace.create () in
        Machine.set_trace u.m tr;
        let ctx = fresh_ctx u in
        let outcome = run_outcome u ctx in
        (observe u ctx outcome, Trace.digest_hex tr)
      in
      match List.map traced all_modes with
      | [ (s_ref, d_ref); (s_blk, d_blk); (s_nr, d_nr); (s_sb, d_sb) ] ->
          (* traced runs agree with each other and with the untraced
             superblock run *)
          s_ref = s_blk && s_ref = s_nr && s_ref = s_sb && d_ref = d_blk
          && d_ref = d_nr && d_ref = d_sb
          && s_ref = run_one ~mode:Superblocks prog
      | _ -> false)

let prop_self_modifying =
  QCheck.Test.make
    ~name:"place_code between runs invalidates stale blocks" ~count:100
    QCheck.(pair ops_gen ops_gen)
    (fun (ops1, ops2) ->
      let both mode =
        let u = setup ~mode (prog_of_ops ops1) in
        let c1 = fresh_ctx u in
        let o1 = run_outcome u c1 in
        let s1 = observe u c1 o1 in
        (* overwrite the code in place: run 2 must see only the new
           program even where the old one left warm translations *)
        ignore (Memory.place_code u.m.Machine.mem ~addr:code0 (prog_of_ops ops2));
        let c2 = fresh_ctx u in
        let o2 = run_outcome u c2 in
        (s1, observe u c2 o2)
      in
      let reference = both Reference in
      both Blocks = reference && both Noras = reference
      && both Superblocks = reference)

(* --- directed invalidation tests --- *)

(* Run [f] under every mode and check the fast paths against the
   reference result. *)
let check_all name f =
  let reference = f Reference in
  Alcotest.(check bool) (name ^ " (blocks)") true (f Blocks = reference);
  Alcotest.(check bool)
    (name ^ " (superblocks-noras)")
    true
    (f Noras = reference);
  Alcotest.(check bool)
    (name ^ " (superblocks)")
    true
    (f Superblocks = reference)

let test_code_rewrite () =
  let prog v =
    [ Isa.Const (2, v); Isa.Addi (2, 2, 1); Isa.Addi (2, 2, 1); Isa.Halt ]
  in
  let run mode =
    let u = setup ~mode (prog 10) in
    let c1 = fresh_ctx u in
    let (_ : outcome) = run_outcome u c1 in
    ignore (Memory.place_code u.m.Machine.mem ~addr:code0 (prog 100));
    let c2 = fresh_ctx u in
    let (_ : outcome) = run_outcome u c2 in
    (c1.Machine.regs.(2), c2.Machine.regs.(2))
  in
  (* the second run must execute the rewritten constants *)
  List.iter
    (fun mode ->
      Alcotest.(check (pair int int))
        (mode_name mode ^ " sees rewritten code")
        (12, 102) (run mode))
    all_modes

let test_page_remap () =
  let prog = [ Isa.Const (1, data); Isa.Load (2, 1, 0); Isa.Halt ] in
  let run mode =
    let u = setup ~mode prog in
    Memory.store_word u.m.Machine.mem data 77;
    let c1 = fresh_ctx u in
    let o1 = run_outcome u c1 in
    (* remap the code pages under a tag with no rights on the data page:
       the pt generation bump must force retranslation, and the Load now
       faults *)
    Page_table.unmap u.m.Machine.page_table ~addr:code0 ~count:2;
    Page_table.map u.m.Machine.page_table ~addr:code0 ~count:2 ~tag:u.tag_b
      ~writable:false ~executable:true ();
    let c2 = fresh_ctx u in
    let o2 = run_outcome u c2 in
    (o1, c1.Machine.regs.(2), o2)
  in
  let check name (o1, r2, o2) =
    Alcotest.(check bool) (name ^ ": first run completes") true (o1 = Done);
    Alcotest.(check int) (name ^ ": first run loads the word") 77 r2;
    match o2 with
    | Fault { Fault.kind = Fault.No_permission _; _ } -> ()
    | _ -> Alcotest.fail (name ^ ": remapped run must fault on the load")
  in
  check "superblocks" (run Superblocks);
  check_all "remap behaves identically on all paths" run

let test_apl_revoke_midrun () =
  (* the syscall handler revokes a->b mid-run: the Call that worked
     before the syscall must fault after it, identically on all paths *)
  let prog =
    [
      Isa.Const (1, data);
      Isa.Call callee;
      Isa.Syscall 1;
      Isa.Call callee;
      Isa.Halt;
    ]
  in
  let run mode =
    let u = setup ~mode prog in
    Machine.set_syscall_handler u.m (fun _ctx _n ->
        Apl.revoke u.m.Machine.apl ~src:u.tag_a ~dst:u.tag_b);
    let ctx = fresh_ctx u in
    let o = run_outcome u ctx in
    (o, ctx.Machine.regs.(2), ctx.Machine.instret)
  in
  (match run Superblocks with
  | Fault { Fault.kind = Fault.No_permission _; _ }, r2, _ ->
      Alcotest.(check int) "first call executed the callee" 7 r2
  | _ -> Alcotest.fail "revoked call must fault");
  check_all "APL revoke behaves identically on all paths" run

let test_apl_cache_flush_midrun () =
  let prog =
    [
      Isa.Const (2, 5);
      Isa.Syscall 0;
      Isa.Addi (2, 2, 1);
      Isa.Addi (2, 2, 1);
      Isa.Halt;
    ]
  in
  let run mode =
    let u = setup ~mode prog in
    Machine.set_syscall_handler u.m (fun ctx _n ->
        (* deliberate flush: bumps the per-thread cache generation, so a
           warm block translated before the syscall is retranslated *)
        Apl_cache.reset ctx.Machine.apl_cache);
    let ctx = fresh_ctx u in
    let o = run_outcome u ctx in
    (o, ctx.Machine.regs.(2), ctx.Machine.cost)
  in
  (match run Superblocks with
  | Done, 7, _ -> ()
  | _ -> Alcotest.fail "flushed run must still complete with reg2 = 7");
  check_all "APL-cache flush behaves identically on all paths" run

let test_fuel_truncation () =
  (* a tight loop, fuel stops mid-block: the truncation instruction must
     match the reference exactly *)
  let loop = code0 + (3 * Isa.instr_bytes) in
  let prog =
    [
      Isa.Const (1, data);
      Isa.Const (2, 0);
      Isa.Const (3, 1000);
      Isa.Addi (2, 2, 1);
      Isa.Store (1, 0, 2);
      Isa.Load (4, 1, 0);
      Isa.Blt (2, 3, loop);
      Isa.Halt;
    ]
  in
  let run mode fuel =
    let u = setup ~mode prog in
    let ctx = fresh_ctx u in
    let o = run_outcome ~fuel u ctx in
    (o, ctx.Machine.pc, ctx.Machine.instret, ctx.Machine.cost)
  in
  for fuel = 1 to 60 do
    let (o, _, _, _) as reference = run Reference fuel in
    Alcotest.(check bool)
      (Printf.sprintf "fuel=%d truncates identically (blocks)" fuel)
      true
      (run Blocks fuel = reference);
    Alcotest.(check bool)
      (Printf.sprintf "fuel=%d truncates identically (superblocks)" fuel)
      true
      (run Superblocks fuel = reference);
    if fuel < 20 then
      Alcotest.(check bool) (Printf.sprintf "fuel=%d runs out" fuel) true (o = Fuel)
  done

let test_page_boundary () =
  (* straight-line code crossing an intra-domain page boundary: the
     translation stops at the boundary, the next block picks up on the
     far page (the superblock chains across it as a fall-through
     junction), and no domain crossing happens (same tag) *)
  let start = code0 + Layout.page_size - (4 * Isa.instr_bytes) in
  let run mode =
    let u = setup ~mode [ Isa.Halt ] in
    ignore
      (Memory.place_code u.m.Machine.mem ~addr:start
         [
           Isa.Const (2, 1);
           Isa.Addi (2, 2, 10);
           Isa.Addi (2, 2, 100);
           Isa.Addi (2, 2, 1000);
           (* --- page boundary --- *)
           Isa.Addi (2, 2, 10000);
           Isa.Addi (2, 2, 100000);
           Isa.Halt;
         ]);
    let ctx = Machine.new_ctx u.m ~pc:start ~sp_value:(stack + Layout.page_size) in
    let o = run_outcome u ctx in
    (o, ctx.Machine.regs.(2), ctx.Machine.instret)
  in
  Alcotest.(check bool) "crosses the boundary" true
    (run Superblocks = (Done, 111111, 7));
  check_all "boundary crossing identical on all paths" run

(* --- directed superblock side-exit tests --- *)

(* Forward conditional branches are speculated fall-through; taking one
   is a speculation miss, so the superblock must side-exit to the
   dispatcher and resume at the real target with identical state. *)
let test_side_exit_speculation_miss () =
  let skip = code0 + (3 * Isa.instr_bytes) in
  let prog =
    [
      Isa.Const (2, 0);
      Isa.Beqz (2, skip); (* taken: speculated not-taken *)
      Isa.Addi (2, 2, 111); (* speculated but never executed *)
      Isa.Const (3, 9);
      Isa.Halt;
    ]
  in
  check_all "taken forward branch identical on all paths" (fun mode ->
      run_one ~mode prog);
  let u = setup ~mode:Superblocks prog in
  let ctx = fresh_ctx u in
  let before = u.m.Machine.ctr_side_exits in
  let o = run_outcome u ctx in
  Alcotest.(check bool) "run completes past the miss" true
    (o = Done && ctx.Machine.regs.(2) = 0 && ctx.Machine.regs.(3) = 9);
  Alcotest.(check bool) "speculation miss counted as a side exit" true
    (u.m.Machine.ctr_side_exits > before)

(* In-place retag: [Page_table.retag] mutates the page record without
   bumping the page-table generation, so a warm superblock whose chain
   crosses onto the retagged page passes its entry guard but must catch
   the change at the junction's tag re-check and side-exit.  The spare
   identity b2 carries the same grants as b, so execution continues
   (now under b2) with state identical to the reference. *)
let test_side_exit_inplace_retag () =
  let loop = code0 + (3 * Isa.instr_bytes) in
  let prog =
    [
      Isa.Const (2, 0);
      Isa.Const (4, 0);
      Isa.Const (5, 2);
      Isa.Call callee; (* chained junction onto the callee page *)
      Isa.Syscall 3; (* retag callee page b -> b2 (handler below) *)
      Isa.Addi (4, 4, 1);
      Isa.Blt (4, 5, loop);
      Isa.Halt;
    ]
  in
  let run mode =
    let u = setup ~mode prog in
    Machine.set_syscall_handler u.m (fun _ctx _n ->
        (* swap the callee page between the two identities in place:
           no generation moves, only the junction guard can see it *)
        let page =
          match Page_table.find u.m.Machine.page_table callee with
          | Some p -> p
          | None -> assert false
        in
        let from_tag = page.Page_table.tag in
        let to_tag = if from_tag = u.tag_b then u.tag_b2 else u.tag_b in
        Page_table.retag u.m.Machine.page_table ~addr:callee ~count:1
          ~from_tag ~to_tag);
    let ctx = fresh_ctx u in
    let o = run_outcome u ctx in
    (observe u ctx o, u.m.Machine.ctr_side_exits)
  in
  let (s_ref, _) = run Reference in
  let (s_blk, _) = run Blocks in
  let (s_sb, side_exits) = run Superblocks in
  Alcotest.(check bool) "retag identical on blocks path" true (s_blk = s_ref);
  Alcotest.(check bool) "retag identical on superblock path" true (s_sb = s_ref);
  (match s_ref with
  | Done, regs, _, _, _, _ ->
      Alcotest.(check int) "both loop iterations called the callee" 14 regs.(2)
  | _ -> Alcotest.fail "retagged run must complete");
  Alcotest.(check bool) "retag caught at a junction side exit" true
    (side_exits > 0)

(* Fuel exhausted exactly at a junction: the reference loop raises
   Out_of_fuel *before* the next fetch's transfer check, so the
   superblock must stop at the junction without running check_transfer
   — even when that check would fault.  The island page's tag has no
   grants at all: with one more unit of fuel the crossing faults, with
   exact fuel both paths report Out_of_fuel. *)
let test_fuel_at_junction () =
  let prog = [ Isa.Const (2, 1); Isa.Jmp island ] in
  let run mode fuel =
    let u = setup ~mode prog in
    let ctx = fresh_ctx u in
    let o = run_outcome ~fuel u ctx in
    (o, ctx.Machine.pc, ctx.Machine.instret, ctx.Machine.cost)
  in
  (* fuel 2: Const + Jmp consume it all; the crossing check must not run *)
  (match run Superblocks 2 with
  | Fuel, pc, 2, _ -> Alcotest.(check int) "stopped at the island edge" island pc
  | _ -> Alcotest.fail "exact fuel must stop before the transfer check");
  check_all "fuel at the junction identical on all paths" (fun mode -> run mode 2);
  (* fuel 3: the crossing check runs and faults on both paths *)
  (match run Superblocks 3 with
  | Fault { Fault.kind = Fault.No_permission _; _ }, _, _, _ -> ()
  | _ -> Alcotest.fail "one more unit of fuel must reach the faulting check");
  check_all "faulting crossing identical on all paths" (fun mode -> run mode 3)

(* The deterministic counters themselves: a warm re-dispatch hits the
   superblock cache, a run with misses records side exits, and the
   counters live on the machine (not the digest path). *)
let test_counters_sanity () =
  let prog = [ Isa.Const (2, 1); Isa.Addi (2, 2, 1); Isa.Halt ] in
  let u = setup ~mode:Superblocks prog in
  let c1 = fresh_ctx u in
  let (_ : outcome) = run_outcome u c1 in
  let xlate_after_first = u.m.Machine.ctr_sb_translations in
  let hits_after_first = u.m.Machine.ctr_sb_hits in
  Alcotest.(check bool) "first run translates" true (xlate_after_first > 0);
  let c2 = fresh_ctx u in
  let (_ : outcome) = run_outcome u c2 in
  Alcotest.(check int) "warm re-dispatch translates nothing more"
    xlate_after_first u.m.Machine.ctr_sb_translations;
  Alcotest.(check bool) "warm re-dispatch hits the cache" true
    (u.m.Machine.ctr_sb_hits > hits_after_first);
  Alcotest.(check bool) "block entries counted" true
    (u.m.Machine.ctr_block_entries > 0)

(* --- directed dynamic-transfer predictor tests (PR 10) --- *)

(* [twist] overwrites its own return slot with r6 before returning: the
   RAS predicted the call-site continuation, so the chained Ret must
   mispredict, side-exit with exact reference state, and resume at the
   rewritten target. *)
let test_ras_misprediction () =
  let alt = code0 + (3 * Isa.instr_bytes) in
  let prog =
    [
      Isa.Const (6, alt);
      Isa.Call twist; (* returns to alt, not the call site *)
      Isa.Addi (2, 2, 111); (* the predicted continuation: never runs *)
      Isa.Const (3, 9);
      Isa.Halt;
    ]
  in
  check_all "rewritten return target identical on all paths" (fun mode ->
      run_one ~mode prog);
  let u = setup ~mode:Superblocks prog in
  let ctx = fresh_ctx u in
  let o = run_outcome u ctx in
  Alcotest.(check bool) "run lands on the rewritten target" true
    (o = Done && ctx.Machine.regs.(2) = 0 && ctx.Machine.regs.(3) = 9);
  Alcotest.(check bool) "mispredict counted" true
    (u.m.Machine.ctr_ras_misses > 0)

(* A depth-81 tower overflows the 64-entry circular RAS: the oldest
   entries are dropped, so the outermost returns mispredict while the
   innermost 64 still hit — and the run must stay observationally
   identical throughout. *)
let test_ras_overflow () =
  let prog =
    [ Isa.Const (8, 80); Isa.Const (9, 0); Isa.Call tower; Isa.Halt ]
  in
  check_all "deep tower identical on all paths" (fun mode ->
      run_one ~mode prog);
  let u = setup ~mode:Superblocks prog in
  let ctx = fresh_ctx u in
  let o = run_outcome u ctx in
  Alcotest.(check bool) "tower completes" true
    (o = Done && ctx.Machine.regs.(9) = 80);
  Alcotest.(check bool) "dropped entries mispredict" true
    (u.m.Machine.ctr_ras_misses >= 16);
  Alcotest.(check bool) "live entries still hit" true
    (u.m.Machine.ctr_ras_hits >= 48)

(* RAS underflow: enter execution *at* a Ret (a hand-built host frame
   with a poked return slot), so the chained Ret pops an empty RAS and
   must fall back to the dispatcher, not chain anywhere. *)
let test_ras_underflow () =
  let prog = [ Isa.Ret; Isa.Halt ] in
  let run mode =
    let u = setup ~mode prog in
    let sp = stack + Layout.page_size - Layout.word_size in
    Machine.poke_words u.m ~addr:sp [| code0 + Isa.instr_bytes |];
    let ctx = Machine.new_ctx u.m ~pc:code0 ~sp_value:sp in
    Machine.enter_frame ctx;
    let o = run_outcome u ctx in
    ((o, ctx.Machine.instret, ctx.Machine.cost), u.m)
  in
  let obs, m = run Superblocks in
  Alcotest.(check bool) "entry-at-Ret halts" true
    (match obs with Done, 2, _ -> true | _ -> false);
  Alcotest.(check bool) "underflowing Ret mispredicts, never hits" true
    (m.Machine.ctr_ras_misses = 1 && m.Machine.ctr_ras_hits = 0);
  check_all "RAS underflow identical on all paths" (fun mode ->
      fst (run mode))

(* In-place retag under a warm inline cache: the Callr site's cached
   target page flips identity (no generation moves), so the IC's live
   (tag, priv) re-check must reject the cached superblock and fall back
   to dispatch — stale code can never be chained. *)
let test_ic_invalidation_retag () =
  let loop = code0 + (4 * Isa.instr_bytes) in
  let prog =
    [
      Isa.Const (2, 0);
      Isa.Const (4, 0);
      Isa.Const (5, 2);
      Isa.Const (7, callee);
      Isa.Callr 7; (* loop: inline-cached indirect call *)
      Isa.Syscall 3; (* retag callee page b <-> b2 (handler below) *)
      Isa.Addi (4, 4, 1);
      Isa.Blt (4, 5, loop);
      Isa.Halt;
    ]
  in
  let run mode =
    let u = setup ~mode prog in
    Machine.set_syscall_handler u.m (fun _ctx _n ->
        let page =
          match Page_table.find u.m.Machine.page_table callee with
          | Some p -> p
          | None -> assert false
        in
        let from_tag = page.Page_table.tag in
        let to_tag = if from_tag = u.tag_b then u.tag_b2 else u.tag_b in
        Page_table.retag u.m.Machine.page_table ~addr:callee ~count:1 ~from_tag
          ~to_tag);
    let ctx = fresh_ctx u in
    let o = run_outcome u ctx in
    (observe u ctx o, u.m)
  in
  let s_sb, m = run Superblocks in
  (match s_sb with
  | Done, regs, _, _, _, _ ->
      Alcotest.(check int) "both iterations called the callee" 14 regs.(2)
  | _ -> Alcotest.fail "retagged Callr run must complete");
  Alcotest.(check bool) "retag defeats the inline cache" true
    (m.Machine.ctr_ic_misses >= 2);
  check_all "IC retag identical on all paths" (fun mode -> fst (run mode))

(* The counter contract: every chained Ret dispatch is exactly one RAS
   hit or miss, every chained Jmpr/Callr dispatch exactly one IC hit or
   miss — in both prediction modes (with --no-ras everything is a
   miss). *)
let test_counter_invariants () =
  let loop = code0 + (5 * Isa.instr_bytes) in
  let jback = code0 + (10 * Isa.instr_bytes) in
  let prog =
    [
      Isa.Const (2, 0);
      Isa.Const (4, 0);
      Isa.Const (5, 25);
      Isa.Const (7, callee);
      Isa.Const (6, loop);
      Isa.Call callee; (* loop: r2 += 7 *)
      Isa.Callr 7; (* r2 += 7 *)
      Isa.Addi (4, 4, 1);
      Isa.Blt (4, 5, jback);
      Isa.Halt;
      Isa.Jmpr 6; (* jback: indirect backedge *)
    ]
  in
  let counters mode =
    let u = setup ~mode prog in
    let ctx = fresh_ctx u in
    let o = run_outcome u ctx in
    Alcotest.(check bool) (mode_name mode ^ " completes") true
      (o = Done && ctx.Machine.regs.(2) = 25 * 14);
    u.m
  in
  (* 25 iterations x 2 Rets; the Callr runs 25x and the Jmpr backedge
     24x (the last iteration falls through to Halt) *)
  let m = counters Superblocks in
  Alcotest.(check int) "ras hits + misses = chained Ret dispatches" 50
    (m.Machine.ctr_ras_hits + m.Machine.ctr_ras_misses);
  Alcotest.(check int) "ic hits + misses = chained indirect dispatches" 49
    (m.Machine.ctr_ic_hits + m.Machine.ctr_ic_misses);
  Alcotest.(check bool) "predictors mostly hit" true
    (m.Machine.ctr_ras_hits >= 45 && m.Machine.ctr_ic_hits >= 40);
  let m0 = counters Noras in
  Alcotest.(check int) "no-ras: every Ret dispatch is a miss" 50
    m0.Machine.ctr_ras_misses;
  Alcotest.(check int) "no-ras: every indirect dispatch is a miss" 49
    m0.Machine.ctr_ic_misses;
  Alcotest.(check int) "no-ras: no hits" 0
    (m0.Machine.ctr_ras_hits + m0.Machine.ctr_ic_hits)

let test_default_toggle () =
  Machine.set_default_block_cache false;
  let m1 = Machine.create () in
  Machine.set_default_block_cache true;
  Machine.set_default_superblocks false;
  let m2 = Machine.create () in
  Machine.set_default_superblocks true;
  let m3 = Machine.create () in
  Machine.set_default_ras false;
  let m4 = Machine.create () in
  Machine.set_default_ras true;
  Alcotest.(check bool) "default off is sampled" false m1.Machine.block_cache;
  Alcotest.(check bool) "default on is sampled" true m2.Machine.block_cache;
  Alcotest.(check bool) "superblock default off is sampled" false
    m2.Machine.superblocks;
  Alcotest.(check bool) "superblock default on is sampled" true
    m3.Machine.superblocks;
  Alcotest.(check bool) "ras default on is sampled" true m3.Machine.ras;
  Alcotest.(check bool) "ras default off is sampled" false m4.Machine.ras

let suites =
  [
    ( "blocks.differential",
      qsuite [ prop_differential; prop_differential_traced_digest; prop_self_modifying ]
    );
    ( "blocks.invalidation",
      [
        Alcotest.test_case "page boundary" `Quick test_page_boundary;
        Alcotest.test_case "code rewrite" `Quick test_code_rewrite;
        Alcotest.test_case "page remap" `Quick test_page_remap;
        Alcotest.test_case "APL revoke mid-run" `Quick test_apl_revoke_midrun;
        Alcotest.test_case "APL-cache flush mid-run" `Quick
          test_apl_cache_flush_midrun;
        Alcotest.test_case "fuel truncation" `Quick test_fuel_truncation;
        Alcotest.test_case "default toggle" `Quick test_default_toggle;
      ] );
    ( "blocks.side_exits",
      [
        Alcotest.test_case "speculation miss" `Quick
          test_side_exit_speculation_miss;
        Alcotest.test_case "in-place retag" `Quick test_side_exit_inplace_retag;
        Alcotest.test_case "fuel at a junction" `Quick test_fuel_at_junction;
        Alcotest.test_case "counters sanity" `Quick test_counters_sanity;
      ] );
    ( "blocks.predictors",
      [
        Alcotest.test_case "RAS misprediction" `Quick test_ras_misprediction;
        Alcotest.test_case "RAS overflow" `Quick test_ras_overflow;
        Alcotest.test_case "RAS underflow" `Quick test_ras_underflow;
        Alcotest.test_case "IC invalidation on retag" `Quick
          test_ic_invalidation_retag;
        Alcotest.test_case "counter invariants" `Quick test_counter_invariants;
      ] );
  ]
