(* Translated-block cache vs. the reference stepper.

   [Machine.run] dispatches straight-line code through decoded basic
   blocks; these tests pin the contract that the fast path is
   *observationally identical* to stepping: same registers, memory,
   instret, cost, Breakdown totals (float-sum order included), same
   faults at the same pcs, same Out_of_fuel truncation points, and same
   replay digests — plus directed tests that every generation guard
   (code rewrite, page remap, APL revoke, APL-cache flush) actually
   invalidates stale translations. *)

module Machine = Dipc_hw.Machine
module Memory = Dipc_hw.Memory
module Page_table = Dipc_hw.Page_table
module Apl = Dipc_hw.Apl
module Apl_cache = Dipc_hw.Apl_cache
module Isa = Dipc_hw.Isa
module Layout = Dipc_hw.Layout
module Perm = Dipc_hw.Perm
module Fault = Dipc_hw.Fault
module Breakdown = Dipc_sim.Breakdown
module Trace = Dipc_sim.Trace

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* --- a small fixed universe for random programs --- *)

let code0 = 0x100000 (* 2 executable pages, tag a *)

let callee = 0x110000 (* 1 executable page, tag b: Addi; Ret *)

let data = 0x200000 (* 1 rw page, tag a *)

let stack = 0x300000 (* 1 rw page, tag a *)

type universe = { m : Machine.t; tag_a : int; tag_b : int; tag_c : int }

(* Build the universe and load [prog] at [code0].  [block] selects the
   dispatch mode under test. *)
let setup ~block prog =
  let m = Machine.create () in
  Machine.set_block_cache m block;
  let tag_a = Apl.fresh_tag m.Machine.apl in
  let tag_b = Apl.fresh_tag m.Machine.apl in
  let tag_c = Apl.fresh_tag m.Machine.apl in
  Page_table.map m.Machine.page_table ~addr:code0 ~count:2 ~tag:tag_a
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:callee ~count:1 ~tag:tag_b
    ~writable:false ~executable:true ();
  Page_table.map m.Machine.page_table ~addr:data ~count:1 ~tag:tag_c ();
  Page_table.map m.Machine.page_table ~addr:stack ~count:1 ~tag:tag_a ();
  (* a may call b's (aligned) entry points; b may return anywhere into a
     and read a's stack. *)
  Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_b Perm.Call;
  Apl.grant m.Machine.apl ~src:tag_b ~dst:tag_a Perm.Read;
  (* the data page is its own domain, reachable from a but not from b *)
  Apl.grant m.Machine.apl ~src:tag_a ~dst:tag_c Perm.Owner;
  ignore (Memory.place_code m.Machine.mem ~addr:code0 prog);
  ignore
    (Memory.place_code m.Machine.mem ~addr:callee [ Isa.Addi (2, 2, 7); Isa.Ret ]);
  { m; tag_a; tag_b; tag_c }

let fresh_ctx u =
  Machine.new_ctx u.m ~pc:code0 ~sp_value:(stack + Layout.page_size)

(* --- random programs --- *)

(* Each abstract op is one instruction; branch targets only point
   forward (to a later slot or the trailing Halt), so every program
   terminates.  Faulting programs are kept: faults must be identical on
   both paths. *)
let instr_of ~i ~n (sel, a, b, c) =
  let a = abs a and b = abs b and c = abs c in
  let r k = 2 + (k mod 4) in
  let fwd k = code0 + (Isa.instr_bytes * (i + 1 + (k mod (n - i)))) in
  match sel mod 16 with
  | 0 -> Isa.Const (r a, b)
  | 1 -> Isa.Mov (r a, r b)
  | 2 -> Isa.Add (r a, r b, r c)
  | 3 -> Isa.Addi (r a, r b, c mod 256)
  | 4 -> Isa.Sub (r a, r b, r c)
  | 5 -> Isa.Mul (r a, r b, r c)
  | 6 -> Isa.Shli (r a, r b, b mod 8)
  | 7 | 8 -> Isa.Load (r a, 1, 8 * (b mod 64))
  | 9 | 10 -> Isa.Store (1, 8 * (b mod 64), r a)
  | 11 -> Isa.Beq (r a, r b, fwd c)
  | 12 -> Isa.Blt (r a, r b, fwd c)
  | 13 -> Isa.Beqz (r a, fwd c)
  | 14 -> Isa.Jmp (fwd c)
  | 15 -> Isa.Call callee
  | _ -> Isa.Nop

let prog_of_ops ops =
  let n = List.length ops in
  (* reg 1 = data-page base for every Load/Store *)
  (Isa.Const (1, data) :: List.mapi (fun i op -> instr_of ~i:(i + 1) ~n:(n + 1) op) ops)
  @ [ Isa.Halt ]

let ops_gen =
  QCheck.list_of_size QCheck.Gen.(5 -- 60)
    QCheck.(quad small_nat small_int small_int small_int)

(* --- observable state --- *)

type outcome = Done | Fault of Fault.t | Fuel

let run_outcome ?fuel u ctx =
  match Machine.run ?fuel u.m ctx with
  | () -> Done
  | exception Fault.Fault f -> Fault f
  | exception Machine.Out_of_fuel -> Fuel

(* Everything the block path could plausibly get wrong, in one
   comparable value.  Floats are compared exactly: bit-identical sums
   are part of the contract. *)
let observe u (ctx : Machine.ctx) outcome =
  (* data writes land in the low words of the data page; stack pushes in
     the top words of the stack page *)
  let words k = Array.init 64 (fun i -> Machine.peek_word u.m ~addr:(k + (8 * i))) in
  let stack_top =
    Array.init 64 (fun i ->
        Machine.peek_word u.m ~addr:(stack + Layout.page_size - (8 * (i + 1))))
  in
  ( outcome,
    Array.copy ctx.Machine.regs,
    ( ctx.Machine.pc,
      ctx.Machine.cur_tag,
      ctx.Machine.priv,
      ctx.Machine.depth,
      ctx.Machine.halted ),
    (ctx.Machine.instret, ctx.Machine.cost),
    Breakdown.to_list ctx.Machine.breakdown,
    (words data, stack_top) )

let run_one ~block ?fuel prog =
  let u = setup ~block prog in
  let ctx = fresh_ctx u in
  let outcome = run_outcome ?fuel u ctx in
  observe u ctx outcome

(* --- the differential properties --- *)

let prop_differential =
  QCheck.Test.make ~name:"block path == reference stepper (random programs)"
    ~count:300
    QCheck.(pair ops_gen (frequency [ (4, always 100_000); (1, int_range 1 40) ]))
    (fun (ops, fuel) ->
      let prog = prog_of_ops ops in
      run_one ~block:true ~fuel prog = run_one ~block:false ~fuel prog)

let prop_differential_traced_digest =
  QCheck.Test.make
    ~name:"tracer forces the reference path: digests and state identical"
    ~count:60 ops_gen
    (fun ops ->
      let prog = prog_of_ops ops in
      let traced block =
        let u = setup ~block prog in
        let tr = Trace.create () in
        Machine.set_trace u.m tr;
        let ctx = fresh_ctx u in
        let outcome = run_outcome u ctx in
        (observe u ctx outcome, Trace.digest_hex tr)
      in
      let (s_on, d_on) = traced true and (s_off, d_off) = traced false in
      (* traced runs agree with each other and with the untraced block run *)
      s_on = s_off && d_on = d_off && s_on = run_one ~block:true prog)

let prop_self_modifying =
  QCheck.Test.make
    ~name:"place_code between runs invalidates stale blocks" ~count:100
    QCheck.(pair ops_gen ops_gen)
    (fun (ops1, ops2) ->
      let both block =
        let u = setup ~block (prog_of_ops ops1) in
        let c1 = fresh_ctx u in
        let o1 = run_outcome u c1 in
        let s1 = observe u c1 o1 in
        (* overwrite the code in place: run 2 must see only the new
           program even where the old one left warm translations *)
        ignore (Memory.place_code u.m.Machine.mem ~addr:code0 (prog_of_ops ops2));
        let c2 = fresh_ctx u in
        let o2 = run_outcome u c2 in
        (s1, observe u c2 o2)
      in
      both true = both false)

(* --- directed invalidation tests --- *)

let check_both name f =
  Alcotest.(check bool) name true (f true = f false)

let test_code_rewrite () =
  let prog v =
    [ Isa.Const (2, v); Isa.Addi (2, 2, 1); Isa.Addi (2, 2, 1); Isa.Halt ]
  in
  let run block =
    let u = setup ~block (prog 10) in
    let c1 = fresh_ctx u in
    let (_ : outcome) = run_outcome u c1 in
    ignore (Memory.place_code u.m.Machine.mem ~addr:code0 (prog 100));
    let c2 = fresh_ctx u in
    let (_ : outcome) = run_outcome u c2 in
    (c1.Machine.regs.(2), c2.Machine.regs.(2))
  in
  (* the second run must execute the rewritten constants *)
  Alcotest.(check (pair int int)) "block cache sees rewritten code" (12, 102)
    (run true);
  Alcotest.(check (pair int int)) "reference agrees" (12, 102) (run false)

let test_page_remap () =
  let prog = [ Isa.Const (1, data); Isa.Load (2, 1, 0); Isa.Halt ] in
  let run block =
    let u = setup ~block prog in
    Memory.store_word u.m.Machine.mem data 77;
    let c1 = fresh_ctx u in
    let o1 = run_outcome u c1 in
    (* remap the code pages under a tag with no rights on the data page:
       the pt generation bump must force retranslation, and the Load now
       faults *)
    Page_table.unmap u.m.Machine.page_table ~addr:code0 ~count:2;
    Page_table.map u.m.Machine.page_table ~addr:code0 ~count:2 ~tag:u.tag_b
      ~writable:false ~executable:true ();
    let c2 = fresh_ctx u in
    let o2 = run_outcome u c2 in
    (o1, c1.Machine.regs.(2), o2)
  in
  let check name (o1, r2, o2) =
    Alcotest.(check bool) (name ^ ": first run completes") true (o1 = Done);
    Alcotest.(check int) (name ^ ": first run loads the word") 77 r2;
    match o2 with
    | Fault { Fault.kind = Fault.No_permission _; _ } -> ()
    | _ -> Alcotest.fail (name ^ ": remapped run must fault on the load")
  in
  check "blocks" (run true);
  check_both "remap behaves identically on both paths" run

let test_apl_revoke_midrun () =
  (* the syscall handler revokes a->b mid-run: the Call that worked
     before the syscall must fault after it, identically on both paths *)
  let prog =
    [
      Isa.Const (1, data);
      Isa.Call callee;
      Isa.Syscall 0;
      Isa.Call callee;
      Isa.Halt;
    ]
  in
  let run block =
    let u = setup ~block prog in
    Machine.set_syscall_handler u.m (fun _ctx _n ->
        Apl.revoke u.m.Machine.apl ~src:u.tag_a ~dst:u.tag_b);
    let ctx = fresh_ctx u in
    let o = run_outcome u ctx in
    (o, ctx.Machine.regs.(2), ctx.Machine.instret)
  in
  (match run true with
  | Fault { Fault.kind = Fault.No_permission _; _ }, r2, _ ->
      Alcotest.(check int) "first call executed the callee" 7 r2
  | _ -> Alcotest.fail "revoked call must fault");
  check_both "APL revoke behaves identically on both paths" run

let test_apl_cache_flush_midrun () =
  let prog =
    [
      Isa.Const (2, 5);
      Isa.Syscall 0;
      Isa.Addi (2, 2, 1);
      Isa.Addi (2, 2, 1);
      Isa.Halt;
    ]
  in
  let run block =
    let u = setup ~block prog in
    Machine.set_syscall_handler u.m (fun ctx _n ->
        (* deliberate flush: bumps the per-thread cache generation, so a
           warm block translated before the syscall is retranslated *)
        Apl_cache.reset ctx.Machine.apl_cache);
    let ctx = fresh_ctx u in
    let o = run_outcome u ctx in
    (o, ctx.Machine.regs.(2), ctx.Machine.cost)
  in
  (match run true with
  | Done, 7, _ -> ()
  | _ -> Alcotest.fail "flushed run must still complete with reg2 = 7");
  check_both "APL-cache flush behaves identically on both paths" run

let test_fuel_truncation () =
  (* a tight loop, fuel stops mid-block: the truncation instruction must
     match the reference exactly *)
  let loop = code0 + (3 * Isa.instr_bytes) in
  let prog =
    [
      Isa.Const (1, data);
      Isa.Const (2, 0);
      Isa.Const (3, 1000);
      Isa.Addi (2, 2, 1);
      Isa.Store (1, 0, 2);
      Isa.Load (4, 1, 0);
      Isa.Blt (2, 3, loop);
      Isa.Halt;
    ]
  in
  let run block fuel =
    let u = setup ~block prog in
    let ctx = fresh_ctx u in
    let o = run_outcome ~fuel u ctx in
    (o, ctx.Machine.pc, ctx.Machine.instret, ctx.Machine.cost)
  in
  for fuel = 1 to 60 do
    let (o, _, _, _) as on = run true fuel in
    Alcotest.(check bool)
      (Printf.sprintf "fuel=%d truncates identically" fuel)
      true
      (on = run false fuel);
    if fuel < 20 then
      Alcotest.(check bool) (Printf.sprintf "fuel=%d runs out" fuel) true (o = Fuel)
  done

let test_page_boundary () =
  (* straight-line code crossing an intra-domain page boundary: the
     translation stops at the boundary, the next block picks up on the
     far page, and no domain crossing happens (same tag) *)
  let start = code0 + Layout.page_size - (4 * Isa.instr_bytes) in
  let run block =
    let u = setup ~block [ Isa.Halt ] in
    ignore
      (Memory.place_code u.m.Machine.mem ~addr:start
         [
           Isa.Const (2, 1);
           Isa.Addi (2, 2, 10);
           Isa.Addi (2, 2, 100);
           Isa.Addi (2, 2, 1000);
           (* --- page boundary --- *)
           Isa.Addi (2, 2, 10000);
           Isa.Addi (2, 2, 100000);
           Isa.Halt;
         ]);
    let ctx = Machine.new_ctx u.m ~pc:start ~sp_value:(stack + Layout.page_size) in
    let o = run_outcome u ctx in
    (o, ctx.Machine.regs.(2), ctx.Machine.instret)
  in
  Alcotest.(check bool) "crosses the boundary" true
    (run true = (Done, 111111, 7));
  Alcotest.(check bool) "identical to reference" true (run true = run false)

let test_default_toggle () =
  Machine.set_default_block_cache false;
  let m1 = Machine.create () in
  Machine.set_default_block_cache true;
  let m2 = Machine.create () in
  Alcotest.(check bool) "default off is sampled" false m1.Machine.block_cache;
  Alcotest.(check bool) "default on is sampled" true m2.Machine.block_cache

let suites =
  [
    ( "blocks.differential",
      qsuite [ prop_differential; prop_differential_traced_digest; prop_self_modifying ]
    );
    ( "blocks.invalidation",
      [
        Alcotest.test_case "page boundary" `Quick test_page_boundary;
        Alcotest.test_case "code rewrite" `Quick test_code_rewrite;
        Alcotest.test_case "page remap" `Quick test_page_remap;
        Alcotest.test_case "APL revoke mid-run" `Quick test_apl_revoke_midrun;
        Alcotest.test_case "APL-cache flush mid-run" `Quick
          test_apl_cache_flush_midrun;
        Alcotest.test_case "fuel truncation" `Quick test_fuel_truncation;
        Alcotest.test_case "default toggle" `Quick test_default_toggle;
      ] );
  ]
