(* Shared golden-digest corpus helpers: one parser for the
   dipc-bench/v1 JSON report, used by the dune test suite
   (test_golden.ml), the parallel differential tests
   (test_parallel.ml), and the CI comparator (check_golden.ml) — the
   pins live in exactly one place, bench/BENCH_baseline.json. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Naive scanner for the flat one-experiment-per-line JSON we emit:
   pull every ("name", "digest") string pair out of the experiments
   array, in order.  Digest values may contain spaces (the raw-state
   summaries of the machine/engine experiments), so capture runs to
   the closing quote. *)
let parse_report text =
  let quoted_after key from =
    match
      let rec find i =
        if i + String.length key > String.length text then None
        else if String.sub text i (String.length key) = key then Some i
        else find (i + 1)
      in
      find from
    with
    | None -> None
    | Some i -> (
        let start = i + String.length key in
        match String.index_from_opt text start '"' with
        | None -> None
        | Some stop -> Some (String.sub text start (stop - start), stop))
  in
  let rec collect acc from =
    match quoted_after {|"name": "|} from with
    | None -> List.rev acc
    | Some (name, after_name) -> (
        match quoted_after {|"digest": "|} after_name with
        | None -> List.rev acc
        | Some (digest, after_digest) ->
            collect ((name, digest) :: acc) after_digest)
  in
  collect [] 0

let parse_file path = parse_report (read_file path)

(* Top-level scalar fields ("golden_digest", "total_wall_s", ...): first
   occurrence wins, which is the document header in our flat emitter. *)
let scalar_string text key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length text then None
    else if String.sub text i plen = pat then
      let start = i + plen in
      String.index_from_opt text start '"'
      |> Option.map (fun stop -> String.sub text start (stop - start))
    else find (i + 1)
  in
  find 0

let scalar_float text key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length text then None
    else if String.sub text i plen = pat then
      let start = i + plen in
      let stop = ref start in
      let len = String.length text in
      while
        !stop < len
        && (match text.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub text start (!stop - start))
    else find (i + 1)
  in
  find 0

type mismatch = {
  mm_name : string;
  mm_expected : string;  (* "<missing>" when absent on that side *)
  mm_actual : string;
}

(* --- Row-based view -----------------------------------------------------

   The digest comparison above only needs (name, digest) pairs; the
   deterministic-counter gate and the sim-MIPS ratchet need the other
   columns of each experiment row.  Rows are parsed by splitting the
   report at every name-key marker (the emitter writes one experiment
   object per line), so a dropped or reordered row shows up as a
   positional mismatch rather than being silently realigned. *)

type row = {
  r_name : string;
  r_counters : (string * int) list; (* in emission order *)
  r_digest : string;
  r_sim_mips : float option;
  r_instret : int option;
}

let find_sub text pat from =
  let plen = String.length pat in
  let len = String.length text in
  let rec go i =
    if i + plen > len then None
    else if String.sub text i plen = pat then Some i
    else go (i + 1)
  in
  go from

(* Parse the ["key": 123, ...] pairs of one flat JSON object starting
   just after its opening brace; stops at the closing brace. *)
let parse_int_object text start stop =
  let rec collect acc i =
    if i >= stop then List.rev acc
    else
      match String.index_from_opt text i '"' with
      | None -> List.rev acc
      | Some q0 when q0 >= stop -> List.rev acc
      | Some q0 -> (
          match String.index_from_opt text (q0 + 1) '"' with
          | None -> List.rev acc
          | Some q1 when q1 >= stop -> List.rev acc
          | Some q1 ->
              let key = String.sub text (q0 + 1) (q1 - q0 - 1) in
              let vstart = ref (q1 + 1) in
              while
                !vstart < stop
                && (text.[!vstart] = ':' || text.[!vstart] = ' ')
              do
                incr vstart
              done;
              let vstop = ref !vstart in
              while
                !vstop < stop
                && (match text.[!vstop] with '0' .. '9' | '-' -> true | _ -> false)
              do
                incr vstop
              done;
              let acc =
                match int_of_string_opt (String.sub text !vstart (!vstop - !vstart)) with
                | Some v -> (key, v) :: acc
                | None -> acc
              in
              collect acc !vstop)
  in
  collect [] start

let parse_rows text =
  let marker = {|{"name": "|} in
  let quoted key seg =
    match find_sub seg key 0 with
    | None -> None
    | Some i -> (
        let start = i + String.length key in
        match String.index_from_opt seg start '"' with
        | None -> None
        | Some stop -> Some (String.sub seg start (stop - start)))
  in
  let number key seg =
    match find_sub seg key 0 with
    | None -> None
    | Some i ->
        let start = i + String.length key in
        let stop = ref start in
        let len = String.length seg in
        while
          !stop < len
          && (match seg.[!stop] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr stop
        done;
        float_of_string_opt (String.sub seg start (!stop - start))
  in
  let rec segments acc from =
    match find_sub text marker from with
    | None -> List.rev acc
    | Some i ->
        let stop =
          match find_sub text marker (i + String.length marker) with
          | Some j -> j
          | None -> String.length text
        in
        segments (String.sub text i (stop - i) :: acc) stop
  in
  List.map
    (fun seg ->
      let counters =
        match find_sub seg {|"counters": {|} 0 with
        | None -> []
        | Some i -> (
            let start = i + String.length {|"counters": {|} in
            match String.index_from_opt seg start '}' with
            | None -> []
            | Some stop -> parse_int_object seg start stop)
      in
      {
        r_name = Option.value (quoted {|"name": "|} seg) ~default:"<unnamed>";
        r_counters = counters;
        r_digest = Option.value (quoted {|"digest": "|} seg) ~default:"<missing>";
        r_sim_mips = number {|"sim_mips": |} seg;
        r_instret =
          Option.map int_of_float (number {|"instret": |} seg);
      })
    (segments [] 0)

let string_of_counters cs =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cs) ^ "}"

(* Deterministic-counter gate: every counter cell of every baseline row
   must match the candidate exactly — same rows, same order, same
   counter keys in the same order, same integer values.  A mismatch
   names the offending experiment and counter cell so the CI log points
   at the exact regression. *)
let compare_counters ~baseline ~candidate =
  let rec go acc base cand =
    match (base, cand) with
    | [], [] -> List.rev acc
    | b :: bs, [] ->
        go
          ({ mm_name = b.r_name; mm_expected = string_of_counters b.r_counters;
             mm_actual = "<missing row>" } :: acc)
          bs []
    | [], c :: cs ->
        go
          ({ mm_name = c.r_name; mm_expected = "<missing row>";
             mm_actual = string_of_counters c.r_counters } :: acc)
          [] cs
    | b :: bs, c :: cs ->
        let acc =
          if b.r_name <> c.r_name then
            { mm_name = Printf.sprintf "%s/%s (row order)" b.r_name c.r_name;
              mm_expected = b.r_name; mm_actual = c.r_name } :: acc
          else
            let rec cells acc bl cl =
              match (bl, cl) with
              | [], [] -> acc
              | (k, v) :: _, [] ->
                  { mm_name = Printf.sprintf "%s.%s" b.r_name k;
                    mm_expected = string_of_int v; mm_actual = "<missing>" } :: acc
              | [], (k, v) :: _ ->
                  { mm_name = Printf.sprintf "%s.%s" b.r_name k;
                    mm_expected = "<missing>"; mm_actual = string_of_int v } :: acc
              | (bk, bv) :: bl', (ck, cv) :: cl' ->
                  let acc =
                    if bk <> ck then
                      { mm_name = Printf.sprintf "%s.%s/%s (key order)" b.r_name bk ck;
                        mm_expected = bk; mm_actual = ck } :: acc
                    else if bv <> cv then
                      { mm_name = Printf.sprintf "%s.%s" b.r_name bk;
                        mm_expected = string_of_int bv; mm_actual = string_of_int cv }
                      :: acc
                    else acc
                  in
                  cells acc bl' cl'
            in
            cells acc b.r_counters c.r_counters
        in
        go acc bs cs
  in
  go [] (parse_rows baseline) (parse_rows candidate)

(* Ratcheted sim-MIPS floor: for every baseline row that actually retired
   instructions, the candidate must stay above [ratio] x the baseline's
   sim_mips.  The ratio is deliberately slack (CI hosts are noisy and
   shared); the point is to catch order-of-magnitude dispatch
   regressions, not single-digit jitter. *)
let compare_mips_ratchet ~ratio ~baseline ~candidate =
  let cand = parse_rows candidate in
  let find name = List.find_opt (fun r -> r.r_name = name) cand in
  List.filter_map
    (fun b ->
      match (b.r_instret, b.r_sim_mips) with
      | Some i, Some bm when i > 0 && bm > 0. -> (
          match find b.r_name with
          | None ->
              Some
                { mm_name = b.r_name; mm_expected = Printf.sprintf "%.3f MIPS" bm;
                  mm_actual = "<missing row>" }
          | Some c -> (
              match c.r_sim_mips with
              | Some cm when cm >= ratio *. bm -> None
              | Some cm ->
                  Some
                    { mm_name = b.r_name;
                      mm_expected =
                        Printf.sprintf ">= %.3f MIPS (%.2f x %.3f)" (ratio *. bm)
                          ratio bm;
                      mm_actual = Printf.sprintf "%.3f MIPS" cm }
              | None ->
                  Some
                    { mm_name = b.r_name; mm_expected = Printf.sprintf "%.3f MIPS" bm;
                      mm_actual = "<no sim_mips>" }))
      | _ -> None)
    (parse_rows baseline)

(* --- Trend report over the benchmark history ---------------------------

   bench --json appends one dipc-bench-hist/v1 line per run to
   bench/BENCH_latest.jsonl (commit, UTC time, per-experiment sim-MIPS
   + deterministic counters).  [trend_report] diffs the last two lines:
   per-cell sim-MIPS movement and any counter that changed.  Purely
   informational — the single-baseline digest/counter/ratchet gates
   above stay the gates; this answers "what moved since the previous
   run" without editing the baseline. *)

let trend_report ~history =
  let lines =
    String.split_on_char '\n' history
    |> List.filter (fun l -> String.trim l <> "")
  in
  match List.rev lines with
  | [] | [ _ ] -> Error "trend needs at least two history rows"
  | cur_line :: prev_line :: _ ->
      let stamp line =
        Printf.sprintf "%s @ %s"
          (Option.value (scalar_string line "commit") ~default:"unknown")
          (Option.value (scalar_string line "utc") ~default:"?")
      in
      let prev = parse_rows prev_line in
      let cur = parse_rows cur_line in
      let out = ref [] in
      let emit s = out := s :: !out in
      emit (Printf.sprintf "trend: %s -> %s" (stamp prev_line) (stamp cur_line));
      List.iter
        (fun c ->
          match List.find_opt (fun p -> p.r_name = c.r_name) prev with
          | None -> emit (Printf.sprintf "  %-20s new experiment" c.r_name)
          | Some p ->
              (match (p.r_sim_mips, c.r_sim_mips) with
              | Some pm, Some cm when pm > 0. && cm > 0. ->
                  emit
                    (Printf.sprintf "  %-20s sim-MIPS %8.3f -> %8.3f  (%+.1f%%)"
                       c.r_name pm cm ((cm /. pm -. 1.) *. 100.))
              | _ -> ());
              List.iter
                (fun (k, cv) ->
                  match List.assoc_opt k p.r_counters with
                  | Some pv when pv <> cv ->
                      emit
                        (Printf.sprintf "  %-20s %s %d -> %d (%+d)" c.r_name k
                           pv cv (cv - pv))
                  | Some _ -> ()
                  | None ->
                      emit
                        (Printf.sprintf "  %-20s %s <absent> -> %d" c.r_name k
                           cv))
                c.r_counters)
        cur;
      List.iter
        (fun p ->
          if not (List.exists (fun c -> c.r_name = p.r_name) cur) then
            emit (Printf.sprintf "  %-20s experiment dropped" p.r_name))
        prev;
      Ok (List.rev !out)

(* Compare a candidate report's per-experiment digests against the
   baseline's: order-sensitive on the baseline corpus (the suite order
   is part of the contract), and any extra/missing experiment is a
   mismatch too. *)
let compare_digests ~baseline ~candidate =
  let cand = parse_report candidate in
  let rec go acc base cand =
    match (base, cand) with
    | [], [] -> List.rev acc
    | (n, d) :: bs, [] ->
        go ({ mm_name = n; mm_expected = d; mm_actual = "<missing>" } :: acc) bs
          []
    | [], (n, d) :: cs ->
        go ({ mm_name = n; mm_expected = "<missing>"; mm_actual = d } :: acc) []
          cs
    | (bn, bd) :: bs, (cn, cd) :: cs ->
        let acc =
          if bn <> cn then
            { mm_name = bn ^ "/" ^ cn; mm_expected = bn; mm_actual = cn } :: acc
          else if bd <> cd then
            { mm_name = bn; mm_expected = bd; mm_actual = cd } :: acc
          else acc
        in
        go acc bs cs
  in
  go [] (parse_report baseline) cand
