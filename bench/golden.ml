(* Shared golden-digest corpus helpers: one parser for the
   dipc-bench/v1 JSON report, used by the dune test suite
   (test_golden.ml), the parallel differential tests
   (test_parallel.ml), and the CI comparator (check_golden.ml) — the
   pins live in exactly one place, bench/BENCH_baseline.json. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Naive scanner for the flat one-experiment-per-line JSON we emit:
   pull every ("name", "digest") string pair out of the experiments
   array, in order.  Digest values may contain spaces (the raw-state
   summaries of the machine/engine experiments), so capture runs to
   the closing quote. *)
let parse_report text =
  let quoted_after key from =
    match
      let rec find i =
        if i + String.length key > String.length text then None
        else if String.sub text i (String.length key) = key then Some i
        else find (i + 1)
      in
      find from
    with
    | None -> None
    | Some i -> (
        let start = i + String.length key in
        match String.index_from_opt text start '"' with
        | None -> None
        | Some stop -> Some (String.sub text start (stop - start), stop))
  in
  let rec collect acc from =
    match quoted_after {|"name": "|} from with
    | None -> List.rev acc
    | Some (name, after_name) -> (
        match quoted_after {|"digest": "|} after_name with
        | None -> List.rev acc
        | Some (digest, after_digest) ->
            collect ((name, digest) :: acc) after_digest)
  in
  collect [] 0

let parse_file path = parse_report (read_file path)

(* Top-level scalar fields ("golden_digest", "total_wall_s", ...): first
   occurrence wins, which is the document header in our flat emitter. *)
let scalar_string text key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length text then None
    else if String.sub text i plen = pat then
      let start = i + plen in
      String.index_from_opt text start '"'
      |> Option.map (fun stop -> String.sub text start (stop - start))
    else find (i + 1)
  in
  find 0

let scalar_float text key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length text then None
    else if String.sub text i plen = pat then
      let start = i + plen in
      let stop = ref start in
      let len = String.length text in
      while
        !stop < len
        && (match text.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub text start (!stop - start))
    else find (i + 1)
  in
  find 0

type mismatch = {
  mm_name : string;
  mm_expected : string;  (* "<missing>" when absent on that side *)
  mm_actual : string;
}

(* Compare a candidate report's per-experiment digests against the
   baseline's: order-sensitive on the baseline corpus (the suite order
   is part of the contract), and any extra/missing experiment is a
   mismatch too. *)
let compare_digests ~baseline ~candidate =
  let cand = parse_report candidate in
  let rec go acc base cand =
    match (base, cand) with
    | [], [] -> List.rev acc
    | (n, d) :: bs, [] ->
        go ({ mm_name = n; mm_expected = d; mm_actual = "<missing>" } :: acc) bs
          []
    | [], (n, d) :: cs ->
        go ({ mm_name = n; mm_expected = "<missing>"; mm_actual = d } :: acc) []
          cs
    | (bn, bd) :: bs, (cn, cd) :: cs ->
        let acc =
          if bn <> cn then
            { mm_name = bn ^ "/" ^ cn; mm_expected = bn; mm_actual = cn } :: acc
          else if bd <> cd then
            { mm_name = bn; mm_expected = bd; mm_actual = cd } :: acc
          else acc
        in
        go acc bs cs
  in
  go [] (parse_report baseline) cand
